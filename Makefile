GO ?= go

.PHONY: all build test vet lint race race-core bench-smoke fault-smoke fmt-check tier1 verify clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint builds autopipelint and runs it twice: as a go vet -vettool over every
# package (simclock, errsentinel, ctxspawn — the determinism, error, and
# concurrency invariants, DESIGN.md §11), and in -testdata mode (scheddata)
# over the checked-in schedule goldens, partition plans, and fault plans.
lint:
	$(GO) build -o bin/autopipelint ./cmd/autopipelint
	$(GO) vet -vettool=$(abspath bin/autopipelint) ./...
	./bin/autopipelint -testdata ./testdata ./internal/exec/testdata ./internal/fault/testdata ./internal/train/testdata ./internal/schedule/testdata

# -short skips the Fig. 12 wall-clock-ordering test, whose relative search
# times the race detector's instrumentation distorts (it fails under -race
# even on the unmodified seed tree).
race:
	$(GO) test -race -short ./...

# race-core runs the planner engine, plan evaluator, discrete-event
# executor, and self-healing training driver under the race detector at
# full depth — the packages where the parallel search's worker pool, the
# simulation cache, and the fault-injected recovery paths live.
race-core:
	$(GO) test -race ./internal/core/... ./internal/plan/... ./internal/exec/... ./internal/train/...

# bench-smoke compiles and runs every planner benchmark exactly once
# (correctness smoke, not a measurement); the -run filter skips the tests.
bench-smoke:
	$(GO) test -run='^$$' -bench=Plan -benchtime=1x ./...

# fault-smoke executes a schedule under the checked-in basic fault plan —
# the README's resilience quickstart must keep working end to end.
fault-smoke:
	$(GO) run ./cmd/pipesim -model gpt2-345m -stages 4 -mbs 4 -micro 8 -faults testdata/faults_basic.json

# fmt-check fails (with the offending files listed) if anything is not
# gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# tier1 is the repository's baseline gate (ROADMAP.md).
tier1: build test

# verify runs everything CI would: formatting, static analysis (go vet plus
# the autopipelint invariant suite), the full test suite under the race
# detector, the deep race pass over the planner engine, a one-shot benchmark
# smoke, the fault-injection smoke, and the tier-1 gate.
verify: fmt-check vet lint tier1 race race-core bench-smoke fault-smoke

clean:
	$(GO) clean ./...
	rm -rf bin
