GO ?= go

.PHONY: all build test vet lint lint-waivers sanitize fuzz-smoke race race-core race-wide race-all bench-smoke bench-baseline fault-smoke service-smoke soak-smoke chaos-smoke fmt-check tier1 verify clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint builds autopipelint and runs it twice: as a go vet -vettool over every
# package (simclock, errsentinel, ctxspawn, locksafe, unitsafe, and the
# interprocedural hotalloc and raceguard — the determinism, error,
# concurrency, dimensional, hot-path allocation, and static data-race
# invariants, DESIGN.md §11), and in
# -testdata mode (scheddata) over the checked-in schedule goldens, partition
# plans, and fault plans. Unused //lint:allow waivers fail the run.
lint:
	$(GO) build -o bin/autopipelint ./cmd/autopipelint
	$(GO) vet -vettool=$(abspath bin/autopipelint) ./...
	./bin/autopipelint -testdata ./testdata ./internal/exec/testdata ./internal/fault/testdata ./internal/train/testdata ./internal/schedule/testdata ./BENCH_baseline.json ./BENCH_service.json

# lint-waivers lists every live //lint:allow suppression (file:line, analyzer,
# justification) outside fixture trees — the repository's complete waiver
# budget in one listing, for review. Stale waivers are caught by `make lint`
# itself: an //lint:allow that suppresses nothing is a reported finding.
lint-waivers:
	$(GO) build -o bin/autopipelint ./cmd/autopipelint
	./bin/autopipelint -waivers ./internal ./cmd

# sanitize executes the README quickstart schedules with the runtime
# happens-before sanitizer on: every op is checked against the dependency
# graph, the link model, and the activation-memory ledger as it executes.
# (The exec and train test suites force the sanitizer unconditionally; this
# target exercises the user-facing -sanitize path.)
sanitize:
	$(GO) run ./cmd/pipesim -model gpt2-345m -stages 4 -mbs 4 -micro 8 -sanitize
	$(GO) run ./cmd/pipesim -model gpt2-345m -stages 4 -mbs 4 -micro 8 -schedule sliced -sanitize
	$(GO) run ./cmd/pipesim -model gpt2-345m -stages 4 -mbs 4 -micro 8 -faults testdata/faults_basic.json -sanitize

# fuzz-smoke runs each fuzz target briefly: long enough to replay the corpus
# and explore a little, short enough for every CI run.
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzParseSchedule -fuzztime=$(FUZZTIME) ./internal/schedule
	$(GO) test -run='^$$' -fuzz=FuzzParsePlan -fuzztime=$(FUZZTIME) ./internal/fault

# -short skips the Fig. 12 wall-clock-ordering test, whose relative search
# times the race detector's instrumentation distorts (it fails under -race
# even on the unmodified seed tree).
race:
	$(GO) test -race -short ./...

# race-core runs the planner engine, plan evaluator, discrete-event
# executor, and self-healing training driver under the race detector at
# full depth — the packages where the parallel search's worker pool, the
# simulation cache, and the fault-injected recovery paths live.
race-core:
	$(GO) test -race ./internal/core/... ./internal/plan/... ./internal/exec/... ./internal/train/...

# race-wide covers the remaining concurrent surface at full depth — the
# autopiped service path (worker pool, cache, singleflight, soak ledger,
# chaos middleware), the observability registry fast path, and the benchmark
# harness — matching the static claim raceguard makes over the same
# packages: what the analyzer proves unordered-access-free, the dynamic
# detector exercises. race-all is both halves; CI's race matrix runs them as
# separate jobs.
race-wide:
	$(GO) test -race ./internal/service/... ./internal/obs/... ./internal/bench/...

race-all: race-core race-wide

# bench-smoke compiles and runs every micro-benchmark exactly once — planner,
# exec event loop, schedule dependency graphs, slicer, obs registry — then
# drives the autopipebench suite in one-iteration mode and self-compares the
# result (correctness smoke, not a measurement); the -run filter skips tests.
bench-smoke:
	@mkdir -p bin
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...
	$(GO) run ./cmd/autopipebench -label smoke -o bin/BENCH_smoke.json -benchtime 1x
	$(GO) run ./cmd/autopipebench compare bin/BENCH_smoke.json bin/BENCH_smoke.json

# bench-baseline refreshes the checked-in perf trajectory at full benchtime.
# Run on a quiet machine, eyeball the compare report against the old numbers,
# and commit the file (DESIGN.md §13).
bench-baseline:
	$(GO) run ./cmd/autopipebench -label baseline -o BENCH_baseline.json

# fault-smoke executes a schedule under the checked-in basic fault plan —
# the README's resilience quickstart must keep working end to end.
fault-smoke:
	$(GO) run ./cmd/pipesim -model gpt2-345m -stages 4 -mbs 4 -micro 8 -faults testdata/faults_basic.json

# service-smoke boots the autopiped daemon end to end — plan over HTTP,
# cache-hit equality, singleflight counter audit, typed wire rejection,
# /metrics and pprof probes — first memory-only, then with a job store to
# prove restart-resume (the restarted daemon must answer from the replayed
# cache with zero engine searches). DESIGN.md §14.
service-smoke:
	@mkdir -p bin
	$(GO) build -o bin/autopiped ./cmd/autopiped
	./bin/autopiped -smoke
	rm -rf bin/service-smoke-store
	./bin/autopiped -smoke -store bin/service-smoke-store

# soak-smoke runs the crash-recovery harness: a real daemon on a real job
# store is killed and restarted mid-traffic three times, and every job must
# complete exactly once, the cache must re-seed from the replayed store, and
# planted torn files (plus any crash wreckage) must be quarantined — never a
# corrupted boot. DESIGN.md §15.
soak-smoke:
	@mkdir -p bin
	$(GO) build -o bin/autopiped ./cmd/autopiped
	./bin/autopiped -soak -soak-cycles 3

# chaos-smoke drives the load generator through the seeded chaos middleware
# (injected latency, 5xx, 429, and torn responses from the checked-in plan):
# the resilient client must still complete every request. Report-only — the
# QPS numbers are not compared against the baseline, since chaos skews them
# by design.
chaos-smoke:
	@mkdir -p bin
	$(GO) build -o bin/autopiped ./cmd/autopiped
	./bin/autopiped -loadgen -requests 120 -concurrency 6 -chaos testdata/chaos_basic.json

# fmt-check fails (with the offending files listed) if anything is not
# gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# tier1 is the repository's baseline gate (ROADMAP.md).
tier1: build test

# verify runs everything CI would: formatting, static analysis (go vet plus
# the autopipelint invariant suite), the full test suite under the race
# detector, the deep race pass over the planner engine and the whole
# service/observability/bench surface (race-all), a one-shot benchmark
# smoke, the fault-injection smoke, the service smoke, the crash-recovery
# soak, the chaos-loadgen smoke, the sanitized executions, and the tier-1
# gate. (CI additionally runs fuzz-smoke, kept out of verify so the local
# gate stays fast.)
verify: fmt-check vet lint tier1 race race-all bench-smoke fault-smoke service-smoke soak-smoke chaos-smoke sanitize

clean:
	$(GO) clean ./...
	rm -rf bin
