// Package autopipe is the public API of the AutoPipe reproduction: a fast
// pipeline-parallelism planner with balanced sub-layer partitioning and
// micro-batch slicing (Liu et al., CLUSTER 2022), together with the
// simulated-cluster substrate the evaluation runs on.
//
// The typical flow mirrors the paper's Fig. 2:
//
//	model := autopipe.GPT2_345M()
//	cluster := autopipe.DefaultCluster()
//	run := autopipe.Run{MicroBatch: 4, GlobalBatch: 128, Checkpoint: true}
//	planner := autopipe.NewPlanner()
//	spec, blocks, err := planner.Plan(ctx, model, run, cluster)  // Planner + Slicer
//	result, err := autopipe.Evaluate(spec, blocks, run, cluster) // simulated testbed
//
// The same planner also runs as a long-lived daemon (cmd/autopiped) with a
// content-addressed plan cache; package client is its Go API.
//
// Plan produces a balanced pipeline partition (heuristic master-stage search
// seeded by the Algorithm 1 dynamic program, assessed by the analytic 1F1B
// simulator) plus the number of warmup micro-batches to slice (Algorithm 2).
// Evaluate runs the plan on the discrete-event cluster executor and reports
// the iteration time, startup overhead, and memory feasibility.
package autopipe

import (
	"autopipe/internal/config"
	"autopipe/internal/core"
	"autopipe/internal/cost"
	"autopipe/internal/model"
	"autopipe/internal/partition"
	"autopipe/internal/plan"
	"autopipe/internal/sim"
	"autopipe/internal/slicer"
)

// Re-exported configuration types (see internal/config for field docs).
type (
	// Model describes a transformer benchmark model.
	Model = config.Model
	// Device is an accelerator profile.
	Device = config.Device
	// Network is the interconnect profile.
	Network = config.Network
	// Cluster bundles devices and network.
	Cluster = config.Cluster
	// Run is one training configuration.
	Run = config.Run
)

// Re-exported planning types.
type (
	// Spec is a complete pipeline plan (partition, replication, slicing).
	Spec = plan.Spec
	// EvalResult is the outcome of executing a plan on the simulated
	// cluster.
	EvalResult = plan.Result
	// Blocks is a model lowered to AutoPipe's sub-layer block array.
	Blocks = model.Blocks
	// Partition assigns block ranges to pipeline stages.
	Partition = partition.Partition
	// SimResult is the analytic simulator's output (iteration time,
	// critical path, master stage).
	SimResult = sim.Result
	// SlicePlan is the micro-batch slicing decision of Algorithm 2.
	SlicePlan = slicer.Plan
)

// Model zoo (paper Table I).
var (
	GPT2_345M   = config.GPT2_345M
	GPT2_762M   = config.GPT2_762M
	GPT2_1_3B   = config.GPT2_1_3B
	BERTLarge   = config.BERTLarge
	Models      = config.Zoo
	ModelByName = config.ModelByName
)

// DefaultCluster returns the paper's 16× RTX 3090 testbed profile.
func DefaultCluster() Cluster { return config.DefaultCluster() }

// Plan runs the full AutoPipe pipeline: the Planner chooses a pipeline depth
// and a balanced sub-layer partition, and the Slicer solves the warmup
// micro-batch slicing. The returned Blocks is the block array the plan's
// partition indexes (needed by Evaluate).
//
// Deprecated: use NewPlanner().Plan, which adds cancellation, parallel
// candidate evaluation, and search options. Plan is equivalent to
// NewPlanner(WithParallelism(1)).Plan(context.Background(), ...).
// Scheduled for removal in v1.0; no in-repo code calls it anymore.
func Plan(m Model, run Run, cluster Cluster) (*Spec, *Blocks, error) {
	return core.PlanCluster(m, run, cluster)
}

// PlanDepth runs the heuristic partition search at a fixed pipeline depth
// with m micro-batches per iteration, returning the planner's best candidate
// together with its simulation.
//
// Deprecated: use NewPlanner().PlanDepth, which adds cancellation, parallel
// candidate evaluation, and search options.
// Scheduled for removal in v1.0; no in-repo code calls it anymore.
func PlanDepth(bl *Blocks, depth, micro int) (*core.PlanResult, error) {
	return core.PlanDepth(bl, depth, micro)
}

// Build lowers a model to AutoPipe's sub-layer block array for a micro-batch
// size (with activation checkpointing, as in all paper experiments).
func Build(m Model, microBatch int, cluster Cluster) (*Blocks, error) {
	return model.Build(m, cost.Geometry{MicroBatch: microBatch, Checkpoint: true},
		cluster.Device, cluster.Network, model.SubLayer)
}

// Simulate runs the paper's analytic pipeline simulator on explicit
// per-stage forward/backward times.
//
// Deprecated: use SimulateProfile with a StageProfile value.
// Scheduled for removal in v1.0; no in-repo code calls it anymore.
func Simulate(f, b []float64, comm float64, micro int) (*SimResult, error) {
	return sim.SimulateProfile(StageProfile{Fwd: f, Bwd: b, Comm: comm, Micro: micro})
}

// Slice solves Algorithm 2: the number of leading micro-batches whose
// forwards should be split in half to hide the pipeline startup overhead.
//
// Deprecated: use SliceProfile with a StageProfile value.
// Scheduled for removal in v1.0; no in-repo code calls it anymore.
func Slice(f, b []float64, comm float64, micro int) (SlicePlan, error) {
	return slicer.SolveProfile(StageProfile{Fwd: f, Bwd: b, Comm: comm, Micro: micro})
}

// Evaluate executes a plan for one training iteration on the discrete-event
// cluster executor, reporting iteration time, startup overhead, the gradient
// all-reduce cost, and OOM/runtime-error conditions.
func Evaluate(s *Spec, bl *Blocks, run Run, cluster Cluster) (*EvalResult, error) {
	return plan.Evaluate(s, bl, run, cluster)
}
