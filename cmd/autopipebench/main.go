// Command autopipebench measures the repository's hot paths and pins the
// results as a BENCH_<label>.json baseline: plan-search throughput through the
// public Planner, the exec event loop with the sanitizer on, schedule
// dependency-graph construction, the Slicer, and the obs registry's own
// overhead. Each entry records ns/op, allocs/op, and B/op from
// testing.Benchmark plus custom metrics (cache-hit ratio, pruned depths,
// executor ops/sec) pulled from the obs registry after the measured run.
//
// Usage:
//
//	autopipebench [-label dev] [-o BENCH_dev.json] [-benchtime 1x] \
//	              [-match exec] [-parallelism N] [-timeout 30s] \
//	              [-cpuprofile cpu.pb.gz] [-memprofile mem.pb.gz]
//	autopipebench compare OLD.json NEW.json [-report-only] \
//	              [-ns-pct 0.30] [-allocs-pct 0.10] [-bytes-pct 0.25] [-custom-pct 0.25]
//
// The first form runs the suite and writes the baseline; the second diffs two
// baselines under per-metric thresholds, prints the report, and exits 1 when
// any metric degraded past its threshold (0 with -report-only, which prints
// the same report but never gates — CI uses it against the checked-in
// BENCH_baseline.json because shared runners jitter too much to gate on).
// Exit status 2 means bad usage or an unreadable baseline.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"testing"

	"autopipe/internal/bench"
	"autopipe/internal/cliutil"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole program behind an exit code, so tests can drive both modes
// without building or exec-ing the binary.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 && args[0] == "compare" {
		return runCompare(args[1:], stdout, stderr)
	}
	return runSuite(args, stdout, stderr)
}

func runSuite(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("autopipebench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	label := fs.String("label", "dev", "baseline label; also names the default output file")
	out := fs.String("o", "", "output path (default BENCH_<label>.json)")
	benchtime := fs.String("benchtime", "", "per-benchmark time or count, e.g. 2s or 1x (empty = testing's 1s default)")
	match := fs.String("match", "", "only run suite entries whose name contains this substring")
	pf := cliutil.RegisterPlanner(fs)
	prof := cliutil.RegisterProfile(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "autopipebench: unexpected arguments %q (did you mean the compare subcommand?)\n", fs.Args())
		return 2
	}
	if *benchtime != "" {
		// testing.Benchmark reads the test.benchtime flag registered by
		// testing.Init — the supported way to shorten runs from a non-test
		// binary (CI smoke mode passes -benchtime=1x).
		testing.Init()
		f := flag.CommandLine.Lookup("test.benchtime")
		if f == nil {
			fmt.Fprintln(stderr, "autopipebench: testing flags unavailable; cannot set -benchtime")
			return 2
		}
		if err := f.Value.Set(*benchtime); err != nil {
			fmt.Fprintf(stderr, "autopipebench: bad -benchtime %q: %v\n", *benchtime, err)
			return 2
		}
	}

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(stderr, "autopipebench:", err)
		return 1
	}
	ctx, cancel := pf.Context()
	defer cancel()
	opts := bench.Options{Parallelism: pf.Parallelism, Ctx: ctx, Progress: stdout}
	if *match != "" {
		opts.Match = func(name string) bool { return strings.Contains(name, *match) }
	}
	base, err := bench.RunSuite(*label, opts)
	if err != nil {
		fmt.Fprintln(stderr, "autopipebench:", err)
		return 1
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(stderr, "autopipebench:", err)
		return 1
	}
	path := *out
	if path == "" {
		path = "BENCH_" + *label + ".json"
	}
	if err := base.WriteFile(path); err != nil {
		fmt.Fprintln(stderr, "autopipebench:", err)
		return 1
	}
	fmt.Fprintf(stdout, "baseline (%d benchmarks, %s) written to %s\n", len(base.Benchmarks), base.GoVersion, path)
	return 0
}

func runCompare(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("autopipebench compare", flag.ContinueOnError)
	fs.SetOutput(stderr)
	reportOnly := fs.Bool("report-only", false, "print the comparison but always exit 0 (CI smoke mode)")
	th := bench.DefaultThresholds()
	fs.Float64Var(&th.NsPct, "ns-pct", th.NsPct, "relative ns/op regression threshold")
	fs.Float64Var(&th.AllocsPct, "allocs-pct", th.AllocsPct, "relative allocs/op regression threshold")
	fs.Float64Var(&th.BytesPct, "bytes-pct", th.BytesPct, "relative B/op regression threshold")
	fs.Float64Var(&th.CustomPct, "custom-pct", th.CustomPct, "relative threshold for gated custom metrics (cache_hit_ratio, *_per_sec)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: autopipebench compare OLD.json NEW.json [flags]")
		return 2
	}
	old, err := bench.LoadBaseline(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "autopipebench:", err)
		return 2
	}
	fresh, err := bench.LoadBaseline(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "autopipebench:", err)
		return 2
	}
	rep, err := bench.Compare(old, fresh, th)
	if err != nil {
		fmt.Fprintln(stderr, "autopipebench:", err)
		return 2
	}
	rep.Format(stdout)
	if len(rep.Regressions()) > 0 && !*reportOnly {
		return 1
	}
	return 0
}
