package main

import (
	"io"
	"path/filepath"
	"strings"
	"testing"

	"autopipe/internal/bench"
)

func writeBaseline(t *testing.T, dir, name string, mutate func(*bench.Baseline)) string {
	t.Helper()
	b := &bench.Baseline{
		Label:     strings.TrimSuffix(name, ".json"),
		Suite:     bench.SuiteID,
		GoVersion: "go1.22",
		Benchmarks: []bench.Entry{
			{Name: "planner/plan_gpt2_345m_g8", Iters: 10, NsPerOp: 2e6, AllocsPerOp: 900, BytesPerOp: 65536,
				Custom: map[string]float64{"cache_hit_ratio": 0.8}},
			{Name: "obs/emit_nosink", Iters: 1000, NsPerOp: 150, AllocsPerOp: 0, BytesPerOp: 0},
		},
	}
	if mutate != nil {
		mutate(b)
	}
	path := filepath.Join(dir, name)
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareExitCodes pins the acceptance criterion: compare exits 0 against
// an identical baseline and nonzero when a metric degraded past threshold.
func TestCompareExitCodes(t *testing.T) {
	dir := t.TempDir()
	base := writeBaseline(t, dir, "BENCH_baseline.json", nil)
	same := writeBaseline(t, dir, "BENCH_same.json", nil)
	slow := writeBaseline(t, dir, "BENCH_slow.json", func(b *bench.Baseline) {
		b.Benchmarks[0].NsPerOp *= 2
	})

	var out strings.Builder
	if code := run([]string{"compare", base, same}, &out, io.Discard); code != 0 {
		t.Errorf("self-compare exit = %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "OK: no metric past threshold") {
		t.Errorf("self-compare report missing OK verdict:\n%s", out.String())
	}

	out.Reset()
	if code := run([]string{"compare", base, slow}, &out, io.Discard); code != 1 {
		t.Errorf("degraded compare exit = %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Errorf("degraded report missing REGRESSED verdict:\n%s", out.String())
	}

	out.Reset()
	if code := run([]string{"compare", "-report-only", base, slow}, &out, io.Discard); code != 0 {
		t.Errorf("-report-only exit = %d, want 0", code)
	}
}

func TestCompareUsageErrors(t *testing.T) {
	dir := t.TempDir()
	base := writeBaseline(t, dir, "BENCH_baseline.json", nil)
	cases := [][]string{
		{"compare"},
		{"compare", base},
		{"compare", base, filepath.Join(dir, "missing.json")},
		{"compare", "-definitely-not-a-flag", base, base},
	}
	for _, args := range cases {
		if code := run(args, io.Discard, io.Discard); code != 2 {
			t.Errorf("run(%q) exit = %d, want 2", args, code)
		}
	}
}

func TestRunSuiteRejectsStrayArgs(t *testing.T) {
	if code := run([]string{"BENCH_a.json", "BENCH_b.json"}, io.Discard, io.Discard); code != 2 {
		t.Errorf("stray-argument exit = %d, want 2", code)
	}
}

// TestRunModeSmoke exercises the full run path — suite, baseline file, then
// the written file self-compared through the compare path — restricted to the
// cheap obs entries at one iteration.
func TestRunModeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs testing.Benchmark")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_smoke.json")
	var out strings.Builder
	code := run([]string{"-label", "smoke", "-o", path, "-benchtime", "1x", "-match", "obs/"}, &out, io.Discard)
	if code != 0 {
		t.Fatalf("run exit = %d\n%s", code, out.String())
	}
	got, err := bench.LoadBaseline(path)
	if err != nil {
		t.Fatalf("written baseline does not parse: %v", err)
	}
	if got.Label != "smoke" || len(got.Benchmarks) != 2 {
		t.Errorf("baseline = label %q, %d benchmarks; want smoke with 2", got.Label, len(got.Benchmarks))
	}
	if code := run([]string{"compare", path, path}, io.Discard, io.Discard); code != 0 {
		t.Errorf("fresh baseline self-compare exit = %d, want 0", code)
	}
}
