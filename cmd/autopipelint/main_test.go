package main

import (
	"regexp"
	"strings"
	"testing"
)

// TestWaiverBudgetJustified runs the -waivers audit over the real tree (the
// same roots make lint-waivers passes) and fails on any live //lint:allow
// comment without a justification. `make lint` already rejects waivers that
// suppress nothing; this closes the other gap — a waiver that works but says
// nothing about why the finding is acceptable. Together they make the CI
// fixture job reject both stale and unexplained suppressions.
func TestWaiverBudgetJustified(t *testing.T) {
	var out strings.Builder
	if code := runWaivers(&out, []string{"../../internal", "../../cmd"}); code != 0 {
		t.Fatalf("runWaivers exited %d:\n%s", code, out.String())
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("runWaivers produced no output")
	}
	totalRE := regexp.MustCompile(`^\d+ live waiver\(s\)$`)
	if last := lines[len(lines)-1]; !totalRE.MatchString(last) {
		t.Fatalf("last line = %q, want the waiver total", last)
	}
	entryRE := regexp.MustCompile(`^.+\.go:\d+: [a-z]+: .+$`)
	for _, line := range lines[:len(lines)-1] {
		if strings.Contains(line, "(no justification)") {
			t.Errorf("unjustified waiver: %s — every //lint:allow must say why the finding is acceptable", line)
		}
		if !entryRE.MatchString(line) {
			t.Errorf("malformed waiver listing line: %q", line)
		}
	}
	if len(lines)-1 > 0 {
		t.Logf("waiver budget: %d justified waiver(s)", len(lines)-1)
	}
}
