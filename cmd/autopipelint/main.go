// Command autopipelint is the repository's static analysis suite. It runs in
// two modes:
//
//	go vet -vettool=$(pwd)/bin/autopipelint ./...
//
// drives the seven Go analyzers (simclock, errsentinel, ctxspawn, the
// flow-sensitive locksafe and unitsafe, and the interprocedural hotalloc and
// raceguard) over every compilation unit via the go command's vettool
// protocol:
// autopipelint answers the -V=full version handshake and the -flags
// enumeration, then is invoked once per package with a *.cfg unit
// description.
//
//	bin/autopipelint -testdata ./testdata ./internal/exec/testdata ...
//
// sweeps checked-in JSON testdata with the scheddata analyzer: schedules
// must parse and be statically deadlock-free, fault plans and partition-plan
// documents must validate.
//
//	bin/autopipelint -waivers ./internal ./cmd
//
// audits suppressions: it lists every live //lint:allow waiver with its
// file:line, analyzer, and justification (fixture trees under testdata are
// excluded). The listing is informational — make lint-waivers drives it —
// so reviewers see the complete, current waiver budget in one place.
//
// Exit status is 1 when any finding is reported, so both modes gate CI.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"autopipe/internal/analysis"
	"autopipe/internal/analysis/ctxspawn"
	"autopipe/internal/analysis/errsentinel"
	"autopipe/internal/analysis/hotalloc"
	"autopipe/internal/analysis/locksafe"
	"autopipe/internal/analysis/raceguard"
	"autopipe/internal/analysis/scheddata"
	"autopipe/internal/analysis/simclock"
	"autopipe/internal/analysis/unitsafe"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("autopipelint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		versionFlag  = fs.String("V", "", "print version and exit (go vet handshake)")
		flagsFlag    = fs.Bool("flags", false, "print analyzer flags as JSON and exit (go vet handshake)")
		testdataFlag = fs.Bool("testdata", false, "validate JSON testdata under the given paths instead of analyzing Go packages")
		waiversFlag  = fs.Bool("waivers", false, "list every live //lint:allow waiver under the given paths and exit")
		enabled      = map[string]*bool{
			simclock.Analyzer.Name:    fs.Bool("simclock", true, simclock.Analyzer.Doc),
			errsentinel.Analyzer.Name: fs.Bool("errsentinel", true, errsentinel.Analyzer.Doc),
			ctxspawn.Analyzer.Name:    fs.Bool("ctxspawn", true, ctxspawn.Analyzer.Doc),
			hotalloc.Analyzer.Name:    fs.Bool("hotalloc", true, hotalloc.Analyzer.Doc),
			locksafe.Analyzer.Name:    fs.Bool("locksafe", true, locksafe.Analyzer.Doc),
			unitsafe.Analyzer.Name:    fs.Bool("unitsafe", true, unitsafe.Analyzer.Doc),
			raceguard.Analyzer.Name:   fs.Bool("raceguard", true, raceguard.Analyzer.Doc),
		}
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch {
	case *versionFlag != "":
		return printVersion(os.Stdout, *versionFlag)
	case *flagsFlag:
		return printFlags(os.Stdout)
	case *testdataFlag:
		return runTestdata(fs.Args())
	case *waiversFlag:
		return runWaivers(os.Stdout, fs.Args())
	}

	// Unit mode: exactly one *.cfg argument from the go command.
	if fs.NArg() != 1 || !strings.HasSuffix(fs.Arg(0), ".cfg") {
		fmt.Fprintln(os.Stderr, "usage: autopipelint [-testdata paths...] | <unit>.cfg (via go vet -vettool)")
		return 2
	}
	var analyzers []*analysis.Analyzer
	for _, a := range []*analysis.Analyzer{simclock.Analyzer, errsentinel.Analyzer, ctxspawn.Analyzer, hotalloc.Analyzer, locksafe.Analyzer, unitsafe.Analyzer, raceguard.Analyzer} {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}
	diags, err := analysis.RunUnit(fs.Arg(0), analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "autopipelint: %v\n", err)
		return 1
	}
	return report(diags)
}

// printVersion answers `autopipelint -V=full`: the go command caches vet
// results keyed on this string, so it must change whenever the tool's
// behavior can — hashing the executable achieves that.
func printVersion(w io.Writer, mode string) int {
	progname := "autopipelint"
	if mode != "full" {
		fmt.Fprintf(w, "%s version devel\n", progname)
		return 0
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintf(w, "%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
	return 0
}

// printFlags answers `autopipelint -flags`: the go command asks which flags
// the tool supports so it can forward the ones the user set on `go vet`.
func printFlags(w io.Writer) int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := []jsonFlag{
		{"simclock", true, simclock.Analyzer.Doc},
		{"errsentinel", true, errsentinel.Analyzer.Doc},
		{"ctxspawn", true, ctxspawn.Analyzer.Doc},
		{"hotalloc", true, hotalloc.Analyzer.Doc},
		{"locksafe", true, locksafe.Analyzer.Doc},
		{"unitsafe", true, unitsafe.Analyzer.Doc},
		{"raceguard", true, raceguard.Analyzer.Doc},
	}
	data, err := json.Marshal(flags)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintln(w, string(data))
	return 0
}

func runTestdata(paths []string) int {
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "autopipelint -testdata: no paths given")
		return 2
	}
	diags, err := scheddata.CheckPaths(paths)
	if err != nil {
		fmt.Fprintf(os.Stderr, "autopipelint: %v\n", err)
		return 1
	}
	return report(diags)
}

// runWaivers walks the given roots (default ".") and lists every
// //lint:allow waiver in non-testdata Go source: one "file:line: analyzer:
// reason" line each, plus a total. Files are parsed, so only real waiver
// comments count — prose that merely mentions the marker (docs, string
// literals) does not. Unused waivers are the analyzers' job to reject
// (RunAnalyzers reports them); this listing is how reviewers audit the ones
// that remain live.
func runWaivers(w io.Writer, roots []string) int {
	if len(roots) == 0 {
		roots = []string{"."}
	}
	total := 0
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if name := d.Name(); name == "testdata" || strings.HasPrefix(name, ".") && name != "." {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") {
				return nil
			}
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return err
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					// Same matching as the analyzer framework's allowLines.
					text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, "lint:allow") {
						continue
					}
					rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:allow"))
					analyzer, reason, _ := strings.Cut(rest, " ")
					if analyzer == "" {
						continue
					}
					if reason = strings.TrimSpace(reason); reason == "" {
						reason = "(no justification)"
					}
					pos := fset.Position(c.Pos())
					fmt.Fprintf(w, "%s:%d: %s: %s\n", pos.Filename, pos.Line, analyzer, reason)
					total++
				}
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "autopipelint -waivers: %v\n", err)
			return 1
		}
	}
	fmt.Fprintf(w, "%d live waiver(s)\n", total)
	return 0
}

func report(diags []analysis.Diagnostic) int {
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	return 1
}
