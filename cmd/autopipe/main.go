// Command autopipe plans a pipeline-parallel training configuration: it runs
// the AutoPipe Planner (balanced sub-layer partitioning) and Slicer
// (warmup micro-batch slicing) for a benchmark model and prints the plan,
// per-stage breakdown, and the simulated iteration time versus the
// Megatron-LM even partition.
//
// Usage:
//
//	autopipe -model gpt2-345m -gpus 4 -mbs 4 -gbs 128 \
//	         [-parallelism N] [-timeout 30s] [-faults plan.json] [-json plan.json]
//
// With -faults, the planned schedule is additionally executed under the
// given fault plan, reporting the plan's iteration-time overhead when it
// survives or the typed failure when it does not.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"autopipe"
	"autopipe/internal/baselines/megatron"
	"autopipe/internal/cliutil"
	"autopipe/internal/config"
	"autopipe/internal/errdefs"
	"autopipe/internal/exec"
	"autopipe/internal/fault"
	"autopipe/internal/memory"
	"autopipe/internal/model"
	"autopipe/internal/plan"
	"autopipe/internal/schedule"
)

func main() {
	modelName := flag.String("model", "gpt2-345m", "model: gpt2-345m, gpt2-762m, gpt2-1.3b, bert-large")
	gpus := flag.Int("gpus", 4, "total number of GPUs")
	mbs := flag.Int("mbs", 4, "micro-batch size")
	gbs := flag.Int("gbs", 128, "global batch size")
	jsonPath := flag.String("json", "", "write the plan as JSON to this path")
	pf := cliutil.RegisterPlanner(flag.CommandLine)
	ff := cliutil.RegisterFaults(flag.CommandLine)
	ef := cliutil.RegisterExec(flag.CommandLine)
	prof := cliutil.RegisterProfile(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fail(err)
	}

	fplan, err := ff.Load()
	if err != nil {
		fail(err)
	}

	mc, err := config.ModelByName(*modelName)
	if err != nil {
		fail(err)
	}
	cluster := config.DefaultCluster()
	cluster.NumGPUs = *gpus
	run := config.Run{MicroBatch: *mbs, GlobalBatch: *gbs, Checkpoint: true}

	ctx, cancel := pf.Context()
	defer cancel()
	spec, bl, err := autopipe.NewPlanner(pf.PlannerOptions()...).Plan(ctx, mc, run, cluster)
	if err != nil {
		fail(err)
	}
	res, err := plan.Evaluate(spec, bl, run, cluster)
	if err != nil {
		fail(err)
	}

	fmt.Printf("AutoPipe plan for %s on %d GPUs (mbs=%d, gbs=%d)\n\n", mc.Name, *gpus, *mbs, *gbs)
	fmt.Printf("pipeline depth:    %d\n", spec.Depth())
	fmt.Printf("data parallelism:  %d\n", spec.DataParallel())
	fmt.Printf("micro-batches:     %d per iteration\n", res.Micro)
	fmt.Printf("sliced warmup:     %d micro-batch(es)\n", spec.NumSliced)
	fmt.Printf("planning time:     %v (%d schemes assessed, %d improved the incumbent)\n", spec.SearchTime, spec.Evaluated, spec.Accepted)
	fmt.Printf("predicted iter:    %.1f ms (slicer: %d round(s), converged %v)\n\n",
		spec.Predicted*1e3, spec.SliceRounds, spec.SliceConverged)
	fmt.Print(spec.Partition.Describe(bl))
	for s := 0; s < spec.Depth(); s++ {
		e := memory.StageEstimate(bl, spec.Partition, s, res.Micro, memory.OneFOneB, 1)
		fmt.Printf("memory %v\n", e)
	}

	if res.Err != "" {
		fmt.Printf("\nevaluation: %s\n", res.Err)
		os.Exit(1)
	}
	fmt.Printf("\niteration time:    %.1f ms (startup %.1f ms, all-reduce %.1f ms)\n",
		res.IterTime*1e3, res.Startup*1e3, res.AllReduce*1e3)

	// Reference: Megatron-LM even layer division at the same depth, when the
	// depth divides the layer count.
	if even, err := megatron.EvenPartition(bl, spec.Depth()); err == nil {
		ref := &plan.Spec{Planner: "Megatron-LM", Partition: even, StageDevices: spec.StageDevices}
		if rr, err := plan.Evaluate(ref, bl, run, cluster); err == nil && rr.Err == "" {
			fmt.Printf("megatron-lm even:  %.1f ms  (AutoPipe speedup %.2fx)\n",
				rr.IterTime*1e3, rr.IterTime/res.IterTime)
		}
	}
	if fplan != nil {
		assessFaults(spec, bl, res, cluster, fplan, ef.Sanitize)
	}
	if *jsonPath != "" {
		if err := config.Save(*jsonPath, spec); err != nil {
			fail(err)
		}
		fmt.Printf("plan written to %s\n", *jsonPath)
	}
	if err := stopProf(); err != nil {
		fail(err)
	}
}

// assessFaults re-executes the planned schedule under the fault plan and
// reports the survivor's overhead, or the typed failure if the plan cannot
// finish an iteration under injection.
func assessFaults(spec *plan.Spec, bl *model.Blocks, res *plan.Result, cluster config.Cluster, fplan *fault.Plan, sanitize bool) {
	f, b := plan.StageWallTimes(spec, bl)
	var sched *schedule.Schedule
	var err error
	if spec.NumSliced > 0 {
		sched, err = schedule.Sliced(spec.Depth(), res.Micro, spec.NumSliced)
	} else {
		sched, err = schedule.OneFOneB(spec.Depth(), res.Micro)
	}
	if err != nil {
		fail(err)
	}
	cfg := exec.Config{
		VirtFwd:        f,
		VirtBwd:        b,
		CommBytes:      bl.List[0].OutBytes,
		Network:        cluster.Network,
		KernelOverhead: cluster.Device.KernelOverhead,
		Sanitize:       sanitize,
	}
	clean, err := exec.Run(sched, cfg)
	if err != nil {
		fail(err)
	}
	cfg.Faults = fault.New(fplan, nil)
	faulted, err := exec.Run(sched, cfg)
	name := fplan.Name
	if name == "" {
		name = "faults"
	}
	switch {
	case err == nil:
		fmt.Printf("under fault plan %q: %.1f ms (+%.1f%% over the clean %.1f ms execution)\n",
			name, faulted.IterTime*1e3, 100*(faulted.IterTime-clean.IterTime)/clean.IterTime, clean.IterTime*1e3)
	case errors.Is(err, errdefs.ErrDeviceLost) || errors.Is(err, errdefs.ErrLinkDown):
		fmt.Printf("under fault plan %q: plan does not survive (%v); the self-healing driver would checkpoint and replan over the survivors\n", name, err)
	case errors.Is(err, errdefs.ErrTransient):
		fmt.Printf("under fault plan %q: transient failure (%v); a retry would succeed\n", name, err)
	default:
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "autopipe:", err)
	os.Exit(1)
}
