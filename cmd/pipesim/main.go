// Command pipesim executes a pipeline schedule for a benchmark model on the
// discrete-event cluster executor and prints timing metrics, per-device
// utilization, and (optionally) a text Gantt chart of the iteration.
//
// Usage:
//
//	pipesim -model gpt2-345m -stages 4 -mbs 4 -micro 8 \
//	        [-schedule 1f1b|gpipe|sliced|interleaved] [-sliced N] [-gantt] \
//	        [-parallelism N] [-timeout 30s] [-faults plan.json] \
//	        [-metrics report.json] [-trace trace.json]
//
// With -faults, the schedule executes under the injected fault plan: a
// surviving run reports its slowdown against the clean baseline, while a
// fatal fault (device crash, permanent link loss) is classified by its typed
// error. See cmd/experiments -suite resilience for the self-healing driver
// that recovers from fatal faults instead of stopping.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"autopipe"
	"autopipe/internal/baselines/megatron"
	"autopipe/internal/cliutil"
	"autopipe/internal/config"
	"autopipe/internal/cost"
	"autopipe/internal/errdefs"
	"autopipe/internal/exec"
	"autopipe/internal/fault"
	"autopipe/internal/memory"
	"autopipe/internal/model"
	"autopipe/internal/obs"
	"autopipe/internal/partition"
	"autopipe/internal/schedule"
	"autopipe/internal/sim"
	"autopipe/internal/slicer"
)

// metricsReport is the JSON document -metrics writes: the executed bubble
// decomposition and link statistics, per-device activation-memory peaks, and
// the observability registry's snapshot.
type metricsReport struct {
	Model      string        `json:"model"`
	Schedule   string        `json:"schedule"`
	Stages     int           `json:"stages"`
	Micro      int           `json:"micro"`
	MicroBatch int           `json:"microBatch"`
	Metrics    *exec.Metrics `json:"metrics"`
	BubbleFrac float64       `json:"bubbleFraction"`
	MemPeaks   []int64       `json:"memoryPeakBytes,omitempty"`
	Obs        obs.Snapshot  `json:"obs"`
}

func main() {
	modelName := flag.String("model", "gpt2-345m", "model: gpt2-345m, gpt2-762m, gpt2-1.3b, bert-large")
	stages := flag.Int("stages", 4, "pipeline depth")
	mbs := flag.Int("mbs", 4, "micro-batch size")
	micro := flag.Int("micro", 8, "micro-batches per iteration")
	schedName := flag.String("schedule", "1f1b", "schedule: 1f1b, gpipe, sliced, interleaved")
	slicedN := flag.Int("sliced", -1, "micro-batches to slice (-1 = solve with Algorithm 2)")
	chunks := flag.Int("chunks", 2, "interleaving factor for -schedule interleaved")
	even := flag.Bool("even", false, "use Megatron's even partition instead of the AutoPipe planner")
	gantt := flag.Bool("gantt", false, "print the per-device timeline")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON (chrome://tracing) to this path")
	critical := flag.Bool("critical", false, "print the executed critical path")
	metricsPath := flag.String("metrics", "", "write a JSON metrics report (bubbles, utilization, links, memory) to this path")
	pf := cliutil.RegisterPlanner(flag.CommandLine)
	ff := cliutil.RegisterFaults(flag.CommandLine)
	ef := cliutil.RegisterExec(flag.CommandLine)
	prof := cliutil.RegisterProfile(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fail(err)
	}

	plan, err := ff.Load()
	if err != nil {
		fail(err)
	}

	mc, err := config.ModelByName(*modelName)
	if err != nil {
		fail(err)
	}
	cluster := config.DefaultCluster()
	bl, err := model.Build(mc, cost.Geometry{MicroBatch: *mbs, Checkpoint: true},
		cluster.Device, cluster.Network, model.SubLayer)
	if err != nil {
		fail(err)
	}

	var part partition.Partition
	if *even {
		part, err = megatron.EvenPartition(bl, *stages)
	} else {
		ctx, cancel := pf.Context()
		var pr *autopipe.PlanResult
		pr, err = autopipe.NewPlanner(pf.PlannerOptions()...).PlanDepth(ctx, bl, *stages, *micro)
		cancel()
		if err == nil {
			part = pr.Best.Partition
		}
	}
	if err != nil {
		fail(err)
	}
	f, b := part.StageTimes(bl)

	var s *schedule.Schedule
	virtF, virtB := f, b
	switch *schedName {
	case "1f1b":
		s, err = schedule.OneFOneB(*stages, *micro)
	case "gpipe":
		s, err = schedule.GPipe(*stages, *micro)
	case "sliced":
		n := *slicedN
		if n < 0 {
			var sp slicer.Plan
			sp, err = slicer.Solve(f, b, bl.Comm, *micro)
			if err != nil {
				fail(err)
			}
			n = sp.NumSliced
			fmt.Printf("Algorithm 2 slices %d micro-batch(es)\n", n)
		}
		s, err = schedule.Sliced(*stages, *micro, n)
	case "interleaved":
		virtF, virtB, _, err = megatron.InterleavedTimes(bl, *stages, *chunks)
		if err != nil {
			fail(err)
		}
		s, err = schedule.Interleaved(*stages, *micro, *chunks)
	default:
		fail(fmt.Errorf("unknown schedule %q", *schedName))
	}
	if err != nil {
		fail(err)
	}

	reg := obs.NewRegistry()
	cfg := exec.Config{
		VirtFwd:        virtF,
		VirtBwd:        virtB,
		CommBytes:      bl.List[0].OutBytes,
		Network:        cluster.Network,
		KernelOverhead: cluster.Device.KernelOverhead,
		Obs:            reg,
		Sanitize:       ef.Sanitize,
	}
	var cleanIter float64
	if plan != nil {
		// Baseline without injection so the faulted run's slowdown is
		// attributable, then execute under the plan.
		clean, err := exec.Run(s, cfg)
		if err != nil {
			fail(err)
		}
		cleanIter = clean.IterTime
		cfg.Faults = fault.New(plan, reg)
	}
	r, err := exec.Run(s, cfg)
	if err != nil {
		failFault(err)
	}

	// Activation-memory ledger: available whenever virtual stages map 1:1 to
	// partition stages (everything except the interleaved schedule).
	var ledger *exec.MemoryLedger
	if s.VirtStages == part.Stages() {
		ledger = &exec.MemoryLedger{
			StashBytes:  make([]int64, s.VirtStages),
			StaticBytes: make([]int64, s.VirtStages),
		}
		for j := 0; j < part.Stages(); j++ {
			lo, hi := part.Stage(j)
			for _, blk := range bl.List[lo:hi] {
				ledger.StashBytes[j] += blk.ActStash
			}
			e := memory.StageEstimate(bl, part, j, *micro, memory.OneFOneB, 1)
			ledger.StaticBytes[j] = e.Params + e.Overhead
		}
	}

	fmt.Printf("%s, %d stages, %d micro-batches of size %d, schedule %s\n\n",
		mc.Name, *stages, *micro, *mbs, s.Name)
	fmt.Print(part.Describe(bl))
	fmt.Printf("\niteration time:   %.1f ms\n", r.IterTime*1e3)
	fmt.Printf("startup overhead: %.1f ms\n", r.Startup*1e3)
	if plan != nil {
		name := plan.Name
		if name == "" {
			name = ff.Path
		}
		injected := reg.Snapshot().Counters["fault.injected"]
		fmt.Printf("fault plan %q: %d fault(s) declared, %.0f activated; survived with +%.1f%% iteration time (clean %.1f ms)\n",
			name, len(plan.Faults), injected, 100*(r.IterTime-cleanIter)/cleanIter, cleanIter*1e3)
	}
	for d, u := range r.Utilization() {
		fmt.Printf("device %d utilization: %.1f%%\n", d, 100*u)
	}
	if sr, err := sim.Simulate(f, b, bl.Comm, *micro); err == nil && *schedName == "1f1b" {
		fmt.Printf("analytic simulator: %.1f ms (gap %.1f ms)\n", sr.IterTime*1e3, (r.IterTime-sr.IterTime)*1e3)
	}
	if *gantt {
		fmt.Println()
		fmt.Print(r.Gantt())
	}
	if *critical {
		path, err := r.CriticalPath(s)
		if err != nil {
			fail(err)
		}
		fmt.Println("\ncritical path:")
		for _, tr := range path {
			fmt.Printf("  %s dev%d [%.2f, %.2f] ms\n", tr.Op, tr.Device, tr.Start*1e3, tr.End*1e3)
		}
	}
	if *tracePath != "" {
		fp, err := os.Create(*tracePath)
		if err != nil {
			fail(err)
		}
		opts := exec.TraceOptions{}
		if ledger != nil {
			opts.Ledger, opts.Schedule = ledger, s
		}
		if err := r.WriteChromeTraceWith(fp, opts); err != nil {
			fp.Close()
			fail(err)
		}
		fp.Close()
		fmt.Printf("chrome trace written to %s\n", *tracePath)
	}
	if *metricsPath != "" {
		m, err := r.Metrics()
		if err != nil {
			fail(err)
		}
		m.Publish(reg)
		rep := metricsReport{
			Model:      mc.Name,
			Schedule:   s.Name,
			Stages:     *stages,
			Micro:      *micro,
			MicroBatch: *mbs,
			Metrics:    m,
			BubbleFrac: m.BubbleFraction(),
		}
		if ledger != nil {
			peaks, err := ledger.PeakUsage(s, r)
			if err != nil {
				fail(err)
			}
			rep.MemPeaks = peaks
		}
		rep.Obs = reg.Snapshot()
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*metricsPath, append(data, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("metrics report written to %s\n", *metricsPath)
	}
	if err := stopProf(); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pipesim:", err)
	os.Exit(1)
}

// failFault classifies a typed executor failure before exiting, pointing at
// the recovery path for faults a bare schedule run cannot survive.
func failFault(err error) {
	switch {
	case errors.Is(err, errdefs.ErrDeviceLost):
		fmt.Fprintln(os.Stderr, "pipesim: fatal fault (device lost):", err)
		fmt.Fprintln(os.Stderr, "pipesim: a bare schedule cannot survive device loss; the self-healing driver (cmd/experiments -suite resilience) checkpoints and replans over the survivors")
	case errors.Is(err, errdefs.ErrLinkDown):
		fmt.Fprintln(os.Stderr, "pipesim: fatal fault (link down):", err)
	case errors.Is(err, errdefs.ErrOOM):
		fmt.Fprintln(os.Stderr, "pipesim: fault (out of memory):", err)
	case errors.Is(err, errdefs.ErrTransient):
		fmt.Fprintln(os.Stderr, "pipesim: transient fault (retry would succeed):", err)
	default:
		fmt.Fprintln(os.Stderr, "pipesim:", err)
	}
	os.Exit(1)
}
