// Command pipesim executes a pipeline schedule for a benchmark model on the
// discrete-event cluster executor and prints timing metrics, per-device
// utilization, and (optionally) a text Gantt chart of the iteration.
//
// Usage:
//
//	pipesim -model gpt2-345m -stages 4 -mbs 4 -micro 8 \
//	        [-schedule 1f1b|gpipe|sliced|interleaved] [-sliced N] [-gantt]
package main

import (
	"flag"
	"fmt"
	"os"

	"autopipe/internal/baselines/megatron"
	"autopipe/internal/config"
	"autopipe/internal/core"
	"autopipe/internal/cost"
	"autopipe/internal/exec"
	"autopipe/internal/model"
	"autopipe/internal/partition"
	"autopipe/internal/schedule"
	"autopipe/internal/sim"
	"autopipe/internal/slicer"
)

func main() {
	modelName := flag.String("model", "gpt2-345m", "model: gpt2-345m, gpt2-762m, gpt2-1.3b, bert-large")
	stages := flag.Int("stages", 4, "pipeline depth")
	mbs := flag.Int("mbs", 4, "micro-batch size")
	micro := flag.Int("micro", 8, "micro-batches per iteration")
	schedName := flag.String("schedule", "1f1b", "schedule: 1f1b, gpipe, sliced, interleaved")
	slicedN := flag.Int("sliced", -1, "micro-batches to slice (-1 = solve with Algorithm 2)")
	chunks := flag.Int("chunks", 2, "interleaving factor for -schedule interleaved")
	even := flag.Bool("even", false, "use Megatron's even partition instead of the AutoPipe planner")
	gantt := flag.Bool("gantt", false, "print the per-device timeline")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON (chrome://tracing) to this path")
	critical := flag.Bool("critical", false, "print the executed critical path")
	flag.Parse()

	mc, err := config.ModelByName(*modelName)
	if err != nil {
		fail(err)
	}
	cluster := config.DefaultCluster()
	bl, err := model.Build(mc, cost.Geometry{MicroBatch: *mbs, Checkpoint: true},
		cluster.Device, cluster.Network, model.SubLayer)
	if err != nil {
		fail(err)
	}

	var part partition.Partition
	if *even {
		part, err = megatron.EvenPartition(bl, *stages)
	} else {
		var pr *core.PlanResult
		pr, err = core.PlanDepth(bl, *stages, *micro)
		if err == nil {
			part = pr.Best.Partition
		}
	}
	if err != nil {
		fail(err)
	}
	f, b := part.StageTimes(bl)

	var s *schedule.Schedule
	virtF, virtB := f, b
	switch *schedName {
	case "1f1b":
		s, err = schedule.OneFOneB(*stages, *micro)
	case "gpipe":
		s, err = schedule.GPipe(*stages, *micro)
	case "sliced":
		n := *slicedN
		if n < 0 {
			var sp slicer.Plan
			sp, err = slicer.Solve(f, b, bl.Comm, *micro)
			if err != nil {
				fail(err)
			}
			n = sp.NumSliced
			fmt.Printf("Algorithm 2 slices %d micro-batch(es)\n", n)
		}
		s, err = schedule.Sliced(*stages, *micro, n)
	case "interleaved":
		virtF, virtB, _, err = megatron.InterleavedTimes(bl, *stages, *chunks)
		if err != nil {
			fail(err)
		}
		s, err = schedule.Interleaved(*stages, *micro, *chunks)
	default:
		fail(fmt.Errorf("unknown schedule %q", *schedName))
	}
	if err != nil {
		fail(err)
	}

	r, err := exec.Run(s, exec.Config{
		VirtFwd:        virtF,
		VirtBwd:        virtB,
		CommBytes:      bl.List[0].OutBytes,
		Network:        cluster.Network,
		KernelOverhead: cluster.Device.KernelOverhead,
	})
	if err != nil {
		fail(err)
	}

	fmt.Printf("%s, %d stages, %d micro-batches of size %d, schedule %s\n\n",
		mc.Name, *stages, *micro, *mbs, s.Name)
	fmt.Print(part.Describe(bl))
	fmt.Printf("\niteration time:   %.1f ms\n", r.IterTime*1e3)
	fmt.Printf("startup overhead: %.1f ms\n", r.Startup*1e3)
	for d, u := range r.Utilization() {
		fmt.Printf("device %d utilization: %.1f%%\n", d, 100*u)
	}
	if sr, err := sim.Simulate(f, b, bl.Comm, *micro); err == nil && *schedName == "1f1b" {
		fmt.Printf("analytic simulator: %.1f ms (gap %.1f ms)\n", sr.IterTime*1e3, (r.IterTime-sr.IterTime)*1e3)
	}
	if *gantt {
		fmt.Println()
		fmt.Print(r.Gantt())
	}
	if *critical {
		path, err := r.CriticalPath(s)
		if err != nil {
			fail(err)
		}
		fmt.Println("\ncritical path:")
		for _, tr := range path {
			fmt.Printf("  %s dev%d [%.2f, %.2f] ms\n", tr.Op, tr.Device, tr.Start*1e3, tr.End*1e3)
		}
	}
	if *tracePath != "" {
		fp, err := os.Create(*tracePath)
		if err != nil {
			fail(err)
		}
		if err := r.WriteChromeTrace(fp); err != nil {
			fp.Close()
			fail(err)
		}
		fp.Close()
		fmt.Printf("chrome trace written to %s\n", *tracePath)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pipesim:", err)
	os.Exit(1)
}
