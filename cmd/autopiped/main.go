// Command autopiped runs the planner-as-a-service daemon: an HTTP/JSON API
// over the AutoPipe planning engine with a bounded worker pool, a
// content-addressed plan cache with singleflight dedup, and an optional
// restart-resumable on-disk job store.
//
// Usage:
//
//	autopiped [-addr 127.0.0.1:7180] [-store DIR] [-workers N] \
//	          [-rate N] [-burst N] [-queue-wait 2s] [-chaos plan.json] \
//	          [-parallelism N] [-timeout 30s] [-cpuprofile p] [-memprofile p]
//	autopiped -loadgen [-target URL] [-requests N] [-concurrency N] \
//	          [-distinct N] [-bench BENCH_service.json] [-chaos plan.json]
//	autopiped -smoke [-store DIR]
//	autopiped -soak [-soak-cycles N] [-soak-jobs N] [-store DIR] [-chaos plan.json]
//
// The default mode serves until SIGINT/SIGTERM, then drains: unfinished
// persisted jobs revert to pending so the next start re-runs them. -loadgen
// drives plan traffic at a daemon (starting an in-process one when -target is
// empty) and reports QPS, latency percentiles, and the cache-hit ratio;
// -bench additionally writes the report as an autopipebench baseline.
// -smoke runs the end-to-end CI check against a throwaway daemon.
// -soak runs the crash-recovery harness: it kills and restarts a real daemon
// -soak-cycles times mid-traffic and asserts exactly-once completion, cache
// re-seeding, and store quarantine; -chaos layers seeded fault injection on
// top of any of these modes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"autopipe/internal/cliutil"
	"autopipe/internal/config"
	"autopipe/internal/obs"
	"autopipe/internal/service"
)

func main() {
	workers := flag.Int("workers", 4, "queue workers executing jobs concurrently")
	queueDepth := flag.Int("queue", 256, "pending-job queue depth (full queue rejects with 503)")
	cacheEntries := flag.Int("cache", 1024, "content-addressed plan cache capacity")
	loadgen := flag.Bool("loadgen", false, "run the load generator instead of serving")
	smoke := flag.Bool("smoke", false, "run the end-to-end service smoke check and exit")
	soak := flag.Bool("soak", false, "run the crash-recovery soak harness and exit")
	soakCycles := flag.Int("soak-cycles", 3, "soak: kill/restart cycles to run")
	soakJobs := flag.Int("soak-jobs", 0, "soak: total plan jobs across all cycles (0 = 4 per cycle)")
	target := flag.String("target", "", "loadgen target base URL (empty = start an in-process daemon)")
	requests := flag.Int("requests", 200, "loadgen: total plan requests")
	concurrency := flag.Int("concurrency", 8, "loadgen: concurrent client workers")
	distinct := flag.Int("distinct", 4, "loadgen: distinct plan configurations in the traffic mix")
	benchPath := flag.String("bench", "", "loadgen: write the report as an autopipebench baseline to this path")
	sf := cliutil.RegisterService(flag.CommandLine)
	pf := cliutil.RegisterPlanner(flag.CommandLine)
	prof := cliutil.RegisterProfile(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fail(err)
		}
	}()

	switch {
	case *smoke:
		ctx, cancel := pf.Context()
		defer cancel()
		if err := service.Smoke(ctx, sf.Store, os.Stdout); err != nil {
			fail(err)
		}
	case *soak:
		if err := runSoak(pf, sf, *soakCycles, *soakJobs); err != nil {
			fail(err)
		}
	case *loadgen:
		if err := runLoadgen(pf, sf, *target, *requests, *concurrency, *distinct, *benchPath, *workers); err != nil {
			fail(err)
		}
	default:
		if err := serve(pf, sf, *workers, *queueDepth, *cacheEntries); err != nil {
			fail(err)
		}
	}
}

// loadChaos parses the plan named by -chaos; (nil, nil) when none was asked
// for, so callers pass the result straight to service.Chaos.
func loadChaos(sf *cliutil.ServiceFlags) (*service.ChaosPlan, error) {
	if sf.Chaos == "" {
		return nil, nil
	}
	return service.LoadChaos(sf.Chaos)
}

// serve runs the daemon until SIGINT/SIGTERM, then drains.
func serve(pf *cliutil.PlannerFlags, sf *cliutil.ServiceFlags, workers, queueDepth, cacheEntries int) error {
	plan, err := loadChaos(sf)
	if err != nil {
		return err
	}
	srv, err := service.New(service.Config{
		Parallelism:  pf.Parallelism,
		Workers:      workers,
		QueueDepth:   queueDepth,
		CacheEntries: cacheEntries,
		StoreDir:     sf.Store,
		JobTimeout:   pf.Timeout,
		RateLimit:    sf.Rate,
		RateBurst:    sf.Burst,
		QueueWait:    sf.QueueWait,
		Obs:          obs.NewRegistry(),
	})
	if err != nil {
		return err
	}
	srv.Start()

	ln, err := net.Listen("tcp", sf.Addr)
	if err != nil {
		return fmt.Errorf("autopiped: listen: %w", err)
	}
	hs := &http.Server{Handler: service.Chaos(srv.Handler(), plan, srv.Registry())}
	if plan != nil {
		fmt.Printf("autopiped: chaos plan %q armed (seed=%d, %d rules)\n", plan.Name, plan.Seed, len(plan.Chaos))
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	fmt.Printf("autopiped: serving on http://%s (store=%s, workers=%d)\n",
		ln.Addr(), storeLabel(sf.Store), workers)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("autopiped: %v, draining\n", sig)
	case err := <-errCh:
		srv.Close()
		return fmt.Errorf("autopiped: serve: %w", err)
	}
	shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil {
		return fmt.Errorf("autopiped: shutdown: %w", err)
	}
	srv.Close()
	return nil
}

// runLoadgen drives plan traffic at target, booting a throwaway in-process
// daemon first when no target is given.
func runLoadgen(pf *cliutil.PlannerFlags, sf *cliutil.ServiceFlags, target string, requests, concurrency, distinct int, benchPath string, workers int) error {
	ctx, cancel := pf.Context()
	defer cancel()

	if target == "" {
		plan, err := loadChaos(sf)
		if err != nil {
			return err
		}
		srv, err := service.New(service.Config{
			Parallelism: pf.Parallelism,
			Workers:     workers,
			StoreDir:    sf.Store,
			RateLimit:   sf.Rate,
			RateBurst:   sf.Burst,
			QueueWait:   sf.QueueWait,
		})
		if err != nil {
			return err
		}
		srv.Start()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("autopiped: listen: %w", err)
		}
		hs := &http.Server{Handler: service.Chaos(srv.Handler(), plan, srv.Registry())}
		go func() { _ = hs.Serve(ln) }()
		defer func() {
			shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = hs.Shutdown(shCtx)
			srv.Close()
		}()
		target = "http://" + ln.Addr().String()
		fmt.Printf("loadgen: started in-process daemon at %s\n", target)
	}

	rep, err := service.Loadgen(ctx, target, service.LoadgenOptions{
		Requests:    requests,
		Concurrency: concurrency,
		Distinct:    distinct,
		Progress:    os.Stdout,
	})
	if err != nil {
		return err
	}
	if benchPath != "" {
		base, err := rep.ToBaseline("service")
		if err != nil {
			return err
		}
		if err := config.Save(benchPath, base); err != nil {
			return err
		}
		fmt.Printf("baseline written to %s\n", benchPath)
	}
	return nil
}

// runSoak drives the crash-recovery harness: kill/restart cycles over a real
// daemon on a real store, with every resilience invariant checked.
func runSoak(pf *cliutil.PlannerFlags, sf *cliutil.ServiceFlags, cycles, jobs int) error {
	ctx, cancel := pf.Context()
	defer cancel()
	plan, err := loadChaos(sf)
	if err != nil {
		return err
	}
	storeDir := sf.Store
	if storeDir == "" {
		dir, err := os.MkdirTemp("", "autopiped-soak-*")
		if err != nil {
			return fmt.Errorf("autopiped: soak store: %w", err)
		}
		defer os.RemoveAll(dir)
		storeDir = dir
	}
	if _, err := service.Soak(ctx, service.SoakOptions{
		StoreDir: storeDir,
		Cycles:   cycles,
		Jobs:     jobs,
		Chaos:    plan,
		Progress: os.Stdout,
	}); err != nil {
		return err
	}
	fmt.Println("soak PASS")
	return nil
}

func storeLabel(dir string) string {
	if dir == "" {
		return "memory"
	}
	return dir
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "autopiped:", err)
	if errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "autopiped: hint: raise -timeout")
	}
	os.Exit(1)
}
