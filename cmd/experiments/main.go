// Command experiments regenerates the paper's evaluation tables and figures
// (Tables I-IV, Figs. 9-14) on the simulated testbed.
//
// Usage:
//
//	experiments [-exp all|table1|table2|table3|table4|fig9|fig10|fig11|fig12|fig13|fig14a|fig14b|resilience] \
//	            [-parallelism N] [-timeout 10m] [-csv dir] [-faults plan.json]
//
// -faults adds a custom scenario to the resilience sweep: the given fault
// plan is injected into the self-healing training driver alongside the
// built-in clean/transient/straggler/crash scenarios.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"autopipe/internal/cliutil"
	"autopipe/internal/experiments"
	"autopipe/internal/tableio"
)

func main() {
	exp := flag.String("exp", "all", "experiment id to run (comma-separated), or 'all'")
	csvDir := flag.String("csv", "", "directory to also write per-experiment CSV files into")
	pf := cliutil.RegisterPlanner(flag.CommandLine)
	ff := cliutil.RegisterFaults(flag.CommandLine)
	prof := cliutil.RegisterProfile(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	env := experiments.DefaultEnv()
	env.Search = pf.Options()
	fplan, err := ff.Load()
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	env.Faults = fplan
	ctx, cancel := pf.Context()
	defer cancel()
	env.Ctx = ctx
	runners := map[string]func() (*tableio.Table, error){
		"table1": func() (*tableio.Table, error) { return env.Table1() },
		"table2": func() (*tableio.Table, error) { return env.Table2() },
		"table3": func() (*tableio.Table, error) { _, t, err := env.Table3(); return t, err },
		"table4": func() (*tableio.Table, error) { _, t, err := env.Table4(); return t, err },
		"fig9":   func() (*tableio.Table, error) { _, t, err := env.Fig9(); return t, err },
		"fig10":  func() (*tableio.Table, error) { _, t, err := env.Fig10(); return t, err },
		"fig11":  func() (*tableio.Table, error) { _, t, err := env.Fig11(); return t, err },
		"fig12":  func() (*tableio.Table, error) { _, t, err := env.Fig12(); return t, err },
		"fig13":  func() (*tableio.Table, error) { _, t, err := env.Fig13(); return t, err },
		"fig14a": func() (*tableio.Table, error) { _, t, err := env.Fig14a(); return t, err },
		"fig14b": func() (*tableio.Table, error) { _, t, err := env.Fig14b(); return t, err },
		// Ablations beyond the paper (DESIGN.md §6).
		"abl-granularity": func() (*tableio.Table, error) { _, t, err := env.AblationGranularity(); return t, err },
		"abl-heuristic":   func() (*tableio.Table, error) { _, t, err := env.AblationHeuristic(); return t, err },
		"abl-slicing":     func() (*tableio.Table, error) { _, t, err := env.AblationSlicingCount(); return t, err },
		"abl-schedule":    func() (*tableio.Table, error) { _, t, err := env.AblationSchedules(); return t, err },
		"abl-interleaved": func() (*tableio.Table, error) { _, t, err := env.AblationInterleaved(); return t, err },
		// Planner/Slicer search telemetry (beyond the paper; DESIGN.md §7).
		"telemetry": func() (*tableio.Table, error) { _, t, err := env.PlannerTelemetry(); return t, err },
		// Self-healing driver under injected faults (DESIGN.md §10).
		"resilience": func() (*tableio.Table, error) { _, t, err := env.Resilience(); return t, err },
	}
	order := []string{"table1", "table2", "fig9", "fig10", "fig11", "table3", "table4", "fig12", "fig13", "fig14a", "fig14b",
		"abl-granularity", "abl-heuristic", "abl-slicing", "abl-schedule", "abl-interleaved", "telemetry", "resilience"}

	var ids []string
	if *exp == "all" {
		ids = order
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if _, ok := runners[id]; !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (want one of %s)\n", id, strings.Join(order, ", "))
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	for _, id := range ids {
		t, err := runners[id]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		if err := t.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			f, err := os.Create(filepath.Join(*csvDir, id+".csv"))
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			if err := t.WriteCSV(f); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			f.Close()
		}
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
