package autopipe_test

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"autopipe"
)

// The public facade is what the examples and downstream users consume; these
// tests exercise the documented end-to-end flow.

func TestPublicPlanEvaluateFlow(t *testing.T) {
	model := autopipe.GPT2_345M()
	cluster := autopipe.DefaultCluster()
	cluster.NumGPUs = 4
	run := autopipe.Run{MicroBatch: 32, GlobalBatch: 512, Checkpoint: true}

	spec, blocks, err := autopipe.Plan(model, run, cluster)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Planner != "AutoPipe" {
		t.Errorf("planner = %q", spec.Planner)
	}
	if spec.Depth() != 2 {
		t.Errorf("depth = %d, want 2 (the paper's high-memory plan)", spec.Depth())
	}
	if spec.NumSliced < 1 {
		t.Error("pipeline plan without slicing")
	}
	res, err := autopipe.Evaluate(spec, blocks, run, cluster)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != "" {
		t.Fatalf("evaluation failed: %s", res.Err)
	}
	if res.IterTime <= 0 || res.Micro != 8 {
		t.Errorf("unexpected evaluation: %+v", res)
	}
}

func TestPublicBuildSimulateSlice(t *testing.T) {
	cluster := autopipe.DefaultCluster()
	blocks, err := autopipe.Build(autopipe.BERTLarge(), 16, cluster)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := autopipe.PlanDepth(blocks, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	f, b := pr.Best.Partition.StageTimes(blocks)
	sr, err := autopipe.Simulate(f, b, blocks.Comm, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sr.IterTime <= 0 || sr.Master < 0 || sr.Master >= 4 {
		t.Errorf("bad simulation: %+v", sr)
	}
	sp, err := autopipe.Slice(f, b, blocks.Comm, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sp.NumSliced < 1 || sp.NumSliced > 4 {
		t.Errorf("slice plan %+v out of range", sp)
	}
}

// TestPlannerAPIFlow exercises the redesigned entry point: a Planner built
// from functional options, planning under a context, reporting telemetry.
func TestPlannerAPIFlow(t *testing.T) {
	reg := autopipe.NewRegistry()
	p := autopipe.NewPlanner(
		autopipe.WithParallelism(4),
		autopipe.WithObserver(reg),
	)
	model := autopipe.GPT2_345M()
	cluster := autopipe.DefaultCluster()
	cluster.NumGPUs = 4
	run := autopipe.Run{MicroBatch: 32, GlobalBatch: 512, Checkpoint: true}

	spec, blocks, err := p.Plan(context.Background(), model, run, cluster)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Depth() != 2 {
		t.Errorf("depth = %d, want 2 (must match the deprecated Plan)", spec.Depth())
	}
	snap := reg.Snapshot()
	if len(snap.Counters)+len(snap.Gauges) == 0 {
		t.Error("WithObserver registry received no telemetry")
	}

	// The profile helpers compose with a planned partition.
	prof := autopipe.Profile(spec.Partition, blocks, 8)
	sr, err := autopipe.SimulateProfile(prof)
	if err != nil {
		t.Fatal(err)
	}
	if sr.IterTime <= 0 {
		t.Errorf("bad simulation: %+v", sr)
	}
	sp, err := autopipe.SliceProfile(prof)
	if err != nil {
		t.Fatal(err)
	}
	if sp.NumSliced != spec.NumSliced {
		t.Errorf("SliceProfile = %d sliced, spec has %d", sp.NumSliced, spec.NumSliced)
	}
}

// TestPlannerDeterministicAcrossParallelism is the public determinism
// property: for every zoo model, parallelism 1, 4, and GOMAXPROCS yield
// byte-identical Specs (SearchTime, the only wall-clock field, zeroed).
func TestPlannerDeterministicAcrossParallelism(t *testing.T) {
	cluster := autopipe.DefaultCluster()
	run := autopipe.Run{MicroBatch: 8, GlobalBatch: 512, Checkpoint: true}
	for _, model := range autopipe.Models() {
		var ref *autopipe.Spec
		for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			p := autopipe.NewPlanner(autopipe.WithParallelism(w))
			spec, _, err := p.Plan(context.Background(), model, run, cluster)
			if err != nil {
				t.Fatalf("%s parallelism %d: %v", model.Name, w, err)
			}
			spec.SearchTime = 0
			if ref == nil {
				ref = spec
			} else if !reflect.DeepEqual(ref, spec) {
				t.Errorf("%s: plan at parallelism %d differs from parallelism 1:\n%+v\nvs\n%+v",
					model.Name, w, spec, ref)
			}
		}
	}
}

func TestPlannerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := autopipe.NewPlanner()
	cluster := autopipe.DefaultCluster()
	run := autopipe.Run{MicroBatch: 4, GlobalBatch: 128, Checkpoint: true}
	if _, _, err := p.Plan(ctx, autopipe.GPT2_345M(), run, cluster); !errors.Is(err, context.Canceled) {
		t.Errorf("Plan on cancelled context: err = %v, want context.Canceled", err)
	}
}

func TestPublicSentinelErrors(t *testing.T) {
	p := autopipe.NewPlanner()
	cluster := autopipe.DefaultCluster()

	// Micro-batch that does not divide the global batch → ErrBadConfig.
	bad := autopipe.Run{MicroBatch: 3, GlobalBatch: 128, Checkpoint: true}
	if _, _, err := p.Plan(context.Background(), autopipe.GPT2_345M(), bad, cluster); !errors.Is(err, autopipe.ErrBadConfig) {
		t.Errorf("invalid run: err = %v, want ErrBadConfig", err)
	}

	// A huge micro-batch on few GPUs exceeds memory at every depth →
	// ErrInfeasible.
	cluster.NumGPUs = 2
	oom := autopipe.Run{MicroBatch: 512, GlobalBatch: 1024, Checkpoint: true}
	if _, _, err := p.Plan(context.Background(), autopipe.GPT2_1_3B(), oom, cluster); !errors.Is(err, autopipe.ErrInfeasible) {
		t.Errorf("oversized run: err = %v, want ErrInfeasible", err)
	}
}

// TestEvalResultFailure checks the typed view of evaluation failures.
func TestEvalResultFailure(t *testing.T) {
	cluster := autopipe.DefaultCluster()
	cluster.NumGPUs = 4
	run := autopipe.Run{MicroBatch: 32, GlobalBatch: 512, Checkpoint: true}
	spec, blocks, err := autopipe.NewPlanner().Plan(context.Background(), autopipe.GPT2_345M(), run, cluster)
	if err != nil {
		t.Fatal(err)
	}
	res, err := autopipe.Evaluate(spec, blocks, run, cluster)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failure() != nil {
		t.Errorf("feasible plan reports failure: %v", res.Failure())
	}

	// Starve the device to force an OOM marker.
	tiny := cluster
	tiny.Device.MemoryBytes = 1 << 30
	res, err = autopipe.Evaluate(spec, blocks, run, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.Err, "OOM") {
		t.Fatalf("expected an OOM marker, got %q", res.Err)
	}
	if !errors.Is(res.Failure(), autopipe.ErrOOM) {
		t.Errorf("Failure() = %v, want ErrOOM", res.Failure())
	}
}

// TestDeprecatedWrappersMatchPlanner proves the migration is loss-free: the
// deprecated free functions return exactly what the Planner API returns.
func TestDeprecatedWrappersMatchPlanner(t *testing.T) {
	model := autopipe.BERTLarge()
	cluster := autopipe.DefaultCluster()
	run := autopipe.Run{MicroBatch: 8, GlobalBatch: 256, Checkpoint: true}

	oldSpec, _, err := autopipe.Plan(model, run, cluster)
	if err != nil {
		t.Fatal(err)
	}
	newSpec, _, err := autopipe.NewPlanner().Plan(context.Background(), model, run, cluster)
	if err != nil {
		t.Fatal(err)
	}
	oldSpec.SearchTime, newSpec.SearchTime = 0, 0
	if !reflect.DeepEqual(oldSpec, newSpec) {
		t.Errorf("deprecated Plan differs from Planner.Plan:\n%+v\nvs\n%+v", oldSpec, newSpec)
	}

	blocks, err := autopipe.Build(model, 8, cluster)
	if err != nil {
		t.Fatal(err)
	}
	f, b := newSpec.Partition.StageTimes(blocks)
	oldSim, err := autopipe.Simulate(f, b, blocks.Comm, 8)
	if err != nil {
		t.Fatal(err)
	}
	newSim, err := autopipe.SimulateProfile(autopipe.StageProfile{Fwd: f, Bwd: b, Comm: blocks.Comm, Micro: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oldSim, newSim) {
		t.Error("Simulate and SimulateProfile disagree")
	}
}

func TestPublicModelZoo(t *testing.T) {
	if got := len(autopipe.Models()); got != 4 {
		t.Errorf("zoo size %d, want 4", got)
	}
	m, err := autopipe.ModelByName("gpt2-1.3b")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m.Name, "1.3B") {
		t.Errorf("resolved %q", m.Name)
	}
}
