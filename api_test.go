package autopipe_test

import (
	"strings"
	"testing"

	"autopipe"
)

// The public facade is what the examples and downstream users consume; these
// tests exercise the documented end-to-end flow.

func TestPublicPlanEvaluateFlow(t *testing.T) {
	model := autopipe.GPT2_345M()
	cluster := autopipe.DefaultCluster()
	cluster.NumGPUs = 4
	run := autopipe.Run{MicroBatch: 32, GlobalBatch: 512, Checkpoint: true}

	spec, blocks, err := autopipe.Plan(model, run, cluster)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Planner != "AutoPipe" {
		t.Errorf("planner = %q", spec.Planner)
	}
	if spec.Depth() != 2 {
		t.Errorf("depth = %d, want 2 (the paper's high-memory plan)", spec.Depth())
	}
	if spec.NumSliced < 1 {
		t.Error("pipeline plan without slicing")
	}
	res, err := autopipe.Evaluate(spec, blocks, run, cluster)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != "" {
		t.Fatalf("evaluation failed: %s", res.Err)
	}
	if res.IterTime <= 0 || res.Micro != 8 {
		t.Errorf("unexpected evaluation: %+v", res)
	}
}

func TestPublicBuildSimulateSlice(t *testing.T) {
	cluster := autopipe.DefaultCluster()
	blocks, err := autopipe.Build(autopipe.BERTLarge(), 16, cluster)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := autopipe.PlanDepth(blocks, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	f, b := pr.Best.Partition.StageTimes(blocks)
	sr, err := autopipe.Simulate(f, b, blocks.Comm, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sr.IterTime <= 0 || sr.Master < 0 || sr.Master >= 4 {
		t.Errorf("bad simulation: %+v", sr)
	}
	sp, err := autopipe.Slice(f, b, blocks.Comm, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sp.NumSliced < 1 || sp.NumSliced > 4 {
		t.Errorf("slice plan %+v out of range", sp)
	}
}

func TestPublicModelZoo(t *testing.T) {
	if got := len(autopipe.Models()); got != 4 {
		t.Errorf("zoo size %d, want 4", got)
	}
	m, err := autopipe.ModelByName("gpt2-1.3b")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m.Name, "1.3B") {
		t.Errorf("resolved %q", m.Name)
	}
}
