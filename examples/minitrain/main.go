// Minitrain: real pipeline-parallel training on the miniature framework.
// A tiny GPT is trained twice on identical data — serially on one "device"
// and as a 3-stage 1F1B pipeline with AutoPipe's sliced warmup — and the
// losses and weights stay identical, demonstrating the paper's semantic
// claims: synchronous pipeline parallelism and micro-batch slicing do not
// affect the computation (and therefore not convergence, §III-C).
//
//	go run ./examples/minitrain
package main

import (
	"fmt"
	"log"
	"math"

	"autopipe/internal/nn"
	"autopipe/internal/tensor"
	"autopipe/internal/train"
)

func main() {
	cfg := nn.GPTConfig{Vocab: 31, MaxSeq: 10, Hidden: 24, Heads: 4, Layers: 3, FFNMult: 4, Seed: 2022}
	serialMods := nn.BuildGPT(cfg) // same seed -> identical init
	pipeMods := nn.BuildGPT(cfg)

	// Cut the module array at sub-layer granularity, the way the planner
	// cuts its block array: [emb+attn | ffn..attn | ffn..head].
	pipe, err := train.NewPipeline(pipeMods, []int{0, 2, 5, 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tiny GPT: %d modules across %d stages (sub-layer cuts)\n\n", len(pipeMods), len(pipe.Stages))

	dsSerial := train.NewDataset(cfg.Vocab, cfg.MaxSeq-2, 7)
	dsPipe := train.NewDataset(cfg.Vocab, cfg.MaxSeq-2, 7)
	serialOpt := train.NewAdam(2e-3)
	pipeOpt := train.NewAdam(2e-3)
	serialParams := nn.CollectParams(serialMods)
	pipeParams := pipe.AllParams()

	const steps, m, batch = 40, 4, 4
	scale := 1.0 / float64(m*batch*(cfg.MaxSeq-2))
	fmt.Printf("%5s  %12s  %12s  %10s\n", "step", "serial loss", "pipeline loss", "|Δweights|")
	for step := 1; step <= steps; step++ {
		microsA := dsSerial.Micros(m, batch)
		microsB := dsPipe.Micros(m, batch)

		nn.ZeroGrads(serialParams)
		serialLoss := train.SerialStep(serialMods, microsA, scale)
		serialOpt.Step(serialParams)

		nn.ZeroGrads(pipeParams)
		pipeLoss, err := pipe.Step(microsB, 1 /* sliced warmup micro-batch */, scale)
		if err != nil {
			log.Fatal(err)
		}
		pipeOpt.Step(pipeParams)

		if step%8 == 0 || step == 1 {
			var worst float64
			for i := range serialParams {
				if d := tensor.MaxAbsDiff(serialParams[i].W, pipeParams[i].W); d > worst {
					worst = d
				}
			}
			fmt.Printf("%5d  %12.5f  %12.5f  %10.2e\n", step, serialLoss, pipeLoss, worst)
			if math.Abs(serialLoss-pipeLoss) > 1e-8 {
				log.Fatalf("losses diverged at step %d", step)
			}
		}
	}
	fmt.Println("\npipeline training (1F1B + sliced warmup) matches serial training exactly —")
	fmt.Println("balanced partitioning and micro-batch slicing change timing, not math.")
}
