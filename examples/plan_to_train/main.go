// Plan-to-train: the full AutoPipe loop on real numbers. The planner's block
// array ([Embedding, (Attn, FFN) x L, Head]) indexes exactly the same
// positions as the training framework's module array, so a partition planned
// on the analytic cost model drops straight onto the real pipelined trainer.
//
// This example (1) plans a 3-stage partition and a slicing count for a small
// GPT with the AutoPipe Planner and Slicer, (2) instantiates the same
// architecture in the miniature training framework, cut at the planned
// bounds, and (3) trains it under the planned sliced-1F1B schedule,
// verifying against serial training.
//
//	go run ./examples/plan_to_train
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"autopipe"
	"autopipe/internal/nn"
	"autopipe/internal/train"
)

func main() {
	// A small GPT, described both ways: for the cost model and for the real
	// framework.
	arch := autopipe.Model{
		Name: "GPT-mini", Layers: 4, Hidden: 64, Heads: 4,
		FFNMult: 4, SeqLen: 32, Vocab: 97, TiedHead: false,
	}
	nnCfg := nn.GPTConfig{
		Vocab: arch.Vocab, MaxSeq: arch.SeqLen, Hidden: arch.Hidden,
		Heads: arch.Heads, Layers: arch.Layers, FFNMult: arch.FFNMult, Seed: 1,
	}

	// 1. Plan: balanced 3-stage partition + slicing count on the cost model.
	const depth, m, batch = 3, 6, 4
	cluster := autopipe.DefaultCluster()
	blocks, err := autopipe.Build(arch, batch, cluster)
	if err != nil {
		log.Fatal(err)
	}
	pr, err := autopipe.NewPlanner().PlanDepth(context.Background(), blocks, depth, m)
	if err != nil {
		log.Fatal(err)
	}
	part := pr.Best.Partition
	sp, err := autopipe.SliceProfile(autopipe.Profile(part, blocks, m))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned partition (block bounds %v, layers %v), slicing %d micro-batch(es)\n",
		part.Bounds, part.LayerCounts(blocks), sp.NumSliced)

	// 2. Cut the real module array at the planned bounds — same indexing.
	mods := nn.BuildGPT(nnCfg)
	if len(mods) != blocks.Len() {
		log.Fatalf("module array (%d) does not align with block array (%d)", len(mods), blocks.Len())
	}
	pipe, err := train.NewPipeline(mods, part.Bounds)
	if err != nil {
		log.Fatal(err)
	}
	serial := nn.BuildGPT(nnCfg) // identical init for the reference

	// 3. Train under the planned schedule; the serial reference must match.
	dsA := train.NewDataset(arch.Vocab, 16, 3)
	dsB := train.NewDataset(arch.Vocab, 16, 3)
	optA := train.NewAdam(2e-3)
	optB := train.NewAdam(2e-3)
	scale := 1.0 / float64(m*batch*16)
	for step := 1; step <= 12; step++ {
		microsA := dsA.Micros(m, batch)
		microsB := dsB.Micros(m, batch)

		nn.ZeroGrads(nn.CollectParams(serial))
		serialLoss := train.SerialStep(serial, microsA, scale)
		optA.Step(nn.CollectParams(serial))

		nn.ZeroGrads(pipe.AllParams())
		pipeLoss, err := pipe.Step(microsB, sp.NumSliced, scale)
		if err != nil {
			log.Fatal(err)
		}
		optB.Step(pipe.AllParams())

		if math.Abs(serialLoss-pipeLoss) > 1e-9 {
			log.Fatalf("step %d: pipeline loss %.9f diverged from serial %.9f", step, pipeLoss, serialLoss)
		}
		if step%4 == 0 {
			fmt.Printf("step %2d: loss %.5f (pipeline == serial)\n", step, pipeLoss)
		}
	}
	fmt.Println("\nthe planned partition and slicing schedule trained the real model with")
	fmt.Println("serial-identical losses — plan once on the cost model, run anywhere.")
}
