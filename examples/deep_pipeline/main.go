// Deep pipeline: the scenario that motivates the AutoPipe Slicer. At twelve
// stages the pipeline startup overhead is a significant fraction of the
// iteration, and BERT-large's pooler-heavy tail makes Megatron-LM's even
// partition unbalanced. This example walks the four methods of the paper's
// Fig. 10/14 across depths and prints iteration time and startup overhead.
//
//	go run ./examples/deep_pipeline
package main

import (
	"context"
	"fmt"
	"log"

	"autopipe"
	"autopipe/internal/baselines/megatron"
	"autopipe/internal/experiments"
)

func main() {
	model := autopipe.BERTLarge()
	cluster := autopipe.DefaultCluster()
	env := experiments.Env{Cluster: cluster}

	fmt.Printf("%s, micro-batch 16, micro-batches = 2 x depth\n\n", model.Name)
	fmt.Printf("%6s  %12s  %12s  %12s  %12s  %8s\n",
		"depth", "Megatron", "Slicer", "Planner", "AutoPipe", "speedup")
	for _, depth := range []int{2, 4, 8, 12} {
		res, err := env.ComparePoint(model, depth, 16, 2*depth)
		if err != nil {
			log.Fatal(err)
		}
		mega := res[experiments.SeriesMegatron]
		auto := res[experiments.SeriesAutoPipe]
		fmt.Printf("%6d  %10.1fms  %10.1fms  %10.1fms  %10.1fms  %7.2fx\n",
			depth,
			mega.IterTime*1e3,
			res[experiments.SeriesSlicer].IterTime*1e3,
			res[experiments.SeriesPlanner].IterTime*1e3,
			auto.IterTime*1e3,
			mega.IterTime/auto.IterTime)
	}

	// Zoom into the 12-stage pipeline: where does the win come from?
	const depth, mbs = 12, 16
	blocks, err := autopipe.Build(model, mbs, cluster)
	if err != nil {
		log.Fatal(err)
	}
	even, err := megatron.EvenPartition(blocks, depth)
	if err != nil {
		log.Fatal(err)
	}
	pr, err := autopipe.NewPlanner().PlanDepth(context.Background(), blocks, depth, 2*depth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nat %d stages:\n", depth)
	fmt.Printf("  even partition imbalance (stddev): %.2f ms\n", even.Imbalance(blocks)*1e3)
	fmt.Printf("  planner imbalance (stddev):        %.2f ms\n", pr.Best.Partition.Imbalance(blocks)*1e3)
	fmt.Printf("  planner layer counts: %v\n", pr.Best.Partition.LayerCounts(blocks))
	sp, err := autopipe.SliceProfile(autopipe.Profile(pr.Best.Partition, blocks, 2*depth))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Algorithm 2 slices %d warmup micro-batch(es) to halve the startup\n", sp.NumSliced)
}
