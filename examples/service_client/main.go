// Service client: planning through the autopiped daemon. The example boots a
// daemon in-process (in real deployments it runs standalone: `autopiped -addr
// host:port -store dir`), then plans through the HTTP client twice — the
// second request is served from the content-addressed plan cache without a
// search — and shows a typed rejection crossing the wire intact.
//
//	go run ./examples/service_client
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"

	"autopipe"
	"autopipe/client"
	"autopipe/internal/service"
)

func main() {
	// Boot a daemon on a loopback port.
	srv, err := service.New(service.Config{})
	if err != nil {
		log.Fatal(err)
	}
	srv.Start()
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(ln, srv.Handler()) }()

	c, err := client.New("http://" + ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	model := autopipe.GPT2_345M()
	cluster := autopipe.DefaultCluster()
	cluster.NumGPUs = 4
	run := autopipe.Run{MicroBatch: 4, GlobalBatch: 128, Checkpoint: true}

	// First request runs the engine; the result is cached by content address.
	spec, job, err := c.Plan(ctx, model, run, cluster)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned %s: depth %d, %d sliced, predicted %.1f ms (job %s, cache hit: %v)\n",
		model.Name, spec.Depth(), spec.NumSliced, spec.Predicted*1e3, job.ID, job.CacheHit)

	// An identical request never reaches the engine again.
	_, job2, err := c.Plan(ctx, model, run, cluster)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resubmitted identically: job %s, cache hit: %v\n", job2.ID, job2.CacheHit)

	// Typed errors round-trip the wire: errors.Is sees the same sentinel an
	// in-process Planner would return.
	_, _, err = c.Plan(ctx, model, autopipe.Run{MicroBatch: 5, GlobalBatch: 128}, cluster)
	fmt.Printf("invalid run rejected: %v (errors.Is ErrBadConfig: %v)\n",
		err, errors.Is(err, autopipe.ErrBadConfig))
}
