// Quickstart: plan GPT-2 345M on four GPUs with AutoPipe and measure the
// result on the simulated testbed.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"autopipe"
)

func main() {
	model := autopipe.GPT2_345M()
	cluster := autopipe.DefaultCluster()
	cluster.NumGPUs = 4
	run := autopipe.Run{MicroBatch: 4, GlobalBatch: 128, Checkpoint: true}

	// The Planner picks the pipeline depth and a balanced sub-layer
	// partition; the Slicer sizes the warmup micro-batch slicing. The search
	// fans out over a worker pool, but the resulting plan is deterministic —
	// any parallelism level returns the same Spec.
	planner := autopipe.NewPlanner(autopipe.WithParallelism(4))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	spec, blocks, err := planner.Plan(ctx, model, run, cluster)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned %s in %v: %d stage(s) x dp %d, %d sliced micro-batch(es)\n",
		model.Name, spec.SearchTime, spec.Depth(), spec.DataParallel(), spec.NumSliced)
	fmt.Print(spec.Partition.Describe(blocks))

	// Evaluate executes one training iteration on the discrete-event
	// cluster executor (the stand-in for the paper's 16-GPU testbed).
	res, err := autopipe.Evaluate(spec, blocks, run, cluster)
	if err != nil {
		log.Fatal(err)
	}
	if failure := res.Failure(); failure != nil {
		log.Fatalf("plan infeasible: %v", failure)
	}
	fmt.Printf("\niteration: %.1f ms  (startup %.1f ms, all-reduce %.1f ms, %d micro-batches)\n",
		res.IterTime*1e3, res.Startup*1e3, res.AllReduce*1e3, res.Micro)

	// The analytic simulator the Planner searches with agrees with the
	// executed result up to launch overheads (paper Fig. 11).
	if spec.Depth() > 1 {
		sr, err := autopipe.SimulateProfile(autopipe.Profile(spec.Partition, blocks, res.Micro))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("analytic simulator: %.1f ms, master stage %d\n", sr.IterTime*1e3, sr.Master)
	}
}
