// Planner comparison under memory pressure: GPT-2 1.3B at micro-batch 16
// does not fit a 2-stage pipeline on 24 GB devices. DAPPLE plans one anyway
// (its planner has no memory model) and fails; Piper and AutoPipe pipeline
// deeper, and AutoPipe's balanced sub-layer partition wins — the paper's
// Table IV story.
//
//	go run ./examples/planner_comparison
package main

import (
	"context"
	"fmt"
	"log"

	"autopipe"
	"autopipe/internal/baselines/dapple"
	"autopipe/internal/baselines/piper"
	"autopipe/internal/plan"
)

func main() {
	model := autopipe.GPT2_1_3B()
	cluster := autopipe.DefaultCluster()
	cluster.NumGPUs = 4
	run := autopipe.Run{MicroBatch: 16, GlobalBatch: 512, Checkpoint: true}

	type planner struct {
		name string
		plan func() (*plan.Spec, *autopipe.Blocks, error)
	}
	planners := []planner{
		{"DAPPLE", func() (*plan.Spec, *autopipe.Blocks, error) {
			return dapple.Plan(model, run, cluster, dapple.Options{})
		}},
		{"Piper", func() (*plan.Spec, *autopipe.Blocks, error) {
			return piper.Plan(model, run, cluster, piper.Options{})
		}},
		{"AutoPipe", func() (*plan.Spec, *autopipe.Blocks, error) {
			return autopipe.NewPlanner().Plan(context.Background(), model, run, cluster)
		}},
	}

	fmt.Printf("%s on %d GPUs, mbs=%d, gbs=%d\n\n", model.Name, cluster.NumGPUs, run.MicroBatch, run.GlobalBatch)
	var autoTime float64
	for _, p := range planners {
		spec, blocks, err := p.plan()
		if err != nil {
			log.Fatalf("%s: %v", p.name, err)
		}
		res, err := autopipe.Evaluate(spec, blocks, run, cluster)
		if err != nil {
			log.Fatalf("%s: %v", p.name, err)
		}
		fmt.Printf("%-9s depth=%d devices=%v planned in %v\n", p.name, spec.Depth(), spec.StageDevices, spec.SearchTime)
		fmt.Printf("          stage layers: %v\n", spec.Partition.LayerCounts(blocks))
		if res.Err != "" {
			fmt.Printf("          result: %s\n\n", res.Err)
			continue
		}
		fmt.Printf("          iteration: %.1f ms (all-reduce %.1f ms)\n\n", res.IterTime*1e3, res.AllReduce*1e3)
		if p.name == "AutoPipe" {
			autoTime = res.IterTime
		}
	}
	if autoTime > 0 {
		fmt.Println("AutoPipe pipelines at depth 4 with a balanced sub-layer partition;")
		fmt.Println("DAPPLE's 2-stage plan exceeds device memory, and Piper's deeper,")
		fmt.Println("layer-granular plan leaves bubbles AutoPipe avoids.")
	}
}
