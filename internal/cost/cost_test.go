package cost

import (
	"testing"
	"testing/quick"

	"autopipe/internal/config"
)

func geo(mbs int) Geometry { return Geometry{MicroBatch: mbs, Checkpoint: true} }

func TestBlockCostStructure(t *testing.T) {
	m := config.GPT2_345M()
	g := geo(4)
	dev := config.RTX3090()

	emb := Embedding(m, g)
	attn := Attention(m, g, 0)
	ffn := FFN(m, g, 0)
	head := Head(m, g)

	// The structural facts the paper's partitioning results rest on.
	if emb.FwdTime(dev) > 0.1*attn.FwdTime(dev) {
		t.Errorf("embedding compute (%.3g) should be negligible next to attention (%.3g)",
			emb.FwdTime(dev), attn.FwdTime(dev))
	}
	if emb.Params < attn.Params {
		t.Errorf("embedding params (%d) should dwarf a sub-block's (%d)", emb.Params, attn.Params)
	}
	layer := attn.FwdTime(dev) + ffn.FwdTime(dev)
	ratio := head.FwdTime(dev) / layer
	if ratio < 1.2 || ratio > 2.5 {
		t.Errorf("head costs %.2f transformer layers, want ~1.5 (paper's balanced partitions)", ratio)
	}
	if ffn.FwdFlops < 1.2*attn.FwdFlops {
		t.Errorf("FFN flops (%.3g) should exceed attention's (%.3g)", ffn.FwdFlops, attn.FwdFlops)
	}
	// A tied head owns no parameters.
	if head.Params != 0 {
		t.Errorf("tied head owns %d params, want 0", head.Params)
	}
	untied := m
	untied.TiedHead = false
	if h := Head(untied, g); h.Params != int64(m.Vocab)*int64(m.Hidden) {
		t.Errorf("untied head params %d, want %d", h.Params, int64(m.Vocab)*int64(m.Hidden))
	}
}

func TestSubLayerCutsPreserveCommVolume(t *testing.T) {
	// Paper §III-B: every cut moves the residual stream, so OutBytes is
	// identical for attention, FFN, and embedding blocks.
	m := config.GPT2_345M()
	g := geo(8)
	emb := Embedding(m, g)
	attn := Attention(m, g, 3)
	ffn := FFN(m, g, 3)
	if emb.OutBytes != attn.OutBytes || attn.OutBytes != ffn.OutBytes {
		t.Errorf("cut volumes differ: emb %d, attn %d, ffn %d", emb.OutBytes, attn.OutBytes, ffn.OutBytes)
	}
	want := int64(8 * m.SeqLen * m.Hidden * 2)
	if attn.OutBytes != want {
		t.Errorf("residual stream is %d bytes, want %d", attn.OutBytes, want)
	}
}

func TestCheckpointingMakesBackwardCoverRecompute(t *testing.T) {
	m := config.GPT2_345M()
	g := geo(4)
	dev := config.RTX3090()
	attn := Attention(m, g, 0)
	with := attn.BwdTime(dev, true)
	without := attn.BwdTime(dev, false)
	fwd := attn.FwdTime(dev)
	if diff := with - without; diff < fwd*0.99 || diff > fwd*1.01 {
		t.Errorf("checkpointed backward adds %.3g, want one forward %.3g", diff, fwd)
	}
}

func TestCostsScaleLinearlyWithMicroBatch(t *testing.T) {
	m := config.GPT2_345M()
	prop := func(mbsRaw uint8) bool {
		mbs := 1 + int(mbsRaw%16)
		a := Attention(m, geo(mbs), 0)
		b := Attention(m, geo(2*mbs), 0)
		return b.FwdFlops == 2*a.FwdFlops && b.ActStash == 2*a.ActStash && b.OutBytes == 2*a.OutBytes
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestEfficiencyScalesWithHiddenSize(t *testing.T) {
	// Wider models run larger GEMMs closer to peak: at equal FLOPs the
	// 2048-hidden model must be faster per FLOP than the 1024-hidden one.
	small := Attention(config.GPT2_345M(), geo(4), 0)
	large := Attention(config.GPT2_1_3B(), geo(4), 0)
	if large.Efficiency <= small.Efficiency {
		t.Errorf("efficiency did not grow with hidden size: %.3f vs %.3f", large.Efficiency, small.Efficiency)
	}
	if large.Efficiency > effScaleCap {
		t.Errorf("efficiency %.3f exceeds cap %.3f", large.Efficiency, effScaleCap)
	}
}

func TestCommTime(t *testing.T) {
	net := config.Network{Bandwidth: 1e9, Latency: 1e-5}
	if got, want := CommTime(1e6, net), 1e-5+1e-3; got != want {
		t.Errorf("CommTime = %v, want %v", got, want)
	}
}

func TestAllReduceTime(t *testing.T) {
	net := config.Network{Bandwidth: 1e9, Latency: 0}
	if got := AllReduceTime(1e9, 1, net); got != 0 {
		t.Errorf("single replica all-reduce %v, want 0", got)
	}
	// Ring all-reduce moves 2(n-1)/n of the data.
	got := AllReduceTime(1e9, 4, net)
	want := 2.0 * 3 / 4
	if got != want {
		t.Errorf("AllReduceTime = %v, want %v", got, want)
	}
	// More replicas never make the sync cheaper than the bandwidth bound.
	if t8 := AllReduceTime(1e9, 8, net); t8 < got {
		t.Errorf("8-way all-reduce (%v) cheaper than 4-way (%v)", t8, got)
	}
}

func TestHeadPeakDominatesMemory(t *testing.T) {
	// The vocabulary softmax working set is the largest activation buffer —
	// the term behind every OOM boundary in the paper.
	m := config.GPT2_345M()
	g := geo(32)
	head := Head(m, g)
	ffn := FFN(m, g, 0)
	if head.ActPeak < 8*ffn.ActPeak {
		t.Errorf("head peak %d should dwarf FFN peak %d", head.ActPeak, ffn.ActPeak)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindEmbedding: "Embedding", KindAttention: "Attention",
		KindFFN: "FFN", KindHead: "Head", KindLayer: "Layer",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(99).String() != "Unknown" {
		t.Error("out-of-range kind should print Unknown")
	}
}
