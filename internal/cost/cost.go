// Package cost implements the analytic cost model that stands in for the
// paper's offline profiling pass ("model configs ... collected offline within
// several minutes").
//
// The planner only ever consumes per-block forward time f_i, backward time
// b_i, a communication constant Comm, and per-block memory numbers. On the
// paper's testbed those came from profiling Megatron-LM on RTX 3090s; here
// they come from FLOP and byte counts evaluated against a device profile.
// The analytic numbers reproduce the structure that drives every result in
// the paper: the embedding block is parameter-heavy but compute-light, the
// tied LM head costs several transformer layers of compute, and an FFN block
// is roughly twice the compute of an attention block.
package cost

import (
	"math"

	"autopipe/internal/config"
)

// Kind identifies a sub-layer block type (paper Fig. 3 plus the non-layer
// blocks that make layer-granularity partitions imbalanced).
type Kind int

const (
	// KindEmbedding is the token+position embedding at the front of the model.
	KindEmbedding Kind = iota
	// KindAttention is a ResidualAttentionBlock: LayerNorm + self-attention +
	// residual add (paper Fig. 3, left sub-block).
	KindAttention
	// KindFFN is a ResidualFFNBlock: LayerNorm + FFN + residual add (paper
	// Fig. 3, right sub-block).
	KindFFN
	// KindHead is the output projection to the vocabulary plus loss. With a
	// tied head the weights are shared with the embedding.
	KindHead
	// KindLayer is a whole transformer layer (attention + FFN fused), used
	// at layer granularity by the baselines and ablations.
	KindLayer
)

var kindNames = [...]string{"Embedding", "Attention", "FFN", "Head", "Layer"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "Unknown"
}

// Per-kind compute efficiency relative to peak tensor throughput at a
// reference hidden size of 1024. Attention is dominated by softmax and s×s
// batched matmuls at low arithmetic intensity; FFN runs large dense GEMMs;
// the vocabulary projection is one huge GEMM close to peak. These factors
// are the calibration knob that aligns the analytic model with the relative
// block costs the paper profiled (its balanced partitions put ~5 of 24
// layers with the head stage, i.e. head ≈ 1.5 transformer layers; its
// Table III/IV iteration times back out ~0.45 efficiency at hidden 1024 and
// ~0.73 at hidden 2048).
const (
	effAttention = 0.42
	effFFN       = 0.52
	effHead      = 0.95

	// refHidden is the hidden size the base efficiencies are anchored at;
	// larger GEMMs approach peak as (h/refHidden)^effScaleExp, capped.
	refHidden   = 1024
	effScaleExp = 0.6
	effScaleCap = 0.95
)

// scaledEff grows a base efficiency with hidden size: wider layers run
// larger matmuls at higher utilization.
func scaledEff(base float64, hidden int) float64 {
	e := base * math.Pow(float64(hidden)/refHidden, effScaleExp)
	if e > effScaleCap {
		e = effScaleCap
	}
	return e
}

// BlockCost carries the per-micro-batch cost of one sub-layer block.
type BlockCost struct {
	Kind Kind
	// Layer is the index of the parent transformer layer, or -1 for
	// embedding/head blocks.
	Layer int
	// Efficiency scales the device's peak FLOP/s for this block.
	Efficiency float64

	// FwdFlops and BwdFlops are the forward and backward FLOP counts. With
	// activation checkpointing, the backward pass re-executes the forward
	// pass, so backward wall time covers BwdFlops+FwdFlops.
	FwdFlops FLOPs
	BwdFlops FLOPs
	// FwdBytes and BwdBytes are device-memory traffic for memory-bound
	// blocks (embedding lookup/scatter); compute time is the max of the
	// FLOP-bound and byte-bound estimates.
	FwdBytes float64
	BwdBytes float64

	// Params is the number of parameters owned by the block. A tied head
	// owns zero parameters (they live in the embedding block).
	Params int64
	// ActStash is the number of bytes stashed per in-flight micro-batch with
	// activation checkpointing (the block's input activation).
	ActStash int64
	// ActPeak is the peak working-set in bytes while re-computing and
	// back-propagating through the block.
	ActPeak int64
	// OutBytes is the size of the activation tensor that crosses a pipeline
	// cut placed immediately after this block. Sub-layer cuts inside a
	// transformer layer move exactly the residual stream, the same volume as
	// a layer-granularity cut — the reason sub-layer granularity adds no
	// communication overhead (paper §III-B).
	OutBytes int64
}

// Geometry is the micro-batch geometry costs are evaluated at.
type Geometry struct {
	MicroBatch int
	SeqLen     int
	// Checkpoint mirrors config.Run.Checkpoint.
	Checkpoint bool
}

const (
	bytesFP16 = 2
	bytesFP32 = 4
)

// Embedding returns the cost of the token+position embedding block.
func Embedding(m config.Model, g Geometry) BlockCost {
	b, s, h := float64(g.MicroBatch), float64(m.SeqLen), float64(m.Hidden)
	if g.SeqLen > 0 {
		s = float64(g.SeqLen)
	}
	tokens := b * s
	params := int64(m.Vocab)*int64(m.Hidden) + int64(m.SeqLen)*int64(m.Hidden)
	// A lookup moves one h-vector per token plus writes the output; the
	// backward pass scatter-adds gradients into the table. Negligible FLOPs.
	return BlockCost{
		Kind:       KindEmbedding,
		Layer:      -1,
		Efficiency: 1,                 // memory-bound: the byte terms dominate
		FwdFlops:   FLOPs(tokens * h), // position add
		BwdFlops:   FLOPs(tokens * h),
		FwdBytes:   3 * tokens * h * bytesFP16,
		BwdBytes:   4 * tokens * h * bytesFP16,
		Params:     params,
		ActStash:   int64(tokens) * bytesFP16 * 2, // token+position ids
		ActPeak:    int64(2 * tokens * h * bytesFP16),
		OutBytes:   int64(tokens * h * bytesFP16),
	}
}

// Attention returns the cost of a ResidualAttentionBlock.
func Attention(m config.Model, g Geometry, layer int) BlockCost {
	b, s, h := float64(g.MicroBatch), float64(m.SeqLen), float64(m.Hidden)
	if g.SeqLen > 0 {
		s = float64(g.SeqLen)
	}
	tokens := b * s
	// QKV projection (6bsh^2) + scores (2bs^2h) + context (2bs^2h) +
	// output projection (2bsh^2).
	fwd := tokens*8*h*h + 4*b*s*s*h
	params := int64(4*m.Hidden*m.Hidden + 2*m.Hidden + 4*m.Hidden) // 4 matrices + LN + biases
	// Peak working set during recompute: QKV (3bsh), attention matrix
	// (b*heads*s^2), context (bsh), plus residual in/out.
	attnMat := b * float64(m.Heads) * s * s
	peak := (6*tokens*h + attnMat) * bytesFP16
	return BlockCost{
		Kind:       KindAttention,
		Layer:      layer,
		Efficiency: scaledEff(effAttention, m.Hidden),
		FwdFlops:   FLOPs(fwd),
		BwdFlops:   FLOPs(2 * fwd),
		Params:     params,
		ActStash:   int64(tokens * h * bytesFP16),
		ActPeak:    int64(peak),
		OutBytes:   int64(tokens * h * bytesFP16),
	}
}

// FFN returns the cost of a ResidualFFNBlock.
func FFN(m config.Model, g Geometry, layer int) BlockCost {
	b, s, h := float64(g.MicroBatch), float64(m.SeqLen), float64(m.Hidden)
	if g.SeqLen > 0 {
		s = float64(g.SeqLen)
	}
	tokens := b * s
	ff := float64(m.FFNMult) * h
	fwd := tokens * 2 * h * ff * 2 // two matmuls
	params := int64(2*m.FFNMult*m.Hidden*m.Hidden + 2*m.Hidden + m.FFNMult*m.Hidden + m.Hidden)
	peak := (2*tokens*ff + 4*tokens*h) * bytesFP16
	return BlockCost{
		Kind:       KindFFN,
		Layer:      layer,
		Efficiency: scaledEff(effFFN, m.Hidden),
		FwdFlops:   FLOPs(fwd),
		BwdFlops:   FLOPs(2 * fwd),
		Params:     params,
		ActStash:   int64(tokens * h * bytesFP16),
		ActPeak:    int64(peak),
		OutBytes:   int64(tokens * h * bytesFP16),
	}
}

// Head returns the cost of the output projection + loss block.
func Head(m config.Model, g Geometry) BlockCost {
	b, s, h, v := float64(g.MicroBatch), float64(m.SeqLen), float64(m.Hidden), float64(m.Vocab)
	if g.SeqLen > 0 {
		s = float64(g.SeqLen)
	}
	tokens := b * s
	fwd := tokens * 2 * h * v // logits matmul; softmax/loss folded in
	var params int64
	if !m.TiedHead {
		params = int64(m.Vocab) * int64(m.Hidden)
	}
	// The vocabulary softmax dominates the working set: fp16 logits (2B),
	// an fp32 logits copy for the numerically stable softmax (4B), the fp32
	// probabilities kept for the loss backward (4B), plus ~1B/element of
	// label scratch and allocator slack — 11 bytes per logit element,
	// calibrated so the paper's OOM boundaries reproduce (GPT-2 762M OOMs
	// at micro-batch 32 on a 24 GB device while GPT-2 345M still fits).
	peak := tokens*v*(bytesFP16+2*bytesFP32+1) + 2*tokens*h*bytesFP16
	return BlockCost{
		Kind:       KindHead,
		Layer:      -1,
		Efficiency: scaledEff(effHead, m.Hidden),
		FwdFlops:   FLOPs(fwd),
		BwdFlops:   FLOPs(2 * fwd),
		Params:     params,
		ActStash:   int64(tokens * h * bytesFP16),
		ActPeak:    int64(peak),
		OutBytes:   int64(tokens * h * bytesFP16),
	}
}

// FwdTime returns the forward wall time of c on dev in seconds: the max of
// the compute-bound and memory-bound estimates.
func (c BlockCost) FwdTime(dev config.Device) float64 {
	t := c.FwdFlops.Float() / (dev.FlopsPerSec * c.eff())
	if m := c.FwdBytes / dev.MemBandwidth; m > t {
		t = m
	}
	return t
}

func (c BlockCost) eff() float64 {
	if c.Efficiency <= 0 {
		return 1
	}
	return c.Efficiency
}

// BwdTime returns the backward wall time of c on dev in seconds. With
// activation checkpointing the forward pass runs again before the backward
// pass (paper §II-C), so checkpointed backward time covers both.
func (c BlockCost) BwdTime(dev config.Device, checkpoint bool) float64 {
	t := c.BwdFlops.Float() / (dev.FlopsPerSec * c.eff())
	if m := c.BwdBytes / dev.MemBandwidth; m > t {
		t = m
	}
	if checkpoint {
		t += c.FwdTime(dev)
	}
	return t
}

// CommTime returns the time in seconds to move one cross-stage activation
// (or its gradient, which has the same size) over the network. The paper
// folds this into a single constant Comm because every cut moves the same
// residual-stream tensor.
func CommTime(bytes int64, net config.Network) float64 {
	return net.Latency + float64(bytes)/net.Bandwidth
}

// AllReduceTime returns the ring-allreduce time in seconds for syncing
// `bytes` of gradients across n replicas.
func AllReduceTime(bytes int64, n int, net config.Network) float64 {
	if n <= 1 {
		return 0
	}
	steps := float64(2 * (n - 1))
	chunk := float64(bytes) / float64(n)
	return steps * (net.Latency + chunk/net.Bandwidth)
}
