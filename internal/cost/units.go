package cost

// FLOPs counts floating-point operations. It is a defined type rather than a
// bare float64 so the unitsafe analyzer can reject arithmetic that mixes FLOP
// counts with seconds or bytes, and flag raw literals fed into FLOP-typed
// parameters. Scaling by a dimensionless factor (2 * f) stays legal; dividing
// by a rate requires an explicit float64 conversion at the boundary, which is
// exactly where a unit error would otherwise hide.
type FLOPs float64

// Float returns the count as a bare float64 for rate arithmetic
// (FLOPs / FLOP-per-second = seconds).
func (f FLOPs) Float() float64 { return float64(f) }
