// Package plan defines the common representation of a pipeline plan — the
// output format shared by the AutoPipe Planner and the DAPPLE and Piper
// baselines — and the evaluator that measures a plan's iteration time on the
// discrete-event executor, the reproduction's equivalent of "applying the
// corresponding algorithm's results to Megatron-LM" (paper §IV-D).
package plan

import (
	"fmt"
	"strings"
	"time"

	"autopipe/internal/config"
	"autopipe/internal/cost"
	"autopipe/internal/errdefs"
	"autopipe/internal/exec"
	"autopipe/internal/memory"
	"autopipe/internal/model"
	"autopipe/internal/partition"
	"autopipe/internal/schedule"
)

// Spec is a complete pipeline-parallel plan.
type Spec struct {
	// Planner names the algorithm that produced the plan.
	Planner string
	// Partition is the stage partition over the planning block array.
	Partition partition.Partition
	// StageDevices is the number of devices serving each stage. AutoPipe and
	// Piper replicate whole pipelines (uniform counts); DAPPLE assigns
	// per-stage replica counts.
	StageDevices []int
	// MicroShard selects DAPPLE's replication semantics: each micro-batch's
	// samples are sharded across a stage's replicas (so replicas > samples
	// is a runtime error). When false, replicas form independent pipelines
	// that split the micro-batch stream (Megatron-style data parallelism).
	MicroShard bool
	// RoundRobin selects Piper's replication semantics: one logical pipeline
	// in which a stage's replicas take alternate micro-batches, so a stage
	// with d replicas has d× the throughput at full per-micro-batch latency.
	// The evaluator approximates it by scaling stage times by 1/d.
	RoundRobin bool
	// NumSliced is the number of warmup micro-batches the AutoPipe Slicer
	// splits (0 = plain 1F1B).
	NumSliced int
	// SearchTime and Evaluated record planning effort (paper Fig. 12).
	SearchTime time.Duration
	Evaluated  int
	// Accepted counts search candidates that improved the incumbent across
	// all depths, and Predicted is the planner's best predicted iteration
	// time in seconds (simulated pipeline plus gradient all-reduce) —
	// together with Evaluated these form the planner-telemetry record.
	Accepted  int
	Predicted float64
	// SliceRounds and SliceConverged record the Algorithm 2 slicing search
	// for the chosen partition (zero-valued when the plan is depth 1).
	SliceRounds    int
	SliceConverged bool
}

// Depth returns the pipeline depth.
func (s *Spec) Depth() int { return s.Partition.Stages() }

// Devices returns the total device count of the plan: the sum of per-stage
// replica counts (for uniform data parallelism each stage lists dp, so the
// sum is stages×dp, the full pipeline-parallel × data-parallel grid).
func (s *Spec) Devices() int {
	d := 0
	for _, c := range s.StageDevices {
		d += c
	}
	return d
}

// DataParallel returns the uniform replication factor, or 1 if the plan uses
// per-stage replication.
func (s *Spec) DataParallel() int {
	if len(s.StageDevices) == 0 {
		return 1
	}
	d := s.StageDevices[0]
	for _, c := range s.StageDevices {
		if c != d {
			return 1
		}
	}
	return d
}

// Result is the outcome of evaluating a plan.
type Result struct {
	Spec *Spec
	// IterTime is the measured iteration time in seconds, or 0 when Err is
	// set.
	IterTime float64
	// Startup is the measured pipeline startup overhead.
	Startup float64
	// AllReduce is the gradient synchronization time added after the
	// pipeline flush.
	AllReduce float64
	// Micro is the number of micro-batches each pipeline processed.
	Micro int
	// Err explains infeasibility: "OOM" or a runtime error, matching the
	// paper's Table III/IV markers.
	Err string
}

// Failure returns the evaluation outcome as a typed error: nil when the plan
// ran, an error wrapping errdefs.ErrOOM when a stage exceeded device memory,
// and one wrapping errdefs.ErrInfeasible for runtime errors. The Err string
// stays verbatim (the experiment tables print it); Failure is the
// errors.Is-friendly view of the same condition.
func (r *Result) Failure() error {
	switch {
	case r.Err == "":
		return nil
	case strings.HasPrefix(r.Err, "OOM"):
		return fmt.Errorf("%w: %s", errdefs.ErrOOM, r.Err)
	default:
		return fmt.Errorf("%w: %s", errdefs.ErrInfeasible, r.Err)
	}
}

// Evaluate runs the plan for one training iteration of the given run config
// on the executor and returns the iteration time, including the data-parallel
// gradient all-reduce, with OOM and runtime-error detection.
func Evaluate(s *Spec, bl *model.Blocks, run config.Run, cluster config.Cluster) (*Result, error) {
	p := s.Depth()
	if len(s.StageDevices) != p {
		return nil, fmt.Errorf("%w: plan: %d stages but %d device counts", errdefs.ErrBadConfig, p, len(s.StageDevices))
	}
	res := &Result{Spec: s}

	mbs := run.MicroBatch
	switch {
	case s.MicroShard:
		// DAPPLE semantics: one logical pipeline; every micro-batch is
		// sharded across each stage's replicas.
		res.Micro = run.MicroBatches(1)
		for j, d := range s.StageDevices {
			if d > mbs {
				res.Err = fmt.Sprintf("runtime error: stage %d has %d replicas for micro-batch size %d", j, d, mbs)
				return res, nil
			}
		}
	case s.RoundRobin && s.DataParallel() == 1:
		// Piper semantics with uneven replication: one logical pipeline;
		// replicas alternate whole micro-batches.
		res.Micro = run.MicroBatches(1)
	default:
		// Uniform replication — including a uniformly-replicated
		// round-robin plan, which is ordinary data parallelism with
		// independent pipelines.
		res.Micro = run.MicroBatches(s.DataParallel())
	}

	// Memory feasibility, per stage with its effective micro-batch size.
	for j := 0; j < p; j++ {
		eff := mbs
		if s.MicroShard {
			eff = ceilDiv(mbs, s.StageDevices[j])
		}
		jbl := bl
		if eff != bl.Geom.MicroBatch {
			var err error
			jbl, err = bl.Rebuild(eff)
			if err != nil {
				return nil, err
			}
		}
		e := memory.StageEstimate(jbl, s.Partition, j, res.Micro, memory.OneFOneB, 1)
		if e.Total() > cluster.Device.MemoryBytes {
			res.Err = fmt.Sprintf("OOM: stage %d needs %.2f GiB of %.2f GiB", j,
				float64(e.Total())/float64(1<<30), float64(cluster.Device.MemoryBytes)/float64(1<<30))
			return res, nil
		}
	}

	f, b := StageWallTimes(s, bl)
	var sched *schedule.Schedule
	var err error
	if s.NumSliced > 0 {
		sched, err = schedule.Sliced(p, res.Micro, s.NumSliced)
	} else {
		sched, err = schedule.OneFOneB(p, res.Micro)
	}
	if err != nil {
		return nil, err
	}
	r, err := exec.Run(sched, exec.Config{
		VirtFwd:        f,
		VirtBwd:        b,
		CommBytes:      bl.List[0].OutBytes,
		Network:        cluster.Network,
		KernelOverhead: cluster.Device.KernelOverhead,
	})
	if err != nil {
		return nil, err
	}
	res.Startup = r.Startup
	res.AllReduce = allReduce(s, bl, cluster.Network)
	res.IterTime = r.IterTime + res.AllReduce
	return res, nil
}

// StageWallTimes returns the per-stage forward/backward wall times of the
// plan. Micro-sharded stages run each micro-batch cooperatively: the stage's
// wall time is the slowest replica's share, ceil(mbs/d)/mbs of the full
// time — replicating a stage beyond the point of one sample per replica
// stops helping, which is why DAPPLE's aggressive replication underperforms
// its own linear model.
func StageWallTimes(s *Spec, bl *model.Blocks) (f, b []float64) {
	f, b = s.Partition.StageTimes(bl)
	switch {
	case s.MicroShard:
		// A replica's share of the micro-batch is ceil(mbs/d) samples —
		// integral and imbalanced — and small per-replica batches run at
		// lower device efficiency, modeled as η(b) = b/(b+1). Both effects
		// are what DAPPLE's linear planner model misses.
		mbs := bl.Geom.MicroBatch
		eta := func(b float64) float64 { return b / (b + 1) }
		for j, d := range s.StageDevices {
			if d <= 1 {
				continue
			}
			eff := float64(ceilDiv(mbs, d))
			share := eff / float64(mbs) * eta(float64(mbs)) / eta(eff)
			f[j] *= share
			b[j] *= share
		}
	case s.RoundRobin && s.DataParallel() == 1:
		// Throughput-equivalent approximation of alternating replicas,
		// derated for the stream split/merge synchronization and uneven
		// gradient accumulation that per-stage replication costs in
		// practice — the planner-model optimism that makes Piper's deep,
		// partially-replicated pipelines underperform (paper §IV-D).
		const mergePenalty = 1.15
		for j, d := range s.StageDevices {
			if d <= 1 {
				continue
			}
			f[j] *= mergePenalty / float64(d)
			b[j] *= mergePenalty / float64(d)
		}
	}
	return f, b
}

// allReduce returns the gradient synchronization time of the plan: each
// stage ring-allreduces its fp32 gradients across its replicas; the stages
// synchronize concurrently on disjoint links, so the slowest dominates.
func allReduce(s *Spec, bl *model.Blocks, net config.Network) float64 {
	params := s.Partition.StageParams(bl)
	var worst float64
	for j, d := range s.StageDevices {
		if t := cost.AllReduceTime(params[j]*4, d, net); t > worst {
			worst = t
		}
	}
	return worst
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
