package plan

import (
	"strings"
	"testing"

	"autopipe/internal/config"
	"autopipe/internal/cost"
	"autopipe/internal/model"
	"autopipe/internal/partition"
)

func buildSub(t *testing.T, mc config.Model, mbs int) *model.Blocks {
	t.Helper()
	cl := config.DefaultCluster()
	bl, err := model.Build(mc, cost.Geometry{MicroBatch: mbs, Checkpoint: true},
		cl.Device, cl.Network, model.SubLayer)
	if err != nil {
		t.Fatal(err)
	}
	return bl
}

func uniformSpec(t *testing.T, bl *model.Blocks, depth, dp int) *Spec {
	t.Helper()
	part, err := partition.Balance(bl.Weights(), depth)
	if err != nil {
		t.Fatal(err)
	}
	devs := make([]int, depth)
	for i := range devs {
		devs[i] = dp
	}
	return &Spec{Planner: "test", Partition: part, StageDevices: devs}
}

func TestSpecAccessors(t *testing.T) {
	bl := buildSub(t, config.GPT2_345M(), 4)
	s := uniformSpec(t, bl, 4, 2)
	if s.Depth() != 4 {
		t.Errorf("Depth = %d", s.Depth())
	}
	if s.DataParallel() != 2 {
		t.Errorf("DataParallel = %d", s.DataParallel())
	}
	if s.Devices() != 8 {
		t.Errorf("Devices = %d", s.Devices())
	}
	s.StageDevices = []int{1, 3, 2, 2}
	if s.DataParallel() != 1 {
		t.Errorf("non-uniform DataParallel = %d, want 1", s.DataParallel())
	}
}

func TestEvaluateUniformPlan(t *testing.T) {
	cl := config.DefaultCluster()
	bl := buildSub(t, config.GPT2_345M(), 4)
	run := config.Run{MicroBatch: 4, GlobalBatch: 128, Checkpoint: true}
	s := uniformSpec(t, bl, 4, 1)
	r, err := Evaluate(s, bl, run, cl)
	if err != nil {
		t.Fatal(err)
	}
	if r.Err != "" {
		t.Fatalf("unexpected failure: %s", r.Err)
	}
	if r.Micro != 32 {
		t.Errorf("dp=1: %d micro-batches, want 32", r.Micro)
	}
	if r.IterTime <= 0 || r.Startup <= 0 {
		t.Errorf("non-positive timings: %+v", r)
	}
	if r.AllReduce != 0 {
		t.Errorf("dp=1 should have no all-reduce, got %v", r.AllReduce)
	}

	s2 := uniformSpec(t, bl, 4, 2)
	r2, err := Evaluate(s2, bl, run, cl)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Micro != 16 {
		t.Errorf("dp=2: %d micro-batches, want 16", r2.Micro)
	}
	if r2.AllReduce <= 0 {
		t.Error("dp=2 must pay a gradient all-reduce")
	}
	if r2.IterTime >= r.IterTime {
		t.Errorf("doubling devices did not speed up the iteration: %v vs %v", r2.IterTime, r.IterTime)
	}
}

func TestEvaluateSlicedPlanReducesStartup(t *testing.T) {
	cl := config.DefaultCluster()
	bl := buildSub(t, config.GPT2_345M(), 4)
	run := config.Run{MicroBatch: 4, GlobalBatch: 128, Checkpoint: true}
	plain := uniformSpec(t, bl, 4, 1)
	sliced := uniformSpec(t, bl, 4, 1)
	sliced.NumSliced = 1
	rp, err := Evaluate(plain, bl, run, cl)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Evaluate(sliced, bl, run, cl)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Startup >= rp.Startup*0.7 {
		t.Errorf("sliced startup %v not well below plain %v", rs.Startup, rp.Startup)
	}
}

func TestEvaluateMicroShardRuntimeError(t *testing.T) {
	cl := config.DefaultCluster()
	bl, err := model.Build(config.GPT2_345M(), cost.Geometry{MicroBatch: 4, Checkpoint: true},
		cl.Device, cl.Network, model.Layer)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.Balance(bl.Weights(), 2)
	if err != nil {
		t.Fatal(err)
	}
	s := &Spec{Planner: "DAPPLE", Partition: part, StageDevices: []int{1, 15}, MicroShard: true}
	r, err := Evaluate(s, bl, config.Run{MicroBatch: 4, GlobalBatch: 128, Checkpoint: true}, cl)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Err, "runtime error") {
		t.Errorf("15 replicas for micro-batch 4 should be a runtime error, got %+v", r)
	}
}

func TestEvaluateDetectsOOM(t *testing.T) {
	cl := config.DefaultCluster()
	bl := buildSub(t, config.GPT2_1_3B(), 16)
	run := config.Run{MicroBatch: 16, GlobalBatch: 512, Checkpoint: true}
	s := uniformSpec(t, bl, 2, 2) // 2-stage GPT-2 1.3B: the paper's OOM case
	r, err := Evaluate(s, bl, run, cl)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(r.Err, "OOM") {
		t.Errorf("2-stage GPT-2 1.3B should OOM, got %+v", r)
	}
}

func TestStageWallTimesMicroShard(t *testing.T) {
	cl := config.DefaultCluster()
	bl, err := model.Build(config.GPT2_345M(), cost.Geometry{MicroBatch: 4, Checkpoint: true},
		cl.Device, cl.Network, model.Layer)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.Balance(bl.Weights(), 2)
	if err != nil {
		t.Fatal(err)
	}
	full, _ := part.StageTimes(bl)
	s := &Spec{Partition: part, StageDevices: []int{1, 3}, MicroShard: true}
	f, _ := StageWallTimes(s, bl)
	if f[0] != full[0] {
		t.Errorf("unreplicated stage changed: %v vs %v", f[0], full[0])
	}
	// ceil(4/3)=2 of 4 samples plus the small-batch penalty: the sharded
	// stage takes more than half but less than all of its full time.
	if f[1] <= full[1]/2 || f[1] >= full[1] {
		t.Errorf("3-way sharded stage wall time %v outside (%v, %v)", f[1], full[1]/2, full[1])
	}
}

func TestStageWallTimesRoundRobinPenalty(t *testing.T) {
	bl := buildSub(t, config.GPT2_345M(), 4)
	part, err := partition.Balance(bl.Weights(), 3)
	if err != nil {
		t.Fatal(err)
	}
	full, _ := part.StageTimes(bl)
	s := &Spec{Partition: part, StageDevices: []int{1, 2, 1}, RoundRobin: true}
	f, _ := StageWallTimes(s, bl)
	// The replicated stage gets throughput/2 with the merge penalty.
	if f[1] <= full[1]/2 || f[1] >= full[1]*0.7 {
		t.Errorf("round-robin stage wall time %v, want ~%v*1.15/2", f[1], full[1])
	}
	if f[0] != full[0] || f[2] != full[2] {
		t.Error("unreplicated stages changed")
	}
}

func TestEvaluateRejectsMismatchedDevices(t *testing.T) {
	cl := config.DefaultCluster()
	bl := buildSub(t, config.GPT2_345M(), 4)
	part, _ := partition.Balance(bl.Weights(), 4)
	s := &Spec{Partition: part, StageDevices: []int{1, 1}}
	if _, err := Evaluate(s, bl, config.Run{MicroBatch: 4, GlobalBatch: 128}, cl); err == nil {
		t.Error("want error for mismatched stage device counts")
	}
}
