// Package memory estimates per-device memory footprints of pipeline
// configurations and detects out-of-memory conditions.
//
// The model follows Megatron-LM mixed-precision training with activation
// checkpointing (the paper enables checkpointing in all experiments): fp16
// parameters, fp32 gradient accumulation, fp32 Adam states, one stashed
// input activation per block per in-flight micro-batch, plus the transient
// working set of re-computing the largest block during backward.
package memory

import (
	"fmt"

	"autopipe/internal/config"
	"autopipe/internal/model"
	"autopipe/internal/partition"
)

// Bytes per parameter under Megatron-style mixed precision:
// fp16 weight (2) + fp16 gradient buffer (2) + fp32 main gradient (4) +
// fp32 master weight (4) + fp32 Adam first and second moments (4+4) +
// fp32 all-reduce staging copy (4).
const BytesPerParam = 24

// FrameworkOverhead approximates the CUDA context, NCCL workspace, cudnn
// handles, and allocator slack a real device loses before the first tensor.
const FrameworkOverhead = int64(9) << 28 // 2.25 GiB

// Schedule identifies the pipeline schedule whose in-flight micro-batch
// count governs activation stash memory.
type Schedule int

const (
	// OneFOneB is the default Megatron/PipeDream-flush schedule: stage k of
	// a depth-p pipeline keeps min(m, p-k) micro-batches in flight.
	OneFOneB Schedule = iota
	// GPipe keeps all m micro-batches in flight on every stage.
	GPipe
	// Interleaved is Megatron's interleaved 1F1B with v model chunks per
	// device; it warms up deeper and therefore stashes more activations,
	// which is why the paper's Fig. 14(a) shows it running out of memory at
	// large micro-batch sizes.
	Interleaved
)

// Estimate is a per-device memory breakdown in bytes.
type Estimate struct {
	Params     int64
	Stash      int64
	PeakAct    int64
	Overhead   int64
	InFlight   float64
	StageIndex int
}

// Total returns the whole-device footprint.
func (e Estimate) Total() int64 {
	return e.Params + e.Stash + e.PeakAct + e.Overhead
}

// String renders the breakdown in GiB.
func (e Estimate) String() string {
	gib := func(b int64) float64 { return float64(b) / float64(1<<30) }
	return fmt.Sprintf("stage %d: params %.2f GiB, stash %.2f GiB (%.1f in flight), peak act %.2f GiB, overhead %.2f GiB, total %.2f GiB",
		e.StageIndex, gib(e.Params), gib(e.Stash), e.InFlight, gib(e.PeakAct), gib(e.Overhead), gib(e.Total()))
}

// InFlightMicroBatches returns the number of micro-batches whose stashed
// activations stage k of a depth-p pipeline holds simultaneously.
func InFlightMicroBatches(sched Schedule, p, k, m, chunks int) float64 {
	switch sched {
	case GPipe:
		return float64(m)
	case Interleaved:
		if chunks < 1 {
			chunks = 1
		}
		// Megatron interleaved warm-up depth: 2(p-k-1) + (v-1)p forwards
		// before the first backward, plus the one being computed. Each
		// in-flight micro-batch stashes activations for one chunk (1/v of
		// the device's blocks), so normalize to full-device units.
		warm := 2*(p-k-1) + (chunks-1)*p + 1
		if warm > m*chunks {
			warm = m * chunks
		}
		return float64(warm) / float64(chunks)
	default:
		inflight := p - k
		if inflight > m {
			inflight = m
		}
		if inflight < 1 {
			inflight = 1
		}
		return float64(inflight)
	}
}

// StageEstimate computes the memory footprint of one pipeline stage.
func StageEstimate(bl *model.Blocks, part partition.Partition, stage, m int, sched Schedule, chunks int) Estimate {
	lo, hi := part.Stage(stage)
	var params, stash, peak int64
	var outBytes int64
	for _, b := range bl.List[lo:hi] {
		params += b.Params
		stash += b.ActStash
		if b.ActPeak > peak {
			peak = b.ActPeak
		}
		outBytes = b.OutBytes
	}
	inflight := InFlightMicroBatches(sched, part.Stages(), stage, m, chunks)
	overhead := FrameworkOverhead
	if sched == Interleaved {
		// Interleaving multiplies the communication streams: each chunk
		// boundary pins double-buffered send and receive tensors (×4) for
		// every warmed-up micro-batch until the downstream device, busy
		// with another chunk, drains them. This is the extra footprint that
		// makes the interleaved schedule OOM at large micro-batch sizes in
		// the paper's Fig. 14(a).
		raw := 2*(part.Stages()-stage-1) + (chunks-1)*part.Stages() + 1
		if raw > m*chunks {
			raw = m * chunks
		}
		overhead += int64(raw) * 4 * outBytes * int64(chunks)
	}
	return Estimate{
		Params:     params * BytesPerParam,
		Stash:      int64(float64(stash) * inflight),
		PeakAct:    peak,
		Overhead:   overhead,
		InFlight:   inflight,
		StageIndex: stage,
	}
}

// PipelineEstimate returns the footprint of every stage.
func PipelineEstimate(bl *model.Blocks, part partition.Partition, m int, sched Schedule, chunks int) []Estimate {
	out := make([]Estimate, part.Stages())
	for s := range out {
		out[s] = StageEstimate(bl, part, s, m, sched, chunks)
	}
	return out
}

// Fits reports whether every stage of the pipeline fits in the device
// memory, and if not, the first offending stage.
func Fits(bl *model.Blocks, part partition.Partition, m int, sched Schedule, chunks int, dev config.Device) (bool, Estimate) {
	for s := 0; s < part.Stages(); s++ {
		e := StageEstimate(bl, part, s, m, sched, chunks)
		if e.Total() > dev.MemoryBytes {
			return false, e
		}
	}
	return true, Estimate{}
}

// MaxEstimate returns the largest per-stage footprint of the pipeline.
func MaxEstimate(bl *model.Blocks, part partition.Partition, m int, sched Schedule, chunks int) Estimate {
	var worst Estimate
	for s := 0; s < part.Stages(); s++ {
		e := StageEstimate(bl, part, s, m, sched, chunks)
		if e.Total() > worst.Total() {
			worst = e
		}
	}
	return worst
}
