package memory

import (
	"testing"

	"autopipe/internal/config"
	"autopipe/internal/cost"
	"autopipe/internal/model"
	"autopipe/internal/partition"
)

func build(t *testing.T, m config.Model, mbs int) *model.Blocks {
	t.Helper()
	cl := config.DefaultCluster()
	bl, err := model.Build(m, cost.Geometry{MicroBatch: mbs, Checkpoint: true}, cl.Device, cl.Network, model.SubLayer)
	if err != nil {
		t.Fatal(err)
	}
	return bl
}

func megatronEven(t *testing.T, bl *model.Blocks, p int) partition.Partition {
	t.Helper()
	// Embedding rides with stage 0, head with the last stage, transformer
	// layers divided evenly.
	L := bl.Model.Layers
	if L%p != 0 {
		t.Fatalf("megatronEven: %d layers not divisible by %d", L, p)
	}
	bounds := make([]int, p+1)
	bounds[0] = 0
	for i := 1; i < p; i++ {
		bounds[i] = 1 + 2*(L/p)*i
	}
	bounds[p] = bl.Len()
	part, err := partition.New(bounds, bl.Len())
	if err != nil {
		t.Fatal(err)
	}
	return part
}

func balanced(t *testing.T, bl *model.Blocks, p int) partition.Partition {
	t.Helper()
	part, err := partition.Balance(bl.Weights(), p)
	if err != nil {
		t.Fatal(err)
	}
	return part
}

// TestPaperMemoryBoundaries pins the feasibility pattern of the paper's
// evaluation: which (model, micro-batch, schedule, depth) combinations fit a
// 24 GB device and which run out of memory. Every row below is asserted in
// the paper (§IV-A/B, Table IV, Fig. 14).
func TestPaperMemoryBoundaries(t *testing.T) {
	dev := config.RTX3090()
	cases := []struct {
		name  string
		model config.Model
		mbs   int
		depth int
		m     int
		sched Schedule
		chunk int
		even  bool // Megatron even partition instead of the balanced DP
		fit   bool
	}{
		// GPT-2 762M (Megatron even partition, as in Fig. 9) OOMs at
		// micro-batch 32 but runs at 24.
		{"762M mbs32 4-stage 1F1B", config.GPT2_762M(), 32, 4, 8, OneFOneB, 1, true, false},
		{"762M mbs24 4-stage 1F1B", config.GPT2_762M(), 24, 4, 8, OneFOneB, 1, true, true},
		// GPT-2 345M runs at micro-batch 32 at depth 4 and depth 2 (Table IV)...
		{"345M mbs32 4-stage 1F1B", config.GPT2_345M(), 32, 4, 8, OneFOneB, 1, true, true},
		{"345M mbs32 2-stage 1F1B", config.GPT2_345M(), 32, 2, 8, OneFOneB, 1, false, true},
		// ...but pure data parallelism (the whole model per GPU) does not fit,
		// which is what makes Table IV the "high memory demand" regime.
		{"345M mbs32 1-stage", config.GPT2_345M(), 32, 1, 8, OneFOneB, 1, false, false},
		// The interleaved schedule OOMs at micro-batch 32 but fits at 16
		// (Fig. 14a).
		{"345M mbs32 interleaved", config.GPT2_345M(), 32, 4, 8, Interleaved, 2, true, false},
		{"345M mbs16 interleaved", config.GPT2_345M(), 16, 4, 8, Interleaved, 2, true, true},
		// GPT-2 1.3B at micro-batch 16: 2-stage pipelines OOM (DAPPLE's
		// failure in Table IV), 4-stage pipelines fit.
		{"1.3B mbs16 2-stage", config.GPT2_1_3B(), 16, 2, 8, OneFOneB, 1, false, false},
		{"1.3B mbs16 4-stage", config.GPT2_1_3B(), 16, 4, 8, OneFOneB, 1, false, true},
		// Low memory demand: GPT-2 345M at micro-batch 4 fits on one GPU
		// (Table III: complete data parallelism is feasible).
		{"345M mbs4 1-stage", config.GPT2_345M(), 4, 1, 8, OneFOneB, 1, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bl := build(t, tc.model, tc.mbs)
			var part partition.Partition
			if tc.even {
				part = megatronEven(t, bl, tc.depth)
			} else {
				part = balanced(t, bl, tc.depth)
			}
			ok, worst := Fits(bl, part, tc.m, tc.sched, tc.chunk, dev)
			if ok != tc.fit {
				all := PipelineEstimate(bl, part, tc.m, tc.sched, tc.chunk)
				t.Errorf("Fits = %v, want %v (worst %v)\nall: %v", ok, tc.fit, worst, all)
			}
		})
	}
}

func TestInFlightMicroBatches(t *testing.T) {
	// 1F1B: stage k of depth p keeps min(m, p-k) in flight.
	if got := InFlightMicroBatches(OneFOneB, 4, 0, 8, 1); got != 4 {
		t.Errorf("1F1B stage 0: %v in flight, want 4", got)
	}
	if got := InFlightMicroBatches(OneFOneB, 4, 3, 8, 1); got != 1 {
		t.Errorf("1F1B stage 3: %v in flight, want 1", got)
	}
	if got := InFlightMicroBatches(OneFOneB, 8, 0, 4, 1); got != 4 {
		t.Errorf("1F1B capped by m: %v in flight, want 4", got)
	}
	// GPipe keeps everything.
	if got := InFlightMicroBatches(GPipe, 4, 0, 8, 1); got != 8 {
		t.Errorf("GPipe: %v in flight, want 8", got)
	}
	// Interleaved warms up deeper than 1F1B at every stage.
	for k := 0; k < 4; k++ {
		plain := InFlightMicroBatches(OneFOneB, 4, k, 8, 1)
		inter := InFlightMicroBatches(Interleaved, 4, k, 8, 2)
		if inter <= plain {
			t.Errorf("stage %d: interleaved %v in flight not deeper than 1F1B %v", k, inter, plain)
		}
	}
}

func TestStageEstimateMonotoneInMicroBatch(t *testing.T) {
	// Larger micro-batches can only grow activation footprints.
	for _, mbs := range []int{1, 2, 4, 8, 16} {
		small := build(t, config.GPT2_345M(), mbs)
		large := build(t, config.GPT2_345M(), mbs*2)
		p := balanced(t, small, 4)
		for s := 0; s < 4; s++ {
			a := StageEstimate(small, p, s, 8, OneFOneB, 1)
			b := StageEstimate(large, p, s, 8, OneFOneB, 1)
			if b.Stash < a.Stash || b.PeakAct < a.PeakAct {
				t.Errorf("mbs %d->%d stage %d: footprint shrank: %v -> %v", mbs, mbs*2, s, a, b)
			}
		}
	}
}

func TestDeeperPipelineNeedsLessMemoryPerStage(t *testing.T) {
	bl := build(t, config.GPT2_1_3B(), 16)
	worst2 := MaxEstimate(bl, balanced(t, bl, 2), 8, OneFOneB, 1)
	worst4 := MaxEstimate(bl, balanced(t, bl, 4), 8, OneFOneB, 1)
	if worst4.Total() >= worst2.Total() {
		t.Errorf("4-stage worst %v not smaller than 2-stage worst %v", worst4.Total(), worst2.Total())
	}
}

func TestEstimateStringHasBreakdown(t *testing.T) {
	bl := build(t, config.GPT2_345M(), 4)
	e := StageEstimate(bl, balanced(t, bl, 4), 0, 8, OneFOneB, 1)
	if s := e.String(); s == "" {
		t.Error("empty breakdown")
	}
	if e.Total() != e.Params+e.Stash+e.PeakAct+e.Overhead {
		t.Error("Total does not sum the parts")
	}
}
