package slicer

import (
	"testing"
	"testing/quick"

	"autopipe/internal/config"
	"autopipe/internal/exec"
	"autopipe/internal/schedule"
)

func TestSolveUniformSlicesOne(t *testing.T) {
	// The paper's Fig. 8 example: a 4-stage pipeline with checkpointed
	// backward (b = 3f) needs only micro-batch 0 sliced.
	p, err := SolveUniform(4, 1, 3, 0.01, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumSliced != 1 {
		t.Errorf("NumSliced = %d, want 1", p.NumSliced)
	}
}

func TestSolveSingleStage(t *testing.T) {
	p, err := SolveUniform(1, 1, 2, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumSliced != 0 {
		t.Errorf("single stage sliced %d micro-batches, want 0", p.NumSliced)
	}
}

func TestSolveErrors(t *testing.T) {
	if _, err := Solve(nil, nil, 0, 4); err == nil {
		t.Error("want error for empty stages")
	}
	if _, err := Solve([]float64{1}, []float64{1, 2}, 0, 4); err == nil {
		t.Error("want error for mismatched lengths")
	}
	if _, err := Solve([]float64{1}, []float64{2}, 0, 0); err == nil {
		t.Error("want error for zero micro-batches")
	}
}

func TestSolveLightBackwardSlicesMore(t *testing.T) {
	// Without checkpointing (b < 2f) the deadline is tighter and more
	// micro-batches must be sliced than with a heavy backward.
	heavy, err := SolveUniform(6, 1, 3, 0.01, 12)
	if err != nil {
		t.Fatal(err)
	}
	light, err := SolveUniform(6, 1, 1.2, 0.01, 12)
	if err != nil {
		t.Fatal(err)
	}
	if light.NumSliced < heavy.NumSliced {
		t.Errorf("light backward sliced %d < heavy %d", light.NumSliced, heavy.NumSliced)
	}
}

func TestSolveBounds(t *testing.T) {
	// The answer never exceeds the warmup depth or the iteration size.
	prop := func(pRaw, mRaw, bRaw uint8) bool {
		p := 2 + int(pRaw)%10
		m := 1 + int(mRaw)%20
		b := 1 + float64(bRaw%40)/10
		plan, err := SolveUniform(p, 1, b, 0.02, m)
		if err != nil {
			return false
		}
		return plan.NumSliced >= 1 && plan.NumSliced <= p && plan.NumSliced <= m
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestSolvedCountHalvesStartupWithoutSlowingIteration is the paper's core
// Slicer claim, verified end-to-end on the executor: the solved slicing
// count halves the startup overhead and never lengthens the iteration.
func TestSolvedCountHalvesStartupWithoutSlowingIteration(t *testing.T) {
	net := config.Network{Bandwidth: 1e12, Latency: 0}
	for _, tc := range []struct {
		p, m int
		f, b float64
	}{
		{4, 8, 1, 3},
		{8, 16, 1, 3},
		{12, 24, 1, 3},
		{4, 8, 1, 2},
		{6, 12, 2, 6},
	} {
		fs := make([]float64, tc.p)
		bs := make([]float64, tc.p)
		for i := range fs {
			fs[i], bs[i] = tc.f, tc.b
		}
		plan, err := Solve(fs, bs, 0, tc.m)
		if err != nil {
			t.Fatal(err)
		}
		base, _ := schedule.OneFOneB(tc.p, tc.m)
		sliced, err := schedule.Sliced(tc.p, tc.m, plan.NumSliced)
		if err != nil {
			t.Fatal(err)
		}
		cfg := exec.Config{VirtFwd: fs, VirtBwd: bs, Network: net}
		rb, err := exec.Run(base, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := exec.Run(sliced, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rs.Startup > rb.Startup/2+1e-9 {
			t.Errorf("p=%d m=%d b/f=%.1f sliced=%d: startup %v, want <= half of %v",
				tc.p, tc.m, tc.b/tc.f, plan.NumSliced, rs.Startup, rb.Startup)
		}
		if rs.IterTime > rb.IterTime+1e-9 {
			t.Errorf("p=%d m=%d sliced=%d: iteration %v slower than base %v",
				tc.p, tc.m, plan.NumSliced, rs.IterTime, rb.IterTime)
		}
	}
}

func TestSolveMatchesGeometry(t *testing.T) {
	p, err := SolveUniform(4, 1, 3, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.Stages != 4 || p.Micro != 8 {
		t.Errorf("plan geometry %+v, want stages 4 micro 8", p)
	}
}
