package slicer

import (
	"fmt"
	"testing"

	"autopipe/internal/sim"
)

// Algorithm 2 runs once per planned configuration (and once per driver
// re-plan after a fault), so its cost at realistic depths is pinned in
// BENCH_*.json via cmd/autopipebench.

// benchProfile builds a mildly unbalanced profile: slicing is only
// interesting when stages differ, and the imbalance keeps the while loop from
// converging on the first round.
func benchProfile(p, m int) sim.StageProfile {
	f := make([]float64, p)
	b := make([]float64, p)
	for i := range f {
		f[i] = 0.010 + 0.002*float64(i%4)
		b[i] = 2 * f[i]
	}
	return sim.StageProfile{Fwd: f, Bwd: b, Comm: 0.003, Micro: m}
}

func BenchmarkSolveProfile(b *testing.B) {
	for _, tc := range []struct{ p, m int }{{4, 16}, {16, 256}} {
		b.Run(fmt.Sprintf("p%d_m%d", tc.p, tc.m), func(b *testing.B) {
			prof := benchProfile(tc.p, tc.m)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := SolveProfile(prof); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
