// Package slicer implements the AutoPipe Slicer (paper §III-C): it halves
// the pipeline startup overhead by splitting the leading warmup micro-batches
// evenly in two and rescheduling their forward passes, and it solves — via
// Algorithm 2 — the smallest number of micro-batches that must be split so
// the sliced warmup never stalls the 1F1B phase.
//
// Slicing a micro-batch doubles its forward communication count and can
// block at the last warmup forward of each stage (the downstream device is
// busy); the paper's fix, reproduced by the schedule builder, is to cancel
// the first half's communication there and aggregate it with the second
// half's. Backward passes are never sliced: the two halves re-join before
// the 1F1B phase, so memory consumption and convergence are untouched.
package slicer

import (
	"fmt"

	"autopipe/internal/sim"
)

// Plan is the slicing decision for a partition.
type Plan struct {
	// NumSliced is the number of leading micro-batches to split in half.
	NumSliced int
	// Stages and Micro record the geometry the plan was solved for.
	Stages int
	Micro  int
	// Rounds counts the Algorithm 2 while-loop iterations taken, and
	// Converged reports whether the no-stall condition was met (false means
	// every warmup micro-batch got split and the search exhausted itself).
	Rounds    int
	Converged bool
}

// Solve runs Algorithm 2 on per-stage forward times f, backward times b and
// communication constant comm, for a pipeline of m micro-batches.
//
// Deprecated: use SolveProfile with a sim.StageProfile value.
func Solve(f, b []float64, comm float64, m int) (Plan, error) {
	return SolveProfile(sim.StageProfile{Fwd: f, Bwd: b, Comm: comm, Micro: m})
}

// SolveProfile runs Algorithm 2 on a stage profile.
//
// The algorithm simulates the sliced warmup: endt[i][0] and endt[i][1] track
// when stage i finishes the first and second halves of the split
// micro-batches, startt approximates when each stage begins its first 1F1B
// forward, and mb grows until the first unbroken micro-batch on stage 0
// would start no earlier than the second half of the last split one ends —
// i.e. until slicing more micro-batches could no longer stall the pipeline.
//
//hot:solved once per candidate plan (Algorithm 2)
func SolveProfile(prof sim.StageProfile) (Plan, error) {
	if err := prof.Validate(); err != nil {
		return Plan{}, fmt.Errorf("slicer: %w", err)
	}
	f, b, comm, m := prof.Fwd, prof.Bwd, prof.Comm, prof.Micro
	p := len(f)
	if p == 1 {
		// A single stage has no startup overhead to hide.
		return Plan{NumSliced: 0, Stages: p, Micro: m, Converged: true}, nil
	}

	// startt[k]: start time of the first 1F1B forward for stage p-1-k,
	// following Algorithm 2 lines 4-15. The first micro-batch's forward
	// halves ripple down the pipeline (f_i/2 + Comm/2 per hop), the last
	// stage computes its half and backward, and backwards ripple up.
	startt := make([]float64, p)
	tempt := 0.0
	for i := 0; i <= p-2; i++ {
		tempt += f[i]/2 + comm/2
	}
	tempt += f[p-1] / 2
	for i := p - 1; i >= 1; i-- {
		tempt += b[i] + comm
		startt[p-1-i] = tempt
	}
	tempt += b[0]
	startt[p-1] = tempt

	// endt[i][j]: end time of half j of the current split micro-batch on
	// stage i (Algorithm 2 lines 17-28). endt has a phantom row p so the
	// i+1 back-pressure lookup is always valid. It deliberately accumulates
	// across while-loop rounds: each round advances every stage past one
	// more split micro-batch, exactly as in the paper's pseudocode.
	endt := make([][2]float64, p+1)

	mb := 1
	rounds := 0
	for mb < p && mb < m {
		rounds++
		for i := 0; i <= p-mb; i++ {
			for j := 0; j <= 1; j++ {
				// The half follows its sibling on the same stage...
				endt[i][j] = endt[i][(j+1)%2] + f[i]/2
				if i > 0 {
					// ...and the matching half upstream.
					if v := endt[i-1][j] + f[i-1]/2; v > endt[i][j] {
						endt[i][j] = v
					}
				}
				if i != p-1 {
					endt[i][j] += comm / 2
				}
				// Back-pressure: a busy downstream stage delays the hand-off
				// (the blockage the aggregated communication works around).
				if v := endt[i+1][(j+1)%2]; v > endt[i][j] {
					endt[i][j] = v
				}
			}
		}
		// By when must stage 0 start the first unbroken micro-batch for it
		// to reach every stage just in time for the 1F1B phase (lines
		// 29-33)? Back-propagating the scheduled 1F1B start through the
		// forward chain gives the deadline tempt. Stage 0 becomes free at
		// endt[0][1]. Once the deadline is no earlier than that ("the start
		// time of the unbroken micro-batch is greater than or equal to the
		// end time of the second half of the split micro-batch", §III-C),
		// the unbroken micro-batch cannot stall the pipeline and mb is the
		// answer. (The pseudocode as printed compares with ≤, which
		// contradicts the prose and never converges for checkpointed
		// backward times; we follow the prose.)
		tempt = startt[mb-1]
		for i := p - 1 - mb; i >= 1; i-- {
			tempt -= f[i] + comm
		}
		tempt -= f[0]
		if tempt >= endt[0][1] {
			return Plan{NumSliced: mb, Stages: p, Micro: m, Rounds: rounds, Converged: true}, nil
		}
		mb++
	}
	// Every warmup micro-batch is already split; slicing further is
	// inoperative for startup reduction (paper §III-C).
	return Plan{NumSliced: mb, Stages: p, Micro: m, Rounds: rounds}, nil
}

// SolveUniform is a convenience wrapper for a uniform pipeline.
func SolveUniform(p int, f, b, comm float64, m int) (Plan, error) {
	fs := make([]float64, p)
	bs := make([]float64, p)
	for i := range fs {
		fs[i], bs[i] = f, b
	}
	return Solve(fs, bs, comm, m)
}
