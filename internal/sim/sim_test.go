package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b)) }

func TestSimulateUniformPipelineMakespan(t *testing.T) {
	// A uniform pipeline with zero comm has the classic 1F1B makespan
	// (m + n - 1) * (f + b).
	for _, tc := range []struct{ n, m int }{{1, 1}, {2, 2}, {2, 8}, {4, 8}, {4, 16}, {8, 16}, {16, 32}} {
		f := make([]float64, tc.n)
		b := make([]float64, tc.n)
		for i := range f {
			f[i], b[i] = 1, 1
		}
		r, err := Simulate(f, b, 0, tc.m)
		if err != nil {
			t.Fatalf("Simulate(n=%d,m=%d): %v", tc.n, tc.m, err)
		}
		want := float64(tc.m+tc.n-1) * 2
		if !almostEq(r.IterTime, want) {
			t.Errorf("n=%d m=%d: IterTime = %v, want %v\n%s", tc.n, tc.m, r.IterTime, want, r.Timeline())
		}
	}
}

func TestSimulateSingleStage(t *testing.T) {
	r, err := Simulate([]float64{2}, []float64{3}, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * (2.0 + 3.0); !almostEq(r.IterTime, want) {
		t.Errorf("IterTime = %v, want %v", r.IterTime, want)
	}
	if r.Startup != 0 {
		t.Errorf("Startup = %v, want 0 for a single stage", r.Startup)
	}
	if r.Master != 0 {
		t.Errorf("Master = %d, want 0", r.Master)
	}
}

func TestSimulateStartupIsFirstMicroBatchArrival(t *testing.T) {
	f := []float64{1, 2, 3, 4}
	b := []float64{2, 4, 6, 8}
	comm := 0.25
	r, err := Simulate(f, b, comm, 8)
	if err != nil {
		t.Fatal(err)
	}
	// The last stage can start once the first micro-batch has traversed the
	// three earlier stages plus three comm hops.
	want := (1 + 2 + 3) + 3*comm
	if !almostEq(r.Startup, want) {
		t.Errorf("Startup = %v, want %v", r.Startup, want)
	}
}

func TestSimulateWarmupEstimateMatchesBalanced(t *testing.T) {
	// On a perfectly balanced pipeline the paper's Warmup estimate (total
	// forward of one micro-batch plus hops) equals the simulated startup.
	f := []float64{2, 2, 2, 2}
	b := []float64{4, 4, 4, 4}
	comm := 0.1
	r, err := Simulate(f, b, comm, 8)
	if err != nil {
		t.Fatal(err)
	}
	est := WarmupEstimate(f[:3], comm) + comm // estimate covers stages 0..n-2 then one hop
	if !almostEq(r.Startup, est) {
		t.Errorf("Startup = %v, estimate %v", r.Startup, est)
	}
}

func TestSimulateMasterIsHeaviestStage(t *testing.T) {
	// Stage 2 carries twice the load; it must dominate the 1F1B critical
	// path and therefore be the master stage.
	f := []float64{1, 1, 2, 1}
	b := []float64{2, 2, 4, 2}
	r, err := Simulate(f, b, 0.01, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Master != 2 {
		t.Errorf("Master = %d, want 2\n%s", r.Master, r.Timeline())
	}
}

func TestSimulateMasterTieBreaksTowardLastStage(t *testing.T) {
	// A perfectly balanced pipeline has many equal-length paths; the paper
	// defines the critical path as the one closest to the last stage.
	f := []float64{1, 1, 1, 1}
	b := []float64{2, 2, 2, 2}
	r, err := Simulate(f, b, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Master != len(f)-1 {
		t.Errorf("Master = %d, want %d (tie-break toward last stage)", r.Master, len(f)-1)
	}
}

func TestSimulateCriticalPathIsContiguousAndSpansIteration(t *testing.T) {
	f := []float64{1, 1.5, 1, 1.2}
	b := []float64{2, 3, 2, 2.4}
	r, err := Simulate(f, b, 0.05, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Critical) == 0 {
		t.Fatal("empty critical path")
	}
	first, last := r.Critical[0], r.Critical[len(r.Critical)-1]
	if first.Stage != 0 || first.Micro != 0 || first.Kind != Fwd {
		t.Errorf("critical path starts at %+v, want F of micro 0 on stage 0", first)
	}
	if !almostEq(last.End, r.IterTime) {
		t.Errorf("critical path ends at %v, want IterTime %v", last.End, r.IterTime)
	}
	for i := 1; i < len(r.Critical); i++ {
		prev, cur := r.Critical[i-1], r.Critical[i]
		if cur.Start < prev.End-1e-12 {
			t.Errorf("critical path not causally ordered: %+v then %+v", prev, cur)
		}
		if d := cur.Stage - prev.Stage; d < -1 || d > 1 {
			t.Errorf("critical path jumps stages: %d -> %d", prev.Stage, cur.Stage)
		}
	}
}

func TestSimulateBlockRenumbering(t *testing.T) {
	// Paper: stage k of an n-stage, m-micro-batch pipeline owns
	// max(0, m-n+k+1) 1F1B blocks.
	n, m := 4, 8
	f := []float64{1, 1, 1, 1}
	b := []float64{2, 2, 2, 2}
	r, err := Simulate(f, b, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		blocks := 0
		for _, op := range r.Ops[k] {
			if op.Phase == OneFOneB && op.Kind == Fwd {
				blocks++
			}
		}
		want := m - n + k + 1
		if want < 0 {
			want = 0
		}
		if blocks != want {
			t.Errorf("stage %d: %d 1F1B blocks, want %d", k, blocks, want)
		}
	}
}

func TestSimulateOpCountsAndOrdering(t *testing.T) {
	f := []float64{1, 2, 1}
	b := []float64{2, 4, 2}
	m := 6
	r, err := Simulate(f, b, 0.1, m)
	if err != nil {
		t.Fatal(err)
	}
	for x, ops := range r.Ops {
		var fwd, bwd int
		for i, op := range ops {
			if op.Kind == Fwd {
				fwd++
			} else {
				bwd++
			}
			if i > 0 && op.Start < ops[i-1].End-1e-12 {
				t.Errorf("stage %d: op %d starts before predecessor ends", x, i)
			}
		}
		if fwd != m || bwd != m {
			t.Errorf("stage %d: %d fwd / %d bwd ops, want %d each", x, fwd, bwd, m)
		}
	}
}

func TestSimulateFewerMicroBatchesThanStages(t *testing.T) {
	// m < n degenerates into a GPipe-like fill/drain; it must still simulate.
	f := []float64{1, 1, 1, 1, 1}
	b := []float64{2, 2, 2, 2, 2}
	r, err := Simulate(f, b, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.IterTime <= 0 {
		t.Errorf("IterTime = %v, want positive", r.IterTime)
	}
}

func TestSimulateErrors(t *testing.T) {
	if _, err := Simulate(nil, nil, 0, 1); err == nil {
		t.Error("want error for empty stages")
	}
	if _, err := Simulate([]float64{1}, []float64{1, 2}, 0, 1); err == nil {
		t.Error("want error for mismatched lengths")
	}
	if _, err := Simulate([]float64{1}, []float64{1}, 0, 0); err == nil {
		t.Error("want error for zero micro-batches")
	}
	if _, err := Simulate([]float64{-1}, []float64{1}, 0, 1); err == nil {
		t.Error("want error for negative time")
	}
}

func TestSimulateMonotoneInLoad(t *testing.T) {
	// Property: increasing any stage's time never decreases the iteration
	// time, and adding micro-batches never decreases it either.
	cfg := &quick.Config{MaxCount: 60}
	prop := func(seed uint8, bump uint8) bool {
		n := 2 + int(seed%4)
		m := 2 + int(seed%8)
		f := make([]float64, n)
		b := make([]float64, n)
		for i := range f {
			f[i] = 1 + float64((int(seed)+i*7)%5)
			b[i] = 2 * f[i]
		}
		base, err := Simulate(f, b, 0.1, m)
		if err != nil {
			return false
		}
		j := int(bump) % n
		f[j] += 1.5
		heavier, err := Simulate(f, b, 0.1, m)
		if err != nil {
			return false
		}
		more, err := Simulate(f, b, 0.1, m+1)
		if err != nil {
			return false
		}
		return heavier.IterTime >= base.IterTime-1e-9 && more.IterTime >= heavier.IterTime-1e-9
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestSimulateBubbleNonNegative(t *testing.T) {
	prop := func(a, b8, c uint8) bool {
		f := []float64{1 + float64(a%7), 1 + float64(b8%7), 1 + float64(c%7)}
		bw := []float64{2 * f[0], 2 * f[1], 2 * f[2]}
		r, err := Simulate(f, bw, 0.05, 6)
		if err != nil {
			return false
		}
		return r.Bubble() >= -1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPhaseWindows(t *testing.T) {
	f := []float64{1, 1.5, 1.2, 0.8}
	b := []float64{2, 3, 2.4, 1.6}
	r, err := Simulate(f, b, 0.05, 8)
	if err != nil {
		t.Fatal(err)
	}
	windows := r.PhaseWindows()
	if len(windows) != len(f) {
		t.Fatalf("%d windows for %d stages", len(windows), len(f))
	}
	for x, w := range windows {
		if !(0 <= w[0] && w[0] <= w[1] && w[1] <= r.IterTime) {
			t.Errorf("stage %d: window %v not ordered within makespan %g", x, w, r.IterTime)
		}
		// The window must bracket exactly the stage's 1F1B-phase ops.
		for _, op := range r.Ops[x] {
			in := op.Start >= w[0]-1e-12 && op.End <= w[1]+1e-12
			if (op.Phase == OneFOneB) != in {
				t.Errorf("stage %d op %v%d phase %v vs window %v [%g,%g]", x, op.Kind, op.Micro, op.Phase, w, op.Start, op.End)
			}
		}
	}
	// The last stage has no warmup ops: its warmup window is exactly the
	// startup overhead.
	if last := windows[len(windows)-1]; last[0] != r.Startup {
		t.Errorf("last stage warmup window ends at %g, want startup %g", last[0], r.Startup)
	}
}
