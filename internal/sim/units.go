package sim

// Time is a duration or instant on the simulated clock, in seconds. It is a
// defined type rather than a bare float64 so the unitsafe analyzer can reject
// arithmetic that mixes simulated seconds with FLOP counts or byte sizes:
// Time+Time and Time compared to Time typecheck, Time*Time (seconds squared)
// and Time+Bytes do not without an explicit conversion.
type Time float64

// Seconds returns the value as a bare float64 for boundary arithmetic
// (multiplying by a rate, formatting, feeding the float64-based public APIs).
func (t Time) Seconds() float64 { return float64(t) }

// Bytes is a payload or memory size in bytes, a defined type for the same
// dimensional-safety reason as Time.
type Bytes int64

// Int64 returns the size as a bare int64 for boundary arithmetic.
func (b Bytes) Int64() int64 { return int64(b) }
