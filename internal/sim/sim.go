// Package sim implements the paper's pipeline simulator (§III-B-1): given
// per-stage forward/backward times and a communication constant it computes
// the start time of every operation of a synchronous 1F1B pipeline
// iteration, the iteration time, the startup overhead, and reconstructs the
// unique critical path and master stage.
//
// The recurrences follow the paper exactly. For a non-first stage a forward
// start is max(upstream forward end, previous same-stage op end) + Comm; for
// a non-last stage a backward start is max(downstream backward end, previous
// same-stage op end) + Comm. The paper estimates the Warmup phase with the
// total forward time of one micro-batch because a balanced partition keeps
// the first micro-batch from choking; this implementation evaluates Warmup
// with the same recurrences, which coincides with the estimate whenever that
// assumption holds (a property the tests check).
package sim

import (
	"fmt"
	"math"
	"strings"

	"autopipe/internal/errdefs"
)

// StageProfile is the value type every timing-level entry point consumes: the
// per-stage forward and backward wall times of a partition, the cross-stage
// communication constant, and the micro-batch count of one iteration. It
// replaces the positional (f, b []float64, comm, micro) signature that used
// to be duplicated across Simulate, the Slicer, and the planner.
type StageProfile struct {
	// Fwd and Bwd are the per-stage forward/backward times in seconds (the
	// paper's f_x and b_x).
	Fwd []float64
	Bwd []float64
	// Comm is the activation hand-off time between adjacent stages.
	Comm float64
	// Micro is the number of micro-batches per iteration.
	Micro int
}

// Stages returns the pipeline depth of the profile.
func (p StageProfile) Stages() int { return len(p.Fwd) }

// Validate reports the first structural problem with the profile. Errors wrap
// errdefs.ErrBadConfig.
func (p StageProfile) Validate() error {
	n := len(p.Fwd)
	if n == 0 || len(p.Bwd) != n {
		return fmt.Errorf("%w: sim: need matching non-empty stage times, got %d fwd / %d bwd",
			errdefs.ErrBadConfig, n, len(p.Bwd))
	}
	if p.Micro <= 0 {
		return fmt.Errorf("%w: sim: micro-batch count must be positive, got %d", errdefs.ErrBadConfig, p.Micro)
	}
	for i := 0; i < n; i++ {
		if p.Fwd[i] < 0 || p.Bwd[i] < 0 {
			return fmt.Errorf("%w: sim: negative stage time at stage %d", errdefs.ErrBadConfig, i)
		}
	}
	if p.Comm < 0 {
		return fmt.Errorf("%w: sim: negative communication constant %g", errdefs.ErrBadConfig, p.Comm)
	}
	return nil
}

// Phase labels the pipeline phase an operation belongs to (paper Fig. 5).
type Phase int

const (
	Warmup Phase = iota
	OneFOneB
	Cooldown
)

var phaseNames = [...]string{"Warmup", "1F1B", "Cooldown"}

func (p Phase) String() string { return phaseNames[p] }

// OpKind distinguishes forward from backward operations.
type OpKind int

const (
	Fwd OpKind = iota
	Bwd
)

func (k OpKind) String() string {
	if k == Fwd {
		return "F"
	}
	return "B"
}

// Op is one simulated compute operation.
type Op struct {
	Stage int
	Micro int
	Kind  OpKind
	Phase Phase
	// Block is the renumbered block index within the 1F1B phase (paper
	// Fig. 6), or the reverse-renumbered index within Cooldown; -1 in Warmup.
	Block      int
	Start, End float64

	// pos is the op's index within its stage's execution order.
	pos int
	// critPred encodes which dependency determined Start: -1 none,
	// 0 same-stage predecessor, 1 cross-stage predecessor.
	critPred int
}

// Result is the outcome of simulating one pipeline iteration.
type Result struct {
	// IterTime is the makespan of the iteration (Warmup + 1F1B + Cooldown),
	// the quantity the partitioner minimizes.
	IterTime float64
	// Startup is the pipeline startup overhead: the moment the last stage
	// has received the activations of the first micro-batch and can begin
	// computing (paper §II-B).
	Startup float64
	// Master is the master stage: the stage the critical path passes
	// through in the 1F1B phase (paper §III-B).
	Master int
	// Critical is the unique critical path from the first forward to the
	// end of the last backward, tie-broken toward the last pipeline stage.
	Critical []*Op
	// Ops holds every simulated op, per stage, in execution order.
	Ops [][]*Op

	F, B  []float64
	Comm  float64
	Micro int
}

// Simulate runs one synchronous 1F1B iteration with per-stage forward times
// f, backward times b, communication constant comm, and m micro-batches.
//
// Deprecated: use SimulateProfile with a StageProfile value.
func Simulate(f, b []float64, comm float64, m int) (*Result, error) {
	return SimulateProfile(StageProfile{Fwd: f, Bwd: b, Comm: comm, Micro: m})
}

// SimulateProfile runs one synchronous 1F1B iteration for the profile.
func SimulateProfile(p StageProfile) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	f, b, comm, m := p.Fwd, p.Bwd, p.Comm, p.Micro
	n := len(f)

	r := &Result{F: append([]float64(nil), f...), B: append([]float64(nil), b...), Comm: comm, Micro: m}
	r.Ops = buildSchedule(n, m)

	// fwdAt[x][µ] / bwdAt[x][µ] index ops for cross-stage dependencies.
	fwdAt := make([][]*Op, n)
	bwdAt := make([][]*Op, n)
	for x := 0; x < n; x++ {
		fwdAt[x] = make([]*Op, m)
		bwdAt[x] = make([]*Op, m)
		for _, op := range r.Ops[x] {
			if op.Kind == Fwd {
				fwdAt[x][op.Micro] = op
			} else {
				bwdAt[x][op.Micro] = op
			}
		}
	}

	// The per-stage lists are already in execution order and every
	// cross-stage dependency points to an op that appears earlier in a
	// valid pipeline execution, so evaluating stages round-robin by op
	// position converges in one pass per dependency chain. We use an
	// explicit worklist sweep: iterate until fixed point (times only grow
	// toward their unique longest-path values; each sweep finalizes at
	// least one stage frontier, so at most n+2 sweeps run).
	done := make([]int, n) // per-stage count of finalized ops
	total := 0
	for _, ops := range r.Ops {
		total += len(ops)
	}
	finalized := 0
	for finalized < total {
		progressed := false
		for x := 0; x < n; x++ {
			for done[x] < len(r.Ops[x]) {
				op := r.Ops[x][done[x]]
				ready, start, critPred := opStart(op, r, fwdAt, bwdAt, done)
				if !ready {
					break
				}
				op.Start = start
				op.critPred = critPred
				if op.Kind == Fwd {
					op.End = start + f[x]
				} else {
					op.End = start + b[x]
				}
				done[x]++
				finalized++
				progressed = true
			}
		}
		if !progressed {
			return nil, fmt.Errorf("%w: sim: dependency deadlock (internal error)", errdefs.ErrDeadlock)
		}
	}

	last := r.Ops[0][len(r.Ops[0])-1]
	r.IterTime = last.End
	if first := firstOp(r.Ops[n-1]); first != nil {
		r.Startup = first.Start
	}
	r.Critical = criticalPath(last, r, fwdAt, bwdAt)
	r.Master = masterStage(r)
	return r, nil
}

// buildSchedule lays out the 1F1B execution order (paper Fig. 5/6): stage x
// warms up with min(n-1-x, m) forwards, alternates forward/backward blocks
// in the 1F1B phase, and cools down with the remaining backwards.
func buildSchedule(n, m int) [][]*Op {
	ops := make([][]*Op, n)
	for x := 0; x < n; x++ {
		warm := n - 1 - x
		if warm > m {
			warm = m
		}
		var list []*Op
		for µ := 0; µ < warm; µ++ {
			list = append(list, &Op{Stage: x, Micro: µ, Kind: Fwd, Phase: Warmup, Block: -1})
		}
		// 1F1B blocks: block y pairs F(µ=warm+y) with B(µ=y).
		blocks := m - warm
		for y := 0; y < blocks; y++ {
			list = append(list, &Op{Stage: x, Micro: warm + y, Kind: Fwd, Phase: OneFOneB, Block: y})
			list = append(list, &Op{Stage: x, Micro: y, Kind: Bwd, Phase: OneFOneB, Block: y})
		}
		// Cooldown backwards, renumbered in reverse order (paper Fig. 6):
		// the final backward gets index 0.
		for µ := blocks; µ < m; µ++ {
			list = append(list, &Op{Stage: x, Micro: µ, Kind: Bwd, Phase: Cooldown, Block: m - 1 - µ})
		}
		for i, op := range list {
			op.pos = i
		}
		ops[x] = list
	}
	return ops
}

// opStart computes the start time of op if all its dependencies are
// finalized. done[x] counts finalized ops on stage x.
func opStart(op *Op, r *Result, fwdAt, bwdAt [][]*Op, done []int) (ready bool, start float64, critPred int) {
	n := len(r.Ops)
	var same, cross *Op
	if op.pos > 0 {
		same = r.Ops[op.Stage][op.pos-1]
		if done[op.Stage] <= same.pos {
			return false, 0, 0
		}
	}
	hasComm := false
	if op.Kind == Fwd && op.Stage > 0 {
		cross = fwdAt[op.Stage-1][op.Micro]
		hasComm = true
	} else if op.Kind == Bwd && op.Stage < n-1 {
		cross = bwdAt[op.Stage+1][op.Micro]
		hasComm = true
	}
	if cross != nil && done[cross.Stage] <= cross.pos {
		return false, 0, 0
	}

	start, critPred = 0, -1
	if same != nil {
		start, critPred = same.End, 0
	}
	if cross != nil {
		// Tie-break toward the path "closest to the last pipeline stage"
		// (paper Fig. 4): a backward's cross dependency comes from a higher
		// stage, so it wins ties; a forward's comes from a lower stage, so
		// the same-stage predecessor keeps ties.
		if cross.End > start || (cross.End == start && op.Kind == Bwd) {
			start, critPred = cross.End, 1
		}
	}
	if hasComm {
		// The paper charges Comm on every cross-stage op regardless of
		// which dependency dominated (the receive occupies the stream).
		start += r.Comm
	}
	return true, start, critPred
}

func firstOp(ops []*Op) *Op {
	if len(ops) == 0 {
		return nil
	}
	return ops[0]
}

// criticalPath backtracks the recorded argmax decisions from the final op.
func criticalPath(last *Op, r *Result, fwdAt, bwdAt [][]*Op) []*Op {
	var rev []*Op
	for op := last; op != nil; {
		rev = append(rev, op)
		switch op.critPred {
		case 0:
			op = r.Ops[op.Stage][op.pos-1]
		case 1:
			if op.Kind == Fwd {
				op = fwdAt[op.Stage-1][op.Micro]
			} else {
				op = bwdAt[op.Stage+1][op.Micro]
			}
		default:
			op = nil
		}
	}
	// Reverse into chronological order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// masterStage returns the stage whose compute dominates the critical path in
// the 1F1B phase: the stage with the heaviest load, which drives succeeding
// stages through its forwards and preceding stages through its backwards.
func masterStage(r *Result) int {
	dwell := make([]float64, len(r.Ops))
	any := false
	for _, op := range r.Critical {
		if op.Phase == OneFOneB {
			dwell[op.Stage] += op.End - op.Start
			any = true
		}
	}
	if !any {
		// Degenerate pipelines (m < n) may have an empty 1F1B phase; fall
		// back to the heaviest critical-path stage overall.
		for _, op := range r.Critical {
			dwell[op.Stage] += op.End - op.Start
		}
	}
	best, bestT := 0, math.Inf(-1)
	for s, t := range dwell {
		// Ties resolve toward the last stage, matching the critical-path
		// uniqueness rule.
		if t >= bestT {
			best, bestT = s, t
		}
	}
	return best
}

// PhaseWindows returns, per stage, the wall-clock boundaries
// [warmup-end, steady-end] of the analytic timeline: the start of the
// stage's first 1F1B-phase op and the end of its last. A stage with an empty
// 1F1B phase (m < n) collapses the steady window at the start of its first
// Cooldown op. The executor consumes these windows
// (exec.Result.MetricsWithWindows) to attribute measured bubbles on the same
// phase boundaries the planner reasoned about — the analytic counterpart of
// the paper's Fig. 5 phase split.
func (r *Result) PhaseWindows() [][2]float64 {
	out := make([][2]float64, len(r.Ops))
	for x, ops := range r.Ops {
		t1, t2 := r.IterTime, r.IterTime
		var firstSteady, lastSteady, firstCool *Op
		for _, op := range ops {
			switch op.Phase {
			case OneFOneB:
				if firstSteady == nil {
					firstSteady = op
				}
				lastSteady = op
			case Cooldown:
				if firstCool == nil {
					firstCool = op
				}
			}
		}
		switch {
		case firstSteady != nil:
			t1, t2 = firstSteady.Start, lastSteady.End
		case firstCool != nil:
			t1, t2 = firstCool.Start, firstCool.Start
		}
		out[x] = [2]float64{t1, t2}
	}
	return out
}

// WarmupEstimate returns the paper's closed-form Warmup overhead estimate:
// the total forward time of one micro-batch plus the cross-stage hops.
func WarmupEstimate(f []float64, comm float64) float64 {
	var t float64
	for _, fx := range f {
		t += fx
	}
	return t + float64(len(f)-1)*comm
}

// Bubble returns the total idle time across stages within the iteration
// (makespan*stages minus busy time), a convenience metric for tests and
// ablations.
func (r *Result) Bubble() float64 {
	var busy float64
	for _, ops := range r.Ops {
		for _, op := range ops {
			busy += op.End - op.Start
		}
	}
	return r.IterTime*float64(len(r.Ops)) - busy
}

// Timeline renders a compact text view of the iteration for debugging.
func (r *Result) Timeline() string {
	var sb strings.Builder
	for x, ops := range r.Ops {
		fmt.Fprintf(&sb, "stage %d:", x)
		for _, op := range ops {
			fmt.Fprintf(&sb, " %s%d@%.2f", op.Kind, op.Micro, op.Start*1e3)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
