package errdefs_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"autopipe/internal/errdefs"
	"autopipe/internal/fault"
)

// The errdefs contract: every sentinel survives arbitrary layers of %w
// wrapping, so the self-healing driver's errors.Is dispatch works no matter
// how deep in the stack the failure originated.
func TestSentinelsSurviveWrapping(t *testing.T) {
	sentinels := []error{
		errdefs.ErrInfeasible,
		errdefs.ErrOOM,
		errdefs.ErrBadConfig,
		errdefs.ErrDeadlock,
		errdefs.ErrDeviceLost,
		errdefs.ErrLinkDown,
		errdefs.ErrTransient,
		errdefs.ErrInternal,
	}
	for _, s := range sentinels {
		wrapped := fmt.Errorf("layer three: %w", fmt.Errorf("layer two: %w", fmt.Errorf("layer one: %w", s)))
		if !errors.Is(wrapped, s) {
			t.Errorf("errors.Is lost sentinel %v through three wraps", s)
		}
		for _, other := range sentinels {
			if other != s && errors.Is(wrapped, other) {
				t.Errorf("wrapped %v spuriously matches %v", s, other)
			}
		}
	}
}

// The fault package's typed errors must unwrap to their sentinels (coarse
// dispatch via errors.Is) and back to themselves (site extraction via
// errors.As), including through further wrapping by the executor and driver.
func TestFaultTypedErrorsRoundTrip(t *testing.T) {
	cases := []struct {
		err      error
		sentinel error
	}{
		{&fault.DeviceLostError{Device: 2, At: 1.5}, errdefs.ErrDeviceLost},
		{&fault.LinkDownError{From: 0, To: 1, At: 0.25}, errdefs.ErrLinkDown},
		{&fault.TransientError{From: 1, To: 2, At: 2.0}, errdefs.ErrTransient},
		{&fault.OOMError{Device: 3, At: 0.75}, errdefs.ErrOOM},
	}
	for _, tc := range cases {
		wrapped := fmt.Errorf("train: step 7: %w", fmt.Errorf("exec: %w", tc.err))
		if !errors.Is(wrapped, tc.sentinel) {
			t.Errorf("%T does not unwrap to %v through two layers", tc.err, tc.sentinel)
		}
	}

	var lost *fault.DeviceLostError
	wrapped := fmt.Errorf("driver: %w", &fault.DeviceLostError{Device: 2, At: 1.5})
	if !errors.As(wrapped, &lost) {
		t.Fatal("errors.As failed to extract *fault.DeviceLostError")
	}
	if lost.Device != 2 || lost.At != 1.5 {
		t.Errorf("extracted failure site = device %d at %v, want device 2 at 1.5", lost.Device, lost.At)
	}

	var oom *fault.OOMError
	if errors.As(wrapped, &oom) {
		t.Error("errors.As matched *fault.OOMError on a device-lost error")
	}
}

// Sentinels must not swallow context errors: a timed-out plan search reports
// context.DeadlineExceeded, not a sentinel, and the two are distinguishable.
func TestContextErrorsStayDistinct(t *testing.T) {
	err := fmt.Errorf("planning: %w", context.DeadlineExceeded)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("wrapped deadline error lost its identity")
	}
	if errors.Is(err, errdefs.ErrInfeasible) {
		t.Error("context error spuriously matches ErrInfeasible")
	}
}

// ErrInternal is the "bug in this repository" marker; it must stay disjoint
// from the retryable/re-plannable sentinels so the driver never retries it.
func TestInternalIsNotRecoverable(t *testing.T) {
	err := fmt.Errorf("%w: exec: device 0 leaked 128 bytes of activations", errdefs.ErrInternal)
	for _, recoverable := range []error{errdefs.ErrTransient, errdefs.ErrDeviceLost, errdefs.ErrLinkDown} {
		if errors.Is(err, recoverable) {
			t.Errorf("ErrInternal matches recoverable sentinel %v", recoverable)
		}
	}
	if !errors.Is(err, errdefs.ErrInternal) {
		t.Error("wrapped ErrInternal lost its identity")
	}
}
