// Package errdefs defines the typed sentinel errors of the public AutoPipe
// API. They live in their own leaf package (importing nothing) so that every
// layer — config validation, the planner engine, the plan evaluator — can
// wrap them without import cycles, and the root package re-exports them as
// autopipe.ErrInfeasible, autopipe.ErrOOM, and autopipe.ErrBadConfig.
//
// All errors returned by the Plan/Evaluate paths wrap one of these sentinels
// (or a context error), so callers dispatch with errors.Is instead of
// matching message strings:
//
//	if errors.Is(err, errdefs.ErrInfeasible) { ... no plan fits memory ... }
package errdefs

import "errors"

var (
	// ErrInfeasible reports that no memory-feasible pipeline plan exists for
	// the requested model, cluster, and run configuration.
	ErrInfeasible = errors.New("infeasible configuration")

	// ErrOOM reports that a concrete plan exceeds device memory when
	// evaluated (the paper's Table III/IV "OOM" markers).
	ErrOOM = errors.New("out of device memory")

	// ErrBadConfig reports a structurally invalid input: a non-positive
	// micro-batch, a global batch the micro-batch does not divide, mismatched
	// stage-time vectors, and so on. It is always detected up front, before
	// any search work starts.
	ErrBadConfig = errors.New("bad configuration")

	// ErrDeadlock reports a schedule whose stages wait on each other forever:
	// the discrete-event executor made a full pass over every device without
	// issuing a single operation while work remained.
	ErrDeadlock = errors.New("schedule deadlock")

	// ErrDeviceLost reports the permanent loss of a device (a crash fault or
	// an unrecoverable hardware failure). Recovery requires checkpoint,
	// re-partitioning over the survivors, and resume.
	ErrDeviceLost = errors.New("device lost")

	// ErrLinkDown reports a permanently failed interconnect link: a message
	// needed the link and no recovery window exists. The self-healing driver
	// treats the unreachable downstream device as lost.
	ErrLinkDown = errors.New("link down")

	// ErrTransient reports a transient communication failure (a dropped
	// message). The operation is safe to retry; the self-healing driver does
	// so with capped exponential backoff.
	ErrTransient = errors.New("transient communication failure")

	// ErrInternal reports a violated internal invariant: a replayed trace
	// that leaks activation memory, an out-of-order pipeline message, a
	// stage that finished without producing its loss. It always indicates a
	// bug in this repository (or a hand-edited artifact), never bad user
	// input, so callers should surface it rather than retry or re-plan.
	ErrInternal = errors.New("internal invariant violated")
)
