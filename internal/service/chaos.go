package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"autopipe/client"
	"autopipe/internal/errdefs"
	"autopipe/internal/obs"
)

// This file is the service-layer sibling of the internal/fault DSL: a
// seedable chaos plan injecting HTTP-level failures (latency, 5xx errors,
// connection resets, truncated responses) in front of the daemon, so the
// client's resilience machinery — retries, backoff, Retry-After, circuit
// breaker — is exercised against the exact failure modes a flaky network
// produces, deterministically. A plan plus its seed fully determines every
// injection decision: probabilistic rules are resolved by a splitmix64 hash
// of (seed, rule index, request index), never a shared random stream, so a
// chaotic run replays byte-for-byte.

// ChaosKind names a failure class of the chaos DSL.
type ChaosKind string

const (
	// ChaosLatency sleeps LatencyMs before serving the request normally — a
	// congested or GC-pausing daemon.
	ChaosLatency ChaosKind = "latency"
	// ChaosError short-circuits with an injected error response (Status,
	// default 503) in the wire-error envelope, Retry-After: 1 — an
	// overloaded or mid-deploy daemon.
	ChaosError ChaosKind = "error"
	// ChaosReset severs the TCP connection without a response — a crashed
	// process or dropped NAT entry.
	ChaosReset ChaosKind = "reset"
	// ChaosTruncate serves the real response's headers and the first half of
	// its body, then aborts — a torn write from a dying daemon.
	ChaosTruncate ChaosKind = "truncate"
)

// ChaosRule is one injection rule. Requests are numbered 0,1,2,… in arrival
// order at the middleware; a rule fires on request n when its Method/Path
// filters match, n falls in the [First, First+Count) window (Count 0 keeps
// the window open-ended), and — with Prob set — the seeded coin toss for
// (rule, n) lands under Prob.
type ChaosRule struct {
	Kind ChaosKind `json:"kind"`
	// Method, when non-empty, restricts the rule to one HTTP method.
	Method string `json:"method,omitempty"`
	// Path, when non-empty, restricts the rule to URL paths with this prefix.
	Path string `json:"path,omitempty"`
	// First is the first request index (0-based) the rule may fire on.
	First int `json:"first,omitempty"`
	// Count bounds how many request indices the window spans; 0 = unbounded.
	Count int `json:"count,omitempty"`
	// Prob, if positive, fires probabilistically inside the window, resolved
	// deterministically from the plan seed, the rule index, and the request
	// index. 0 fires on every request in the window.
	Prob float64 `json:"prob,omitempty"`
	// LatencyMs is the injected delay for latency rules.
	LatencyMs int `json:"latency_ms,omitempty"`
	// Status is the injected HTTP status for error rules; 0 means 503.
	Status int `json:"status,omitempty"`
}

// validate reports the first structural problem with the rule.
func (c *ChaosRule) validate(i int) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: chaos rule %d (%s): %s", errdefs.ErrBadConfig, i, c.Kind, fmt.Sprintf(format, args...))
	}
	if c.First < 0 {
		return bad("negative first %d", c.First)
	}
	if c.Count < 0 {
		return bad("negative count %d", c.Count)
	}
	if c.Prob < 0 || c.Prob > 1 {
		return bad("probability %g out of [0,1]", c.Prob)
	}
	switch c.Kind {
	case ChaosLatency:
		if c.LatencyMs <= 0 {
			return bad("latency_ms %d must be positive", c.LatencyMs)
		}
		if c.Status != 0 {
			return bad("status belongs to error rules")
		}
	case ChaosError:
		if c.Status != 0 && (c.Status < 400 || c.Status > 599) {
			return bad("status %d must be a 4xx/5xx", c.Status)
		}
		if c.LatencyMs != 0 {
			return bad("latency_ms belongs to latency rules")
		}
	case ChaosReset, ChaosTruncate:
		if c.LatencyMs != 0 {
			return bad("latency_ms belongs to latency rules")
		}
		if c.Status != 0 {
			return bad("status belongs to error rules")
		}
	default:
		return bad("unknown kind")
	}
	return nil
}

// applies reports whether the rule fires on request n. Pure in (seed, rule
// index, n) and the request's method/path — no mutable state, so the same
// plan over the same request sequence injects the same faults.
func (c *ChaosRule) applies(r *http.Request, seed, rule, n uint64) bool {
	if c.Method != "" && c.Method != r.Method {
		return false
	}
	if c.Path != "" && !strings.HasPrefix(r.URL.Path, c.Path) {
		return false
	}
	if n < uint64(c.First) {
		return false
	}
	if c.Count > 0 && n >= uint64(c.First)+uint64(c.Count) {
		return false
	}
	if c.Prob > 0 && chaosUnit(seed, rule, n) >= c.Prob {
		return false
	}
	return true
}

// ChaosPlan is a complete, seedable chaos plan. The JSON form uses the
// top-level key "chaos" (not "faults") so plan files classify distinctly
// from internal/fault plans in tooling.
type ChaosPlan struct {
	// Name labels the plan in logs and reports.
	Name string `json:"name,omitempty"`
	// Seed resolves every probabilistic decision; two middlewares built from
	// the same plan make identical decisions over the same request sequence.
	Seed uint64 `json:"seed,omitempty"`
	// Chaos is the rule list; all matching rules are consulted in order and
	// the first firing rule wins (a latency rule delays, then matching
	// continues — latency composes with a downstream error/reset/truncate).
	Chaos []ChaosRule `json:"chaos"`
}

// Validate reports the first structural problem with the plan. Errors wrap
// errdefs.ErrBadConfig.
func (p *ChaosPlan) Validate() error {
	for i := range p.Chaos {
		if err := p.Chaos[i].validate(i); err != nil {
			return err
		}
	}
	return nil
}

// ParseChaos decodes and validates a JSON-encoded chaos plan. Unknown fields
// are rejected so a typoed plan fails loudly instead of silently injecting
// nothing. Errors wrap errdefs.ErrBadConfig.
func ParseChaos(data []byte) (*ChaosPlan, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p ChaosPlan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("%w: service: parse chaos plan: %v", errdefs.ErrBadConfig, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: service: trailing data after chaos plan document", errdefs.ErrBadConfig)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// LoadChaos reads and parses a chaos plan from a JSON file.
func LoadChaos(path string) (*ChaosPlan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	p, err := ParseChaos(data)
	if err != nil {
		return nil, fmt.Errorf("service: %s: %w", path, err)
	}
	return p, nil
}

// Chaos wraps next with the plan's injections. A nil or empty plan returns
// next untouched. Injections are counted on service.chaos.injected and
// service.chaos.<kind> so a chaotic loadgen run can report what it endured.
func Chaos(next http.Handler, plan *ChaosPlan, reg *obs.Registry) http.Handler {
	if plan == nil || len(plan.Chaos) == 0 {
		return next
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	var seq atomic.Uint64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := seq.Add(1) - 1
		for i := range plan.Chaos {
			rule := &plan.Chaos[i]
			if !rule.applies(r, plan.Seed, uint64(i), n) {
				continue
			}
			reg.Counter("service.chaos.injected").Inc()
			reg.Counter("service.chaos." + string(rule.Kind)).Inc()
			switch rule.Kind {
			case ChaosLatency:
				time.Sleep(time.Duration(rule.LatencyMs) * time.Millisecond)
				continue // latency composes with later rules and the real handler
			case ChaosError:
				status := rule.Status
				if status == 0 {
					status = http.StatusServiceUnavailable
				}
				w.Header().Set("Retry-After", "1")
				writeJSON(w, status, struct {
					Error *client.Error `json:"error"`
				}{&client.Error{Code: chaosCode(status), Message: "chaos: injected error"}})
				return
			case ChaosReset:
				chaosReset(w)
				return
			case ChaosTruncate:
				chaosTruncate(next, w, r)
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

// chaosCode picks the wire-error code matching an injected status, so the
// client's typed-error machinery classifies chaos exactly like real failures.
func chaosCode(status int) string {
	switch status {
	case http.StatusTooManyRequests:
		return client.CodeRateLimited
	case http.StatusServiceUnavailable:
		return client.CodeUnavailable
	default:
		return client.CodeInternal
	}
}

// chaosReset severs the connection without an HTTP response: hijack the TCP
// conn and close it. Writers that cannot hijack (HTTP/2, recorders) abort
// the handler instead — the client still sees a transport error.
func chaosReset(w http.ResponseWriter) {
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			_ = conn.Close()
			return
		}
	}
	panic(http.ErrAbortHandler)
}

// chaosTruncate runs the real handler against a buffer, replays its headers
// and the first half of its body, then aborts the connection mid-stream —
// the client reads a torn document and must treat it as a failed attempt.
func chaosTruncate(next http.Handler, w http.ResponseWriter, r *http.Request) {
	rec := &bufferedResponse{header: make(http.Header), status: http.StatusOK}
	next.ServeHTTP(rec, r)
	for k, v := range rec.header {
		w.Header()[k] = v
	}
	// The advertised length must not match what we send, or the truncation
	// would read as a complete short document.
	w.Header().Del("Content-Length")
	w.WriteHeader(rec.status)
	body := rec.buf.Bytes()
	_, _ = w.Write(body[:len(body)/2])
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	panic(http.ErrAbortHandler)
}

// bufferedResponse is the minimal ResponseWriter used to capture the real
// response before truncating it.
type bufferedResponse struct {
	header http.Header
	status int
	buf    bytes.Buffer
}

func (b *bufferedResponse) Header() http.Header         { return b.header }
func (b *bufferedResponse) Write(p []byte) (int, error) { return b.buf.Write(p) }
func (b *bufferedResponse) WriteHeader(status int)      { b.status = status }

// chaosMix and chaosUnit mirror the internal/fault hash: a splitmix64-style
// finalizer over (seed, rule, n) into [0,1), the deterministic substitute
// for a shared random stream, immune to request-interleaving effects.
func chaosMix(a, b uint64) uint64 {
	x := a*0x9E3779B97F4A7C15 + b
	x ^= x >> 29
	return x
}

func chaosUnit(seed, rule, n uint64) float64 {
	x := seed
	x = chaosMix(x, rule+1)
	x = chaosMix(x, n+1)
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
