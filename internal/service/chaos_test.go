package service

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"autopipe/internal/errdefs"
	"autopipe/internal/obs"
)

// okHandler is a plain inner handler the chaos middleware wraps in tests.
func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"ok": true, "padding": "0123456789012345678901234567890123456789"}`)
	})
}

// TestChaosParseValidation pins the plan DSL's structural validation.
func TestChaosParseValidation(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		ok   bool
	}{
		{"empty plan", `{"chaos": []}`, true},
		{"latency", `{"chaos": [{"kind": "latency", "latency_ms": 5}]}`, true},
		{"error windowed", `{"chaos": [{"kind": "error", "status": 503, "first": 2, "count": 3}]}`, true},
		{"reset prob", `{"seed": 7, "chaos": [{"kind": "reset", "prob": 0.5}]}`, true},
		{"truncate", `{"chaos": [{"kind": "truncate", "path": "/v1/jobs"}]}`, true},
		{"unknown kind", `{"chaos": [{"kind": "teleport"}]}`, false},
		{"unknown field", `{"chaos": [{"kind": "latency", "latency_ms": 5, "bogus": 1}]}`, false},
		{"latency without ms", `{"chaos": [{"kind": "latency"}]}`, false},
		{"error with 2xx", `{"chaos": [{"kind": "error", "status": 200}]}`, false},
		{"reset with status", `{"chaos": [{"kind": "reset", "status": 503}]}`, false},
		{"prob out of range", `{"chaos": [{"kind": "reset", "prob": 1.5}]}`, false},
		{"negative first", `{"chaos": [{"kind": "reset", "first": -1}]}`, false},
		{"trailing garbage", `{"chaos": []} tail`, false},
		{"not json", `{chaos`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseChaos([]byte(tc.doc))
			if tc.ok && err != nil {
				t.Errorf("ParseChaos = %v, want ok", err)
			}
			if !tc.ok && !errors.Is(err, errdefs.ErrBadConfig) {
				t.Errorf("ParseChaos = %v, want ErrBadConfig", err)
			}
		})
	}
}

// TestChaosDeterministic is the acceptance check for seeded chaos: the same
// plan and seed produce the same injection decisions over the same request
// sequence — and a different seed produces a different (but equally
// repeatable) sequence.
func TestChaosDeterministic(t *testing.T) {
	run := func(seed uint64, n int) []bool {
		plan := &ChaosPlan{Seed: seed, Chaos: []ChaosRule{{Kind: ChaosError, Prob: 0.5}}}
		h := Chaos(okHandler(), plan, obs.NewRegistry())
		out := make([]bool, n)
		for i := range out {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs", nil))
			out[i] = rec.Code == http.StatusServiceUnavailable
		}
		return out
	}
	const n = 64
	a, b := run(42, n), run(42, n)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d: %v vs %v", i, a, b)
		}
	}
	var injected int
	for _, hit := range a {
		if hit {
			injected++
		}
	}
	if injected == 0 || injected == n {
		t.Errorf("prob 0.5 injected %d/%d — the hash is not mixing", injected, n)
	}
	c := run(1337, n)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Errorf("different seeds produced identical decisions")
	}
}

// TestChaosWindowAndFilters proves the First/Count window and method/path
// filters gate injection exactly.
func TestChaosWindowAndFilters(t *testing.T) {
	plan := &ChaosPlan{Chaos: []ChaosRule{{
		Kind: ChaosError, Method: http.MethodPost, Path: "/v1/jobs", First: 1, Count: 2,
	}}}
	reg := obs.NewRegistry()
	h := Chaos(okHandler(), plan, reg)
	do := func(method, path string) int {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(method, path, nil))
		return rec.Code
	}
	// Request 0: before the window.
	if code := do(http.MethodPost, "/v1/jobs"); code != http.StatusOK {
		t.Errorf("request 0: code %d, want 200 (window starts at 1)", code)
	}
	// Request 1: in window but wrong method, then wrong path — both pass.
	if code := do(http.MethodGet, "/v1/jobs"); code != http.StatusOK {
		t.Errorf("GET in window: code %d, want 200", code)
	}
	if code := do(http.MethodPost, "/healthz"); code != http.StatusOK {
		t.Errorf("other path in window: code %d, want 200", code)
	}
	// Requests 3 and 4 are past the [1,3) window... request indices count
	// every request through the middleware, so indices 1 and 2 were consumed
	// by the filtered requests above. Only a matching request inside the
	// window is injected — none was, and the window is now closed.
	if code := do(http.MethodPost, "/v1/jobs"); code != http.StatusOK {
		t.Errorf("request past window: code %d, want 200", code)
	}
	if v := reg.Counter("service.chaos.injected").Value(); v != 0 {
		t.Errorf("injected %v faults through closed filters", v)
	}

	// A fresh middleware with matching traffic: exactly requests 1 and 2 hit.
	reg2 := obs.NewRegistry()
	h2 := Chaos(okHandler(), plan, reg2)
	codes := make([]int, 4)
	for i := range codes {
		rec := httptest.NewRecorder()
		h2.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs", nil))
		codes[i] = rec.Code
	}
	want := []int{http.StatusOK, http.StatusServiceUnavailable, http.StatusServiceUnavailable, http.StatusOK}
	for i := range codes {
		if codes[i] != want[i] {
			t.Errorf("request %d: code %d, want %d", i, codes[i], want[i])
		}
	}
	if v := reg2.Counter("service.chaos.injected").Value(); v != 2 {
		t.Errorf("service.chaos.injected = %v, want 2", v)
	}
	if v := reg2.Counter("service.chaos.error").Value(); v != 2 {
		t.Errorf("service.chaos.error = %v, want 2", v)
	}
}

// TestChaosErrorEnvelope proves injected errors speak the wire contract:
// typed envelope, mapped code, Retry-After present.
func TestChaosErrorEnvelope(t *testing.T) {
	plan := &ChaosPlan{Chaos: []ChaosRule{{Kind: ChaosError, Count: 1}}}
	h := Chaos(okHandler(), plan, obs.NewRegistry())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("code = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", rec.Header().Get("Retry-After"))
	}
	we := decodeWireError(t, rec.Body.Bytes())
	if we.Code != "unavailable" {
		t.Errorf("code = %q, want unavailable", we.Code)
	}
}

// TestChaosLatencyComposes proves a latency rule delays but still serves,
// and composes with the request passing through to the real handler.
func TestChaosLatencyComposes(t *testing.T) {
	plan := &ChaosPlan{Chaos: []ChaosRule{{Kind: ChaosLatency, LatencyMs: 30, Count: 1}}}
	reg := obs.NewRegistry()
	h := Chaos(okHandler(), plan, reg)
	start := time.Now()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/jobs", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("code = %d, want 200 (latency must not eat the response)", rec.Code)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("request took %v, want >= ~30ms of injected latency", elapsed)
	}
	if v := reg.Counter("service.chaos.latency").Value(); v != 1 {
		t.Errorf("service.chaos.latency = %v, want 1", v)
	}
}

// TestChaosResetAndTruncateOverWire proves the two connection-level faults
// against a real TCP listener: reset yields a transport error with no
// response, truncate yields a torn body the client cannot fully read.
func TestChaosResetAndTruncateOverWire(t *testing.T) {
	t.Run("reset", func(t *testing.T) {
		plan := &ChaosPlan{Chaos: []ChaosRule{{Kind: ChaosReset, Count: 1}}}
		hs := httptest.NewServer(Chaos(okHandler(), plan, obs.NewRegistry()))
		defer hs.Close()
		if _, err := http.Get(hs.URL + "/v1/jobs"); err == nil {
			t.Fatalf("reset request succeeded, want a transport error")
		}
		// The next request (index 1, past the window) is served normally.
		resp, err := http.Get(hs.URL + "/v1/jobs")
		if err != nil {
			t.Fatalf("post-reset request: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("post-reset code = %d, want 200", resp.StatusCode)
		}
	})
	t.Run("truncate", func(t *testing.T) {
		plan := &ChaosPlan{Chaos: []ChaosRule{{Kind: ChaosTruncate, Count: 1}}}
		hs := httptest.NewServer(Chaos(okHandler(), plan, obs.NewRegistry()))
		defer hs.Close()
		resp, err := http.Get(hs.URL + "/v1/jobs")
		if err != nil {
			t.Fatalf("truncate request: %v (headers should arrive)", err)
		}
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil {
			t.Fatalf("read torn body succeeded with %d bytes — the abort never happened", len(data))
		}
		if len(data) == 0 {
			t.Errorf("no partial body arrived before the abort")
		}
		if strings.Contains(string(data), `"padding"`) && strings.HasSuffix(strings.TrimSpace(string(data)), "}") {
			t.Errorf("body looks complete: %q", data)
		}
		// The wrapped handler still works for the next request.
		resp2, err := http.Get(hs.URL + "/v1/jobs")
		if err != nil {
			t.Fatalf("post-truncate request: %v", err)
		}
		defer resp2.Body.Close()
		if resp2.StatusCode != http.StatusOK {
			t.Errorf("post-truncate code = %d, want 200", resp2.StatusCode)
		}
	})
}

// TestChaosNilPlanPassthrough proves nil/empty plans cost nothing.
func TestChaosNilPlanPassthrough(t *testing.T) {
	inner := okHandler()
	if h := Chaos(inner, nil, nil); fmt.Sprintf("%p", h) != fmt.Sprintf("%p", inner) {
		t.Errorf("nil plan did not return the inner handler unchanged")
	}
	if h := Chaos(inner, &ChaosPlan{}, nil); fmt.Sprintf("%p", h) != fmt.Sprintf("%p", inner) {
		t.Errorf("empty plan did not return the inner handler unchanged")
	}
}
