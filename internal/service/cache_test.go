package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPlanCacheFIFO proves the cache evicts oldest-first at capacity.
func TestPlanCacheFIFO(t *testing.T) {
	c := newPlanCache(2)
	c.Put("a", json.RawMessage(`1`))
	c.Put("b", json.RawMessage(`2`))
	c.Put("c", json.RawMessage(`3`))
	if _, ok := c.Get("a"); ok {
		t.Errorf("oldest entry survived eviction")
	}
	for _, k := range []string{"b", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("entry %q evicted early", k)
		}
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	// Overwriting an existing key must not grow the order bookkeeping.
	c.Put("c", json.RawMessage(`4`))
	if v, _ := c.Get("c"); string(v) != "4" {
		t.Errorf("overwrite did not take: %s", v)
	}
	if c.Len() != 2 {
		t.Errorf("Len after overwrite = %d, want 2", c.Len())
	}
}

// TestSingleflightShares proves concurrent same-key calls run fn once and all
// see its result, while distinct keys run independently.
func TestSingleflightShares(t *testing.T) {
	g := newSingleflight()
	var calls atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})

	const n = 5
	var wg sync.WaitGroup
	results := make([]json.RawMessage, n)
	sharedFlags := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, shared := g.Do("k", func() (json.RawMessage, error) {
				calls.Add(1)
				entered <- struct{}{}
				<-release
				return json.RawMessage(`"v"`), nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[i], sharedFlags[i] = v, shared
		}(i)
	}
	<-entered
	// The leader is inside fn; give the other callers time to reach Do and
	// block on the in-flight call before letting fn finish.
	time.Sleep(100 * time.Millisecond)
	close(release)
	wg.Wait()

	if calls.Load() != 1 {
		t.Errorf("fn ran %d times, want 1", calls.Load())
	}
	shared := 0
	for i := range results {
		if string(results[i]) != `"v"` {
			t.Errorf("caller %d got %s", i, results[i])
		}
		if sharedFlags[i] {
			shared++
		}
	}
	if shared != n-1 {
		t.Errorf("%d callers shared, want %d", shared, n-1)
	}

	// After completion the key leaves the table: a new call runs fn again.
	_, _, sharedAgain := g.Do("k", func() (json.RawMessage, error) {
		calls.Add(1)
		return json.RawMessage(`"w"`), nil
	})
	if sharedAgain || calls.Load() != 2 {
		t.Errorf("finished key stayed in the table (shared=%v, calls=%d)", sharedAgain, calls.Load())
	}
}

// TestSingleflightSharesErrors proves a failed search fails every coalesced
// caller with the same error.
func TestSingleflightSharesErrors(t *testing.T) {
	g := newSingleflight()
	boom := errors.New("boom")
	entered := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err, _ := g.Do("k", func() (json.RawMessage, error) {
				entered <- struct{}{}
				<-release
				return nil, fmt.Errorf("search: %w", boom)
			})
			errs[i] = err
		}(i)
	}
	<-entered
	time.Sleep(100 * time.Millisecond)
	close(release)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Errorf("caller %d got %v, want the shared failure", i, err)
		}
	}
}
