// Package service implements autopiped, the planner-as-a-service daemon: a
// job queue with a bounded worker pool over the existing parallel planning
// engine, a content-addressed plan cache with singleflight dedup (a million
// near-identical plan requests cost one search), a JSON-on-disk job store
// that survives restarts, and an HTTP/JSON API whose typed wire errors
// round-trip the errdefs sentinels (client-side errors.Is sees exactly what
// in-process callers see).
//
// Endpoints:
//
//	POST /v1/jobs            submit a plan/simulate/slice job (?wait=1 blocks)
//	GET  /v1/jobs            list jobs, oldest first
//	GET  /v1/jobs/{id}       job status/result (?wait=1 blocks until terminal)
//	GET  /metrics            Prometheus text exposition of the obs registry
//	GET  /healthz            liveness probe
//	GET  /debug/pprof/...    net/http/pprof handlers
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"autopipe"
	"autopipe/client"
	"autopipe/internal/errdefs"
	"autopipe/internal/obs"
)

// Config parameterizes a Server. The zero value serves with one queue
// worker per CPU, a 256-deep queue, a 1024-entry cache, and no persistence.
type Config struct {
	// Parallelism is the planner worker-pool size used inside each plan
	// search (the engine knob); <= 0 means one per CPU. It is not part of
	// the cache key — plans are identical at every setting.
	Parallelism int
	// Workers is the number of queue workers executing jobs concurrently;
	// <= 0 means 4. Distinct requests run in parallel; identical requests
	// coalesce via singleflight regardless of this setting.
	Workers int
	// QueueDepth bounds the pending-job queue; <= 0 means 256. A full
	// queue rejects submissions with 503 unavailable (the client retries).
	QueueDepth int
	// CacheEntries bounds the content-addressed result cache; <= 0 means
	// 1024. Eviction is FIFO.
	CacheEntries int
	// StoreDir, when non-empty, persists every job (request + state) as
	// JSON under this directory. On restart, finished jobs are served from
	// the store and unfinished ones are re-enqueued.
	StoreDir string
	// JobTimeout bounds each job's engine run (0 = no limit).
	JobTimeout time.Duration
	// RateLimit, when positive, caps admitted submissions at this many
	// requests/sec (token bucket); excess requests are rejected with 429
	// rate_limited plus a Retry-After naming when the next token accrues.
	RateLimit float64
	// RateBurst is the rate limiter's burst capacity; <= 0 means max(1,
	// RateLimit). Ignored when RateLimit is 0.
	RateBurst int
	// QueueWait bounds how long a submission may wait for a queue slot when
	// the queue is full before being shed with 503 + Retry-After. 0 sheds
	// immediately — overload never translates into unbounded submit latency.
	QueueWait time.Duration
	// Obs receives service and planner telemetry; nil means a fresh
	// registry (exposed at /metrics either way).
	Obs *obs.Registry
}

// job is the server-side state of one submitted job: the wire document, the
// original request, and a done channel closed when the job turns terminal.
type job struct {
	mu   sync.Mutex
	wire client.Job
	req  client.SubmitRequest
	done chan struct{}
	// deadline is the submitting caller's give-up time, derived from the
	// client's deadline header; zero means no caller deadline. In-memory
	// only: a job replayed after a restart runs without one (its original
	// caller's budget is unknowable by then).
	deadline time.Time
}

// snapshot returns a copy of the wire document safe to marshal outside the
// lock. Result and Error are immutable once set, so shallow copy suffices.
func (j *job) snapshot() client.Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.wire
}

// Server is the autopiped daemon core. Create with New, launch the workers
// with Start, mount Handler on an http.Server, and Close to drain.
type Server struct {
	cfg     Config
	reg     *obs.Registry
	store   *diskStore
	cache   *planCache
	sf      *singleflight
	limiter *tokenBucket
	mux     *http.ServeMux

	// engine executes one validated request. It is a field so tests can
	// gate or count executions; production servers always use runEngine.
	engine func(ctx context.Context, req client.SubmitRequest) (json.RawMessage, error)

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	queue  chan *job

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string
	nextID int
	closed bool
}

// New builds a Server: it opens (and replays) the job store but does not
// start workers — call Start.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	store, err := openStore(cfg.StoreDir)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		reg:     reg,
		store:   store,
		cache:   newPlanCache(cfg.CacheEntries),
		sf:      newSingleflight(),
		limiter: newTokenBucket(cfg.RateLimit, cfg.RateBurst),
		ctx:     ctx,
		cancel:  cancel,
		queue:   make(chan *job, cfg.QueueDepth),
		jobs:    make(map[string]*job),
		nextID:  1,
	}
	s.engine = s.runEngine
	if err := s.replay(); err != nil {
		cancel()
		return nil, err
	}
	s.buildMux()
	return s, nil
}

// replay loads the persisted jobs: terminal ones become servable history
// (their results re-seed the cache), unfinished ones are re-enqueued.
// Damaged store files were quarantined by Load, not fatal: the count is
// surfaced on service.store.quarantined so a monitoring rule can notice a
// crash that tore the store.
func (s *Server) replay() error {
	stored, quarantined, err := s.store.Load()
	if err != nil {
		return err
	}
	if n := len(quarantined); n > 0 {
		s.reg.Counter("service.store.quarantined").Add(float64(n))
	}
	for _, sj := range stored {
		j := &job{wire: *sj.Job, req: sj.Request, done: make(chan struct{})}
		if n, ok := parseID(sj.Job.ID); ok && n >= s.nextID {
			s.nextID = n + 1
		}
		s.jobs[j.wire.ID] = j
		s.order = append(s.order, j.wire.ID)
		if j.wire.Terminal() {
			close(j.done)
			if j.wire.State == client.StateDone && j.wire.Key != "" && len(j.wire.Result) > 0 {
				s.cache.Put(j.wire.Key, j.wire.Result)
			}
			continue
		}
		// Interrupted mid-run or mid-queue: back to pending, run again.
		j.wire.State = client.StatePending
		if err := s.store.Put(&j.wire, j.req); err != nil {
			return err
		}
		select {
		case s.queue <- j:
			s.reg.Counter("service.jobs.resumed").Inc()
		default:
			return fmt.Errorf("%w: service: store replays more unfinished jobs than the queue holds (%d)",
				errdefs.ErrBadConfig, s.cfg.QueueDepth)
		}
	}
	s.reg.Gauge("service.cache.entries").Set(float64(s.cache.Len()))
	return nil
}

// Start launches the worker pool. Call once.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				select {
				case <-s.ctx.Done():
					return
				case j := <-s.queue:
					s.runJob(j)
				}
			}
		}()
	}
}

// Close stops accepting jobs, cancels in-flight engine runs, and waits for
// the workers. Unfinished persisted jobs revert to pending on disk, so a
// restarted daemon picks them back up.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
}

// Registry exposes the server's obs registry (for loadgen and tests).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.reg.Counter("service.http.requests").Inc()
		s.mux.ServeHTTP(w, r)
	})
}

func (s *Server) buildMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.Handle("GET /metrics", obs.Handler(s.reg))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	s.mux = mux
}

// handleSubmit accepts a job. Admission control runs first: the token
// bucket rejects excess load with 429 rate_limited, and a queue that stays
// full past QueueWait sheds with 503 — both carry a Retry-After computed
// from when capacity is expected back, so well-behaved clients spread out
// instead of hammering an overloaded daemon. Structural problems (malformed
// JSON, unknown kind, missing payload, a garbled deadline header) reject
// with 400 before a job exists. With ?wait=1 the response blocks until the
// job is terminal and its HTTP status reflects the typed outcome (200 on
// success, 400/422/… on failure); without it, 202 + the pending document.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if ok, wait := s.limiter.take(); !ok {
		s.reg.Counter("service.admission.ratelimited").Inc()
		s.writeErrorRetry(w, ceilSeconds(wait),
			fmt.Errorf("service: submission rate limit exceeded: %w", client.ErrRateLimited))
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	var req client.SubmitRequest
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, fmt.Errorf("%w: service: malformed submit request: %v", errdefs.ErrBadConfig, err))
		return
	}
	if err := req.Validate(); err != nil {
		s.writeError(w, err)
		return
	}
	deadline, err := parseDeadline(r.Header.Get(client.DeadlineHeader))
	if err != nil {
		s.writeError(w, err)
		return
	}
	key, err := Key(req)
	if err != nil {
		s.writeError(w, err)
		return
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.writeErrorRetry(w, 1, fmt.Errorf("service: draining for shutdown: %w", client.ErrUnavailable))
		return
	}
	id := fmt.Sprintf("job-%08d", s.nextID)
	s.nextID++
	j := &job{
		wire:     client.Job{ID: id, Kind: req.Kind, State: client.StatePending, Key: key},
		req:      req,
		done:     make(chan struct{}),
		deadline: deadline,
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()
	s.reg.Counter("service.jobs.submitted").Inc()

	// Cache fast path: an identical finished request never touches the
	// queue — the daemon's whole reason to exist.
	if val, ok := s.cache.Get(key); ok {
		s.reg.Counter("service.cache.hits").Inc()
		s.finish(j, val, true, false)
		s.respondJob(w, r, j)
		return
	}

	if err := s.store.Put(&j.wire, req); err != nil {
		s.failJob(j, fmt.Errorf("%w: service: persist: %v", errdefs.ErrInternal, err))
		s.respondJob(w, r, j)
		return
	}
	if !s.enqueue(r.Context(), j) {
		// Shed: the job must vanish completely — from the map, the listing
		// order, and the disk store — or a restart would resurrect work the
		// caller was told to retry elsewhere.
		s.mu.Lock()
		delete(s.jobs, id)
		if n := len(s.order); n > 0 && s.order[n-1] == id {
			s.order = s.order[:n-1]
		}
		s.mu.Unlock()
		_ = s.store.Delete(id)
		s.reg.Counter("service.admission.shed").Inc()
		s.writeErrorRetry(w, retryAfterSeconds(len(s.queue), s.cfg.Workers),
			fmt.Errorf("service: job queue full (%d deep): %w", s.cfg.QueueDepth, client.ErrUnavailable))
		return
	}
	s.reg.Counter("service.admission.admitted").Inc()
	s.reg.Gauge("service.queue.depth").Set(float64(len(s.queue)))
	s.respondJob(w, r, j)
}

// enqueue offers j to the worker queue, waiting up to QueueWait for a slot
// (or the submitter's own disconnect, whichever first). Reports whether the
// job was admitted.
func (s *Server) enqueue(ctx context.Context, j *job) bool {
	select {
	case s.queue <- j:
		return true
	default:
	}
	if s.cfg.QueueWait <= 0 {
		return false
	}
	timer := time.NewTimer(s.cfg.QueueWait)
	defer timer.Stop()
	select {
	case s.queue <- j:
		return true
	case <-timer.C:
		return false
	case <-ctx.Done():
		return false
	}
}

// respondJob writes the job document. With ?wait=1 it first blocks for a
// terminal state; a failed job's HTTP status comes from its typed error so
// the sentinel → status contract holds end to end.
func (s *Server) respondJob(w http.ResponseWriter, r *http.Request, j *job) {
	if r.URL.Query().Get("wait") == "" {
		snap := j.snapshot()
		status := http.StatusAccepted
		if snap.Terminal() {
			status = http.StatusOK
		}
		writeJSON(w, status, snap)
		return
	}
	select {
	case <-r.Context().Done():
		s.writeError(w, fmt.Errorf("service: wait aborted: %w", r.Context().Err()))
		return
	case <-j.done:
	}
	snap := j.snapshot()
	if snap.State == client.StateFailed && snap.Error != nil {
		_, status := client.Encode(snap.Error)
		writeJSON(w, status, struct {
			Error *client.Error `json:"error"`
			Job   client.Job    `json:"job"`
		}{snap.Error, snap})
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		s.writeError(w, fmt.Errorf("service: job %q: %w", id, client.ErrNotFound))
		return
	}
	if r.URL.Query().Get("wait") != "" {
		s.respondJob(w, r, j)
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ids := make([]string, len(s.order))
	copy(ids, s.order)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		if j, ok := s.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	out := make([]client.Job, len(jobs))
	for i, j := range jobs {
		out[i] = j.snapshot()
	}
	writeJSON(w, http.StatusOK, out)
}

// runJob executes one queued job on a worker: re-check the cache (an
// identical job may have finished while this one queued), then coalesce
// identical in-flight searches through singleflight.
func (s *Server) runJob(j *job) {
	s.reg.Gauge("service.queue.depth").Set(float64(len(s.queue)))
	j.mu.Lock()
	key := j.wire.Key
	deadline := j.deadline
	j.wire.State = client.StateRunning
	wire := j.wire
	j.mu.Unlock()
	if err := s.store.Put(&wire, j.req); err != nil {
		s.failJob(j, fmt.Errorf("%w: service: persist: %v", errdefs.ErrInternal, err))
		return
	}

	if val, ok := s.cache.Get(key); ok {
		s.reg.Counter("service.cache.hits").Inc()
		s.finish(j, val, true, false)
		return
	}
	s.reg.Counter("service.cache.misses").Inc()

	// A caller deadline that lapsed while the job queued means nobody is
	// waiting for this search: fail it typed (504 on the wire) without
	// burning engine time. A deadline still in the future bounds the engine
	// context, so an expensive search stops as soon as its caller gives up.
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		s.reg.Counter("service.deadline.expired").Inc()
		s.failJob(j, fmt.Errorf("service: caller deadline lapsed while the job queued: %w", context.DeadlineExceeded))
		return
	}
	ctx := s.ctx
	var cancel context.CancelFunc
	if s.cfg.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer cancel()
	}
	if !deadline.IsZero() {
		var dcancel context.CancelFunc
		ctx, dcancel = context.WithDeadline(ctx, deadline)
		defer dcancel()
	}
	val, err, shared := s.sf.Do(key, func() (json.RawMessage, error) {
		// Double-check the cache now that this call owns the key. A job can
		// miss the outer check, lose the race to an identical in-flight
		// search, and start a fresh Do call after it completes — but that
		// completion stored its result (below) before releasing the key, so
		// this check is guaranteed to see it. The engine runs at most once
		// per key per cache lifetime, no matter the interleaving.
		if val, ok := s.cache.Get(key); ok {
			s.reg.Counter("service.cache.hits").Inc()
			return val, nil
		}
		s.reg.Counter("service.engine.searches").Inc()
		span := s.reg.StartSpan("service.engine")
		defer span.End()
		val, err := s.engine(ctx, j.req)
		if err == nil {
			s.cache.Put(key, val)
			s.reg.Gauge("service.cache.entries").Set(float64(s.cache.Len()))
		}
		return val, err
	})
	if shared {
		s.reg.Counter("service.singleflight.shared").Inc()
	}
	switch {
	case err == nil:
		s.finish(j, val, false, shared)
	case s.ctx.Err() != nil:
		// Shutdown, not failure: revert to pending on disk so a restarted
		// daemon re-runs the job. Waiters are released by their own request
		// contexts when the listener closes.
		j.mu.Lock()
		j.wire.State = client.StatePending
		wire := j.wire
		j.mu.Unlock()
		_ = s.store.Put(&wire, j.req)
	default:
		s.failJob(j, err)
	}
}

// finish moves a job to done with the given result document.
func (s *Server) finish(j *job, val json.RawMessage, cacheHit, shared bool) {
	j.mu.Lock()
	j.wire.State = client.StateDone
	j.wire.Result = val
	j.wire.CacheHit = cacheHit
	j.wire.Shared = shared
	wire := j.wire
	j.mu.Unlock()
	_ = s.store.Put(&wire, j.req)
	s.reg.Counter("service.jobs.completed").Inc()
	close(j.done)
}

// failJob moves a job to failed with its typed wire error.
func (s *Server) failJob(j *job, err error) {
	wireErr, _ := client.Encode(err)
	j.mu.Lock()
	j.wire.State = client.StateFailed
	j.wire.Error = wireErr
	wire := j.wire
	j.mu.Unlock()
	_ = s.store.Put(&wire, j.req)
	s.reg.Counter("service.jobs.failed").Inc()
	close(j.done)
}

// runEngine executes one request on the real planning engine.
func (s *Server) runEngine(ctx context.Context, req client.SubmitRequest) (json.RawMessage, error) {
	switch req.Kind {
	case client.KindPlan:
		p := autopipe.NewPlanner(
			autopipe.WithParallelism(s.cfg.Parallelism),
			autopipe.WithSearchBudget(req.Plan.Budget),
			autopipe.WithObserver(s.reg),
		)
		spec, _, err := p.Plan(ctx, req.Plan.Model, req.Plan.Run, req.Plan.Cluster)
		if err != nil {
			return nil, err
		}
		return marshalResult(client.PlanResult{Spec: spec})
	case client.KindSimulate:
		sr, err := autopipe.SimulateProfile(*req.Profile)
		if err != nil {
			return nil, err
		}
		return marshalResult(client.SimulateResult{IterTime: sr.IterTime, Startup: sr.Startup, Master: sr.Master})
	case client.KindSlice:
		sp, err := autopipe.SliceProfile(*req.Profile)
		if err != nil {
			return nil, err
		}
		return marshalResult(client.SliceResult{Plan: sp})
	default:
		return nil, fmt.Errorf("%w: service: unknown kind %q reached the engine", errdefs.ErrInternal, req.Kind)
	}
}

func marshalResult(v any) (json.RawMessage, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("%w: service: encode result: %v", errdefs.ErrInternal, err)
	}
	return data, nil
}

// parseDeadline converts the client's relative-milliseconds deadline header
// into an absolute give-up time. Empty means no caller deadline; anything
// that is not a positive integer is a caller bug worth rejecting loudly.
func parseDeadline(header string) (time.Time, error) {
	if header == "" {
		return time.Time{}, nil
	}
	ms, err := strconv.ParseInt(header, 10, 64)
	if err != nil || ms <= 0 {
		return time.Time{}, fmt.Errorf("%w: service: malformed %s header %q (want positive relative milliseconds)",
			errdefs.ErrBadConfig, client.DeadlineHeader, header)
	}
	return time.Now().Add(time.Duration(ms) * time.Millisecond), nil
}

// writeErrorRetry is writeError plus a Retry-After of delay-seconds — every
// load-shedding rejection names when to come back.
func (s *Server) writeErrorRetry(w http.ResponseWriter, retryAfter int, err error) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	s.writeError(w, err)
}

// writeError renders err in the wire error envelope at its mapped status.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	wireErr, status := client.Encode(err)
	s.reg.Counter("service.http.errors").Inc()
	writeJSON(w, status, struct {
		Error *client.Error `json:"error"`
	}{wireErr})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Write errors mean the client went away; there is nobody to tell.
	_ = enc.Encode(v)
}

// parseID extracts the sequence number from a "job-%08d" ID.
func parseID(id string) (int, bool) {
	num, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(num)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}
