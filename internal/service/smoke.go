package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"autopipe"
	"autopipe/client"
	"autopipe/internal/errdefs"
)

// Smoke runs the end-to-end service check used by `make service-smoke` and
// CI: it boots a real daemon on a loopback port, plans through the Go client,
// proves the second identical request is a cache hit (one engine search
// total), scrapes /metrics, and pokes /debug/pprof. With a store directory it
// additionally restarts the daemon and proves the replayed store re-seeds the
// cache. Any violated expectation returns an error wrapping errdefs.ErrInternal.
func Smoke(ctx context.Context, storeDir string, out io.Writer) error {
	if out == nil {
		out = io.Discard
	}
	fmt.Fprintf(out, "service smoke: store=%q\n", storeOrMemory(storeDir))

	run := func(label string, expectSearches int, wantReplayed bool) error {
		srv, err := New(Config{StoreDir: storeDir})
		if err != nil {
			return err
		}
		srv.Start()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("service: smoke listen: %w", err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go func() { _ = hs.Serve(ln) }()
		defer func() {
			shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = hs.Shutdown(shCtx)
			srv.Close()
		}()
		base := "http://" + ln.Addr().String()

		c, err := client.New(base, client.WithTimeout(2*time.Minute))
		if err != nil {
			return err
		}
		model, cluster := autopipe.GPT2_345M(), autopipe.DefaultCluster()
		runCfg := autopipe.Run{MicroBatch: 8, GlobalBatch: 512, Checkpoint: true}

		spec, job1, err := c.Plan(ctx, model, runCfg, cluster)
		if err != nil {
			return fmt.Errorf("service: smoke %s: first plan: %w", label, err)
		}
		if spec == nil || spec.Depth() <= 0 {
			return fmt.Errorf("%w: service: smoke %s: first plan returned no stages", errdefs.ErrInternal, label)
		}
		if wantReplayed && !job1.CacheHit {
			return fmt.Errorf("%w: service: smoke %s: restarted daemon did not serve the replayed result from cache", errdefs.ErrInternal, label)
		}

		spec2, job2, err := c.Plan(ctx, model, runCfg, cluster)
		if err != nil {
			return fmt.Errorf("service: smoke %s: second plan: %w", label, err)
		}
		if !job2.CacheHit {
			return fmt.Errorf("%w: service: smoke %s: identical resubmit was not a cache hit", errdefs.ErrInternal, label)
		}
		if spec2.Depth() != spec.Depth() || spec2.Predicted != spec.Predicted {
			return fmt.Errorf("%w: service: smoke %s: cached plan differs from computed plan", errdefs.ErrInternal, label)
		}

		// A bad config must come back as the same typed sentinel the
		// in-process API returns.
		_, _, err = c.Plan(ctx, model, autopipe.Run{MicroBatch: 0, GlobalBatch: 512}, cluster)
		if !errors.Is(err, autopipe.ErrBadConfig) {
			return fmt.Errorf("%w: service: smoke %s: invalid run returned %v, want ErrBadConfig", errdefs.ErrInternal, label, err)
		}

		metrics, err := c.Metrics(ctx)
		if err != nil {
			return fmt.Errorf("service: smoke %s: scrape metrics: %w", label, err)
		}
		searches := int(promCounter(metrics, "service_engine_searches_total"))
		if searches != expectSearches {
			return fmt.Errorf("%w: service: smoke %s: %d engine searches, want %d", errdefs.ErrInternal, label, searches, expectSearches)
		}
		if !strings.Contains(metrics, "service_cache_hits_total") {
			return fmt.Errorf("%w: service: smoke %s: /metrics is missing service counters", errdefs.ErrInternal, label)
		}

		resp, err := http.Get(base + "/debug/pprof/cmdline")
		if err != nil {
			return fmt.Errorf("service: smoke %s: pprof: %w", label, err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%w: service: smoke %s: /debug/pprof/cmdline returned %d", errdefs.ErrInternal, label, resp.StatusCode)
		}

		fmt.Fprintf(out, "  %s: plan depth %d, predicted %.3fs, cache hit on resubmit, %d engine search(es)\n",
			label, spec.Depth(), spec.Predicted, searches)
		return nil
	}

	if err := run("cold", 1, false); err != nil {
		return err
	}
	if storeDir != "" {
		// Second boot replays the store: the finished job re-seeds the cache,
		// so this entire run must cost zero engine searches.
		if err := run("restart", 0, true); err != nil {
			return err
		}
	}
	fmt.Fprintln(out, "service smoke: ok")
	return nil
}

func storeOrMemory(dir string) string {
	if dir == "" {
		return "memory"
	}
	return dir
}
