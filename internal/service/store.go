package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"autopipe/client"
	"autopipe/internal/errdefs"
)

// storedJob is the on-disk form of a job: the wire document plus the
// original request, so a daemon restarted mid-queue can re-run work that
// never finished.
type storedJob struct {
	Job     *client.Job          `json:"job"`
	Request client.SubmitRequest `json:"request"`
}

// diskStore persists jobs as one JSON file per job under a directory,
// written atomically (temp file + rename) so a crash mid-write leaves either
// the old document or the new one, never a torn file. A nil *diskStore is a
// valid no-op store — the daemon runs memory-only without -store.
type diskStore struct {
	dir string
}

// openStore creates (if needed) and opens the store directory.
func openStore(dir string) (*diskStore, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: open store: %w", err)
	}
	return &diskStore{dir: dir}, nil
}

// Put writes the job's current state. Safe to call on a nil store.
func (s *diskStore) Put(j *client.Job, req client.SubmitRequest) error {
	if s == nil {
		return nil
	}
	data, err := json.MarshalIndent(storedJob{Job: j, Request: req}, "", "  ")
	if err != nil {
		return fmt.Errorf("service: encode job %s: %w", j.ID, err)
	}
	final := filepath.Join(s.dir, j.ID+".json")
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("service: persist job %s: %w", j.ID, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("service: persist job %s: %w", j.ID, err)
	}
	return nil
}

// Load reads every persisted job, sorted by ID (IDs are zero-padded
// sequence numbers, so lexical order is submission order). Unparsable files
// fail the load: a corrupted store should stop the daemon at startup, not
// silently drop jobs. Safe to call on a nil store (returns nothing).
func (s *diskStore) Load() ([]storedJob, error) {
	if s == nil {
		return nil, nil
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("service: read store: %w", err)
	}
	var jobs []storedJob
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasSuffix(name, ".tmp") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			return nil, fmt.Errorf("service: read stored job %s: %w", name, err)
		}
		var sj storedJob
		if err := json.Unmarshal(data, &sj); err != nil {
			return nil, fmt.Errorf("%w: service: corrupt stored job %s: %v", errdefs.ErrBadConfig, name, err)
		}
		if sj.Job == nil || sj.Job.ID == "" {
			return nil, fmt.Errorf("%w: service: stored job %s has no job document", errdefs.ErrBadConfig, name)
		}
		jobs = append(jobs, sj)
	}
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].Job.ID < jobs[k].Job.ID })
	return jobs, nil
}
