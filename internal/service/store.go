package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"autopipe/client"
)

// storedJob is the on-disk form of a job: the wire document plus the
// original request, so a daemon restarted mid-queue can re-run work that
// never finished.
type storedJob struct {
	Job     *client.Job          `json:"job"`
	Request client.SubmitRequest `json:"request"`
}

// diskStore persists jobs as one JSON file per job under a directory,
// written atomically (temp file + rename) so a crash mid-write leaves either
// the old document or the new one, never a torn file. A nil *diskStore is a
// valid no-op store — the daemon runs memory-only without -store.
type diskStore struct {
	dir string
}

// openStore creates (if needed) and opens the store directory.
func openStore(dir string) (*diskStore, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: open store: %w", err)
	}
	return &diskStore{dir: dir}, nil
}

// Put writes the job's current state. Safe to call on a nil store.
func (s *diskStore) Put(j *client.Job, req client.SubmitRequest) error {
	if s == nil {
		return nil
	}
	data, err := json.MarshalIndent(storedJob{Job: j, Request: req}, "", "  ")
	if err != nil {
		return fmt.Errorf("service: encode job %s: %w", j.ID, err)
	}
	final := filepath.Join(s.dir, j.ID+".json")
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("service: persist job %s: %w", j.ID, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("service: persist job %s: %w", j.ID, err)
	}
	return nil
}

// Delete removes a job's document (used when an admitted-then-shed job must
// not resurrect on the next restart). Missing files are fine; safe on a nil
// store.
func (s *diskStore) Delete(id string) error {
	if s == nil {
		return nil
	}
	if err := os.Remove(filepath.Join(s.dir, id+".json")); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("service: delete stored job %s: %w", id, err)
	}
	return nil
}

// Load reads every persisted job, sorted by ID (IDs are zero-padded
// sequence numbers, so lexical order is submission order).
//
// Damaged files — a tail truncated by a crash mid-write on a filesystem
// without atomic rename durability, a torn document, a stray .tmp from an
// interrupted atomic write — do not stop the boot and do not silently
// vanish: each is quarantined in place by renaming it to <name>.corrupt and
// reported in the second return value, so every intact job (in particular
// every finished result) still loads and the operator can inspect the
// damage. Safe to call on a nil store (returns nothing).
func (s *diskStore) Load() ([]storedJob, []string, error) {
	if s == nil {
		return nil, nil, nil
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("service: read store: %w", err)
	}
	var jobs []storedJob
	var quarantined []string
	quarantine := func(name string) error {
		from := filepath.Join(s.dir, name)
		if err := os.Rename(from, from+".corrupt"); err != nil {
			return fmt.Errorf("service: quarantine %s: %w", name, err)
		}
		quarantined = append(quarantined, name)
		return nil
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || strings.HasSuffix(name, ".corrupt") {
			continue
		}
		// A leftover .tmp is a torn atomic write: the rename never happened,
		// so the final file (if any) still holds the previous good document.
		// Quarantine the fragment rather than guessing at its completeness.
		if strings.HasSuffix(name, ".tmp") {
			if err := quarantine(name); err != nil {
				return nil, nil, err
			}
			continue
		}
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			return nil, nil, fmt.Errorf("service: read stored job %s: %w", name, err)
		}
		var sj storedJob
		if err := json.Unmarshal(data, &sj); err != nil {
			if err := quarantine(name); err != nil {
				return nil, nil, err
			}
			continue
		}
		if sj.Job == nil || sj.Job.ID == "" {
			if err := quarantine(name); err != nil {
				return nil, nil, err
			}
			continue
		}
		jobs = append(jobs, sj)
	}
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].Job.ID < jobs[k].Job.ID })
	return jobs, quarantined, nil
}
