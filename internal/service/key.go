package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"autopipe/client"
	"autopipe/internal/errdefs"
)

// keyVersion is baked into every cache key so a change to the key document
// shape (or to what the engine computes for a given request) invalidates the
// whole cache instead of silently serving stale plans.
const keyVersion = "autopiped-key/1"

// keyDoc is the canonical content hashed into a job's cache key: the job
// kind plus exactly the request fields that determine its result.
//
// Deliberately absent: parallelism. The engine is deterministic by
// construction — any worker-pool width returns a byte-identical plan — so
// two requests differing only in parallelism share one cache entry. The
// search budget IS present: a truncated search can return a different plan.
// encoding/json marshals struct fields in declaration order, so the encoding
// (and therefore the hash) is canonical for a fixed keyVersion.
type keyDoc struct {
	Version string              `json:"version"`
	Kind    string              `json:"kind"`
	Plan    *client.PlanPayload `json:"plan,omitempty"`
	// RawProfile inlines the profile for simulate/slice kinds.
	RawProfile json.RawMessage `json:"profile,omitempty"`
}

// Key returns the content address of a validated request:
// "sha256:<hex>" over the canonical key document.
func Key(req client.SubmitRequest) (string, error) {
	doc := keyDoc{Version: keyVersion, Kind: req.Kind}
	switch req.Kind {
	case client.KindPlan:
		doc.Plan = req.Plan
	case client.KindSimulate, client.KindSlice:
		raw, err := json.Marshal(req.Profile)
		if err != nil {
			return "", fmt.Errorf("%w: service: hash profile: %v", errdefs.ErrBadConfig, err)
		}
		doc.RawProfile = raw
	default:
		return "", fmt.Errorf("%w: service: cannot key unknown kind %q", errdefs.ErrBadConfig, req.Kind)
	}
	data, err := json.Marshal(doc)
	if err != nil {
		return "", fmt.Errorf("%w: service: hash request: %v", errdefs.ErrBadConfig, err)
	}
	sum := sha256.Sum256(data)
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}
