package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"autopipe"
	"autopipe/client"
	"autopipe/internal/errdefs"
)

// SoakOptions configures a crash-recovery soak run.
type SoakOptions struct {
	// StoreDir is the job-store directory the soak daemons share across
	// restarts. Required: crash recovery without persistence is vacuous.
	StoreDir string
	// Cycles is the number of kill/restart cycles (default 3).
	Cycles int
	// Jobs is the total number of distinct plan jobs in the stream, spread
	// evenly across the cycles (default 4 per cycle).
	Jobs int
	// Chaos, when non-nil, wraps every daemon incarnation's handler with the
	// plan's injections, so the client rides out injected faults and real
	// crashes at the same time.
	Chaos *ChaosPlan
	// Progress, when non-nil, receives a line per cycle.
	Progress io.Writer
}

// SoakReport is what a soak run proves.
type SoakReport struct {
	Cycles int
	Jobs   int
	// Completed is the number of jobs whose final sweep verified a durable
	// result; a passing soak has Completed == Jobs.
	Completed int
	// DuplicateSearches counts engine runs for keys whose result was already
	// durable at the previous boot — the exactly-once violation count. A
	// passing soak has 0.
	DuplicateSearches int
	// EngineSearches is the total engine runs across every incarnation;
	// legitimately >= the distinct keys when a crash interrupts a search
	// mid-run (the interrupted search never produced a durable result).
	EngineSearches int
	// Resumed totals service.jobs.resumed across reboots: jobs found pending
	// in the store and re-enqueued.
	Resumed int
	// Quarantined totals the damaged store files quarantined at boots: the
	// planted ones, plus any .tmp fragment a kill tore mid-write (expected
	// crash wreckage — the atomic-rename protocol exists exactly so a torn
	// .tmp never becomes a torn document). A quarantined *final* .json that
	// the harness did not plant fails the soak.
	Quarantined int
	// Injected is the number of damaged files the harness planted.
	Injected int
}

// Format renders the human report.
func (r *SoakReport) Format(w io.Writer) {
	fmt.Fprintf(w, "soak: %d jobs across %d kill/restart cycles\n", r.Jobs, r.Cycles)
	fmt.Fprintf(w, "  completed      %d/%d\n", r.Completed, r.Jobs)
	fmt.Fprintf(w, "  exactly-once   %d duplicate engine searches (%d total searches)\n", r.DuplicateSearches, r.EngineSearches)
	fmt.Fprintf(w, "  recovery       %d jobs resumed from the store across reboots\n", r.Resumed)
	fmt.Fprintf(w, "  store          %d damaged files quarantined (%d planted by the harness)\n", r.Quarantined, r.Injected)
}

// soakDaemon is one daemon incarnation: a Server plus its HTTP front.
type soakDaemon struct {
	srv *Server
	hs  *http.Server
}

// kill severs every client connection first (the crash the clients see),
// then stops the workers. In-flight engine runs are canceled and their jobs
// revert to pending on disk — exactly the state a real crash leaves behind.
func (d *soakDaemon) kill() {
	_ = d.hs.Close()
	d.srv.Close()
}

// Soak is the crash-recovery acceptance harness behind `autopiped -soak` and
// `make soak-smoke`: it streams distinct plan jobs at a store-backed daemon
// while killing and restarting it every cycle (same address, so client
// retries reconnect), planting torn and truncated store files before each
// reboot. It proves three invariants no interleaving may break:
//
//  1. Exactly-once: a result that was durable at a boot is never searched
//     again — replay re-seeds the cache, so restarts cost zero duplicate
//     engine work.
//  2. Full completion: every job in the stream ends with a durable result
//     despite the crashes, because the client's retry/backoff machinery and
//     the daemon's store replay meet in the middle.
//  3. Store integrity: every quarantined file is one the harness planted;
//     the daemon's atomic writes never produce a corrupt document, and a
//     boot over planted damage still loads every intact job.
//
// Violations return an error wrapping errdefs.ErrInternal, alongside the
// report gathered so far.
func Soak(ctx context.Context, opts SoakOptions) (*SoakReport, error) {
	if opts.StoreDir == "" {
		return nil, fmt.Errorf("%w: service: soak requires a store directory", errdefs.ErrBadConfig)
	}
	if opts.Cycles <= 0 {
		opts.Cycles = 3
	}
	if opts.Jobs <= 0 {
		opts.Jobs = 4 * opts.Cycles
	}
	if opts.Jobs < opts.Cycles {
		opts.Jobs = opts.Cycles
	}
	out := opts.Progress
	if out == nil {
		out = io.Discard
	}
	rep := &SoakReport{Cycles: opts.Cycles, Jobs: opts.Jobs}

	// The exactly-once ledger: finished holds every key whose result was
	// durable at the most recent boot; the wrapped engine counts a duplicate
	// whenever it runs for one of them. planted/quarantinedNames feed the
	// store-integrity verdict.
	var (
		mu          sync.Mutex
		finished    = map[string]bool{}
		duplicates  int
		searches    int
		planted     = map[string]bool{}
		quarantined []string
	)
	boot := func(addr string) (*soakDaemon, string, error) {
		// Refresh the durable ledger from the store before the daemon eats
		// it: what is on disk as done now must never be searched again.
		st, err := openStore(opts.StoreDir)
		if err != nil {
			return nil, "", err
		}
		stored, q, err := st.Load()
		if err != nil {
			return nil, "", err
		}
		// This load performs the boot-time quarantine (the daemon's own
		// replay would otherwise); the damage is accounted here.
		rep.Quarantined += len(q)
		mu.Lock()
		quarantined = append(quarantined, q...)
		for _, sj := range stored {
			if sj.Job.State == client.StateDone && sj.Job.Key != "" {
				finished[sj.Job.Key] = true
			}
		}
		mu.Unlock()

		srv, err := New(Config{StoreDir: opts.StoreDir})
		if err != nil {
			return nil, "", err
		}
		real := srv.engine
		srv.engine = func(ctx context.Context, req client.SubmitRequest) (json.RawMessage, error) {
			if key, kerr := Key(req); kerr == nil {
				mu.Lock()
				searches++
				if finished[key] {
					duplicates++
				}
				mu.Unlock()
			}
			return real(ctx, req)
		}
		srv.Start()
		rep.Resumed += int(srv.Registry().Counter("service.jobs.resumed").Value())
		rep.Quarantined += int(srv.Registry().Counter("service.store.quarantined").Value())

		ln, err := listenSoak(addr)
		if err != nil {
			srv.Close()
			return nil, "", err
		}
		hs := &http.Server{Handler: Chaos(srv.Handler(), opts.Chaos, srv.Registry())}
		go func() { _ = hs.Serve(ln) }()
		return &soakDaemon{srv: srv, hs: hs}, ln.Addr().String(), nil
	}

	// Grab a loopback port once and keep the address stable across every
	// incarnation, so retrying clients reconnect to the reborn daemon.
	d, addr, err := boot("127.0.0.1:0")
	if err != nil {
		return rep, err
	}
	defer func() { d.kill() }()

	c, err := client.New("http://"+addr,
		client.WithRetries(12),
		client.WithBackoff(20*time.Millisecond),
		client.WithMaxBackoff(300*time.Millisecond),
		client.WithCircuitBreaker(3, 150*time.Millisecond),
		client.WithTimeout(60*time.Second),
	)
	if err != nil {
		return rep, err
	}
	configs := soakConfigs(opts.Jobs)
	jobErrs := make([]error, opts.Jobs)
	fmt.Fprintf(out, "soak: %d jobs, %d kill/restart cycles, store %s\n", opts.Jobs, opts.Cycles, opts.StoreDir)

	next := 0
	for cycle := 1; cycle <= opts.Cycles; cycle++ {
		// This cycle's slice of the job stream.
		end := opts.Jobs * cycle / opts.Cycles
		var wg sync.WaitGroup
		for i := next; i < end; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, _, err := c.Plan(ctx, configs[i].model, configs[i].run, configs[i].cluster)
				jobErrs[i] = err
			}(i)
		}
		next = end

		// Let the batch get airborne, then pull the plug mid-flight.
		time.Sleep(5 * time.Millisecond)
		d.kill()
		names, derr := plantDamage(opts.StoreDir, cycle)
		rep.Injected += len(names)
		for _, name := range names {
			planted[name] = true
		}
		if derr != nil {
			return rep, derr
		}
		if d, _, err = boot(addr); err != nil {
			return rep, err
		}
		// Drain the batch against the reborn daemon before the next kill.
		wg.Wait()
		if ctx.Err() != nil {
			return rep, fmt.Errorf("service: soak canceled: %w", ctx.Err())
		}
		fmt.Fprintf(out, "  cycle %d/%d: killed and rebooted, %d jobs in flight survived\n", cycle, opts.Cycles, end-(opts.Jobs*(cycle-1)/opts.Cycles))
	}

	// Final sweep: every job in the stream must now have a durable result —
	// and serving it must cost zero new engine work (the durable ledger
	// catches any re-search as a duplicate).
	var violations []string
	for i, cfg := range configs {
		if jobErrs[i] != nil {
			violations = append(violations, fmt.Sprintf("job %d never completed: %v", i, jobErrs[i]))
			continue
		}
		if _, _, err := c.Plan(ctx, cfg.model, cfg.run, cfg.cluster); err != nil {
			violations = append(violations, fmt.Sprintf("job %d sweep failed: %v", i, err))
			continue
		}
		rep.Completed++
	}

	// Stop the final incarnation before inspecting the store, so the
	// integrity load cannot race an in-flight atomic write.
	d.kill()

	// Store integrity: every quarantined *final* document must be one the
	// harness planted — the daemon's atomic rename never tears a .json;
	// only .tmp fragments are legitimate crash wreckage.
	st, err := openStore(opts.StoreDir)
	if err != nil {
		return rep, err
	}
	if _, leftover, err := st.Load(); err != nil {
		violations = append(violations, fmt.Sprintf("final store load failed: %v", err))
	} else {
		rep.Quarantined += len(leftover)
		quarantined = append(quarantined, leftover...)
	}

	mu.Lock()
	rep.DuplicateSearches = duplicates
	rep.EngineSearches = searches
	mu.Unlock()
	if rep.DuplicateSearches != 0 {
		violations = append(violations, fmt.Sprintf("%d duplicate engine searches for already-durable keys", rep.DuplicateSearches))
	}
	for _, name := range quarantined {
		if !planted[name] && !strings.HasSuffix(name, ".tmp") {
			violations = append(violations, fmt.Sprintf("quarantined %s — the daemon tore a final document", name))
		}
	}
	if rep.Quarantined < rep.Injected {
		violations = append(violations, fmt.Sprintf("quarantined only %d of the %d planted damaged files", rep.Quarantined, rep.Injected))
	}
	rep.Format(out)
	if len(violations) > 0 {
		return rep, fmt.Errorf("%w: service: soak failed:\n  %s", errdefs.ErrInternal, strings.Join(violations, "\n  "))
	}
	return rep, nil
}

// listenSoak binds addr, retrying briefly — the previous incarnation's
// listener may take a beat to release the port.
func listenSoak(addr string) (net.Listener, error) {
	var lastErr error
	for i := 0; i < 50; i++ {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln, nil
		}
		lastErr = err
		time.Sleep(20 * time.Millisecond)
	}
	return nil, fmt.Errorf("service: soak rebind %s: %w", addr, lastErr)
}

// plantDamage writes a truncated job document and a torn .tmp into the
// store — the wreckage a crash mid-write leaves on a filesystem without
// atomic-rename durability. Returns the planted file names.
func plantDamage(dir string, cycle int) ([]string, error) {
	torn := fmt.Sprintf("torn-%d.json", cycle)
	if err := os.WriteFile(filepath.Join(dir, torn), []byte(`{"job": {"id": "job-`), 0o644); err != nil {
		return nil, fmt.Errorf("service: soak plant damage: %w", err)
	}
	tmp := fmt.Sprintf("torn-%d.json.tmp", cycle)
	if err := os.WriteFile(filepath.Join(dir, tmp), []byte("half a docum"), 0o644); err != nil {
		return []string{torn}, fmt.Errorf("service: soak plant damage: %w", err)
	}
	return []string{torn, tmp}, nil
}

// soakConfigs builds n plan configurations with pairwise-distinct cache keys
// (the global batch varies linearly), each cheap enough to search in
// milliseconds.
func soakConfigs(n int) []loadgenConfig {
	out := make([]loadgenConfig, n)
	for i := range out {
		cluster := autopipe.DefaultCluster()
		cluster.NumGPUs = 4 + 4*(i%2)
		out[i] = loadgenConfig{
			model:   autopipe.GPT2_345M(),
			run:     autopipe.Run{MicroBatch: 8, GlobalBatch: 128 * (i + 2), Checkpoint: true},
			cluster: cluster,
		}
	}
	return out
}
