package service

import (
	"encoding/json"
	"sync"
)

// planCache is the content-addressed result cache: key → marshaled result
// document. Values are immutable JSON blobs, so a cached result can be
// handed to any number of jobs without copying or aliasing concerns.
//
// Eviction is FIFO over insertion order. The workloads the daemon exists for
// (fleets re-planning near-identical configurations) are dominated by a
// small hot set, so recency tracking buys little over a generous capacity;
// FIFO keeps the data structure two maps and a slice.
type planCache struct {
	mu    sync.Mutex
	max   int
	items map[string]json.RawMessage
	order []string
}

func newPlanCache(maxEntries int) *planCache {
	if maxEntries <= 0 {
		maxEntries = 1024
	}
	return &planCache{max: maxEntries, items: make(map[string]json.RawMessage)}
}

// Get returns the cached result for key, if any.
func (c *planCache) Get(key string) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.items[key]
	return v, ok
}

// Put stores a result, evicting the oldest entries past capacity.
func (c *planCache) Put(key string, val json.RawMessage) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.items[key]; ok {
		c.items[key] = val
		return
	}
	c.items[key] = val
	c.order = append(c.order, key)
	for len(c.order) > c.max {
		evict := c.order[0]
		c.order = c.order[1:]
		delete(c.items, evict)
	}
}

// Len returns the number of cached results.
func (c *planCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// singleflight coalesces concurrent calls with the same key into one
// execution: the first caller runs fn, later callers with the same key block
// on the same call and share its result. This is the in-flight counterpart
// of the plan cache — the cache dedups across time, singleflight dedups
// within the window one search is running.
//
// This is a from-scratch stdlib implementation (the container image has no
// golang.org/x/sync); it intentionally omits forgotten/panic propagation
// beyond what the daemon needs.
type singleflight struct {
	mu    sync.Mutex
	calls map[string]*sfCall
}

type sfCall struct {
	wg  sync.WaitGroup
	val json.RawMessage
	err error
}

func newSingleflight() *singleflight {
	return &singleflight{calls: make(map[string]*sfCall)}
}

// Do runs fn once per concurrent key, returning fn's result to every caller.
// shared reports whether this caller piggybacked on another caller's run.
// Errors are shared too: if the one search fails, every coalesced job fails
// with the same typed error (a second submit after completion retries,
// because finished calls leave the table immediately).
func (g *singleflight) Do(key string, fn func() (json.RawMessage, error)) (val json.RawMessage, err error, shared bool) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &sfCall{}
	c.wg.Add(1)
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	c.wg.Done()
	return c.val, c.err, false
}
