package service

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"autopipe/internal/errdefs"
)

// TestSoak runs the crash-recovery harness at small scale: 2 kill/restart
// cycles over 4 real plan jobs. It is the in-tree acceptance test for
// exactly-once completion, cache re-seeding, and store quarantine under
// repeated daemon death.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("real engine searches under kill/restart in -short mode")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var progress strings.Builder
	rep, err := Soak(ctx, SoakOptions{
		StoreDir: t.TempDir(),
		Cycles:   2,
		Jobs:     4,
		Progress: &progress,
	})
	if err != nil {
		t.Fatalf("Soak: %v\n%s", err, progress.String())
	}
	if rep.Completed != rep.Jobs {
		t.Errorf("completed %d/%d jobs", rep.Completed, rep.Jobs)
	}
	if rep.DuplicateSearches != 0 {
		t.Errorf("%d duplicate searches — exactly-once violated", rep.DuplicateSearches)
	}
	if rep.Injected != 2*rep.Cycles {
		t.Errorf("planted %d damaged files, want %d", rep.Injected, 2*rep.Cycles)
	}
	if rep.Quarantined < rep.Injected {
		t.Errorf("quarantined %d, want at least the %d planted damaged files", rep.Quarantined, rep.Injected)
	}
}

// TestSoakWithChaos layers seeded chaos on top of the kill/restart cycle:
// the client must ride out injected 503s and latency as well as real
// crashes, with the same invariants holding.
func TestSoakWithChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("real engine searches under kill/restart in -short mode")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	plan := &ChaosPlan{Seed: 42, Chaos: []ChaosRule{
		{Kind: ChaosLatency, LatencyMs: 2, Prob: 0.2},
		{Kind: ChaosError, Prob: 0.1},
	}}
	var progress strings.Builder
	rep, err := Soak(ctx, SoakOptions{
		StoreDir: t.TempDir(),
		Cycles:   2,
		Jobs:     4,
		Chaos:    plan,
		Progress: &progress,
	})
	if err != nil {
		t.Fatalf("Soak with chaos: %v\n%s", err, progress.String())
	}
	if rep.Completed != rep.Jobs {
		t.Errorf("completed %d/%d jobs under chaos", rep.Completed, rep.Jobs)
	}
	if rep.DuplicateSearches != 0 {
		t.Errorf("%d duplicate searches under chaos", rep.DuplicateSearches)
	}
}

// TestSoakRequiresStore pins the config contract: no store, no soak.
func TestSoakRequiresStore(t *testing.T) {
	if _, err := Soak(context.Background(), SoakOptions{}); !errors.Is(err, errdefs.ErrBadConfig) {
		t.Errorf("Soak without store = %v, want ErrBadConfig", err)
	}
}
