package service

import (
	"errors"
	"strings"
	"testing"

	"autopipe"
	"autopipe/client"
	"autopipe/internal/errdefs"
)

func planReq(mutate func(*client.PlanPayload)) client.SubmitRequest {
	p := &client.PlanPayload{
		Model:   autopipe.GPT2_345M(),
		Run:     autopipe.Run{MicroBatch: 4, GlobalBatch: 128, Checkpoint: true},
		Cluster: autopipe.DefaultCluster(),
	}
	if mutate != nil {
		mutate(p)
	}
	return client.SubmitRequest{Kind: client.KindPlan, Plan: p}
}

// TestKeyDeterministic proves equal requests hash to equal, stable keys.
func TestKeyDeterministic(t *testing.T) {
	k1, err := Key(planReq(nil))
	if err != nil {
		t.Fatalf("Key: %v", err)
	}
	k2, err := Key(planReq(nil))
	if err != nil {
		t.Fatalf("Key: %v", err)
	}
	if k1 != k2 {
		t.Errorf("identical requests keyed differently: %q vs %q", k1, k2)
	}
	if !strings.HasPrefix(k1, "sha256:") || len(k1) != len("sha256:")+64 {
		t.Errorf("key %q is not a sha256 content address", k1)
	}
}

// TestKeySensitivity proves every result-determining field moves the key —
// and that the key document versioning leaves room to invalidate.
func TestKeySensitivity(t *testing.T) {
	base, err := Key(planReq(nil))
	if err != nil {
		t.Fatalf("Key: %v", err)
	}
	variants := map[string]client.SubmitRequest{
		"model":   planReq(func(p *client.PlanPayload) { p.Model = autopipe.BERTLarge() }),
		"run":     planReq(func(p *client.PlanPayload) { p.Run.GlobalBatch = 256 }),
		"cluster": planReq(func(p *client.PlanPayload) { p.Cluster.NumGPUs = 8 }),
		"budget":  planReq(func(p *client.PlanPayload) { p.Budget = 100 }),
	}
	for name, req := range variants {
		k, err := Key(req)
		if err != nil {
			t.Fatalf("Key(%s): %v", name, err)
		}
		if k == base {
			t.Errorf("changing %s did not change the cache key", name)
		}
	}

	// Different kinds never collide, even over the same payload bytes.
	prof := &autopipe.StageProfile{Fwd: []float64{1, 1}, Bwd: []float64{2, 2}, Comm: 0.1, Micro: 4}
	kSim, err := Key(client.SubmitRequest{Kind: client.KindSimulate, Profile: prof})
	if err != nil {
		t.Fatalf("Key(simulate): %v", err)
	}
	kSlice, err := Key(client.SubmitRequest{Kind: client.KindSlice, Profile: prof})
	if err != nil {
		t.Fatalf("Key(slice): %v", err)
	}
	if kSim == kSlice {
		t.Errorf("simulate and slice keyed identically over the same profile")
	}
}

// TestKeyUnknownKind proves unkeyable requests fail with the typed sentinel.
func TestKeyUnknownKind(t *testing.T) {
	_, err := Key(client.SubmitRequest{Kind: "transmogrify"})
	if !errors.Is(err, errdefs.ErrBadConfig) {
		t.Errorf("Key(unknown kind) = %v, want ErrBadConfig", err)
	}
}
