package service

import (
	"sync"
	"testing"
	"time"
)

// TestTokenBucketConcurrentTake hammers the admission-control bucket from
// competing goroutines and checks conservation: with accrual frozen (a fixed
// injected clock), the number of admitted requests can never exceed the
// burst capacity, however the takes interleave. Run under -race (make
// race-wide, CI race-matrix) this doubles as the dynamic check on the
// bucket's mutex discipline, complementing raceguard's static sweep.
func TestTokenBucketConcurrentTake(t *testing.T) {
	b := newTokenBucket(100, 32)
	frozen := time.Now()
	b.now = func() time.Time { return frozen }
	b.last = frozen // no accrual between construction and the frozen clock

	const workers = 16
	const attempts = 50
	var wg sync.WaitGroup
	admitted := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < attempts; i++ {
				if ok, wait := b.take(); ok {
					admitted[w]++
				} else if wait <= 0 {
					t.Errorf("rejected take returned non-positive wait %v", wait)
				}
			}
		}(w)
	}
	wg.Wait()

	total := 0
	for _, n := range admitted {
		total += n
	}
	if total != 32 {
		t.Fatalf("admitted %d requests from a frozen 32-token bucket, want exactly 32", total)
	}
}
