package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"autopipe"
	"autopipe/client"
	"autopipe/internal/errdefs"
)

// testPlanBody returns a valid submit request body for a plan job; vary seed
// to get distinct cache keys.
func testPlanBody(seed int) client.SubmitRequest {
	cluster := autopipe.DefaultCluster()
	cluster.NumGPUs = 4
	return client.SubmitRequest{
		Kind: client.KindPlan,
		Plan: &client.PlanPayload{
			Model:   autopipe.GPT2_345M(),
			Run:     autopipe.Run{MicroBatch: 4, GlobalBatch: 128 + 128*seed, Checkpoint: true},
			Cluster: cluster,
		},
	}
}

// newTestServer builds a started server with the given config and an engine
// stub, mounted on an httptest server. The stub result is a fixed document so
// tests exercise the service machinery, not the search.
func newTestServer(t *testing.T, cfg Config, engine func(ctx context.Context, req client.SubmitRequest) (json.RawMessage, error)) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if engine != nil {
		srv.engine = engine
	}
	srv.Start()
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return srv, hs
}

func stubResult() json.RawMessage { return json.RawMessage(`{"spec":null}`) }

func submit(t *testing.T, base string, req client.SubmitRequest, wait bool) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return post(t, base, body, wait)
}

func post(t *testing.T, base string, body []byte, wait bool) (*http.Response, []byte) {
	t.Helper()
	resp, data, err := tryPost(base, body, wait)
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	return resp, data
}

// tryPost is the goroutine-safe variant: it reports transport failures as an
// error instead of calling into testing.T.
func tryPost(base string, body []byte, wait bool) (*http.Response, []byte, error) {
	url := base + "/v1/jobs"
	if wait {
		url += "?wait=1"
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	return resp, data, nil
}

func trySubmit(req client.SubmitRequest, base string, wait bool) (*http.Response, []byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, nil, err
	}
	return tryPost(base, body, wait)
}

// decodeWireError pulls the typed error out of an error envelope.
func decodeWireError(t *testing.T, data []byte) *client.Error {
	t.Helper()
	var doc struct {
		Error *client.Error `json:"error"`
	}
	if err := json.Unmarshal(data, &doc); err != nil || doc.Error == nil {
		t.Fatalf("response is not an error envelope: %s", data)
	}
	return doc.Error
}

// TestWireErrorContract proves the sentinel → status → code → sentinel
// round-trip for every mapped failure class: the daemon assigns the contract
// status, and the decoded wire error is errors.Is-compatible with the
// original sentinel.
func TestWireErrorContract(t *testing.T) {
	cases := []struct {
		name       string
		engineErr  error // when set, the engine fails with it
		body       []byte
		wantStatus int
		wantCode   string
		wantIs     error
	}{
		{
			name:       "malformed json",
			body:       []byte(`{"kind": "plan",`),
			wantStatus: http.StatusBadRequest,
			wantCode:   client.CodeBadConfig,
			wantIs:     autopipe.ErrBadConfig,
		},
		{
			name:       "unknown field",
			body:       []byte(`{"kind": "plan", "bogus": 1}`),
			wantStatus: http.StatusBadRequest,
			wantCode:   client.CodeBadConfig,
			wantIs:     autopipe.ErrBadConfig,
		},
		{
			name:       "unknown kind",
			body:       []byte(`{"kind": "transmogrify"}`),
			wantStatus: http.StatusBadRequest,
			wantCode:   client.CodeBadConfig,
			wantIs:     autopipe.ErrBadConfig,
		},
		{
			name:       "plan without payload",
			body:       []byte(`{"kind": "plan"}`),
			wantStatus: http.StatusBadRequest,
			wantCode:   client.CodeBadConfig,
			wantIs:     autopipe.ErrBadConfig,
		},
		{
			name:       "engine bad config",
			engineErr:  fmt.Errorf("%w: micro-batch must divide global batch", errdefs.ErrBadConfig),
			wantStatus: http.StatusBadRequest,
			wantCode:   client.CodeBadConfig,
			wantIs:     autopipe.ErrBadConfig,
		},
		{
			name:       "engine infeasible",
			engineErr:  fmt.Errorf("%w: no pipeline depth fits device memory", errdefs.ErrInfeasible),
			wantStatus: http.StatusUnprocessableEntity,
			wantCode:   client.CodeInfeasible,
			wantIs:     autopipe.ErrInfeasible,
		},
		{
			name:       "engine oom",
			engineErr:  fmt.Errorf("%w: stage 3 exceeds device memory", errdefs.ErrOOM),
			wantStatus: http.StatusUnprocessableEntity,
			wantCode:   client.CodeOOM,
			wantIs:     autopipe.ErrOOM,
		},
		{
			name:       "engine internal",
			engineErr:  errors.New("the planner tripped over its own feet"),
			wantStatus: http.StatusInternalServerError,
			wantCode:   client.CodeInternal,
			wantIs:     autopipe.ErrInternal,
		},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			engineErr := tc.engineErr
			_, hs := newTestServer(t, Config{}, func(context.Context, client.SubmitRequest) (json.RawMessage, error) {
				if engineErr != nil {
					return nil, engineErr
				}
				return stubResult(), nil
			})
			body := tc.body
			if body == nil {
				var err error
				body, err = json.Marshal(testPlanBody(i))
				if err != nil {
					t.Fatalf("marshal: %v", err)
				}
			}
			resp, data := post(t, hs.URL, body, true)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, tc.wantStatus, data)
			}
			we := decodeWireError(t, data)
			if we.Code != tc.wantCode {
				t.Errorf("code = %q, want %q", we.Code, tc.wantCode)
			}
			if !errors.Is(we, tc.wantIs) {
				t.Errorf("decoded error %v is not errors.Is(%v)", we, tc.wantIs)
			}
		})
	}
}

// TestJobNotFound proves unknown job IDs map to 404 not_found.
func TestJobNotFound(t *testing.T) {
	_, hs := newTestServer(t, Config{}, nil)
	resp, err := http.Get(hs.URL + "/v1/jobs/job-99999999")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	we := decodeWireError(t, data)
	if we.Code != client.CodeNotFound {
		t.Errorf("code = %q, want %q", we.Code, client.CodeNotFound)
	}
	if !errors.Is(we, client.ErrNotFound) {
		t.Errorf("decoded error is not ErrNotFound")
	}
}

// TestCacheHitOnResubmit is the acceptance check: two back-to-back identical
// plan requests cost exactly one engine search, and the daemon's counters
// say so.
func TestCacheHitOnResubmit(t *testing.T) {
	var searches atomic.Int64
	srv, hs := newTestServer(t, Config{}, func(context.Context, client.SubmitRequest) (json.RawMessage, error) {
		searches.Add(1)
		return stubResult(), nil
	})

	resp, data := submit(t, hs.URL, testPlanBody(0), true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first submit: status %d: %s", resp.StatusCode, data)
	}
	var first client.Job
	if err := json.Unmarshal(data, &first); err != nil {
		t.Fatalf("decode first job: %v", err)
	}
	if first.CacheHit {
		t.Fatalf("first submit was a cache hit")
	}

	resp, data = submit(t, hs.URL, testPlanBody(0), true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second submit: status %d: %s", resp.StatusCode, data)
	}
	var second client.Job
	if err := json.Unmarshal(data, &second); err != nil {
		t.Fatalf("decode second job: %v", err)
	}
	if !second.CacheHit {
		t.Fatalf("identical resubmit was not a cache hit: %+v", second)
	}
	if second.Key != first.Key {
		t.Errorf("identical requests got different keys: %q vs %q", first.Key, second.Key)
	}
	if n := searches.Load(); n != 1 {
		t.Errorf("engine ran %d times, want 1", n)
	}
	if hits := srv.Registry().Counter("service.cache.hits").Value(); hits != 1 {
		t.Errorf("service.cache.hits = %v, want 1", hits)
	}
	if n := srv.Registry().Counter("service.engine.searches").Value(); n != 1 {
		t.Errorf("service.engine.searches = %v, want 1", n)
	}

	// A different configuration must miss.
	resp, data = submit(t, hs.URL, testPlanBody(1), true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("third submit: status %d: %s", resp.StatusCode, data)
	}
	if n := searches.Load(); n != 2 {
		t.Errorf("engine ran %d times after a distinct request, want 2", n)
	}
}

// TestSingleflightDedup proves N concurrent identical requests coalesce into
// one engine search: the first caller runs it, in-flight duplicates share,
// later ones hit the cache.
func TestSingleflightDedup(t *testing.T) {
	const n = 8
	var searches atomic.Int64
	entered := make(chan struct{}, n)
	release := make(chan struct{})
	_, hs := newTestServer(t, Config{Workers: 4}, func(context.Context, client.SubmitRequest) (json.RawMessage, error) {
		searches.Add(1)
		entered <- struct{}{}
		<-release
		return stubResult(), nil
	})

	type outcome struct {
		job  client.Job
		code int
		err  error
	}
	results := make(chan outcome, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, data, err := trySubmit(testPlanBody(0), hs.URL, true)
			if err != nil {
				results <- outcome{err: err}
				return
			}
			var j client.Job
			_ = json.Unmarshal(data, &j)
			results <- outcome{job: j, code: resp.StatusCode}
		}()
	}

	// Exactly one request reaches the engine; everyone else coalesces.
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("no request reached the engine")
	}
	select {
	case <-entered:
		t.Fatal("a second identical search reached the engine")
	case <-time.After(100 * time.Millisecond):
	}
	close(release)

	var shared, hits int
	for i := 0; i < n; i++ {
		out := <-results
		if out.err != nil {
			t.Fatalf("request %d: %v", i, out.err)
		}
		if out.code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, out.code)
		}
		if out.job.Shared {
			shared++
		}
		if out.job.CacheHit {
			hits++
		}
	}
	if got := searches.Load(); got != 1 {
		t.Errorf("engine ran %d times for %d identical concurrent requests, want 1", got, n)
	}
	if shared+hits == 0 {
		t.Errorf("no request was deduplicated (shared %d, cache hits %d)", shared, hits)
	}
}

// TestQueueFull proves an overloaded daemon rejects with 503 unavailable —
// the one code the client retries.
func TestQueueFull(t *testing.T) {
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	_, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 1}, func(context.Context, client.SubmitRequest) (json.RawMessage, error) {
		entered <- struct{}{}
		<-release
		return stubResult(), nil
	})
	defer close(release)

	// First job occupies the only worker.
	go func() { _, _, _ = trySubmit(testPlanBody(0), hs.URL, true) }()
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("first job never reached the engine")
	}
	// Second job fills the 1-deep queue.
	resp, data := submit(t, hs.URL, testPlanBody(1), false)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: status %d: %s", resp.StatusCode, data)
	}
	// Third is rejected.
	resp, data = submit(t, hs.URL, testPlanBody(2), false)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("third submit: status %d, want 503: %s", resp.StatusCode, data)
	}
	we := decodeWireError(t, data)
	if we.Code != client.CodeUnavailable {
		t.Errorf("code = %q, want %q", we.Code, client.CodeUnavailable)
	}
	if !errors.Is(we, client.ErrUnavailable) {
		t.Errorf("decoded error is not ErrUnavailable")
	}
}

// TestStoreResume proves the daemon is restart-resumable: a job interrupted
// before running is re-enqueued and finished by the next daemon, and finished
// results replayed from the store re-seed the cache.
func TestStoreResume(t *testing.T) {
	dir := t.TempDir()

	// Daemon 1: accept a job but never start workers, so it stays pending on
	// disk — the restart-during-queue scenario.
	srv1, err := New(Config{StoreDir: dir})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs1 := httptest.NewServer(srv1.Handler())
	resp, data := submit(t, hs1.URL, testPlanBody(0), false)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
	}
	var pending client.Job
	if err := json.Unmarshal(data, &pending); err != nil {
		t.Fatalf("decode pending job: %v", err)
	}
	hs1.Close()
	srv1.Close()

	// Daemon 2 replays the store: the pending job must be re-enqueued, run,
	// and become fetchable as done.
	var searches atomic.Int64
	srv2, hs2 := newTestServer(t, Config{StoreDir: dir}, func(context.Context, client.SubmitRequest) (json.RawMessage, error) {
		searches.Add(1)
		return stubResult(), nil
	})
	if v := srv2.Registry().Counter("service.jobs.resumed").Value(); v != 1 {
		t.Fatalf("service.jobs.resumed = %v, want 1", v)
	}
	resp2, err := http.Get(hs2.URL + "/v1/jobs/" + pending.ID + "?wait=1")
	if err != nil {
		t.Fatalf("GET resumed job: %v", err)
	}
	data2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resumed job: status %d: %s", resp2.StatusCode, data2)
	}
	var done client.Job
	if err := json.Unmarshal(data2, &done); err != nil {
		t.Fatalf("decode resumed job: %v", err)
	}
	if done.State != client.StateDone {
		t.Fatalf("resumed job state = %q, want done", done.State)
	}
	if searches.Load() != 1 {
		t.Fatalf("resumed job ran the engine %d times, want 1", searches.Load())
	}
	hs2URL := hs2.URL

	// An identical submit on daemon 2 now hits the cache (no new search).
	resp3, data3 := submit(t, hs2URL, testPlanBody(0), true)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("post-resume submit: status %d: %s", resp3.StatusCode, data3)
	}
	var hit client.Job
	if err := json.Unmarshal(data3, &hit); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !hit.CacheHit {
		t.Errorf("post-resume identical submit was not a cache hit")
	}
	if searches.Load() != 1 {
		t.Errorf("post-resume submit ran the engine (total %d searches, want 1)", searches.Load())
	}

	// Daemon 3 replays a store whose jobs are all terminal: nothing resumes,
	// but the finished result re-seeds the cache from disk alone.
	var searches3 atomic.Int64
	srv3, hs3 := newTestServer(t, Config{StoreDir: dir}, func(context.Context, client.SubmitRequest) (json.RawMessage, error) {
		searches3.Add(1)
		return stubResult(), nil
	})
	if v := srv3.Registry().Counter("service.jobs.resumed").Value(); v != 0 {
		t.Fatalf("daemon 3 resumed %v jobs, want 0", v)
	}
	resp4, data4 := submit(t, hs3.URL, testPlanBody(0), true)
	if resp4.StatusCode != http.StatusOK {
		t.Fatalf("cold-cache submit: status %d: %s", resp4.StatusCode, data4)
	}
	var hit3 client.Job
	if err := json.Unmarshal(data4, &hit3); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !hit3.CacheHit {
		t.Errorf("replayed store did not re-seed the cache")
	}
	if searches3.Load() != 0 {
		t.Errorf("daemon 3 ran %d searches, want 0", searches3.Load())
	}
}

// TestListJobs proves GET /v1/jobs returns submissions oldest first.
func TestListJobs(t *testing.T) {
	_, hs := newTestServer(t, Config{}, func(context.Context, client.SubmitRequest) (json.RawMessage, error) {
		return stubResult(), nil
	})
	for i := 0; i < 3; i++ {
		resp, data := submit(t, hs.URL, testPlanBody(i), true)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submit %d: status %d: %s", i, resp.StatusCode, data)
		}
	}
	resp, err := http.Get(hs.URL + "/v1/jobs")
	if err != nil {
		t.Fatalf("GET /v1/jobs: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var jobs []client.Job
	if err := json.Unmarshal(data, &jobs); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	if len(jobs) != 3 {
		t.Fatalf("listed %d jobs, want 3", len(jobs))
	}
	for i := 1; i < len(jobs); i++ {
		if jobs[i-1].ID >= jobs[i].ID {
			t.Errorf("jobs out of order: %q before %q", jobs[i-1].ID, jobs[i].ID)
		}
	}
}

// TestMetricsAndPprofMounted proves the observability endpoints are wired:
// /metrics serves the Prometheus exposition including service counters, and
// /debug/pprof answers.
func TestMetricsAndPprofMounted(t *testing.T) {
	_, hs := newTestServer(t, Config{}, func(context.Context, client.SubmitRequest) (json.RawMessage, error) {
		return stubResult(), nil
	})
	if resp, data := submit(t, hs.URL, testPlanBody(0), true); resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
	}

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	for _, want := range []string{"service_jobs_submitted_total", "service_engine_searches_total", "service_http_requests_total"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics is missing %s", want)
		}
	}

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d, want 200", path, resp.StatusCode)
		}
	}
	if resp, _ := http.Get(hs.URL + "/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}

// TestRealEngineEndToEnd runs one plan through the actual planning engine —
// the only test here that does — proving the daemon's wiring against the real
// Planner and that the remote spec matches an in-process plan byte for byte.
func TestRealEngineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real engine search in -short mode")
	}
	_, hs := newTestServer(t, Config{}, nil) // nil = real engine

	c, err := client.New(hs.URL)
	if err != nil {
		t.Fatalf("client.New: %v", err)
	}
	model, cluster := autopipe.GPT2_345M(), autopipe.DefaultCluster()
	cluster.NumGPUs = 4
	run := autopipe.Run{MicroBatch: 4, GlobalBatch: 128, Checkpoint: true}

	remote, _, err := c.Plan(context.Background(), model, run, cluster)
	if err != nil {
		t.Fatalf("remote plan: %v", err)
	}
	local, _, err := autopipe.NewPlanner().Plan(context.Background(), model, run, cluster)
	if err != nil {
		t.Fatalf("local plan: %v", err)
	}
	if remote.Depth() != local.Depth() || remote.NumSliced != local.NumSliced ||
		remote.Predicted != local.Predicted ||
		fmt.Sprint(remote.Partition.Bounds) != fmt.Sprint(local.Partition.Bounds) {
		t.Errorf("remote plan differs from in-process plan:\nremote %+v\nlocal  %+v", remote, local)
	}

	// The analytic simulate and slice kinds round-trip too.
	prof := autopipe.StageProfile{Fwd: []float64{2, 1, 1, 1}, Bwd: []float64{4, 2, 2, 2}, Comm: 0.1, Micro: 8}
	simRemote, err := c.Simulate(context.Background(), prof)
	if err != nil {
		t.Fatalf("remote simulate: %v", err)
	}
	simLocal, err := autopipe.SimulateProfile(prof)
	if err != nil {
		t.Fatalf("local simulate: %v", err)
	}
	if simRemote.IterTime != simLocal.IterTime || simRemote.Master != simLocal.Master {
		t.Errorf("remote simulate %+v differs from local %+v", simRemote, simLocal)
	}
	sliceRemote, err := c.Slice(context.Background(), prof)
	if err != nil {
		t.Fatalf("remote slice: %v", err)
	}
	sliceLocal, err := autopipe.SliceProfile(prof)
	if err != nil {
		t.Fatalf("local slice: %v", err)
	}
	if sliceRemote.NumSliced != sliceLocal.NumSliced {
		t.Errorf("remote slice NumSliced = %d, local %d", sliceRemote.NumSliced, sliceLocal.NumSliced)
	}
}
