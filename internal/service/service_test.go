package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"autopipe"
	"autopipe/client"
	"autopipe/internal/errdefs"
)

// testPlanBody returns a valid submit request body for a plan job; vary seed
// to get distinct cache keys.
func testPlanBody(seed int) client.SubmitRequest {
	cluster := autopipe.DefaultCluster()
	cluster.NumGPUs = 4
	return client.SubmitRequest{
		Kind: client.KindPlan,
		Plan: &client.PlanPayload{
			Model:   autopipe.GPT2_345M(),
			Run:     autopipe.Run{MicroBatch: 4, GlobalBatch: 128 + 128*seed, Checkpoint: true},
			Cluster: cluster,
		},
	}
}

// newTestServer builds a started server with the given config and an engine
// stub, mounted on an httptest server. The stub result is a fixed document so
// tests exercise the service machinery, not the search.
func newTestServer(t *testing.T, cfg Config, engine func(ctx context.Context, req client.SubmitRequest) (json.RawMessage, error)) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if engine != nil {
		srv.engine = engine
	}
	srv.Start()
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return srv, hs
}

func stubResult() json.RawMessage { return json.RawMessage(`{"spec":null}`) }

func submit(t *testing.T, base string, req client.SubmitRequest, wait bool) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return post(t, base, body, wait)
}

func post(t *testing.T, base string, body []byte, wait bool) (*http.Response, []byte) {
	t.Helper()
	resp, data, err := tryPost(base, body, wait)
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	return resp, data
}

// tryPost is the goroutine-safe variant: it reports transport failures as an
// error instead of calling into testing.T.
func tryPost(base string, body []byte, wait bool) (*http.Response, []byte, error) {
	url := base + "/v1/jobs"
	if wait {
		url += "?wait=1"
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	return resp, data, nil
}

func trySubmit(req client.SubmitRequest, base string, wait bool) (*http.Response, []byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, nil, err
	}
	return tryPost(base, body, wait)
}

// decodeWireError pulls the typed error out of an error envelope.
func decodeWireError(t *testing.T, data []byte) *client.Error {
	t.Helper()
	var doc struct {
		Error *client.Error `json:"error"`
	}
	if err := json.Unmarshal(data, &doc); err != nil || doc.Error == nil {
		t.Fatalf("response is not an error envelope: %s", data)
	}
	return doc.Error
}

// TestWireErrorContract proves the sentinel → status → code → sentinel
// round-trip for every mapped failure class: the daemon assigns the contract
// status, and the decoded wire error is errors.Is-compatible with the
// original sentinel.
func TestWireErrorContract(t *testing.T) {
	cases := []struct {
		name       string
		engineErr  error // when set, the engine fails with it
		body       []byte
		wantStatus int
		wantCode   string
		wantIs     error
	}{
		{
			name:       "malformed json",
			body:       []byte(`{"kind": "plan",`),
			wantStatus: http.StatusBadRequest,
			wantCode:   client.CodeBadConfig,
			wantIs:     autopipe.ErrBadConfig,
		},
		{
			name:       "unknown field",
			body:       []byte(`{"kind": "plan", "bogus": 1}`),
			wantStatus: http.StatusBadRequest,
			wantCode:   client.CodeBadConfig,
			wantIs:     autopipe.ErrBadConfig,
		},
		{
			name:       "unknown kind",
			body:       []byte(`{"kind": "transmogrify"}`),
			wantStatus: http.StatusBadRequest,
			wantCode:   client.CodeBadConfig,
			wantIs:     autopipe.ErrBadConfig,
		},
		{
			name:       "plan without payload",
			body:       []byte(`{"kind": "plan"}`),
			wantStatus: http.StatusBadRequest,
			wantCode:   client.CodeBadConfig,
			wantIs:     autopipe.ErrBadConfig,
		},
		{
			name:       "engine bad config",
			engineErr:  fmt.Errorf("%w: micro-batch must divide global batch", errdefs.ErrBadConfig),
			wantStatus: http.StatusBadRequest,
			wantCode:   client.CodeBadConfig,
			wantIs:     autopipe.ErrBadConfig,
		},
		{
			name:       "engine infeasible",
			engineErr:  fmt.Errorf("%w: no pipeline depth fits device memory", errdefs.ErrInfeasible),
			wantStatus: http.StatusUnprocessableEntity,
			wantCode:   client.CodeInfeasible,
			wantIs:     autopipe.ErrInfeasible,
		},
		{
			name:       "engine oom",
			engineErr:  fmt.Errorf("%w: stage 3 exceeds device memory", errdefs.ErrOOM),
			wantStatus: http.StatusUnprocessableEntity,
			wantCode:   client.CodeOOM,
			wantIs:     autopipe.ErrOOM,
		},
		{
			name:       "engine internal",
			engineErr:  errors.New("the planner tripped over its own feet"),
			wantStatus: http.StatusInternalServerError,
			wantCode:   client.CodeInternal,
			wantIs:     autopipe.ErrInternal,
		},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			engineErr := tc.engineErr
			_, hs := newTestServer(t, Config{}, func(context.Context, client.SubmitRequest) (json.RawMessage, error) {
				if engineErr != nil {
					return nil, engineErr
				}
				return stubResult(), nil
			})
			body := tc.body
			if body == nil {
				var err error
				body, err = json.Marshal(testPlanBody(i))
				if err != nil {
					t.Fatalf("marshal: %v", err)
				}
			}
			resp, data := post(t, hs.URL, body, true)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, tc.wantStatus, data)
			}
			we := decodeWireError(t, data)
			if we.Code != tc.wantCode {
				t.Errorf("code = %q, want %q", we.Code, tc.wantCode)
			}
			if !errors.Is(we, tc.wantIs) {
				t.Errorf("decoded error %v is not errors.Is(%v)", we, tc.wantIs)
			}
		})
	}
}

// TestJobNotFound proves unknown job IDs map to 404 not_found.
func TestJobNotFound(t *testing.T) {
	_, hs := newTestServer(t, Config{}, nil)
	resp, err := http.Get(hs.URL + "/v1/jobs/job-99999999")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	we := decodeWireError(t, data)
	if we.Code != client.CodeNotFound {
		t.Errorf("code = %q, want %q", we.Code, client.CodeNotFound)
	}
	if !errors.Is(we, client.ErrNotFound) {
		t.Errorf("decoded error is not ErrNotFound")
	}
}

// TestCacheHitOnResubmit is the acceptance check: two back-to-back identical
// plan requests cost exactly one engine search, and the daemon's counters
// say so.
func TestCacheHitOnResubmit(t *testing.T) {
	var searches atomic.Int64
	srv, hs := newTestServer(t, Config{}, func(context.Context, client.SubmitRequest) (json.RawMessage, error) {
		searches.Add(1)
		return stubResult(), nil
	})

	resp, data := submit(t, hs.URL, testPlanBody(0), true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first submit: status %d: %s", resp.StatusCode, data)
	}
	var first client.Job
	if err := json.Unmarshal(data, &first); err != nil {
		t.Fatalf("decode first job: %v", err)
	}
	if first.CacheHit {
		t.Fatalf("first submit was a cache hit")
	}

	resp, data = submit(t, hs.URL, testPlanBody(0), true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second submit: status %d: %s", resp.StatusCode, data)
	}
	var second client.Job
	if err := json.Unmarshal(data, &second); err != nil {
		t.Fatalf("decode second job: %v", err)
	}
	if !second.CacheHit {
		t.Fatalf("identical resubmit was not a cache hit: %+v", second)
	}
	if second.Key != first.Key {
		t.Errorf("identical requests got different keys: %q vs %q", first.Key, second.Key)
	}
	if n := searches.Load(); n != 1 {
		t.Errorf("engine ran %d times, want 1", n)
	}
	if hits := srv.Registry().Counter("service.cache.hits").Value(); hits != 1 {
		t.Errorf("service.cache.hits = %v, want 1", hits)
	}
	if n := srv.Registry().Counter("service.engine.searches").Value(); n != 1 {
		t.Errorf("service.engine.searches = %v, want 1", n)
	}

	// A different configuration must miss.
	resp, data = submit(t, hs.URL, testPlanBody(1), true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("third submit: status %d: %s", resp.StatusCode, data)
	}
	if n := searches.Load(); n != 2 {
		t.Errorf("engine ran %d times after a distinct request, want 2", n)
	}
}

// TestSingleflightDedup proves N concurrent identical requests coalesce into
// one engine search: the first caller runs it, in-flight duplicates share,
// later ones hit the cache.
func TestSingleflightDedup(t *testing.T) {
	const n = 8
	var searches atomic.Int64
	entered := make(chan struct{}, n)
	release := make(chan struct{})
	_, hs := newTestServer(t, Config{Workers: 4}, func(context.Context, client.SubmitRequest) (json.RawMessage, error) {
		searches.Add(1)
		entered <- struct{}{}
		<-release
		return stubResult(), nil
	})

	type outcome struct {
		job  client.Job
		code int
		err  error
	}
	results := make(chan outcome, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, data, err := trySubmit(testPlanBody(0), hs.URL, true)
			if err != nil {
				results <- outcome{err: err}
				return
			}
			var j client.Job
			_ = json.Unmarshal(data, &j)
			results <- outcome{job: j, code: resp.StatusCode}
		}()
	}

	// Exactly one request reaches the engine; everyone else coalesces.
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("no request reached the engine")
	}
	select {
	case <-entered:
		t.Fatal("a second identical search reached the engine")
	case <-time.After(100 * time.Millisecond):
	}
	close(release)

	var shared, hits int
	for i := 0; i < n; i++ {
		out := <-results
		if out.err != nil {
			t.Fatalf("request %d: %v", i, out.err)
		}
		if out.code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, out.code)
		}
		if out.job.Shared {
			shared++
		}
		if out.job.CacheHit {
			hits++
		}
	}
	if got := searches.Load(); got != 1 {
		t.Errorf("engine ran %d times for %d identical concurrent requests, want 1", got, n)
	}
	if shared+hits == 0 {
		t.Errorf("no request was deduplicated (shared %d, cache hits %d)", shared, hits)
	}
}

// TestQueueFull proves an overloaded daemon rejects with 503 unavailable —
// the one code the client retries.
func TestQueueFull(t *testing.T) {
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	_, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 1}, func(context.Context, client.SubmitRequest) (json.RawMessage, error) {
		entered <- struct{}{}
		<-release
		return stubResult(), nil
	})
	defer close(release)

	// First job occupies the only worker.
	go func() { _, _, _ = trySubmit(testPlanBody(0), hs.URL, true) }()
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("first job never reached the engine")
	}
	// Second job fills the 1-deep queue.
	resp, data := submit(t, hs.URL, testPlanBody(1), false)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: status %d: %s", resp.StatusCode, data)
	}
	// Third is rejected.
	resp, data = submit(t, hs.URL, testPlanBody(2), false)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("third submit: status %d, want 503: %s", resp.StatusCode, data)
	}
	we := decodeWireError(t, data)
	if we.Code != client.CodeUnavailable {
		t.Errorf("code = %q, want %q", we.Code, client.CodeUnavailable)
	}
	if !errors.Is(we, client.ErrUnavailable) {
		t.Errorf("decoded error is not ErrUnavailable")
	}
}

// submitWithDeadline posts a job with the client deadline header set.
func submitWithDeadline(t *testing.T, base string, req client.SubmitRequest, deadlineMs string, wait bool) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	url := base + "/v1/jobs"
	if wait {
		url += "?wait=1"
	}
	hreq, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(client.DeadlineHeader, deadlineMs)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

// TestRateLimitAdmission proves the token bucket rejects excess submissions
// with 429 rate_limited plus a Retry-After naming when the next token
// accrues, and admits again once it does. The bucket clock is stubbed so the
// refill schedule is deterministic.
func TestRateLimitAdmission(t *testing.T) {
	var offsetMs atomic.Int64
	srv, hs := newTestServer(t, Config{RateLimit: 1, RateBurst: 1}, func(context.Context, client.SubmitRequest) (json.RawMessage, error) {
		return stubResult(), nil
	})
	base := time.Now()
	srv.limiter.mu.Lock()
	srv.limiter.last = base
	srv.limiter.tokens = 1
	srv.limiter.now = func() time.Time { return base.Add(time.Duration(offsetMs.Load()) * time.Millisecond) }
	srv.limiter.mu.Unlock()

	// The only token admits the first submission.
	resp, data := submit(t, hs.URL, testPlanBody(0), true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first submit: status %d: %s", resp.StatusCode, data)
	}
	// Same instant, empty bucket: 429 with Retry-After 1 (one token/sec).
	resp, data = submit(t, hs.URL, testPlanBody(1), false)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("rate-limited submit: status %d, want 429: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", got)
	}
	we := decodeWireError(t, data)
	if we.Code != client.CodeRateLimited {
		t.Errorf("code = %q, want %q", we.Code, client.CodeRateLimited)
	}
	if !errors.Is(we, client.ErrRateLimited) {
		t.Errorf("decoded error is not ErrRateLimited")
	}
	if v := srv.Registry().Counter("service.admission.ratelimited").Value(); v != 1 {
		t.Errorf("service.admission.ratelimited = %v, want 1", v)
	}
	// 1.5 simulated seconds later a token has accrued: admitted again.
	offsetMs.Store(1500)
	resp, data = submit(t, hs.URL, testPlanBody(1), true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-refill submit: status %d: %s", resp.StatusCode, data)
	}
}

// TestQueueFullShedsWithRetryAfter proves the overload path end to end: a
// shed submission gets 503 + Retry-After derived from queue depth, the shed
// job vanishes from the store (no resurrection on restart) and the listing,
// and the shed/admitted counters surface on /metrics.
func TestQueueFullShedsWithRetryAfter(t *testing.T) {
	dir := t.TempDir()
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	srv, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 1, StoreDir: dir}, func(context.Context, client.SubmitRequest) (json.RawMessage, error) {
		entered <- struct{}{}
		<-release
		return stubResult(), nil
	})
	defer close(release)

	// Occupy the worker, then fill the 1-deep queue.
	if resp, data := submit(t, hs.URL, testPlanBody(0), false); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d: %s", resp.StatusCode, data)
	}
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("first job never reached the engine")
	}
	if resp, data := submit(t, hs.URL, testPlanBody(1), false); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: status %d: %s", resp.StatusCode, data)
	}

	// Third sheds: QueueWait is 0, so immediately, with Retry-After =
	// (depth 1 + workers 1) / workers 1 = 2 seconds of drain estimate.
	resp, data := submit(t, hs.URL, testPlanBody(2), false)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed submit: status %d, want 503: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", got)
	}
	if !errors.Is(decodeWireError(t, data), client.ErrUnavailable) {
		t.Errorf("shed error is not ErrUnavailable")
	}

	// The shed job must not linger anywhere: not fetchable, not on disk.
	if resp, _ := http.Get(hs.URL + "/v1/jobs/job-00000003"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("shed job still fetchable: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if _, err := os.Stat(filepath.Join(dir, "job-00000003.json")); !os.IsNotExist(err) {
		t.Errorf("shed job still on disk: %v", err)
	}

	if v := srv.Registry().Counter("service.admission.shed").Value(); v != 1 {
		t.Errorf("service.admission.shed = %v, want 1", v)
	}
	if v := srv.Registry().Counter("service.admission.admitted").Value(); v != 2 {
		t.Errorf("service.admission.admitted = %v, want 2", v)
	}

	// The counters surface on the exposition endpoint.
	mresp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"service_admission_shed_total 1", "service_admission_admitted_total 2", "service_queue_depth"} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("/metrics is missing %q", want)
		}
	}
}

// TestQueueWaitAdmitsWhenSlotFrees proves a QueueWait-configured daemon holds
// a submission at the door instead of shedding instantly, and admits it the
// moment the queue drains.
func TestQueueWaitAdmitsWhenSlotFrees(t *testing.T) {
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	srv, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 1, QueueWait: 30 * time.Second}, func(context.Context, client.SubmitRequest) (json.RawMessage, error) {
		entered <- struct{}{}
		<-release
		return stubResult(), nil
	})

	if resp, data := submit(t, hs.URL, testPlanBody(0), false); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d: %s", resp.StatusCode, data)
	}
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("first job never reached the engine")
	}
	if resp, data := submit(t, hs.URL, testPlanBody(1), false); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: status %d: %s", resp.StatusCode, data)
	}

	// The third submission blocks in admission; freeing the engine lets the
	// worker drain the queue, which admits it within the QueueWait budget.
	type result struct {
		code int
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, _, err := trySubmit(testPlanBody(2), hs.URL, false)
		if err != nil {
			got <- result{err: err}
			return
		}
		got <- result{code: resp.StatusCode}
	}()
	select {
	case r := <-got:
		t.Fatalf("queued submission returned early: %+v", r)
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	select {
	case r := <-got:
		if r.err != nil {
			t.Fatalf("queued submission: %v", r.err)
		}
		// 202 if the snapshot catches it pending, 200 if the freed worker
		// already finished it — both mean admitted, not shed.
		if r.code != http.StatusAccepted && r.code != http.StatusOK {
			t.Fatalf("queued submission: status %d, want 202 or 200", r.code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("queued submission never admitted")
	}
	if v := srv.Registry().Counter("service.admission.shed").Value(); v != 0 {
		t.Errorf("service.admission.shed = %v, want 0", v)
	}
}

// TestDrainingRetryAfter proves a draining daemon's 503 carries Retry-After
// so clients back off toward its replacement.
func TestDrainingRetryAfter(t *testing.T) {
	srv, hs := newTestServer(t, Config{}, func(context.Context, client.SubmitRequest) (json.RawMessage, error) {
		return stubResult(), nil
	})
	srv.mu.Lock()
	srv.closed = true
	srv.mu.Unlock()
	resp, data := submit(t, hs.URL, testPlanBody(0), false)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: status %d, want 503: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", got)
	}
	srv.mu.Lock()
	srv.closed = false
	srv.mu.Unlock()
}

// TestDeadlinePropagation pins the deadline header contract: malformed
// values reject with 400 before a job exists, a deadline that lapses while
// the job queues fails typed as 504 without running the engine, and a live
// deadline bounds the engine context.
func TestDeadlinePropagation(t *testing.T) {
	t.Run("malformed", func(t *testing.T) {
		_, hs := newTestServer(t, Config{}, func(context.Context, client.SubmitRequest) (json.RawMessage, error) {
			return stubResult(), nil
		})
		for _, bad := range []string{"banana", "-5", "0", "1.5"} {
			resp, data := submitWithDeadline(t, hs.URL, testPlanBody(0), bad, false)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("deadline %q: status %d, want 400: %s", bad, resp.StatusCode, data)
				continue
			}
			if we := decodeWireError(t, data); !errors.Is(we, autopipe.ErrBadConfig) {
				t.Errorf("deadline %q: error %v is not ErrBadConfig", bad, we)
			}
		}
	})

	t.Run("lapses in queue", func(t *testing.T) {
		entered := make(chan struct{}, 4)
		release := make(chan struct{})
		var engineRuns atomic.Int64
		srv, hs := newTestServer(t, Config{Workers: 1}, func(_ context.Context, req client.SubmitRequest) (json.RawMessage, error) {
			if req.Plan.Run.GlobalBatch == testPlanBody(0).Plan.Run.GlobalBatch {
				entered <- struct{}{}
				<-release
			} else {
				engineRuns.Add(1)
			}
			return stubResult(), nil
		})

		// Occupy the only worker, then queue a job whose 1ms budget lapses
		// while it waits.
		if resp, data := submit(t, hs.URL, testPlanBody(0), false); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("blocker submit: status %d: %s", resp.StatusCode, data)
		}
		select {
		case <-entered:
		case <-time.After(10 * time.Second):
			t.Fatal("blocker never reached the engine")
		}
		type result struct {
			code int
			data []byte
			err  error
		}
		got := make(chan result, 1)
		go func() {
			body, err := json.Marshal(testPlanBody(1))
			if err != nil {
				got <- result{err: err}
				return
			}
			hreq, err := http.NewRequest(http.MethodPost, hs.URL+"/v1/jobs?wait=1", bytes.NewReader(body))
			if err != nil {
				got <- result{err: err}
				return
			}
			hreq.Header.Set("Content-Type", "application/json")
			hreq.Header.Set(client.DeadlineHeader, "1")
			resp, err := http.DefaultClient.Do(hreq)
			if err != nil {
				got <- result{err: err}
				return
			}
			defer resp.Body.Close()
			data, err := io.ReadAll(resp.Body)
			got <- result{code: resp.StatusCode, data: data, err: err}
		}()
		time.Sleep(50 * time.Millisecond) // let the 1ms budget lapse while queued
		close(release)
		r := <-got
		if r.err != nil {
			t.Fatalf("deadlined submit: %v", r.err)
		}
		if r.code != http.StatusGatewayTimeout {
			t.Fatalf("deadlined submit: status %d, want 504: %s", r.code, r.data)
		}
		var doc struct {
			Error *client.Error `json:"error"`
		}
		if err := json.Unmarshal(r.data, &doc); err != nil || doc.Error == nil {
			t.Fatalf("response is not an error envelope: %s", r.data)
		}
		if !errors.Is(doc.Error, context.DeadlineExceeded) {
			t.Errorf("error %v is not DeadlineExceeded", doc.Error)
		}
		if n := engineRuns.Load(); n != 0 {
			t.Errorf("engine ran %d times for a lapsed-deadline job, want 0", n)
		}
		if v := srv.Registry().Counter("service.deadline.expired").Value(); v != 1 {
			t.Errorf("service.deadline.expired = %v, want 1", v)
		}
	})

	t.Run("bounds engine context", func(t *testing.T) {
		_, hs := newTestServer(t, Config{}, func(ctx context.Context, _ client.SubmitRequest) (json.RawMessage, error) {
			<-ctx.Done() // only a propagated deadline can release this
			return nil, ctx.Err()
		})
		resp, data := submitWithDeadline(t, hs.URL, testPlanBody(0), "250", true)
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("status = %d, want 504: %s", resp.StatusCode, data)
		}
		if we := decodeWireError(t, data); !errors.Is(we, context.DeadlineExceeded) {
			t.Errorf("error %v is not DeadlineExceeded", we)
		}
	})
}

// TestBootWithDamagedStore proves the truncated-store-file boot: a daemon
// restarted over a store holding one intact finished job and two damaged
// files quarantines the damage, still re-seeds the cache from the intact
// result, and reports the quarantine count on its registry.
func TestBootWithDamagedStore(t *testing.T) {
	dir := t.TempDir()
	srv1, err := New(Config{StoreDir: dir})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv1.engine = func(context.Context, client.SubmitRequest) (json.RawMessage, error) {
		return stubResult(), nil
	}
	srv1.Start()
	hs1 := httptest.NewServer(srv1.Handler())
	if resp, data := submit(t, hs1.URL, testPlanBody(0), true); resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
	}
	hs1.Close()
	srv1.Close()

	// Crash damage: truncate a copy of the good document mid-file and drop a
	// torn .tmp next to it.
	good, err := os.ReadFile(filepath.Join(dir, "job-00000001.json"))
	if err != nil {
		t.Fatalf("read stored job: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "job-00000002.json"), good[:len(good)/2], 0o644); err != nil {
		t.Fatalf("write truncated file: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "job-00000003.json.tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatalf("write torn tmp: %v", err)
	}

	var searches atomic.Int64
	srv2, hs2 := newTestServer(t, Config{StoreDir: dir}, func(context.Context, client.SubmitRequest) (json.RawMessage, error) {
		searches.Add(1)
		return stubResult(), nil
	})
	if v := srv2.Registry().Counter("service.store.quarantined").Value(); v != 2 {
		t.Errorf("service.store.quarantined = %v, want 2", v)
	}
	resp, data := submit(t, hs2.URL, testPlanBody(0), true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-boot submit: status %d: %s", resp.StatusCode, data)
	}
	var hit client.Job
	if err := json.Unmarshal(data, &hit); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !hit.CacheHit {
		t.Errorf("intact result did not re-seed the cache after a damaged boot")
	}
	if searches.Load() != 0 {
		t.Errorf("engine ran %d times, want 0 (cache should have served)", searches.Load())
	}
}

// TestStoreResume proves the daemon is restart-resumable: a job interrupted
// before running is re-enqueued and finished by the next daemon, and finished
// results replayed from the store re-seed the cache.
func TestStoreResume(t *testing.T) {
	dir := t.TempDir()

	// Daemon 1: accept a job but never start workers, so it stays pending on
	// disk — the restart-during-queue scenario.
	srv1, err := New(Config{StoreDir: dir})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs1 := httptest.NewServer(srv1.Handler())
	resp, data := submit(t, hs1.URL, testPlanBody(0), false)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
	}
	var pending client.Job
	if err := json.Unmarshal(data, &pending); err != nil {
		t.Fatalf("decode pending job: %v", err)
	}
	hs1.Close()
	srv1.Close()

	// Daemon 2 replays the store: the pending job must be re-enqueued, run,
	// and become fetchable as done.
	var searches atomic.Int64
	srv2, hs2 := newTestServer(t, Config{StoreDir: dir}, func(context.Context, client.SubmitRequest) (json.RawMessage, error) {
		searches.Add(1)
		return stubResult(), nil
	})
	if v := srv2.Registry().Counter("service.jobs.resumed").Value(); v != 1 {
		t.Fatalf("service.jobs.resumed = %v, want 1", v)
	}
	resp2, err := http.Get(hs2.URL + "/v1/jobs/" + pending.ID + "?wait=1")
	if err != nil {
		t.Fatalf("GET resumed job: %v", err)
	}
	data2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resumed job: status %d: %s", resp2.StatusCode, data2)
	}
	var done client.Job
	if err := json.Unmarshal(data2, &done); err != nil {
		t.Fatalf("decode resumed job: %v", err)
	}
	if done.State != client.StateDone {
		t.Fatalf("resumed job state = %q, want done", done.State)
	}
	if searches.Load() != 1 {
		t.Fatalf("resumed job ran the engine %d times, want 1", searches.Load())
	}
	hs2URL := hs2.URL

	// An identical submit on daemon 2 now hits the cache (no new search).
	resp3, data3 := submit(t, hs2URL, testPlanBody(0), true)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("post-resume submit: status %d: %s", resp3.StatusCode, data3)
	}
	var hit client.Job
	if err := json.Unmarshal(data3, &hit); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !hit.CacheHit {
		t.Errorf("post-resume identical submit was not a cache hit")
	}
	if searches.Load() != 1 {
		t.Errorf("post-resume submit ran the engine (total %d searches, want 1)", searches.Load())
	}

	// Daemon 3 replays a store whose jobs are all terminal: nothing resumes,
	// but the finished result re-seeds the cache from disk alone.
	var searches3 atomic.Int64
	srv3, hs3 := newTestServer(t, Config{StoreDir: dir}, func(context.Context, client.SubmitRequest) (json.RawMessage, error) {
		searches3.Add(1)
		return stubResult(), nil
	})
	if v := srv3.Registry().Counter("service.jobs.resumed").Value(); v != 0 {
		t.Fatalf("daemon 3 resumed %v jobs, want 0", v)
	}
	resp4, data4 := submit(t, hs3.URL, testPlanBody(0), true)
	if resp4.StatusCode != http.StatusOK {
		t.Fatalf("cold-cache submit: status %d: %s", resp4.StatusCode, data4)
	}
	var hit3 client.Job
	if err := json.Unmarshal(data4, &hit3); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !hit3.CacheHit {
		t.Errorf("replayed store did not re-seed the cache")
	}
	if searches3.Load() != 0 {
		t.Errorf("daemon 3 ran %d searches, want 0", searches3.Load())
	}
}

// TestListJobs proves GET /v1/jobs returns submissions oldest first.
func TestListJobs(t *testing.T) {
	_, hs := newTestServer(t, Config{}, func(context.Context, client.SubmitRequest) (json.RawMessage, error) {
		return stubResult(), nil
	})
	for i := 0; i < 3; i++ {
		resp, data := submit(t, hs.URL, testPlanBody(i), true)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submit %d: status %d: %s", i, resp.StatusCode, data)
		}
	}
	resp, err := http.Get(hs.URL + "/v1/jobs")
	if err != nil {
		t.Fatalf("GET /v1/jobs: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var jobs []client.Job
	if err := json.Unmarshal(data, &jobs); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	if len(jobs) != 3 {
		t.Fatalf("listed %d jobs, want 3", len(jobs))
	}
	for i := 1; i < len(jobs); i++ {
		if jobs[i-1].ID >= jobs[i].ID {
			t.Errorf("jobs out of order: %q before %q", jobs[i-1].ID, jobs[i].ID)
		}
	}
}

// TestMetricsAndPprofMounted proves the observability endpoints are wired:
// /metrics serves the Prometheus exposition including service counters, and
// /debug/pprof answers.
func TestMetricsAndPprofMounted(t *testing.T) {
	_, hs := newTestServer(t, Config{}, func(context.Context, client.SubmitRequest) (json.RawMessage, error) {
		return stubResult(), nil
	})
	if resp, data := submit(t, hs.URL, testPlanBody(0), true); resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
	}

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	for _, want := range []string{"service_jobs_submitted_total", "service_engine_searches_total", "service_http_requests_total"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics is missing %s", want)
		}
	}

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d, want 200", path, resp.StatusCode)
		}
	}
	if resp, _ := http.Get(hs.URL + "/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz: status %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}

// TestRealEngineEndToEnd runs one plan through the actual planning engine —
// the only test here that does — proving the daemon's wiring against the real
// Planner and that the remote spec matches an in-process plan byte for byte.
func TestRealEngineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real engine search in -short mode")
	}
	_, hs := newTestServer(t, Config{}, nil) // nil = real engine

	c, err := client.New(hs.URL)
	if err != nil {
		t.Fatalf("client.New: %v", err)
	}
	model, cluster := autopipe.GPT2_345M(), autopipe.DefaultCluster()
	cluster.NumGPUs = 4
	run := autopipe.Run{MicroBatch: 4, GlobalBatch: 128, Checkpoint: true}

	remote, _, err := c.Plan(context.Background(), model, run, cluster)
	if err != nil {
		t.Fatalf("remote plan: %v", err)
	}
	local, _, err := autopipe.NewPlanner().Plan(context.Background(), model, run, cluster)
	if err != nil {
		t.Fatalf("local plan: %v", err)
	}
	if remote.Depth() != local.Depth() || remote.NumSliced != local.NumSliced ||
		remote.Predicted != local.Predicted ||
		fmt.Sprint(remote.Partition.Bounds) != fmt.Sprint(local.Partition.Bounds) {
		t.Errorf("remote plan differs from in-process plan:\nremote %+v\nlocal  %+v", remote, local)
	}

	// The analytic simulate and slice kinds round-trip too.
	prof := autopipe.StageProfile{Fwd: []float64{2, 1, 1, 1}, Bwd: []float64{4, 2, 2, 2}, Comm: 0.1, Micro: 8}
	simRemote, err := c.Simulate(context.Background(), prof)
	if err != nil {
		t.Fatalf("remote simulate: %v", err)
	}
	simLocal, err := autopipe.SimulateProfile(prof)
	if err != nil {
		t.Fatalf("local simulate: %v", err)
	}
	if simRemote.IterTime != simLocal.IterTime || simRemote.Master != simLocal.Master {
		t.Errorf("remote simulate %+v differs from local %+v", simRemote, simLocal)
	}
	sliceRemote, err := c.Slice(context.Background(), prof)
	if err != nil {
		t.Fatalf("remote slice: %v", err)
	}
	sliceLocal, err := autopipe.SliceProfile(prof)
	if err != nil {
		t.Fatalf("local slice: %v", err)
	}
	if sliceRemote.NumSliced != sliceLocal.NumSliced {
		t.Errorf("remote slice NumSliced = %d, local %d", sliceRemote.NumSliced, sliceLocal.NumSliced)
	}
}
