package service

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"autopipe"
	"autopipe/client"
	"autopipe/internal/bench"
	"autopipe/internal/errdefs"
)

// LoadgenOptions configures a load-generation run against a daemon.
type LoadgenOptions struct {
	// Requests is the total number of plan requests to issue (default 200).
	Requests int
	// Concurrency is the number of client workers (default 8).
	Concurrency int
	// Distinct is the number of distinct plan configurations cycled through
	// (default 4): the first Distinct requests each cost one engine search,
	// the remainder hit the cache or coalesce in flight, which is the
	// traffic shape the daemon exists for.
	Distinct int
	// Progress, when non-nil, receives a line at start and end.
	Progress io.Writer
}

// LoadgenReport is what a load run measures: throughput, the latency
// distribution, and how much of the traffic the cache absorbed.
type LoadgenReport struct {
	Requests    int
	Errors      int
	Elapsed     time.Duration
	QPS         float64
	P50, P95    time.Duration
	P99, Max    time.Duration
	CacheHits   int
	Shared      int
	Searches    int
	Distinct    int
	Concurrency int
}

// CacheHitRatio is the fraction of successful requests served from the
// content-addressed cache (in-flight singleflight shares count separately).
func (r *LoadgenReport) CacheHitRatio() float64 {
	if n := r.Requests - r.Errors; n > 0 {
		return float64(r.CacheHits) / float64(n)
	}
	return 0
}

// Format renders the human report.
func (r *LoadgenReport) Format(w io.Writer) {
	fmt.Fprintf(w, "loadgen: %d requests, concurrency %d, %d distinct configs\n", r.Requests, r.Concurrency, r.Distinct)
	fmt.Fprintf(w, "  elapsed        %v\n", r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "  throughput     %.1f req/s\n", r.QPS)
	fmt.Fprintf(w, "  latency        p50 %v  p95 %v  p99 %v  max %v\n",
		r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond),
		r.P99.Round(time.Microsecond), r.Max.Round(time.Microsecond))
	fmt.Fprintf(w, "  cache          %d hits (%.1f%% of traffic), %d singleflight-shared, %d engine searches\n",
		r.CacheHits, 100*r.CacheHitRatio(), r.Shared, r.Searches)
	if r.Errors > 0 {
		fmt.Fprintf(w, "  errors         %d\n", r.Errors)
	}
}

// Loadgen hammers the daemon at target with identical-heavy plan traffic and
// measures QPS, latency percentiles, and the cache-hit ratio. The target
// must be a reachable autopiped base URL.
func Loadgen(ctx context.Context, target string, opts LoadgenOptions) (*LoadgenReport, error) {
	if opts.Requests <= 0 {
		opts.Requests = 200
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 8
	}
	if opts.Distinct <= 0 {
		opts.Distinct = 4
	}
	if opts.Distinct > opts.Requests {
		opts.Distinct = opts.Requests
	}
	c, err := client.New(target, client.WithRetries(2))
	if err != nil {
		return nil, err
	}
	configs := loadgenConfigs(opts.Distinct)

	if opts.Progress != nil {
		fmt.Fprintf(opts.Progress, "loadgen: %d plan requests against %s...\n", opts.Requests, target)
	}

	type sample struct {
		d   time.Duration
		hit bool
		shr bool
		err error
	}
	samples := make([]sample, opts.Requests)
	next := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				pc := configs[i%len(configs)]
				t0 := time.Now()
				_, jobDoc, err := c.Plan(ctx, pc.model, pc.run, pc.cluster)
				s := sample{d: time.Since(t0), err: err}
				if jobDoc != nil {
					s.hit = jobDoc.CacheHit
					s.shr = jobDoc.Shared
				}
				samples[i] = s
			}
		}()
	}
	for i := 0; i < opts.Requests; i++ {
		select {
		case <-ctx.Done():
			close(next)
			wg.Wait()
			return nil, fmt.Errorf("service: loadgen canceled: %w", ctx.Err())
		case next <- i:
		}
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(start)

	rep := &LoadgenReport{
		Requests:    opts.Requests,
		Elapsed:     elapsed,
		Distinct:    opts.Distinct,
		Concurrency: opts.Concurrency,
	}
	var lats []time.Duration
	for _, s := range samples {
		if s.err != nil {
			rep.Errors++
			continue
		}
		lats = append(lats, s.d)
		if s.hit {
			rep.CacheHits++
		}
		if s.shr {
			rep.Shared++
		}
	}
	if len(lats) == 0 {
		firstErr := samples[0].err
		return nil, fmt.Errorf("service: loadgen: every request failed (first: %w)", firstErr)
	}
	sort.Slice(lats, func(i, k int) bool { return lats[i] < lats[k] })
	rep.QPS = float64(len(lats)) / elapsed.Seconds()
	rep.P50 = lats[len(lats)*50/100]
	rep.P95 = lats[len(lats)*95/100-boundAdjust(len(lats), 95)]
	rep.P99 = lats[len(lats)*99/100-boundAdjust(len(lats), 99)]
	rep.Max = lats[len(lats)-1]

	// The daemon's own counters give the ground truth on engine work.
	if metrics, err := c.Metrics(ctx); err == nil {
		rep.Searches = int(promCounter(metrics, "service_engine_searches_total"))
	}
	if opts.Progress != nil {
		rep.Format(opts.Progress)
	}
	return rep, nil
}

// boundAdjust keeps the percentile index in range for small sample counts.
func boundAdjust(n, pct int) int {
	if n*pct/100 >= n {
		return n*pct/100 - (n - 1)
	}
	return 0
}

// loadgenConfig is one distinct planning request in the traffic mix.
type loadgenConfig struct {
	model   autopipe.Model
	run     autopipe.Run
	cluster autopipe.Cluster
}

// loadgenConfigs builds n distinct (model, run, cluster) triples. They vary
// the GPU count and global batch so each is a genuinely different search,
// while staying small enough that a search takes milliseconds, not minutes.
func loadgenConfigs(n int) []loadgenConfig {
	zoo := []autopipe.Model{autopipe.GPT2_345M(), autopipe.BERTLarge()}
	out := make([]loadgenConfig, n)
	for i := range out {
		cluster := autopipe.DefaultCluster()
		cluster.NumGPUs = 4 + 4*(i%2)
		out[i] = loadgenConfig{
			model:   zoo[i%len(zoo)],
			run:     autopipe.Run{MicroBatch: 8, GlobalBatch: 256 << (i % 3), Checkpoint: true},
			cluster: cluster,
		}
	}
	return out
}

// ToBaseline renders the report as a BENCH_<label>.json baseline so the
// service numbers ride the same compare/lint pipeline as the engine
// benchmarks: mean latency as nsPerOp, with throughput and cache-hit ratio
// as gated custom metrics and the tail latencies as informational anchors.
func (r *LoadgenReport) ToBaseline(label string) (*bench.Baseline, error) {
	ok := r.Requests - r.Errors
	if ok <= 0 {
		return nil, fmt.Errorf("%w: service: loadgen report has no successful requests", errdefs.ErrBadConfig)
	}
	mean := float64(r.Elapsed.Nanoseconds()) * float64(r.Concurrency) / float64(ok)
	b := &bench.Baseline{
		Label:     label,
		Suite:     bench.SuiteID,
		GoVersion: runtime.Version(),
		Benchmarks: []bench.Entry{{
			Name:    "service/plan_roundtrip",
			Iters:   ok,
			NsPerOp: mean,
			Custom: map[string]float64{
				"requests_per_sec": r.QPS,
				"cache_hit_ratio":  r.CacheHitRatio(),
				"latency_p50_ns":   float64(r.P50.Nanoseconds()),
				"latency_p99_ns":   float64(r.P99.Nanoseconds()),
				"engine_searches":  float64(r.Searches),
			},
		}},
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}

// promCounter extracts a single sample value from a Prometheus text
// exposition (good enough for the loadgen's own counters, not a parser).
func promCounter(exposition, name string) float64 {
	for _, line := range splitLines(exposition) {
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		var metric string
		var v float64
		if n, err := fmt.Sscanf(line, "%s %g", &metric, &v); err == nil && n == 2 && metric == name {
			return v
		}
	}
	return 0
}

func splitLines(s string) []string {
	var out []string
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != '\n' {
			i++
		}
		out = append(out, s[:i])
		if i < len(s) {
			i++
		}
		s = s[i:]
	}
	return out
}
