package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"autopipe/client"
)

// TestStoreRoundTrip proves jobs persist and reload in submission order, and
// that rewriting a job replaces its document.
func TestStoreRoundTrip(t *testing.T) {
	st, err := openStore(t.TempDir())
	if err != nil {
		t.Fatalf("openStore: %v", err)
	}
	reqs := []client.SubmitRequest{testPlanBody(0), testPlanBody(1)}
	for i, req := range reqs {
		j := &client.Job{ID: jobID(i + 1), Kind: client.KindPlan, State: client.StatePending}
		if err := st.Put(j, req); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// Rewrite job 1 as done; the store must keep one document per job.
	done := &client.Job{ID: jobID(1), Kind: client.KindPlan, State: client.StateDone, Result: stubResult()}
	if err := st.Put(done, reqs[0]); err != nil {
		t.Fatalf("Put rewrite: %v", err)
	}

	jobs, quarantined, err := st.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(quarantined) != 0 {
		t.Errorf("quarantined %v from a healthy store", quarantined)
	}
	if len(jobs) != 2 {
		t.Fatalf("loaded %d jobs, want 2", len(jobs))
	}
	if jobs[0].Job.ID != jobID(1) || jobs[1].Job.ID != jobID(2) {
		t.Errorf("jobs out of order: %q, %q", jobs[0].Job.ID, jobs[1].Job.ID)
	}
	if jobs[0].Job.State != client.StateDone {
		t.Errorf("rewritten job did not persist: %+v", jobs[0].Job)
	}
	// The result survives as equivalent JSON (the store pretty-prints).
	var compact bytes.Buffer
	if err := json.Compact(&compact, jobs[0].Job.Result); err != nil {
		t.Fatalf("compact stored result: %v", err)
	}
	if compact.String() != string(stubResult()) {
		t.Errorf("stored result = %s, want %s", compact.String(), stubResult())
	}
	if jobs[1].Request.Plan == nil || jobs[1].Request.Plan.Run.GlobalBatch != reqs[1].Plan.Run.GlobalBatch {
		t.Errorf("request did not round-trip: %+v", jobs[1].Request)
	}
}

// TestStoreNil proves the nil store (memory-only mode) is a safe no-op.
func TestStoreNil(t *testing.T) {
	var st *diskStore
	if err := st.Put(&client.Job{ID: "job-00000001"}, client.SubmitRequest{}); err != nil {
		t.Errorf("nil Put: %v", err)
	}
	jobs, quarantined, err := st.Load()
	if err != nil || jobs != nil || quarantined != nil {
		t.Errorf("nil Load = %v, %v, %v; want nil, nil, nil", jobs, quarantined, err)
	}
	if st2, err := openStore(""); st2 != nil || err != nil {
		t.Errorf("openStore(\"\") = %v, %v; want nil, nil", st2, err)
	}
}

// TestStoreQuarantinesCorruptFiles proves damaged documents — a tail
// truncated mid-write, plain garbage, a parsable-but-empty document — are
// quarantined as .corrupt instead of failing the boot, while every intact
// job still loads. A second Load must skip the quarantined files entirely.
func TestStoreQuarantinesCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := openStore(dir)
	if err != nil {
		t.Fatalf("openStore: %v", err)
	}
	if err := st.Put(&client.Job{ID: jobID(1), Kind: client.KindPlan, State: client.StateDone, Result: stubResult()}, testPlanBody(0)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Truncate a real document mid-write: take a valid file and cut it in half.
	good, err := os.ReadFile(filepath.Join(dir, jobID(1)+".json"))
	if err != nil {
		t.Fatalf("read good doc: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, jobID(2)+".json"), good[:len(good)/2], 0o644); err != nil {
		t.Fatalf("write truncated file: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, jobID(3)+".json"), []byte("{not json"), 0o644); err != nil {
		t.Fatalf("write garbage file: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, jobID(4)+".json"), []byte("{}"), 0o644); err != nil {
		t.Fatalf("write empty doc: %v", err)
	}

	jobs, quarantined, err := st.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(jobs) != 1 || jobs[0].Job.ID != jobID(1) {
		t.Fatalf("loaded %d jobs (%v), want just the intact %s", len(jobs), jobs, jobID(1))
	}
	if len(quarantined) != 3 {
		t.Errorf("quarantined %v, want 3 damaged files", quarantined)
	}
	for _, n := range []int{2, 3, 4} {
		if _, err := os.Stat(filepath.Join(dir, jobID(n)+".json.corrupt")); err != nil {
			t.Errorf("damaged %s not renamed to .corrupt: %v", jobID(n), err)
		}
	}

	// A reboot after quarantine must not re-quarantine or resurrect anything.
	jobs, quarantined, err = st.Load()
	if err != nil {
		t.Fatalf("second Load: %v", err)
	}
	if len(jobs) != 1 || len(quarantined) != 0 {
		t.Errorf("second Load = %d jobs, quarantined %v; want 1 job, none quarantined", len(jobs), quarantined)
	}
}

// TestStoreQuarantinesTempFiles proves interrupted atomic writes (stray .tmp
// files) are quarantined without breaking the reload of intact jobs.
func TestStoreQuarantinesTempFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := openStore(dir)
	if err != nil {
		t.Fatalf("openStore: %v", err)
	}
	if err := st.Put(&client.Job{ID: jobID(1), Kind: client.KindPlan, State: client.StatePending}, testPlanBody(0)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "job-00000002.json.tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatalf("write temp file: %v", err)
	}
	jobs, quarantined, err := st.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(jobs) != 1 {
		t.Errorf("loaded %d jobs, want 1 (the .tmp file must not load)", len(jobs))
	}
	if len(quarantined) != 1 || quarantined[0] != "job-00000002.json.tmp" {
		t.Errorf("quarantined %v, want the torn .tmp", quarantined)
	}
	if _, err := os.Stat(filepath.Join(dir, "job-00000002.json.tmp.corrupt")); err != nil {
		t.Errorf("torn .tmp not renamed to .corrupt: %v", err)
	}
}

// TestStoreDelete proves Delete removes the document, tolerates missing
// files, and is safe on a nil store.
func TestStoreDelete(t *testing.T) {
	dir := t.TempDir()
	st, err := openStore(dir)
	if err != nil {
		t.Fatalf("openStore: %v", err)
	}
	if err := st.Put(&client.Job{ID: jobID(1), Kind: client.KindPlan, State: client.StatePending}, testPlanBody(0)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := st.Delete(jobID(1)); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	jobs, _, err := st.Load()
	if err != nil || len(jobs) != 0 {
		t.Errorf("Load after Delete = %d jobs, %v; want empty", len(jobs), err)
	}
	if err := st.Delete(jobID(1)); err != nil {
		t.Errorf("Delete of missing job: %v", err)
	}
	var nilStore *diskStore
	if err := nilStore.Delete(jobID(1)); err != nil {
		t.Errorf("nil Delete: %v", err)
	}
}

func jobID(n int) string { return fmt.Sprintf("job-%08d", n) }
