package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"autopipe/client"
	"autopipe/internal/errdefs"
)

// TestStoreRoundTrip proves jobs persist and reload in submission order, and
// that rewriting a job replaces its document.
func TestStoreRoundTrip(t *testing.T) {
	st, err := openStore(t.TempDir())
	if err != nil {
		t.Fatalf("openStore: %v", err)
	}
	reqs := []client.SubmitRequest{testPlanBody(0), testPlanBody(1)}
	for i, req := range reqs {
		j := &client.Job{ID: jobID(i + 1), Kind: client.KindPlan, State: client.StatePending}
		if err := st.Put(j, req); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// Rewrite job 1 as done; the store must keep one document per job.
	done := &client.Job{ID: jobID(1), Kind: client.KindPlan, State: client.StateDone, Result: stubResult()}
	if err := st.Put(done, reqs[0]); err != nil {
		t.Fatalf("Put rewrite: %v", err)
	}

	jobs, err := st.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(jobs) != 2 {
		t.Fatalf("loaded %d jobs, want 2", len(jobs))
	}
	if jobs[0].Job.ID != jobID(1) || jobs[1].Job.ID != jobID(2) {
		t.Errorf("jobs out of order: %q, %q", jobs[0].Job.ID, jobs[1].Job.ID)
	}
	if jobs[0].Job.State != client.StateDone {
		t.Errorf("rewritten job did not persist: %+v", jobs[0].Job)
	}
	// The result survives as equivalent JSON (the store pretty-prints).
	var compact bytes.Buffer
	if err := json.Compact(&compact, jobs[0].Job.Result); err != nil {
		t.Fatalf("compact stored result: %v", err)
	}
	if compact.String() != string(stubResult()) {
		t.Errorf("stored result = %s, want %s", compact.String(), stubResult())
	}
	if jobs[1].Request.Plan == nil || jobs[1].Request.Plan.Run.GlobalBatch != reqs[1].Plan.Run.GlobalBatch {
		t.Errorf("request did not round-trip: %+v", jobs[1].Request)
	}
}

// TestStoreNil proves the nil store (memory-only mode) is a safe no-op.
func TestStoreNil(t *testing.T) {
	var st *diskStore
	if err := st.Put(&client.Job{ID: "job-00000001"}, client.SubmitRequest{}); err != nil {
		t.Errorf("nil Put: %v", err)
	}
	jobs, err := st.Load()
	if err != nil || jobs != nil {
		t.Errorf("nil Load = %v, %v; want nil, nil", jobs, err)
	}
	if st2, err := openStore(""); st2 != nil || err != nil {
		t.Errorf("openStore(\"\") = %v, %v; want nil, nil", st2, err)
	}
}

// TestStoreCorrupt proves a corrupted store fails the load loudly instead of
// silently dropping jobs.
func TestStoreCorrupt(t *testing.T) {
	dir := t.TempDir()
	st, err := openStore(dir)
	if err != nil {
		t.Fatalf("openStore: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "job-00000001.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatalf("write corrupt file: %v", err)
	}
	if _, err := st.Load(); !errors.Is(err, errdefs.ErrBadConfig) {
		t.Errorf("Load over corrupt store = %v, want ErrBadConfig", err)
	}
}

// TestStoreIgnoresTempFiles proves interrupted atomic writes (stray .tmp
// files) do not break the reload.
func TestStoreIgnoresTempFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := openStore(dir)
	if err != nil {
		t.Fatalf("openStore: %v", err)
	}
	if err := st.Put(&client.Job{ID: jobID(1), Kind: client.KindPlan, State: client.StatePending}, testPlanBody(0)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "job-00000002.json.tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatalf("write temp file: %v", err)
	}
	jobs, err := st.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(jobs) != 1 {
		t.Errorf("loaded %d jobs, want 1 (the .tmp file must be skipped)", len(jobs))
	}
}

func jobID(n int) string { return fmt.Sprintf("job-%08d", n) }
