package service

import (
	"sync"
	"time"
)

// tokenBucket is the daemon's admission rate limiter: a classic token bucket
// refilled continuously at rate tokens/sec up to burst. A nil bucket admits
// everything — rate limiting is opt-in (Config.RateLimit).
//
// The clock is a field so tests drive admission decisions deterministically;
// production buckets use time.Now.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
	now    func() time.Time
}

// newTokenBucket builds a bucket admitting rate requests/sec with the given
// burst (<= 0 defaults to max(1, rate)). A rate <= 0 returns nil: unlimited.
func newTokenBucket(rate float64, burst int) *tokenBucket {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if b <= 0 {
		b = rate
		if b < 1 {
			b = 1
		}
	}
	tb := &tokenBucket{rate: rate, burst: b, tokens: b, now: time.Now}
	tb.last = tb.now()
	return tb
}

// take consumes one token if available. When the bucket is empty it returns
// false and the wait until the next token accrues — the Retry-After the
// daemon sends with its 429.
func (b *tokenBucket) take() (ok bool, wait time.Duration) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / b.rate
	return false, time.Duration(need * float64(time.Second))
}

// retryAfterSeconds derives the Retry-After the daemon advertises when it
// sheds load: the queue backlog divided by the worker pool's drain rate,
// assuming roughly one second per job when nothing better is known. The
// value is clamped to [1, 60] — an integer of delay-seconds, never zero (a
// zero would tell clients to hammer a daemon that just declared overload).
func retryAfterSeconds(queueDepth, workers int) int {
	if workers < 1 {
		workers = 1
	}
	secs := (queueDepth + workers) / workers // ceil-ish: ≥ 1 whenever depth ≥ 0
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// ceilSeconds rounds a wait up to whole delay-seconds for the Retry-After
// header, never below 1.
func ceilSeconds(d time.Duration) int {
	if d <= 0 {
		return 1
	}
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}
