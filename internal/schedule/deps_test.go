package schedule

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"autopipe/internal/errdefs"
)

func loadGolden(t *testing.T, name string) *Schedule {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "schedules", name))
	if err != nil {
		t.Fatal(err)
	}
	s, err := ParseJSON(data)
	if err != nil {
		t.Fatalf("golden %s does not parse: %v", name, err)
	}
	return s
}

// findOp returns the device/index of the first op matching the predicate.
func findOp(t *testing.T, s *Schedule, match func(Op) bool) (int, int) {
	t.Helper()
	for d, ops := range s.Ops {
		for i, op := range ops {
			if match(op) {
				return d, i
			}
		}
	}
	t.Fatal("no op matches predicate")
	return 0, 0
}

// TestDependenciesMirrorsCheckDeadlock pins the refactor invariant: the
// exported dependency model and CheckDeadlock are the same code path, so a
// schedule is acyclic exactly when its graph is.
func TestDependenciesMirrorsCheckDeadlock(t *testing.T) {
	for _, name := range []string{"1f1b_p4_m8.json", "sliced_p4_m8_s2.json", "interleaved_p4_m8_v2.json"} {
		s := loadGolden(t, name)
		g, err := s.Dependencies()
		if err != nil {
			t.Fatalf("%s: Dependencies: %v", name, err)
		}
		if err := g.Acyclic(); err != nil {
			t.Errorf("%s: golden should be acyclic: %v", name, err)
		}
		if err := s.CheckDeadlock(); err != nil {
			t.Errorf("%s: CheckDeadlock disagrees with Acyclic: %v", name, err)
		}
		total := 0
		for _, ops := range s.Ops {
			total += len(ops)
		}
		if g.NumOps() != total {
			t.Errorf("%s: graph has %d ops, schedule has %d", name, g.NumOps(), total)
		}
		// ID/Ref round-trip over every op.
		for d := range s.Ops {
			for i := range s.Ops[d] {
				ref := OpRef{d, i}
				if got := g.Ref(g.ID(ref)); got != ref {
					t.Fatalf("%s: ID/Ref round-trip: %v -> %v", name, ref, got)
				}
			}
		}
	}
}

// TestDepGraphEdges spot-checks the dependency edges the runtime sanitizer
// replays: cross-stage activation flow, the backward stash, and the NoSend
// redirect onto the aggregating sibling.
func TestDepGraphEdges(t *testing.T) {
	s := loadGolden(t, "sliced_p4_m8_s2.json")
	g, err := s.Dependencies()
	if err != nil {
		t.Fatal(err)
	}
	// A downstream forward consuming a NoSend half must depend on the
	// AggSend sibling, never on the NoSend op itself (the payload travels
	// with the aggregated send). Same-stage stash edges are exempt: a
	// backward's stash dependency is compute, not a message.
	for id := 0; id < g.NumOps(); id++ {
		op := g.Op(id)
		if op.Kind != Fwd {
			continue
		}
		for _, p := range g.DataPreds(id) {
			if g.Op(p).NoSend {
				t.Errorf("forward %v depends on NoSend producer %v; the edge must redirect to the AggSend sibling",
					op, g.Op(p))
			}
		}
	}
	// A backward always carries its own stage's forward stash dependency.
	d, i := findOp(t, s, func(op Op) bool { return op.Kind == Bwd && op.Virt == 2 })
	bwd := g.ID(OpRef{d, i})
	stash := false
	for _, p := range g.DataPreds(bwd) {
		pOp := g.Op(p)
		if pOp.Kind == Fwd && pOp.Virt == 2 && pOp.Micro == g.Op(bwd).Micro {
			stash = true
		}
	}
	if !stash {
		t.Errorf("backward %v has no forward-stash dependency: preds %v", g.Op(bwd), g.DataPreds(bwd))
	}
}

// TestCheckDeadlockGoldenRedirects exercises the static deadlock check
// against the checked-in interleaved and sliced goldens under mutated
// NoSend/AggSend redirects — the schedule surface the fault-plan recovery
// paths rewrite. Each mutation must be classified with a typed error, never
// accepted and never an untyped failure.
func TestCheckDeadlockGoldenRedirects(t *testing.T) {
	t.Run("sliced/orphan-nosend", func(t *testing.T) {
		// Stripping AggSend from the sibling leaves the NoSend half's payload
		// with no carrier: structurally broken, ErrBadConfig.
		s := loadGolden(t, "sliced_p4_m8_s2.json")
		d, i := findOp(t, s, func(op Op) bool { return op.AggSend })
		s.Ops[d][i].AggSend = false
		if err := s.CheckDeadlock(); !errors.Is(err, errdefs.ErrBadConfig) {
			t.Errorf("orphaned NoSend half: got %v, want ErrBadConfig", err)
		}
	})

	t.Run("sliced/nosend-both-halves", func(t *testing.T) {
		// Marking the AggSend op NoSend as well parks both halves forever.
		s := loadGolden(t, "sliced_p4_m8_s2.json")
		d, i := findOp(t, s, func(op Op) bool { return op.AggSend })
		s.Ops[d][i].AggSend = false
		s.Ops[d][i].NoSend = true
		if err := s.CheckDeadlock(); !errors.Is(err, errdefs.ErrBadConfig) {
			t.Errorf("NoSend pair with no carrier: got %v, want ErrBadConfig", err)
		}
	})

	t.Run("sliced/redirect-cycle", func(t *testing.T) {
		// Redirecting a warmup half's payload onto a sibling that issues
		// AFTER the downstream consumer's device needs it creates a cycle:
		// move the aggregated send behind the backward that (transitively)
		// needs its activation. We synthesize this by swapping the AggSend
		// onto the *first* half and NoSend onto the second, then moving the
		// pair's aggregated carrier to the end of the device's issue order.
		s := loadGolden(t, "sliced_p4_m8_s2.json")
		d, i := findOp(t, s, func(op Op) bool { return op.AggSend })
		ops := s.Ops[d]
		agg := ops[i]
		copy(ops[i:], ops[i+1:])
		ops[len(ops)-1] = agg
		err := s.CheckDeadlock()
		if !errors.Is(err, errdefs.ErrDeadlock) {
			t.Errorf("carrier issued after its consumers: got %v, want ErrDeadlock", err)
		}
	})

	t.Run("interleaved/clean", func(t *testing.T) {
		s := loadGolden(t, "interleaved_p4_m8_v2.json")
		if err := s.CheckDeadlock(); err != nil {
			t.Fatalf("interleaved golden: %v", err)
		}
	})

	t.Run("interleaved/nosend-without-slicing", func(t *testing.T) {
		// NoSend on an unsliced interleaved forward has no sibling at all.
		s := loadGolden(t, "interleaved_p4_m8_v2.json")
		d, i := findOp(t, s, func(op Op) bool { return op.Kind == Fwd && op.Virt == 1 })
		s.Ops[d][i].NoSend = true
		if err := s.CheckDeadlock(); !errors.Is(err, errdefs.ErrBadConfig) {
			t.Errorf("interleaved NoSend with no sibling: got %v, want ErrBadConfig", err)
		}
	})

	t.Run("interleaved/swapped-issue-order", func(t *testing.T) {
		// Reversing one device's issue order makes its first op a backward
		// that needs a gradient that can never be produced: a cycle through
		// the issue-order edges.
		s := loadGolden(t, "interleaved_p4_m8_v2.json")
		ops := s.Ops[1]
		for a, b := 0, len(ops)-1; a < b; a, b = a+1, b-1 {
			ops[a], ops[b] = ops[b], ops[a]
		}
		if err := s.CheckDeadlock(); !errors.Is(err, errdefs.ErrDeadlock) {
			t.Errorf("reversed device issue order: got %v, want ErrDeadlock", err)
		}
	})
}
