package schedule

import (
	"bytes"
	"encoding/json"
	"fmt"

	"autopipe/internal/errdefs"
)

// This file defines the on-disk JSON form of a Schedule, so schedules can be
// checked in as testdata goldens and validated statically (the scheddata
// analyzer in internal/analysis) instead of only by running the executor.
//
// The document mirrors the Schedule struct field-for-field; ops encode their
// kind as "F"/"B" and omit the -1 "full micro-batch" half, so a golden reads
// the way the String() rendering does.

type opDoc struct {
	Kind  string `json:"kind"`
	Virt  int    `json:"virt"`
	Micro int    `json:"micro"`
	// Half is 0 or 1 for a sliced forward half; absent means a full
	// micro-batch (Op.Half == -1).
	Half    *int `json:"half,omitempty"`
	NoSend  bool `json:"noSend,omitempty"`
	AggSend bool `json:"aggSend,omitempty"`
}

type scheduleDoc struct {
	Name       string    `json:"name"`
	Devices    int       `json:"devices"`
	VirtStages int       `json:"virtStages"`
	DeviceOf   []int     `json:"deviceOf"`
	NumMicro   int       `json:"numMicro"`
	Chunks     int       `json:"chunks,omitempty"`
	NumSliced  int       `json:"numSliced,omitempty"`
	Ops        [][]opDoc `json:"ops"`
}

// EncodeJSON renders the schedule as indented JSON, the golden format
// consumed by ParseJSON and the scheddata analyzer.
func EncodeJSON(s *Schedule) ([]byte, error) {
	doc := scheduleDoc{
		Name:       s.Name,
		Devices:    s.Devices,
		VirtStages: s.VirtStages,
		DeviceOf:   s.DeviceOf,
		NumMicro:   s.NumMicro,
		Chunks:     s.Chunks,
		NumSliced:  s.NumSliced,
		Ops:        make([][]opDoc, len(s.Ops)),
	}
	for d, ops := range s.Ops {
		doc.Ops[d] = make([]opDoc, len(ops))
		for i, op := range ops {
			od := opDoc{Kind: op.Kind.String(), Virt: op.Virt, Micro: op.Micro, NoSend: op.NoSend, AggSend: op.AggSend}
			if op.Half >= 0 {
				h := op.Half
				od.Half = &h
			}
			doc.Ops[d][i] = od
		}
	}
	return json.MarshalIndent(doc, "", "  ")
}

// ParseJSON decodes and validates a JSON-encoded schedule. Unknown fields,
// trailing data, malformed op kinds, and every structural violation
// Schedule.Validate catches (duplicate ops, dangling virtual-stage refs, bad
// micro-batch indices) are rejected with errors wrapping
// errdefs.ErrBadConfig.
func ParseJSON(data []byte) (*Schedule, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var doc scheduleDoc
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("%w: schedule: parse: %v", errdefs.ErrBadConfig, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("%w: schedule: trailing data after document", errdefs.ErrBadConfig)
	}
	s := &Schedule{
		Name:       doc.Name,
		Devices:    doc.Devices,
		VirtStages: doc.VirtStages,
		DeviceOf:   doc.DeviceOf,
		NumMicro:   doc.NumMicro,
		Chunks:     doc.Chunks,
		NumSliced:  doc.NumSliced,
		Ops:        make([][]Op, len(doc.Ops)),
	}
	if s.Chunks == 0 {
		s.Chunks = 1
	}
	for d, ops := range doc.Ops {
		s.Ops[d] = make([]Op, len(ops))
		for i, od := range ops {
			op := Op{Virt: od.Virt, Micro: od.Micro, Half: -1, NoSend: od.NoSend, AggSend: od.AggSend}
			switch od.Kind {
			case "F":
				op.Kind = Fwd
			case "B":
				op.Kind = Bwd
			default:
				return nil, fmt.Errorf("%w: schedule: device %d op %d: bad kind %q (want F or B)", errdefs.ErrBadConfig, d, i, od.Kind)
			}
			if od.Half != nil {
				if *od.Half != 0 && *od.Half != 1 {
					return nil, fmt.Errorf("%w: schedule: device %d op %d: bad half %d (want 0 or 1)", errdefs.ErrBadConfig, d, i, *od.Half)
				}
				op.Half = *od.Half
			}
			s.Ops[d][i] = op
		}
	}
	if len(s.Ops) != s.Devices {
		return nil, fmt.Errorf("%w: schedule %s: %d op lists for %d devices", errdefs.ErrBadConfig, s.Name, len(s.Ops), s.Devices)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", errdefs.ErrBadConfig, err)
	}
	return s, nil
}
