package schedule

import (
	"fmt"
	"strings"

	"autopipe/internal/errdefs"
)

// This file is the schedule dependency model: the single definition of "op A
// must complete before op B may start" that both enforcement tiers consume.
// The static tier (CheckDeadlock, run by the scheddata analyzer over every
// checked-in golden) topologically sorts the graph; the dynamic tier
// (exec.Sanitizer) replays an executed trace against the very same edges.
// Keeping one producer of edges means the Kahn check and the live
// happens-before check cannot drift: a schedule the linter accepts is
// validated op-for-op, against identical semantics, every time it runs.
//
// The edges mirror the discrete-event executor's blocking semantics:
//
//   - ops on one device run in issue order;
//   - a forward at virtual stage v > 0 needs the matching forward's output
//     from stage v-1 (both halves, when the producer is sliced and the
//     consumer is not); a NoSend producer satisfies nothing — its payload
//     arrives with the sibling half's aggregated send, so the edge redirects
//     to the AggSend sibling;
//   - a backward at stage v < V-1 needs the backward gradient from v+1;
//   - a backward needs its own stage's forward stash (every half present).

// OpRef names one op by position: index i in device d's issue order.
type OpRef struct {
	Device, Index int
}

// DepGraph is the dependency DAG of one schedule over flattened op ids
// (device-major issue order). Build it with Schedule.Dependencies.
type DepGraph struct {
	s *Schedule
	// base[d] is the flat id of device d's first op.
	base []int
	// all[id] and data[id] are views into one shared backing array (comb):
	// all[id] lists every id that must complete before id starts — the
	// same-device issue-order predecessor (if any) followed by the data
	// dependencies — and data[id] is the same view minus the issue-order
	// edge. Sharing one backing keeps Preds allocation-free, which the
	// sanitizer's per-op happens-before check (the executor's inner loop)
	// depends on.
	all   [][]int
	data  [][]int
	comb  []int
	total int
}

// ID flattens an op reference. The inverse is Ref.
func (g *DepGraph) ID(r OpRef) int { return g.base[r.Device] + r.Index }

// Ref unflattens an op id.
func (g *DepGraph) Ref(id int) OpRef {
	d := len(g.base) - 1
	for g.base[d] > id {
		d--
	}
	return OpRef{d, id - g.base[d]}
}

// Op returns the schedule op an id refers to.
func (g *DepGraph) Op(id int) Op {
	r := g.Ref(id)
	return g.s.Ops[r.Device][r.Index]
}

// NumOps returns the total op count across devices.
func (g *DepGraph) NumOps() int { return g.total }

// Preds returns the flat ids of the op's cross-op dependencies: the
// same-device issue-order predecessor (if any) followed by the data
// dependencies the executor blocks on. The returned slice is a view into
// the graph's shared backing — read-only, valid for the graph's lifetime,
// and allocation-free to obtain.
func (g *DepGraph) Preds(id int) []int { return g.all[id] }

// DataPreds returns only the cross-op data dependencies (activations,
// gradients, the backward's forward stash), without the issue-order edge.
// Like Preds, the result is a read-only view into the shared backing.
func (g *DepGraph) DataPreds(id int) []int { return g.data[id] }

// stashHalves enumerates the half labels a backward's forward stash can
// carry: an unsliced forward (-1) or either sliced half.
var stashHalves = [3]int{-1, 0, 1}

// Dependencies builds the dependency graph of the schedule. It fails with an
// error wrapping errdefs.ErrBadConfig when an op's producer is missing or a
// NoSend forward has no aggregating sibling to carry its payload — the same
// structural defects the executor would hit as an unresolvable wait.
//
//hot:built per sanitized execution and per scheddata sweep
func (s *Schedule) Dependencies() (*DepGraph, error) {
	type prodKey struct {
		virt, micro, half int
		kind              OpKind
	}
	g := &DepGraph{s: s, base: make([]int, len(s.Ops))}
	for d := range s.Ops {
		g.base[d] = g.total
		g.total += len(s.Ops[d])
	}
	preds := make([][]int, g.total)

	producers := make(map[prodKey]int, g.total)
	for d, ops := range s.Ops {
		for i, op := range ops {
			producers[prodKey{op.Virt, op.Micro, op.Half, op.Kind}] = g.base[d] + i
		}
	}
	// fwdProducer resolves the forward op that actually delivers (virt,
	// micro, half) downstream, following a NoSend op to its aggregating
	// sibling.
	fwdProducer := func(virt, micro, half int) (int, error) {
		id, ok := producers[prodKey{virt, micro, half, Fwd}]
		if !ok {
			if id, ok = producers[prodKey{virt, micro, -1, Fwd}]; ok {
				return id, nil // consumer is sliced, producer is not
			}
			return 0, fmt.Errorf("%w: schedule %s: no forward producer for micro %d half %d at virtual stage %d",
				errdefs.ErrBadConfig, s.Name, micro, half, virt)
		}
		if g.Op(id).NoSend {
			sib, ok := producers[prodKey{virt, micro, 1 - half, Fwd}]
			if !ok || !g.Op(sib).AggSend {
				return 0, fmt.Errorf("%w: schedule %s: forward µ%d half %d at virtual stage %d is NoSend with no aggregating sibling",
					errdefs.ErrBadConfig, s.Name, micro, half, virt)
			}
			return sib, nil
		}
		return id, nil
	}

	for d, ops := range s.Ops {
		for i, op := range ops {
			cur := g.base[d] + i
			switch op.Kind {
			case Fwd:
				if op.Virt == 0 {
					continue
				}
				halves := [2]int{op.Half}
				nh := 1
				if op.Half == -1 {
					// A full consumer of a sliced producer needs both halves.
					if _, ok := producers[prodKey{op.Virt - 1, op.Micro, -1, Fwd}]; !ok {
						halves, nh = [2]int{0, 1}, 2
					}
				}
				for _, h := range halves[:nh] {
					from, err := fwdProducer(op.Virt-1, op.Micro, h)
					if err != nil {
						return nil, err
					}
					preds[cur] = append(preds[cur], from)
				}
			case Bwd:
				if op.Virt < s.VirtStages-1 {
					from, ok := producers[prodKey{op.Virt + 1, op.Micro, -1, Bwd}]
					if !ok {
						return nil, fmt.Errorf("%w: schedule %s: no backward producer for micro %d at virtual stage %d",
							errdefs.ErrBadConfig, s.Name, op.Micro, op.Virt+1)
					}
					preds[cur] = append(preds[cur], from)
				}
				// Own stage's forward stash (every half that exists).
				for _, h := range stashHalves {
					if from, ok := producers[prodKey{op.Virt, op.Micro, h, Fwd}]; ok {
						preds[cur] = append(preds[cur], from)
					}
				}
			}
		}
	}

	// Flatten into the shared backing: per op, the issue-order edge (if any)
	// followed by its data dependencies, with all/data as sub-slice views.
	edges := 0
	for d := range s.Ops {
		if n := len(s.Ops[d]); n > 0 {
			edges += n - 1
		}
	}
	for _, ps := range preds {
		edges += len(ps)
	}
	g.comb = make([]int, 0, edges)
	g.all = make([][]int, g.total)
	g.data = make([][]int, g.total)
	for d := range s.Ops {
		for i := range s.Ops[d] {
			id := g.base[d] + i
			lo := len(g.comb)
			if i > 0 {
				g.comb = append(g.comb, id-1)
			}
			dataLo := len(g.comb)
			g.comb = append(g.comb, preds[id]...)
			g.all[id] = g.comb[lo:len(g.comb):len(g.comb)]
			g.data[id] = g.comb[dataLo:len(g.comb):len(g.comb)]
		}
	}
	return g, nil
}

// Acyclic topologically sorts the graph (Kahn's algorithm) and returns nil
// when every op can be scheduled. A cycle — every device eventually waiting
// on a message that can never be sent — is reported as an error wrapping
// errdefs.ErrDeadlock naming up to six of the stuck ops.
func (g *DepGraph) Acyclic() error {
	indeg := make([]int, g.total)
	for id := 0; id < g.total; id++ {
		indeg[id] = len(g.Preds(id))
	}
	// Successor lists, inverted from Preds.
	succ := make([][]int, g.total)
	for id := 0; id < g.total; id++ {
		for _, p := range g.Preds(id) {
			succ[p] = append(succ[p], id)
		}
	}
	queue := make([]int, 0, g.total)
	for id, deg := range indeg {
		if deg == 0 {
			queue = append(queue, id)
		}
	}
	scheduled := 0
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		scheduled++
		for _, m := range succ[n] {
			if indeg[m]--; indeg[m] == 0 {
				queue = append(queue, m)
			}
		}
	}
	if scheduled == g.total {
		return nil
	}
	var stuck []string
	for id, deg := range indeg {
		if deg > 0 && len(stuck) < 6 {
			r := g.Ref(id)
			stuck = append(stuck, fmt.Sprintf("%v (device %d op %d)", g.Op(id), r.Device, r.Index))
		}
	}
	return fmt.Errorf("%w: schedule %s: %d ops in a dependency cycle: %s",
		errdefs.ErrDeadlock, g.s.Name, g.total-scheduled, strings.Join(stuck, ", "))
}
