package schedule

import (
	"errors"
	"testing"

	"autopipe/internal/errdefs"
)

// FuzzParseSchedule drives the schedule-JSON parser (the document the
// scheddata analyzer validates) with arbitrary bytes, mirroring
// internal/fault's FuzzParsePlan: it must never panic, every rejection must
// wrap errdefs.ErrBadConfig, and every accepted schedule must re-validate,
// survive a static deadlock check without panicking, and round-trip through
// the encoder to an equally-accepted document. A checked-in seed corpus
// lives under testdata/fuzz/FuzzParseSchedule. Run with
// `go test -fuzz=FuzzParseSchedule ./internal/schedule`.
func FuzzParseSchedule(f *testing.F) {
	for _, build := range []func() (*Schedule, error){
		func() (*Schedule, error) { return OneFOneB(2, 2) },
		func() (*Schedule, error) { return Sliced(2, 3, 1) },
		func() (*Schedule, error) { return Interleaved(2, 2, 2) },
	} {
		s, err := build()
		if err != nil {
			f.Fatal(err)
		}
		data, err := EncodeJSON(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"name":"x","devices":1,"virtStages":1,"deviceOf":[0],"numMicro":1,"ops":[[{"kind":"F","virt":0,"micro":0},{"kind":"B","virt":0,"micro":0}]]}`))
	f.Add([]byte(`not a schedule`))
	f.Add([]byte(`{"ops":[[]]}{"ops":[[]]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseJSON(data)
		if err != nil {
			if s != nil {
				t.Fatal("non-nil schedule returned with an error")
			}
			if !errors.Is(err, errdefs.ErrBadConfig) {
				t.Fatalf("parse error does not wrap ErrBadConfig: %v", err)
			}
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted schedule fails Validate: %v", err)
		}
		// Deadlock analysis must terminate and classify, never panic.
		if err := s.CheckDeadlock(); err != nil &&
			!errors.Is(err, errdefs.ErrDeadlock) && !errors.Is(err, errdefs.ErrBadConfig) {
			t.Fatalf("CheckDeadlock returned an untyped error: %v", err)
		}
		out, err := EncodeJSON(s)
		if err != nil {
			t.Fatalf("accepted schedule fails to encode: %v", err)
		}
		if _, err := ParseJSON(out); err != nil {
			t.Fatalf("re-encoded schedule rejected: %v", err)
		}
	})
}
