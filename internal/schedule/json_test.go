package schedule

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"autopipe/internal/errdefs"
)

// TestJSONRoundTrip pins the codec: every builder's output survives
// encode → parse unchanged.
func TestJSONRoundTrip(t *testing.T) {
	build := []func() (*Schedule, error){
		func() (*Schedule, error) { return OneFOneB(4, 8) },
		func() (*Schedule, error) { return GPipe(3, 5) },
		func() (*Schedule, error) { return Sliced(4, 8, 2) },
		func() (*Schedule, error) { return Interleaved(4, 8, 2) },
	}
	for _, b := range build {
		s, err := b()
		if err != nil {
			t.Fatal(err)
		}
		data, err := EncodeJSON(s)
		if err != nil {
			t.Fatalf("%s: encode: %v", s.Name, err)
		}
		got, err := ParseJSON(data)
		if err != nil {
			t.Fatalf("%s: parse: %v", s.Name, err)
		}
		if !reflect.DeepEqual(got, s) {
			t.Errorf("%s: round-trip mismatch:\ngot  %+v\nwant %+v", s.Name, got, s)
		}
	}
}

// TestScheduleGoldens pins the checked-in schedule goldens (the files the
// scheddata analyzer sweeps in `make lint`) to the builders: a golden that
// drifts from what the code produces fails here, and a golden that breaks
// structurally fails lint.
func TestScheduleGoldens(t *testing.T) {
	cases := []struct {
		file  string
		build func() (*Schedule, error)
	}{
		{"1f1b_p4_m8.json", func() (*Schedule, error) { return OneFOneB(4, 8) }},
		{"sliced_p4_m8_s2.json", func() (*Schedule, error) { return Sliced(4, 8, 2) }},
		{"interleaved_p4_m8_v2.json", func() (*Schedule, error) { return Interleaved(4, 8, 2) }},
	}
	for _, c := range cases {
		data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "schedules", c.file))
		if err != nil {
			t.Fatal(err)
		}
		got, err := ParseJSON(data)
		if err != nil {
			t.Fatalf("%s: %v", c.file, err)
		}
		want, err := c.build()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s does not match its builder output", c.file)
		}
	}
}

func TestParseJSONRejects(t *testing.T) {
	cases := map[string]string{
		"not json":       `]`,
		"unknown field":  `{"name":"x","devices":1,"virtStages":1,"deviceOf":[0],"numMicro":1,"ops":[[]],"bogus":1}`,
		"trailing data":  `{"name":"x","devices":1,"virtStages":1,"deviceOf":[0],"numMicro":1,"ops":[[{"kind":"F","virt":0,"micro":0},{"kind":"B","virt":0,"micro":0}]]} {}`,
		"bad kind":       `{"name":"x","devices":1,"virtStages":1,"deviceOf":[0],"numMicro":1,"ops":[[{"kind":"Q","virt":0,"micro":0}]]}`,
		"bad half":       `{"name":"x","devices":1,"virtStages":1,"deviceOf":[0],"numMicro":1,"ops":[[{"kind":"F","virt":0,"micro":0,"half":7}]]}`,
		"dangling virt":  `{"name":"x","devices":1,"virtStages":1,"deviceOf":[0],"numMicro":1,"ops":[[{"kind":"F","virt":5,"micro":0},{"kind":"B","virt":0,"micro":0}]]}`,
		"duplicate op":   `{"name":"x","devices":1,"virtStages":1,"deviceOf":[0],"numMicro":1,"ops":[[{"kind":"F","virt":0,"micro":0},{"kind":"F","virt":0,"micro":0},{"kind":"B","virt":0,"micro":0}]]}`,
		"wrong op lists": `{"name":"x","devices":2,"virtStages":2,"deviceOf":[0,1],"numMicro":1,"ops":[[{"kind":"F","virt":0,"micro":0},{"kind":"B","virt":0,"micro":0}]]}`,
	}
	for name, doc := range cases {
		if _, err := ParseJSON([]byte(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		} else if !errors.Is(err, errdefs.ErrBadConfig) {
			t.Errorf("%s: error does not wrap ErrBadConfig: %v", name, err)
		}
	}
}

// TestCheckDeadlock covers the static deadlock detector: every builder
// schedule is cycle-free, and a hand-crossed schedule (a stage issuing its
// backward before the forward the downstream stage needs) is caught.
func TestCheckDeadlock(t *testing.T) {
	for _, build := range []func() (*Schedule, error){
		func() (*Schedule, error) { return OneFOneB(4, 8) },
		func() (*Schedule, error) { return GPipe(3, 5) },
		func() (*Schedule, error) { return Sliced(4, 8, 2) },
		func() (*Schedule, error) { return Sliced(4, 8, 8) },
		func() (*Schedule, error) { return Interleaved(4, 8, 2) },
	} {
		s, err := build()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.CheckDeadlock(); err != nil {
			t.Errorf("%s: false deadlock: %v", s.Name, err)
		}
	}

	// Device 0 issues its backward first. B0@s0 waits on B0@s1, which waits
	// on F0@s1, which waits on F0@s0 — scheduled after B0@s0: a cycle.
	dead := &Schedule{
		Name: "crossed", Devices: 2, VirtStages: 2, DeviceOf: []int{0, 1}, NumMicro: 1, Chunks: 1,
		Ops: [][]Op{
			{{Kind: Bwd, Virt: 0, Micro: 0, Half: -1}, {Kind: Fwd, Virt: 0, Micro: 0, Half: -1}},
			{{Kind: Fwd, Virt: 1, Micro: 0, Half: -1}, {Kind: Bwd, Virt: 1, Micro: 0, Half: -1}},
		},
	}
	if err := dead.Validate(); err != nil {
		t.Fatalf("crossed schedule should be structurally valid: %v", err)
	}
	err := dead.CheckDeadlock()
	if !errors.Is(err, errdefs.ErrDeadlock) {
		t.Errorf("crossed schedule: want ErrDeadlock, got %v", err)
	}

	// A NoSend forward whose sibling does not aggregate never delivers its
	// payload downstream.
	orphan := &Schedule{
		Name: "orphan-nosend", Devices: 2, VirtStages: 2, DeviceOf: []int{0, 1}, NumMicro: 1, Chunks: 1, NumSliced: 1,
		Ops: [][]Op{
			{{Kind: Fwd, Virt: 0, Micro: 0, Half: 0, NoSend: true}, {Kind: Fwd, Virt: 0, Micro: 0, Half: 1}, {Kind: Bwd, Virt: 0, Micro: 0, Half: -1}},
			{{Kind: Fwd, Virt: 1, Micro: 0, Half: 0}, {Kind: Fwd, Virt: 1, Micro: 0, Half: 1}, {Kind: Bwd, Virt: 1, Micro: 0, Half: -1}},
		},
	}
	if err := orphan.CheckDeadlock(); !errors.Is(err, errdefs.ErrBadConfig) {
		t.Errorf("orphan NoSend: want ErrBadConfig, got %v", err)
	}
}
