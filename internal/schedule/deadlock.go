package schedule

// CheckDeadlock decides statically whether the schedule can run to
// completion: it builds the dependency DAG of the shared dependency model
// (deps.go — the same edges the runtime sanitizer in package exec verifies
// executed traces against) and topologically sorts it. A cycle means every
// device would eventually sit waiting on a message that can never be sent:
// the executor's errdefs.ErrDeadlock, caught here without a 30-second run.
// The returned error wraps errdefs.ErrDeadlock (cycles) or
// errdefs.ErrBadConfig (a structurally broken schedule, e.g. a NoSend
// forward whose payload no AggSend sibling ever carries).
func (s *Schedule) CheckDeadlock() error {
	g, err := s.Dependencies()
	if err != nil {
		return err
	}
	return g.Acyclic()
}
