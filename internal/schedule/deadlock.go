package schedule

import (
	"fmt"
	"strings"

	"autopipe/internal/errdefs"
)

// CheckDeadlock decides statically whether the schedule can run to
// completion: it builds the dependency graph the discrete-event executor
// resolves at runtime — per-device issue order, forward activations flowing
// down the virtual-stage chain, backward gradients flowing back up, and each
// stage's own forward-before-backward stash dependency — and topologically
// sorts it. A cycle means every device would eventually sit waiting on a
// message that can never be sent: the executor's errdefs.ErrDeadlock, caught
// here without a 30-second run. The returned error wraps
// errdefs.ErrDeadlock (cycles) or errdefs.ErrBadConfig (a NoSend forward
// whose payload no AggSend sibling ever carries).
//
// The graph intentionally mirrors the executor's blocking semantics:
//
//   - ops on one device run in issue order;
//   - a forward at virtual stage v > 0 needs the matching forward's output
//     from stage v-1 (both halves, when the producer is sliced and the
//     consumer is not); a NoSend producer satisfies nothing — its payload
//     arrives with the sibling half's aggregated send;
//   - a backward at stage v < V-1 needs the backward gradient from v+1;
//   - a backward needs its own stage's forward stash.
func (s *Schedule) CheckDeadlock() error {
	type opRef struct{ d, i int }
	type prodKey struct {
		virt, micro, half int
		kind              OpKind
	}

	id := func(r opRef) int {
		n := 0
		for d := 0; d < r.d; d++ {
			n += len(s.Ops[d])
		}
		return n + r.i
	}
	total := 0
	for d := range s.Ops {
		total += len(s.Ops[d])
	}
	refs := make([]opRef, 0, total)
	producers := make(map[prodKey]opRef, total)
	for d, ops := range s.Ops {
		for i, op := range ops {
			r := opRef{d, i}
			refs = append(refs, r)
			producers[prodKey{op.Virt, op.Micro, op.Half, op.Kind}] = r
		}
	}

	succ := make([][]int, total)
	indeg := make([]int, total)
	addEdge := func(from opRef, to opRef) {
		succ[id(from)] = append(succ[id(from)], id(to))
		indeg[id(to)]++
	}
	// Resolve the forward producer that actually delivers (virt, micro,
	// half) downstream, following a NoSend op to its aggregating sibling.
	fwdProducer := func(virt, micro, half int) (opRef, error) {
		r, ok := producers[prodKey{virt, micro, half, Fwd}]
		if !ok {
			if r, ok = producers[prodKey{virt, micro, -1, Fwd}]; ok {
				return r, nil // consumer is sliced, producer is not
			}
			return opRef{}, fmt.Errorf("%w: schedule %s: no forward producer for micro %d half %d at virtual stage %d",
				errdefs.ErrBadConfig, s.Name, micro, half, virt)
		}
		if s.Ops[r.d][r.i].NoSend {
			sib, ok := producers[prodKey{virt, micro, 1 - half, Fwd}]
			if !ok || !s.Ops[sib.d][sib.i].AggSend {
				return opRef{}, fmt.Errorf("%w: schedule %s: forward µ%d half %d at virtual stage %d is NoSend with no aggregating sibling",
					errdefs.ErrBadConfig, s.Name, micro, half, virt)
			}
			return sib, nil
		}
		return r, nil
	}

	for d, ops := range s.Ops {
		for i, op := range ops {
			cur := opRef{d, i}
			if i > 0 {
				addEdge(opRef{d, i - 1}, cur)
			}
			switch op.Kind {
			case Fwd:
				if op.Virt == 0 {
					continue
				}
				halves := []int{op.Half}
				if op.Half == -1 {
					// A full consumer of a sliced producer needs both halves.
					if _, ok := producers[prodKey{op.Virt - 1, op.Micro, -1, Fwd}]; !ok {
						halves = []int{0, 1}
					}
				}
				for _, h := range halves {
					from, err := fwdProducer(op.Virt-1, op.Micro, h)
					if err != nil {
						return err
					}
					addEdge(from, cur)
				}
			case Bwd:
				if op.Virt < s.VirtStages-1 {
					from, ok := producers[prodKey{op.Virt + 1, op.Micro, -1, Bwd}]
					if !ok {
						return fmt.Errorf("%w: schedule %s: no backward producer for micro %d at virtual stage %d",
							errdefs.ErrBadConfig, s.Name, op.Micro, op.Virt+1)
					}
					addEdge(from, cur)
				}
				// Own stage's forward stash (every half that exists).
				for _, h := range []int{-1, 0, 1} {
					if from, ok := producers[prodKey{op.Virt, op.Micro, h, Fwd}]; ok {
						addEdge(from, cur)
					}
				}
			}
		}
	}

	// Kahn's algorithm; whatever cannot be scheduled is (part of) a cycle.
	queue := make([]int, 0, total)
	for n, deg := range indeg {
		if deg == 0 {
			queue = append(queue, n)
		}
	}
	scheduled := 0
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		scheduled++
		for _, m := range succ[n] {
			if indeg[m]--; indeg[m] == 0 {
				queue = append(queue, m)
			}
		}
	}
	if scheduled == total {
		return nil
	}
	var stuck []string
	for n, deg := range indeg {
		if deg > 0 && len(stuck) < 6 {
			r := refs[n]
			stuck = append(stuck, fmt.Sprintf("%v (device %d op %d)", s.Ops[r.d][r.i], r.d, r.i))
		}
	}
	return fmt.Errorf("%w: schedule %s: %d ops in a dependency cycle: %s",
		errdefs.ErrDeadlock, s.Name, total-scheduled, strings.Join(stuck, ", "))
}
