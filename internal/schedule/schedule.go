// Package schedule materializes concrete pipeline schedules — the per-device
// operation sequences that the discrete-event executor (package exec) runs.
//
// Four schedules are provided:
//
//   - OneFOneB: the Megatron-LM / PipeDream-flush default the paper builds on.
//   - GPipe: all forwards then all backwards (ablation baseline).
//   - Interleaved: Megatron's interleaved 1F1B with v model chunks per
//     device (the startup-reduction baseline of paper Fig. 14).
//   - Sliced: AutoPipe's rescheduled warmup in which the leading micro-batch
//     forwards are split in half, with the first half's communication
//     cancelled and aggregated into the second half's at each stage's last
//     warmup forward (paper §III-C).
//
// Schedules are expressed over virtual stages so interleaving fits the same
// executor: virtual stage s runs on device DeviceOf[s]; for non-interleaved
// schedules the mapping is the identity.
package schedule

import "fmt"

// OpKind distinguishes forward from backward compute.
type OpKind int

const (
	Fwd OpKind = iota
	Bwd
)

func (k OpKind) String() string {
	if k == Fwd {
		return "F"
	}
	return "B"
}

// Op is one compute operation in a device's issue order.
type Op struct {
	Kind OpKind
	// Virt is the virtual stage the op computes.
	Virt int
	// Micro is the micro-batch index.
	Micro int
	// Half is -1 for a full micro-batch, or 0/1 for the halves of a sliced
	// one. Only forwards are ever sliced.
	Half int
	// NoSend suppresses this op's output transfer: the payload rides along
	// with the sibling half's aggregated send.
	NoSend bool
	// AggSend marks a send that carries both halves (double payload, and it
	// satisfies the downstream dependency for both halves at once).
	AggSend bool
}

func (o Op) String() string {
	h := ""
	switch o.Half {
	case 0:
		h = "a"
	case 1:
		h = "b"
	}
	return fmt.Sprintf("%s%d%s@s%d", o.Kind, o.Micro, h, o.Virt)
}

// Schedule is a complete per-device op layout.
type Schedule struct {
	Name string
	// Devices is the number of physical pipeline devices.
	Devices int
	// VirtStages is the number of virtual stages (= Devices unless
	// interleaved, where it is Devices*Chunks).
	VirtStages int
	// DeviceOf maps a virtual stage to its device.
	DeviceOf []int
	// Ops lists each device's operations in issue order.
	Ops [][]Op
	// NumMicro is the number of micro-batches per iteration.
	NumMicro int
	// Chunks is the interleaving factor (1 when not interleaved).
	Chunks int
	// NumSliced is the number of sliced micro-batches (0 unless Sliced).
	NumSliced int
}

// Validate checks structural invariants: every device executes one forward
// and one backward per (micro-batch, virtual stage) it hosts, halves pair
// up, and virtual stages map onto valid devices.
func (s *Schedule) Validate() error {
	if s.Devices <= 0 || s.VirtStages < s.Devices {
		return fmt.Errorf("schedule %s: bad shape: %d devices, %d virtual stages", s.Name, s.Devices, s.VirtStages)
	}
	if len(s.DeviceOf) != s.VirtStages {
		return fmt.Errorf("schedule %s: DeviceOf has %d entries, want %d", s.Name, len(s.DeviceOf), s.VirtStages)
	}
	type key struct {
		virt, micro int
		kind        OpKind
	}
	credit := map[key]float64{}
	for d, ops := range s.Ops {
		for _, op := range ops {
			if op.Virt < 0 || op.Virt >= s.VirtStages {
				return fmt.Errorf("schedule %s: device %d: op %v has bad virtual stage", s.Name, d, op)
			}
			if s.DeviceOf[op.Virt] != d {
				return fmt.Errorf("schedule %s: op %v scheduled on device %d, want %d", s.Name, op, d, s.DeviceOf[op.Virt])
			}
			if op.Micro < 0 || op.Micro >= s.NumMicro {
				return fmt.Errorf("schedule %s: op %v has bad micro-batch", s.Name, op)
			}
			w := 1.0
			if op.Half >= 0 {
				if op.Kind != Fwd {
					return fmt.Errorf("schedule %s: sliced backward %v", s.Name, op)
				}
				w = 0.5
			}
			credit[key{op.Virt, op.Micro, op.Kind}] += w
		}
	}
	for v := 0; v < s.VirtStages; v++ {
		for µ := 0; µ < s.NumMicro; µ++ {
			if c := credit[key{v, µ, Fwd}]; c != 1 {
				return fmt.Errorf("schedule %s: virt %d micro %d: forward credit %v, want 1", s.Name, v, µ, c)
			}
			if c := credit[key{v, µ, Bwd}]; c != 1 {
				return fmt.Errorf("schedule %s: virt %d micro %d: backward credit %v, want 1", s.Name, v, µ, c)
			}
		}
	}
	return nil
}

// Phase labels the pipeline phase an op belongs to on its device's
// timeline, the unit of the executor's bubble decomposition (paper Fig. 5).
type Phase int

const (
	// Warmup ops are the forwards a device issues before its first backward.
	Warmup Phase = iota
	// Steady ops alternate forwards and backwards (the 1F1B phase).
	Steady
	// Cooldown ops are the backwards after the device's last forward.
	Cooldown
)

var phaseNames = [...]string{"warmup", "steady", "cooldown"}

func (p Phase) String() string { return phaseNames[p] }

// PhasesOf classifies one device's issue-order op list. The Steady (1F1B)
// phase starts at the forward block paired with the device's first backward
// — the forward(s) immediately preceding it with the same micro-batch, so a
// sliced pair of halves enters Steady together, matching the paper's Fig. 6
// block pairing — and ends at the backward paired with the device's last
// forward; everything before is Warmup and everything after is Cooldown.
// The rule needs no schedule metadata, so it applies uniformly to 1F1B,
// GPipe, sliced, and interleaved layouts, and on 1F1B it reproduces exactly
// the phase labels of the analytic simulator (package sim).
func PhasesOf(ops []Op) []Phase {
	firstBwd, lastFwd := len(ops), -1
	for i, op := range ops {
		if op.Kind == Bwd && firstBwd == len(ops) {
			firstBwd = i
		}
		if op.Kind == Fwd {
			lastFwd = i
		}
	}
	steadyStart := firstBwd
	for steadyStart > 0 && ops[steadyStart-1].Kind == Fwd && ops[steadyStart-1].Micro == ops[firstBwd-1].Micro {
		steadyStart--
	}
	steadyEnd := lastFwd
	if lastFwd+1 < len(ops) && ops[lastFwd+1].Kind == Bwd {
		steadyEnd = lastFwd + 1
	}
	out := make([]Phase, len(ops))
	for i := range ops {
		switch {
		case i < steadyStart:
			out[i] = Warmup
		case i > steadyEnd:
			out[i] = Cooldown
		default:
			out[i] = Steady
		}
	}
	return out
}

// Phases classifies every op of the schedule, per device, via PhasesOf.
func (s *Schedule) Phases() [][]Phase {
	out := make([][]Phase, len(s.Ops))
	for d, ops := range s.Ops {
		out[d] = PhasesOf(ops)
	}
	return out
}

func identity(p int) []int {
	m := make([]int, p)
	for i := range m {
		m[i] = i
	}
	return m
}

// OneFOneB builds the standard synchronous 1F1B schedule for p stages and m
// micro-batches.
func OneFOneB(p, m int) (*Schedule, error) {
	if p <= 0 || m <= 0 {
		return nil, fmt.Errorf("schedule: 1F1B needs positive depth and micro-batches, got p=%d m=%d", p, m)
	}
	s := &Schedule{Name: "1F1B", Devices: p, VirtStages: p, DeviceOf: identity(p), NumMicro: m, Chunks: 1}
	s.Ops = make([][]Op, p)
	for x := 0; x < p; x++ {
		warm := p - 1 - x
		if warm > m {
			warm = m
		}
		var ops []Op
		for µ := 0; µ < warm; µ++ {
			ops = append(ops, Op{Kind: Fwd, Virt: x, Micro: µ, Half: -1})
		}
		for y := 0; y < m-warm; y++ {
			ops = append(ops, Op{Kind: Fwd, Virt: x, Micro: warm + y, Half: -1})
			ops = append(ops, Op{Kind: Bwd, Virt: x, Micro: y, Half: -1})
		}
		for µ := m - warm; µ < m; µ++ {
			ops = append(ops, Op{Kind: Bwd, Virt: x, Micro: µ, Half: -1})
		}
		s.Ops[x] = ops
	}
	return s, nil
}

// GPipe builds the fill-drain schedule: every stage runs all m forwards,
// then all m backwards.
func GPipe(p, m int) (*Schedule, error) {
	if p <= 0 || m <= 0 {
		return nil, fmt.Errorf("schedule: GPipe needs positive depth and micro-batches, got p=%d m=%d", p, m)
	}
	s := &Schedule{Name: "GPipe", Devices: p, VirtStages: p, DeviceOf: identity(p), NumMicro: m, Chunks: 1}
	s.Ops = make([][]Op, p)
	for x := 0; x < p; x++ {
		var ops []Op
		for µ := 0; µ < m; µ++ {
			ops = append(ops, Op{Kind: Fwd, Virt: x, Micro: µ, Half: -1})
		}
		for µ := 0; µ < m; µ++ {
			ops = append(ops, Op{Kind: Bwd, Virt: x, Micro: µ, Half: -1})
		}
		s.Ops[x] = ops
	}
	return s, nil
}

// Sliced builds AutoPipe's rescheduled 1F1B: the forwards of the first
// numSliced micro-batches are split into two halves at every stage. At each
// stage's final warmup forward the first half's send is cancelled and
// aggregated with the second half's, which avoids the blockage the paper
// describes (§III-C).
func Sliced(p, m, numSliced int) (*Schedule, error) {
	if numSliced < 0 || numSliced > m {
		return nil, fmt.Errorf("schedule: sliced count %d out of range [0,%d]", numSliced, m)
	}
	base, err := OneFOneB(p, m)
	if err != nil {
		return nil, err
	}
	s := &Schedule{
		Name: "Sliced-1F1B", Devices: p, VirtStages: p, DeviceOf: identity(p),
		NumMicro: m, Chunks: 1, NumSliced: numSliced,
	}
	s.Ops = make([][]Op, p)
	for x := 0; x < p; x++ {
		// The blockage the paper describes hits the forward issued right
		// before each stage's first backward (micro-batch p-1-x, e.g.
		// micro-batch 1 at stage 2 of a 4-stage pipeline): the downstream
		// stage is already busy in 1F1B, so the first half's transfer is
		// cancelled and aggregated with the second half's.
		blocking := p - 1 - x
		var ops []Op
		for _, op := range base.Ops[x] {
			if op.Kind == Fwd && op.Micro < numSliced {
				agg := op.Micro == blocking && x < p-1
				ops = append(ops,
					Op{Kind: Fwd, Virt: x, Micro: op.Micro, Half: 0, NoSend: agg},
					Op{Kind: Fwd, Virt: x, Micro: op.Micro, Half: 1, AggSend: agg},
				)
				continue
			}
			ops = append(ops, op)
		}
		s.Ops[x] = ops
	}
	return s, nil
}

// Interleaved builds Megatron-LM's interleaved 1F1B schedule with v model
// chunks per device. Virtual stage c*p+d is chunk c of device d; micro-batch
// forwards sweep the virtual stages in groups of p, and each device warms up
// with 2(p-d-1) + (v-1)p forwards before alternating (Narayanan et al.,
// SC'21). Requires m to be a multiple of p, Megatron's own constraint.
func Interleaved(p, m, v int) (*Schedule, error) {
	if p <= 0 || m <= 0 || v <= 1 {
		return nil, fmt.Errorf("schedule: interleaved needs p>0, m>0, chunks>1; got p=%d m=%d v=%d", p, m, v)
	}
	if m%p != 0 {
		return nil, fmt.Errorf("schedule: interleaved requires micro-batches (%d) divisible by pipeline depth (%d)", m, p)
	}
	s := &Schedule{Name: fmt.Sprintf("Interleaved-%d", v), Devices: p, VirtStages: p * v, NumMicro: m, Chunks: v}
	s.DeviceOf = make([]int, p*v)
	for c := 0; c < v; c++ {
		for d := 0; d < p; d++ {
			s.DeviceOf[c*p+d] = d
		}
	}
	s.Ops = make([][]Op, p)
	total := m * v
	for d := 0; d < p; d++ {
		// Sequence position k of the forward stream maps to chunk
		// (k/p) mod v and micro-batch (k/(p*v))*p + k mod p; the backward
		// stream mirrors it with reversed chunk order.
		fwdOp := func(k int) Op {
			chunk := (k / p) % v
			µ := (k/(p*v))*p + k%p
			return Op{Kind: Fwd, Virt: chunk*p + d, Micro: µ, Half: -1}
		}
		bwdOp := func(k int) Op {
			chunk := v - 1 - (k/p)%v
			µ := (k/(p*v))*p + k%p
			return Op{Kind: Bwd, Virt: chunk*p + d, Micro: µ, Half: -1}
		}
		warm := 2*(p-d-1) + (v-1)*p
		if warm > total {
			warm = total
		}
		var ops []Op
		kf, kb := 0, 0
		for ; kf < warm; kf++ {
			ops = append(ops, fwdOp(kf))
		}
		for kf < total {
			ops = append(ops, fwdOp(kf))
			kf++
			ops = append(ops, bwdOp(kb))
			kb++
		}
		for kb < total {
			ops = append(ops, bwdOp(kb))
			kb++
		}
		s.Ops[d] = ops
	}
	return s, nil
}
