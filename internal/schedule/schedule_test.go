package schedule

import (
	"testing"
	"testing/quick"
)

func TestOneFOneBValidates(t *testing.T) {
	for _, tc := range []struct{ p, m int }{{1, 1}, {2, 4}, {4, 8}, {8, 3}, {16, 32}} {
		s, err := OneFOneB(tc.p, tc.m)
		if err != nil {
			t.Fatalf("p=%d m=%d: %v", tc.p, tc.m, err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("p=%d m=%d: %v", tc.p, tc.m, err)
		}
	}
	if _, err := OneFOneB(0, 4); err == nil {
		t.Error("want error for zero depth")
	}
}

func TestOneFOneBWarmupDepth(t *testing.T) {
	s, err := OneFOneB(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	for x, ops := range s.Ops {
		warm := 0
		for _, op := range ops {
			if op.Kind != Fwd {
				break
			}
			warm++
		}
		// p-1-x warmup forwards plus the first 1F1B block's forward.
		if want := 4 - x; warm != want {
			t.Errorf("stage %d leads with %d forwards, want %d", x, warm, want)
		}
	}
}

func TestGPipeAllForwardsFirst(t *testing.T) {
	s, err := GPipe(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for x, ops := range s.Ops {
		for i, op := range ops {
			wantKind := Fwd
			if i >= 5 {
				wantKind = Bwd
			}
			if op.Kind != wantKind {
				t.Errorf("stage %d op %d is %v", x, i, op.Kind)
			}
		}
	}
}

func TestSlicedStructure(t *testing.T) {
	p, m, n := 4, 8, 2
	s, err := Sliced(p, m, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for x, ops := range s.Ops {
		var aggs, noSends int
		for _, op := range ops {
			if op.Kind == Fwd && op.Micro < n {
				if op.Half < 0 {
					t.Errorf("stage %d: sliced micro %d has a full forward", x, op.Micro)
				}
			}
			if op.Kind == Fwd && op.Micro >= n && op.Half >= 0 {
				t.Errorf("stage %d: unsliced micro %d is halved", x, op.Micro)
			}
			if op.Kind == Bwd && op.Half >= 0 {
				t.Errorf("stage %d: backward is halved", x)
			}
			if op.AggSend {
				aggs++
			}
			if op.NoSend {
				noSends++
			}
		}
		// The blocking micro-batch p-1-x is aggregated when sliced (and the
		// stage is not last).
		blocking := p - 1 - x
		wantAgg := 0
		if blocking < n && x < p-1 {
			wantAgg = 1
		}
		if aggs != wantAgg || noSends != wantAgg {
			t.Errorf("stage %d: %d aggregated / %d suppressed sends, want %d", x, aggs, noSends, wantAgg)
		}
	}
	if _, err := Sliced(4, 8, 9); err == nil {
		t.Error("want error for slicing more micro-batches than exist")
	}
	if _, err := Sliced(4, 8, -1); err == nil {
		t.Error("want error for negative slice count")
	}
}

func TestSlicedZeroEqualsOneFOneB(t *testing.T) {
	a, _ := OneFOneB(4, 8)
	b, err := Sliced(4, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	for x := range a.Ops {
		if len(a.Ops[x]) != len(b.Ops[x]) {
			t.Fatalf("stage %d differs in op count", x)
		}
		for i := range a.Ops[x] {
			if a.Ops[x][i] != b.Ops[x][i] {
				t.Errorf("stage %d op %d: %v vs %v", x, i, a.Ops[x][i], b.Ops[x][i])
			}
		}
	}
}

func TestInterleavedStructure(t *testing.T) {
	p, m, v := 4, 8, 2
	s, err := Interleaved(p, m, v)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.VirtStages != p*v {
		t.Errorf("virtual stages = %d, want %d", s.VirtStages, p*v)
	}
	// Chunk c of device d is virtual stage c*p+d.
	for c := 0; c < v; c++ {
		for d := 0; d < p; d++ {
			if s.DeviceOf[c*p+d] != d {
				t.Errorf("virtual stage %d on device %d, want %d", c*p+d, s.DeviceOf[c*p+d], d)
			}
		}
	}
	// Megatron warmup count per device; the steady state leads with one
	// more forward before the first backward.
	for d := 0; d < p; d++ {
		warm := 0
		for _, op := range s.Ops[d] {
			if op.Kind != Fwd {
				break
			}
			warm++
		}
		want := 2*(p-d-1) + (v-1)*p + 1
		if cap := m * v; want > cap {
			want = cap
		}
		if warm != want {
			t.Errorf("device %d leads with %d forwards, want %d", d, warm, want)
		}
	}
}

func TestInterleavedErrors(t *testing.T) {
	if _, err := Interleaved(4, 6, 2); err == nil {
		t.Error("want error when micro-batches are not divisible by depth")
	}
	if _, err := Interleaved(4, 8, 1); err == nil {
		t.Error("want error for a single chunk")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	s, _ := OneFOneB(2, 2)
	s.Ops[0][0].Micro = 7
	if err := s.Validate(); err == nil {
		t.Error("validate accepted an out-of-range micro-batch")
	}
	s, _ = OneFOneB(2, 2)
	s.Ops[0] = s.Ops[0][1:]
	if err := s.Validate(); err == nil {
		t.Error("validate accepted a missing op")
	}
	s, _ = OneFOneB(2, 2)
	s.Ops[0][1].Virt = 1 // op on the wrong device
	if err := s.Validate(); err == nil {
		t.Error("validate accepted an op on the wrong device")
	}
}

// TestValidateTruncationAndDuplication: the corruption modes a fault-injected
// executor can feed back — dropped trailing ops and replayed ops — are caught
// by credit accounting, including the case where a duplicate exactly masks a
// truncation in op count.
func TestValidateTruncationAndDuplication(t *testing.T) {
	// Truncated tail: the cooldown backward is missing.
	s, _ := OneFOneB(2, 3)
	s.Ops[1] = s.Ops[1][:len(s.Ops[1])-1]
	if err := s.Validate(); err == nil {
		t.Error("validate accepted a truncated op list")
	}

	// Duplicated op: one forward appears twice, credit 2.
	s, _ = OneFOneB(2, 3)
	s.Ops[0] = append(s.Ops[0], s.Ops[0][0])
	if err := s.Validate(); err == nil {
		t.Error("validate accepted a duplicated op")
	}

	// Duplicate masking a truncation: op count is unchanged but one
	// micro-batch runs twice and another never runs.
	s, _ = OneFOneB(2, 3)
	for i, op := range s.Ops[0] {
		if op.Kind == Fwd && op.Micro == 1 {
			dup := op
			dup.Micro = 0
			s.Ops[0][i] = dup
			break
		}
	}
	if err := s.Validate(); err == nil {
		t.Error("validate accepted a duplicate that masks a missing op")
	}

	// Sliced halves must both be present: dropping one half leaves 0.5
	// forward credit.
	s, _ = Sliced(2, 4, 1)
	for d, ops := range s.Ops {
		for i, op := range ops {
			if op.Half == 0 {
				s.Ops[d] = append(ops[:i:i], ops[i+1:]...)
				if err := s.Validate(); err == nil {
					t.Error("validate accepted a missing forward half")
				}
				break
			}
		}
	}

	// A sliced backward is structurally invalid.
	s, _ = OneFOneB(2, 2)
	for i, op := range s.Ops[0] {
		if op.Kind == Bwd {
			s.Ops[0][i].Half = 0
			break
		}
	}
	if err := s.Validate(); err == nil {
		t.Error("validate accepted a sliced backward")
	}

	// DeviceOf truncation and degenerate shapes.
	s, _ = OneFOneB(2, 2)
	s.DeviceOf = s.DeviceOf[:1]
	if err := s.Validate(); err == nil {
		t.Error("validate accepted a truncated DeviceOf")
	}
	s, _ = OneFOneB(2, 2)
	s.Devices = 0
	if err := s.Validate(); err == nil {
		t.Error("validate accepted zero devices")
	}
}

func TestSchedulesAlwaysValidate(t *testing.T) {
	prop := func(pRaw, mRaw, nRaw uint8) bool {
		p := 1 + int(pRaw)%12
		m := 1 + int(mRaw)%24
		s, err := OneFOneB(p, m)
		if err != nil || s.Validate() != nil {
			return false
		}
		g, err := GPipe(p, m)
		if err != nil || g.Validate() != nil {
			return false
		}
		n := int(nRaw) % (m + 1)
		sl, err := Sliced(p, m, n)
		if err != nil || sl.Validate() != nil {
			return false
		}
		if m%p == 0 && p > 0 {
			iv, err := Interleaved(p, m, 2)
			if err != nil || iv.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestOpString(t *testing.T) {
	op := Op{Kind: Fwd, Virt: 2, Micro: 3, Half: 0}
	if s := op.String(); s != "F3a@s2" {
		t.Errorf("Op.String() = %q", s)
	}
	if s := (Op{Kind: Bwd, Virt: 0, Micro: 1, Half: -1}).String(); s != "B1@s0" {
		t.Errorf("Op.String() = %q", s)
	}
}

func TestPhasesOf(t *testing.T) {
	// 1F1B device 0 of a 4-deep pipeline: 3 warmup forwards, then blocks.
	s, err := OneFOneB(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	phases := s.Phases()
	// Device 0: F0 F1 F2 | F3 B0 F4 B1 F5 B2 | B3 B4 B5.
	want0 := []Phase{Warmup, Warmup, Warmup, Steady, Steady, Steady, Steady, Steady, Steady, Cooldown, Cooldown, Cooldown}
	for i, ph := range phases[0] {
		if ph != want0[i] {
			t.Fatalf("1F1B dev 0 op %d (%v): phase %v, want %v", i, s.Ops[0][i], ph, want0[i])
		}
	}
	// Last device alternates from the start: no warmup, no cooldown.
	for i, ph := range phases[3] {
		if ph != Steady {
			t.Errorf("1F1B dev 3 op %d: phase %v, want steady", i, ph)
		}
	}

	// GPipe: all forwards warmup except the last block pair; trailing
	// backwards are cooldown.
	g, err := GPipe(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	gp := g.Phases()[0]
	want := []Phase{Warmup, Warmup, Warmup, Steady, Steady, Cooldown, Cooldown, Cooldown}
	for i, ph := range gp {
		if ph != want[i] {
			t.Errorf("GPipe op %d (%v): phase %v, want %v", i, g.Ops[0][i], ph, want[i])
		}
	}

	// Sliced: both halves of the forward paired with the first backward
	// enter Steady together.
	sl, err := Sliced(2, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	ops, ph := sl.Ops[0], sl.Phases()[0]
	for i, op := range ops {
		if op.Kind == Bwd {
			if ph[i-1] != Steady || ph[i-2] != Steady {
				t.Errorf("sliced: halves before first backward are %v/%v, want steady", ph[i-2], ph[i-1])
			}
			break
		}
	}
}
