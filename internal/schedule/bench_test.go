package schedule

import (
	"fmt"
	"testing"
)

// Dependency-model micro-benchmarks: DepGraph construction and the Kahn
// check run once per sanitized execution and once per checked-in golden in
// the scheddata sweep, so their cost is pinned in BENCH_*.json via
// cmd/autopipebench.

func BenchmarkDependencies(b *testing.B) {
	for _, tc := range []struct{ p, m int }{{8, 32}, {16, 64}} {
		b.Run(fmt.Sprintf("1f1b_p%d_m%d", tc.p, tc.m), func(b *testing.B) {
			s, err := OneFOneB(tc.p, tc.m)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Dependencies(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("sliced_p8_m32", func(b *testing.B) {
		s, err := Sliced(8, 32, 7)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Dependencies(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAcyclic(b *testing.B) {
	s, err := OneFOneB(16, 64)
	if err != nil {
		b.Fatal(err)
	}
	g, err := s.Dependencies()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.Acyclic(); err != nil {
			b.Fatal(err)
		}
	}
}
