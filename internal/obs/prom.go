package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"strconv"
)

// This file is the stdlib-only Prometheus bridge: Snapshot.WritePrometheus
// renders a registry snapshot in the text exposition format (version 0.0.4),
// and Handler mounts it on an http.Handler so a daemon can serve /metrics.
//
// Mapping:
//
//   - counters export as "<name>_total" with TYPE counter;
//   - gauges export as "<name>" with TYPE gauge;
//   - histograms export as TYPE histogram: one cumulative
//     "<name>_bucket{le="..."}" line per non-empty power-of-two bucket, a
//     closing le="+Inf" line, then "<name>_sum" and "<name>_count".
//
// Metric names are sanitized to the Prometheus grammar
// [a-zA-Z_:][a-zA-Z0-9_:]* (dots become underscores, a leading digit gains an
// underscore prefix); the # HELP line carries the original dotted name so the
// registry metric is recoverable from the exposition. Two registry names that
// sanitize identically would collide in the output; registry names are
// dotted-lowercase by convention, so this does not happen in practice.

// ContentTypePrometheus is the Content-Type of the text exposition format.
const ContentTypePrometheus = "text/plain; version=0.0.4; charset=utf-8"

// PromName sanitizes a registry metric name into the Prometheus identifier
// grammar: every character outside [a-zA-Z0-9_:] becomes '_', and a name
// starting with a digit is prefixed with '_'. An empty name sanitizes to "_".
func PromName(name string) string {
	if name == "" {
		return "_"
	}
	b := make([]byte, 0, len(name)+1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':':
			b = append(b, c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b = append(b, '_')
			}
			b = append(b, c)
		default:
			b = append(b, '_')
		}
	}
	return string(b)
}

// promFloat formats a sample value the way Prometheus expects: shortest
// round-trip decimal, with the spelled-out specials +Inf/-Inf/NaN.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format, deterministically: counters, then gauges, then histograms, each in
// lexical registry-name order with # HELP and # TYPE headers.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, name := range sortedKeys(s.Counters) {
		pn := PromName(name) + "_total"
		bw.WriteString("# HELP " + pn + " " + name + "\n")
		bw.WriteString("# TYPE " + pn + " counter\n")
		bw.WriteString(pn + " " + promFloat(s.Counters[name]) + "\n")
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := PromName(name)
		bw.WriteString("# HELP " + pn + " " + name + "\n")
		bw.WriteString("# TYPE " + pn + " gauge\n")
		bw.WriteString(pn + " " + promFloat(s.Gauges[name]) + "\n")
	}
	for _, name := range sortedKeys(s.Histograms) {
		st := s.Histograms[name]
		pn := PromName(name)
		bw.WriteString("# HELP " + pn + " " + name + "\n")
		bw.WriteString("# TYPE " + pn + " histogram\n")
		for _, b := range st.Buckets {
			bw.WriteString(pn + "_bucket{le=\"" + promFloat(b.LE) + "\"} " + strconv.FormatInt(b.Count, 10) + "\n")
		}
		bw.WriteString(pn + "_bucket{le=\"+Inf\"} " + strconv.FormatInt(st.Count, 10) + "\n")
		bw.WriteString(pn + "_sum " + promFloat(st.Sum) + "\n")
		bw.WriteString(pn + "_count " + strconv.FormatInt(st.Count, 10) + "\n")
	}
	return bw.Flush()
}

// Handler returns an http.Handler that serves reg's current snapshot in the
// Prometheus text exposition format — the endpoint a planner daemon mounts at
// /metrics. Write errors are dropped: an observability endpoint must never
// fail the observed process, and the scraper sees the truncation.
func Handler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentTypePrometheus)
		_ = reg.Snapshot().WritePrometheus(w)
	})
}
