package obs

import (
	"strconv"
	"testing"
)

// The registry sits on every hot path (exec event loop, planner engine
// waves), so its per-update overhead is part of the performance baseline:
// cmd/autopipebench runs these via the obs suite entries and BENCH_*.json
// pins them.

func BenchmarkCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench.ops")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench.seconds")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i&1023) * 1e-6)
	}
}

// BenchmarkEmitNoSink is the no-sink emission fast path; allocs/op must stay
// at zero (TestEmitNoSinkAllocsNothing gates it, this measures it).
func BenchmarkEmitNoSink(b *testing.B) {
	r := NewRegistry()
	fields := Fields{"device": 3, "seconds": 0.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Emit("bench.event", fields)
	}
}

func BenchmarkRegistryLookup(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 64; i++ {
		r.Counter("bench.c" + strconv.Itoa(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Counter("bench.c42").Inc()
	}
}

func BenchmarkSnapshot(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 16; i++ {
		r.Counter("bench.c" + strconv.Itoa(i)).Add(float64(i))
		r.Gauge("bench.g" + strconv.Itoa(i)).Set(float64(i))
		h := r.Histogram("bench.h" + strconv.Itoa(i))
		for j := 0; j < 8; j++ {
			h.Observe(float64(j))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := r.Snapshot(); len(s.Counters) != 16 {
			b.Fatal("bad snapshot")
		}
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	s := promRegistry().Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.WritePrometheus(discard{}); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
