// Package obs is a dependency-free observability kit for the reproduction:
// named counters, gauges, and histograms collected in a Registry, wall-clock
// spans, and a structured event stream with pluggable JSON/text encoders.
//
// The paper's claims are timing-shape claims — startup halved by micro-batch
// slicing, Cooldown bubbles flattened by the planner — so the rest of the
// stack (exec, sim, core, slicer, train, the CLIs) publishes its measurements
// here instead of printing ad-hoc scalars. Everything is safe for concurrent
// use; the pipeline runtime updates metrics from per-stage goroutines.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Add increases the counter. Negative deltas are ignored: a counter only
// moves forward.
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		return
	}
	c.mu.Lock()
	c.v += delta
	c.mu.Unlock()
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a set-to-current-value metric.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// histBuckets is the number of power-of-two histogram buckets. Bucket i
// holds observations in (2^(i-1-histShift), 2^(i-histShift)]; with shift 30
// the range spans ~1ns to ~16s when observing seconds.
const (
	histBuckets = 64
	histShift   = 30
)

// Histogram accumulates a distribution in power-of-two buckets plus exact
// count/sum/min/max. Quantiles are bucket-resolution approximations, which
// is plenty for bubble and span distributions.
type Histogram struct {
	mu       sync.Mutex
	count    int64
	sum      float64
	min, max float64
	buckets  [histBuckets]int64
}

func bucketOf(v float64) int {
	if v <= 0 {
		return 0
	}
	b := int(math.Ceil(math.Log2(v))) + histShift
	if b < 0 {
		b = 0
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
}

// Bucket is one cumulative histogram bucket: Count observations were less
// than or equal to LE. Buckets are the Prometheus exposition's native shape;
// only non-empty buckets are exported.
type Bucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// Stat summarizes a histogram at snapshot time.
type Stat struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	// Buckets holds the cumulative distribution over the power-of-two bucket
	// bounds, one entry per non-empty bucket (the final entry's Count equals
	// Count). WritePrometheus renders these as <name>_bucket{le="..."} lines.
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Stat returns the current summary.
func (h *Histogram) Stat() Stat {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := Stat{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	if h.count > 0 {
		s.Mean = h.sum / float64(h.count)
		s.P50 = h.quantileLocked(0.50)
		s.P99 = h.quantileLocked(0.99)
	}
	var cum int64
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		cum += n
		s.Buckets = append(s.Buckets, Bucket{LE: math.Pow(2, float64(i-histShift)), Count: cum})
	}
	return s
}

// quantileLocked returns the upper bound of the bucket holding the q-th
// sample, clamped to the observed min/max.
func (h *Histogram) quantileLocked(q float64) float64 {
	rank := int64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen int64
	for i, n := range h.buckets {
		seen += n
		if seen > rank {
			v := math.Pow(2, float64(i-histShift))
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Registry is a namespace of metrics plus an optional event sink. The zero
// value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	sink     Sink
	// hasSink mirrors sink != nil so the emission hot path can bail out
	// without taking the lock (or allocating anything at all).
	hasSink atomic.Bool
	now     func() time.Time
}

// NewRegistry returns an empty registry with no event sink.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		now:      time.Now,
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// SetSink installs the event sink; nil disables event emission.
func (r *Registry) SetSink(s Sink) {
	r.mu.Lock()
	r.sink = s
	r.hasSink.Store(s != nil)
	r.mu.Unlock()
}

// HasSink reports whether an event sink is installed. Emission call sites on
// hot paths check it before building a Fields map, so a registry with no sink
// costs nothing per event.
func (r *Registry) HasSink() bool { return r.hasSink.Load() }

// Emit sends a structured event to the sink, if one is installed. Fields are
// shallow-copied so callers may reuse their map. With no sink installed the
// call allocates nothing and returns immediately.
//
//hot:the sinkless fast path is pinned at 0 allocs/op in BENCH_baseline.json
func (r *Registry) Emit(name string, fields Fields) {
	if !r.hasSink.Load() {
		return
	}
	r.mu.Lock()
	sink, now := r.sink, r.now()
	r.mu.Unlock()
	if sink == nil {
		return
	}
	cp := make(Fields, len(fields))
	for k, v := range fields {
		cp[k] = v
	}
	sink.Emit(Event{Time: now, Name: name, Fields: cp})
}

// Reset drops every counter, gauge, and histogram, returning the registry to
// its post-NewRegistry state; the sink and clock stay installed. Metric
// handles obtained before the reset keep working but are detached — they no
// longer appear in snapshots. Benchmark harnesses reset between suite entries
// so one entry's counts cannot leak into the next.
func (r *Registry) Reset() {
	r.mu.Lock()
	r.counters = map[string]*Counter{}
	r.gauges = map[string]*Gauge{}
	r.hists = map[string]*Histogram{}
	r.mu.Unlock()
}

// Span is an in-flight wall-clock measurement started by StartSpan.
type Span struct {
	reg   *Registry
	name  string
	start time.Time
}

// StartSpan begins timing name. End records the duration into the histogram
// "<name>.seconds" and emits a "<name>" event with the duration.
func (r *Registry) StartSpan(name string) *Span {
	return &Span{reg: r, name: name, start: r.now()}
}

// End stops the span and returns the elapsed time.
func (s *Span) End() time.Duration {
	d := s.reg.now().Sub(s.start)
	s.reg.Histogram(s.name + ".seconds").Observe(d.Seconds())
	if s.reg.HasSink() {
		s.reg.Emit(s.name, Fields{"seconds": d.Seconds()})
	}
	return d
}

// Snapshot is a point-in-time export of every metric in a registry.
type Snapshot struct {
	Counters   map[string]float64 `json:"counters"`
	Gauges     map[string]float64 `json:"gauges"`
	Histograms map[string]Stat    `json:"histograms"`
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]float64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]Stat, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Stat()
	}
	return s
}

// sortedKeys returns the map's keys in lexical order, for deterministic text
// encodings.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// String renders the snapshot as sorted "name value" lines (the text
// encoding; WriteJSON/WriteText live in encode.go).
func (s Snapshot) String() string {
	out := ""
	for _, k := range sortedKeys(s.Counters) {
		out += fmt.Sprintf("counter %s %g\n", k, s.Counters[k])
	}
	for _, k := range sortedKeys(s.Gauges) {
		out += fmt.Sprintf("gauge %s %g\n", k, s.Gauges[k])
	}
	for _, k := range sortedKeys(s.Histograms) {
		st := s.Histograms[k]
		out += fmt.Sprintf("histogram %s count=%d sum=%g min=%g max=%g mean=%g p50=%g p99=%g\n",
			k, st.Count, st.Sum, st.Min, st.Max, st.Mean, st.P50, st.P99)
	}
	return out
}
