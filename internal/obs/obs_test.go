package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotone
	if got := c.Value(); got != 3 {
		t.Errorf("counter = %v, want 3", got)
	}
	if r.Counter("ops") != c {
		t.Error("Counter did not return the same instance")
	}
	g := r.Gauge("depth")
	g.Set(4)
	g.Set(8)
	if got := g.Value(); got != 8 {
		t.Errorf("gauge = %v, want 8", got)
	}
}

func TestHistogramStats(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for _, v := range []float64{1, 2, 3, 4} {
		h.Observe(v)
	}
	st := h.Stat()
	if st.Count != 4 || st.Sum != 10 || st.Min != 1 || st.Max != 4 {
		t.Errorf("bad stat %+v", st)
	}
	if st.Mean != 2.5 {
		t.Errorf("mean = %v, want 2.5", st.Mean)
	}
	if st.P50 < st.Min || st.P50 > st.Max || st.P99 < st.P50 {
		t.Errorf("quantiles out of order: %+v", st)
	}
	// Zero and negative observations land in the smallest bucket without
	// panicking.
	h.Observe(0)
	h.Observe(-1)
	if got := h.Stat().Min; got != -1 {
		t.Errorf("min = %v, want -1", got)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("n").Inc()
				r.Histogram("h").Observe(1)
				r.Gauge("g").Set(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != 8000 {
		t.Errorf("counter = %v, want 8000", got)
	}
	if got := r.Histogram("h").Stat().Count; got != 8000 {
		t.Errorf("histogram count = %v, want 8000", got)
	}
}

func TestSnapshotEncoders(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.ops").Add(7)
	r.Gauge("b.depth").Set(4)
	r.Histogram("c.lat").Observe(0.5)
	snap := r.Snapshot()

	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatal(err)
	}
	if round.Counters["a.ops"] != 7 || round.Gauges["b.depth"] != 4 || round.Histograms["c.lat"].Count != 1 {
		t.Errorf("round-trip mismatch: %+v", round)
	}

	buf.Reset()
	if err := snap.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"counter a.ops 7", "gauge b.depth 4", "histogram c.lat count=1"} {
		if !strings.Contains(text, want) {
			t.Errorf("text encoding missing %q:\n%s", want, text)
		}
	}
}

func TestSpanAndEvents(t *testing.T) {
	r := NewRegistry()
	sink := &MemorySink{}
	r.SetSink(sink)
	// Deterministic clock: each call advances 1ms.
	var ticks int
	r.now = func() time.Time {
		ticks++
		return time.Unix(0, int64(ticks)*int64(time.Millisecond))
	}
	sp := r.StartSpan("plan")
	d := sp.End()
	if d != time.Millisecond {
		t.Errorf("span duration = %v, want 1ms", d)
	}
	if st := r.Histogram("plan.seconds").Stat(); st.Count != 1 {
		t.Errorf("span histogram count = %d, want 1", st.Count)
	}
	r.Emit("custom", Fields{"k": 1})
	evs := sink.Events()
	if len(evs) != 2 || evs[0].Name != "plan" || evs[1].Name != "custom" {
		t.Fatalf("events = %+v", evs)
	}
	if evs[1].Fields["k"] != 1 {
		t.Errorf("fields not carried: %+v", evs[1])
	}
}

func TestSinkEncodings(t *testing.T) {
	var jb, tb bytes.Buffer
	js := NewJSONSink(&jb)
	ts := NewTextSink(&tb)
	e := Event{Time: time.Unix(1, 0).UTC(), Name: "x", Fields: Fields{"b": 2, "a": 1}}
	js.Emit(e)
	ts.Emit(e)
	var round Event
	if err := json.Unmarshal(jb.Bytes(), &round); err != nil {
		t.Fatal(err)
	}
	if round.Name != "x" {
		t.Errorf("json round-trip: %+v", round)
	}
	line := tb.String()
	if !strings.Contains(line, "x a=1 b=2") {
		t.Errorf("text sink fields not sorted: %q", line)
	}
}
