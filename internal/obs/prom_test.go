package obs

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// promRegistry builds the registry behind the golden exposition: a counter
// needing name sanitization, a plain counter, a gauge, and a histogram whose
// three observations land in three distinct power-of-two buckets.
func promRegistry() *Registry {
	r := NewRegistry()
	r.Counter("9weird.metric-x").Add(3)
	r.Counter("exec.ops").Add(42)
	r.Gauge("exec.iter_time_s").Set(1.5)
	h := r.Histogram("plan.seconds")
	h.Observe(0.5)
	h.Observe(1)
	h.Observe(2)
	return r
}

const promGolden = `# HELP _9weird_metric_x_total 9weird.metric-x
# TYPE _9weird_metric_x_total counter
_9weird_metric_x_total 3
# HELP exec_ops_total exec.ops
# TYPE exec_ops_total counter
exec_ops_total 42
# HELP exec_iter_time_s exec.iter_time_s
# TYPE exec_iter_time_s gauge
exec_iter_time_s 1.5
# HELP plan_seconds plan.seconds
# TYPE plan_seconds histogram
plan_seconds_bucket{le="0.5"} 1
plan_seconds_bucket{le="1"} 2
plan_seconds_bucket{le="2"} 3
plan_seconds_bucket{le="+Inf"} 3
plan_seconds_sum 3.5
plan_seconds_count 3
`

func TestWritePrometheusGolden(t *testing.T) {
	var sb strings.Builder
	if err := promRegistry().Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != promGolden {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, promGolden)
	}
}

func TestPromHandlerRoundTrip(t *testing.T) {
	reg := promRegistry()
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentTypePrometheus {
		t.Errorf("Content-Type = %q, want %q", ct, ContentTypePrometheus)
	}
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if got := sb.String(); got != promGolden {
		t.Errorf("served exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, promGolden)
	}
}

func TestPromName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"exec.ops", "exec_ops"},
		{"planner.p4.final_iter_s", "planner_p4_final_iter_s"},
		{"9lives", "_9lives"},
		{"a-b/c d", "a_b_c_d"},
		{"colon:ok", "colon:ok"},
		{"", "_"},
	}
	for _, c := range cases {
		if got := PromName(c.in); got != c.want {
			t.Errorf("PromName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPromFloatSpecials(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{math.Inf(1), "+Inf"},
		{math.Inf(-1), "-Inf"},
		{1.25, "1.25"},
		{1e-9, "1e-09"},
	}
	for _, c := range cases {
		if got := promFloat(c.in); got != c.want {
			t.Errorf("promFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
	if got := promFloat(math.NaN()); got != "NaN" {
		t.Errorf("promFloat(NaN) = %q, want NaN", got)
	}
}

// TestStatBucketsCumulative pins the bucket export WritePrometheus consumes:
// cumulative counts over non-empty power-of-two bounds, last equal to Count.
func TestStatBucketsCumulative(t *testing.T) {
	h := &Histogram{}
	for _, v := range []float64{0.5, 0.5, 1, 2, 1000} {
		h.Observe(v)
	}
	st := h.Stat()
	want := []Bucket{{0.5, 2}, {1, 3}, {2, 4}, {1024, 5}}
	if len(st.Buckets) != len(want) {
		t.Fatalf("got %d buckets %v, want %v", len(st.Buckets), st.Buckets, want)
	}
	for i, b := range st.Buckets {
		if b != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, b, want[i])
		}
	}
	if last := st.Buckets[len(st.Buckets)-1].Count; last != st.Count {
		t.Errorf("last cumulative bucket %d != count %d", last, st.Count)
	}
}
