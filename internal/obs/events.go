package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Fields carries an event's key/value payload.
type Fields map[string]any

// Event is one structured observation.
type Event struct {
	Time   time.Time `json:"time"`
	Name   string    `json:"name"`
	Fields Fields    `json:"fields,omitempty"`
}

// Sink receives emitted events. Implementations must be safe for concurrent
// Emit calls.
type Sink interface {
	Emit(Event)
}

// JSONSink encodes each event as one JSON object per line.
type JSONSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONSink wraps w.
func NewJSONSink(w io.Writer) *JSONSink { return &JSONSink{enc: json.NewEncoder(w)} }

// Emit writes the event; encoding errors are deliberately dropped (an
// observability layer must never fail the observed computation).
func (s *JSONSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.enc.Encode(e)
}

// TextSink renders each event as a single human-readable line:
//
//	2026-08-06T10:00:00Z planner.eval iter=0.123 stage=2
//
// with fields in lexical key order.
type TextSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewTextSink wraps w.
func NewTextSink(w io.Writer) *TextSink { return &TextSink{w: w} }

// Emit writes the event; write errors are dropped.
func (s *TextSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(s.w, "%s %s", e.Time.UTC().Format(time.RFC3339Nano), e.Name)
	keys := make([]string, 0, len(e.Fields))
	for k := range e.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(s.w, " %s=%v", k, e.Fields[k])
	}
	fmt.Fprintln(s.w)
}

// MemorySink buffers events in order, for tests and post-run inspection.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

// Emit appends the event.
func (s *MemorySink) Emit(e Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// Events returns a copy of the buffered events.
func (s *MemorySink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// WriteJSON encodes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText writes the sorted text encoding of the snapshot.
func (s Snapshot) WriteText(w io.Writer) error {
	_, err := io.WriteString(w, s.String())
	return err
}
