package obs

import (
	"sync"
	"testing"
)

// countingSink is a minimal concurrency-safe sink for the stress test.
type countingSink struct {
	mu sync.Mutex
	n  int
}

func (s *countingSink) Emit(Event) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

// TestRegistryConcurrentStress drives every registry entry point that the
// service and exec paths hit concurrently — metric updates, the sinkless
// Emit fast path, SetSink toggling mid-traffic, Snapshot, and Reset — from
// competing goroutines. It asserts nothing beyond termination and a sane
// final snapshot: its job is to give the race detector (make race-wide, CI
// race-matrix) real interleavings over the registry's atomic fast path and
// mutex slow path, the dynamic complement to raceguard's static sweep of
// this package.
func TestRegistryConcurrentStress(t *testing.T) {
	r := NewRegistry()
	sink := &countingSink{}
	const (
		workers = 8
		iters   = 400
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("stress.count")
			g := r.Gauge("stress.gauge")
			h := r.Histogram("stress.hist")
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i % 17))
				r.Emit("stress.event", Fields{"worker": w, "i": i})
				switch i % 100 {
				case 10:
					r.SetSink(sink)
				case 60:
					r.SetSink(nil)
				case 99:
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()

	if got := r.Counter("stress.count").Value(); got != workers*iters {
		t.Fatalf("counter = %v, want %d", got, workers*iters)
	}
	snap := r.Snapshot()
	if len(snap.Counters) == 0 {
		t.Fatal("snapshot lost the stress counter")
	}

	// Reset racing with updates must also be clean; final state after the
	// last Reset-free writes is unasserted by design (ordering is free).
	var wg2 sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			for i := 0; i < iters; i++ {
				r.Counter("stress.count").Inc()
				if i%200 == 0 {
					r.Reset()
				}
			}
		}()
	}
	wg2.Wait()
}
