package obs

import "time"

// Stopwatch is the sanctioned wall-clock measurement primitive for the
// deterministic packages (sim, core, exec, plan, fault, train). Those
// packages are forbidden from calling time.Now / time.Since directly — the
// simclock analyzer in internal/analysis enforces it — because a wall-clock
// read that leaks into a planning or simulation decision silently breaks the
// bit-for-bit reproducibility the paper's results rest on. Elapsed wall time
// is still a legitimate *output* (plan.Spec.SearchTime, the per-depth
// telemetry of paper Fig. 12), so the clock lives here in obs, the one layer
// whose job is telemetry: a Stopwatch can time a search, but nothing about
// it feeds back into what the search decides.
type Stopwatch struct {
	start time.Time
}

// NewStopwatch starts timing now.
func NewStopwatch() Stopwatch {
	return Stopwatch{start: time.Now()}
}

// Elapsed returns the wall time since the stopwatch started.
func (s Stopwatch) Elapsed() time.Duration {
	return time.Since(s.start)
}
