package obs

import (
	"testing"
)

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	sink := &MemorySink{}
	r.SetSink(sink)
	r.Counter("a").Add(7)
	r.Gauge("g").Set(3)
	r.Histogram("h").Observe(1)
	stale := r.Counter("a")

	r.Reset()
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("reset registry still holds metrics: %+v", snap)
	}
	// A pre-reset handle keeps working but is detached from snapshots.
	stale.Inc()
	if got := r.Snapshot().Counters["a"]; got != 0 {
		t.Errorf("detached counter leaked back into the registry: %g", got)
	}
	// The sink survives a reset.
	if !r.HasSink() {
		t.Error("Reset dropped the sink")
	}
	r.Emit("after-reset", nil)
	if got := len(sink.Events()); got != 1 {
		t.Errorf("emitted %d events after reset, want 1", got)
	}
	// Fresh metrics under the old names start from zero.
	r.Counter("a").Add(2)
	if got := r.Snapshot().Counters["a"]; got != 2 {
		t.Errorf("post-reset counter = %g, want 2", got)
	}
}

func TestHasSinkTracksSetSink(t *testing.T) {
	r := NewRegistry()
	if r.HasSink() {
		t.Error("new registry reports a sink")
	}
	r.SetSink(&MemorySink{})
	if !r.HasSink() {
		t.Error("HasSink false after SetSink")
	}
	r.SetSink(nil)
	if r.HasSink() {
		t.Error("HasSink true after SetSink(nil)")
	}
}

// TestEmitNoSinkAllocsNothing pins the no-sink emission cost at zero
// allocations — the property that lets exec, the planner engine, and the
// driver leave telemetry calls unconditionally in their hot loops.
func TestEmitNoSinkAllocsNothing(t *testing.T) {
	r := NewRegistry()
	fields := Fields{"k": 1}
	if n := testing.AllocsPerRun(100, func() { r.Emit("ev", fields) }); n != 0 {
		t.Errorf("Emit with no sink allocates %.0f objects per call, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { r.Emit("ev", nil) }); n != 0 {
		t.Errorf("Emit(nil fields) with no sink allocates %.0f objects per call, want 0", n)
	}
}

// TestSpanEndNoSinkSkipsEventAlloc verifies Span.End builds no event payload
// when no sink is installed: the only post-warmup cost is the histogram name
// concatenation, never a Fields map or Event value.
func TestSpanEndNoSinkSkipsEventAlloc(t *testing.T) {
	r := NewRegistry()
	r.Histogram("op.seconds") // pre-create so End's lookup cannot allocate the map entry
	n := testing.AllocsPerRun(100, func() {
		r.StartSpan("op").End()
	})
	// One alloc for the Span, one for the "op"+".seconds" concatenation; the
	// Fields map and Event copy (3+ more) must not appear.
	if n > 2 {
		t.Errorf("Span.End with no sink allocates %.0f objects per call, want <= 2", n)
	}
}
