// Package hotalloc enforces the repository's hot-path allocation budget at
// lint time. BENCH_baseline.json pins allocs/op for the engine wave loop, the
// exec event loop, schedule dependency-graph construction, the slicer's inner
// loop, and the obs sinkless Emit — but a benchmark only catches a regression
// after it runs. hotalloc makes the same budget a static invariant: functions
// marked hot (a `//hot` comment on the declaration, or the analyzer's
// configured hot list) must not allocate per iteration, and neither may
// anything they transitively call within the package.
//
// Model:
//
//   - A hot *root* is a marked function. Its hot region is the union of its
//     loop bodies — the code that runs per iteration — or the whole body if
//     it has no loops (helpers like obs.Emit are hot in their entirety).
//   - Any same-package function called from a hot region is *derived hot*,
//     with its whole body as the region (it runs per iteration of the root),
//     transitively via the package call graph.
//   - Conditional blocks that end by leaving the function or breaking out of
//     the loop (`if err != nil { return ... }`, violation paths, error
//     construction) are pruned: they run at most once per loop execution, so
//     their allocations are not per-iteration costs. This is a deliberate
//     false-negative trade — the CI bench compare remains the backstop for
//     allocations hiding on cold exits.
//
// Flagged inside a hot region: make/new, fmt.* calls, slice and map
// composite literals, &composite escapes, function literals (closure
// captures), string concatenation and string<->[]byte conversions, interface
// boxing at call sites (a non-pointer-shaped concrete argument passed to an
// interface parameter), and `append` that either escapes its first argument
// (`y = append(x, ...)`, `f(append(x, ...))`) or grows a slice declared
// inside the region (per-iteration backing arrays). In-place amortized growth
// of a caller-owned slice (`x = append(x, ...)` with x declared outside the
// region) is the sanctioned pattern and is not flagged. Calls that do not
// resolve within the package are assumed allocation-free — the soundness
// caveat of an AST-level graph; see DESIGN §11.9.
//
// Escape hatch: `//lint:allow hotalloc <reason>` on the line or the line
// above, for allocations that are structural rather than per-iteration waste
// (cache fills, the result being built, worker-pool spawns amortized across a
// wave). The unused-waiver report keeps the set honest.
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"autopipe/internal/analysis"
	"autopipe/internal/analysis/callgraph"
)

// DefaultScope lists the packages with pinned hot paths.
var DefaultScope = []string{
	"autopipe/internal/core",
	"autopipe/internal/exec",
	"autopipe/internal/schedule",
	"autopipe/internal/slicer",
	"autopipe/internal/obs",
}

// DefaultHot names the designated hot functions (types.Func.FullName form),
// mirroring the BENCH_baseline.json suite. The `//hot` annotations on the
// declarations are the primary marker; this list is belt-and-braces — if a
// rename strands an entry, the analyzer reports the stale entry rather than
// silently checking nothing.
var DefaultHot = []string{
	"(*autopipe/internal/core.engine).run",
	"(*autopipe/internal/exec.Runner).Run",
	"(*autopipe/internal/schedule.Schedule).Dependencies",
	"autopipe/internal/slicer.SolveProfile",
	"(*autopipe/internal/obs.Registry).Emit",
}

// Analyzer checks the production hot-path packages.
var Analyzer = New(DefaultScope, DefaultHot...)

// New returns a hotalloc analyzer scoped to the given package paths, with hot
// roots drawn from `//hot` annotations plus the given FullName list.
func New(scope []string, hot ...string) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "hotalloc",
		Doc:  "forbid per-iteration allocations in and below //hot functions",
	}
	a.Run = func(pass *analysis.Pass) error {
		if !inScope(pass.Pkg.Path(), scope) {
			return nil
		}
		var files []*ast.File
		for _, f := range pass.Files {
			if !pass.InTestFile(f) {
				files = append(files, f)
			}
		}
		if len(files) == 0 {
			return nil
		}
		g := callgraph.Build(files, pass.Info)
		run(pass, g, files, hot)
		return nil
	}
	return a
}

func inScope(path string, scope []string) bool {
	for _, s := range scope {
		if path == s || strings.HasPrefix(path, s+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass, g *callgraph.Graph, files []*ast.File, hot []string) {
	hotLines := hotCommentLines(pass, files)
	wantNames := make(map[string]bool)
	for _, name := range hot {
		if strings.Contains(name, pass.Pkg.Path()+".") {
			wantNames[name] = true
		}
	}

	type work struct {
		node *callgraph.Node
		root string // name of the hot root this work derives from
	}
	var roots []*callgraph.Node
	for _, n := range g.Nodes {
		if n.Decl == nil {
			continue
		}
		if isAnnotated(pass, n.Decl, hotLines) {
			roots = append(roots, n)
		} else if n.Obj != nil && wantNames[n.Obj.FullName()] {
			roots = append(roots, n)
		}
	}
	// Annotated and listed roots both satisfy list entries; whatever is left
	// names nothing and gets reported as stale configuration.
	for _, n := range roots {
		if n.Obj != nil {
			delete(wantNames, n.Obj.FullName())
		}
	}
	stale := make([]string, 0, len(wantNames))
	for name := range wantNames {
		stale = append(stale, name)
	}
	sort.Strings(stale)
	for _, name := range stale {
		pass.Reportf(files[0].Name.Pos(),
			"hot-list entry %q matches no function in package %s; update the hotalloc configuration",
			name, pass.Pkg.Path())
	}

	visited := make(map[*callgraph.Node]bool)
	var queue []work
	sc := &scanner{pass: pass, g: g}
	for _, n := range roots {
		visited[n] = true
	}
	for _, n := range roots {
		sc.root = n.Name()
		sc.derived = false
		sc.enqueue = func(callee *callgraph.Node, root string) {
			if !visited[callee] {
				visited[callee] = true
				queue = append(queue, work{callee, root})
			}
		}
		for _, region := range regionsOf(n) {
			sc.scan(region)
		}
	}
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		sc.root = w.root
		sc.derived = true
		body := w.node.Body()
		if body == nil {
			continue
		}
		sc.scan(body)
	}
}

// regionsOf returns the hot regions of a root: its outermost loop bodies, or
// the whole body when it contains no loops.
func regionsOf(n *callgraph.Node) []ast.Node {
	body := n.Body()
	if body == nil {
		return nil
	}
	var loops []ast.Node
	var find func(ast.Node)
	find = func(root ast.Node) {
		ast.Inspect(root, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return m == root
			case *ast.ForStmt:
				loops = append(loops, m.Body)
				return false
			case *ast.RangeStmt:
				loops = append(loops, m.Body)
				return false
			}
			return true
		})
	}
	find(body)
	if len(loops) == 0 {
		return []ast.Node{body}
	}
	return loops
}

// scanner flags per-iteration allocations within one region.
type scanner struct {
	pass    *analysis.Pass
	g       *callgraph.Graph
	root    string
	derived bool
	enqueue func(*callgraph.Node, string)

	region ast.Node
	// okAppend marks append calls already judged by their enclosing
	// assignment (visited before the call node itself).
	okAppend map[*ast.CallExpr]bool
}

func (s *scanner) where() string {
	if s.derived {
		return fmt.Sprintf("reachable from hot %s", s.root)
	}
	return fmt.Sprintf("in hot %s", s.root)
}

func (s *scanner) reportf(pos token.Pos, format string, args ...any) {
	s.pass.Reportf(pos, "hot path (%s): %s; hoist it out of the per-iteration path, reuse a buffer, or annotate //lint:allow hotalloc <reason>",
		s.where(), fmt.Sprintf(format, args...))
}

func (s *scanner) scan(region ast.Node) {
	s.region = region
	s.okAppend = make(map[*ast.CallExpr]bool)
	s.walk(region)
}

// walk descends with cold-exit pruning: conditional blocks that end in
// return/panic/break run at most once per loop execution and are skipped.
func (s *scanner) walk(n ast.Node) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.FuncLit:
		if n != s.region {
			s.reportf(n.Pos(), "function literal allocates a closure per iteration")
			return
		}
		s.walkList2(nil, n.Body.List)
		return
	case *ast.IfStmt:
		s.walkStmt(n.Init)
		s.visitExpr(n.Cond)
		if !endsInExit(n.Body.List) {
			s.walk(n.Body)
		}
		if n.Else != nil {
			if blk, ok := n.Else.(*ast.BlockStmt); ok && endsInExit(blk.List) {
				return
			}
			s.walk(n.Else)
		}
		return
	case *ast.SwitchStmt:
		s.walkStmt(n.Init)
		s.visitExpr(n.Tag)
		s.walkCases(n.Body)
		return
	case *ast.TypeSwitchStmt:
		s.walkStmt(n.Init)
		s.walkStmt(n.Assign)
		s.walkCases(n.Body)
		return
	case *ast.SelectStmt:
		s.walkCases(n.Body)
		return
	}

	// The pruning cases above never reach here with m == n, so every typed
	// case below applies to n itself as well as its descendants.
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit, *ast.IfStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			s.walk(m)
			return false
		case *ast.AssignStmt:
			s.judgeAppends(m)
			return true
		case *ast.CallExpr:
			s.visitCall(m)
			return true
		case *ast.CompositeLit:
			s.visitComposite(m)
			return true
		case *ast.UnaryExpr:
			if m.Op == token.AND {
				if cl, ok := ast.Unparen(m.X).(*ast.CompositeLit); ok {
					s.reportf(m.Pos(), "&%s composite literal escapes to the heap", typeDesc(s.pass, cl))
					return false
				}
			}
			return true
		case *ast.BinaryExpr:
			if m.Op == token.ADD && isString(s.pass.Info.TypeOf(m)) {
				s.reportf(m.Pos(), "string concatenation builds a new string")
			}
			return true
		}
		return true
	})
}

func (s *scanner) walkCases(body *ast.BlockStmt) {
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				s.visitExpr(e)
			}
			if !endsInExit(c.Body) {
				s.walkList2(nil, c.Body)
			}
		case *ast.CommClause:
			s.walkStmt(c.Comm)
			if !endsInExit(c.Body) {
				s.walkList2(nil, c.Body)
			}
		}
	}
}

func (s *scanner) walkList2(_ ast.Node, stmts []ast.Stmt) {
	for _, st := range stmts {
		s.walk(st)
	}
}

func (s *scanner) walkStmt(st ast.Stmt) {
	if st != nil {
		s.walk(st)
	}
}

func (s *scanner) visitExpr(e ast.Expr) {
	if e != nil {
		s.walk(e)
	}
}

// judgeAppends decides `lhs = append(dst, ...)` forms before the call node is
// visited: same destination declared outside the region is the amortized
// in-place pattern and passes.
func (s *scanner) judgeAppends(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltin(s.pass.Info, call, "append") || len(call.Args) == 0 {
			continue
		}
		lhsStr := types.ExprString(as.Lhs[i])
		dstStr := types.ExprString(call.Args[0])
		if lhsStr != dstStr {
			continue // copy-grow; the call visit flags it
		}
		if s.declaredInRegion(call.Args[0]) {
			continue // per-iteration backing array; the call visit flags it
		}
		s.okAppend[call] = true
	}
}

func (s *scanner) declaredInRegion(dst ast.Expr) bool {
	id, ok := ast.Unparen(dst).(*ast.Ident)
	if !ok {
		return false
	}
	obj := s.pass.Info.Uses[id]
	if obj == nil {
		obj = s.pass.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() >= s.region.Pos() && obj.Pos() < s.region.End()
}

func (s *scanner) visitCall(call *ast.CallExpr) {
	info := s.pass.Info
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := info.Uses[id].(*types.Builtin); isB {
			switch id.Name {
			case "make":
				s.reportf(call.Pos(), "make allocates per iteration")
			case "new":
				s.reportf(call.Pos(), "new allocates per iteration")
			case "append":
				if !s.okAppend[call] {
					s.reportf(call.Pos(), "append escapes or grows a per-iteration slice")
				}
			}
			return
		}
	}
	// Conversions with fresh backing arrays.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			to, from := tv.Type, info.TypeOf(call.Args[0])
			_, toSlice := to.Underlying().(*types.Slice)
			if (toSlice && isString(from)) || (isString(to) && from != nil && !isString(from)) {
				s.reportf(call.Pos(), "string/slice conversion copies into a fresh backing array")
			}
		}
		return
	}
	// fmt.* allocates its result (and boxes its operands; one finding).
	if fn := pkgLevelFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		s.reportf(call.Pos(), "fmt.%s allocates", fn.Name())
		return
	}
	// Same-package callees become derived hot; their bodies are scanned, so
	// the call itself is not a finding.
	if callee := s.g.CalleeOf(call); callee != nil {
		s.enqueue(callee, s.root)
	}
	// Interface boxing at the call site, whoever the callee is.
	s.checkBoxing(call)
}

func (s *scanner) checkBoxing(call *ast.CallExpr) {
	info := s.pass.Info
	sigT := info.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || isUntypedNil(at) {
			continue
		}
		if _, argIface := at.Underlying().(*types.Interface); argIface {
			continue
		}
		if isPointerShaped(at) {
			continue
		}
		s.reportf(arg.Pos(), "argument %s boxes into interface parameter", types.ExprString(arg))
	}
}

func (s *scanner) visitComposite(cl *ast.CompositeLit) {
	t := s.pass.Info.TypeOf(cl)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		s.reportf(cl.Pos(), "slice literal allocates a backing array")
	case *types.Map:
		s.reportf(cl.Pos(), "map literal allocates")
	}
}

// endsInExit reports whether a statement list ends by leaving the function or
// the loop: the block runs at most once per loop execution, so it is cold.
func endsInExit(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return last.Tok == token.BREAK
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// hotCommentLines collects the file:line of every `//hot` marker (the slash
// form, like //go:build — "// hot" prose comments do not count).
func hotCommentLines(pass *analysis.Pass, files []*ast.File) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !isHotComment(c) {
					continue
				}
				p := pass.Fset.Position(c.Pos())
				if out[p.Filename] == nil {
					out[p.Filename] = make(map[int]bool)
				}
				out[p.Filename][p.Line] = true
			}
		}
	}
	return out
}

func isHotComment(c *ast.Comment) bool {
	if !strings.HasPrefix(c.Text, "//hot") {
		return false
	}
	rest := c.Text[len("//hot"):]
	// Accept the bare marker, a trailing free-text reason, or the
	// directive form `//hot:<reason>` — the one gofmt leaves untouched.
	return rest == "" || strings.HasPrefix(rest, " ") || strings.HasPrefix(rest, ":")
}

// isAnnotated reports whether the declaration carries a //hot marker in its
// doc comment or on the line directly above it.
func isAnnotated(pass *analysis.Pass, decl *ast.FuncDecl, hotLines map[string]map[int]bool) bool {
	if decl.Doc != nil {
		for _, c := range decl.Doc.List {
			if isHotComment(c) {
				return true
			}
		}
	}
	p := pass.Fset.Position(decl.Pos())
	return hotLines[p.Filename][p.Line-1]
}

func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isB := info.Uses[id].(*types.Builtin)
	return isB
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// isPointerShaped reports whether interface conversion of t stores the value
// directly in the data word with no allocation: pointers, channels, maps,
// funcs, unsafe.Pointer.
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func typeDesc(pass *analysis.Pass, cl *ast.CompositeLit) string {
	if t := pass.Info.TypeOf(cl); t != nil {
		return types.TypeString(t, func(*types.Package) string { return "" })
	}
	return "T"
}

func pkgLevelFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Type().(*types.Signature).Recv() != nil {
		return nil
	}
	return fn
}
