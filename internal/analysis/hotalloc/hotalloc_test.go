package hotalloc

import (
	"path/filepath"
	"strings"
	"testing"

	"autopipe/internal/analysis/analysistest"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata", "src", "hotalloc"), New([]string{"hotalloc"}))
}

func TestOutOfScope(t *testing.T) {
	diags, err := analysistest.Load(t, filepath.Join("..", "testdata", "src", "hotalloc"), "hotalloc", New([]string{"autopipe/internal/core"}))
	if err != nil {
		t.Fatal(err)
	}
	// Out of scope nothing fires — including the fixture's own waiver, which
	// an unscoped analyzer never consults.
	for _, d := range diags {
		if !strings.Contains(d.Message, "unused waiver") {
			t.Errorf("out-of-scope diagnostic: %s", d)
		}
	}
}

func TestHotListEntries(t *testing.T) {
	// A hot-list entry can mark a function that carries no annotation, and a
	// stale entry is itself a finding.
	diags, err := analysistest.Load(t, filepath.Join("..", "testdata", "src", "hotalloc"), "hotalloc",
		New([]string{"hotalloc"}, "hotalloc.coldPlain", "hotalloc.vanished"))
	if err != nil {
		t.Fatal(err)
	}
	var sawCold, sawStale bool
	for _, d := range diags {
		if strings.Contains(d.Message, "in hot coldPlain") {
			sawCold = true
		}
		if strings.Contains(d.Message, `hot-list entry "hotalloc.vanished" matches no function`) {
			sawStale = true
		}
	}
	if !sawCold {
		t.Error("hot-list entry hotalloc.coldPlain produced no findings; list-based marking broken")
	}
	if !sawStale {
		t.Error("stale hot-list entry not reported")
	}
}
