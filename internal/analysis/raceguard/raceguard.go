// Package raceguard is the eighth autopipelint analyzer: a compositional,
// RacerD-style static data-race check over the concurrency summaries of
// DESIGN §11.10. The dynamic detector (`make race`) only sees the
// interleavings a given run explores; raceguard instead reasons about every
// pair of concurrently-live regions the package call graph can prove:
//
//   - spawner vs. goroutine: an access in the spawning function against an
//     access reachable from the spawned body (summary.SpecializeSpawn rebases
//     the callee's accesses into the spawner's frame),
//   - goroutine vs. goroutine: two spawns from the same body, and
//   - a loop-spawned goroutine vs. its own other iterations.
//
// A pair is reported when the two sides name the same location (root
// variable plus field chain), at least one side writes, and nothing orders
// them: no mutex (or sync.Once pseudo-lock) held on both sides, and no
// happens-before edge. The happens-before edges recognized are the ones the
// summaries carry:
//
//   - program order into the spawn: spawner accesses sequenced before the
//     `go` statement (before the outermost enclosing loop, for loop spawns —
//     iteration i+1's accesses race with iteration i's goroutine),
//   - WaitGroup Done→Wait: spawner accesses after a Wait on a WaitGroup the
//     goroutine provably Dones,
//   - channel send→recv: spawner accesses after a receive on a channel the
//     goroutine unconditionally sends on or closes (and, symmetrically, a
//     goroutine blocked receiving before its accesses is ordered after the
//     spawner's send — tracked at function granularity, not per-statement).
//
// Soundness caveats, deliberate and documented: spawns the call graph cannot
// resolve (interface methods, function-typed fields) contribute nothing, as
// do accesses behind such calls; index expressions never resolve (element
// identity is out of scope); transitive spawns of a spawned body are not
// chased. raceguard is precision-first — it trades those misses for
// diagnostics that are individually actionable, each carrying both access
// paths with their witness chains.
//
// Escape hatch: `//lint:allow raceguard <reason>` on the reported line (the
// racing spawner access, or the `go` statement for goroutine-vs-goroutine
// pairs); `-waivers` audits the survivors.
package raceguard

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"autopipe/internal/analysis"
	"autopipe/internal/analysis/callgraph"
	"autopipe/internal/analysis/summary"
)

// DefaultScope lists the concurrent production packages the sweep covers.
var DefaultScope = []string{
	"autopipe/internal/core",
	"autopipe/internal/exec",
	"autopipe/internal/service",
	"autopipe/internal/obs",
	"autopipe/internal/fault",
	"autopipe/internal/train",
}

// Analyzer checks the production packages.
var Analyzer = New(DefaultScope...)

// New returns a raceguard analyzer scoped to the given package paths.
func New(scope ...string) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "raceguard",
		Doc:  "report shared-state accesses reachable from two concurrently-live regions with a write and no ordering lock or happens-before edge",
	}
	a.Run = func(pass *analysis.Pass) error {
		if !inScope(pass.Pkg.Path(), scope) {
			return nil
		}
		var files []*ast.File
		for _, file := range pass.Files {
			if !pass.InTestFile(file) {
				files = append(files, file)
			}
		}
		if len(files) == 0 {
			return nil
		}
		g := callgraph.Build(files, pass.Info)
		sums := summary.ComputeConcurrency(g, pass.Pkg, pass.Info, summary.Options{Ignore: pass.Waived})
		c := &checker{pass: pass, sums: sums, reported: make(map[string]bool)}
		for _, n := range g.Nodes {
			c.checkNode(n, sums[n])
		}
		return nil
	}
	return a
}

func inScope(path string, scope []string) bool {
	for _, s := range scope {
		if path == s || strings.HasPrefix(path, s+"/") {
			return true
		}
	}
	return false
}

type checker struct {
	pass *analysis.Pass
	sums map[*callgraph.Node]*summary.ConcInfo
	// reported dedups by (position, location): one diagnostic per racing
	// location per site, however many access pairs witness it.
	reported map[string]bool
}

// side is one concurrently-live region's view of the shared state.
type side struct {
	accs []summary.Access
	hb   summary.HBFacts
}

func (c *checker) checkNode(n *callgraph.Node, ci *summary.ConcInfo) {
	if ci == nil || len(ci.Spawns) == 0 {
		return
	}
	spawned := make([]side, len(ci.Spawns))
	for i, sp := range ci.Spawns {
		if sp.Callee == nil {
			continue // unresolved spawn: the documented residual
		}
		accs, hb := summary.SpecializeSpawn(c.sums, sp.Callee, sp.Stmt.Call, c.pass.Pkg, c.pass.Info)
		spawned[i] = side{accs: accs, hb: hb}
	}

	root := side{
		accs: append(append([]summary.Access{}, ci.SharedReads...), ci.SharedWrites...),
		hb:   ci.HB,
	}
	for i, sp := range ci.Spawns {
		c.rootVsSpawn(n, root, sp, spawned[i])
		if sp.InLoop {
			c.spawnVsSpawn(sp, spawned[i], sp, spawned[i], true)
		}
		for j := i + 1; j < len(ci.Spawns); j++ {
			c.spawnVsSpawn(sp, spawned[i], ci.Spawns[j], spawned[j])
		}
	}
}

// rootVsSpawn pairs the spawner's own accesses against the goroutine's.
func (c *checker) rootVsSpawn(n *callgraph.Node, root side, sp summary.Spawn, gr side) {
	for _, ga := range gr.accs {
		for _, ra := range root.accs {
			if ra.Ref.Key() != ga.Ref.Key() || (!ra.Write && !ga.Write) {
				continue
			}
			if commonLock(ra.Locks, ga.Locks) {
				continue
			}
			if c.orderedBySpawn(root, ra, sp, gr) {
				continue
			}
			c.report(ra.Pos, ra.Ref.Display(),
				"unsynchronized access to %s: goroutine started at line %d %s; the spawner's %s is ordered by no common lock or happens-before edge",
				ra.Ref.Display(), c.line(sp.Stmt.Pos()), ga.Desc, ra.Desc)
		}
	}
}

// orderedBySpawn reports whether the spawner access ra is sequenced against
// everything the goroutine of sp does.
func (c *checker) orderedBySpawn(root side, ra summary.Access, sp summary.Spawn, gr side) bool {
	// Program order: sequenced before the goroutine can first exist. For a
	// loop spawn the boundary is the loop start — an access later in the loop
	// body is concurrent with the previous iteration's goroutine.
	if ra.Pos < sp.Boundary {
		return true
	}
	// Done→Wait: a Wait between the spawn and the access, on a WaitGroup the
	// goroutine provably Dones.
	for _, w := range root.hb.Waits {
		if w.Pos <= sp.Stmt.Pos() || w.Pos >= ra.Pos {
			continue
		}
		for _, d := range gr.hb.Done {
			if d.Ref.Key() == w.Ref.Key() {
				return true
			}
		}
	}
	// send→recv: a receive between the spawn and the access, on a channel the
	// goroutine unconditionally sends on or closes.
	for _, r := range root.hb.Recvs {
		if r.Pos <= sp.Stmt.Pos() || r.Pos >= ra.Pos {
			continue
		}
		for _, s := range gr.hb.Sends {
			if s.Ref.Key() == r.Ref.Key() {
				return true
			}
		}
	}
	// Symmetric coarse edge: the goroutine receives on a channel before doing
	// anything shared (function-granular: it receives at all), and the
	// spawner's access precedes its unconditional send on that channel. This
	// covers the `go worker(); prepare(); ch <- job` hand-off shape.
	for _, s := range root.hb.Sends {
		if s.Pos <= ra.Pos {
			continue
		}
		for _, r := range gr.hb.Recvs {
			if r.Ref.Key() == s.Ref.Key() {
				return true
			}
		}
	}
	return false
}

// spawnVsSpawn pairs two goroutines' accesses (the same spawn twice for a
// loop spawn racing its own iterations). Between sibling goroutines the only
// ordering the summaries can prove is mutual exclusion.
func (c *checker) spawnVsSpawn(spA summary.Spawn, a side, spB summary.Spawn, b side, selfArg ...bool) {
	self := len(selfArg) > 0 && selfArg[0]
	for _, aa := range a.accs {
		for _, ba := range b.accs {
			if aa.Ref.Key() != ba.Ref.Key() || (!aa.Write && !ba.Write) {
				continue
			}
			if commonLock(aa.Locks, ba.Locks) {
				continue
			}
			if self {
				c.report(spB.Stmt.Pos(), aa.Ref.Display(),
					"goroutine spawned in a loop races its own iterations on %s: %s with no common lock",
					aa.Ref.Display(), ba.Desc)
			} else {
				c.report(spB.Stmt.Pos(), aa.Ref.Display(),
					"two goroutines race on %s: this one %s; the goroutine started at line %d %s; no common lock orders them",
					aa.Ref.Display(), ba.Desc, c.line(spA.Stmt.Pos()), aa.Desc)
			}
		}
	}
}

func commonLock(a, b map[string]bool) bool {
	for k := range a {
		if b[k] {
			return true
		}
	}
	return false
}

func (c *checker) line(pos token.Pos) int { return c.pass.Fset.Position(pos).Line }

func (c *checker) report(pos token.Pos, loc, format string, args ...any) {
	key := fmt.Sprintf("%d|%s", pos, loc)
	if c.reported[key] {
		return
	}
	c.reported[key] = true
	c.pass.Reportf(pos, format, args...)
}
