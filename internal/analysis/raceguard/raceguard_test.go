package raceguard

import (
	"strings"
	"testing"

	"autopipe/internal/analysis/analysistest"
)

// The fixture is typechecked under the import path "raceguard", so the
// analyzer is scoped to that path instead of the production packages. The
// fixture carries ≥12 positive `// want` cases and ≥6 negative functions.
func TestRaceguard(t *testing.T) {
	analysistest.Run(t, "../testdata/src/raceguard", New("raceguard"))
}

// TestOutOfScope: the same fixture outside the scope must be silent.
func TestOutOfScope(t *testing.T) {
	a := New(DefaultScope...)
	diags, err := analysistest.Load(t, "../testdata/src/raceguard", "someotherpkg", a)
	if err != nil {
		t.Fatal(err)
	}
	// The fixture's waiver suppresses nothing when the analyzer is scoped
	// out, so the framework reports it as unused; nothing else may fire.
	for _, d := range diags {
		if !strings.Contains(d.Message, "unused waiver") {
			t.Errorf("expected no diagnostics out of scope, got: %v", d)
		}
	}
}
