// Package unitsafe is the dimensional-analysis check for the timing and cost
// packages (internal/sim, cost, exec, plan). The repository encodes physical
// dimensions as defined types — sim.Time (seconds), sim.Bytes, cost.FLOPs —
// so Go's own type checker already rejects most unit mixing. unitsafe closes
// the remaining holes the type system leaves open:
//
//   - a direct conversion between two distinct unit types
//     (sim.Time(bytes)) launders a dimension instead of crossing an
//     arithmetic boundary through float64;
//   - multiplying two values of the same unit (t1*t2 is seconds², never a
//     meaningful quantity here; ratios via division stay legal);
//   - feeding a raw non-zero untyped literal into a unit-typed parameter or
//     combining one with a unit-typed operand via +, -, or a comparison —
//     the literal's unit is unstated (scaling with * and / stays legal, and
//     zero is unit-free).
//
// Escape hatch: `//lint:allow unitsafe <reason>`.
package unitsafe

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"autopipe/internal/analysis"
)

// DefaultScope lists the packages whose arithmetic is checked.
var DefaultScope = []string{
	"autopipe/internal/sim",
	"autopipe/internal/cost",
	"autopipe/internal/exec",
	"autopipe/internal/plan",
}

// UnitRef names one unit type by package path and type name.
type UnitRef struct {
	Pkg, Name string
}

// DefaultUnits are the repository's dimension-bearing types.
var DefaultUnits = []UnitRef{
	{"autopipe/internal/sim", "Time"},
	{"autopipe/internal/sim", "Bytes"},
	{"autopipe/internal/cost", "FLOPs"},
}

// Analyzer checks the production packages against the repository units.
var Analyzer = New(DefaultScope...)

// New returns a unitsafe analyzer over DefaultUnits scoped to the given
// package paths.
func New(scope ...string) *analysis.Analyzer {
	return NewWithUnits(DefaultUnits, scope...)
}

// NewWithUnits returns a unitsafe analyzer with an explicit unit-type
// registry (fixtures declare their own unit types).
func NewWithUnits(units []UnitRef, scope ...string) *analysis.Analyzer {
	reg := make(map[UnitRef]bool, len(units))
	for _, u := range units {
		reg[u] = true
	}
	a := &analysis.Analyzer{
		Name: "unitsafe",
		Doc:  "dimensional checking over sim.Time/sim.Bytes/cost.FLOPs: no cross-unit conversions, no same-unit products, no raw literals into unit-typed slots",
	}
	a.Run = func(pass *analysis.Pass) error {
		if !inScope(pass.Pkg.Path(), scope) {
			return nil
		}
		c := checker{pass: pass, units: reg}
		for _, file := range pass.Files {
			if pass.InTestFile(file) {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					c.call(n)
				case *ast.BinaryExpr:
					c.binary(n)
				}
				return true
			})
		}
		return nil
	}
	return a
}

func inScope(path string, scope []string) bool {
	for _, s := range scope {
		if path == s || strings.HasPrefix(path, s+"/") {
			return true
		}
	}
	return false
}

type checker struct {
	pass  *analysis.Pass
	units map[UnitRef]bool
}

// unit returns the unit-type name of t ("" when t carries no dimension).
func (c *checker) unit(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	if c.units[UnitRef{obj.Pkg().Path(), obj.Name()}] {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return ""
}

func (c *checker) exprUnit(e ast.Expr) string {
	t := c.pass.Info.TypeOf(e)
	if t == nil {
		return ""
	}
	return c.unit(t)
}

// syntacticLit unwraps parens and a leading sign and returns the numeric
// literal underneath, or nil. The typechecker records an untyped constant
// with its *converted* type, so "t * 2" shows both operands as sim.Time;
// only the syntax reveals that 2 is a dimensionless scalar.
func syntacticLit(e ast.Expr) *ast.BasicLit {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && (u.Op == token.SUB || u.Op == token.ADD) {
		e = ast.Unparen(u.X)
	}
	lit, ok := e.(*ast.BasicLit)
	if !ok || (lit.Kind != token.INT && lit.Kind != token.FLOAT) {
		return nil
	}
	return lit
}

// rawLiteral reports whether e is syntactically a non-zero numeric literal
// (including a negated one): a number with no unit annotation.
func rawLiteral(info *types.Info, e ast.Expr) bool {
	lit := syntacticLit(e)
	if lit == nil {
		return false
	}
	// Zero is unit-free: comparisons against 0 and zero initializations are
	// dimensionally sound.
	if tv, ok := info.Types[lit]; ok && tv.Value != nil {
		switch tv.Value.Kind() {
		case constant.Int, constant.Float:
			if f, _ := constant.Float64Val(constant.ToFloat(tv.Value)); f == 0 {
				return false
			}
		}
	}
	return true
}

// call flags cross-unit conversions and raw literals in unit-typed argument
// slots.
func (c *checker) call(call *ast.CallExpr) {
	tv, ok := c.pass.Info.Types[call.Fun]
	if ok && tv.IsType() {
		// Conversion. A cross-unit conversion launders a dimension; a
		// conversion from or to a plain numeric type is the sanctioned
		// boundary crossing.
		if len(call.Args) != 1 {
			return
		}
		dst := c.unit(tv.Type)
		src := c.exprUnit(call.Args[0])
		if dst != "" && src != "" && dst != src {
			c.pass.Reportf(call.Pos(), "conversion %s(%s) launders a dimension: convert through float64 at an explicit rate instead", dst, src)
		}
		return
	}
	sig, ok := c.pass.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= params.Len()-1 {
			pi = params.Len() - 1
		}
		if pi >= params.Len() {
			break
		}
		pt := params.At(pi).Type()
		if sig.Variadic() && pi == params.Len()-1 {
			if sl, isSlice := pt.(*types.Slice); isSlice {
				pt = sl.Elem()
			}
		}
		if u := c.unit(pt); u != "" && rawLiteral(c.pass.Info, arg) {
			c.pass.Reportf(arg.Pos(), "raw literal fed into %s-typed parameter %s: state the unit with an explicit %s(...) conversion",
				u, params.At(pi).Name(), u)
		}
	}
}

// binary flags same-unit products and raw literals combined with unit-typed
// operands through +, -, or comparisons.
func (c *checker) binary(b *ast.BinaryExpr) {
	lu, ru := c.exprUnit(b.X), c.exprUnit(b.Y)
	switch b.Op {
	case token.MUL:
		if lu != "" && lu == ru && syntacticLit(b.X) == nil && syntacticLit(b.Y) == nil {
			c.pass.Reportf(b.OpPos, "%s * %s has dimension %s²: no quantity in this codebase carries it; one factor should be a plain scalar", lu, ru, lu)
		}
	case token.ADD, token.SUB, token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		if lu != "" && rawLiteral(c.pass.Info, b.Y) {
			c.pass.Reportf(b.Y.Pos(), "raw literal %s %s-typed operand: state the unit with an explicit %s(...) conversion", b.Op, lu, lu)
		} else if ru != "" && rawLiteral(c.pass.Info, b.X) {
			c.pass.Reportf(b.X.Pos(), "raw literal %s %s-typed operand: state the unit with an explicit %s(...) conversion", b.Op, ru, ru)
		}
	}
}
