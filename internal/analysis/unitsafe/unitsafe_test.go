package unitsafe

import (
	"strings"
	"testing"

	"autopipe/internal/analysis/analysistest"
)

// The fixture declares its own Time/Bytes/FLOPs under the import path
// "unitsafe", so the test registers those in place of the production units.
func TestUnitsafe(t *testing.T) {
	units := []UnitRef{
		{"unitsafe", "Time"},
		{"unitsafe", "Bytes"},
		{"unitsafe", "FLOPs"},
	}
	analysistest.Run(t, "../testdata/src/unitsafe", NewWithUnits(units, "unitsafe"))
}

// TestOutOfScope: the same fixture outside the scope must be silent.
func TestOutOfScope(t *testing.T) {
	units := []UnitRef{
		{"unitsafe", "Time"},
		{"unitsafe", "Bytes"},
		{"unitsafe", "FLOPs"},
	}
	a := NewWithUnits(units, DefaultScope...)
	diags, err := analysistest.Load(t, "../testdata/src/unitsafe", "someotherpkg", a)
	if err != nil {
		t.Fatal(err)
	}
	// The fixture's waiver suppresses nothing when the analyzer is scoped
	// out, so the framework reports it as unused; nothing else may fire.
	for _, d := range diags {
		if !strings.Contains(d.Message, "unused waiver") {
			t.Errorf("expected no diagnostics out of scope, got: %v", d)
		}
	}
}
