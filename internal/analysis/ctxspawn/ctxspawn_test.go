package ctxspawn

import (
	"testing"

	"autopipe/internal/analysis/analysistest"
)

// The fixture is typechecked under the import path "ctxspawn", so the
// analyzer is scoped to that path instead of core and train.
func TestCtxspawn(t *testing.T) {
	analysistest.Run(t, "../testdata/src/ctxspawn", New("ctxspawn"))
}

// TestOutOfScope: the same fixture outside the scope must be silent.
func TestOutOfScope(t *testing.T) {
	a := New("autopipe/internal/core", "autopipe/internal/train")
	diags, err := analysistest.Load(t, "../testdata/src/ctxspawn", "someotherpkg", a)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("expected no diagnostics out of scope, got %d: %v", len(diags), diags)
	}
}
