// Package ctxspawn enforces cancellation discipline on the goroutines the
// planner's parallel search (internal/core) and the training driver
// (internal/train) spawn: every `go func` literal must be cancellable — it
// either takes a context.Context, references one from its environment, or
// references a `chan struct{}` done/abort channel. The plan-space search
// fans out workers per wave and the pipeline executor runs one goroutine per
// stage; a goroutine with no cancellation path outlives a failed or
// abandoned run, keeps mutating shared schedule state, and turns a clean
// fault-injection abort into a hang or a data race.
//
// Also flagged: sync.WaitGroup.Add called inside the spawned goroutine
// itself. If the spawner reaches wg.Wait before the scheduler runs the new
// goroutine, Wait observes a zero counter and returns while work is still
// in flight — the canonical lost-goroutine race. Add must happen in the
// spawner, before the `go` statement.
//
// Escape hatch: `//lint:allow ctxspawn <reason>` on the `go` statement (or
// the line above) for fire-and-forget goroutines that provably terminate.
package ctxspawn

import (
	"go/ast"
	"go/types"
	"strings"

	"autopipe/internal/analysis"
)

// DefaultScope lists the packages whose goroutines must be cancellable.
var DefaultScope = []string{
	"autopipe/internal/core",
	"autopipe/internal/train",
}

// Analyzer checks the production packages.
var Analyzer = New(DefaultScope...)

// New returns a ctxspawn analyzer scoped to the given package paths.
func New(scope ...string) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "ctxspawn",
		Doc:  "require goroutines in core and train to observe a context or done channel; forbid WaitGroup.Add inside the goroutine",
	}
	a.Run = func(pass *analysis.Pass) error {
		if !inScope(pass.Pkg.Path(), scope) {
			return nil
		}
		for _, file := range pass.Files {
			if pass.InTestFile(file) {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				gostmt, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				lit, ok := ast.Unparen(gostmt.Call.Fun).(*ast.FuncLit)
				if !ok {
					// `go method()` / `go pkg.F()`: cancellation lives in the
					// callee; the callee's own body is checked where defined.
					return true
				}
				checkGoroutine(pass, gostmt, lit)
				return true
			})
		}
		return nil
	}
	return a
}

func inScope(path string, scope []string) bool {
	for _, s := range scope {
		if path == s || strings.HasPrefix(path, s+"/") {
			return true
		}
	}
	return false
}

func checkGoroutine(pass *analysis.Pass, gostmt *ast.GoStmt, lit *ast.FuncLit) {
	cancellable := false
	// A context.Context parameter (or done channel parameter) counts.
	for _, field := range lit.Type.Params.List {
		if t := pass.Info.TypeOf(field.Type); isCancelSignal(t) {
			cancellable = true
		}
	}
	// Or a context / chan struct{} passed as an argument at the spawn site.
	for _, arg := range gostmt.Call.Args {
		if isCancelSignal(pass.Info.TypeOf(arg)) {
			cancellable = true
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			// Or a captured context / done channel used anywhere in the body.
			if obj := pass.Info.Uses[n]; obj != nil && isCancelSignal(obj.Type()) {
				cancellable = true
			}
		case *ast.CallExpr:
			if isWaitGroupAdd(pass, n) {
				pass.Reportf(n.Pos(),
					"sync.WaitGroup.Add inside the spawned goroutine races with Wait; call Add in the spawner before the go statement")
			}
		}
		return true
	})
	if !cancellable {
		pass.Reportf(gostmt.Pos(),
			"goroutine in %s has no cancellation path: take a context.Context or select on a done channel so an aborted run can reclaim it",
			pass.Pkg.Path())
	}
}

// isCancelSignal reports whether t is a context.Context or a receivable
// chan struct{} — the two cancellation idioms the repository uses.
func isCancelSignal(t types.Type) bool {
	if t == nil {
		return false
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context" {
			return true
		}
	}
	if ch, ok := t.Underlying().(*types.Chan); ok && ch.Dir() != types.SendOnly {
		if st, ok := ch.Elem().Underlying().(*types.Struct); ok && st.NumFields() == 0 {
			return true
		}
	}
	return false
}

func isWaitGroupAdd(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Add" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}
