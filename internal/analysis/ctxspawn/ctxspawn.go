// Package ctxspawn enforces cancellation discipline on the goroutines the
// planner's parallel search (internal/core) and the training driver
// (internal/train) spawn: every spawned function must be cancellable — it
// either takes a context.Context, references one from its environment, or
// references a `chan struct{}` done/abort channel. The plan-space search
// fans out workers per wave and the pipeline executor runs one goroutine per
// stage; a goroutine with no cancellation path outlives a failed or
// abandoned run, keeps mutating shared schedule state, and turns a clean
// fault-injection abort into a hang or a data race.
//
// v3 is interprocedural (DESIGN §11.9). Two v2 blind spots are closed:
//
//   - `go s.run()` / `go helper()` — goroutines spawned through a named
//     function, method, or locally-bound function value were skipped
//     entirely. The package call graph resolves them, and the callee's
//     summary decides whether a cancellation signal is observed. Spawns the
//     graph cannot resolve (interface methods, function-typed fields) remain
//     unchecked — the documented residual.
//   - a literal whose cancellation lives in a helper it calls
//     (`go func(){ waitDone(ctx) }()` observed nothing to v2's body walk)
//     now counts as cancellable through the helper's summary.
//
// Also flagged: sync.WaitGroup.Add called inside the spawned goroutine
// itself. If the spawner reaches wg.Wait before the scheduler runs the new
// goroutine, Wait observes a zero counter and returns while work is still
// in flight — the canonical lost-goroutine race. Add must happen in the
// spawner, before the `go` statement.
//
// Escape hatch: `//lint:allow ctxspawn <reason>` on the `go` statement (or
// the line above) for fire-and-forget goroutines that provably terminate.
package ctxspawn

import (
	"go/ast"
	"go/types"
	"strings"

	"autopipe/internal/analysis"
	"autopipe/internal/analysis/callgraph"
	"autopipe/internal/analysis/summary"
)

// DefaultScope lists the packages whose goroutines must be cancellable.
var DefaultScope = []string{
	"autopipe/internal/core",
	"autopipe/internal/train",
}

// Analyzer checks the production packages.
var Analyzer = New(DefaultScope...)

// New returns a ctxspawn analyzer scoped to the given package paths.
func New(scope ...string) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "ctxspawn",
		Doc:  "require goroutines in core and train to observe a context or done channel; forbid WaitGroup.Add inside the goroutine",
	}
	a.Run = func(pass *analysis.Pass) error {
		if !inScope(pass.Pkg.Path(), scope) {
			return nil
		}
		var files []*ast.File
		for _, file := range pass.Files {
			if !pass.InTestFile(file) {
				files = append(files, file)
			}
		}
		if len(files) == 0 {
			return nil
		}
		g := callgraph.Build(files, pass.Info)
		sums := summary.Compute(g, pass.Info, summary.Options{Ignore: pass.Waived})
		for _, file := range files {
			ast.Inspect(file, func(n ast.Node) bool {
				gostmt, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if lit, ok := ast.Unparen(gostmt.Call.Fun).(*ast.FuncLit); ok {
					checkGoroutine(pass, g, sums, gostmt, lit)
					return true
				}
				if node := g.FuncValue(gostmt.Call.Fun); node != nil {
					checkNamedSpawn(pass, sums, gostmt, node)
				}
				// Unresolvable spawn targets (interface methods, function-typed
				// fields) stay unchecked: the residual v3 documents.
				return true
			})
		}
		return nil
	}
	return a
}

// checkNamedSpawn handles `go s.run()` / `go helper()` / `go f()` spawns the
// call graph resolves — the v2 false negative. The callee is cancellable when
// a cancellation signal is passed at the spawn site or its summary observes
// one (a ctx/done parameter, field, or package-level channel, possibly
// through its own callees).
func checkNamedSpawn(pass *analysis.Pass, sums map[*callgraph.Node]*summary.Info, gostmt *ast.GoStmt, node *callgraph.Node) {
	cancellable := sums[node].Has(summary.ObservesCancel)
	for _, arg := range gostmt.Call.Args {
		if isCancelSignal(pass.Info.TypeOf(arg)) {
			cancellable = true
		}
	}
	// Add inside the spawned body races with the spawner's Wait exactly as it
	// does in a literal; report it at the spawn that creates the race.
	if body := node.Body(); body != nil {
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok && n != body {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok && isWaitGroupAdd(pass, call) {
				pass.Reportf(gostmt.Pos(),
					"spawned function %s calls sync.WaitGroup.Add inside the goroutine, racing with Wait; call Add in the spawner before the go statement",
					node.Name())
			}
			return true
		})
	}
	if !cancellable {
		pass.Reportf(gostmt.Pos(),
			"goroutine %s spawned in %s has no cancellation path: pass a context.Context or done channel, or observe one in the callee, so an aborted run can reclaim it",
			node.Name(), pass.Pkg.Path())
	}
}

func inScope(path string, scope []string) bool {
	for _, s := range scope {
		if path == s || strings.HasPrefix(path, s+"/") {
			return true
		}
	}
	return false
}

func checkGoroutine(pass *analysis.Pass, g *callgraph.Graph, sums map[*callgraph.Node]*summary.Info, gostmt *ast.GoStmt, lit *ast.FuncLit) {
	cancellable := false
	// The summary covers parameters, captured signals, and — transitively —
	// helpers the body calls that observe one.
	if node := g.NodeOfLit(lit); node != nil && sums[node].Has(summary.ObservesCancel) {
		cancellable = true
	}
	// A context.Context parameter (or done channel parameter) counts.
	for _, field := range lit.Type.Params.List {
		if t := pass.Info.TypeOf(field.Type); isCancelSignal(t) {
			cancellable = true
		}
	}
	// Or a context / chan struct{} passed as an argument at the spawn site.
	for _, arg := range gostmt.Call.Args {
		if isCancelSignal(pass.Info.TypeOf(arg)) {
			cancellable = true
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			// Or a captured context / done channel used anywhere in the body.
			if obj := pass.Info.Uses[n]; obj != nil && isCancelSignal(obj.Type()) {
				cancellable = true
			}
		case *ast.CallExpr:
			if isWaitGroupAdd(pass, n) {
				pass.Reportf(n.Pos(),
					"sync.WaitGroup.Add inside the spawned goroutine races with Wait; call Add in the spawner before the go statement")
			}
		}
		return true
	})
	if !cancellable {
		pass.Reportf(gostmt.Pos(),
			"goroutine in %s has no cancellation path: take a context.Context or select on a done channel so an aborted run can reclaim it",
			pass.Pkg.Path())
	}
}

// isCancelSignal reports whether t is a context.Context or a receivable
// chan struct{} — the two cancellation idioms the repository uses.
func isCancelSignal(t types.Type) bool {
	if t == nil {
		return false
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context" {
			return true
		}
	}
	if ch, ok := t.Underlying().(*types.Chan); ok && ch.Dir() != types.SendOnly {
		if st, ok := ch.Elem().Underlying().(*types.Struct); ok && st.NumFields() == 0 {
			return true
		}
	}
	return false
}

func isWaitGroupAdd(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Add" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}
