// Package locksafe is the flow-sensitive mutex discipline check for the
// packages whose shared state guards the executor and planner invariants
// (internal/core, exec, obs, train). Over every CFG path of every function
// (package analysis/cfg) it tracks a lock-state lattice per mutex and
// reports:
//
//   - a path that returns, falls off the function end, or panics while a
//     Lock has no matching Unlock and no deferred Unlock — the early-return
//     leak that freezes every other goroutine touching the registry;
//   - locking a mutex this function already holds (self-deadlock) and
//     unlocking one it has provably already released;
//   - holding a mutex across a channel send/receive, a select, or
//     sync.WaitGroup.Wait — blocking with a lock held inverts the lock/wait
//     order and deadlocks under contention;
//   - calling a same-package helper whose summary says it may block
//     (DESIGN §11.9) while the mutex is definitely held — v3's
//     interprocedural tier; wrapping the channel receive in a method no
//     longer hides it. Lock *acquisition* inside a callee is deliberately
//     not treated as blocking: cross-function lock-ordering is out of scope,
//     and flagging every locked helper would bury the real deadlocks;
//   - mutex-by-value copies: a parameter, receiver, assignment, or call
//     argument that copies a sync.Mutex/RWMutex (or a struct containing
//     one), which silently forks the lock.
//
// The analysis is intraprocedural and joins paths conservatively: a mutex
// locked on only some inbound paths is "maybe held", reported at returns but
// not at blocking operations, so helper-unlocks locked by a caller do not
// false-positive. Escape hatch: `//lint:allow locksafe <reason>`.
package locksafe

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"autopipe/internal/analysis"
	"autopipe/internal/analysis/callgraph"
	"autopipe/internal/analysis/cfg"
	"autopipe/internal/analysis/summary"
)

// DefaultScope lists the packages whose locking is checked.
var DefaultScope = []string{
	"autopipe/internal/core",
	"autopipe/internal/exec",
	"autopipe/internal/obs",
	"autopipe/internal/train",
}

// Analyzer checks the production packages.
var Analyzer = New(DefaultScope...)

// New returns a locksafe analyzer scoped to the given package paths.
func New(scope ...string) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "locksafe",
		Doc:  "CFG-path Lock/Unlock pairing, no blocking with a mutex held, no mutex-by-value copies in core, exec, obs, and train",
	}
	a.Run = func(pass *analysis.Pass) error {
		if !inScope(pass.Pkg.Path(), scope) {
			return nil
		}
		var files []*ast.File
		for _, file := range pass.Files {
			if !pass.InTestFile(file) {
				files = append(files, file)
			}
		}
		if len(files) == 0 {
			return nil
		}
		cg := callgraph.Build(files, pass.Info)
		sums := summary.Compute(cg, pass.Info, summary.Options{Ignore: pass.Waived})
		for _, file := range files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				checkCopies(pass, fd)
				if fd.Body == nil {
					continue
				}
				checkFunc(pass, fd.Body, cg, sums)
				// Nested function literals run on their own stack (and often
				// their own goroutine): analyze each as its own CFG.
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						checkFunc(pass, lit.Body, cg, sums)
					}
					return true
				})
			}
		}
		return nil
	}
	return a
}

func inScope(path string, scope []string) bool {
	for _, s := range scope {
		if path == s || strings.HasPrefix(path, s+"/") {
			return true
		}
	}
	return false
}

// lock states. Absent from the fact map means "unknown": never touched on
// this path (a caller may or may not hold it).
const (
	stLocked   = iota // definitely held
	stUnlocked        // definitely released after a lock/unlock in this function
	stMaybe           // held on some inbound paths only
)

// lockInfo is one mutex's state on one path.
type lockInfo struct {
	state int
	// pos is the Lock call that acquired it (for reports).
	pos token.Pos
	// deferred records a pending `defer mu.Unlock()` on this path.
	deferred bool
}

// fact maps a rendered mutex expression ("r.mu", "s.mu:r" for RLock) to its
// state.
type fact map[string]lockInfo

func (f fact) clone() fact {
	out := make(fact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// problem is the dataflow instance for one function body.
type problem struct {
	pass *analysis.Pass
	g    *cfg.Graph
	// report gates diagnostics: false while the fixpoint iterates (facts are
	// not final), true during the single reporting pass over the stabilized
	// facts. reported still dedupes blocks transferred more than once.
	report   bool
	reported map[token.Pos]map[string]bool
	// funcEnd positions the fall-off-the-end report.
	funcEnd token.Pos
	// cg and sums are the package call graph and may-block summaries for the
	// interprocedural blocking check.
	cg   *callgraph.Graph
	sums map[*callgraph.Node]*summary.Info
}

func (p *problem) Entry() fact { return fact{} }

func (p *problem) Join(a, b fact) fact {
	out := make(fact, len(a)+len(b))
	for k, va := range a {
		if vb, ok := b[k]; ok {
			merged := va
			if vb.state != va.state {
				merged.state = stMaybe
			}
			merged.deferred = va.deferred && vb.deferred
			out[k] = merged
		} else {
			va.state = mergeUnknown(va.state)
			va.deferred = false
			out[k] = va
		}
	}
	for k, vb := range b {
		if _, ok := a[k]; !ok {
			vb.state = mergeUnknown(vb.state)
			vb.deferred = false
			out[k] = vb
		}
	}
	return out
}

// mergeUnknown joins a tracked state with "unknown" from the other path.
func mergeUnknown(s int) int {
	if s == stLocked {
		return stMaybe
	}
	return s // unlocked-on-one-path stays unlocked enough; maybe stays maybe
}

func (p *problem) Equal(a, b fact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok || va.state != vb.state || va.deferred != vb.deferred {
			return false
		}
	}
	return true
}

func (p *problem) Transfer(b *cfg.Block, in fact) fact {
	out := in.clone()
	for _, n := range b.Nodes {
		p.node(n, out)
	}
	// A block flowing straight into the exit without a return/panic node is
	// the fall-off-the-end path.
	for _, s := range b.Succs {
		if s == p.g.Exit && !endsExplicitly(b) {
			p.checkHeldAt(p.funcEnd, out, "at function end")
		}
	}
	return out
}

func endsExplicitly(b *cfg.Block) bool {
	if len(b.Nodes) == 0 {
		return false
	}
	switch last := b.Nodes[len(b.Nodes)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		call, ok := ast.Unparen(last.X).(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

// node applies one block node to the fact, reporting violations.
func (p *problem) node(n ast.Node, out fact) {
	cfg.Walk(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.DeferStmt:
			p.deferStmt(m, out)
			return false // the deferred call does not run here
		case *ast.CallExpr:
			if key, kind, ok := lockCall(p.pass.Info, m); ok {
				p.lockOp(m, key, kind, out)
				return true
			}
			if isBlockingCall(p.pass.Info, m) {
				p.checkBlocking(m.Pos(), out, "sync.WaitGroup.Wait")
			} else if callee := p.cg.CalleeOf(m); callee != nil {
				if ci := p.sums[callee]; ci.Has(summary.MayBlock) {
					w := ci.Witness[summary.MayBlock]
					p.checkBlocking(m.Pos(), out,
						fmt.Sprintf("call to %s, which may block (%s),", callee.Name(), w.Desc))
				}
			}
		case *ast.SendStmt:
			p.checkBlocking(m.Pos(), out, "channel send")
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				p.checkBlocking(m.Pos(), out, "channel receive")
			}
		case *ast.ReturnStmt:
			p.checkHeldAt(m.Pos(), out, "at return")
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(m.X).(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					p.checkHeldAt(m.Pos(), out, "during panic unwind")
				}
			}
		case *ast.FuncLit:
			return false // analyzed as its own CFG
		}
		return true
	})
}

// deferStmt handles `defer mu.Unlock()` and `defer func(){ ...Unlock()... }()`.
func (p *problem) deferStmt(d *ast.DeferStmt, out fact) {
	mark := func(key, kind string) {
		if kind != "Unlock" && kind != "RUnlock" {
			return
		}
		if kind == "RUnlock" {
			key += ":r"
		}
		if info, ok := out[key]; ok {
			info.deferred = true
			out[key] = info
		} else {
			// Deferred unlock of a mutex this function never locked (the
			// caller holds it): maybe-held, release pending — nothing to flag.
			out[key] = lockInfo{state: stMaybe, deferred: true, pos: d.Pos()}
		}
	}
	if key, kind, ok := lockCall(p.pass.Info, d.Call); ok {
		mark(key, kind)
		return
	}
	if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if key, kind, ok := lockCall(p.pass.Info, call); ok {
					mark(key, kind)
				}
			}
			return true
		})
	}
}

func (p *problem) lockOp(call *ast.CallExpr, key, kind string, out fact) {
	switch kind {
	case "Lock", "RLock":
		if kind == "RLock" {
			key += ":r"
		}
		if info, ok := out[key]; ok && info.state == stLocked {
			p.reportOnce(call.Pos(), "%s locked twice on the same path (already held since the Lock at %s): self-deadlock",
				key, p.pass.Fset.Position(info.pos))
		}
		out[key] = lockInfo{state: stLocked, pos: call.Pos()}
	case "Unlock", "RUnlock":
		if kind == "RUnlock" {
			key += ":r"
		}
		if info, ok := out[key]; ok && info.state == stUnlocked && !info.deferred {
			p.reportOnce(call.Pos(), "%s unlocked twice on the same path: the second Unlock panics at runtime", key)
		}
		info := out[key]
		info.state = stUnlocked
		out[key] = info
	}
}

func (p *problem) checkBlocking(pos token.Pos, out fact, what string) {
	for key, info := range out {
		if info.state == stLocked {
			p.reportOnce(pos, "%s while holding %s (locked at %s): blocking with a mutex held deadlocks under contention",
				what, strings.TrimSuffix(key, ":r"), p.pass.Fset.Position(info.pos))
		}
	}
}

func (p *problem) checkHeldAt(pos token.Pos, out fact, where string) {
	for key, info := range out {
		if info.deferred {
			continue
		}
		switch info.state {
		case stLocked:
			p.reportOnce(pos, "%s still held %s (locked at %s) with no Unlock and no deferred Unlock on this path",
				strings.TrimSuffix(key, ":r"), where, p.pass.Fset.Position(info.pos))
		case stMaybe:
			p.reportOnce(pos, "%s may still be held %s: locked on some paths (e.g. at %s) without a matching Unlock on all of them",
				strings.TrimSuffix(key, ":r"), where, p.pass.Fset.Position(info.pos))
		}
	}
}

func (p *problem) reportOnce(pos token.Pos, format string, args ...any) {
	if !p.report {
		return
	}
	if p.reported[pos] == nil {
		p.reported[pos] = map[string]bool{}
	}
	if p.reported[pos][format] {
		return
	}
	p.reported[pos][format] = true
	p.pass.Reportf(pos, format, args...)
}

// checkFunc runs the lattice to fixpoint over one function body, then makes
// one reporting pass with the stabilized entry facts.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt, cg *callgraph.Graph, sums map[*callgraph.Node]*summary.Info) {
	g := cfg.New(body)
	p := &problem{pass: pass, g: g, reported: map[token.Pos]map[string]bool{}, funcEnd: body.Rbrace, cg: cg, sums: sums}
	facts := cfg.Solve[fact](g, p)
	p.report = true
	for _, b := range g.Blocks {
		if in, ok := facts[b]; ok {
			p.Transfer(b, in)
		}
	}
}

// lockCall classifies a call as a sync.Mutex/RWMutex (R)Lock/(R)Unlock and
// returns the rendered receiver expression as the mutex key.
func lockCall(info *types.Info, call *ast.CallExpr) (key, kind string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil || !isSyncLocker(recv.Type()) {
		return "", "", false
	}
	return types.ExprString(sel.X), fn.Name(), true
}

// isSyncLocker reports whether t is (a pointer to) sync.Mutex or
// sync.RWMutex.
func isSyncLocker(t types.Type) bool {
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// isBlockingCall recognizes sync.WaitGroup.Wait.
func isBlockingCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Wait" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

// checkCopies reports mutex-by-value copies: receivers and parameters typed
// as (structs containing) sync.Mutex/RWMutex, and assignments or call
// arguments that copy an existing lock-bearing lvalue.
func checkCopies(pass *analysis.Pass, fd *ast.FuncDecl) {
	flagFields := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := pass.Info.TypeOf(field.Type)
			if t != nil && containsLock(t, 0) {
				pass.Reportf(field.Pos(), "%s copies a mutex by value (%s): the callee locks a private copy; pass a pointer",
					what, types.TypeString(t, types.RelativeTo(pass.Pkg)))
			}
		}
	}
	flagFields(fd.Recv, "receiver")
	flagFields(fd.Type.Params, "parameter")
	if fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if lv := copiedLockValue(pass.Info, rhs); lv != "" {
					pass.Reportf(rhs.Pos(), "assignment copies %s by value, forking its mutex; use a pointer", lv)
				}
			}
		case *ast.CallExpr:
			if _, _, isLock := lockCall(pass.Info, n); isLock {
				return true
			}
			for _, arg := range n.Args {
				if lv := copiedLockValue(pass.Info, arg); lv != "" {
					pass.Reportf(arg.Pos(), "call passes %s by value, forking its mutex; pass a pointer", lv)
				}
			}
		}
		return true
	})
}

// copiedLockValue reports the rendered expression when e copies an existing
// lock-bearing value (not a composite literal, address-of, or pointer).
func copiedLockValue(info *types.Info, e ast.Expr) string {
	e = ast.Unparen(e)
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return "" // composite literals build a fresh value; &x shares it
	}
	// Only values copy: the type operand of new(T) or make([]T, n) names a
	// lock-bearing type without copying any existing lock.
	if tv, ok := info.Types[e]; !ok || !tv.IsValue() {
		return ""
	}
	t := info.TypeOf(e)
	if t == nil || !containsLock(t, 0) {
		return ""
	}
	return types.ExprString(e)
}

// containsLock reports whether a value of type t embeds a mutex by value.
func containsLock(t types.Type, depth int) bool {
	if depth > 4 {
		return false
	}
	if isSyncLockerValue(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), depth+1)
	}
	return false
}

// isSyncLockerValue is isSyncLocker without pointer indirection: a *Mutex
// copy shares the lock and is fine.
func isSyncLockerValue(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}
