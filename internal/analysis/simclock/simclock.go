// Package simclock enforces the reproduction's determinism invariant: the
// planner, simulator, executor, fault engine, and training driver must be
// pure functions of their inputs and seeds. The paper's simulator-vs-actual
// agreement (Fig. 11) and the golden-pinned recovery trajectories are only
// checkable because re-running them is bit-identical; one wall-clock read or
// unseeded random draw inside those packages silently invalidates every
// downstream comparison, because the planner is re-run thousands of times
// inside enumeration loops.
//
// Flagged inside the deterministic packages (non-test files):
//
//   - time.Now / time.Since / time.Until / time.Sleep / time.After /
//     time.AfterFunc / time.Tick / time.NewTimer / time.NewTicker — any
//     wall-clock read or timer. Elapsed-time telemetry goes through
//     obs.Stopwatch (package obs is the telemetry layer and may read the
//     clock).
//   - package-level math/rand and math/rand/v2 calls (rand.Int, rand.Float64,
//     rand.Shuffle, ...), which draw from the process-global, unseeded
//     source. Constructors (rand.New, rand.NewSource) are fine: a *rand.Rand
//     threaded from an explicit seed is deterministic.
//   - slices appended inside a map range and then returned without an
//     intervening sort: Go's map iteration order is deliberately randomized,
//     so such a slice leaks nondeterminism through a return value.
//   - calls to same-package helpers that are transitively clock- or
//     rand-tainted (v3, via the package call graph and function summaries —
//     DESIGN §11.9): wrapping time.Now in a helper no longer hides it.
//
// Escape hatch: `//lint:allow simclock <reason>` on the offending line or
// the line above, for the rare legitimate site (e.g. CLI progress output
// living in a deterministic package).
package simclock

import (
	"go/ast"
	"go/types"
	"strings"

	"autopipe/internal/analysis"
	"autopipe/internal/analysis/callgraph"
	"autopipe/internal/analysis/summary"
)

// DefaultScope lists the deterministic packages.
var DefaultScope = []string{
	"autopipe/internal/sim",
	"autopipe/internal/core",
	"autopipe/internal/exec",
	"autopipe/internal/plan",
	"autopipe/internal/fault",
	"autopipe/internal/train",
}

// Analyzer checks the production deterministic packages.
var Analyzer = New(DefaultScope...)

// forbiddenTime lists the time package functions that read the clock or arm
// timers. Pure constructors/converters (time.Duration arithmetic, time.Unix,
// time.Date, time.ParseDuration) stay legal.
var forbiddenTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true, "NewTimer": true, "NewTicker": true,
}

// New returns a simclock analyzer scoped to the given package paths (a path
// matches exactly or as a "path/" prefix). Tests scope it to fixtures.
func New(scope ...string) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "simclock",
		Doc:  "forbid wall-clock reads, global randomness, and escaping map order in deterministic packages",
	}
	a.Run = func(pass *analysis.Pass) error {
		if !inScope(pass.Pkg.Path(), scope) {
			return nil
		}
		var files []*ast.File
		for _, file := range pass.Files {
			if pass.InTestFile(file) {
				continue
			}
			files = append(files, file)
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkCall(pass, n)
				case *ast.FuncDecl:
					if n.Body != nil {
						checkMapOrder(pass, n.Type, n.Body)
					}
				case *ast.FuncLit:
					checkMapOrder(pass, n.Type, n.Body)
				}
				return true
			})
		}
		checkTransitive(pass, files)
		return nil
	}
	return a
}

// checkTransitive is the interprocedural tier (v3): a call to a same-package
// helper that is itself clock- or rand-tainted — directly or through its own
// callees — is as nondeterministic as the direct call, so it is flagged at
// every call site. Summaries are computed with waived sites ignored: a
// `//lint:allow simclock` on the source line sanctions the effect, so callers
// of a waived helper stay clean. Each finding carries the witness chain back
// to the originating time/rand call.
func checkTransitive(pass *analysis.Pass, files []*ast.File) {
	if len(files) == 0 {
		return
	}
	g := callgraph.Build(files, pass.Info)
	sums := summary.Compute(g, pass.Info, summary.Options{Ignore: pass.Waived})
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			ci := sums[e.Callee]
			if ci.Has(summary.ReadsClock) {
				w := ci.Witness[summary.ReadsClock]
				pass.Reportf(e.Site.Pos(),
					"call to %s is transitively clock-tainted (%s) in deterministic package %s; thread times explicitly, or annotate //lint:allow simclock at the source",
					e.Callee.Name(), w.Desc, pass.Pkg.Path())
			}
			if ci.Has(summary.GlobalRand) {
				w := ci.Witness[summary.GlobalRand]
				pass.Reportf(e.Site.Pos(),
					"call to %s transitively draws from the global math/rand source (%s) in deterministic package %s; thread a seeded *rand.Rand instead",
					e.Callee.Name(), w.Desc, pass.Pkg.Path())
			}
		}
	}
}

func inScope(path string, scope []string) bool {
	for _, s := range scope {
		if path == s || strings.HasPrefix(path, s+"/") {
			return true
		}
	}
	return false
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.PkgFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if forbiddenTime[fn.Name()] {
			pass.Reportf(call.Pos(),
				"wall-clock call time.%s in deterministic package %s; use obs.Stopwatch for telemetry, or annotate //lint:allow simclock",
				fn.Name(), pass.Pkg.Path())
		}
	case "math/rand", "math/rand/v2":
		if !strings.HasPrefix(fn.Name(), "New") {
			pass.Reportf(call.Pos(),
				"global math/rand source (rand.%s) in deterministic package %s; thread a seeded *rand.Rand instead",
				fn.Name(), pass.Pkg.Path())
		}
	}
}

// checkMapOrder flags slices appended under a map range and returned without
// a sort: the classic way map iteration order escapes into results. The walk
// stays inside one function body — nested function literals are analyzed as
// their own functions.
func checkMapOrder(pass *analysis.Pass, ftype *ast.FuncType, body *ast.BlockStmt) {
	returned := make(map[types.Object]bool)
	if ftype.Results != nil {
		for _, field := range ftype.Results.List {
			for _, name := range field.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					returned[obj] = true
				}
			}
		}
	}
	sorted := make(map[types.Object]bool)
	inspectShallow(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if id, ok := ast.Unparen(res).(*ast.Ident); ok {
					if obj := pass.Info.Uses[id]; obj != nil {
						returned[obj] = true
					}
				}
			}
		case *ast.CallExpr:
			if fn := analysis.PkgFunc(pass.Info, n); fn != nil && fn.Pkg() != nil {
				if p := fn.Pkg().Path(); (p == "sort" || p == "slices") && len(n.Args) > 0 {
					if id, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok {
						if obj := pass.Info.Uses[id]; obj != nil {
							sorted[obj] = true
						}
					}
				}
			}
		}
	})
	inspectShallow(body, func(n ast.Node) {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return
		}
		t := pass.Info.TypeOf(rng.X)
		if t == nil {
			return
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return
		}
		inspectShallow(rng.Body, func(m ast.Node) {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "append" {
				return
			}
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return
			}
			if len(call.Args) == 0 {
				return
			}
			dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
			if !ok {
				return
			}
			obj := pass.Info.Uses[dst]
			if obj != nil && returned[obj] && !sorted[obj] {
				pass.Reportf(call.Pos(),
					"slice %s is built in map-iteration order and returned unsorted; map order is randomized — sort before returning",
					dst.Name)
			}
		})
	})
}

// inspectShallow walks n but does not descend into nested function literals.
func inspectShallow(n ast.Node, f func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		if m != nil {
			f(m)
		}
		return true
	})
}
