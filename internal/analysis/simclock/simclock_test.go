package simclock

import (
	"testing"

	"autopipe/internal/analysis/analysistest"
)

// The fixture package is typechecked under the import path "simclock", so
// the analyzer is scoped to that path instead of the production packages.
func TestSimclock(t *testing.T) {
	analysistest.Run(t, "../testdata/src/simclock", New("simclock"))
}

// TestOutOfScope ensures the analyzer is silent on packages outside its
// scope: the same fixture, full of violations, must produce no findings.
func TestOutOfScope(t *testing.T) {
	a := New("autopipe/internal/sim")
	diags, err := analysistest.Load(t, "../testdata/src/simclock", "someotherpkg", a)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("expected no diagnostics out of scope, got %d: %v", len(diags), diags)
	}
}
