package simclock

import (
	"strings"
	"testing"

	"autopipe/internal/analysis/analysistest"
)

// The fixture package is typechecked under the import path "simclock", so
// the analyzer is scoped to that path instead of the production packages.
func TestSimclock(t *testing.T) {
	analysistest.Run(t, "../testdata/src/simclock", New("simclock"))
}

// TestOutOfScope ensures the analyzer is silent on packages outside its
// scope: the same fixture, full of violations, must produce no findings.
func TestOutOfScope(t *testing.T) {
	a := New("autopipe/internal/sim")
	diags, err := analysistest.Load(t, "../testdata/src/simclock", "someotherpkg", a)
	if err != nil {
		t.Fatal(err)
	}
	// The fixture's waiver suppresses nothing when the analyzer is scoped
	// out, so the framework reports it as unused; nothing else may fire.
	for _, d := range diags {
		if !strings.Contains(d.Message, "unused waiver") {
			t.Errorf("expected no diagnostics out of scope, got: %v", d)
		}
	}
}
