package cfg

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"autopipe/internal/analysis"
)

// parseFunc typechecks one source file and returns the named function, its
// file set, and the populated types.Info.
func parseFunc(t *testing.T, src, name string) (*ast.FuncDecl, *token.FileSet, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd, fset, info
		}
	}
	t.Fatalf("no function %s", name)
	return nil, nil, nil
}

// shape summarizes liveness and edges for assertions.
func liveBlocks(g *Graph) int {
	n := 0
	for _, b := range g.Blocks {
		if b.Live {
			n++
		}
	}
	return n
}

func TestStraightLine(t *testing.T) {
	fn, _, _ := parseFunc(t, `package p
func f() int {
	x := 1
	x++
	return x
}`, "f")
	g := New(fn.Body)
	if liveBlocks(g) != 2 { // entry + exit
		t.Fatalf("straight-line function: %d live blocks, want 2\n%s", liveBlocks(g), g)
	}
	if len(g.Entry.Nodes) != 3 {
		t.Errorf("entry block holds %d nodes, want 3", len(g.Entry.Nodes))
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Errorf("entry must flow straight to exit\n%s", g)
	}
}

func TestIfElseDiamond(t *testing.T) {
	fn, _, _ := parseFunc(t, `package p
func f(c bool) int {
	x := 0
	if c {
		x = 1
	} else {
		x = 2
	}
	return x
}`, "f")
	g := New(fn.Body)
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("condition block should branch two ways\n%s", g)
	}
	// Both arms converge on the block holding the return.
	a, b := g.Entry.Succs[0], g.Entry.Succs[1]
	if len(a.Succs) != 1 || len(b.Succs) != 1 || a.Succs[0] != b.Succs[0] {
		t.Fatalf("if arms must rejoin at one block\n%s", g)
	}
}

func TestForLoopBackEdge(t *testing.T) {
	fn, _, _ := parseFunc(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`, "f")
	g := New(fn.Body)
	backEdge := false
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s.Index < b.Index && s.Live {
				backEdge = true
			}
		}
	}
	if !backEdge {
		t.Fatalf("loop produced no back edge\n%s", g)
	}
}

func TestReturnMakesTrailingCodeDead(t *testing.T) {
	fn, _, _ := parseFunc(t, `package p
func f() int {
	return 1
	x := 2 //nolint
	_ = x
	return x
}`, "f")
	g := New(fn.Body)
	if liveBlocks(g) != 2 { // entry + exit; trailing code dead
		t.Fatalf("code after return must be unreachable\n%s", g)
	}
}

func TestGotoEdges(t *testing.T) {
	fn, _, _ := parseFunc(t, `package p
func f(n int) int {
loop:
	n--
	if n > 0 {
		goto loop
	}
	return n
}`, "f")
	g := New(fn.Body)
	var label *Block
	for _, b := range g.Blocks {
		if b.Kind == "label.loop" {
			label = b
		}
	}
	if label == nil {
		t.Fatalf("no label block\n%s", g)
	}
	if len(label.Preds) < 2 {
		t.Fatalf("label.loop should have fallthrough and goto preds, got %d\n%s", len(label.Preds), g)
	}
}

func TestSelectFansOut(t *testing.T) {
	fn, _, _ := parseFunc(t, `package p
func f(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case <-b:
	}
	return 0
}`, "f")
	g := New(fn.Body)
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("select should fan out to each comm clause\n%s", g)
	}
}

func TestSwitchDefaultAndBreak(t *testing.T) {
	fn, _, _ := parseFunc(t, `package p
func f(n int) int {
	switch n {
	case 0:
		return 0
	case 1:
		n = 10
	default:
		n = 20
	}
	return n
}`, "f")
	g := New(fn.Body)
	if got := len(g.Entry.Succs); got != 3 {
		t.Fatalf("switch with default should branch to 3 cases, got %d\n%s", got, g)
	}
}

func TestReachingDefsMergeAndKill(t *testing.T) {
	fn, _, info := parseFunc(t, `package p
func f(c bool) int {
	x := 0
	if c {
		x = 1
	}
	y := x
	return y
}`, "f")
	g := New(fn.Body)
	facts := ReachingDefs(g, info, nil)

	// Find the block holding "y := x": the if's join block.
	var join *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if a, ok := n.(*ast.AssignStmt); ok {
				if id, ok := a.Lhs[0].(*ast.Ident); ok && id.Name == "y" {
					join = b
				}
			}
		}
	}
	if join == nil {
		t.Fatalf("no block defines y\n%s", g)
	}
	var xObj types.Object
	for id, obj := range info.Defs {
		if id.Name == "x" {
			xObj = obj
		}
	}
	if xObj == nil {
		t.Fatal("no object for x")
	}
	if got := len(facts[join][xObj]); got != 2 {
		t.Fatalf("both the initial and the if-branch definition of x must reach the join, got %d", got)
	}

	// After an unconditional redefinition only one def reaches.
	fn2, _, info2 := parseFunc(t, `package p
func g() int {
	x := 0
	x = 1
	return x
}`, "g")
	g2 := New(fn2.Body)
	facts2 := ReachingDefs(g2, info2, nil)
	var x2 types.Object
	for id, obj := range info2.Defs {
		if id.Name == "x" {
			x2 = obj
		}
	}
	if got := len(facts2[g2.Exit][x2]); got != 1 {
		t.Fatalf("redefinition must kill the earlier def, got %d reaching exit", got)
	}
}

func TestParamsSeedEntry(t *testing.T) {
	fn, _, info := parseFunc(t, `package p
func f(n int) int {
	return n
}`, "f")
	g := New(fn.Body)
	var params []*ast.Ident
	for _, field := range fn.Type.Params.List {
		params = append(params, field.Names...)
	}
	facts := ReachingDefs(g, info, params)
	var nObj types.Object
	for id, obj := range info.Defs {
		if id.Name == "n" {
			nObj = obj
		}
	}
	if len(facts[g.Exit][nObj]) != 1 {
		t.Fatal("parameter definition must reach the exit")
	}
}

func TestRangeWalkSkipsBody(t *testing.T) {
	fn, _, _ := parseFunc(t, `package p
func f(xs []int) int {
	s := 0
	for _, v := range xs {
		s += v
	}
	return s
}`, "f")
	g := New(fn.Body)
	var head *Block
	for _, b := range g.Blocks {
		if b.Kind == "range.head" {
			head = b
		}
	}
	if head == nil {
		t.Fatalf("no range head\n%s", g)
	}
	// Walking the header node must not visit the body's += statement.
	sawBody := false
	for _, n := range head.Nodes {
		Walk(n, func(m ast.Node) bool {
			if a, ok := m.(*ast.AssignStmt); ok && a.Tok == token.ADD_ASSIGN {
				sawBody = true
			}
			return true
		})
	}
	if sawBody {
		t.Error("Walk descended into a range body the CFG already decomposed")
	}
}
