// Package cfg builds an intraprocedural control-flow graph of basic blocks
// over go/ast function bodies, plus a small worklist dataflow framework
// (Solve) and a reaching-definitions analysis built on it. It is the
// foundation the flow-sensitive autopipelint analyzers (locksafe) stand on.
//
// x/tools/go/cfg would normally provide the graph, but the repository builds
// offline with no module proxy (the same DESIGN §11 deviation that motivates
// package analysis), so the subset needed here is implemented against the
// standard library. The shape mirrors x/tools: a Block holds the statements
// and decomposed control-flow expressions (an if's condition, a switch's
// tag, the range header) that execute unconditionally once the block is
// entered; edges carry the branching.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Block is one basic block: nodes that execute straight-line, then a branch
// to one of Succs. The entry block has index 0; the distinguished exit block
// (returns, panics, falling off the end) has no nodes and no successors.
type Block struct {
	Index int
	// Kind describes what created the block, for debugging and tests.
	Kind string
	// Nodes are statements and decomposed control expressions in execution
	// order. Control statements never appear whole, with one exception: a
	// *ast.RangeStmt node stands for its header (the implicit Key/Value
	// assignment and the evaluation of X) — walkers must not descend into
	// its Body, which the graph has already decomposed. Use Walk.
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
	// Live reports whether the block is reachable from the entry.
	Live bool
}

func (b *Block) String() string { return fmt.Sprintf("b%d(%s)", b.Index, b.Kind) }

// Graph is the control-flow graph of one function body.
type Graph struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
}

// String renders the graph compactly for tests: "0(entry)->1,2".
func (g *Graph) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "b%d(%s):", b.Index, b.Kind)
		for i, s := range b.Succs {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, " b%d", s.Index)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// New builds the CFG of a function body. A nil body (a declaration without a
// definition) yields a graph with only entry and exit.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = &Block{Kind: "exit"}
	b.cur = b.g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.edge(b.cur, b.g.Exit)
	// Attach the exit last so indices read in construction order.
	b.g.Exit.Index = len(b.g.Blocks)
	b.g.Blocks = append(b.g.Blocks, b.g.Exit)
	b.resolveGotos()
	b.markLive()
	return b.g
}

// frame tracks the jump targets one enclosing breakable/continuable
// statement establishes.
type frame struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil inside switch/select
}

type builder struct {
	g      *Graph
	cur    *Block
	frames []frame
	// label bookkeeping for goto: target blocks by name, and pending jumps
	// to labels not yet seen.
	labels  map[string]*Block
	pending map[string][]*Block
	// nextLabel names the statement that follows a LabeledStmt, so its loop
	// frame carries the label for `break L` / `continue L`.
	nextLabel string
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// startDead begins an unreachable block after a terminating statement
// (return, goto, panic, break): any trailing code still gets a block, but no
// edge leads to it.
func (b *builder) startDead(kind string) {
	b.cur = b.newBlock(kind)
}

func (b *builder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending statement label set by a LabeledStmt.
func (b *builder) takeLabel() string {
	l := b.nextLabel
	b.nextLabel = ""
	return l
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.startDead("unreachable.return")
	case *ast.ExprStmt:
		b.add(s)
		if isPanic(s.X) {
			b.edge(b.cur, b.g.Exit)
			b.startDead("unreachable.panic")
		}
	case nil:
		// absent init/post clauses
	default:
		// Assign, IncDec, Decl, Send, Go, Defer, Empty: straight-line.
		b.add(s)
	}
}

// isPanic recognizes a call to the predeclared panic. Shadowing a builtin
// named panic would fool this syntactic test; the repository does not.
func isPanic(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	b.takeLabel() // labels on if only matter for goto, handled in labeledStmt
	b.stmt(s.Init)
	b.add(s.Cond)
	cond := b.cur
	then := b.newBlock("if.then")
	b.edge(cond, then)
	b.cur = then
	b.stmtList(s.Body.List)
	thenEnd := b.cur

	done := b.newBlock("if.done")
	if s.Else != nil {
		els := b.newBlock("if.else")
		b.edge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		b.edge(b.cur, done)
	} else {
		b.edge(cond, done)
	}
	b.edge(thenEnd, done)
	b.cur = done
}

func (b *builder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	b.stmt(s.Init)
	head := b.newBlock("for.head")
	b.edge(b.cur, head)
	b.cur = head
	if s.Cond != nil {
		b.add(s.Cond)
	}
	body := b.newBlock("for.body")
	done := b.newBlock("for.done")
	b.edge(head, body)
	if s.Cond != nil {
		b.edge(head, done)
	}

	post := head
	if s.Post != nil {
		post = b.newBlock("for.post")
	}
	b.frames = append(b.frames, frame{label: label, breakTo: done, continueTo: post})
	b.cur = body
	b.stmtList(s.Body.List)
	b.frames = b.frames[:len(b.frames)-1]
	b.edge(b.cur, post)
	if s.Post != nil {
		b.cur = post
		b.stmt(s.Post)
		b.edge(b.cur, head)
	}
	b.cur = done
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock("range.head")
	b.edge(b.cur, head)
	// The RangeStmt node stands for its header: X's evaluation and the
	// per-iteration Key/Value assignment. Walk knows not to descend into Body.
	head.Nodes = append(head.Nodes, s)
	body := b.newBlock("range.body")
	done := b.newBlock("range.done")
	b.edge(head, body)
	b.edge(head, done)

	b.frames = append(b.frames, frame{label: label, breakTo: done, continueTo: head})
	b.cur = body
	b.stmtList(s.Body.List)
	b.frames = b.frames[:len(b.frames)-1]
	b.edge(b.cur, head)
	b.cur = done
}

func (b *builder) switchStmt(s *ast.SwitchStmt) {
	label := b.takeLabel()
	b.stmt(s.Init)
	if s.Tag != nil {
		b.add(s.Tag)
	}
	b.caseClauses(s.Body.List, label, func(c *ast.CaseClause) []ast.Node {
		nodes := make([]ast.Node, len(c.List))
		for i, e := range c.List {
			nodes[i] = e
		}
		return nodes
	})
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	label := b.takeLabel()
	b.stmt(s.Init)
	b.add(s.Assign)
	b.caseClauses(s.Body.List, label, func(*ast.CaseClause) []ast.Node { return nil })
}

// caseClauses lowers switch/type-switch bodies: the current block branches to
// every clause (and past the switch when no default exists); fallthrough
// chains clause bodies.
func (b *builder) caseClauses(clauses []ast.Stmt, label string, head func(*ast.CaseClause) []ast.Node) {
	src := b.cur
	done := b.newBlock("switch.done")
	b.frames = append(b.frames, frame{label: label, breakTo: done})

	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cs := range clauses {
		c := cs.(*ast.CaseClause)
		blocks[i] = b.newBlock("switch.case")
		blocks[i].Nodes = append(blocks[i].Nodes, head(c)...)
		b.edge(src, blocks[i])
		if c.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(src, done)
	}
	for i, cs := range clauses {
		c := cs.(*ast.CaseClause)
		b.cur = blocks[i]
		fallsThrough := b.clauseBody(c.Body)
		if fallsThrough && i+1 < len(clauses) {
			b.edge(b.cur, blocks[i+1])
			b.startDead("unreachable.fallthrough")
		}
		b.edge(b.cur, done)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

// clauseBody builds a case body and reports whether it ends in fallthrough.
func (b *builder) clauseBody(body []ast.Stmt) bool {
	for i, s := range body {
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
			b.stmtList(body[i+1:]) // unreachable but keep blocks total
			return true
		}
		b.stmt(s)
	}
	return false
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	src := b.cur
	done := b.newBlock("select.done")
	b.frames = append(b.frames, frame{label: label, breakTo: done})
	for _, cs := range s.Body.List {
		c := cs.(*ast.CommClause)
		blk := b.newBlock("select.case")
		b.edge(src, blk)
		b.cur = blk
		if c.Comm != nil {
			b.add(c.Comm)
		}
		b.stmtList(c.Body)
		b.edge(b.cur, done)
	}
	if len(s.Body.List) == 0 {
		// An empty select blocks forever: no path onward.
		b.edge(src, b.g.Exit)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}

func (b *builder) labeledStmt(s *ast.LabeledStmt) {
	if b.labels == nil {
		b.labels = map[string]*Block{}
	}
	lbl := b.newBlock("label." + s.Label.Name)
	b.edge(b.cur, lbl)
	b.labels[s.Label.Name] = lbl
	b.cur = lbl
	b.nextLabel = s.Label.Name
	b.stmt(s.Stmt)
	b.nextLabel = ""
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	name := ""
	if s.Label != nil {
		name = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if name == "" || f.label == name {
				b.edge(b.cur, f.breakTo)
				break
			}
		}
	case token.CONTINUE:
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if f.continueTo != nil && (name == "" || f.label == name) {
				b.edge(b.cur, f.continueTo)
				break
			}
		}
	case token.GOTO:
		if b.pending == nil {
			b.pending = map[string][]*Block{}
		}
		if t, ok := b.labels[name]; ok {
			b.edge(b.cur, t)
		} else {
			b.pending[name] = append(b.pending[name], b.cur)
		}
	case token.FALLTHROUGH:
		// handled in clauseBody; a stray fallthrough would not compile
	}
	b.startDead("unreachable.branch")
}

// resolveGotos patches forward gotos whose labels appeared later.
func (b *builder) resolveGotos() {
	for name, srcs := range b.pending {
		t, ok := b.labels[name]
		if !ok {
			t = b.g.Exit // would not compile; keep the graph well-formed
		}
		for _, src := range srcs {
			b.edge(src, t)
		}
	}
}

func (b *builder) markLive() {
	var visit func(*Block)
	visit = func(blk *Block) {
		if blk.Live {
			return
		}
		blk.Live = true
		for _, s := range blk.Succs {
			visit(s)
		}
	}
	visit(b.g.Entry)
}

// Walk visits the syntax a block node owns in source order: the node's own
// subtree, minus nested function literals' bodies (their statements execute
// at call time, on a different CFG) and minus a range statement's body (the
// graph decomposed it into other blocks). The visitor returns false to prune
// the subtree below n.
func Walk(n ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case nil:
			return false
		case *ast.FuncLit:
			return visit(m) && false
		case *ast.RangeStmt:
			if !visit(m) {
				return false
			}
			for _, sub := range []ast.Node{m.Key, m.Value, m.X} {
				if sub != nil {
					Walk(sub, visit)
				}
			}
			return false
		default:
			return visit(m)
		}
	})
}
