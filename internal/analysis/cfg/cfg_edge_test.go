package cfg

import (
	"go/ast"
	"go/token"
	"testing"
)

// findBlock returns the first live block whose node list satisfies pred.
func findBlock(g *Graph, pred func(ast.Node) bool) *Block {
	for _, b := range g.Blocks {
		if !b.Live {
			continue
		}
		for _, n := range b.Nodes {
			if pred(n) {
				return b
			}
		}
	}
	return nil
}

// A defer inside a loop body is an ordinary per-iteration node: it must land
// in a live block on the loop's back-edge path, not be hoisted out of the
// loop or start a new block of its own.
func TestDeferInsideLoopBody(t *testing.T) {
	fn, _, _ := parseFunc(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		defer func() { s = 0 }()
		s += i
	}
	return s
}`, "f")
	g := New(fn.Body)
	deferBlk := findBlock(g, func(n ast.Node) bool {
		_, ok := n.(*ast.DeferStmt)
		return ok
	})
	if deferBlk == nil {
		t.Fatalf("defer statement not recorded in any live block\n%s", g)
	}
	// The block holding the defer must reach the loop head again (directly
	// or through the post statement) — i.e. sit inside the loop, so analyses
	// see it once per iteration.
	onBackPath := false
	seen := map[*Block]bool{deferBlk: true}
	work := []*Block{deferBlk}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs {
			if s.Index < deferBlk.Index && s.Live {
				onBackPath = true
			}
			if !seen[s] && s.Index >= deferBlk.Index {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	if !onBackPath {
		t.Fatalf("defer block does not reach the loop head; defer was hoisted out of the loop\n%s", g)
	}
}

// A select with a default clause branches to every comm clause plus the
// default — three ways here — and every arm rejoins at select.done, because
// default makes the select non-blocking.
func TestSelectWithDefault(t *testing.T) {
	fn, _, _ := parseFunc(t, `package p
func f(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case <-b:
	default:
		return -1
	}
	return 0
}`, "f")
	g := New(fn.Body)
	if got := len(g.Entry.Succs); got != 3 {
		t.Fatalf("select with default should fan out 3 ways, got %d\n%s", got, g)
	}
	cases := 0
	for _, b := range g.Blocks {
		if b.Kind == "select.case" && b.Live {
			cases++
		}
	}
	if cases != 3 {
		t.Fatalf("want 3 live select.case blocks (two comms + default), got %d\n%s", cases, g)
	}
}

// continue with a label inside nested ranges must edge to the OUTER range
// head — the frame whose label matches — skipping the innermost frame the
// unlabeled form would target.
func TestLabeledContinueAcrossNestedRanges(t *testing.T) {
	fn, _, _ := parseFunc(t, `package p
func f(xs, ys []int) int {
	s := 0
outer:
	for _, x := range xs {
		for _, y := range ys {
			if y == x {
				continue outer
			}
			s += y
		}
		s += x
	}
	return s
}`, "f")
	g := New(fn.Body)

	rangeHead := func(slice string) *Block {
		return findBlock(g, func(n ast.Node) bool {
			r, ok := n.(*ast.RangeStmt)
			if !ok {
				return false
			}
			id, ok := r.X.(*ast.Ident)
			return ok && id.Name == slice
		})
	}
	outerHead, innerHead := rangeHead("xs"), rangeHead("ys")
	if outerHead == nil || innerHead == nil {
		t.Fatalf("missing range head blocks\n%s", g)
	}
	contBlk := findBlock(g, func(n ast.Node) bool {
		br, ok := n.(*ast.BranchStmt)
		return ok && br.Tok == token.CONTINUE
	})
	if contBlk == nil {
		t.Fatalf("continue statement not recorded\n%s", g)
	}
	toOuter, toInner := false, false
	for _, s := range contBlk.Succs {
		if s == outerHead {
			toOuter = true
		}
		if s == innerHead {
			toInner = true
		}
	}
	if !toOuter {
		t.Fatalf("continue outer must edge to the outer range head\n%s", g)
	}
	if toInner {
		t.Fatalf("continue outer must not edge to the inner range head\n%s", g)
	}
}
