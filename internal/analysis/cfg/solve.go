package cfg

// Problem defines one forward dataflow analysis over a Graph for Solve: a
// fact of type F flows along edges, facts joining at block entries, each
// block transforming its entry fact into an exit fact.
type Problem[F any] interface {
	// Entry is the fact holding at function entry.
	Entry() F
	// Join merges two facts arriving at the same block. It must be
	// commutative, associative, and monotone for Solve to terminate.
	Join(a, b F) F
	// Transfer applies one block's nodes to an entry fact. It must not
	// mutate in.
	Transfer(b *Block, in F) F
	// Equal reports fact equality; the fixpoint stops when no block's entry
	// fact changes.
	Equal(a, b F) bool
}

// Solve runs the worklist fixpoint of a forward dataflow problem and returns
// the entry fact of every reachable block. Unreachable blocks are absent
// from the result: no fact holds there.
func Solve[F any](g *Graph, p Problem[F]) map[*Block]F {
	in := make(map[*Block]F, len(g.Blocks))
	in[g.Entry] = p.Entry()

	queue := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		queued[b] = false
		out := p.Transfer(b, in[b])
		for _, s := range b.Succs {
			next := out
			old, seen := in[s]
			if seen {
				next = p.Join(old, out)
				if p.Equal(old, next) {
					continue
				}
			}
			in[s] = next
			if !queued[s] {
				queued[s] = true
				queue = append(queue, s)
			}
		}
	}
	return in
}
