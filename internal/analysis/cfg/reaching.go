package cfg

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Defs is a reaching-definitions fact: for each variable, the set of
// definition sites (assignment nodes, or the *ast.Ident of a parameter or
// range variable) that may have produced its current value.
type Defs map[types.Object]map[ast.Node]bool

func (d Defs) clone() Defs {
	out := make(Defs, len(d))
	for obj, sites := range d {
		cp := make(map[ast.Node]bool, len(sites))
		for n := range sites {
			cp[n] = true
		}
		out[obj] = cp
	}
	return out
}

// reachingProblem is the classic gen/kill reaching-definitions analysis: an
// assignment kills every prior definition of its target and generates
// itself; joins union.
type reachingProblem struct {
	info  *types.Info
	entry Defs
}

func (p reachingProblem) Entry() Defs { return p.entry.clone() }

func (p reachingProblem) Join(a, b Defs) Defs {
	out := a.clone()
	for obj, sites := range b {
		if out[obj] == nil {
			out[obj] = map[ast.Node]bool{}
		}
		for n := range sites {
			out[obj][n] = true
		}
	}
	return out
}

func (p reachingProblem) Transfer(b *Block, in Defs) Defs {
	out := in.clone()
	for _, n := range b.Nodes {
		Walk(n, func(m ast.Node) bool {
			for _, def := range nodeDefs(p.info, m) {
				out[def.obj] = map[ast.Node]bool{def.site: true}
			}
			return true
		})
	}
	return out
}

func (p reachingProblem) Equal(a, b Defs) bool {
	if len(a) != len(b) {
		return false
	}
	for obj, sa := range a {
		sb, ok := b[obj]
		if !ok || len(sa) != len(sb) {
			return false
		}
		for n := range sa {
			if !sb[n] {
				return false
			}
		}
	}
	return true
}

type def struct {
	obj  types.Object
	site ast.Node
}

// nodeDefs lists the variable definitions one AST node performs.
func nodeDefs(info *types.Info, n ast.Node) []def {
	obj := func(id *ast.Ident) types.Object {
		if o := info.Defs[id]; o != nil {
			return o
		}
		return info.Uses[id]
	}
	var out []def
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
				if o := obj(id); o != nil {
					out = append(out, def{o, n})
				}
			}
		}
	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
			if o := obj(id); o != nil {
				out = append(out, def{o, n})
			}
		}
	case *ast.ValueSpec:
		for _, id := range n.Names {
			if id.Name != "_" {
				if o := obj(id); o != nil {
					out = append(out, def{o, n})
				}
			}
		}
	case *ast.RangeStmt:
		if n.Tok != token.DEFINE && n.Tok != token.ASSIGN {
			break
		}
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if id, ok := e.(*ast.Ident); ok && id != nil && id.Name != "_" {
				if o := obj(id); o != nil {
					out = append(out, def{o, n})
				}
			}
		}
	}
	return out
}

// ReachingDefs computes, for every reachable block, the definitions reaching
// its entry. entryIdents seeds the analysis with definitions holding at
// function entry (parameters, receivers, named results).
func ReachingDefs(g *Graph, info *types.Info, entryIdents []*ast.Ident) map[*Block]Defs {
	entry := Defs{}
	for _, id := range entryIdents {
		if id == nil || id.Name == "_" {
			continue
		}
		if o := info.Defs[id]; o != nil {
			entry[o] = map[ast.Node]bool{id: true}
		}
	}
	return Solve[Defs](g, reachingProblem{info: info, entry: entry})
}
