// Package analysistest runs an analyzer over a fixture package and checks
// its diagnostics against `// want "regexp"` comments, the x/tools
// analysistest convention: every diagnostic must be expected on its exact
// line, and every expectation must be matched. Fixtures live under
// internal/analysis/testdata/src/<name> and may import only the standard
// library (they are typechecked from source, offline).
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"autopipe/internal/analysis"
)

// wantRE extracts the quoted regexps of a `// want "..." "..."` comment.
var wantRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads the fixture package rooted at dir, applies the analyzer, and
// reports every mismatch between diagnostics and want-comments to t.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	files, expects, err := load(fset, dir)
	if err != nil {
		t.Fatal(err)
	}

	tc := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	info := analysis.NewInfo()
	pkg, err := tc.Check(filepath.Base(dir), fset, files, info)
	if err != nil {
		t.Fatalf("fixture %s does not typecheck: %v", dir, err)
	}

	diags, err := analysis.RunAnalyzers([]*analysis.Analyzer{a}, fset, files, pkg, info)
	if err != nil {
		t.Fatal(err)
	}

	for _, d := range diags {
		if !consume(expects, d) {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re)
		}
	}
}

// Load typechecks the fixture package rooted at dir under the given import
// path and returns the analyzer's raw diagnostics, ignoring want-comments.
// Scope-sensitivity tests use it to run an analyzer against a package path
// outside its scope.
func Load(t *testing.T, dir, pkgPath string, a *analysis.Analyzer) ([]analysis.Diagnostic, error) {
	t.Helper()
	fset := token.NewFileSet()
	files, _, err := load(fset, dir)
	if err != nil {
		return nil, err
	}
	tc := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	info := analysis.NewInfo()
	pkg, err := tc.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("fixture %s does not typecheck: %v", dir, err)
	}
	return analysis.RunAnalyzers([]*analysis.Analyzer{a}, fset, files, pkg, info)
}

func consume(expects []*expectation, d analysis.Diagnostic) bool {
	for _, e := range expects {
		if e.matched || e.file != d.Pos.Filename || e.line != d.Pos.Line {
			continue
		}
		if e.re.MatchString(d.Message) {
			e.matched = true
			return true
		}
	}
	return false
}

func load(fset *token.FileSet, dir string) ([]*ast.File, []*expectation, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	var expects []*expectation
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, ent.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				quoted := wantRE.FindAllString(text[len("want "):], -1)
				if len(quoted) == 0 {
					return nil, nil, fmt.Errorf("%s: malformed want comment: %s", fset.Position(c.Pos()), c.Text)
				}
				for _, q := range quoted {
					pat, err := strconv.Unquote(q)
					if err != nil {
						return nil, nil, fmt.Errorf("%s: bad want pattern %s: %v", fset.Position(c.Pos()), q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, nil, fmt.Errorf("%s: bad want regexp %s: %v", fset.Position(c.Pos()), q, err)
					}
					pos := fset.Position(c.Pos())
					expects = append(expects, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	sort.Slice(files, func(i, j int) bool {
		return fset.Position(files[i].Pos()).Filename < fset.Position(files[j].Pos()).Filename
	})
	return files, expects, nil
}
