package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
)

// This file implements the build-system side of the `go vet -vettool`
// protocol, mirroring x/tools' unitchecker: the go command invokes the tool
// once per compilation unit with a JSON *.cfg file describing the unit's
// files, its import map, and the export-data files of its dependencies. The
// tool typechecks the unit against that export data, runs its analyzers,
// prints findings to stderr, and writes the (empty — autopipelint has no
// facts) .vetx fact file the build system expects.

// UnitConfig describes one compilation unit, decoded from the *.cfg file
// `go vet` hands the tool. Field names are fixed by the protocol.
type UnitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// RunUnit loads the compilation unit described by cfgFile, applies the
// analyzers, and returns the diagnostics. It always writes the fact file
// the go command expects, even when analysis is skipped (VetxOnly units are
// dependencies being pre-scanned for facts; autopipelint exports none).
func RunUnit(cfgFile string, analyzers []*Analyzer) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	cfg := new(UnitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode JSON config file %s: %v", cfgFile, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}
	if err := writeVetx(cfg); err != nil {
		return nil, err
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil // the compiler will report it
			}
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is a resolved package path, not a source import path.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath] // resolve vendoring, etc
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return compilerImporter.Import(path)
		}),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := NewInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, err
	}
	return RunAnalyzers(analyzers, fset, files, pkg, info)
}

// writeVetx writes the fact file the go command caches for dependent units.
// autopipelint defines no facts, so the file is empty; dependents treat an
// empty fact set as "nothing known", which is correct.
func writeVetx(cfg *UnitConfig) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	return os.WriteFile(cfg.VetxOutput, nil, 0666)
}
