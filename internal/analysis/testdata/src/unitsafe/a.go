// Package unitsafe is a fixture for the unitsafe analyzer. It declares its
// own unit types; the test registers them in place of the production
// sim.Time / sim.Bytes / cost.FLOPs.
package unitsafe

// Time is seconds, Bytes is a payload size, FLOPs is compute work.
type Time float64
type Bytes int64
type FLOPs float64

// --- literals in unit-typed positions ---

func sleep(t Time) {}

func callSites() {
	sleep(3)           // want "raw literal fed into unitsafe.Time-typed parameter t"
	sleep(-2.5)        // want "raw literal fed into unitsafe.Time-typed parameter t"
	sleep(0)           // zero is unit-free
	sleep(Time(3))     // explicit conversion states the unit
	sleep(Time(3) * 2) // scaling a unit value by a scalar is legal
}

func waitAll(budget Time, ts ...Time) {}

func variadicSites(t Time) {
	waitAll(t, 1, Time(2)) // want "raw literal fed into unitsafe.Time-typed parameter ts"
	waitAll(5, t)          // want "raw literal fed into unitsafe.Time-typed parameter budget"
}

// --- literals as arithmetic / comparison operands ---

func after(t Time) bool {
	return t > 5 // want "raw literal > unitsafe.Time-typed operand"
}

func pad(t Time) Time {
	return t + 0.5 // want "raw literal \\+ unitsafe.Time-typed operand"
}

func padLeft(t Time) Time {
	return 0.5 + t // want "raw literal \\+ unitsafe.Time-typed operand"
}

func nonZeroYet(t Time) bool {
	return t != 0 // zero is unit-free
}

func scale(t Time) Time {
	return t * 2 // scaling is legal: the literal is a dimensionless factor
}

func halve(t Time) Time {
	return t / 2 // so is dividing by a scalar
}

// --- same-unit products ---

const tick Time = 1e-3

func square(a, b Time) Time {
	return a * b // want "unitsafe.Time . unitsafe.Time has dimension"
}

func constSquare(t Time) Time {
	return t * tick // want "unitsafe.Time . unitsafe.Time has dimension"
}

func ratio(a, b Time) float64 {
	return float64(a / b) // a ratio of like units is dimensionless: legal
}

// --- cross-unit conversions ---

func launder(b Bytes) Time {
	return Time(b) // want "conversion unitsafe.Time.unitsafe.Bytes. launders a dimension"
}

func launderFlops(f FLOPs) Bytes {
	return Bytes(f) // want "conversion unitsafe.Bytes.unitsafe.FLOPs. launders a dimension"
}

func boundary(b Bytes, bandwidth float64) Time {
	return Time(float64(b) / bandwidth) // through float64 at an explicit rate: legal
}

func annotate(raw float64) Time {
	return Time(raw) // plain numeric -> unit is the sanctioned entry point
}

func extract(t Time) float64 {
	return float64(t) // unit -> plain numeric is the sanctioned exit
}

// --- escape hatch ---

func calibrated() {
	//lint:allow unitsafe calibration constant measured in seconds on the reference host
	sleep(42)
}
