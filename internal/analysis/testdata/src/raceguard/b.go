// raceguard fixture, interprocedural half: spawned named functions and
// methods resolved through the package call graph, shared accesses inherited
// from callees with witness chains, and lock sets rebased across the call
// edge (bothGuarded only stays silent because the callee frame's r.mu is
// recognized as the caller frame's r.mu). See a.go for the intra-procedural
// closure cases.
package raceguard

import "sync"

type rec struct {
	mu sync.Mutex
	n  int
	a  int
	b  int
}

func (r *rec) inc() { r.n++ }

func (r *rec) lockedInc() {
	r.mu.Lock()
	r.n++
	r.mu.Unlock()
}

// --- positive: unguarded receiver field through a spawned method ---------

func methodSpawn(r *rec) {
	go r.inc()
	r.n++ // want "unsynchronized access to r.n"
}

// --- positive: goroutine locks, spawner does not -------------------------

func goroutineGuardedOnly(r *rec) {
	go r.lockedInc()
	r.n++ // want "unsynchronized access to r.n"
}

// --- positive: spawner locks, goroutine does not -------------------------

func spawnerGuardedOnly(r *rec) {
	go r.inc()
	r.mu.Lock()
	r.n++ // want "unsynchronized access to r.n"
	r.mu.Unlock()
}

// --- positive: two sibling goroutines on a package variable --------------

var total int

func addTotal() { total++ }

func siblings() {
	go addTotal()
	go addTotal() // want "two goroutines race on total"
}

// --- positive: two different spawned functions, same package variable ----

var mode int

func setFast() { mode = 1 }

func setSlow() { mode = 2 }

func configRace() {
	go setFast()
	go setSlow() // want "two goroutines race on mode"
}

// --- positive: in-loop spawner access races the previous iteration -------

var hits int

func recordHit() { hits++ }

func loopBody() {
	for i := 0; i < 3; i++ {
		go recordHit() // want "races its own iterations on hits"
		hits++         // want "unsynchronized access to hits"
	}
}

// --- positive: witness chain through a helper call -----------------------

var counter int

func bump() { counter++ }

func viaHelper() {
	done := make(chan struct{})
	go func() { bump(); close(done) }()
	counter++ // want "unsynchronized access to counter"
	<-done
}

// --- negative: both sides hold the same mutex ----------------------------

func bothGuarded(r *rec) {
	go r.lockedInc()
	r.mu.Lock()
	r.n++
	r.mu.Unlock()
}

// --- negative: read-read sharing is not a race ---------------------------

var config int

func readConfig() { _ = config }

func readers() {
	go readConfig()
	go readConfig()
	_ = config
}

// --- negative: distinct fields of one struct are distinct locations ------

func distinctFields(r *rec) {
	go func() { r.a++ }()
	r.b++
}

// --- negative: sync.Once.Do on both sides is mutual exclusion ------------

var initialized int

func setup() { initialized = 1 }

func onceBoth(o *sync.Once) {
	go func() { o.Do(setup) }()
	o.Do(setup)
}
