// raceguard fixture: positive cases (a diagnostic expected on the line) and
// negative cases (any diagnostic would fail the harness). Positions: a
// spawner-vs-goroutine race is reported at the spawner's racing access; a
// goroutine-vs-goroutine or loop-iteration race at the `go` statement.
//
// This file holds the intra-procedural cases — closures capturing spawner
// locals, with ordering (or its absence) expressed directly in the spawning
// function. The cases that need the call graph and cross-function summaries
// (spawned named functions and methods, witness chains) live in b.go.
package raceguard

import "sync"

// --- positive: unguarded captured variable -------------------------------

func capturedUnguarded() {
	x := 0
	go func() { x++ }()
	x++ // want "unsynchronized access to x"
}

// --- positive: loop-spawned goroutine races its own iterations -----------

func loopSpawn() {
	x := 0
	for i := 0; i < 4; i++ {
		go func() { x++ }() // want "races its own iterations on x"
	}
}

// --- positive: Wait on the wrong WaitGroup orders nothing ----------------

func wrongGroup() {
	var wg, other sync.WaitGroup
	x := 0
	wg.Add(1)
	go func() { x++; wg.Done() }()
	other.Wait()
	x++ // want "unsynchronized access to x"
	wg.Wait()
	_ = other
}

// --- positive: access before the Wait that would order it ----------------

func waitTooLate() {
	var wg sync.WaitGroup
	x := 0
	wg.Add(1)
	go func() { x++; wg.Done() }()
	x++ // want "unsynchronized access to x"
	wg.Wait()
}

// --- positive: a send under select-with-default orders nothing -----------

func selectDefaultNoOrder() {
	ch := make(chan int, 1)
	x := 0
	go func() {
		x++
		select {
		case ch <- 1:
		default:
		}
	}()
	<-ch
	x++ // want "unsynchronized access to x"
}

// --- positive: waiver demonstration (suppressed, so no want) -------------

func waived() {
	x := 0
	go func() { x++ }()
	x++ //lint:allow raceguard fixture: demonstrates the per-line escape hatch
}

// --- negative: write sequenced before the spawn --------------------------

func writeBeforeSpawn() {
	x := 1
	go func() { _ = x }()
}

// --- negative: write before go, read after Wait (Done→Wait edge) ---------

func orderedByWaitGroup() {
	var wg sync.WaitGroup
	x := 1
	wg.Add(1)
	go func() { x++; wg.Done() }()
	wg.Wait()
	_ = x
}

// --- negative: close→recv channel hand-off -------------------------------

func orderedByChannel() {
	x := 0
	done := make(chan struct{})
	go func() { x = 42; close(done) }()
	<-done
	_ = x
}

// --- negative: spawner's send before the goroutine's receive -------------

func handoffSend(jobs chan int) {
	x := 0
	go func() {
		<-jobs
		x++
	}()
	x = 5
	jobs <- 1
}
