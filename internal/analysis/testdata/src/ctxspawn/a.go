// Package ctxspawn is a fixture for the ctxspawn analyzer.
package ctxspawn

import (
	"context"
	"sync"
)

func orphan(results chan<- int) {
	go func() { // want "no cancellation path"
		results <- 1
	}()
}

func withContext(ctx context.Context, results chan<- int) {
	go func() {
		select {
		case results <- 1:
		case <-ctx.Done():
		}
	}()
}

func withContextParam(ctx context.Context) {
	go func(ctx context.Context) {
		<-ctx.Done()
	}(ctx)
}

func withDoneChannel(done chan struct{}, results chan<- int) {
	go func() {
		select {
		case results <- 1:
		case <-done:
		}
	}()
}

func addInsideGoroutine(ctx context.Context, wg *sync.WaitGroup) {
	go func() {
		wg.Add(1) // want "races with Wait"
		defer wg.Done()
		<-ctx.Done()
	}()
}

func addBeforeSpawn(ctx context.Context, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-ctx.Done()
	}()
}

// fireAndForget provably terminates; waived at the spawn site.
func fireAndForget(once *sync.Once) {
	//lint:allow ctxspawn runs once and returns immediately
	go func() {
		once.Do(func() {})
	}()
}
