// Regression fixtures for the v2 → v3 upgrade. The intraprocedural v2
// analyzer skipped every non-literal spawn (`go s.run()`, `go helper()`) with
// an explicit "cancellation lives in the callee" comment — the false negative
// this file pins: none of the `want` lines below produced any diagnostic
// under v2. It also could not see cancellation observed by a helper called
// from inside a literal, which made cancellable goroutines false-positive.
package ctxspawn

import (
	"context"
	"sync"
)

type worker struct {
	n    int
	done chan struct{}
}

// run has no cancellation path of any kind.
func (w *worker) run() { w.n++ }

// runDone selects on the receiver's done channel.
func (w *worker) runDone() {
	select {
	case <-w.done:
	default:
		w.n++
	}
}

// runCtx takes the context directly.
func (w *worker) runCtx(ctx context.Context) {
	<-ctx.Done()
	w.n++
}

func spawnMethod(w *worker) {
	go w.run() // want "no cancellation path"
}

func spawnOK(w *worker, ctx context.Context) {
	go w.runDone()     // callee observes w.done: fine
	go w.runCtx(ctx)   // ctx passed at the spawn site and observed: fine
	go uncancellable() // want "goroutine uncancellable.*no cancellation path"
}

func uncancellable() {
	for i := 0; i < 1000; i++ {
	}
}

// waitLoop observes a package-level abort channel two calls deep.
var abort = make(chan struct{})

func waitInner() {
	<-abort
}

func waitOuter() { waitInner() }

func spawnTransitive() {
	go waitOuter() // cancellation observed transitively: fine
}

// Bound function values resolve through the single-assignment binding.
func spawnBound(ctx context.Context) {
	f := func() { <-ctx.Done() }
	go f() // fine: the bound literal captures ctx
	g := func() { println("x") }
	go g() // want "no cancellation path"
}

// A literal whose cancellation lives in a helper it calls: v2 reported this
// as uncancellable (false positive); v3's summary clears it.
func spawnViaHelper() {
	go func() {
		waitInner()
	}()
}

// Add inside a *named* spawned function races with Wait exactly as in a
// literal; v2 only caught the literal form.
func addsInside(wg *sync.WaitGroup, done chan struct{}) {
	wg.Add(1)
	defer wg.Done()
	<-done
}

func spawnAddsInside(wg *sync.WaitGroup, done chan struct{}) {
	go addsInside(wg, done) // want "calls sync.WaitGroup.Add inside the goroutine"
}
