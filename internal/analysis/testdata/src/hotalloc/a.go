// Package hotalloc is the fixture for the hot-path allocation analyzer: the
// //hot marker, loop-body regions, derived hotness through the package call
// graph, cold-exit pruning, the append rules, interface boxing, and the
// waiver escape hatch.
package hotalloc

import (
	"errors"
	"fmt"
)

type item struct{ k, v int }

//hot:per-iteration allocation budget is zero
func hotLoop(items []int) int {
	total := 0
	header := make([]byte, 8) // before the loop: not per-iteration
	for i, v := range items {
		m := map[int]int{i: v} // want "map literal allocates"
		total += m[i] + len(header)
		s := fmt.Sprintf("%d", v) // want "Sprintf allocates"
		total += len(s)
		p := &item{k: i} // want "&item composite literal escapes"
		total += p.k
		total += helperAlloc(v)
		f := func() int { return v } // want "function literal allocates a closure"
		total += f()
		b := make([]int, v) // want "make allocates per iteration"
		total += len(b)
		if v < 0 {
			// Cold exit: this block leaves the function, so its allocation
			// is not a per-iteration cost.
			return len(fmt.Sprint(total))
		}
	}
	return total
}

// helperAlloc has no annotation: v2's intraprocedural suite had no way to
// flag it, but it is reachable from hotLoop's loop body.
func helperAlloc(v int) int {
	buf := make([]int, v) // want "reachable from hot hotLoop.*make allocates"
	return len(buf)
}

//hot:per-iteration allocation budget is zero
func hotNoLoop(n int) []byte {
	// No loops: the whole body is the hot region.
	return make([]byte, n) // want "in hot hotNoLoop.*make allocates"
}

//hot:per-iteration allocation budget is zero
func appends(dst, src []int) []int {
	for _, v := range src {
		dst = append(dst, v)       // in-place amortized growth: sanctioned
		grown := append(dst, v)    // want "append escapes or grows"
		fresh := []int{v}          // want "slice literal allocates"
		local := make([]int, 0, 4) // want "make allocates per iteration"
		local = append(local, v)   // want "append escapes or grows"
		dst = append(dst, grown[0]+fresh[0]+local[0])
	}
	return dst
}

func sink(v any) bool { return v != nil }

var errNeg = errors.New("negative")

//hot:per-iteration allocation budget is zero
func boxing(vals []int, e *item) int {
	n := 0
	for _, v := range vals {
		if sink(v) { // want "argument v boxes into interface parameter"
			n++
		}
		if sink(e) { // pointer-shaped: stored directly, no allocation
			n++
		}
		if sink(errNeg) { // already an interface value: no conversion
			n++
		}
		n += concat("a", "b")
	}
	return n
}

// concat is derived hot via the call in boxing's loop.
func concat(a, b string) int {
	return len(a + b) // want "string concatenation builds a new string"
}

//hot:per-iteration allocation budget is zero
func waived(n int) []byte {
	//lint:allow hotalloc one-shot trailer buffer, measured cold
	return make([]byte, n)
}

// coldPlain is not hot and calls nothing hot: allocate freely. (The analyzer
// tests also re-run this fixture with a hot-list entry naming coldPlain, under
// which the per-iteration make below becomes a finding — no want comment here
// because the annotation-driven run never marks it.)
func coldPlain(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		row := make([]int, 1)
		row[0] = i * i
		out = append(out, row[0])
	}
	return out
}
