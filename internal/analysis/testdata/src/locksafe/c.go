package locksafe

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

// valueReceiver copies the mutex on every call.
func (g guarded) valueReceiver() int { // want "receiver copies a mutex by value"
	return g.n
}

// mutexParam copies the lock into the callee.
func lockTwice(mu sync.Mutex) { // want "parameter copies a mutex by value"
	mu.Lock()
	mu.Unlock()
}

// structParam copies a struct that embeds a mutex.
func inspect(g guarded) int { // want "parameter copies a mutex by value"
	return g.n
}

// pointerReceiver and pointer params share the lock: clean.
func (g *guarded) bump() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func inspectPtr(g *guarded) int {
	return g.n
}

var global guarded

// copyAssignment forks the global's mutex.
func snapshot() {
	cp := global // want "assignment copies global by value"
	cp.bump()
}

// copyArgument forks it at a call site.
func use(v interface{}) {}

func passByValue() {
	use(global) // want "call passes global by value"
}

// freshComposite builds a new value with a composite literal: not a copy of
// a live lock, stays silent.
func fresh() {
	g := guarded{n: 1}
	g.bump()
}

// alloc: the type operand of new/make names a lock-bearing type but copies
// no existing lock; must stay silent.
func alloc() []guarded {
	e := new(guarded)
	e.bump()
	return make([]guarded, 3)
}
