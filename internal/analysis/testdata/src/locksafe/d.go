// Regression fixtures for the v3 interprocedural blocking check: v2 flagged
// a channel receive with the mutex held only when the receive was textually
// inside the locked function — wrapping it in a one-line method made the
// deadlock invisible. None of the `want` lines below produced any diagnostic
// under v2.
package locksafe

import "sync"

type pipe struct {
	mu sync.Mutex
	ch chan int
	n  int
}

// drain blocks on a receive; pump on a send. Their own bodies hold no lock,
// so v2 had nothing to say about them — and still doesn't, correctly.
func (p *pipe) drain() int    { return <-p.ch }
func (p *pipe) pump(v int)    { p.ch <- v }
func (p *pipe) bump()         { p.n++ }
func (p *pipe) viaDrain() int { return p.drain() }

func (p *pipe) badDrain() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.drain() // want "drain, which may block .channel receive., while holding p.mu"
}

func (p *pipe) badPump(v int) {
	p.mu.Lock()
	p.pump(v) // want "pump, which may block .channel send., while holding p.mu"
	p.mu.Unlock()
}

// Two hops: viaDrain inherits drain's may-block fact.
func (p *pipe) badViaDrain() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.viaDrain() // want "viaDrain, which may block .* while holding p.mu"
}

// A WaitGroup.Wait wrapped in a helper is caught the same way.
func waitAll(wg *sync.WaitGroup) { wg.Wait() }

func (p *pipe) badWait(wg *sync.WaitGroup) {
	p.mu.Lock()
	defer p.mu.Unlock()
	waitAll(wg) // want "waitAll, which may block .sync.WaitGroup.Wait., while holding p.mu"
}

// Calling a non-blocking helper with the lock held stays clean: the summary
// has no may-block fact for bump. (Lock acquisition inside a callee is not
// "blocking" — see the package comment.)
func (p *pipe) okHelper() {
	p.mu.Lock()
	p.bump()
	p.mu.Unlock()
}

// No lock held at the call: blocking helpers are fine on their own.
func (p *pipe) okDrain() int {
	v := p.drain()
	p.mu.Lock()
	p.n += v
	p.mu.Unlock()
	return v
}

// A select with a default never blocks, so helpers built on it stay callable
// under the lock.
func (p *pipe) tryDrain() (int, bool) {
	select {
	case v := <-p.ch:
		return v, true
	default:
		return 0, false
	}
}

func (p *pipe) okTryDrain() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if v, ok := p.tryDrain(); ok {
		p.n += v
	}
}
