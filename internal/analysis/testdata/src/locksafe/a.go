// Package locksafe is a fixture for the locksafe analyzer.
package locksafe

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

// clean lock/unlock pairing: no diagnostics.
func (c *counter) add(d int) {
	c.mu.Lock()
	c.n += d
	c.mu.Unlock()
}

// deferred unlock covers every path, including the early return.
func (c *counter) get(fast bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if fast {
		return c.n
	}
	return c.n + 1
}

// earlyReturnLeak forgets to unlock on the error path.
func (c *counter) earlyReturnLeak(bad bool) int {
	c.mu.Lock()
	if bad {
		return -1 // want "still held at return"
	}
	c.n++
	c.mu.Unlock()
	return c.n
}

// fallOffEndLeak never unlocks at all.
func (c *counter) fallOffEndLeak() {
	c.mu.Lock()
	c.n++
} // want "still held at function end"

// panicWhileHolding leaves the mutex locked during unwind.
func (c *counter) panicWhileHolding() {
	c.mu.Lock()
	if c.n < 0 {
		panic("negative") // want "during panic unwind"
	}
	c.mu.Unlock()
}

// deferredPanicIsFine: the deferred unlock runs during unwind.
func (c *counter) deferredPanicIsFine() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n < 0 {
		panic("negative")
	}
}

// doubleLock self-deadlocks.
func (c *counter) doubleLock() {
	c.mu.Lock()
	c.mu.Lock() // want "locked twice on the same path"
	c.mu.Unlock()
}

// doubleUnlock panics at runtime.
func (c *counter) doubleUnlock() {
	c.mu.Lock()
	c.mu.Unlock()
	c.mu.Unlock() // want "unlocked twice on the same path"
}

// maybeHeld unlocks on only one branch.
func (c *counter) maybeHeld(cond bool) {
	c.mu.Lock()
	if cond {
		c.mu.Unlock()
	}
} // want "may still be held at function end"

// loopRelock is the classic correct pattern: lock and unlock each iteration.
func (c *counter) loopRelock(n int) {
	for i := 0; i < n; i++ {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}
}

// rwPair: read locks pair independently of write locks.
type table struct {
	mu sync.RWMutex
	m  map[string]int
}

func (t *table) read(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

func (t *table) readLeak(k string) int {
	t.mu.RLock()
	return t.m[k] // want "still held at return"
}

// helperUnlock releases a lock its caller acquired: out of scope for an
// intraprocedural check, must stay silent.
func (c *counter) helperUnlock() {
	c.mu.Unlock()
}
