package locksafe

import "sync"

type queue struct {
	mu   sync.Mutex
	ch   chan int
	wg   sync.WaitGroup
	vals []int
}

// sendWhileHolding blocks on a channel with the mutex held.
func (q *queue) sendWhileHolding(v int) {
	q.mu.Lock()
	q.ch <- v // want "channel send while holding q.mu"
	q.mu.Unlock()
}

// recvWhileHolding blocks on a receive with the mutex held.
func (q *queue) recvWhileHolding() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return <-q.ch // want "channel receive while holding q.mu"
}

// waitWhileHolding blocks on a WaitGroup with the mutex held.
func (q *queue) waitWhileHolding() {
	q.mu.Lock()
	q.wg.Wait() // want "sync.WaitGroup.Wait while holding q.mu"
	q.mu.Unlock()
}

// sendAfterUnlock is the correct order.
func (q *queue) sendAfterUnlock(v int) {
	q.mu.Lock()
	q.vals = append(q.vals, v)
	q.mu.Unlock()
	q.ch <- v
}

// selectWhileHolding: a select's comm cases block with the lock held.
func (q *queue) selectWhileHolding(done chan struct{}) {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case v := <-q.ch: // want "channel receive while holding q.mu"
		q.vals = append(q.vals, v)
	case <-done: // want "channel receive while holding q.mu"
	}
}

// goroutineBodyIsSeparate: the literal runs on its own stack; its clean
// lock/unlock pairing must not be confused with the spawner's state.
func (q *queue) goroutineBodyIsSeparate() {
	go func() {
		q.mu.Lock()
		q.vals = append(q.vals, 0)
		q.mu.Unlock()
	}()
	q.ch <- 1 // no lock held here
}

// waiverExample shows the escape hatch.
func (q *queue) waiverExample(v int) {
	q.mu.Lock()
	//lint:allow locksafe the channel is buffered and drained by this goroutine only
	q.ch <- v
	q.mu.Unlock()
}
