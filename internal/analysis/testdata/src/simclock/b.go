// Transitive (v3) cases: the intraprocedural v2 analyzer flagged only the
// direct time/rand calls in this package; wrapping one in a helper made every
// caller invisible. The call-graph tier flags each call site of a tainted
// helper, chaining the witness back to the source.
package simclock

import (
	"math/rand"
	"time"
)

// stamp is directly tainted (flagged in its body, as in v2) …
func stamp() int64 {
	return time.Now().UnixNano() // want "wall-clock call time.Now"
}

// … and v3 additionally taints every caller, which v2 provably missed.
func viaStamp() int64 {
	return stamp() + 1 // want "transitively clock-tainted"
}

// Two hops: the witness chain still names time.Now.
func viaViaStamp() int64 {
	return viaStamp() * 2 // want "transitively clock-tainted.*time.Now"
}

func noisy() float64 {
	return rand.Float64() // want "global math/rand source"
}

func viaNoisy() float64 {
	return noisy() / 2 // want "transitively draws from the global math/rand source"
}

// progress (a.go) carries a //lint:allow on its time.Now: the waiver
// sanctions the effect, so callers stay clean — no diagnostic here.
func showProgress() int64 {
	return progress().UnixNano()
}

// Seeded randomness threaded explicitly is deterministic all the way up.
func viaSeeded() float64 {
	return seeded(42)
}
