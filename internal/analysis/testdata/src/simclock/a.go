// Package simclock is a fixture for the simclock analyzer.
package simclock

import (
	"math/rand"
	"sort"
	"time"
)

// Durations measured for telemetry must not read the clock here.
func elapsed() time.Duration {
	start := time.Now()               // want "wall-clock call time.Now"
	time.Sleep(10 * time.Millisecond) // want "wall-clock call time.Sleep"
	return time.Since(start)          // want "wall-clock call time.Since"
}

func jitter() float64 {
	return rand.Float64() // want "global math/rand source"
}

func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed)) // seeded source: fine
	return r.Float64()
}

func pureTime(d time.Duration) time.Duration {
	return d * 2 // duration arithmetic: fine
}

// progress is the sanctioned exception, waived at the call site.
func progress() time.Time {
	//lint:allow simclock CLI progress output, not simulated time
	return time.Now()
}

func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "map-iteration order"
	}
	return out
}

func keysSorted(m map[string]int) (keys []string) {
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func valuesSummed(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // accumulation is order-independent: fine
	}
	return total
}

func keysLocal(m map[string]int) int {
	var scratch []string
	for k := range m {
		scratch = append(scratch, k) // never returned: fine
	}
	return len(scratch)
}
