// Package errsentinel is a fixture for the errsentinel analyzer.
package errsentinel

import (
	"errors"
	"fmt"
)

// Package-level sentinels are the sanctioned pattern.
var (
	ErrBadConfig = errors.New("bad config")
	ErrOOM       = errors.New("out of memory")
)

func opaque(n int) error {
	return fmt.Errorf("bad stage count %d", n) // want "fmt.Errorf without %w"
}

func wrapped(n int) error {
	return fmt.Errorf("%w: bad stage count %d", ErrBadConfig, n)
}

func adHoc() error {
	return errors.New("something broke") // want "errors.New inside a function"
}

func compared(err error) bool {
	return err == ErrBadConfig // want "use errors.Is"
}

func comparedFlipped(err error) bool {
	return ErrOOM != err // want "use errors.Is"
}

func dispatched(err error) bool {
	return errors.Is(err, ErrBadConfig)
}

func nilCheck(err error) bool {
	return err != nil // nil comparison is fine
}

// rootCause really is a root error nobody dispatches on; waived explicitly.
func rootCause() error {
	//lint:allow errsentinel leaf diagnostic, no caller dispatches on it
	return fmt.Errorf("unreachable state %d", 42)
}
