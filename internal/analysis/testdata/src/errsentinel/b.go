package errsentinel

import (
	"errors"
	"fmt"
)

// joinWrap: errors.Join implements Unwrap() []error, so the ad-hoc detail
// error rides a chain that errors.Is can still dispatch on via the sentinel
// sibling. Must stay silent.
func joinWrap(path string) error {
	return errors.Join(ErrBadConfig, errors.New("schedule file "+path+" truncated"))
}

// multiWrap: Go 1.20 multi-%w — the second %w verb consumes the ad-hoc
// error, so it is wrapped, not opaque. Must stay silent.
func multiWrap(shard int) error {
	return fmt.Errorf("%w: shard %d: %w", ErrOOM, shard, errors.New("activation stash exhausted"))
}

// escapedVerb: %%w renders a literal "%w" and wraps nothing; the error is
// opaque despite the substring.
func escapedVerb(n int) error {
	return fmt.Errorf("use a %%w verb to wrap (state %d)", n) // want "fmt.Errorf without %w"
}

// verbMismatch: the ad-hoc error is consumed by %v, not %w, so the chain is
// flattened to text. Both the Errorf and the errors.New stay flagged.
func verbMismatch() error {
	return fmt.Errorf("broke: %v", errors.New("detail")) // want "fmt.Errorf without %w" "errors.New inside a function"
}

// joinBare: joining only ad-hoc errors still yields a chain with no
// sentinel, but each member is wrappable; the wrap discipline is enforced at
// the Errorf/Join boundary, not per member.
func joinBare(a, b error) error {
	return errors.Join(a, b)
}

// staleWaiver suppresses nothing: the framework reports the waiver itself.
func staleWaiver(err error) bool {
	/*lint:allow errsentinel nothing here needs waiving*/ // want "unused waiver"
	return errors.Is(err, ErrOOM)
}
