package errsentinel

import (
	"strings"
	"testing"

	"autopipe/internal/analysis/analysistest"
)

// The fixture is typechecked under the import path "errsentinel", so the
// wrap checks are scoped to that path. The sentinel-comparison check is
// global and would fire regardless.
func TestErrsentinel(t *testing.T) {
	analysistest.Run(t, "../testdata/src/errsentinel", New("errsentinel"))
}

// TestWrapChecksScoped: outside the scope only the comparison diagnostics
// remain; the fmt.Errorf / errors.New wrap checks go quiet.
func TestWrapChecksScoped(t *testing.T) {
	a := New("autopipe/internal/core")
	diags, err := analysistest.Load(t, "../testdata/src/errsentinel", "someotherpkg", a)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "errors.Is") {
			t.Errorf("out-of-scope package produced a wrap diagnostic: %s", d)
		}
	}
	if len(diags) != 2 {
		t.Fatalf("expected exactly the 2 comparison diagnostics out of scope, got %d: %v", len(diags), diags)
	}
}
