package errsentinel

import (
	"strings"
	"testing"

	"autopipe/internal/analysis/analysistest"
)

// The fixture is typechecked under the import path "errsentinel", so the
// wrap checks are scoped to that path. The sentinel-comparison check is
// global and would fire regardless.
func TestErrsentinel(t *testing.T) {
	analysistest.Run(t, "../testdata/src/errsentinel", New("errsentinel"))
}

// TestWrapChecksScoped: outside the scope only the comparison diagnostics
// remain; the fmt.Errorf / errors.New wrap checks go quiet. The fixture's
// waivers then suppress nothing, so the framework reports each of them as
// unused — expected, and proof the unused-waiver check sees scoped-out
// packages too.
func TestWrapChecksScoped(t *testing.T) {
	a := New("autopipe/internal/core")
	diags, err := analysistest.Load(t, "../testdata/src/errsentinel", "someotherpkg", a)
	if err != nil {
		t.Fatal(err)
	}
	var compares, unused int
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "errors.Is"):
			compares++
		case strings.Contains(d.Message, "unused waiver"):
			unused++
		default:
			t.Errorf("out-of-scope package produced a wrap diagnostic: %s", d)
		}
	}
	if compares != 2 || unused != 2 {
		t.Fatalf("expected 2 comparison + 2 unused-waiver diagnostics out of scope, got %d/%d: %v", compares, unused, diags)
	}
}
