// Package errsentinel enforces the repository's error discipline: every
// error crossing a package boundary in internal/{core,exec,fault,train} must
// wrap a typed errdefs sentinel (or an upstream error) so that callers — the
// self-healing training driver above all — dispatch with errors.Is instead
// of matching message strings. The fault-recovery paths (retry on
// ErrTransient, re-plan on ErrDeviceLost, surface ErrOOM) are exactly as
// reliable as this discipline; a single naked fmt.Errorf in the chain makes
// a recoverable fault look unrecoverable.
//
// Flagged (non-test files):
//
//   - fmt.Errorf calls in the error-discipline packages whose format string
//     has no %w verb: the resulting error is opaque to errors.Is/errors.As.
//     Wrap a sentinel (`fmt.Errorf("%w: ...", errdefs.ErrBadConfig, ...)`)
//     or the upstream error.
//   - errors.New inside a function body in those packages — an unwrappable
//     ad-hoc error. Package-level sentinel declarations are fine.
//   - anywhere: `err == ErrFoo` / `err != ErrFoo` comparisons against
//     sentinel variables (package-level error vars named Err*). They break
//     under wrapping; use errors.Is.
//
// Escape hatch: `//lint:allow errsentinel <reason>` on the line or the line
// above, for genuine root errors that no caller dispatches on.
package errsentinel

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"autopipe/internal/analysis"
)

// DefaultScope lists the packages whose returned errors must wrap a
// sentinel. The sentinel-comparison check applies everywhere regardless.
var DefaultScope = []string{
	"autopipe/internal/core",
	"autopipe/internal/exec",
	"autopipe/internal/fault",
	"autopipe/internal/train",
}

// Analyzer checks the production packages.
var Analyzer = New(DefaultScope...)

// New returns an errsentinel analyzer whose wrap checks are scoped to the
// given package paths. Tests scope it to fixtures.
func New(scope ...string) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "errsentinel",
		Doc:  "require %w-wrapped errdefs sentinels at package boundaries and errors.Is over == for sentinel tests",
	}
	a.Run = func(pass *analysis.Pass) error {
		scoped := inScope(pass.Pkg.Path(), scope)
		for _, file := range pass.Files {
			if pass.InTestFile(file) {
				continue
			}
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Body != nil {
						checkFuncBody(pass, d.Body, scoped)
					}
				case *ast.GenDecl:
					// Package-level initializers: errors.New here is the
					// sanctioned sentinel-declaration site, but sentinel
					// comparisons are still wrong, and a function literal
					// assigned to a package variable is a function body.
					ast.Inspect(d, func(n ast.Node) bool {
						switch n := n.(type) {
						case *ast.BinaryExpr:
							checkCompare(pass, n)
						case *ast.FuncLit:
							checkFuncBody(pass, n.Body, scoped)
							return false
						}
						return true
					})
				}
			}
		}
		return nil
	}
	return a
}

func inScope(path string, scope []string) bool {
	for _, s := range scope {
		if path == s || strings.HasPrefix(path, s+"/") {
			return true
		}
	}
	return false
}

// checkFuncBody applies the comparison check everywhere in the body and,
// when the package is in scope, flags unwrapped fmt.Errorf and in-function
// errors.New. Nested function literals are covered by the same walk.
//
// An errors.New is sanctioned when something on the same line wraps it into
// a dispatchable chain: a direct argument of errors.Join (which implements
// Unwrap() []error) or of a fmt.Errorf verb slot matched to %w (Go 1.20
// multi-%w included). The walk visits parents first, so the wrapping call
// records its sanctioned arguments before the errors.New node is reached.
func checkFuncBody(pass *analysis.Pass, body *ast.BlockStmt, scoped bool) {
	wrapped := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			checkCompare(pass, n)
		case *ast.CallExpr:
			if !scoped {
				return true
			}
			fn := analysis.PkgFunc(pass.Info, n)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch {
			case fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf":
				format, ok := constFormat(pass, n)
				if !ok {
					return true
				}
				verbs := argVerbs(format)
				wrapsAny := false
				for i, arg := range n.Args[1:] {
					if verbs[i] == 'w' {
						wrapsAny = true
						wrapped[ast.Unparen(arg)] = true
					}
				}
				if !wrapsAny {
					pass.Reportf(n.Pos(),
						"fmt.Errorf without %%w in %s: wrap an errdefs sentinel or the upstream error so errors.Is can dispatch on it",
						pass.Pkg.Path())
				}
			case fn.Pkg().Path() == "errors" && fn.Name() == "Join":
				for _, arg := range n.Args {
					wrapped[ast.Unparen(arg)] = true
				}
			case fn.Pkg().Path() == "errors" && fn.Name() == "New":
				if wrapped[n] {
					return true
				}
				pass.Reportf(n.Pos(),
					"errors.New inside a function in %s creates an unwrappable error: wrap an errdefs sentinel with fmt.Errorf(\"%%w: ...\") or declare a package-level sentinel",
					pass.Pkg.Path())
			}
		}
		return true
	})
}

// argVerbs maps variadic-argument index -> the fmt verb letter consuming it.
// It understands %% escapes, flags, *-widths and precisions (which consume
// an argument themselves, recorded as '*'), and explicit argument indexes
// like %[2]w. strings.Contains(format, "%w") is not enough: "%%w" renders a
// literal and wraps nothing, and with multi-%w the analyzer must know which
// argument slots are wrapped, not just that one is.
func argVerbs(format string) map[int]byte {
	verbs := make(map[int]byte)
	arg := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue // literal percent, consumes nothing
		}
		for i < len(format) && strings.ContainsRune("#+-0 ", rune(format[i])) {
			i++
		}
		if i < len(format) && format[i] == '*' {
			verbs[arg] = '*'
			arg++
			i++
		} else {
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
		}
		if i < len(format) && format[i] == '.' {
			i++
			if i < len(format) && format[i] == '*' {
				verbs[arg] = '*'
				arg++
				i++
			} else {
				for i < len(format) && format[i] >= '0' && format[i] <= '9' {
					i++
				}
			}
		}
		if i < len(format) && format[i] == '[' {
			j := i + 1
			n := 0
			for j < len(format) && format[j] >= '0' && format[j] <= '9' {
				n = n*10 + int(format[j]-'0')
				j++
			}
			if j < len(format) && format[j] == ']' && n > 0 {
				arg = n - 1
				i = j + 1
			}
		}
		if i < len(format) {
			verbs[arg] = format[i]
			arg++
		}
	}
	return verbs
}

func constFormat(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// checkCompare flags ==/!= against sentinel error variables.
func checkCompare(pass *analysis.Pass, cmp *ast.BinaryExpr) {
	if cmp.Op != token.EQL && cmp.Op != token.NEQ {
		return
	}
	xs, xok := sentinelVar(pass, cmp.X)
	ys, yok := sentinelVar(pass, cmp.Y)
	if !xok && !yok {
		return
	}
	// The other operand must itself be an error (and not the same sentinel
	// family: `ErrA == ErrB` identity checks are equally wrong, keep them).
	other := cmp.Y
	name := xs
	if !xok {
		other, name = cmp.X, ys
	}
	t := pass.Info.TypeOf(other)
	if t == nil || !isErrorish(t) {
		return
	}
	pass.Reportf(cmp.Pos(),
		"comparing error with %s using %s breaks under wrapping; use errors.Is(err, %s)",
		name, cmp.Op, name)
}

// sentinelVar reports whether e names a package-level error variable whose
// name starts with Err (the sentinel naming convention, errdefs included).
func sentinelVar(pass *analysis.Pass, e ast.Expr) (string, bool) {
	var id *ast.Ident
	var render string
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id, render = e, e.Name
	case *ast.SelectorExpr:
		id = e.Sel
		if x, ok := e.X.(*ast.Ident); ok {
			render = x.Name + "." + e.Sel.Name
		} else {
			render = e.Sel.Name
		}
	default:
		return "", false
	}
	v, ok := pass.Info.Uses[id].(*types.Var)
	if !ok || !strings.HasPrefix(v.Name(), "Err") {
		return "", false
	}
	// Package-level: parented by a package scope.
	if v.Parent() == nil || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	return render, isErrorish(v.Type())
}

var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorish(t types.Type) bool {
	return types.Implements(t, errorType) || types.Identical(t, errorType.Underlying()) ||
		types.AssignableTo(t, types.Universe.Lookup("error").Type())
}
