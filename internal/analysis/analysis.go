// Package analysis is a self-contained, stdlib-only analogue of
// golang.org/x/tools/go/analysis: the driver framework for autopipelint, the
// repository's static enforcement of the invariants its results rest on
// (wall-clock-free deterministic packages, sentinel-wrapped errors,
// cancellation-clean goroutines, well-formed schedule testdata).
//
// x/tools would normally provide this framework, but the repository builds
// offline with no module proxy, so the subset autopipelint needs — Analyzer,
// Pass, diagnostics, the `go vet -vettool` unitchecker protocol (unit.go),
// and an analysistest-style fixture harness (package analysistest) — is
// implemented here against the standard library's go/ast, go/types, and
// go/importer. The API deliberately mirrors x/tools so the analyzers port
// 1:1 if the dependency ever becomes available.
//
// Suppression: a diagnostic is dropped when the line it is reported on, or
// the line above, carries a `//lint:allow <analyzer> [reason]` comment. The
// escape hatch is per-line and per-analyzer, so every waiver is visible and
// greppable at the call site it excuses. A waiver that suppresses nothing is
// itself reported as a finding, so stale waivers cannot accumulate after the
// code they excused is fixed or deleted.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//lint:allow <name>` suppressions.
	Name string
	// Doc states the invariant the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass provides one analyzer with the typed syntax of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
	// allows maps filename -> line -> position of a //lint:allow comment for
	// this analyzer; used tracks which of those lines suppressed a finding,
	// so RunAnalyzers can report the waivers that have rotted.
	allows map[string]map[int]token.Position
	used   map[string]map[int]bool
}

// A Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding unless a `//lint:allow` comment on the same or
// the preceding line waives it. A waiver that fires is marked used; waivers
// that never fire are themselves reported by RunAnalyzers.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Waived(pos) {
		return
	}
	p.report(Diagnostic{Pos: p.Fset.Position(pos), Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Waived reports whether a finding at pos would be suppressed by a
// `//lint:allow` comment for this analyzer, and marks that waiver used. The
// interprocedural analyzers call it while building function summaries: a
// waived site must not taint its callers, because the waiver sanctions the
// effect, not merely the one diagnostic. Since the waiver is consumed, a
// comment that only shields a summary (and never a direct report) still
// counts as live.
func (p *Pass) Waived(pos token.Pos) bool {
	position := p.Fset.Position(pos)
	lines := p.allows[position.Filename]
	for _, line := range []int{position.Line, position.Line - 1} {
		if _, ok := lines[line]; ok {
			if p.used[position.Filename] == nil {
				p.used[position.Filename] = make(map[int]bool)
			}
			p.used[position.Filename][line] = true
			return true
		}
	}
	return false
}

// InTestFile reports whether the node lives in a _test.go file. The
// analyzers enforce invariants on shipped code; tests may legitimately
// measure wall time or hand-roll errors.
func (p *Pass) InTestFile(n ast.Node) bool {
	return strings.HasSuffix(p.Fset.Position(n.Pos()).Filename, "_test.go")
}

// allowPrefix starts every suppression comment: //lint:allow <name> [reason]
const allowPrefix = "lint:allow"

func allowLines(fset *token.FileSet, files []*ast.File, analyzer string) map[string]map[int]token.Position {
	out := make(map[string]map[int]token.Position)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, allowPrefix))
				if len(fields) == 0 || fields[0] != analyzer {
					continue
				}
				pos := fset.Position(c.Pos())
				if out[pos.Filename] == nil {
					out[pos.Filename] = make(map[int]token.Position)
				}
				out[pos.Filename][pos.Line] = pos
			}
		}
	}
	return out
}

// RunAnalyzers applies every analyzer to one typed package and returns the
// surviving diagnostics in file/line order. A `//lint:allow` waiver for one
// of the analyzers run that suppressed nothing is itself reported — waivers
// must not outlive the finding they excuse. (The unused-waiver report is not
// itself waivable: delete the stale comment instead.)
func RunAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			report:   func(d Diagnostic) { diags = append(diags, d) },
			allows:   allowLines(fset, files, a.Name),
			used:     make(map[string]map[int]bool),
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
		for filename, lines := range pass.allows {
			for line, pos := range lines {
				if !pass.used[filename][line] {
					diags = append(diags, Diagnostic{
						Pos:      pos,
						Analyzer: a.Name,
						Message:  fmt.Sprintf("unused waiver: //lint:allow %s suppresses no diagnostic on this or the next line; delete it", a.Name),
					})
				}
			}
		}
	}
	Sort(diags)
	return diags, nil
}

// Sort orders diagnostics by file, line, column, then analyzer.
func Sort(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// NewInfo returns a types.Info with every map populated, ready for
// types.Config.Check.
func NewInfo() *types.Info {
	return &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Instances:    make(map[*ast.Ident]types.Instance),
		Scopes:       make(map[ast.Node]*types.Scope),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		FileVersions: make(map[*ast.File]string),
	}
}

// PkgFunc resolves a call expression to the package-level function it
// invokes, or nil: the building block for "flags calls to time.Now"-style
// checks. Method calls and calls of local values resolve to nil.
func PkgFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Type().(*types.Signature).Recv() != nil {
		return nil
	}
	return fn
}
