// Package callgraph builds a package-level call graph over typed syntax: one
// node per function body (declared functions, methods, and function
// literals), one edge per call site that resolves statically to a body in the
// same package. It is the substrate for the interprocedural analyzers
// (summary fixpoint, hotalloc, transitive simclock/ctxspawn/locksafe):
// instead of every analyzer re-deriving "which function does this call
// reach", they ask the graph.
//
// Resolution is deliberately conservative and purely AST+types-based (the
// repository builds offline; there is no SSA layer to lean on):
//
//   - `f(...)` where f is a package-level function: resolved via
//     types.Info.Uses to the declaration.
//   - `recv.m(...)` where m is a concrete method declared in this package:
//     resolved the same way. Interface method calls resolve to the interface
//     method object, which has no body here, so they stay unresolved.
//   - `func(){...}(...)`: an immediately invoked literal resolves to the
//     literal's node.
//   - `f(...)` where f is a local variable: resolved only when every
//     assignment to f in the package binds the same single function literal
//     (the `f := func(){...}; ...; f()` idiom). Any other assignment widens
//     f to unresolved.
//   - Everything else — function-typed fields and parameters, method values
//     passed around as data, cross-package calls — is unresolved. Callers of
//     the graph must treat unresolved callees as "unknown effects" and stay
//     conservative (the analyzers' known-stdlib tables cover the common
//     external cases).
//
// The same resolution is applied to `go` and `defer` statements, since their
// call expressions are ordinary *ast.CallExpr nodes.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// A Node is one function body in the package.
type Node struct {
	// Decl is the declaration for named functions and methods; nil for
	// literals.
	Decl *ast.FuncDecl
	// Lit is the literal for anonymous functions; nil for declarations.
	Lit *ast.FuncLit
	// Obj is the type object of Decl (nil for literals).
	Obj *types.Func
	// Encl is the node whose body lexically contains this literal; nil for
	// declarations and for literals bound at package level.
	Encl *Node
	// Out lists the node's resolved same-package call edges in source order.
	Out []Edge
}

// An Edge is one call site resolved to a same-package callee.
type Edge struct {
	// Site is the call expression (also the position to report at).
	Site *ast.CallExpr
	// Callee is the resolved target node.
	Callee *Node
}

// Body returns the function body; nil for bodyless declarations (assembly or
// external linkage).
func (n *Node) Body() *ast.BlockStmt {
	if n.Lit != nil {
		return n.Lit.Body
	}
	return n.Decl.Body
}

// Name renders the node for diagnostics: the plain function name, the
// (*T).m method form, or "function literal in <encl>" for anonymous bodies.
func (n *Node) Name() string {
	if n.Decl != nil {
		if n.Obj != nil && n.Obj.Type().(*types.Signature).Recv() != nil {
			recv := n.Obj.Type().(*types.Signature).Recv().Type()
			return fmt.Sprintf("(%s).%s", types.TypeString(recv, func(*types.Package) string { return "" }), n.Decl.Name.Name)
		}
		return n.Decl.Name.Name
	}
	if n.Encl != nil {
		return "function literal in " + n.Encl.Name()
	}
	return "function literal"
}

// A Graph is the call graph of one package.
type Graph struct {
	// Nodes lists every function body in source order (declarations first
	// within a file, literals in lexical order inside their enclosing body).
	Nodes []*Node

	info  *types.Info
	decls map[*types.Func]*Node
	lits  map[*ast.FuncLit]*Node
	// binds maps a local function-typed variable to the single literal it is
	// provably bound to, or to nil once a second/other assignment widens it.
	binds map[types.Object]*ast.FuncLit
}

// NodeOf returns the node for a declared function or method object, or nil.
func (g *Graph) NodeOf(obj *types.Func) *Node { return g.decls[obj] }

// NodeOfLit returns the node for a function literal, or nil.
func (g *Graph) NodeOfLit(lit *ast.FuncLit) *Node { return g.lits[lit] }

// Build constructs the call graph for the given files of one typed package.
// Callers that enforce invariants on shipped code only should pass the
// non-test files.
func Build(files []*ast.File, info *types.Info) *Graph {
	g := &Graph{
		info:  info,
		decls: make(map[*types.Func]*Node),
		lits:  make(map[*ast.FuncLit]*Node),
		binds: make(map[types.Object]*ast.FuncLit),
	}

	// Pass 1: nodes. Declarations first so method/function calls resolve,
	// then every literal, attributed to its lexically enclosing body.
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				n := &Node{Decl: fd}
				if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
					n.Obj = obj
					g.decls[obj] = n
				}
				g.Nodes = append(g.Nodes, n)
			}
		}
	}
	for _, f := range files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					g.addLits(d.Body, g.declNode(d))
				}
			case *ast.GenDecl:
				// Package-level `var f = func(){...}` initializers.
				for _, spec := range d.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							g.addLits(v, nil)
						}
					}
				}
			}
		}
	}

	// Pass 2: single-assignment bindings of local variables to literals.
	// Every statement that can store into a function-typed variable must be
	// visited here: an assignment the pass does not see leaves a stale binding
	// behind, and a stale binding resolves calls to a body the variable no
	// longer holds — unsound for the concurrency analyses (raceguard), which
	// would attribute the wrong spawned body's accesses. Range clauses and
	// address-taking (a pointer through which the variable can be reassigned
	// out of sight) therefore widen conservatively.
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, lhs := range n.Lhs {
						g.bind(lhs, n.Rhs[i])
					}
				} else {
					for _, lhs := range n.Lhs {
						g.bind(lhs, nil)
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i, name := range n.Names {
						g.bind(name, n.Values[i])
					}
				} else {
					for _, name := range n.Names {
						if len(n.Values) > 0 {
							g.bind(name, nil)
						}
					}
				}
			case *ast.RangeStmt:
				// `for _, f = range fns` (and `:=`) stores arbitrary range
				// elements into f: never a single provable literal.
				if n.Key != nil {
					g.bind(n.Key, nil)
				}
				if n.Value != nil {
					g.bind(n.Value, nil)
				}
			case *ast.UnaryExpr:
				// &f escapes the variable: any callee holding the pointer can
				// reassign it between the binding and the call site.
				if n.Op == token.AND {
					g.bind(ast.Unparen(n.X), nil)
				}
			}
			return true
		})
	}

	// Pass 3: edges, collected shallowly per node (a nested literal's calls
	// belong to the literal's own node).
	for _, n := range g.Nodes {
		body := n.Body()
		walkShallow(body, func(m ast.Node) {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return
			}
			if callee := g.CalleeOf(call); callee != nil {
				n.Out = append(n.Out, Edge{Site: call, Callee: callee})
			}
		})
	}
	return g
}

func (g *Graph) declNode(d *ast.FuncDecl) *Node {
	if obj, ok := g.info.Defs[d.Name].(*types.Func); ok {
		return g.decls[obj]
	}
	for _, n := range g.Nodes {
		if n.Decl == d {
			return n
		}
	}
	return nil
}

// addLits registers every function literal under root, nesting literals under
// the node of the literal that encloses them.
func (g *Graph) addLits(root ast.Node, encl *Node) {
	var walk func(n ast.Node, encl *Node)
	walk = func(n ast.Node, encl *Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			lit, ok := m.(*ast.FuncLit)
			if !ok {
				return true
			}
			node := &Node{Lit: lit, Encl: encl}
			g.lits[lit] = node
			g.Nodes = append(g.Nodes, node)
			walk(lit.Body, node)
			return false
		})
	}
	walk(root, encl)
}

// bind records lhs := rhs for the single-literal binding analysis. A nil rhs,
// or any rhs that is not a function literal, widens the variable.
func (g *Graph) bind(lhs ast.Node, rhs ast.Expr) {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := g.info.Defs[id]
	if obj == nil {
		obj = g.info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return
	}
	if _, isSig := v.Type().Underlying().(*types.Signature); !isSig {
		return
	}
	lit, _ := ast.Unparen(rhs).(*ast.FuncLit)
	if rhs == nil || lit == nil {
		g.binds[v] = nil // widened
		return
	}
	if prev, seen := g.binds[v]; seen && prev != lit {
		g.binds[v] = nil
		return
	}
	g.binds[v] = lit
}

// CalleeOf resolves a call expression to a same-package node using the rules
// in the package comment, or nil when the target is unknown.
func (g *Graph) CalleeOf(call *ast.CallExpr) *Node {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return g.lits[fun]
	case *ast.Ident:
		switch obj := g.info.Uses[fun].(type) {
		case *types.Func:
			return g.decls[obj]
		case *types.Var:
			if lit := g.binds[obj]; lit != nil {
				return g.lits[lit]
			}
		}
	case *ast.SelectorExpr:
		if obj, ok := g.info.Uses[fun.Sel].(*types.Func); ok {
			return g.decls[obj]
		}
	}
	return nil
}

// FuncValue resolves a non-call function-valued expression — the operand of a
// `go` statement argument, a stored callback — to a same-package node, or
// nil. It handles literals, named functions, methods (method values), and
// single-assignment local bindings.
func (g *Graph) FuncValue(e ast.Expr) *Node {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return g.lits[e]
	case *ast.Ident:
		switch obj := g.info.Uses[e].(type) {
		case *types.Func:
			return g.decls[obj]
		case *types.Var:
			if lit := g.binds[obj]; lit != nil {
				return g.lits[lit]
			}
		}
	case *ast.SelectorExpr:
		if obj, ok := g.info.Uses[e.Sel].(*types.Func); ok {
			return g.decls[obj]
		}
	}
	return nil
}

// walkShallow walks n without descending into nested function literals.
func walkShallow(n ast.Node, f func(ast.Node)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		if m != nil {
			f(m)
		}
		return true
	})
}
