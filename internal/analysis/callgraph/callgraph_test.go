package callgraph

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"autopipe/internal/analysis"
)

// load typechecks one inline file and returns its graph plus the info.
func load(t *testing.T, src string) (*Graph, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	return Build([]*ast.File{f}, info), info
}

func nodeByName(t *testing.T, g *Graph, name string) *Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Name() == name {
			return n
		}
	}
	t.Fatalf("no node named %q (have %v)", name, names(g))
	return nil
}

func names(g *Graph) []string {
	var out []string
	for _, n := range g.Nodes {
		out = append(out, n.Name())
	}
	return out
}

func callees(n *Node) []string {
	var out []string
	for _, e := range n.Out {
		out = append(out, e.Callee.Name())
	}
	return out
}

const src = `package p

type S struct{ n int }

func (s *S) run() { helper() }

func helper() {}

func direct() {
	helper()
	var s S
	s.run()
}

func literals() {
	f := func() { helper() }
	f()
	func() {}()
}

func widened() {
	g := func() {}
	g = func() { helper() }
	g()
}

func spawns(s *S) {
	go s.run()
	go helper()
	defer helper()
}
`

func TestResolution(t *testing.T) {
	g, _ := load(t, src)

	for _, tc := range []struct {
		node string
		want []string
	}{
		// Static call + concrete method call both resolve.
		{"direct", []string{"helper", "(*S).run"}},
		// Single-assignment binding and immediately invoked literal resolve;
		// the two literal nodes exist on their own.
		{"literals", []string{"function literal in literals", "function literal in literals"}},
		// Two different literals assigned to g: widened, no edge for g().
		{"widened", nil},
		// go/defer call expressions are ordinary edges.
		{"spawns", []string{"(*S).run", "helper", "helper"}},
		{"(*S).run", []string{"helper"}},
	} {
		n := nodeByName(t, g, tc.node)
		got := callees(n)
		if len(got) != len(tc.want) {
			t.Fatalf("%s: callees = %v, want %v", tc.node, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: callee[%d] = %q, want %q", tc.node, i, got[i], tc.want[i])
			}
		}
	}

	// The bound literal's own edge resolves too.
	lit := nodeByName(t, g, "literals").Out[0].Callee
	if got := callees(lit); len(got) != 1 || got[0] != "helper" {
		t.Fatalf("bound literal callees = %v, want [helper]", got)
	}
}

func TestFuncValue(t *testing.T) {
	g, info := load(t, src)
	spawns := nodeByName(t, g, "spawns")

	var goStmts []*ast.GoStmt
	ast.Inspect(spawns.Body(), func(n ast.Node) bool {
		if gs, ok := n.(*ast.GoStmt); ok {
			goStmts = append(goStmts, gs)
		}
		return true
	})
	if len(goStmts) != 2 {
		t.Fatalf("found %d go statements, want 2", len(goStmts))
	}
	if n := g.FuncValue(goStmts[0].Call.Fun); n == nil || n.Name() != "(*S).run" {
		t.Errorf("go s.run resolves to %v, want (*S).run", n)
	}
	if n := g.FuncValue(goStmts[1].Call.Fun); n == nil || n.Name() != "helper" {
		t.Errorf("go helper resolves to %v, want helper", n)
	}
	_ = info
}

// TestStoredThenReassigned pins the v3 unsoundness fix: a function variable
// bound once to a literal and then reassigned through a channel the binding
// pass cannot track — a range clause, or a pointer taken to the variable —
// must widen to unresolved. v3 resolved rebound() and escaped() to the first
// literal, so a concurrency analysis (raceguard) would have attributed the
// wrong body's shared accesses to the call.
func TestStoredThenReassigned(t *testing.T) {
	g, _ := load(t, `package p

func helper() {}

func rebound(fns []func()) {
	f := func() { helper() }
	for _, f = range fns {
		_ = f
	}
	f()
}

func escaped(mut func(*func())) {
	f := func() { helper() }
	mut(&f)
	f()
}

func rangeDefined(fns []func()) {
	for _, f := range fns {
		f()
	}
}

// still resolves: a single binding with no reassignment channel.
func intact() {
	f := func() { helper() }
	f()
}
`)
	for _, fn := range []string{"rebound", "escaped", "rangeDefined"} {
		for _, got := range callees(nodeByName(t, g, fn)) {
			if got != "mut" { // escaped's call to its parameter never resolves anyway
				t.Errorf("%s: call resolved to %q; reassignment must widen the binding to unresolved", fn, got)
			}
		}
	}
	if got := callees(nodeByName(t, g, "intact")); len(got) != 1 || got[0] != "function literal in intact" {
		t.Errorf("intact: callees = %v, want the bound literal", got)
	}
}

func TestInterfaceCallUnresolved(t *testing.T) {
	g, _ := load(t, `package p

type I interface{ M() }

type T struct{}

func (T) M() {}

func f(i I) { i.M() }
`)
	// The dynamic call through the interface must stay unresolved — the
	// interface method object has no body in this package.
	if got := callees(nodeByName(t, g, "f")); len(got) != 0 {
		t.Fatalf("interface call resolved to %v, want unresolved", got)
	}
}
