package summary

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"autopipe/internal/analysis"
	"autopipe/internal/analysis/callgraph"
)

// loadConc is load plus the *types.Package ComputeConcurrency needs.
func loadConc(t *testing.T, src string) (*callgraph.Graph, *types.Package, *types.Info, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return callgraph.Build([]*ast.File{f}, info), pkg, info, fset
}

func accessNames(accs []Access) []string {
	var out []string
	for _, a := range accs {
		out = append(out, a.Ref.Display())
	}
	return out
}

func hasAccess(accs []Access, display string) bool {
	for _, a := range accs {
		if a.Ref.Display() == display {
			return true
		}
	}
	return false
}

func findAccess(t *testing.T, accs []Access, display string) Access {
	t.Helper()
	for _, a := range accs {
		if a.Ref.Display() == display {
			return a
		}
	}
	t.Fatalf("no access %q in %v", display, accessNames(accs))
	return Access{}
}

const concSrc = `package p

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
	m  int
}

var global int

func (c *counter) guarded() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.m++
}

func (c *counter) bare() { c.n++ }

func viaBare(c *counter) { c.bare() }

func touchGlobal() { global = 1 }

func localOnly() {
	x := 0
	x++
	_ = x
}

func callsLocalOnly() { localOnly() }

func spawner(c *counter) {
	go c.bare()
	for i := 0; i < 3; i++ {
		go touchGlobal()
	}
}

// Mutually-recursive spawn chain: ping spawns pong, pong calls ping. The
// fixpoint must terminate and both directions must carry the global write.
func ping(c *counter) {
	go pong(c)
	global = 2
}

func pong(c *counter) {
	ping(c)
	c.n++
}

func selects(ch chan int, out chan int) {
	select {
	case ch <- 1: // may never run: select has a default
	default:
	}
	out <- 2 // unconditional
	select {
	case v := <-ch: // may never run either
		_ = v
	default:
	}
}

func waits(wg *sync.WaitGroup, done chan struct{}) {
	wg.Done()
	wg.Wait()
	<-done
	close(done)
}

func onceInit(once *sync.Once) {
	once.Do(func() { global = 3 })
}
`

func TestConcDirectAccesses(t *testing.T) {
	g, pkg, info, _ := loadConc(t, concSrc)
	sums := ComputeConcurrency(g, pkg, info, Options{})

	guarded := sums[byName(t, g, "(*counter).guarded")]
	n := findAccess(t, guarded.SharedWrites, "c.n")
	if len(n.Locks) != 1 {
		t.Errorf("guarded c.n locks = %v, want the mutex held", n.Locks)
	}
	m := findAccess(t, guarded.SharedWrites, "c.m")
	if len(m.Locks) != 0 {
		t.Errorf("guarded c.m locks = %v, want none (after Unlock)", m.Locks)
	}

	// Locals are recorded in the owner's own summary (they matter when a
	// goroutine captures them) but must be dropped at call edges: the caller
	// of localOnly shares nothing.
	if got := sums[byName(t, g, "localOnly")]; !hasAccess(got.SharedWrites, "x") {
		t.Errorf("localOnly writes = %v, want the local x recorded", accessNames(got.SharedWrites))
	}
	if got := sums[byName(t, g, "callsLocalOnly")]; len(got.SharedReads)+len(got.SharedWrites) != 0 {
		t.Errorf("callsLocalOnly inherited %v/%v, want nothing (callee-locals drop at edges)", accessNames(got.SharedReads), accessNames(got.SharedWrites))
	}

	tg := sums[byName(t, g, "touchGlobal")]
	if !hasAccess(tg.SharedWrites, "global") {
		t.Errorf("touchGlobal writes = %v, want global", accessNames(tg.SharedWrites))
	}
}

func TestConcInheritance(t *testing.T) {
	g, pkg, info, _ := loadConc(t, concSrc)
	sums := ComputeConcurrency(g, pkg, info, Options{})

	// viaBare(c) calls c.bare(): the receiver-field write rebases onto the
	// caller's argument with a witness chain.
	vb := sums[byName(t, g, "viaBare")]
	w := findAccess(t, vb.SharedWrites, "c.n")
	if !strings.HasPrefix(w.Desc, "call to (*counter).bare: ") {
		t.Errorf("inherited desc = %q, want witness chain through bare", w.Desc)
	}
}

func TestConcSpawns(t *testing.T) {
	g, pkg, info, _ := loadConc(t, concSrc)
	sums := ComputeConcurrency(g, pkg, info, Options{})

	sp := sums[byName(t, g, "spawner")]
	if len(sp.Spawns) != 2 {
		t.Fatalf("spawner has %d spawns, want 2", len(sp.Spawns))
	}
	if sp.Spawns[0].InLoop || sp.Spawns[0].Callee == nil || sp.Spawns[0].Callee.Name() != "(*counter).bare" {
		t.Errorf("spawn 0 = %+v, want resolved (*counter).bare outside loop", sp.Spawns[0])
	}
	if !sp.Spawns[1].InLoop || sp.Spawns[1].Boundary == sp.Spawns[1].Stmt.Pos() {
		t.Errorf("spawn 1 must be in-loop with the loop start as boundary")
	}

	// The spawned callee's accesses do NOT leak into the spawner's own
	// same-goroutine access set.
	if hasAccess(sp.SharedWrites, "c.n") || hasAccess(sp.SharedWrites, "global") {
		t.Errorf("spawner inherited spawned-side writes %v; go edges must not propagate", accessNames(sp.SharedWrites))
	}
}

// TestConcMutualRecursion is the satellite-required case: a spawn chain that
// recurses through the spawner. The fixpoint must terminate, ping must keep
// its direct global write, and pong must inherit it through the plain call
// edge back into ping — while the go edge contributes nothing to ping's own
// set.
func TestConcMutualRecursion(t *testing.T) {
	g, pkg, info, _ := loadConc(t, concSrc)
	sums := ComputeConcurrency(g, pkg, info, Options{})

	ping := sums[byName(t, g, "ping")]
	if !hasAccess(ping.SharedWrites, "global") {
		t.Errorf("ping writes = %v, want global", accessNames(ping.SharedWrites))
	}
	// pong's c.n write must not flow back into ping's same-goroutine set:
	// the only edge from ping to pong is the go statement.
	if hasAccess(ping.SharedWrites, "c.n") {
		t.Errorf("ping inherited the spawned pong's c.n write through the go edge")
	}
	if len(ping.Spawns) != 1 || ping.Spawns[0].Callee == nil || ping.Spawns[0].Callee.Name() != "pong" {
		t.Fatalf("ping spawns = %+v, want one resolved spawn of pong", ping.Spawns)
	}

	pong := sums[byName(t, g, "pong")]
	if !hasAccess(pong.SharedWrites, "global") {
		t.Errorf("pong writes = %v, want global inherited from ping", accessNames(pong.SharedWrites))
	}
	if !hasAccess(pong.SharedWrites, "c.n") {
		t.Errorf("pong writes = %v, want its own c.n", accessNames(pong.SharedWrites))
	}
}

// TestConcSelectDefault is the satellite-required case: a send or receive
// inside a select with a default case may never execute and must not mint a
// happens-before edge; the unconditional send still does.
func TestConcSelectDefault(t *testing.T) {
	g, pkg, info, _ := loadConc(t, concSrc)
	sums := ComputeConcurrency(g, pkg, info, Options{})

	sel := sums[byName(t, g, "selects")]
	for _, s := range sel.HB.Sends {
		if s.Ref.Display() == "ch" {
			t.Errorf("send on ch inside select-with-default minted an HB edge")
		}
	}
	var sawOut bool
	for _, s := range sel.HB.Sends {
		if s.Ref.Display() == "out" {
			sawOut = true
		}
	}
	if !sawOut {
		t.Errorf("unconditional send on out missing from HB.Sends: %+v", sel.HB.Sends)
	}
	if len(sel.HB.Recvs) != 0 {
		t.Errorf("recv inside select-with-default minted an HB edge: %+v", sel.HB.Recvs)
	}
}

func TestConcWaitGroupAndClose(t *testing.T) {
	g, pkg, info, _ := loadConc(t, concSrc)
	sums := ComputeConcurrency(g, pkg, info, Options{})

	w := sums[byName(t, g, "waits")]
	if len(w.HB.Done) != 1 || w.HB.Done[0].Ref.Display() != "wg" {
		t.Errorf("Done ops = %+v, want one on wg", w.HB.Done)
	}
	if len(w.HB.Waits) != 1 {
		t.Errorf("Wait ops = %+v, want one", w.HB.Waits)
	}
	if len(w.HB.Recvs) != 1 || w.HB.Recvs[0].Ref.Display() != "done" {
		t.Errorf("Recvs = %+v, want one on done", w.HB.Recvs)
	}
	// close(done) counts as a send for send→recv ordering.
	if len(w.HB.Sends) != 1 || w.HB.Sends[0].Ref.Display() != "done" {
		t.Errorf("Sends = %+v, want close(done)", w.HB.Sends)
	}
}

func TestConcOncePseudoLock(t *testing.T) {
	g, pkg, info, _ := loadConc(t, concSrc)
	sums := ComputeConcurrency(g, pkg, info, Options{})

	oi := sums[byName(t, g, "onceInit")]
	w := findAccess(t, oi.SharedWrites, "global")
	var once bool
	for k := range w.Locks {
		if strings.HasPrefix(k, "once:") {
			once = true
		}
	}
	if !once {
		t.Errorf("global write inherited from once.Do callback has locks %v, want a once: pseudo-lock", w.Locks)
	}
}

func TestSpecializeSpawn(t *testing.T) {
	g, pkg, info, _ := loadConc(t, concSrc)
	sums := ComputeConcurrency(g, pkg, info, Options{})

	sp := byName(t, g, "spawner")
	spawn := sums[sp].Spawns[0] // go c.bare()
	accs, _ := SpecializeSpawn(sums, spawn.Callee, spawn.Stmt.Call, pkg, info)
	if len(accs) != 1 || accs[0].Ref.Display() != "c.n" || !accs[0].Write {
		t.Fatalf("specialized accesses = %+v, want the write of c.n rebased onto spawner's c", accs)
	}
}
