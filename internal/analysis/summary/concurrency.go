// Concurrency facts: the per-function summaries raceguard (DESIGN §11.10)
// consumes. On top of the effect bitset (summary.go), ComputeConcurrency
// derives for every callgraph node:
//
//   - Spawns: the `go` statements in the body, each resolved through the
//     callgraph (named functions, methods, method values, single-assignment
//     literals — the same resolution ctxspawn uses), with the enclosing-loop
//     boundary that decides which of the spawner's accesses are sequenced
//     before the goroutine can first run.
//   - SharedReads / SharedWrites: accesses to goroutine-shareable state —
//     package-level variables, closure-captured variables, and struct fields
//     reached from a named base path — each carrying the set of mutexes
//     provably held at the access (a CFG must-hold analysis, the dual of
//     locksafe's leak check) and a witness chain when the access was
//     inherited through a call.
//   - HB: the happens-before material — WaitGroup.Done / channel sends the
//     function performs (transitively, same-goroutine), and the
//     WaitGroup.Wait / channel receives it performs in program order.
//     sync.Once.Do contributes mutual exclusion instead: accesses inside a
//     resolved Do callback hold a pseudo-lock keyed on the Once value.
//
// Accesses propagate bottom-up across resolved call edges exactly like the
// effect facts, with two refinements: edges that are the call of a `go`
// statement are excluded (a spawned callee's accesses are the *concurrent*
// side, not the caller's own), and accesses rooted at a callee receiver or
// parameter are rebased onto the caller's argument when the parameter is
// reference-like (pointer, map, slice, chan) and the argument resolves to a
// named base path — otherwise they are dropped, never misattributed. A
// callee-local root (per-invocation state) is likewise dropped at the edge.
//
// Everything here is a may/must mix chosen so raceguard errs toward silence:
// accesses and spawns are may-facts, lock sets are must-facts, and
// happens-before sources are only recorded when the operation is
// unconditional (a send inside a select that has a default case may never
// execute and contributes nothing).
package summary

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"autopipe/internal/analysis/callgraph"
	"autopipe/internal/analysis/cfg"
)

// A Ref names one shareable storage location by identity: the root variable
// (package-level, captured, receiver, or parameter) plus the chain of struct
// fields selected from it. Two Refs alias when their Keys are equal.
type Ref struct {
	// Root is the base variable of the access path.
	Root *types.Var
	// Leaf is the object actually accessed: the last field of the chain, or
	// Root itself for a plain variable access.
	Leaf *types.Var
	// chain is the dotted field-identity suffix ("" for a plain variable).
	chain string
	// chainDisp is the rendered field suffix (".count").
	chainDisp string
}

// Key is the identity of the location: equal keys mean the same variable or
// the same field chain from the same base.
func (r Ref) Key() string { return objKey(r.Root) + r.chain }

// Display renders the access path for diagnostics ("s.count").
func (r Ref) Display() string { return r.Root.Name() + r.chainDisp }

// objKey identifies a variable object stably within one analysis pass.
func objKey(v *types.Var) string { return fmt.Sprintf("v%d", v.Pos()) }

// An Access is one shared-state read or write.
type Access struct {
	Ref Ref
	// Pos is the site in the summarized body: the access itself, or the call
	// that inherited it.
	Pos token.Pos
	// Write reports a store (assignment, inc/dec, or container store through
	// an index expression).
	Write bool
	// Locks is the set of mutex keys provably held at the access, including
	// "once:" pseudo-locks for sync.Once.Do callbacks.
	Locks map[string]bool
	// Desc is the witness chain: "write of s.count", prefixed with
	// "call to f: " per inheriting edge.
	Desc string
}

// A SyncOp is one happens-before-relevant operation on an identified object:
// a WaitGroup Done/Wait or a channel send/receive/close.
type SyncOp struct {
	Ref Ref
	Pos token.Pos
}

// HBFacts is the happens-before material of one function.
type HBFacts struct {
	// Done lists WaitGroup values the function calls Done on — transitively,
	// on its own goroutine — establishing Done→Wait edges for spawners.
	Done []SyncOp
	// Sends lists channels the function unconditionally sends on or closes
	// (sends inside a select with a default case are excluded: they may never
	// execute), establishing send→recv edges.
	Sends []SyncOp
	// Waits lists WaitGroup.Wait calls in program order.
	Waits []SyncOp
	// Recvs lists channel receives in program order (select-with-default
	// receives excluded).
	Recvs []SyncOp
}

// A Spawn is one `go` statement.
type Spawn struct {
	Stmt *ast.GoStmt
	// Callee is the resolved spawned body, nil when the callgraph cannot
	// resolve it (interface method, function-typed field — the documented
	// residual).
	Callee *callgraph.Node
	// InLoop reports whether the go statement sits inside a loop, in which
	// case the goroutine is concurrent with other iterations' instances of
	// itself.
	InLoop bool
	// Boundary is the position before which the spawner's accesses are
	// sequenced ahead of the goroutine: the outermost enclosing loop's start,
	// or the go statement itself.
	Boundary token.Pos
}

// ConcInfo is one function's concurrency summary.
type ConcInfo struct {
	Spawns       []Spawn
	SharedReads  []Access
	SharedWrites []Access
	HB           HBFacts

	// bookkeeping for the fixpoint and for spawn-site specialization
	accKeys  map[string]bool
	syncKeys map[string]bool
	// callLocks records the mutexes held at each call site, so inherited
	// accesses run under the caller's locks too.
	callLocks map[*ast.CallExpr]map[string]bool
	// goCalls marks call expressions that are `go` statements: their edges
	// carry no same-goroutine inheritance.
	goCalls map[*ast.CallExpr]bool
	// onceEdges are resolved sync.Once.Do callbacks, inherited under a
	// pseudo-lock.
	onceEdges []onceEdge
	bodyPos   token.Pos
	bodyEnd   token.Pos
	params    map[*types.Var]bool
}

type onceEdge struct {
	callee *callgraph.Node
	site   *ast.CallExpr
	lock   string
}

// ComputeConcurrency returns the concurrency summary for every node of g,
// propagated bottom-up to a fixpoint across same-goroutine call edges.
func ComputeConcurrency(g *callgraph.Graph, pkg *types.Package, info *types.Info, opts Options) map[*callgraph.Node]*ConcInfo {
	out := make(map[*callgraph.Node]*ConcInfo, len(g.Nodes))
	for _, n := range g.Nodes {
		out[n] = directConc(g, n, pkg, info, opts)
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			ci := out[n]
			for _, e := range n.Out {
				if ci.goCalls[e.Site] {
					continue
				}
				if ci.inherit(out[e.Callee], e.Callee, e.Site, "", pkg, info) {
					changed = true
				}
			}
			for _, oe := range ci.onceEdges {
				if ci.inherit(out[oe.callee], oe.callee, oe.site, oe.lock, pkg, info) {
					changed = true
				}
			}
		}
	}
	return out
}

// SpecializeSpawn rebases the spawned callee's shared accesses and
// happens-before facts into the spawner's scope at one go-statement call:
// receiver/parameter roots become the spawn-site arguments, callee-local
// roots are dropped. raceguard uses the result as the goroutine side of every
// pair it checks.
func SpecializeSpawn(sums map[*callgraph.Node]*ConcInfo, callee *callgraph.Node, call *ast.CallExpr, pkg *types.Package, info *types.Info) ([]Access, HBFacts) {
	ci := sums[callee]
	if ci == nil {
		return nil, HBFacts{}
	}
	sub := newSubst(ci, callee, call, pkg, info)
	var accs []Access
	for _, a := range append(append([]Access{}, ci.SharedReads...), ci.SharedWrites...) {
		if na, ok := sub.access(a); ok {
			accs = append(accs, na)
		}
	}
	var hb HBFacts
	hb.Done = sub.ops(ci.HB.Done)
	hb.Sends = sub.ops(ci.HB.Sends)
	hb.Waits = sub.ops(ci.HB.Waits)
	hb.Recvs = sub.ops(ci.HB.Recvs)
	return accs, hb
}

// subst rebases callee-scope refs into caller scope at one call site.
type subst struct {
	callee *ConcInfo
	pkg    *types.Package
	// byParam maps a callee receiver/parameter root to the caller-side ref of
	// the corresponding argument; absence means "drop".
	byParam map[*types.Var]Ref
	// keyPrefix maps objKey(param) to the argument ref's key, so lock-set
	// keys (which are rendered ref keys) rebase consistently with access
	// refs: a mutex locked as r.mu in the callee and as r.mu in the caller
	// must compare equal after inheritance.
	keyPrefix map[string]string
}

func newSubst(ci *ConcInfo, callee *callgraph.Node, call *ast.CallExpr, pkg *types.Package, info *types.Info) *subst {
	s := &subst{callee: ci, pkg: pkg, byParam: make(map[*types.Var]Ref), keyPrefix: make(map[string]string)}
	sig := signatureOf(callee, info)
	if sig == nil {
		return s
	}
	bind := func(p *types.Var, arg ast.Expr) {
		if !aliasesArg(p.Type()) {
			return
		}
		if r, ok := resolveRef(info, arg); ok {
			s.byParam[p] = r
			s.keyPrefix[objKey(p)] = r.Key()
		}
	}
	if recv := sig.Recv(); recv != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			bind(recv, sel.X)
		}
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Variadic() && i == sig.Params().Len()-1 {
			break // the variadic slice is a fresh backing array, not an alias
		}
		if i < len(call.Args) {
			bind(sig.Params().At(i), call.Args[i])
		}
	}
	return s
}

// ref rebases one callee-scope ref, reporting false when the access must be
// dropped (unmappable parameter, value copy, or callee-local root).
func (s *subst) ref(r Ref) (Ref, bool) {
	root := r.Root
	if base, ok := s.byParam[root]; ok {
		return Ref{
			Root:      base.Root,
			Leaf:      r.Leaf,
			chain:     base.chain + r.chain,
			chainDisp: base.chainDisp + r.chainDisp,
		}, true
	}
	if s.callee.params[root] {
		return Ref{}, false // unmappable receiver/parameter
	}
	if root.Parent() == s.pkg.Scope() || root.Pkg() == nil || root.Pkg().Scope() == root.Parent() {
		return r, true // package-level state is shared everywhere
	}
	if root.Pos() < s.callee.bodyPos || root.Pos() > s.callee.bodyEnd {
		return r, true // captured from an enclosing scope: identity is stable
	}
	return Ref{}, false // callee-local: per-invocation, not shared
}

func (s *subst) access(a Access) (Access, bool) {
	if _, mapped := s.byParam[a.Ref.Root]; mapped && a.Ref.chain == "" {
		// A bare read/write of the parameter variable touches the callee's
		// private copy, not the caller's argument cell; only accesses that
		// chain through the reference (c.n) alias caller state. Sync ops are
		// different — a Done on a *sync.WaitGroup parameter names the
		// pointed-to object — so this drop lives here, not in ref.
		return Access{}, false
	}
	nr, ok := s.ref(a.Ref)
	if !ok {
		return Access{}, false
	}
	na := a
	na.Ref = nr
	na.Locks = s.locks(a.Locks)
	return na, true
}

// locks rebases a lock set key-by-key through the parameter substitution. A
// key rooted at neither a mapped parameter nor caller-visible state is kept
// raw: it can only ever suppress a pair inherited through the same callee —
// identical raw keys name the same mutex expression — never lift a distinct
// caller-side guard onto an access.
func (s *subst) locks(in map[string]bool) map[string]bool {
	if len(in) == 0 {
		return nil
	}
	out := make(map[string]bool, len(in))
	for k := range in {
		out[s.lockKey(k)] = true
	}
	return out
}

func (s *subst) lockKey(k string) string {
	if rest, ok := strings.CutPrefix(k, "once:"); ok {
		return "once:" + s.rebaseKey(rest)
	}
	return s.rebaseKey(k)
}

func (s *subst) rebaseKey(k string) string {
	for pfx, base := range s.keyPrefix {
		if k == pfx {
			return base
		}
		if strings.HasPrefix(k, pfx+".") {
			return base + k[len(pfx):]
		}
	}
	return k
}

func (s *subst) ops(in []SyncOp) []SyncOp {
	var out []SyncOp
	for _, op := range in {
		if nr, ok := s.ref(op.Ref); ok {
			out = append(out, SyncOp{Ref: nr, Pos: op.Pos})
		}
	}
	return out
}

// inherit folds one callee summary into the caller across a same-goroutine
// edge, under the caller's call-site locks (plus the Once pseudo-lock for Do
// callbacks). Reports whether anything new was added.
func (ci *ConcInfo) inherit(src *ConcInfo, callee *callgraph.Node, site *ast.CallExpr, onceLock string, pkg *types.Package, info *types.Info) bool {
	if src == nil {
		return false
	}
	sub := newSubstFromInfo(src, callee, site, pkg, info)
	siteLocks := ci.callLocks[site]
	changed := false
	addAccess := func(a Access, write bool) {
		na, ok := sub.access(a)
		if !ok {
			return
		}
		na.Pos = site.Pos()
		na.Write = write
		na.Desc = fmt.Sprintf("call to %s: %s", callee.Name(), a.Desc)
		for k := range siteLocks {
			if na.Locks == nil {
				na.Locks = make(map[string]bool)
			}
			na.Locks[k] = true
		}
		if onceLock != "" {
			if na.Locks == nil {
				na.Locks = make(map[string]bool)
			}
			na.Locks[onceLock] = true
		}
		key := accessKey(na)
		if ci.accKeys[key] {
			return
		}
		ci.accKeys[key] = true
		if write {
			ci.SharedWrites = append(ci.SharedWrites, na)
		} else {
			ci.SharedReads = append(ci.SharedReads, na)
		}
		changed = true
	}
	for _, a := range src.SharedReads {
		addAccess(a, false)
	}
	for _, a := range src.SharedWrites {
		addAccess(a, true)
	}
	addOps := func(kind string, ops []SyncOp, dst *[]SyncOp) {
		for _, op := range ops {
			nr, ok := sub.ref(op.Ref)
			if !ok {
				continue
			}
			key := kind + "|" + nr.Key()
			if ci.syncKeys[key] {
				continue
			}
			ci.syncKeys[key] = true
			*dst = append(*dst, SyncOp{Ref: nr, Pos: site.Pos()})
			changed = true
		}
	}
	addOps("done", src.HB.Done, &ci.HB.Done)
	addOps("send", src.HB.Sends, &ci.HB.Sends)
	addOps("wait", src.HB.Waits, &ci.HB.Waits)
	addOps("recv", src.HB.Recvs, &ci.HB.Recvs)
	return changed
}

func newSubstFromInfo(src *ConcInfo, callee *callgraph.Node, site *ast.CallExpr, pkg *types.Package, info *types.Info) *subst {
	return newSubst(src, callee, site, pkg, info)
}

func accessKey(a Access) string {
	var locks []string
	for k := range a.Locks {
		locks = append(locks, k)
	}
	insertionSort(locks)
	w := "r"
	if a.Write {
		w = "w"
	}
	// Position is part of the identity: the same write before and after a
	// `go` statement are different facts (only one is ordered by program
	// order). Positions are drawn from the finite set of access sites and
	// call sites, so the fixpoint still terminates.
	return fmt.Sprintf("%s|%s|%d|%s", a.Ref.Key(), w, a.Pos, strings.Join(locks, ","))
}

// insertionSort avoids importing sort for the tiny lock-key slices.
func insertionSort(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// aliasesArg reports whether passing a value of type t gives the callee a
// view of the caller's storage (so receiver/parameter accesses alias the
// argument) rather than a copy.
func aliasesArg(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan:
		return true
	}
	return false
}

// resolveRef names the storage location of an expression, unwrapping parens,
// derefs, and address-of (aliasing preserves identity). Index expressions do
// not resolve: element identity is beyond this analysis, and conflating
// elements would turn disjoint per-index writes into false races.
func resolveRef(info *types.Info, e ast.Expr) (Ref, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, ok := info.Uses[e].(*types.Var)
		if !ok {
			v, ok = info.Defs[e].(*types.Var)
		}
		if !ok || v == nil || v.IsField() || e.Name == "_" {
			return Ref{}, false
		}
		return Ref{Root: v, Leaf: v}, true
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			base, ok := resolveRef(info, e.X)
			if !ok {
				return Ref{}, false
			}
			f, ok := sel.Obj().(*types.Var)
			if !ok {
				return Ref{}, false
			}
			base.Leaf = f
			base.chain += "." + objKey(f)
			base.chainDisp += "." + f.Name()
			return base, true
		}
		// Package-qualified variable: other.Var.
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && !v.IsField() {
			if _, isPkg := info.Uses[identOf(e.X)].(*types.PkgName); isPkg {
				return Ref{Root: v, Leaf: v}, true
			}
		}
	case *ast.StarExpr:
		return resolveRef(info, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return resolveRef(info, e.X)
		}
	}
	return Ref{}, false
}

func identOf(e ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(e).(*ast.Ident)
	return id
}

// syncInternal reports whether the accessed object is itself a
// synchronization primitive (sync.Mutex field, atomic.Int64 counter, ...):
// operations on those are synchronization, not shared-data accesses.
func syncInternal(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && (pkg.Path() == "sync" || pkg.Path() == "sync/atomic")
}

// directConc scans one body for its own spawns, accesses, sync ops, and lock
// states.
func directConc(g *callgraph.Graph, n *callgraph.Node, pkg *types.Package, info *types.Info, opts Options) *ConcInfo {
	ci := &ConcInfo{
		accKeys:   make(map[string]bool),
		syncKeys:  make(map[string]bool),
		callLocks: make(map[*ast.CallExpr]map[string]bool),
		goCalls:   make(map[*ast.CallExpr]bool),
		params:    make(map[*types.Var]bool),
	}
	body := n.Body()
	if body == nil {
		return ci
	}
	ci.bodyPos, ci.bodyEnd = body.Pos(), body.End()
	if sig := signatureOf(n, info); sig != nil {
		if recv := sig.Recv(); recv != nil {
			ci.params[recv] = true
		}
		for i := 0; i < sig.Params().Len(); i++ {
			ci.params[sig.Params().At(i)] = true
		}
		for i := 0; i < sig.Results().Len(); i++ {
			ci.params[sig.Results().At(i)] = true
		}
	}

	c := &concCollector{
		g:          g,
		ci:         ci,
		pkg:        pkg,
		info:       info,
		opts:       opts,
		writes:     make(map[ast.Expr]bool),
		selDefault: make(map[ast.Node]bool),
	}
	c.prepass(body)
	c.spawns(body)

	// Must-hold lock dataflow over the CFG, then one in-order recording pass.
	graph := cfg.New(body)
	facts := cfg.Solve[lockSet](graph, (*lockFlow)(c))
	for _, b := range graph.Blocks {
		in, ok := facts[b]
		if !ok {
			continue
		}
		state := in.clone()
		for _, node := range b.Nodes {
			c.visit(node, state)
		}
	}
	return ci
}

// lockSet is the must-hold fact: every key is a mutex provably held.
type lockSet map[string]bool

func (s lockSet) clone() lockSet {
	out := make(lockSet, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// lockFlow adapts concCollector as the cfg.Problem for the must-hold pass.
type lockFlow concCollector

func (l *lockFlow) Entry() lockSet { return lockSet{} }

func (l *lockFlow) Join(a, b lockSet) lockSet {
	out := lockSet{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func (l *lockFlow) Equal(a, b lockSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func (l *lockFlow) Transfer(b *cfg.Block, in lockSet) lockSet {
	out := in.clone()
	for _, node := range b.Nodes {
		cfg.Walk(node, func(m ast.Node) bool {
			if _, ok := m.(*ast.DeferStmt); ok {
				return false // a deferred Unlock releases at return, not here
			}
			if call, ok := m.(*ast.CallExpr); ok {
				(*concCollector)(l).lockOp(call, out)
			}
			return true
		})
	}
	return out
}

type concCollector struct {
	g          *callgraph.Graph
	ci         *ConcInfo
	pkg        *types.Package
	info       *types.Info
	opts       Options
	writes     map[ast.Expr]bool
	selDefault map[ast.Node]bool
}

// prepass marks write targets and select-with-default communication ops.
func (c *concCollector) prepass(body ast.Node) {
	cfgWalkAll(body, func(m ast.Node) {
		switch m := m.(type) {
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				c.writes[ast.Unparen(lhs)] = true
			}
		case *ast.IncDecStmt:
			c.writes[ast.Unparen(m.X)] = true
		case *ast.RangeStmt:
			if m.Tok == token.ASSIGN {
				if m.Key != nil {
					c.writes[ast.Unparen(m.Key)] = true
				}
				if m.Value != nil {
					c.writes[ast.Unparen(m.Value)] = true
				}
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, cl := range m.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				return
			}
			for _, cl := range m.Body.List {
				cc, ok := cl.(*ast.CommClause)
				if !ok || cc.Comm == nil {
					continue
				}
				ast.Inspect(cc.Comm, func(x ast.Node) bool {
					switch x := x.(type) {
					case *ast.SendStmt:
						c.selDefault[x] = true
					case *ast.UnaryExpr:
						if x.Op == token.ARROW {
							c.selDefault[x] = true
						}
					}
					return true
				})
			}
		}
	})
}

// spawns records every go statement with its loop boundary.
func (c *concCollector) spawns(body ast.Node) {
	var walk func(n ast.Node, loop token.Pos)
	walk = func(n ast.Node, loop token.Pos) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return m == n // nested literals are their own nodes
			case *ast.ForStmt:
				if m != n {
					next := loop
					if next == token.NoPos {
						next = m.Pos()
					}
					walk(m.Body, next)
					if m.Init != nil {
						walk(m.Init, loop)
					}
					return false
				}
			case *ast.RangeStmt:
				if m != n {
					next := loop
					if next == token.NoPos {
						next = m.Pos()
					}
					walk(m.Body, next)
					return false
				}
			case *ast.GoStmt:
				boundary := m.Pos()
				if loop != token.NoPos {
					boundary = loop
				}
				c.ci.Spawns = append(c.ci.Spawns, Spawn{
					Stmt:     m,
					Callee:   c.g.CalleeOf(m.Call),
					InLoop:   loop != token.NoPos,
					Boundary: boundary,
				})
				c.ci.goCalls[m.Call] = true
			}
			return true
		})
	}
	walk(body, token.NoPos)
}

// visit records the accesses and sync ops of one CFG node, threading the
// must-hold lock state through in syntactic order.
func (c *concCollector) visit(n ast.Node, state lockSet) {
	var walk func(m ast.Node) bool
	walk = func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.DeferStmt:
			// The deferred call runs at return on this goroutine; record its
			// accesses and sync facts (a deferred wg.Done still establishes
			// the edge) without mutating the lock state.
			for _, arg := range m.Call.Args {
				cfg.Walk(arg, walk)
			}
			c.syncOp(m.Call, state)
			if callee := c.g.CalleeOf(m.Call); callee != nil {
				c.ci.callLocks[m.Call] = state.clone()
			}
			cfg.Walk(m.Call.Fun, walk)
			return false
		case *ast.CallExpr:
			c.lockOp(m, state)
			c.syncOp(m, state)
			c.ci.callLocks[m] = state.clone()
			return true
		case *ast.SendStmt:
			if !c.selDefault[m] {
				if r, ok := resolveRef(c.info, m.Chan); ok {
					c.addSync("send", &c.ci.HB.Sends, r, m.Pos())
				}
			}
			return true
		case *ast.UnaryExpr:
			if m.Op == token.ARROW && !c.selDefault[m] {
				if r, ok := resolveRef(c.info, m.X); ok {
					c.addSync("recv", &c.ci.HB.Recvs, r, m.Pos())
				}
			}
			return true
		case *ast.RangeStmt:
			if t := c.info.TypeOf(m.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					if r, ok := resolveRef(c.info, m.X); ok {
						c.addSync("recv", &c.ci.HB.Recvs, r, m.Pos())
					}
				}
			}
			return true
		case *ast.SelectorExpr:
			if sel, ok := c.info.Selections[m]; ok && sel.Kind() == types.FieldVal {
				c.record(m, c.writes[m], state)
				cfg.Walk(m.X, walk)
				return false
			}
			cfg.Walk(m.X, walk) // method or package selector: skip Sel
			return false
		case *ast.Ident:
			c.record(m, c.writes[m], state)
			return true
		}
		return true
	}
	cfg.Walk(n, walk)
}

// record captures one access. Locals are recorded too: whether a location is
// truly shared is decided where goroutines meet — a spawner-local captured by
// a `go` literal pairs with the spawner's own accesses by ref identity, while
// an uncaptured local simply never matches anything concurrent. Call edges
// drop callee-local roots at inheritance (subst.ref), so locals never leak
// upward as false sharing.
func (c *concCollector) record(e ast.Expr, write bool, state lockSet) {
	r, ok := resolveRef(c.info, e)
	if !ok {
		return
	}
	if syncInternal(r.Leaf.Type()) {
		return
	}
	if c.opts.Ignore != nil && c.opts.Ignore(e.Pos()) {
		return
	}
	verb := "read"
	if write {
		verb = "write"
	}
	a := Access{
		Ref:   r,
		Pos:   e.Pos(),
		Write: write,
		Locks: lockSet(state).clone(),
		Desc:  verb + " of " + r.Display(),
	}
	key := accessKey(a)
	if c.ci.accKeys[key] {
		return
	}
	c.ci.accKeys[key] = true
	if write {
		c.ci.SharedWrites = append(c.ci.SharedWrites, a)
	} else {
		c.ci.SharedReads = append(c.ci.SharedReads, a)
	}
}

// lockOp applies a mutex Lock/Unlock to the must-hold state.
func (c *concCollector) lockOp(call *ast.CallExpr, state lockSet) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := c.info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil || !isSyncMutex(recv.Type()) {
		return
	}
	r, ok := resolveRef(c.info, sel.X)
	if !ok {
		return
	}
	switch fn.Name() {
	case "Lock", "RLock":
		state[r.Key()] = true
	case "Unlock", "RUnlock":
		delete(state, r.Key())
	}
}

// syncOp records WaitGroup Done/Wait, close(), and Once.Do.
func (c *concCollector) syncOp(call *ast.CallExpr, state lockSet) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, builtin := c.info.Uses[id].(*types.Builtin); builtin && id.Name == "close" && len(call.Args) == 1 {
			if r, ok := resolveRef(c.info, call.Args[0]); ok {
				c.addSync("send", &c.ci.HB.Sends, r, call.Pos())
			}
		}
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := c.info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return
	}
	switch recvNamed(recv.Type()) {
	case "sync.WaitGroup":
		r, ok := resolveRef(c.info, sel.X)
		if !ok {
			return
		}
		switch fn.Name() {
		case "Done":
			c.addSync("done", &c.ci.HB.Done, r, call.Pos())
		case "Wait":
			c.addSync("wait", &c.ci.HB.Waits, r, call.Pos())
		}
	case "sync.Once":
		if fn.Name() != "Do" || len(call.Args) != 1 {
			return
		}
		r, ok := resolveRef(c.info, sel.X)
		if !ok {
			return
		}
		if callee := c.g.FuncValue(call.Args[0]); callee != nil {
			c.ci.onceEdges = append(c.ci.onceEdges, onceEdge{
				callee: callee,
				site:   call,
				lock:   "once:" + r.Key(),
			})
			c.ci.callLocks[call] = state.clone()
		}
	}
}

func (c *concCollector) addSync(kind string, dst *[]SyncOp, r Ref, pos token.Pos) {
	if c.opts.Ignore != nil && c.opts.Ignore(pos) {
		return
	}
	// Waits and Recvs keep every position (ordering matters); Done and Sends
	// are sets.
	key := kind + "|" + r.Key()
	if kind == "wait" || kind == "recv" {
		key = fmt.Sprintf("%s|%d", key, pos)
	}
	if c.ci.syncKeys[key] {
		return
	}
	c.ci.syncKeys[key] = true
	*dst = append(*dst, SyncOp{Ref: r, Pos: pos})
}

func isSyncMutex(t types.Type) bool {
	switch recvNamed(t) {
	case "sync.Mutex", "sync.RWMutex":
		return true
	}
	return false
}

// recvNamed renders a (possibly pointer) named receiver type as "pkg.Name".
func recvNamed(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// cfgWalkAll visits every node of body without descending into nested
// function literals.
func cfgWalkAll(body ast.Node, f func(ast.Node)) {
	cfg.Walk(body, func(m ast.Node) bool {
		f(m)
		return true
	})
}
