package summary

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"autopipe/internal/analysis"
	"autopipe/internal/analysis/callgraph"
)

func load(t *testing.T, src string) (*callgraph.Graph, *types.Info, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	return callgraph.Build([]*ast.File{f}, info), info, fset
}

func byName(t *testing.T, g *callgraph.Graph, name string) *callgraph.Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Name() == name {
			return n
		}
	}
	t.Fatalf("no node %q", name)
	return nil
}

const src = `package p

import (
	"context"
	"sync"
	"time"
)

func clock() time.Time { return time.Now() }

func viaClock() time.Time { return clock() }

func viaViaClock() time.Time { return viaClock() }

func pure(a, b int) int { return a + b }

func allocs(n int) []int { return make([]int, n) }

func blocks(ch chan int) int { return <-ch }

func selDefault(ch chan int) int {
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}

func selBlocking(ch chan int, done chan struct{}) int {
	select {
	case v := <-ch:
		return v
	case <-done:
		return -1
	}
}

func waits(wg *sync.WaitGroup) { wg.Wait() }

func ctxParam(ctx context.Context) {}

func usesCtx(ctx context.Context) { ctxParam(ctx) }

func mutual(n int) int {
	if n == 0 {
		return 0
	}
	return lautum(n - 1)
}

func lautum(n int) int {
	_ = time.Now()
	return mutual(n)
}
`

func facts(t *testing.T, src, fn string, opts Options) (Facts, map[Facts]Site) {
	t.Helper()
	g, info, _ := load(t, src)
	sums := Compute(g, info, opts)
	in := sums[byName(t, g, fn)]
	return in.Facts, in.Witness
}

func TestDirectAndTransitive(t *testing.T) {
	for _, tc := range []struct {
		fn      string
		want    Facts
		without Facts
	}{
		{"clock", ReadsClock, MayBlock | GlobalRand},
		{"viaClock", ReadsClock, 0},
		{"viaViaClock", ReadsClock, 0},
		{"pure", 0, ReadsClock | Allocates | MayBlock},
		{"allocs", Allocates, ReadsClock},
		{"blocks", MayBlock, 0},
		{"selDefault", 0, MayBlock},
		{"selBlocking", MayBlock | ObservesCancel, 0},
		{"waits", MayBlock, 0},
		{"usesCtx", ObservesCancel, MayBlock},
		// Mutual recursion through a clock read reaches the fixpoint.
		{"mutual", ReadsClock, 0},
	} {
		got, _ := facts(t, src, tc.fn, Options{})
		if got&tc.want != tc.want {
			t.Errorf("%s: facts %v missing %v", tc.fn, got, tc.want)
		}
		if got&tc.without != 0 {
			t.Errorf("%s: facts %v unexpectedly include %v", tc.fn, got, got&tc.without)
		}
	}
}

func TestWitnessChain(t *testing.T) {
	g, info, _ := load(t, src)
	sums := Compute(g, info, Options{})
	in := sums[byName(t, g, "viaViaClock")]
	w := in.Witness[ReadsClock]
	// The chain names both intermediate calls and the original site.
	if !strings.Contains(w.Desc, "viaClock") || !strings.Contains(w.Desc, "time.Now") {
		t.Errorf("witness chain %q should name viaClock and time.Now", w.Desc)
	}
	if !w.Pos.IsValid() {
		t.Error("witness position invalid")
	}
}

func TestIgnoreSuppressesTaint(t *testing.T) {
	g, info, fset := load(t, src)
	// Ignore the direct time.Now inside clock(): neither clock nor its
	// callers may be clock-tainted afterwards.
	ignore := func(pos token.Pos) bool {
		p := fset.Position(pos)
		return p.Line == 9 // the `func clock()` one-liner
	}
	sums := Compute(g, info, Options{Ignore: ignore})
	for _, fn := range []string{"clock", "viaClock", "viaViaClock"} {
		if sums[byName(t, g, fn)].Has(ReadsClock) {
			t.Errorf("%s still clock-tainted despite ignored source site", fn)
		}
	}
}

func TestFactsString(t *testing.T) {
	if got := (ReadsClock | Allocates).String(); got != "allocates|reads clock" {
		t.Errorf("String() = %q", got)
	}
	if got := Facts(0).String(); got != "none" {
		t.Errorf("String() = %q", got)
	}
}
