// Package summary computes per-function effect summaries over a callgraph
// and propagates them bottom-up to a fixpoint. Each function body gets a
// monotone bitset of facts — allocates, reads the wall clock, draws from the
// global rand source, may block on a channel, observes a cancellation signal
// — derived first from its own syntax (with known-effect tables for the
// relevant stdlib packages) and then inherited across every resolved
// same-package call edge. The interprocedural analyzers (hotalloc, transitive
// simclock, ctxspawn, locksafe) consume the result instead of re-walking
// callee bodies themselves.
//
// Soundness model: facts only ever turn on, so the worklist fixpoint
// terminates, and a fact present is a *may* property ("this function may
// allocate"), never a must. Unresolved callees (interface methods,
// cross-package calls outside the stdlib tables, widened function values)
// contribute nothing — the analyzers that need external effects covered use
// the same stdlib tables at the call site. Every fact carries a witness chain
// (the site that introduced it, through the call edges it traveled), so a
// diagnostic three calls removed from the offending line can still name it.
//
// Alongside the bitset facts, ComputeConcurrency (concurrency.go) builds the
// richer per-function concurrency summaries that back the raceguard analyzer
// (DESIGN §11.10): resolved goroutine spawns with loop boundaries, shared
// reads and writes identified by root-variable + field-chain references, each
// carrying the CFG must-hold lock set at the access and a witness chain, and
// the happens-before facts (WaitGroup Done/Wait, channel send/recv/close,
// sync.Once.Do) that let the checker discharge ordered pairs. The same
// bottom-up fixpoint discipline applies: accesses and sync effects propagate
// across resolved call edges (with references rebased through parameters),
// and goroutine edges deliberately do not propagate — a spawn is a
// concurrency boundary, not a call.
package summary

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"autopipe/internal/analysis/callgraph"
)

// Facts is a monotone bitset of function effects.
type Facts uint32

const (
	// Allocates: the function may allocate on the heap (make/new/append,
	// reference composite literals, closures, string building, fmt.*).
	Allocates Facts = 1 << iota
	// ReadsClock: the function may read the wall clock or arm a timer
	// (time.Now, time.Sleep, ...).
	ReadsClock
	// GlobalRand: the function may draw from the process-global math/rand
	// source.
	GlobalRand
	// MayBlock: the function may block indefinitely on channel communication,
	// a select without default, or sync.WaitGroup.Wait / sync.Cond.Wait.
	// Acquiring a plain mutex is deliberately excluded: lock acquisition is
	// locksafe's own domain, and treating every Lock as blocking would flag
	// all fine-grained locking helpers (see DESIGN §11.9).
	MayBlock
	// ObservesCancel: the function references a context.Context or a
	// receivable chan struct{} (done channel) — it has a cancellation path.
	ObservesCancel
)

// String renders the set for diagnostics, e.g. "allocates|reads clock".
func (f Facts) String() string {
	var parts []string
	for _, e := range []struct {
		bit  Facts
		name string
	}{
		{Allocates, "allocates"},
		{ReadsClock, "reads clock"},
		{GlobalRand, "global rand"},
		{MayBlock, "may block"},
		{ObservesCancel, "observes cancel"},
	} {
		if f&e.bit != 0 {
			parts = append(parts, e.name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "|")
}

// A Site is one witness: where a fact was introduced and what introduced it.
type Site struct {
	Pos  token.Pos
	Desc string
}

// An Info is one function's summary.
type Info struct {
	Facts Facts
	// Witness maps each single-bit fact to one site that introduced it —
	// either a direct site in this body, or "call to f (…)" chaining through
	// the edge that inherited it.
	Witness map[Facts]Site
}

// Has reports whether every bit of f is present.
func (in *Info) Has(f Facts) bool { return in != nil && in.Facts&f == f }

// Options configures Compute.
type Options struct {
	// Ignore, when non-nil, suppresses direct facts whose site it reports
	// true for. The analyzers pass Pass.Waived so a `//lint:allow` comment
	// sanctions the effect itself: a waived time.Now does not make every
	// caller clock-tainted.
	Ignore func(token.Pos) bool
}

// Compute returns the fixpoint summary for every node of g.
func Compute(g *callgraph.Graph, info *types.Info, opts Options) map[*callgraph.Node]*Info {
	out := make(map[*callgraph.Node]*Info, len(g.Nodes))
	for _, n := range g.Nodes {
		out[n] = direct(n, info, opts)
	}
	// Bottom-up propagation: inherit callee facts across resolved edges until
	// nothing changes. Facts are monotone, so this terminates in at most
	// bits×nodes rounds; the graphs are package-sized, so a simple sweep
	// beats maintaining a reverse-edge worklist.
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			ni := out[n]
			for _, e := range n.Out {
				ci := out[e.Callee]
				inherit := ci.Facts &^ ni.Facts
				if inherit == 0 {
					continue
				}
				for bit := Facts(1); bit <= ObservesCancel; bit <<= 1 {
					if inherit&bit == 0 {
						continue
					}
					w := ci.Witness[bit]
					ni.Witness[bit] = Site{
						Pos:  e.Site.Pos(),
						Desc: fmt.Sprintf("call to %s: %s", e.Callee.Name(), w.Desc),
					}
				}
				ni.Facts |= inherit
				changed = true
			}
		}
	}
	return out
}

// direct scans one body shallowly (nested literals are their own nodes) for
// the facts it exhibits itself.
func direct(n *callgraph.Node, info *types.Info, opts Options) *Info {
	in := &Info{Witness: make(map[Facts]Site)}
	add := func(bit Facts, pos token.Pos, desc string) {
		if opts.Ignore != nil && opts.Ignore(pos) {
			return
		}
		if in.Facts&bit == 0 {
			in.Facts |= bit
			in.Witness[bit] = Site{Pos: pos, Desc: desc}
		}
	}

	// A cancellation parameter is itself an observation point: the function
	// can be handed a ctx/done channel, which is what ctxspawn checks for.
	if sig := signatureOf(n, info); sig != nil {
		for i := 0; i < sig.Params().Len(); i++ {
			p := sig.Params().At(i)
			if IsCancelType(p.Type()) {
				add(ObservesCancel, p.Pos(), fmt.Sprintf("parameter %s", p.Name()))
			}
		}
	}

	body := n.Body()
	if body == nil {
		return in
	}
	// Channel operations that are the communication of a select case are not
	// independent blocking points — the select statement is the blocking
	// point, and only when it has no default. Collect them up front so the
	// main walk can skip their MayBlock contribution.
	selectComm := make(map[ast.Node]bool)
	walk(body, func(m ast.Node) {
		sel, ok := m.(*ast.SelectStmt)
		if !ok {
			return
		}
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			ast.Inspect(cc.Comm, func(x ast.Node) bool {
				switch x := x.(type) {
				case *ast.SendStmt:
					selectComm[x] = true
				case *ast.UnaryExpr:
					if x.Op == token.ARROW {
						selectComm[x] = true
					}
				}
				return true
			})
		}
	})
	walk(body, func(m ast.Node) {
		switch m := m.(type) {
		case *ast.CallExpr:
			directCall(m, info, add)
		case *ast.CompositeLit:
			// Only reference-kind literals are summary-level allocations; a
			// plain value struct literal usually lives on the stack.
			if t := info.TypeOf(m); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					add(Allocates, m.Pos(), "slice literal")
				case *types.Map:
					add(Allocates, m.Pos(), "map literal")
				}
			}
		case *ast.UnaryExpr:
			switch m.Op {
			case token.AND:
				if _, ok := ast.Unparen(m.X).(*ast.CompositeLit); ok {
					add(Allocates, m.Pos(), "&composite literal")
				}
			case token.ARROW:
				if !selectComm[m] {
					add(MayBlock, m.Pos(), "channel receive")
				}
			}
		case *ast.FuncLit:
			add(Allocates, m.Pos(), "function literal (closure)")
		case *ast.SendStmt:
			if !selectComm[m] {
				add(MayBlock, m.Pos(), "channel send")
			}
		case *ast.BinaryExpr:
			if m.Op == token.ADD && isString(info.TypeOf(m)) {
				add(Allocates, m.Pos(), "string concatenation")
			}
		case *ast.AssignStmt:
			if m.Tok == token.ADD_ASSIGN && len(m.Lhs) == 1 && isString(info.TypeOf(m.Lhs[0])) {
				add(Allocates, m.Pos(), "string concatenation")
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range m.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				add(MayBlock, m.Pos(), "select without default")
			}
		case *ast.Ident:
			if obj := info.Uses[m]; obj != nil {
				if _, isVar := obj.(*types.Var); isVar && IsCancelType(obj.Type()) {
					add(ObservesCancel, m.Pos(), fmt.Sprintf("reference to %s", m.Name))
				}
			}
		}
	})
	return in
}

// directCall applies the known-effect tables to one call expression.
func directCall(call *ast.CallExpr, info *types.Info, add func(Facts, token.Pos, string)) {
	// Builtins: make/new always allocate; append may grow its backing array.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				add(Allocates, call.Pos(), id.Name+" call")
			case "append":
				add(Allocates, call.Pos(), "append (may grow)")
			}
			return
		}
	}
	// Conversions that copy into a fresh backing array: []byte(s), []rune(s),
	// string(b).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type.Underlying(), info.TypeOf(call.Args[0])
		if from != nil {
			_, toSlice := to.(*types.Slice)
			if (toSlice && isString(from)) || (isString(tv.Type) && !isString(from)) {
				add(Allocates, call.Pos(), "string/slice conversion")
			}
		}
		return
	}
	// Stdlib effect tables for package-level functions.
	if fn := pkgFunc(info, call); fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "time":
			if clockFuncs[fn.Name()] {
				add(ReadsClock, call.Pos(), "time."+fn.Name())
			}
		case "math/rand", "math/rand/v2":
			if !strings.HasPrefix(fn.Name(), "New") {
				add(GlobalRand, call.Pos(), "rand."+fn.Name())
			}
		case "fmt":
			add(Allocates, call.Pos(), "fmt."+fn.Name())
		}
		return
	}
	// Blocking sync methods: WaitGroup.Wait and Cond.Wait.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Name() == "Wait" {
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
				name := types.TypeString(recv.Type(), nil)
				if name == "*sync.WaitGroup" || name == "*sync.Cond" {
					add(MayBlock, call.Pos(), name[1:]+".Wait")
				}
			}
		}
	}
}

// clockFuncs mirrors simclock's forbidden-time table: wall-clock reads and
// timer arms.
var clockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true, "NewTimer": true, "NewTicker": true,
}

// IsCancelType reports whether t is a cancellation signal: a context.Context
// or a receivable channel of struct{} (the done-channel idiom). Shared with
// ctxspawn so the literal and interprocedural checks agree.
func IsCancelType(t types.Type) bool {
	if t == nil {
		return false
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context" {
			return true
		}
	}
	if iface, ok := t.Underlying().(*types.Interface); ok {
		for i := 0; i < iface.NumEmbeddeds(); i++ {
			if IsCancelType(iface.EmbeddedType(i)) {
				return true
			}
		}
	}
	if ch, ok := t.Underlying().(*types.Chan); ok {
		if ch.Dir() == types.SendOnly {
			return false
		}
		if st, ok := ch.Elem().Underlying().(*types.Struct); ok && st.NumFields() == 0 {
			return true
		}
	}
	return false
}

func signatureOf(n *callgraph.Node, info *types.Info) *types.Signature {
	if n.Obj != nil {
		return n.Obj.Type().(*types.Signature)
	}
	if n.Lit != nil {
		if t := info.TypeOf(n.Lit); t != nil {
			if sig, ok := t.(*types.Signature); ok {
				return sig
			}
		}
	}
	return nil
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// pkgFunc resolves a call to a package-level function (duplicated from the
// framework to keep the dependency one-way: analysis → summary is not
// imported, analyzers import both).
func pkgFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Type().(*types.Signature).Recv() != nil {
		return nil
	}
	return fn
}

// walk visits every node of body without descending into nested function
// literals (they are separate callgraph nodes with their own summaries).
func walk(body ast.Node, f func(ast.Node)) {
	ast.Inspect(body, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != body {
			f(m) // the literal itself is a closure allocation at this site
			return false
		}
		if m != nil {
			f(m)
		}
		return true
	})
}
