package scheddata

import (
	"path/filepath"
	"strings"
	"testing"
)

const fixtures = "../testdata/json"

func check(t *testing.T, name string) []string {
	t.Helper()
	diags, err := CheckFile(filepath.Join(fixtures, name))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	msgs := make([]string, len(diags))
	for i, d := range diags {
		msgs[i] = d.Message
	}
	return msgs
}

func TestValidFilesAreClean(t *testing.T) {
	for _, name := range []string{"sched_ok.json", "plan_ok.json", "trace_skip.json", "bench_ok.json", "chaos_ok.json", "faults_concurrent_ok.json"} {
		if msgs := check(t, name); len(msgs) != 0 {
			t.Errorf("%s: unexpected findings: %v", name, msgs)
		}
	}
}

func TestScheduleCycleIsStaticDeadlock(t *testing.T) {
	msgs := check(t, "sched_cycle.json")
	if len(msgs) != 1 || !strings.Contains(msgs[0], "deadlock") {
		t.Fatalf("want one deadlock finding, got %v", msgs)
	}
}

func TestDuplicateOpIsMalformed(t *testing.T) {
	msgs := check(t, "sched_dup.json")
	if len(msgs) != 1 || !strings.Contains(msgs[0], "malformed schedule") {
		t.Fatalf("want one malformed-schedule finding, got %v", msgs)
	}
}

func TestBadFaultPlan(t *testing.T) {
	msgs := check(t, "faults_bad.json")
	if len(msgs) != 1 || !strings.Contains(msgs[0], "malformed fault plan") {
		t.Fatalf("want one malformed-fault-plan finding, got %v", msgs)
	}
}

func TestBadPlanDoc(t *testing.T) {
	msgs := check(t, "plan_bad.json")
	if len(msgs) < 2 {
		t.Fatalf("want findings for bad bounds, stage count, and numSliced; got %v", msgs)
	}
	joined := strings.Join(msgs, "\n")
	for _, want := range []string{"bounds", "stageDevices", "numSliced"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing finding mentioning %q in %v", want, msgs)
		}
	}
}

// TestConcurrentCrashOrdering: device-crash events sharing an activation
// time replay in array order, so the fixture must emit them sorted by device
// and without duplicates — the deterministic ordering key a map-keyed
// generator would scramble.
func TestConcurrentCrashOrdering(t *testing.T) {
	msgs := check(t, "faults_concurrent_bad.json")
	if len(msgs) != 2 {
		t.Fatalf("want an unsorted finding and a duplicate finding, got %v", msgs)
	}
	if !strings.Contains(msgs[0], "not sorted by device") {
		t.Errorf("first finding = %q, want the unsorted-emission diagnostic", msgs[0])
	}
	if !strings.Contains(msgs[1], "duplicate device-crash") {
		t.Errorf("second finding = %q, want the duplicate diagnostic", msgs[1])
	}
}

func TestBadChaosPlan(t *testing.T) {
	msgs := check(t, "chaos_bad.json")
	if len(msgs) != 1 || !strings.Contains(msgs[0], "malformed chaos plan") {
		t.Fatalf("want one malformed-chaos-plan finding, got %v", msgs)
	}
}

func TestBadBenchBaseline(t *testing.T) {
	msgs := check(t, "bench_bad.json")
	if len(msgs) != 1 || !strings.Contains(msgs[0], "malformed bench baseline") {
		t.Fatalf("want one malformed-bench-baseline finding, got %v", msgs)
	}
}

// TestCheckPaths sweeps the whole fixture directory: every bad file is
// found, every good or foreign file is passed over.
func TestCheckPaths(t *testing.T) {
	diags, err := CheckPaths([]string{fixtures})
	if err != nil {
		t.Fatal(err)
	}
	bad := map[string]bool{}
	for _, d := range diags {
		bad[filepath.Base(d.Pos.Filename)] = true
	}
	for _, want := range []string{"sched_cycle.json", "sched_dup.json", "faults_bad.json", "faults_concurrent_bad.json", "plan_bad.json", "bench_bad.json", "chaos_bad.json"} {
		if !bad[want] {
			t.Errorf("sweep missed %s (findings: %v)", want, diags)
		}
	}
	for _, clean := range []string{"sched_ok.json", "plan_ok.json", "trace_skip.json", "bench_ok.json", "chaos_ok.json", "faults_concurrent_ok.json"} {
		if bad[clean] {
			t.Errorf("sweep flagged clean file %s", clean)
		}
	}
}

// TestGoldenTestdataIsClean pins the repository's real checked-in testdata:
// the schedule goldens, plan docs, and fault plans must all validate.
func TestGoldenTestdataIsClean(t *testing.T) {
	diags, err := CheckPaths([]string{"../../../testdata"})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("checked-in testdata has findings: %v", diags)
	}
}
