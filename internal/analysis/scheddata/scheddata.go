// Package scheddata validates the repository's checked-in JSON testdata —
// schedules, partition plans, and fault plans — before any test consumes
// them. The golden files pin paper-level claims (1F1B bubble counts, sliced
// warm-up behaviour, recovery trajectories); a malformed or statically
// deadlocked schedule in testdata would either fail a test with an opaque
// executor hang or, worse, pin a golden to a schedule that could never run.
//
// Unlike the other autopipelint analyzers, scheddata is not a go/analysis
// pass over Go syntax: it is a well-formedness sweep over data files, run as
// `autopipelint -testdata <paths...>`. A file is classified by its top-level
// JSON keys:
//
//   - "ops" (+ "devices", "numMicro"): a schedule document. It must parse
//     (schedule.ParseJSON: unknown fields, duplicate ops, dangling stage
//     refs, and credit violations all fail) and must pass the static
//     deadlock check (schedule.CheckDeadlock: a cycle in the dependency
//     graph means the executor would stall with every device blocked).
//   - "faults": a fault plan; it must satisfy fault.Parse's validation.
//   - "chaos": an HTTP chaos plan for the autopiped middleware; it must
//     satisfy service.ParseChaos (unknown kinds/fields, out-of-range
//     probabilities, and kind/parameter mismatches all fail).
//   - "bounds" (+ "blocks", "stageDevices"): a partition-plan document;
//     bounds must form a valid partition of the block count and the device
//     counts must be positive.
//   - "benchmarks" (+ "suite"): a BENCH_*.json performance baseline; it must
//     satisfy bench.ParseBaseline (DisallowUnknownFields, unique entry
//     names, positive iteration counts, finite metrics) so a typo in a
//     checked-in baseline cannot silently become a missing metric.
//   - "traceEvents" or anything else: not ours — skipped, not failed, so
//     Chrome traces and other goldens can live beside schedule fixtures.
package scheddata

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"autopipe/internal/analysis"
	"autopipe/internal/bench"
	"autopipe/internal/fault"
	"autopipe/internal/partition"
	"autopipe/internal/schedule"
	"autopipe/internal/service"
)

// Name is the analyzer name used in diagnostics.
const Name = "scheddata"

// planDoc mirrors testdata/plans/*.json: the on-disk form of a partition
// decision (planner name, block count, stage bounds, devices per stage).
type planDoc struct {
	Planner      string `json:"planner"`
	Blocks       int    `json:"blocks"`
	Bounds       []int  `json:"bounds"`
	StageDevices []int  `json:"stageDevices"`
	NumSliced    int    `json:"numSliced"`
}

// CheckPaths validates every .json file under the given paths (files or
// directories, walked recursively) and returns the findings.
func CheckPaths(paths []string) ([]analysis.Diagnostic, error) {
	var files []string
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			files = append(files, p)
			continue
		}
		err = filepath.WalkDir(p, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".json") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(files)
	var diags []analysis.Diagnostic
	for _, f := range files {
		ds, err := CheckFile(f)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	return diags, nil
}

// CheckFile validates one JSON file, returning one diagnostic per problem.
// Files that are not schedule/fault/plan documents yield nothing.
func CheckFile(path string) ([]analysis.Diagnostic, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		// Not a JSON object (array, scalar, or syntactically broken). Only
		// broken files are findings; non-object JSON is simply not ours.
		if _, arrErr := probeNonObject(data); arrErr == nil {
			return nil, nil
		}
		return []analysis.Diagnostic{diag(path, "not valid JSON: %v", err)}, nil
	}

	switch {
	case has(probe, "ops"):
		return checkSchedule(path, data), nil
	case has(probe, "faults"):
		return checkFaults(path, data), nil
	case has(probe, "chaos"):
		return checkChaos(path, data), nil
	case has(probe, "bounds") && has(probe, "stageDevices"):
		return checkPlan(path, data), nil
	case has(probe, "benchmarks") && has(probe, "suite"):
		return checkBench(path, data), nil
	default:
		return nil, nil // a trace golden, metrics dump, or foreign file
	}
}

func probeNonObject(data []byte) (any, error) {
	var v any
	err := json.Unmarshal(data, &v)
	return v, err
}

func has(m map[string]json.RawMessage, key string) bool {
	_, ok := m[key]
	return ok
}

func checkSchedule(path string, data []byte) []analysis.Diagnostic {
	s, err := schedule.ParseJSON(data)
	if err != nil {
		return []analysis.Diagnostic{diag(path, "malformed schedule: %v", err)}
	}
	if err := s.CheckDeadlock(); err != nil {
		return []analysis.Diagnostic{diag(path, "schedule %q: %v", s.Name, err)}
	}
	return nil
}

func checkFaults(path string, data []byte) []analysis.Diagnostic {
	p, err := fault.Parse(data)
	if err != nil {
		return []analysis.Diagnostic{diag(path, "malformed fault plan: %v", err)}
	}
	// Concurrent device crashes — several "device-crash" events sharing one
	// activation time — replay in array order: the decoded slice is the
	// injector's iteration order, so the fixture itself is the ordering key.
	// Require each same-instant crash run to be emitted sorted by device and
	// free of duplicates. A generator that passed through a map keyed by
	// device would emit a different order per run (Go randomizes map
	// iteration) and two checked-in regenerations of the same plan would
	// replay differently; sorted emission makes that escape a lint finding
	// instead of a flaky golden. Faults are scanned in array order so the
	// diagnostics themselves are deterministic.
	var diags []analysis.Diagnostic
	lastCrash := make(map[float64]int)
	for _, f := range p.Faults {
		if f.Kind != fault.DeviceCrash {
			continue
		}
		if prev, seen := lastCrash[f.At]; seen {
			switch {
			case f.Device == prev:
				diags = append(diags, diag(path, "fault plan %q: duplicate device-crash at t=%v on device %d", p.Name, f.At, f.Device))
			case f.Device < prev:
				diags = append(diags, diag(path, "fault plan %q: concurrent device-crash events at t=%v not sorted by device (%d after %d); emit same-instant crashes in device order for deterministic replay", p.Name, f.At, f.Device, prev))
			}
		}
		lastCrash[f.At] = f.Device
	}
	return diags
}

func checkChaos(path string, data []byte) []analysis.Diagnostic {
	if _, err := service.ParseChaos(data); err != nil {
		return []analysis.Diagnostic{diag(path, "malformed chaos plan: %v", err)}
	}
	return nil
}

func checkBench(path string, data []byte) []analysis.Diagnostic {
	if _, err := bench.ParseBaseline(data); err != nil {
		return []analysis.Diagnostic{diag(path, "malformed bench baseline: %v", err)}
	}
	return nil
}

func checkPlan(path string, data []byte) []analysis.Diagnostic {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var doc planDoc
	if err := dec.Decode(&doc); err != nil {
		return []analysis.Diagnostic{diag(path, "malformed plan document: %v", err)}
	}
	var diags []analysis.Diagnostic
	if doc.Blocks <= 0 {
		diags = append(diags, diag(path, "plan has non-positive block count %d", doc.Blocks))
	}
	if _, err := partition.New(doc.Bounds, doc.Blocks); err != nil {
		diags = append(diags, diag(path, "plan bounds invalid: %v", err))
	}
	if want := len(doc.Bounds) - 1; len(doc.StageDevices) != want {
		diags = append(diags, diag(path, "plan has %d stageDevices entries for %d stages", len(doc.StageDevices), want))
	}
	for i, d := range doc.StageDevices {
		if d <= 0 {
			diags = append(diags, diag(path, "plan stage %d has non-positive device count %d", i, d))
		}
	}
	if doc.NumSliced < 0 {
		diags = append(diags, diag(path, "plan has negative numSliced %d", doc.NumSliced))
	}
	return diags
}

func diag(path, format string, args ...any) analysis.Diagnostic {
	return analysis.Diagnostic{
		Pos:      token.Position{Filename: path, Line: 1},
		Analyzer: Name,
		Message:  fmt.Sprintf(format, args...),
	}
}
