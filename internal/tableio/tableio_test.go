package tableio

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		ID:      "t1",
		Title:   "Sample",
		Columns: []string{"A", "Long column", "C"},
	}
	t.AddRow("1", "x", "3.5")
	t.AddRowf(2, "yyyyyyyyyyyy", 4.25)
	t.Note("a caveat with %d parts", 2)
	return t
}

func TestRenderAligned(t *testing.T) {
	var sb strings.Builder
	if err := sample().Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "## t1 — Sample") {
		t.Error("missing header")
	}
	if !strings.Contains(out, "note: a caveat with 2 parts") {
		t.Error("missing note")
	}
	lines := strings.Split(out, "\n")
	// Header and separator line up.
	var header, sep string
	for i, l := range lines {
		if strings.HasPrefix(l, "A ") {
			header, sep = l, lines[i+1]
			break
		}
	}
	if header == "" || len(sep) < len("A  Long column  C")-2 {
		t.Errorf("header/separator misaligned:\n%s", out)
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	if err := sample().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want 3", len(lines))
	}
	if lines[0] != "A,Long column,C" {
		t.Errorf("CSV header %q", lines[0])
	}
	if lines[2] != "2,yyyyyyyyyyyy,4.25" {
		t.Errorf("CSV row %q", lines[2])
	}
}

func TestFormatters(t *testing.T) {
	if got := Ms(1.2345); got != "1234.5" {
		t.Errorf("Ms = %q", got)
	}
	if got := Speedup(1.2345); got != "1.23x" {
		t.Errorf("Speedup = %q", got)
	}
}
