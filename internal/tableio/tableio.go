// Package tableio renders experiment results as aligned text tables and CSV,
// the output format of the reproduction harness (cmd/experiments).
package tableio

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is one rendered experiment result (a paper table or figure series).
type Table struct {
	// ID is the experiment identifier, e.g. "table3" or "fig9".
	ID string
	// Title describes the experiment.
	Title string
	// Columns are the header labels.
	Columns []string
	// Rows hold pre-formatted cells; each row must match Columns in length.
	Rows [][]string
	// Notes are free-form caveats printed under the table.
	Notes []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row, applying fmt.Sprint to each value.
func (t *Table) AddRowf(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		cells[i] = fmt.Sprint(v)
	}
	t.Rows = append(t.Rows, cells)
}

// Note appends a caveat line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "## %s — %s\n\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	sb.WriteByte('\n')
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteCSV emits the table as CSV (header + rows; notes are omitted).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Ms formats a duration in seconds as milliseconds with one decimal.
func Ms(seconds float64) string { return fmt.Sprintf("%.1f", seconds*1e3) }

// Speedup formats a ratio as "1.23x".
func Speedup(r float64) string { return fmt.Sprintf("%.2fx", r) }
