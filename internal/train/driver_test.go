package train

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"autopipe/internal/config"
	"autopipe/internal/fault"
	"autopipe/internal/nn"
	"autopipe/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// driverCfg is a small but real configuration: a 2-layer GPT planned and
// trained across 3 devices. The cluster is derated so the micro-model's
// compute dominates launch overhead and link latency — on the real testbed
// constants a model this small would be pure overhead and compute faults
// would be invisible.
func driverCfg(steps int) DriverConfig {
	cl := config.DefaultCluster()
	cl.Device.FlopsPerSec = 1e9
	cl.Device.MemBandwidth = 1e9
	cl.Device.KernelOverhead = 1e-5
	cl.Network = config.Network{Bandwidth: 1e9, Latency: 1e-6}
	return DriverConfig{
		Model: config.Model{Name: "gpt-micro", Layers: 2, Hidden: 16, Heads: 2,
			FFNMult: 4, SeqLen: 8, Vocab: 17},
		NN:       nn.GPTConfig{Vocab: 17, MaxSeq: 8, Hidden: 16, Heads: 2, Layers: 2, FFNMult: 4, Seed: 7},
		Cluster:  cl,
		Depth:    3,
		Micro:    4,
		Batch:    4,
		Steps:    steps,
		LR:       2e-3,
		DataSeed: 3,
		Sanitize: true,
	}
}

func TestDriverCleanRun(t *testing.T) {
	rep, err := RunDriver(context.Background(), driverCfg(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Iters) != 6 || len(rep.Losses) != 6 {
		t.Fatalf("iters/losses = %d/%d, want 6/6", len(rep.Iters), len(rep.Losses))
	}
	if len(rep.Recoveries) != 0 || rep.Retries != 0 {
		t.Errorf("clean run healed something: %+v", rep.Recoveries)
	}
	if rep.FinalDepth != 3 {
		t.Errorf("final depth = %d", rep.FinalDepth)
	}
	if rep.Losses[5] >= rep.Losses[0] {
		t.Errorf("loss did not decrease: %v", rep.Losses)
	}
}

// TestDriverCrashRecoveryE2E is the end-to-end recovery pin: a permanent
// device crash mid-training must checkpoint, re-partition over the survivors
// at reduced depth, restore, and finish — with losses matching the unfaulted
// run, because synchronous pipeline semantics are partition-invariant and the
// checkpoint round trip must be exact.
func TestDriverCrashRecoveryE2E(t *testing.T) {
	clean, err := RunDriver(context.Background(), driverCfg(6))
	if err != nil {
		t.Fatal(err)
	}
	// Crash device 1 midway through the third iteration.
	at := clean.Iters[0] + clean.Iters[1] + clean.Iters[2]/2

	cfg := driverCfg(6)
	cfg.Obs = obs.NewRegistry()
	cfg.Faults = &fault.Plan{Name: "crash", Faults: []fault.Fault{
		{Kind: fault.DeviceCrash, At: at, Device: 1},
	}}
	rep, err := RunDriver(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Losses) != 6 {
		t.Fatalf("crashed run completed %d/6 iterations", len(rep.Losses))
	}
	if rep.FinalDepth != 2 {
		t.Errorf("final depth = %d, want 2 survivors", rep.FinalDepth)
	}
	for _, d := range rep.Devices {
		if d == 1 {
			t.Errorf("dead device still in pipeline: %v", rep.Devices)
		}
	}
	if len(rep.Recoveries) == 0 || rep.Recoveries[0].Kind != "device-crash" {
		t.Fatalf("recoveries = %+v", rep.Recoveries)
	}
	rec := rep.Recoveries[0]
	if rec.DepthBefore != 3 || rec.DepthAfter != 2 || rec.Downtime <= 0 {
		t.Errorf("recovery record = %+v", rec)
	}
	// Training semantics survive the crash: pre-crash losses are identical,
	// post-recovery losses match to numerical noise (the surviving plan may
	// slice differently, which only reorders float additions).
	for i := range clean.Losses {
		tol := 0.0
		if i+1 >= rec.Iter {
			tol = 1e-9
		}
		if diff := math.Abs(clean.Losses[i] - rep.Losses[i]); diff > tol {
			t.Errorf("iter %d: loss diverged by %g (clean %.12f, crashed %.12f)",
				i+1, diff, clean.Losses[i], rep.Losses[i])
		}
	}
	// Recovery latency and post-recovery throughput are reported through obs.
	snap := cfg.Obs.Snapshot()
	if snap.Counters["driver.recoveries"] < 1 {
		t.Error("driver.recoveries not counted")
	}
	if snap.Gauges["driver.recovery_latency_s"] <= 0 {
		t.Error("driver.recovery_latency_s not set")
	}
	if snap.Gauges["driver.post_recovery_throughput"] <= 0 {
		t.Error("driver.post_recovery_throughput not set")
	}
	if snap.Counters["fault.injected"] < 1 {
		t.Error("fault.injected not counted")
	}
}

// TestDriverTransientRetry: a count-mode message drop costs retries, not
// depth.
func TestDriverTransientRetry(t *testing.T) {
	cfg := driverCfg(3)
	cfg.Faults = &fault.Plan{Faults: []fault.Fault{
		{Kind: fault.MsgDrop, At: 0, From: 0, To: 1, Count: 2},
	}}
	rep, err := RunDriver(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retries != 2 {
		t.Errorf("retries = %d, want 2", rep.Retries)
	}
	if rep.FinalDepth != 3 || len(rep.Recoveries) != 0 {
		t.Errorf("transient fault escalated: depth %d, recoveries %+v", rep.FinalDepth, rep.Recoveries)
	}
}

// TestDriverRetriesExhausted: more drops than the retry budget is a typed
// failure.
func TestDriverRetriesExhausted(t *testing.T) {
	cfg := driverCfg(3)
	cfg.MaxRetries = 2
	cfg.Faults = &fault.Plan{Faults: []fault.Fault{
		{Kind: fault.MsgDrop, At: 0, From: 0, To: 1, Count: 100},
	}}
	_, err := RunDriver(context.Background(), cfg)
	if err == nil || !strings.Contains(err.Error(), "retries exhausted") {
		t.Fatalf("err = %v, want retries exhausted", err)
	}
}

// TestDriverStragglerReplan: a sustained slowdown triggers re-profiling and a
// live re-plan without losing depth or state.
func TestDriverStragglerReplan(t *testing.T) {
	cfg := driverCfg(8)
	cfg.Faults = &fault.Plan{Faults: []fault.Fault{
		{Kind: fault.Straggler, At: 0, Device: 0, Factor: 3},
	}}
	rep, err := RunDriver(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var straggler *Recovery
	for i := range rep.Recoveries {
		if rep.Recoveries[i].Kind == "straggler" {
			straggler = &rep.Recoveries[i]
			break
		}
	}
	if straggler == nil {
		t.Fatalf("no straggler recovery in %+v (log: %v)", rep.Recoveries, rep.Log)
	}
	if rep.FinalDepth != 3 {
		t.Errorf("live replan changed depth to %d", rep.FinalDepth)
	}
	if len(rep.Losses) != 8 {
		t.Errorf("completed %d/8 iterations", len(rep.Losses))
	}
}

// TestDriverOOMRecovery: an injected OOM replans at the same depth and the
// retry completes.
func TestDriverOOMRecovery(t *testing.T) {
	cfg := driverCfg(3)
	cfg.Faults = &fault.Plan{Faults: []fault.Fault{
		{Kind: fault.DeviceOOM, At: 0, Device: 0},
	}}
	rep, err := RunDriver(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Recoveries) != 1 || rep.Recoveries[0].Kind != "oom" {
		t.Fatalf("recoveries = %+v", rep.Recoveries)
	}
	if rep.FinalDepth != 3 || len(rep.Losses) != 3 {
		t.Errorf("depth %d, %d losses", rep.FinalDepth, len(rep.Losses))
	}
}

// TestDriverLinkDownFailsOver: a permanently dead link evicts the stranded
// downstream device via the same checkpoint → replan → resume path.
func TestDriverLinkDownFailsOver(t *testing.T) {
	cfg := driverCfg(4)
	cfg.Faults = &fault.Plan{Faults: []fault.Fault{
		{Kind: fault.LinkFlap, At: 0, From: 1, To: 2}, // permanent
	}}
	rep, err := RunDriver(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Recoveries) == 0 || rep.Recoveries[0].Kind != "link-down" {
		t.Fatalf("recoveries = %+v", rep.Recoveries)
	}
	if rep.FinalDepth != 2 {
		t.Errorf("final depth = %d, want 2 (downstream endpoint evicted)", rep.FinalDepth)
	}
	for _, d := range rep.Devices {
		if d == 2 {
			t.Errorf("stranded device 2 still in pipeline: %v", rep.Devices)
		}
	}
}

// goldenTrajectory renders the determinism-pinned view of a report: the event
// log, replan decisions, and iteration times — everything but the losses
// (whose transcendental math is excluded from cross-platform golden files).
func goldenTrajectory(rep *Report) string {
	var sb strings.Builder
	for _, line := range rep.Log {
		fmt.Fprintf(&sb, "%s\n", line)
	}
	for i, it := range rep.Iters {
		fmt.Fprintf(&sb, "iter %d: time %.9gs\n", i+1, it)
	}
	fmt.Fprintf(&sb, "clock %.9gs retries %d replans %d depth %d devices %v bounds %v\n",
		rep.Clock, rep.Retries, rep.Replans, rep.FinalDepth, rep.Devices, rep.Bounds)
	return sb.String()
}

func faultedGoldenCfg() DriverConfig {
	cfg := driverCfg(8)
	cfg.Faults = &fault.Plan{
		Name: "golden", Seed: 13,
		Faults: []fault.Fault{
			{Kind: fault.MsgDrop, At: 0, From: 0, To: 1, Count: 1},
			{Kind: fault.Straggler, At: 0.08, Duration: 0.3, Device: 2, Factor: 2.5},
			{Kind: fault.DeviceCrash, At: 0.45, Device: 1},
		},
	}
	return cfg
}

// TestDriverGoldenTrajectory: the same fault plan and seed produce a
// byte-identical recovery trajectory, pinned against a checked-in golden
// file. Regenerate with `go test ./internal/train -run Golden -update`.
func TestDriverGoldenTrajectory(t *testing.T) {
	rep, err := RunDriver(context.Background(), faultedGoldenCfg())
	if err != nil {
		t.Fatal(err)
	}
	got := goldenTrajectory(rep)
	path := filepath.Join("testdata", "driver_recovery.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("recovery trajectory diverged from golden file.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestDriverDeterministicReplay: two in-process runs of the same faulted
// config agree on everything, including the losses.
func TestDriverDeterministicReplay(t *testing.T) {
	a, err := RunDriver(context.Background(), faultedGoldenCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDriver(context.Background(), faultedGoldenCfg())
	if err != nil {
		t.Fatal(err)
	}
	if goldenTrajectory(a) != goldenTrajectory(b) {
		t.Fatal("trajectories diverged between identical runs")
	}
	for i := range a.Losses {
		if a.Losses[i] != b.Losses[i] {
			t.Fatalf("loss %d diverged: %v vs %v", i, a.Losses[i], b.Losses[i])
		}
	}
}

// TestCheckpointRoundTrip: Snapshot/Restore is exact across a re-cut, and
// restores optimizer momentum.
func TestCheckpointRoundTrip(t *testing.T) {
	cfg := nn.TinyGPT()
	mods := nn.BuildGPT(cfg)
	opt := NewAdam(1e-3)
	ds := NewDataset(cfg.Vocab, cfg.MaxSeq, 1)
	micros := ds.Micros(2, 4)
	scale := 1.0 / float64(2*4*cfg.MaxSeq)

	nn.ZeroGrads(nn.CollectParams(mods))
	SerialStep(mods, micros, scale)
	opt.Step(nn.CollectParams(mods))
	ck := Snapshot(1, nn.CollectParams(mods), opt)
	if ck.SizeBytes() <= 0 {
		t.Fatal("checkpoint is empty")
	}

	// Continue the original two more steps.
	for i := 0; i < 2; i++ {
		nn.ZeroGrads(nn.CollectParams(mods))
		SerialStep(mods, ds.Micros(2, 4), scale)
		opt.Step(nn.CollectParams(mods))
	}
	ref := nn.CollectParams(mods)

	// Restore into a fresh model and replay the same two steps with a replayed
	// data stream.
	mods2 := nn.BuildGPT(nn.GPTConfig{Vocab: cfg.Vocab, MaxSeq: cfg.MaxSeq, Hidden: cfg.Hidden,
		Heads: cfg.Heads, Layers: cfg.Layers, FFNMult: cfg.FFNMult, Seed: 999})
	opt2 := NewAdam(1e-3)
	if err := ck.Restore(nn.CollectParams(mods2), opt2); err != nil {
		t.Fatal(err)
	}
	ds2 := NewDataset(cfg.Vocab, cfg.MaxSeq, 1)
	ds2.Micros(2, 4) // burn the first step's batches
	for i := 0; i < 2; i++ {
		nn.ZeroGrads(nn.CollectParams(mods2))
		SerialStep(mods2, ds2.Micros(2, 4), scale)
		opt2.Step(nn.CollectParams(mods2))
	}
	got := nn.CollectParams(mods2)
	if len(got) != len(ref) {
		t.Fatalf("param counts differ: %d vs %d", len(got), len(ref))
	}
	for i := range ref {
		for j := range ref[i].W.Data {
			if ref[i].W.Data[j] != got[i].W.Data[j] {
				t.Fatalf("param %s[%d] diverged after restore+replay", ref[i].Name, j)
			}
		}
	}
}

// TestCheckpointRestoreRejectsMismatch: a checkpoint from a different
// architecture is refused, not silently truncated.
func TestCheckpointRestoreRejectsMismatch(t *testing.T) {
	a := nn.BuildGPT(nn.TinyGPT())
	ck := Snapshot(0, nn.CollectParams(a), nil)
	big := nn.TinyGPT()
	big.Hidden *= 2
	b := nn.BuildGPT(big)
	if err := ck.Restore(nn.CollectParams(b), nil); err == nil {
		t.Fatal("mismatched restore accepted")
	}
}

func TestDriverConfigValidation(t *testing.T) {
	cfg := driverCfg(3)
	cfg.Depth = 0
	if _, err := RunDriver(context.Background(), cfg); err == nil {
		t.Error("zero depth accepted")
	}
	cfg = driverCfg(3)
	cfg.Faults = &fault.Plan{Faults: []fault.Fault{{Kind: "meteor"}}}
	if _, err := RunDriver(context.Background(), cfg); err == nil {
		t.Error("invalid fault plan accepted")
	}
	cfg = driverCfg(3)
	cfg.Depth = 100
	if _, err := RunDriver(context.Background(), cfg); err == nil {
		t.Error("depth beyond block count accepted")
	}
}
