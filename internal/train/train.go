package train

import (
	"fmt"

	"autopipe/internal/errdefs"
	"autopipe/internal/nn"
	"autopipe/internal/tensor"
)

// Batch is one micro-batch of token ids: Inputs and Targets are [B,S]
// integer tensors (targets are the next-token labels).
type Batch struct {
	Inputs, Targets *tensor.Tensor
}

// Split halves the micro-batch along the batch axis (for sliced warmup
// forwards). The batch size must be even.
func (b Batch) Split() (Batch, Batch, error) {
	if b.Inputs.Shape[0]%2 != 0 {
		return Batch{}, Batch{}, fmt.Errorf("%w: train: cannot slice micro-batch of odd size %d", errdefs.ErrBadConfig, b.Inputs.Shape[0])
	}
	half := b.Inputs.Shape[0] / 2
	ia, ib := b.Inputs.SplitRows(half)
	ta, tb := b.Targets.SplitRows(half)
	return Batch{ia, ta}, Batch{ib, tb}, nil
}

// SerialStep runs one gradient-accumulation iteration on a single "device":
// forward+backward for every micro-batch, gradients accumulated in place.
// scale multiplies the summed cross-entropy (1/(micros*B*S) gives the mean
// loss). It is the reference the pipeline runtime is checked against.
func SerialStep(mods []nn.Module, micros []Batch, scale float64) (loss float64) {
	for _, mb := range micros {
		logits, ctxs := nn.ForwardAll(mods, mb.Inputs)
		l, dLogits := nn.CrossEntropy(logits, mb.Targets)
		loss += l * scale
		dLogits.ScaleInPlace(scale)
		nn.BackwardAll(mods, ctxs, dLogits)
	}
	return loss
}

// Loss computes the mean cross-entropy of the model on the micro-batches
// without touching gradients.
func Loss(mods []nn.Module, micros []Batch) float64 {
	var loss float64
	var tokens int
	for _, mb := range micros {
		logits, _ := nn.ForwardAll(mods, mb.Inputs)
		l, _ := nn.CrossEntropy(logits, mb.Targets)
		loss += l
		tokens += mb.Targets.Size()
	}
	return loss / float64(tokens)
}

// Dataset generates a deterministic synthetic corpus: sequences from a fixed
// random Markov table, so next-token prediction is learnable by a tiny GPT.
type Dataset struct {
	vocab, seq int
	table      []int
	rng        *tensor.RNG
}

// NewDataset builds a corpus generator.
func NewDataset(vocab, seq int, seed uint64) *Dataset {
	rng := tensor.NewRNG(seed)
	table := make([]int, vocab)
	for i := range table {
		table[i] = rng.Intn(vocab)
	}
	return &Dataset{vocab: vocab, seq: seq, table: table, rng: rng}
}

// Batch samples a [batch, seq] pair of inputs and next-token targets.
func (d *Dataset) Batch(batch int) Batch {
	in := tensor.New(batch, d.seq)
	tg := tensor.New(batch, d.seq)
	for b := 0; b < batch; b++ {
		tok := d.rng.Intn(d.vocab)
		for s := 0; s < d.seq; s++ {
			in.Data[b*d.seq+s] = float64(tok)
			// Mostly-deterministic transitions with occasional noise keep
			// the task learnable but not trivial.
			next := d.table[tok]
			if d.rng.Float64() < 0.05 {
				next = d.rng.Intn(d.vocab)
			}
			tg.Data[b*d.seq+s] = float64(next)
			tok = next
		}
	}
	return Batch{Inputs: in, Targets: tg}
}

// Micros samples m micro-batches.
func (d *Dataset) Micros(m, batch int) []Batch {
	out := make([]Batch, m)
	for i := range out {
		out[i] = d.Batch(batch)
	}
	return out
}
