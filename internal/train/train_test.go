package train

import (
	"math"
	"testing"

	"autopipe/internal/nn"
	"autopipe/internal/obs"
	"autopipe/internal/tensor"
)

func tinyMicros(t *testing.T, cfg nn.GPTConfig, m, batch int, seed uint64) []Batch {
	t.Helper()
	ds := NewDataset(cfg.Vocab, cfg.MaxSeq-2, seed)
	return ds.Micros(m, batch)
}

// cloneGrads snapshots accumulated gradients keyed by parameter name.
func cloneGrads(params []*nn.Param) map[string][]float64 {
	out := make(map[string][]float64, len(params))
	for _, p := range params {
		out[p.Name] = append([]float64(nil), p.Grad.Data...)
	}
	return out
}

func maxGradDiff(a, b map[string][]float64) (string, float64) {
	var worstName string
	var worst float64
	for name, av := range a {
		bv := b[name]
		for i := range av {
			if d := math.Abs(av[i] - bv[i]); d > worst {
				worst = d
				worstName = name
			}
		}
	}
	return worstName, worst
}

// TestPipelineMatchesSerial is the core semantic claim of synchronous
// pipeline parallelism (paper §II-B): distributing the model across stages
// changes nothing about the computation. Losses and every parameter
// gradient must match the serial reference.
func TestPipelineMatchesSerial(t *testing.T) {
	cfg := nn.TinyGPT()
	m, batch := 6, 4
	scale := 1.0 / float64(m*batch*(cfg.MaxSeq-2))

	for _, stages := range [][]int{
		{0, 6},          // single stage
		{0, 3, 6},       // 2 stages
		{0, 2, 4, 6},    // 3 stages, sub-layer cuts
		{0, 1, 3, 5, 6}, // 4 stages: embedding alone, head alone
	} {
		serialMods := nn.BuildGPT(cfg)
		pipeMods := nn.BuildGPT(cfg) // identical init (same seed)
		micros := tinyMicros(t, cfg, m, batch, 99)

		serialLoss := SerialStep(serialMods, micros, scale)

		pipe, err := NewPipeline(pipeMods, stages)
		if err != nil {
			t.Fatal(err)
		}
		pipeLoss, err := pipe.Step(micros, 0, scale)
		if err != nil {
			t.Fatalf("stages %v: %v", stages, err)
		}
		if math.Abs(serialLoss-pipeLoss) > 1e-12*(1+math.Abs(serialLoss)) {
			t.Errorf("stages %v: pipeline loss %.15g != serial %.15g", stages, pipeLoss, serialLoss)
		}
		name, diff := maxGradDiff(cloneGrads(nn.CollectParams(serialMods)), cloneGrads(pipe.AllParams()))
		if diff > 1e-12 {
			t.Errorf("stages %v: gradient mismatch %g at %s", stages, diff, name)
		}
	}
}

// TestSlicedPipelineMatchesSerial verifies the Slicer's semantic claim:
// splitting warmup micro-batches in half changes scheduling, not training.
func TestSlicedPipelineMatchesSerial(t *testing.T) {
	cfg := nn.TinyGPT()
	m, batch := 6, 4
	scale := 1.0 / float64(m*batch*(cfg.MaxSeq-2))
	micros := tinyMicros(t, cfg, m, batch, 4242)

	serialMods := nn.BuildGPT(cfg)
	serialLoss := SerialStep(serialMods, micros, scale)
	want := cloneGrads(nn.CollectParams(serialMods))

	for _, sliced := range []int{1, 2, 3, m} {
		pipeMods := nn.BuildGPT(cfg)
		pipe, err := NewPipeline(pipeMods, []int{0, 2, 4, 6})
		if err != nil {
			t.Fatal(err)
		}
		loss, err := pipe.Step(micros, sliced, scale)
		if err != nil {
			t.Fatalf("sliced=%d: %v", sliced, err)
		}
		if math.Abs(loss-serialLoss) > 1e-9 {
			t.Errorf("sliced=%d: loss %.15g != serial %.15g", sliced, loss, serialLoss)
		}
		// Halved batches sum gradients in a different order; tolerance
		// covers float reassociation only.
		name, diff := maxGradDiff(want, cloneGrads(pipe.AllParams()))
		if diff > 1e-9 {
			t.Errorf("sliced=%d: gradient mismatch %g at %s", sliced, diff, name)
		}
	}
}

// TestSlicedRejectsOddBatch: micro-batch slicing needs an even batch size.
func TestSlicedRejectsOddBatch(t *testing.T) {
	cfg := nn.TinyGPT()
	pipe, err := NewPipeline(nn.BuildGPT(cfg), []int{0, 3, 6})
	if err != nil {
		t.Fatal(err)
	}
	micros := tinyMicros(t, cfg, 4, 3, 5)
	if _, err := pipe.Step(micros, 1, 1); err == nil {
		t.Error("want error for slicing an odd micro-batch")
	}
}

// TestTrainingConverges: the pipeline actually learns the synthetic task —
// the loss after a few Adam steps must drop well below the initial value.
func TestTrainingConverges(t *testing.T) {
	cfg := nn.TinyGPT()
	mods := nn.BuildGPT(cfg)
	pipe, err := NewPipeline(mods, []int{0, 2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	ds := NewDataset(cfg.Vocab, cfg.MaxSeq-2, 11)
	opt := NewAdam(3e-3)
	params := pipe.AllParams()

	m, batch := 4, 4
	scale := 1.0 / float64(m*batch*(cfg.MaxSeq-2))
	first, last := 0.0, 0.0
	for step := 0; step < 30; step++ {
		micros := ds.Micros(m, batch)
		nn.ZeroGrads(params)
		loss, err := pipe.Step(micros, 1, scale)
		if err != nil {
			t.Fatal(err)
		}
		if step == 0 {
			first = loss
		}
		last = loss
		opt.Step(params)
	}
	if last > first*0.7 {
		t.Errorf("loss did not converge: first %.4f, last %.4f", first, last)
	}
}

// TestPipelineTrainingEqualsSerialTraining runs several optimizer steps on
// both runtimes and checks the weights stay identical.
func TestPipelineTrainingEqualsSerialTraining(t *testing.T) {
	cfg := nn.TinyGPT()
	serialMods := nn.BuildGPT(cfg)
	pipeMods := nn.BuildGPT(cfg)
	pipe, err := NewPipeline(pipeMods, []int{0, 3, 6})
	if err != nil {
		t.Fatal(err)
	}
	serialParams := nn.CollectParams(serialMods)
	pipeParams := pipe.AllParams()
	serialOpt := SGD{LR: 0.05}
	pipeOpt := SGD{LR: 0.05}

	dsA := NewDataset(cfg.Vocab, cfg.MaxSeq-2, 33)
	dsB := NewDataset(cfg.Vocab, cfg.MaxSeq-2, 33)
	m, batch := 4, 2
	scale := 1.0 / float64(m*batch*(cfg.MaxSeq-2))
	for step := 0; step < 5; step++ {
		microsA := dsA.Micros(m, batch)
		microsB := dsB.Micros(m, batch)
		nn.ZeroGrads(serialParams)
		SerialStep(serialMods, microsA, scale)
		serialOpt.Step(serialParams)
		nn.ZeroGrads(pipeParams)
		if _, err := pipe.Step(microsB, 0, scale); err != nil {
			t.Fatal(err)
		}
		pipeOpt.Step(pipeParams)
	}
	for i, p := range serialParams {
		q := pipeParams[i]
		if d := tensor.MaxAbsDiff(p.W, q.W); d > 1e-12 {
			t.Errorf("weights diverged at %s: %g", p.Name, d)
		}
	}
}

// TestAdamMatchesReference checks a single Adam update against hand-computed
// values.
func TestAdamMatchesReference(t *testing.T) {
	w := tensor.FromSlice([]float64{1, 2}, 2)
	p := &nn.Param{Name: "w", W: w, Grad: tensor.FromSlice([]float64{0.5, -0.25}, 2)}
	opt := NewAdam(0.1)
	opt.Step([]*nn.Param{p})
	// After one step Adam moves each weight by ~lr*sign(grad).
	wantDir := []float64{-1, 1}
	for i, v := range w.Data {
		moved := v - []float64{1, 2}[i]
		if math.Signbit(moved) != math.Signbit(wantDir[i]*math.Abs(moved)) || math.Abs(math.Abs(moved)-0.1) > 1e-6 {
			t.Errorf("weight %d moved by %g, want ~%g", i, moved, wantDir[i]*0.1)
		}
	}
}

// TestDatasetDeterministic: identical seeds give identical batches.
func TestDatasetDeterministic(t *testing.T) {
	a := NewDataset(13, 6, 5).Batch(3)
	b := NewDataset(13, 6, 5).Batch(3)
	if tensor.MaxAbsDiff(a.Inputs, b.Inputs) != 0 || tensor.MaxAbsDiff(a.Targets, b.Targets) != 0 {
		t.Error("same seed produced different batches")
	}
}

func TestNewPipelineRejectsBadBounds(t *testing.T) {
	mods := nn.BuildGPT(nn.TinyGPT())
	for _, bounds := range [][]int{{}, {0}, {1, 6}, {0, 5}, {0, 3, 3, 6}, {0, 6, 3}} {
		if _, err := NewPipeline(mods, bounds); err == nil {
			t.Errorf("bounds %v accepted", bounds)
		}
	}
}

// TestCheckpointedPipelineMatchesSerial ties activation checkpointing (paper
// §II-C) into the pipeline: wrapping every module with recompute-on-backward
// changes memory and timing, never the gradients.
func TestCheckpointedPipelineMatchesSerial(t *testing.T) {
	cfg := nn.TinyGPT()
	m, batch := 4, 4
	scale := 1.0 / float64(m*batch*(cfg.MaxSeq-2))
	micros := tinyMicros(t, cfg, m, batch, 77)

	serialMods := nn.BuildGPT(cfg)
	serialLoss := SerialStep(serialMods, micros, scale)
	want := cloneGrads(nn.CollectParams(serialMods))

	pipe, err := NewPipeline(nn.CheckpointAll(nn.BuildGPT(cfg)), []int{0, 3, 6})
	if err != nil {
		t.Fatal(err)
	}
	loss, err := pipe.Step(micros, 1, scale)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss-serialLoss) > 1e-12*(1+math.Abs(serialLoss)) {
		t.Errorf("checkpointed pipeline loss %.15g != serial %.15g", loss, serialLoss)
	}
	// Checkpointed backward recomputes the forward deterministically, so
	// per-micro-batch gradients are bitwise identical; only the sliced
	// micro-batch reassociates sums.
	name, diff := maxGradDiff(want, cloneGrads(pipe.AllParams()))
	if diff > 1e-9 {
		t.Errorf("gradient mismatch %g at %s", diff, name)
	}
}

// TestPipelineObs: a pipeline with an obs registry attached records the step
// span, op/micro counters, and the loss gauge.
func TestPipelineObs(t *testing.T) {
	cfg := nn.TinyGPT()
	m, batch := 4, 4
	scale := 1.0 / float64(m*batch*(cfg.MaxSeq-2))
	micros := tinyMicros(t, cfg, m, batch, 7)

	pipe, err := NewPipeline(nn.BuildGPT(cfg), []int{0, 3, 6})
	if err != nil {
		t.Fatal(err)
	}
	pipe.Obs = obs.NewRegistry()
	loss, err := pipe.Step(micros, 1, scale)
	if err != nil {
		t.Fatal(err)
	}
	snap := pipe.Obs.Snapshot()
	if got := snap.Counters["train.steps"]; got != 1 {
		t.Errorf("train.steps = %g, want 1", got)
	}
	if got := snap.Counters["train.micros"]; got != float64(m) {
		t.Errorf("train.micros = %g, want %d", got, m)
	}
	// 2 stages x (m + numSliced extra forward halves) forwards + m backwards.
	wantOps := float64(2 * (2*m + 1))
	if got := snap.Counters["train.ops"]; got != wantOps {
		t.Errorf("train.ops = %g, want %g", got, wantOps)
	}
	if got := snap.Gauges["train.loss"]; got != loss {
		t.Errorf("train.loss gauge = %g, want %g", got, loss)
	}
	if st := snap.Histograms["train.step.seconds"]; st.Count != 1 {
		t.Errorf("train.step.seconds count = %d, want 1", st.Count)
	}
}
