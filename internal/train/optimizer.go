// Package train provides the training runtimes of the miniature framework:
// a serial reference trainer and a goroutine-based synchronous pipeline
// runtime that executes the very schedules AutoPipe plans (1F1B and the
// sliced warmup), plus the optimizers. Its purpose is to demonstrate, with
// real numbers, the paper's semantic claims: synchronous pipeline
// parallelism computes the same gradients as serial execution, micro-batch
// slicing changes nothing but timing, and sub-layer stage cuts preserve the
// model function.
package train

import (
	"fmt"
	"math"

	"autopipe/internal/errdefs"
	"autopipe/internal/nn"
	"autopipe/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	Step(params []*nn.Param)
}

// SGD is plain stochastic gradient descent.
type SGD struct {
	LR float64
}

// Step implements Optimizer.
func (o SGD) Step(params []*nn.Param) {
	for _, p := range params {
		for i := range p.W.Data {
			p.W.Data[i] -= o.LR * p.Grad.Data[i]
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba), the paper's parameter-update
// phase.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t int
	m map[*nn.Param]*tensor.Tensor
	v map[*nn.Param]*tensor.Tensor
}

// NewAdam builds an Adam optimizer with conventional defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: map[*nn.Param]*tensor.Tensor{}, v: map[*nn.Param]*tensor.Tensor{}}
}

// Moments exports the optimizer state for checkpointing: the bias-correction
// step count and, per parameter in params order, deep copies of the first and
// second moment tensors (nil entries for parameters the optimizer has not
// stepped yet).
func (a *Adam) Moments(params []*nn.Param) (t int, m, v []*tensor.Tensor) {
	m = make([]*tensor.Tensor, len(params))
	v = make([]*tensor.Tensor, len(params))
	for i, p := range params {
		if mt, ok := a.m[p]; ok {
			m[i] = mt.Clone()
			v[i] = a.v[p].Clone()
		}
	}
	return a.t, m, v
}

// SetMoments restores state captured by Moments onto params, matched by
// position — the restore half of a checkpoint. Parameters with a nil entry
// start cold, exactly as they were at snapshot time.
func (a *Adam) SetMoments(params []*nn.Param, t int, m, v []*tensor.Tensor) error {
	if len(m) != len(params) || len(v) != len(params) {
		return fmt.Errorf("%w: train: moment count %d/%d does not match %d params", errdefs.ErrBadConfig, len(m), len(v), len(params))
	}
	a.t = t
	a.m = map[*nn.Param]*tensor.Tensor{}
	a.v = map[*nn.Param]*tensor.Tensor{}
	for i, p := range params {
		if m[i] == nil {
			continue
		}
		if m[i].Size() != p.W.Size() || v[i] == nil || v[i].Size() != p.W.Size() {
			return fmt.Errorf("%w: train: moment %d shape does not match param %s", errdefs.ErrBadConfig, i, p.Name)
		}
		a.m[p] = m[i].Clone()
		a.v[p] = v[i].Clone()
	}
	return nil
}

// Step implements Optimizer.
func (a *Adam) Step(params []*nn.Param) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = tensor.New(p.W.Shape...)
			a.m[p] = m
			a.v[p] = tensor.New(p.W.Shape...)
		}
		v := a.v[p]
		for i, g := range p.Grad.Data {
			m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*g
			v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*g*g
			mh := m.Data[i] / c1
			vh := v.Data[i] / c2
			p.W.Data[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
}
