package train

import (
	"errors"
	"fmt"
	"sync"

	"autopipe/internal/errdefs"
	"autopipe/internal/nn"
	"autopipe/internal/obs"
	"autopipe/internal/schedule"
	"autopipe/internal/tensor"
)

// Pipeline is a synchronous pipeline-parallel runtime: each stage owns a
// contiguous slice of the model's module array (a sub-layer granularity cut,
// exactly like a planner partition) and runs as its own goroutine,
// exchanging activations and gradients over channels. The execution order on
// every stage comes from the same schedule builder the timing executor uses,
// so what is trained here is literally the schedule AutoPipe plans.
type Pipeline struct {
	Bounds []int
	Stages [][]nn.Module
	// Obs, when set, receives per-step training telemetry: a "train.step"
	// span, step/micro-batch/op counters, and the latest scaled loss as a
	// gauge. The registry is safe for the concurrent stage goroutines.
	Obs *obs.Registry
}

// NewPipeline cuts mods at bounds (len = stages+1, spanning the module
// array).
func NewPipeline(mods []nn.Module, bounds []int) (*Pipeline, error) {
	if len(bounds) < 2 || bounds[0] != 0 || bounds[len(bounds)-1] != len(mods) {
		return nil, fmt.Errorf("%w: train: bounds %v must span [0,%d]", errdefs.ErrBadConfig, bounds, len(mods))
	}
	p := &Pipeline{Bounds: append([]int(nil), bounds...)}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("%w: train: empty stage at bound %d: %v", errdefs.ErrBadConfig, i, bounds)
		}
		p.Stages = append(p.Stages, mods[bounds[i-1]:bounds[i]])
	}
	return p, nil
}

// Params returns the parameters of one stage.
func (p *Pipeline) Params(stage int) []*nn.Param { return nn.CollectParams(p.Stages[stage]) }

// AllParams returns every parameter across stages.
func (p *Pipeline) AllParams() []*nn.Param {
	var ps []*nn.Param
	for i := range p.Stages {
		ps = append(ps, p.Params(i)...)
	}
	return ps
}

type pipeMsg struct {
	micro, half int
	x           *tensor.Tensor
}

type microState struct {
	ctxs   map[int][]nn.Ctx       // half (-1 full, 0, 1) -> per-module contexts
	logits map[int]*tensor.Tensor // last stage only
	labels map[int]*tensor.Tensor // last stage only
}

// Step runs one training iteration: every micro-batch flows through the
// pipeline under the 1F1B schedule (with the first numSliced micro-batch
// forwards split in half, AutoPipe's sliced warmup), cross-entropy gradients
// scaled by scale accumulate into each stage's parameters, and the summed
// scaled loss is returned. Semantically this matches SerialStep over the
// same micro-batches; the tests assert it.
func (p *Pipeline) Step(micros []Batch, numSliced int, scale float64) (float64, error) {
	nStages := len(p.Stages)
	m := len(micros)
	if m == 0 {
		return 0, fmt.Errorf("%w: train: no micro-batches", errdefs.ErrBadConfig)
	}
	var (
		sched *schedule.Schedule
		err   error
	)
	if numSliced > 0 {
		sched, err = schedule.Sliced(nStages, m, numSliced)
	} else {
		sched, err = schedule.OneFOneB(nStages, m)
	}
	if err != nil {
		return 0, err
	}
	var span *obs.Span
	if p.Obs != nil {
		span = p.Obs.StartSpan("train.step")
	}

	// Channels are buffered to the full op count so sends never block;
	// ordering correctness is asserted on receive. A failing stage closes
	// abort so its neighbors' receives unblock instead of deadlocking.
	fwd := make([]chan pipeMsg, nStages-1)
	bwd := make([]chan pipeMsg, nStages-1)
	for i := range fwd {
		fwd[i] = make(chan pipeMsg, 2*m+2)
		bwd[i] = make(chan pipeMsg, 2*m+2)
	}
	errs := make(chan error, nStages)
	lossCh := make(chan float64, 1)
	abort := make(chan struct{})
	var abortOnce sync.Once
	var wg sync.WaitGroup

	for s := 0; s < nStages; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			if err := p.runStage(s, sched, micros, scale, fwd, bwd, lossCh, abort); err != nil {
				errs <- fmt.Errorf("train: stage %d: %w", s, err)
				abortOnce.Do(func() { close(abort) })
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	var firstErr error
	for err := range errs {
		if firstErr == nil || errors.Is(firstErr, errPipelineAborted) {
			firstErr = err
		}
	}
	if firstErr != nil {
		return 0, firstErr
	}
	var loss float64
	if nStages == 1 {
		loss = <-lossCh
	} else {
		select {
		case loss = <-lossCh:
		default:
			return 0, fmt.Errorf("%w: train: last stage produced no loss", errdefs.ErrInternal)
		}
	}
	if p.Obs != nil {
		span.End()
		p.Obs.Counter("train.steps").Inc()
		p.Obs.Counter("train.micros").Add(float64(m))
		ops := 0
		for _, stage := range sched.Ops {
			ops += len(stage)
		}
		p.Obs.Counter("train.ops").Add(float64(ops))
		p.Obs.Gauge("train.loss").Set(loss)
	}
	return loss, nil
}

// errPipelineAborted marks a stage unblocked by a peer's failure; the peer's
// own error is the one reported.
var errPipelineAborted = errors.New("aborted by peer stage failure")

func (p *Pipeline) runStage(s int, sched *schedule.Schedule, micros []Batch, scale float64,
	fwd, bwd []chan pipeMsg, lossCh chan<- float64, abort <-chan struct{}) error {

	nStages := len(p.Stages)
	mods := p.Stages[s]
	states := make(map[int]*microState)
	state := func(µ int) *microState {
		st, ok := states[µ]
		if !ok {
			st = &microState{ctxs: map[int][]nn.Ctx{}, logits: map[int]*tensor.Tensor{}, labels: map[int]*tensor.Tensor{}}
			states[µ] = st
		}
		return st
	}
	var loss float64

	recv := func(ch chan pipeMsg, micro, half int) (*tensor.Tensor, error) {
		select {
		case msg := <-ch:
			if msg.micro != micro || msg.half != half {
				return nil, fmt.Errorf("%w: out-of-order message: got (µ%d,h%d), want (µ%d,h%d)", errdefs.ErrInternal, msg.micro, msg.half, micro, half)
			}
			return msg.x, nil
		case <-abort:
			return nil, errPipelineAborted
		}
	}

	for _, op := range sched.Ops[s] {
		switch op.Kind {
		case schedule.Fwd:
			var x *tensor.Tensor
			st := state(op.Micro)
			if s == 0 {
				mb := micros[op.Micro]
				if op.Half >= 0 {
					a, b, err := mb.Split()
					if err != nil {
						return err
					}
					halves := [2]Batch{a, b}
					mb = halves[op.Half]
				}
				x = mb.Inputs
			} else {
				var err error
				if x, err = recv(fwd[s-1], op.Micro, op.Half); err != nil {
					return err
				}
			}
			y, ctxs := nn.ForwardAll(mods, x)
			st.ctxs[op.Half] = ctxs
			if s == nStages-1 {
				// Hold the logits and labels for the backward op's loss.
				tg := micros[op.Micro].Targets
				if op.Half >= 0 {
					a, b, err := micros[op.Micro].Split()
					if err != nil {
						return err
					}
					halves := [2]Batch{a, b}
					tg = halves[op.Half].Targets
				}
				st.logits[op.Half] = y
				st.labels[op.Half] = tg
			} else {
				fwd[s] <- pipeMsg{micro: op.Micro, half: op.Half, x: y}
			}

		case schedule.Bwd:
			st := state(op.Micro)
			_, sliced := st.ctxs[0]
			halves := []int{-1}
			if sliced {
				halves = []int{0, 1}
			}
			var dyFull *tensor.Tensor
			if s != nStages-1 {
				var err error
				if dyFull, err = recv(bwd[s], op.Micro, -1); err != nil {
					return err
				}
			}
			var dxParts []*tensor.Tensor
			for _, h := range halves {
				var dy *tensor.Tensor
				if s == nStages-1 {
					l, dLogits := nn.CrossEntropy(st.logits[h], st.labels[h])
					loss += l * scale
					dLogits.ScaleInPlace(scale)
					dy = dLogits
				} else if sliced {
					half := dyFull.Shape[0] / 2
					a, b := dyFull.SplitRows(half)
					parts := [2]*tensor.Tensor{a, b}
					dy = parts[h].Clone()
				} else {
					dy = dyFull
				}
				dx := nn.BackwardAll(mods, st.ctxs[h], dy)
				if dx != nil {
					dxParts = append(dxParts, dx)
				}
			}
			delete(states, op.Micro)
			if s > 0 {
				var dx *tensor.Tensor
				switch len(dxParts) {
				case 1:
					dx = dxParts[0]
				case 2:
					dx = tensor.ConcatRows(dxParts...)
				default:
					return fmt.Errorf("%w: micro %d produced no input gradient", errdefs.ErrInternal, op.Micro)
				}
				bwd[s-1] <- pipeMsg{micro: op.Micro, half: -1, x: dx}
			}
		}
	}
	if s == nStages-1 {
		lossCh <- loss
	}
	return nil
}
