package train

import (
	"context"
	"errors"
	"fmt"
	"math"

	"autopipe/internal/config"
	"autopipe/internal/core"
	"autopipe/internal/cost"
	"autopipe/internal/errdefs"
	"autopipe/internal/exec"
	"autopipe/internal/fault"
	"autopipe/internal/model"
	"autopipe/internal/nn"
	"autopipe/internal/obs"
	"autopipe/internal/partition"
	"autopipe/internal/schedule"
	"autopipe/internal/sim"
	"autopipe/internal/slicer"
)

// This file is the self-healing training driver: it couples the real
// pipelined trainer (Pipeline.Step on actual tensors) with the discrete-event
// timing executor under fault injection, and closes the loop
// detect → checkpoint → replan → resume:
//
//   - transient message drops retry the iteration with capped exponential
//     backoff (the injector consumes count-mode drops, so retries converge);
//   - sustained stragglers and degraded links show up as measured iteration
//     times deviating from the plan's prediction; after a patience window the
//     driver re-profiles per-device speed from the measured busy times and
//     re-plans live — no checkpoint needed, the parameters never moved;
//   - an injected OOM re-plans the same depth and retries into the injector's
//     now-consumed fault;
//   - a permanent device crash (or dead link, which strands every stage
//     behind it) checkpoints model + optimizer state, re-partitions the model
//     over the survivors at reduced depth, restores into freshly built
//     modules, and resumes training.
//
// Everything the driver decides is a pure function of the config and the
// fault plan: recovery latency is modeled arithmetically (checkpoint bytes
// over checkpoint bandwidth, planner candidates times a per-candidate cost),
// never measured from wall clock, so a recovery trajectory — event log,
// replan decisions, iteration times — replays byte-for-byte for a given seed.

// DriverConfig parameterizes a self-healing training run.
type DriverConfig struct {
	// Model is the cost-model view of the architecture (for planning) and NN
	// the real trainable view; they must describe the same network so the
	// planner's block array aligns 1:1 with the module array.
	Model config.Model
	NN    nn.GPTConfig
	// Cluster supplies device and network constants for planning and timing.
	Cluster config.Cluster
	// Depth is the initial pipeline depth (devices 0..Depth-1).
	Depth int
	// Micro and Batch are the micro-batch count per iteration and the
	// per-micro-batch sample count.
	Micro, Batch int
	// Steps is the number of training iterations to run.
	Steps int
	// LR is the Adam learning rate.
	LR float64
	// DataSeed seeds the synthetic corpus.
	DataSeed uint64
	// Faults, when non-nil, is the fault plan injected into every timing
	// execution. Times in the plan are absolute on the driver's simulated
	// clock, which advances by each iteration's makespan plus any modeled
	// recovery latency.
	Faults *fault.Plan
	// Obs receives driver metrics and per-fault events (may be nil).
	Obs *obs.Registry
	// Search configures the planner engine for the initial plan and every
	// re-plan.
	Search core.Options

	// MaxRetries caps transient-fault retries per iteration (default 3).
	MaxRetries int
	// BackoffBase is the first retry backoff in simulated seconds; each retry
	// doubles it, capped at 1 s (default 0.05).
	BackoffBase float64
	// StragglerFactor is the measured/predicted iteration-time ratio beyond
	// which (in either direction) an iteration counts as deviant
	// (default 1.35).
	StragglerFactor float64
	// StragglerPatience is the number of consecutive deviant iterations that
	// trigger re-profiling and a live re-plan (default 2).
	StragglerPatience int
	// CheckpointBandwidth is the modeled save/restore bandwidth in bytes/s
	// (default 12.5e9, a 100 Gb/s fabric).
	CheckpointBandwidth float64
	// ReplanCandidateCost is the modeled planning time per candidate the
	// search evaluates, in seconds (default 2e-4). Modeling replan latency
	// from the candidate count instead of wall clock keeps recovery
	// trajectories deterministic.
	ReplanCandidateCost float64

	// Sanitize threads the executor's runtime happens-before checker through
	// every timing execution (measured and reference); a violation aborts
	// training with an error wrapping errdefs.ErrInternal. The package's
	// tests always set it.
	Sanitize bool
}

func (cfg DriverConfig) withDefaults() DriverConfig {
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 3
	}
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = 0.05
	}
	if cfg.StragglerFactor == 0 {
		cfg.StragglerFactor = 1.35
	}
	if cfg.StragglerPatience == 0 {
		cfg.StragglerPatience = 2
	}
	if cfg.CheckpointBandwidth == 0 {
		cfg.CheckpointBandwidth = 12.5e9
	}
	if cfg.ReplanCandidateCost == 0 {
		cfg.ReplanCandidateCost = 2e-4
	}
	if cfg.LR == 0 {
		cfg.LR = 1e-3
	}
	return cfg
}

func (cfg DriverConfig) validate() error {
	if cfg.Depth < 1 {
		return fmt.Errorf("%w: train: driver depth %d", errdefs.ErrBadConfig, cfg.Depth)
	}
	if cfg.Micro < 1 || cfg.Batch < 1 || cfg.Steps < 1 {
		return fmt.Errorf("%w: train: driver needs positive micro/batch/steps, got %d/%d/%d",
			errdefs.ErrBadConfig, cfg.Micro, cfg.Batch, cfg.Steps)
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Recovery records one self-healing action.
type Recovery struct {
	// Iter is the 1-based training iteration during which the fault struck.
	Iter int
	// Kind is the fault class ("device-crash", "link-down", "oom",
	// "straggler") and Detail the human-readable specifics.
	Kind   string
	Detail string
	// Downtime is the modeled recovery latency in simulated seconds
	// (checkpoint + replan + restore for a crash; replan only for a live
	// re-plan).
	Downtime float64
	// DepthBefore and DepthAfter are the pipeline depths around the action.
	DepthBefore, DepthAfter int
}

// Report is the outcome of a driver run. Log, Iters, Recoveries, and the
// final plan are pure functions of (config, fault plan): the golden
// determinism test asserts they replay byte-for-byte. Losses are equally
// deterministic in-process but involve transcendental math, so the golden
// file excludes them.
type Report struct {
	// Iters is the measured timing-executor makespan of each completed
	// iteration, in simulated seconds.
	Iters []float64
	// Losses is the real training loss per iteration.
	Losses []float64
	// Clock is the final simulated time: compute plus every modeled backoff
	// and recovery latency.
	Clock float64
	// Recoveries lists every self-healing action taken.
	Recoveries []Recovery
	// Retries and Replans count transient retries and planner re-runs.
	Retries, Replans int
	// Log is the deterministic event log of the run.
	Log []string
	// FinalDepth, Devices, and Bounds describe the plan training ended on.
	FinalDepth int
	Devices    []int
	Bounds     []int
}

// driver is the mutable state of one self-healing run.
type driver struct {
	cfg    DriverConfig
	reg    *obs.Registry
	inj    *fault.Injector
	blocks *model.Blocks

	mods []nn.Module
	pipe *Pipeline
	opt  *Adam
	ds   *Dataset

	devices   []int // stage -> physical device id
	part      partition.Partition
	numSliced int
	scales    map[int]float64 // physical device -> believed compute scale

	clock float64
	// lastReplanTime is the modeled planning latency of the most recent
	// replan: candidates evaluated × the per-candidate cost.
	lastReplanTime float64
	patience       int
	report         *Report
}

// RunDriver executes a self-healing training run and returns its report. The
// returned error is non-nil only when training could not complete: an invalid
// config, an unrecoverable fault (every device dead), or retries exhausted.
func RunDriver(ctx context.Context, cfg DriverConfig) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	bl, err := model.Build(cfg.Model, cost.Geometry{MicroBatch: cfg.Batch, Checkpoint: false},
		cfg.Cluster.Device, cfg.Cluster.Network, model.SubLayer)
	if err != nil {
		return nil, err
	}
	mods := nn.BuildGPT(cfg.NN)
	if len(mods) != bl.Len() {
		return nil, fmt.Errorf("%w: train: module array (%d) does not align with block array (%d)",
			errdefs.ErrBadConfig, len(mods), bl.Len())
	}
	if cfg.Depth > bl.Len() {
		return nil, fmt.Errorf("%w: train: depth %d exceeds %d blocks", errdefs.ErrBadConfig, cfg.Depth, bl.Len())
	}

	d := &driver{
		cfg: cfg, reg: cfg.Obs, inj: fault.New(cfg.Faults, cfg.Obs), blocks: bl,
		mods: mods, opt: NewAdam(cfg.LR),
		ds:     NewDataset(cfg.NN.Vocab, cfg.NN.MaxSeq, cfg.DataSeed),
		scales: map[int]float64{},
		report: &Report{},
	}
	for i := 0; i < cfg.Depth; i++ {
		d.devices = append(d.devices, i)
	}
	if err := d.replan(ctx, "initial plan"); err != nil {
		return nil, err
	}
	d.report.Replans = 0 // the initial plan is not a recovery replan
	if err := d.rebuildPipeline(); err != nil {
		return nil, err
	}
	d.logf("plan: depth %d bounds %v sliced %d", len(d.devices), d.part.Bounds, d.numSliced)

	scale := 1.0 / float64(cfg.Micro*cfg.Batch*cfg.NN.MaxSeq)
	for iter := 1; iter <= cfg.Steps; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("train: driver: %w", err)
		}
		micros := d.ds.Micros(cfg.Micro, cfg.Batch)

		res, recovered, err := d.executeWithRecovery(ctx, iter)
		if err != nil {
			return nil, err
		}

		// The timing iteration completed, so the training step commits.
		nn.ZeroGrads(d.pipe.AllParams())
		loss, err := d.pipe.Step(micros, d.numSliced, scale)
		if err != nil {
			return nil, fmt.Errorf("train: driver iter %d: %w", iter, err)
		}
		d.opt.Step(d.pipe.AllParams())

		d.clock += res.IterTime
		d.report.Iters = append(d.report.Iters, res.IterTime)
		d.report.Losses = append(d.report.Losses, loss)
		if d.reg != nil {
			d.reg.Counter("driver.iters").Inc()
			d.reg.Gauge("driver.iter_time_s").Set(res.IterTime)
			d.reg.Gauge("driver.clock_s").Set(d.clock)
		}
		if recovered && d.reg != nil {
			// Post-recovery throughput: the first completed iteration on the
			// recovered plan.
			d.reg.Gauge("driver.post_recovery_throughput").Set(float64(cfg.Micro*cfg.Batch) / res.IterTime)
		}

		d.checkStraggler(ctx, iter, res)
	}

	d.report.Clock = d.clock
	d.report.FinalDepth = len(d.devices)
	d.report.Devices = append([]int(nil), d.devices...)
	d.report.Bounds = append([]int(nil), d.part.Bounds...)
	return d.report, nil
}

// executeWithRecovery runs the timing executor for one iteration, healing
// every fault it surfaces until the iteration completes or is unrecoverable.
// recovered reports whether a checkpointed recovery happened.
func (d *driver) executeWithRecovery(ctx context.Context, iter int) (res *exec.Result, recovered bool, err error) {
	retries := 0
	for {
		res, err = d.runExec()
		if err == nil {
			return res, recovered, nil
		}
		switch {
		case errors.Is(err, errdefs.ErrTransient):
			if retries >= d.cfg.MaxRetries {
				return nil, recovered, fmt.Errorf("train: driver iter %d: %d retries exhausted: %w", iter, retries, err)
			}
			backoff := d.cfg.BackoffBase * float64(uint64(1)<<uint(retries))
			if backoff > 1 {
				backoff = 1
			}
			retries++
			d.clock += backoff
			d.report.Retries++
			if d.reg != nil {
				d.reg.Counter("driver.retries").Inc()
			}
			d.logf("iter %d: transient comm fault, retry %d after %.6gs backoff", iter, retries, backoff)

		case errors.Is(err, errdefs.ErrOOM):
			if rerr := d.recoverOOM(ctx, iter, err); rerr != nil {
				return nil, recovered, rerr
			}

		case errors.Is(err, errdefs.ErrDeviceLost) || errors.Is(err, errdefs.ErrLinkDown):
			if rerr := d.recoverLoss(ctx, iter, err); rerr != nil {
				return nil, recovered, rerr
			}
			recovered = true

		default:
			return nil, recovered, fmt.Errorf("train: driver iter %d: %w", iter, err)
		}
	}
}

// buildSchedule lays out the current plan's schedule.
func (d *driver) buildSchedule() (*schedule.Schedule, error) {
	p := len(d.devices)
	if d.numSliced > 0 {
		return schedule.Sliced(p, d.cfg.Micro, d.numSliced)
	}
	return schedule.OneFOneB(p, d.cfg.Micro)
}

// runExec executes the current plan's schedule on the timing executor with
// fault injection, starting at the driver's simulated clock.
func (d *driver) runExec() (*exec.Result, error) {
	s, err := d.buildSchedule()
	if err != nil {
		return nil, err
	}
	f, b := d.part.StageTimes(d.blocks)
	return exec.Run(s, exec.Config{
		VirtFwd:        f,
		VirtBwd:        b,
		CommBytes:      d.blocks.List[0].OutBytes,
		Network:        d.cfg.Cluster.Network,
		KernelOverhead: d.cfg.Cluster.Device.KernelOverhead,
		Obs:            d.reg,
		Faults:         d.inj,
		Start:          d.clock,
		DeviceMap:      d.devices,
		Sanitize:       d.cfg.Sanitize,
	})
}

// referenceTime is the driver's expectation for one iteration of the current
// plan: the same schedule on the same executor with stage times scaled by the
// believed per-device speeds, but no fault injection. Measured-vs-reference
// deviation is then pure fault signal — launch overheads, link serialization,
// and jitter cancel exactly (the jitter stream is seed-deterministic).
func (d *driver) referenceTime() float64 {
	s, err := d.buildSchedule()
	if err != nil {
		return 0
	}
	prof := d.scaledProfile(d.part)
	r, err := exec.Run(s, exec.Config{
		VirtFwd:        prof.Fwd,
		VirtBwd:        prof.Bwd,
		CommBytes:      d.blocks.List[0].OutBytes,
		Network:        d.cfg.Cluster.Network,
		KernelOverhead: d.cfg.Cluster.Device.KernelOverhead,
		Sanitize:       d.cfg.Sanitize,
	})
	if err != nil {
		return 0
	}
	return r.IterTime
}

// recoverLoss heals a permanent device or link loss: checkpoint, drop the
// dead device, replan over the survivors at reduced depth, restore into a
// fresh model, resume.
func (d *driver) recoverLoss(ctx context.Context, iter int, cause error) error {
	var (
		dead int
		kind string
	)
	var lost *fault.DeviceLostError
	var link *fault.LinkDownError
	switch {
	case errors.As(cause, &lost):
		dead, kind = lost.Device, "device-crash"
	case errors.As(cause, &link):
		// A dead link strands every stage downstream of it; failing over the
		// later-stage endpoint reconnects the pipeline through the survivors.
		dead, kind = link.From, "link-down"
		if d.stageOf(link.To) > d.stageOf(link.From) {
			dead = link.To
		}
	default:
		return fmt.Errorf("train: driver iter %d: %w", iter, cause)
	}

	survivors := make([]int, 0, len(d.devices))
	for _, dev := range d.devices {
		if dev != dead {
			survivors = append(survivors, dev)
		}
	}
	if len(survivors) == len(d.devices) {
		return fmt.Errorf("train: driver iter %d: lost device %d not in pipeline: %w", iter, dead, cause)
	}
	if len(survivors) == 0 {
		return fmt.Errorf("train: driver iter %d: no surviving devices: %w", iter, cause)
	}
	depthBefore := len(d.devices)

	// Checkpoint the live state (last completed step), then rebuild the model
	// from scratch and restore — the survivors host a brand-new process tree
	// in a real deployment, so the driver proves the round trip.
	params := nn.CollectParams(d.mods)
	ck := Snapshot(iter-1, params, d.opt)
	saveTime := float64(ck.SizeBytes()) / d.cfg.CheckpointBandwidth

	d.devices = survivors
	if err := d.replan(ctx, fmt.Sprintf("iter %d %s", iter, kind)); err != nil {
		return err
	}
	replanTime := d.lastReplanTime

	d.mods = nn.BuildGPT(d.cfg.NN)
	d.opt = NewAdam(d.cfg.LR)
	if err := ck.Restore(nn.CollectParams(d.mods), d.opt); err != nil {
		return err
	}
	if err := d.rebuildPipeline(); err != nil {
		return err
	}
	restoreTime := saveTime
	downtime := saveTime + replanTime + restoreTime
	d.clock += downtime

	rec := Recovery{Iter: iter, Kind: kind, Detail: cause.Error(), Downtime: downtime,
		DepthBefore: depthBefore, DepthAfter: len(d.devices)}
	d.report.Recoveries = append(d.report.Recoveries, rec)
	d.logf("iter %d: %s (device %d): checkpoint %dB, replan depth %d->%d bounds %v sliced %d, downtime %.6gs",
		iter, kind, dead, ck.SizeBytes(), depthBefore, len(d.devices), d.part.Bounds, d.numSliced, downtime)
	d.emitRecovery(rec)
	return nil
}

// recoverOOM heals an injected OOM: re-plan the same depth (the injector
// consumes the fault, so the re-executed iteration lands in a clean
// allocator) and charge the modeled replan latency.
func (d *driver) recoverOOM(ctx context.Context, iter int, cause error) error {
	depth := len(d.devices)
	if err := d.replan(ctx, fmt.Sprintf("iter %d oom", iter)); err != nil {
		return err
	}
	d.clock += d.lastReplanTime
	if err := d.rebuildPipeline(); err != nil {
		return err
	}
	rec := Recovery{Iter: iter, Kind: "oom", Detail: cause.Error(), Downtime: d.lastReplanTime,
		DepthBefore: depth, DepthAfter: depth}
	d.report.Recoveries = append(d.report.Recoveries, rec)
	d.logf("iter %d: injected OOM: replan depth %d bounds %v sliced %d, downtime %.6gs",
		iter, depth, d.part.Bounds, d.numSliced, d.lastReplanTime)
	d.emitRecovery(rec)
	return nil
}

// checkStraggler compares the measured iteration time against the plan's
// prediction under the driver's believed per-device scales; after a patience
// window of sustained deviation (in either direction — a straggler appearing
// or healing) it re-profiles the scales from the measured busy times and
// re-plans live.
func (d *driver) checkStraggler(ctx context.Context, iter int, res *exec.Result) {
	predicted := d.referenceTime()
	if predicted <= 0 || math.IsInf(predicted, 1) {
		return
	}
	ratio := res.IterTime / predicted
	if ratio > d.cfg.StragglerFactor || ratio < 1/d.cfg.StragglerFactor {
		d.patience++
	} else {
		d.patience = 0
	}
	if d.patience < d.cfg.StragglerPatience {
		return
	}
	d.patience = 0
	depth := len(d.devices)

	// Re-profile: per-stage measured busy over the plan's unscaled busy.
	f, b := d.part.StageTimes(d.blocks)
	for s, dev := range d.devices {
		expected := float64(d.cfg.Micro) * (f[s] + b[s])
		if expected > 0 && res.Busy[s] > 0 {
			d.scales[dev] = res.Busy[s] / expected
		}
	}
	if err := d.replan(ctx, fmt.Sprintf("iter %d straggler", iter)); err != nil {
		d.logf("iter %d: straggler replan failed: %v", iter, err)
		return
	}
	d.clock += d.lastReplanTime
	if err := d.rebuildPipeline(); err != nil {
		d.logf("iter %d: straggler rebuild failed: %v", iter, err)
		return
	}
	rec := Recovery{Iter: iter, Kind: "straggler", Downtime: d.lastReplanTime,
		Detail:      fmt.Sprintf("measured/predicted ratio %.6g", ratio),
		DepthBefore: depth, DepthAfter: depth}
	d.report.Recoveries = append(d.report.Recoveries, rec)
	d.logf("iter %d: sustained deviation (ratio %.6g): re-profiled scales, live replan bounds %v sliced %d",
		iter, ratio, d.part.Bounds, d.numSliced)
	d.emitRecovery(rec)
}

// replanInner runs the partition search for the current depth and re-solves
// the slicing, returning the candidate count for the modeled latency.
func (d *driver) replanInner(ctx context.Context) (int, error) {
	pr, err := core.PlanDepthOpts(ctx, d.blocks, len(d.devices), d.cfg.Micro, d.cfg.Search)
	if err != nil {
		return 0, err
	}
	part := pr.Best.Partition
	// Refine the balanced partition under the believed per-device scales: the
	// planner balances raw block weights, but a straggler's stage should
	// shrink in proportion to its slowdown.
	part = d.refineForScales(part)
	d.part = part

	prof := d.scaledProfile(part)
	sp, err := slicer.SolveProfile(prof)
	if err != nil {
		return 0, err
	}
	d.numSliced = sp.NumSliced
	if d.cfg.Batch%2 != 0 {
		// Slicing halves a micro-batch along the sample axis; an odd batch
		// cannot be split, so fall back to plain 1F1B.
		d.numSliced = 0
	}
	return pr.Evaluated, nil
}

func (d *driver) replan(ctx context.Context, why string) error {
	evaluated, err := d.replanInner(ctx)
	if err != nil {
		return fmt.Errorf("train: driver replan (%s): %w", why, err)
	}
	d.lastReplanTime = float64(evaluated) * d.cfg.ReplanCandidateCost
	d.report.Replans++
	if d.reg != nil {
		d.reg.Counter("driver.replans").Inc()
	}
	return nil
}

// refineForScales improves a partition under the believed per-device scales
// with a deterministic greedy boundary search: repeatedly try shifting each
// internal stage boundary by one block and keep the best strict improvement
// of the scaled simulated iteration time.
func (d *driver) refineForScales(part partition.Partition) partition.Partition {
	scaled := false
	for _, dev := range d.devices {
		if s, ok := d.scales[dev]; ok && s != 1 {
			scaled = true
		}
	}
	if !scaled || part.Stages() < 2 {
		return part
	}
	cur, curT := part, d.predict(part)
	for round := 0; round < 8*part.Stages(); round++ {
		best, bestT := partition.Partition{}, curT
		for i := 1; i < len(cur.Bounds)-1; i++ {
			for _, delta := range [2]int{-1, 1} {
				cand := cur.Clone()
				cand.Bounds[i] += delta
				if cand.Bounds[i] <= cand.Bounds[i-1] || cand.Bounds[i] >= cand.Bounds[i+1] {
					continue
				}
				if t := d.predict(cand); t < bestT-1e-15 {
					best, bestT = cand, t
				}
			}
		}
		if best.Bounds == nil {
			break
		}
		cur, curT = best, bestT
	}
	return cur
}

// scaledProfile is the partition's stage profile with each stage's times
// multiplied by its device's believed scale.
func (d *driver) scaledProfile(part partition.Partition) sim.StageProfile {
	f, b := part.StageTimes(d.blocks)
	for s := range f {
		if s < len(d.devices) {
			if sc, ok := d.scales[d.devices[s]]; ok {
				f[s] *= sc
				b[s] *= sc
			}
		}
	}
	return sim.StageProfile{Fwd: f, Bwd: b, Comm: d.blocks.Comm, Micro: d.cfg.Micro}
}

// predict is the analytic iteration time of a partition under the believed
// scales (+Inf on simulator error, which only a degenerate candidate hits).
func (d *driver) predict(part partition.Partition) float64 {
	r, err := sim.SimulateProfile(d.scaledProfile(part))
	if err != nil {
		return math.Inf(1)
	}
	return r.IterTime
}

func (d *driver) rebuildPipeline() error {
	pipe, err := NewPipeline(d.mods, d.part.Bounds)
	if err != nil {
		return fmt.Errorf("train: driver: %w", err)
	}
	pipe.Obs = d.reg
	d.pipe = pipe
	return nil
}

// stageOf returns the pipeline stage hosted on physical device dev, or -1.
func (d *driver) stageOf(dev int) int {
	for s, pd := range d.devices {
		if pd == dev {
			return s
		}
	}
	return -1
}

func (d *driver) logf(format string, args ...any) {
	d.report.Log = append(d.report.Log, fmt.Sprintf(format, args...))
}

func (d *driver) emitRecovery(rec Recovery) {
	if d.reg == nil {
		return
	}
	d.reg.Counter("driver.recoveries").Inc()
	d.reg.Gauge("driver.recovery_latency_s").Set(rec.Downtime)
	d.reg.Emit("driver.recovery", obs.Fields{
		"iter": rec.Iter, "kind": rec.Kind,
		"downtime_s": rec.Downtime,
		"depth":      rec.DepthAfter,
	})
}
