package train

import (
	"fmt"

	"autopipe/internal/errdefs"
	"autopipe/internal/nn"
	"autopipe/internal/tensor"
)

// Checkpoint is a full training-state snapshot: every parameter tensor plus
// the Adam step count and moment estimates, captured by position in the
// parameter list. Because the planner's block array and the module array
// index the same positions regardless of where the pipeline is cut, a
// checkpoint taken under one partition restores cleanly into a model cut at
// completely different stage bounds — which is exactly what the self-healing
// driver does when a device dies and the survivors get a shallower plan.
type Checkpoint struct {
	// Step is the last completed training iteration.
	Step int
	// Weights holds a deep copy of every parameter tensor, in params order.
	Weights []*tensor.Tensor
	// AdamT, M, V are the optimizer state (see Adam.Moments).
	AdamT int
	M, V  []*tensor.Tensor
}

// Snapshot captures the model and optimizer state after training step `step`.
// A nil opt checkpoints weights only.
func Snapshot(step int, params []*nn.Param, opt *Adam) *Checkpoint {
	ck := &Checkpoint{Step: step, Weights: make([]*tensor.Tensor, len(params))}
	for i, p := range params {
		ck.Weights[i] = p.W.Clone()
	}
	if opt != nil {
		ck.AdamT, ck.M, ck.V = opt.Moments(params)
	}
	return ck
}

// Restore loads the checkpoint into params (matched by position) and, when
// opt is non-nil, into the optimizer. Gradients are zeroed: a restore always
// lands at a step boundary.
func (ck *Checkpoint) Restore(params []*nn.Param, opt *Adam) error {
	if len(params) != len(ck.Weights) {
		return fmt.Errorf("%w: train: checkpoint has %d tensors, model has %d params", errdefs.ErrBadConfig, len(ck.Weights), len(params))
	}
	for i, p := range params {
		if p.W.Size() != ck.Weights[i].Size() {
			return fmt.Errorf("%w: train: checkpoint tensor %d size %d does not match param %s size %d",
				errdefs.ErrBadConfig, i, ck.Weights[i].Size(), p.Name, p.W.Size())
		}
		copy(p.W.Data, ck.Weights[i].Data)
	}
	nn.ZeroGrads(params)
	if opt != nil {
		if err := opt.SetMoments(params, ck.AdamT, ck.M, ck.V); err != nil {
			return err
		}
	}
	return nil
}

// SizeBytes is the serialized size of the checkpoint at float64 precision —
// the payload the driver charges against the checkpoint bandwidth when it
// models save/restore latency.
func (ck *Checkpoint) SizeBytes() int64 {
	var n int64
	for _, w := range ck.Weights {
		n += int64(w.Size())
	}
	for _, m := range ck.M {
		if m != nil {
			n += int64(m.Size())
		}
	}
	for _, v := range ck.V {
		if v != nil {
			n += int64(v.Size())
		}
	}
	return n * 8
}
