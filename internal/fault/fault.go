// Package fault is the deterministic fault-injection engine of the
// reproduction: a seedable fault-plan DSL (stragglers, link degradation and
// flaps, transient message drops, permanent device crashes, injected OOM)
// and an Injector that the discrete-event executor (package exec) consults as
// timed events during execution.
//
// Real 16-GPU testbeds like the paper's RTX 3090 + InfiniBand cluster see
// exactly these failures; instead of silently producing wrong timings, the
// executor surfaces them as typed errors (errdefs.ErrDeviceLost, ErrLinkDown,
// ErrTransient, ErrOOM) that the self-healing training driver (package train)
// dispatches on with errors.Is / errors.As: transient faults retry with
// capped backoff, sustained slowdowns trigger re-profiling and a live
// re-plan, and permanent losses trigger checkpoint → re-partition → resume.
//
// Determinism is a design requirement, not an accident: a fault plan plus its
// seed fully determines every injection decision (probabilistic drops are
// resolved by a splitmix64 hash of the seed and the message identity), so a
// recovery trajectory replays byte-for-byte.
package fault

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"autopipe/internal/errdefs"
)

// Kind names a fault class of the DSL.
type Kind string

const (
	// Straggler multiplies a device's compute times by Factor (>= 1) while
	// active — a thermally throttled or contended GPU.
	Straggler Kind = "straggler"
	// LinkDegrade multiplies a link's bandwidth by Factor (in (0,1)) while
	// active — a congested or renegotiated-down interconnect.
	LinkDegrade Kind = "link-degrade"
	// LinkFlap makes a link unusable during its window: messages queue until
	// the flap ends. Duration 0 means the link is permanently down, which
	// surfaces errdefs.ErrLinkDown.
	LinkFlap Kind = "link-flap"
	// MsgDrop drops message-send attempts on a link: the first Count attempts
	// at or after At fail with errdefs.ErrTransient (or, with Prob set, each
	// attempt in the window fails with seeded probability Prob).
	MsgDrop Kind = "msg-drop"
	// DeviceCrash permanently kills a device at At: any operation launched on
	// it afterwards fails with errdefs.ErrDeviceLost.
	DeviceCrash Kind = "device-crash"
	// DeviceOOM injects one out-of-memory failure: the first operation
	// launched on the device inside the window fails with errdefs.ErrOOM.
	DeviceOOM Kind = "oom"
)

// Fault is one timed event of a fault plan. Times are absolute seconds on the
// simulated cluster clock; device and link ids are physical (the executor's
// Config.DeviceMap translates schedule indices when a pipeline no longer
// occupies devices 0..p-1).
type Fault struct {
	Kind Kind `json:"kind"`
	// At is the activation time in seconds.
	At float64 `json:"at"`
	// Duration is the active window in seconds; 0 means permanent (from At
	// onwards). DeviceCrash is always permanent and must leave it 0.
	Duration float64 `json:"duration,omitempty"`
	// Device is the target of straggler, device-crash, and oom faults.
	Device int `json:"device,omitempty"`
	// From and To name the link of link-degrade, link-flap, and msg-drop
	// faults. Link faults are bidirectional: they apply to the unordered
	// device pair.
	From int `json:"from,omitempty"`
	To   int `json:"to,omitempty"`
	// Factor is the straggler compute multiplier (>= 1) or the link-degrade
	// bandwidth multiplier (in (0,1)).
	Factor float64 `json:"factor,omitempty"`
	// Count is the number of attempts a msg-drop fault consumes (default 1
	// when Prob is 0).
	Count int `json:"count,omitempty"`
	// Prob, if positive, makes a msg-drop fault probabilistic: each send
	// attempt in the window drops with this probability, resolved
	// deterministically from the plan seed and the message identity.
	Prob float64 `json:"prob,omitempty"`
}

// active reports whether the fault's window covers time at.
func (f *Fault) active(at float64) bool {
	return at >= f.At && (f.Duration <= 0 || at < f.At+f.Duration)
}

// onLink reports whether the fault targets the unordered link {a, b}.
func (f *Fault) onLink(a, b int) bool {
	return (f.From == a && f.To == b) || (f.From == b && f.To == a)
}

// validate reports the first structural problem with the fault.
func (f *Fault) validate(i int) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: fault %d (%s): %s", errdefs.ErrBadConfig, i, f.Kind, fmt.Sprintf(format, args...))
	}
	if f.At < 0 {
		return bad("negative activation time %g", f.At)
	}
	if f.Duration < 0 {
		return bad("negative duration %g", f.Duration)
	}
	switch f.Kind {
	case Straggler:
		if f.Device < 0 {
			return bad("negative device %d", f.Device)
		}
		if f.Factor < 1 {
			return bad("compute factor %g must be >= 1", f.Factor)
		}
	case LinkDegrade:
		if f.From < 0 || f.To < 0 || f.From == f.To {
			return bad("bad link %d->%d", f.From, f.To)
		}
		if f.Factor <= 0 || f.Factor >= 1 {
			return bad("bandwidth factor %g must be in (0,1)", f.Factor)
		}
	case LinkFlap:
		if f.From < 0 || f.To < 0 || f.From == f.To {
			return bad("bad link %d->%d", f.From, f.To)
		}
	case MsgDrop:
		if f.From < 0 || f.To < 0 || f.From == f.To {
			return bad("bad link %d->%d", f.From, f.To)
		}
		if f.Prob < 0 || f.Prob > 1 {
			return bad("drop probability %g out of [0,1]", f.Prob)
		}
		if f.Count < 0 {
			return bad("negative drop count %d", f.Count)
		}
		if f.Prob > 0 && f.Count > 0 {
			return bad("count and prob are mutually exclusive")
		}
	case DeviceCrash:
		if f.Device < 0 {
			return bad("negative device %d", f.Device)
		}
		if f.Duration != 0 {
			return bad("a crash is permanent; duration must be 0, got %g", f.Duration)
		}
	case DeviceOOM:
		if f.Device < 0 {
			return bad("negative device %d", f.Device)
		}
	default:
		return bad("unknown kind")
	}
	return nil
}

// Plan is a complete, seedable fault plan.
type Plan struct {
	// Name labels the plan in logs and reports.
	Name string `json:"name,omitempty"`
	// Seed resolves every probabilistic decision (msg-drop Prob); two
	// injectors built from the same plan make identical decisions.
	Seed uint64 `json:"seed,omitempty"`
	// Faults is the event list; order is irrelevant (activation is by time).
	Faults []Fault `json:"faults"`
}

// Validate reports the first structural problem with the plan. Errors wrap
// errdefs.ErrBadConfig.
func (p *Plan) Validate() error {
	for i := range p.Faults {
		if err := p.Faults[i].validate(i); err != nil {
			return err
		}
	}
	return nil
}

// Parse decodes and validates a JSON-encoded fault plan. Unknown fields are
// rejected so a typoed plan fails loudly instead of silently injecting
// nothing. Errors wrap errdefs.ErrBadConfig.
func Parse(data []byte) (*Plan, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("%w: fault: parse plan: %v", errdefs.ErrBadConfig, err)
	}
	// Trailing garbage after the document is a malformed plan too.
	if dec.More() {
		return nil, fmt.Errorf("%w: fault: trailing data after plan document", errdefs.ErrBadConfig)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Load reads and parses a fault plan from a JSON file.
func Load(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	p, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("fault: %s: %w", path, err)
	}
	return p, nil
}
