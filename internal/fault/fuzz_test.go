package fault

import (
	"errors"
	"testing"

	"autopipe/internal/errdefs"
)

// FuzzParsePlan drives the fault-plan parser with arbitrary bytes: it must
// never panic, and every accepted plan must validate cleanly, round-trip
// through an injector without panicking, and reject nothing it just accepted.
// Run with `go test -fuzz=FuzzParsePlan ./internal/fault`.
func FuzzParsePlan(f *testing.F) {
	f.Add([]byte(`{"faults":[]}`))
	f.Add([]byte(`{"name":"x","seed":3,"faults":[{"kind":"straggler","at":1,"duration":2,"device":0,"factor":1.5}]}`))
	f.Add([]byte(`{"faults":[{"kind":"msg-drop","at":0,"from":0,"to":1,"prob":0.25}]}`))
	f.Add([]byte(`{"faults":[{"kind":"device-crash","at":9,"device":3},{"kind":"link-flap","at":1,"from":0,"to":1}]}`))
	f.Add([]byte(`{"faults":[{"kind":"oom","at":0,"device":0},{"kind":"link-degrade","at":0,"from":1,"to":2,"factor":0.5}]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"faults":[]}{"faults":[]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(data)
		if err != nil {
			if p != nil {
				t.Fatal("non-nil plan returned with an error")
			}
			if !errors.Is(err, errdefs.ErrBadConfig) {
				t.Fatalf("parse error does not wrap ErrBadConfig: %v", err)
			}
			return
		}
		// An accepted plan must re-validate and build a working injector.
		if err := p.Validate(); err != nil {
			t.Fatalf("accepted plan fails Validate: %v", err)
		}
		in := New(p, nil)
		for _, at := range []float64{0, 1, 1e6} {
			in.ComputeScale(0, at)
			in.LinkFactor(0, 1, at)
			in.LinkBlocked(0, 1, at)
			in.DropAttempt(0, 1, at, 7)
			in.Crashed(0, at)
			in.OOMAt(0, at)
		}
	})
}
