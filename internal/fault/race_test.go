package fault

import (
	"sync"
	"testing"

	"autopipe/internal/obs"
)

// TestInjectorConcurrentQueries exercises the Injector's documented
// all-methods-safe-for-concurrent-use contract from competing goroutines —
// the executor's launch path and send path hit it from every device at once —
// and checks the stateful budgets stay exact under contention: a count-mode
// msg-drop consumes exactly Count attempts and an OOM fires exactly once, no
// matter how the queries interleave. Run under -race (make race, and at full
// depth whenever this package's suite runs under the detector) this is the
// dynamic complement to raceguard's static sweep of internal/fault.
func TestInjectorConcurrentQueries(t *testing.T) {
	plan := &Plan{
		Name: "race-stress",
		Seed: 7,
		Faults: []Fault{
			{Kind: Straggler, At: 0, Duration: 2, Device: 1, Factor: 2},
			{Kind: LinkDegrade, At: 0, Duration: 2, From: 0, To: 1, Factor: 0.5},
			{Kind: MsgDrop, At: 0, Duration: 2, From: 0, To: 1, Count: 3},
			{Kind: DeviceOOM, At: 0, Duration: 2, Device: 2},
			{Kind: DeviceCrash, At: 1.5, Device: 3},
		},
	}
	if err := plan.Validate(); err != nil {
		t.Fatalf("stress plan invalid: %v", err)
	}
	inj := New(plan, obs.NewRegistry())

	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	drops := make([]int, workers)
	ooms := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				at := float64(i%20) / 10.0
				_ = inj.ComputeScale(i%4, at)
				_ = inj.LinkFactor(0, 1, at)
				_, _, _ = inj.LinkBlocked(0, 1, at)
				if inj.DropAttempt(0, 1, 1.0, uint64(w*iters+i)) {
					drops[w]++
				}
				if inj.OOMAt(2, 1.0) {
					ooms[w]++
				}
				_, _ = inj.Crashed(3, at)
			}
		}(w)
	}
	wg.Wait()

	totalDrops, totalOOMs := 0, 0
	for w := 0; w < workers; w++ {
		totalDrops += drops[w]
		totalOOMs += ooms[w]
	}
	if totalDrops != 3 {
		t.Errorf("count-mode msg-drop consumed %d attempts under contention, want exactly 3", totalDrops)
	}
	if totalOOMs != 1 {
		t.Errorf("oom fired %d times under contention, want exactly once", totalOOMs)
	}
}
