package fault

import (
	"errors"
	"testing"

	"autopipe/internal/errdefs"
	"autopipe/internal/obs"
)

func TestParseValidPlan(t *testing.T) {
	data := []byte(`{
		"name": "basic", "seed": 7,
		"faults": [
			{"kind": "straggler", "at": 1, "duration": 2, "device": 1, "factor": 1.5},
			{"kind": "link-degrade", "at": 0, "from": 0, "to": 1, "factor": 0.25},
			{"kind": "link-flap", "at": 3, "duration": 0.5, "from": 1, "to": 2},
			{"kind": "msg-drop", "at": 0, "from": 2, "to": 3, "count": 2},
			{"kind": "device-crash", "at": 9, "device": 3},
			{"kind": "oom", "at": 0, "device": 0}
		]
	}`)
	p, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "basic" || p.Seed != 7 || len(p.Faults) != 6 {
		t.Fatalf("parsed %+v", p)
	}
}

func TestParseRejections(t *testing.T) {
	cases := map[string]string{
		"unknown kind":     `{"faults":[{"kind":"meteor","at":0}]}`,
		"unknown field":    `{"faults":[],"surprise":1}`,
		"trailing data":    `{"faults":[]} {"faults":[]}`,
		"negative at":      `{"faults":[{"kind":"oom","at":-1,"device":0}]}`,
		"negative dur":     `{"faults":[{"kind":"straggler","at":0,"duration":-2,"device":0,"factor":2}]}`,
		"straggler < 1":    `{"faults":[{"kind":"straggler","at":0,"device":0,"factor":0.5}]}`,
		"degrade >= 1":     `{"faults":[{"kind":"link-degrade","at":0,"from":0,"to":1,"factor":1}]}`,
		"self link":        `{"faults":[{"kind":"link-flap","at":0,"from":2,"to":2}]}`,
		"count and prob":   `{"faults":[{"kind":"msg-drop","at":0,"from":0,"to":1,"count":1,"prob":0.5}]}`,
		"prob > 1":         `{"faults":[{"kind":"msg-drop","at":0,"from":0,"to":1,"prob":1.5}]}`,
		"crash with dur":   `{"faults":[{"kind":"device-crash","at":0,"duration":1,"device":0}]}`,
		"negative device":  `{"faults":[{"kind":"oom","at":0,"device":-1}]}`,
		"not json":         `]`,
		"negative count":   `{"faults":[{"kind":"msg-drop","at":0,"from":0,"to":1,"count":-1}]}`,
		"negative endport": `{"faults":[{"kind":"msg-drop","at":0,"from":-1,"to":1}]}`,
	}
	for name, data := range cases {
		if _, err := Parse([]byte(data)); !errors.Is(err, errdefs.ErrBadConfig) {
			t.Errorf("%s: err = %v, want ErrBadConfig", name, err)
		}
	}
}

func TestActiveWindow(t *testing.T) {
	f := &Fault{At: 2, Duration: 3}
	for _, tc := range []struct {
		at   float64
		want bool
	}{{1.9, false}, {2, true}, {4.9, true}, {5, false}} {
		if got := f.active(tc.at); got != tc.want {
			t.Errorf("active(%g) = %v", tc.at, got)
		}
	}
	perm := &Fault{At: 2} // Duration 0 = permanent
	if perm.active(1) || !perm.active(1e9) {
		t.Error("permanent window wrong")
	}
}

func TestInjectorStragglerAndLink(t *testing.T) {
	plan := &Plan{Faults: []Fault{
		{Kind: Straggler, At: 1, Duration: 2, Device: 0, Factor: 2},
		{Kind: LinkDegrade, At: 0, From: 0, To: 1, Factor: 0.5},
	}}
	in := New(plan, nil)
	if s := in.ComputeScale(0, 0.5); s != 1 {
		t.Errorf("scale before window = %g", s)
	}
	if s := in.ComputeScale(0, 1.5); s != 2 {
		t.Errorf("scale in window = %g", s)
	}
	if s := in.ComputeScale(1, 1.5); s != 1 {
		t.Errorf("scale on other device = %g", s)
	}
	// Link faults are bidirectional.
	if f := in.LinkFactor(1, 0, 5); f != 0.5 {
		t.Errorf("reverse-direction link factor = %g", f)
	}
}

func TestInjectorFlap(t *testing.T) {
	plan := &Plan{Faults: []Fault{
		{Kind: LinkFlap, At: 1, Duration: 2, From: 0, To: 1},
		{Kind: LinkFlap, At: 10, From: 1, To: 2}, // permanent
	}}
	in := New(plan, nil)
	if _, blocked, _ := in.LinkBlocked(0, 1, 0.5); blocked {
		t.Error("blocked before flap")
	}
	until, blocked, perm := in.LinkBlocked(0, 1, 1.5)
	if !blocked || perm || until != 3 {
		t.Errorf("flap: until=%g blocked=%v perm=%v", until, blocked, perm)
	}
	if _, blocked, perm := in.LinkBlocked(2, 1, 11); !blocked || !perm {
		t.Error("permanent flap not reported")
	}
}

func TestInjectorCountDropConsumes(t *testing.T) {
	plan := &Plan{Faults: []Fault{{Kind: MsgDrop, At: 0, From: 0, To: 1, Count: 2}}}
	in := New(plan, nil)
	drops := 0
	for i := 0; i < 5; i++ {
		if in.DropAttempt(0, 1, 1, 42) {
			drops++
		}
	}
	if drops != 2 {
		t.Errorf("count-mode drops = %d, want 2", drops)
	}
}

func TestInjectorProbDropDeterministic(t *testing.T) {
	plan := &Plan{Seed: 11, Faults: []Fault{{Kind: MsgDrop, At: 0, From: 0, To: 1, Prob: 0.5}}}
	run := func() []bool {
		in := New(plan, nil)
		var out []bool
		for key := uint64(0); key < 64; key++ {
			out = append(out, in.DropAttempt(0, 1, 1, key))
		}
		return out
	}
	a, b := run(), run()
	drops := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d", i)
		}
		if a[i] {
			drops++
		}
	}
	if drops == 0 || drops == len(a) {
		t.Errorf("p=0.5 over %d messages dropped %d — hash looks degenerate", len(a), drops)
	}
	// A different seed must give a different pattern.
	plan2 := &Plan{Seed: 12, Faults: plan.Faults}
	in2 := New(plan2, nil)
	same := true
	for key := uint64(0); key < 64; key++ {
		if in2.DropAttempt(0, 1, 1, key) != a[key] {
			same = false
		}
	}
	if same {
		t.Error("seed does not influence drop decisions")
	}
}

func TestInjectorCrashAndOOM(t *testing.T) {
	plan := &Plan{Faults: []Fault{
		{Kind: DeviceCrash, At: 5, Device: 2},
		{Kind: DeviceOOM, At: 1, Duration: 1, Device: 0},
	}}
	in := New(plan, nil)
	if _, dead := in.Crashed(2, 4.9); dead {
		t.Error("dead before crash time")
	}
	since, dead := in.Crashed(2, 100)
	if !dead || since != 5 {
		t.Errorf("crash: since=%g dead=%v", since, dead)
	}
	if !in.OOMAt(0, 1.5) {
		t.Error("OOM did not fire in window")
	}
	if in.OOMAt(0, 1.6) {
		t.Error("OOM fired twice")
	}
}

func TestInjectorEmitsObsEvents(t *testing.T) {
	reg := obs.NewRegistry()
	plan := &Plan{Faults: []Fault{{Kind: Straggler, At: 0, Device: 0, Factor: 3}}}
	in := New(plan, reg)
	in.ComputeScale(0, 1)
	in.ComputeScale(0, 2) // second activation must not re-emit
	snap := reg.Snapshot()
	if got := snap.Counters["fault.injected"]; got != 1 {
		t.Errorf("fault.injected = %g, want 1", got)
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.ComputeScale(0, 0) != 1 || in.LinkFactor(0, 1, 0) != 1 || in.DropAttempt(0, 1, 0, 0) {
		t.Error("nil injector injected something")
	}
	if _, dead := in.Crashed(0, 0); dead {
		t.Error("nil injector crashed a device")
	}
	in2 := New(nil, nil)
	if in2.OOMAt(0, 0) || in2.Plan() != nil {
		t.Error("empty injector injected something")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/faults.json"); err == nil {
		t.Error("want error for missing file")
	}
}
