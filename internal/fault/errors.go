package fault

import (
	"fmt"

	"autopipe/internal/errdefs"
)

// The typed failure values the executor returns when a fault terminates an
// execution. Each unwraps to its errdefs sentinel, so callers dispatch
// coarsely with errors.Is and extract the failure site with errors.As:
//
//	var lost *fault.DeviceLostError
//	if errors.As(err, &lost) { replanWithout(lost.Device) }

// DeviceLostError reports a permanent device loss (a device-crash fault).
type DeviceLostError struct {
	// Device is the physical device id.
	Device int
	// At is the absolute time the device died.
	At float64
}

func (e *DeviceLostError) Error() string {
	return fmt.Sprintf("%v: device %d at t=%.6gs", errdefs.ErrDeviceLost, e.Device, e.At)
}

// Unwrap makes errors.Is(err, errdefs.ErrDeviceLost) true.
func (e *DeviceLostError) Unwrap() error { return errdefs.ErrDeviceLost }

// LinkDownError reports a permanently failed link (a link-flap fault with no
// duration).
type LinkDownError struct {
	// From and To are the physical endpoint devices.
	From, To int
	// At is the absolute time the failure was hit.
	At float64
}

func (e *LinkDownError) Error() string {
	return fmt.Sprintf("%v: link %d->%d at t=%.6gs", errdefs.ErrLinkDown, e.From, e.To, e.At)
}

// Unwrap makes errors.Is(err, errdefs.ErrLinkDown) true.
func (e *LinkDownError) Unwrap() error { return errdefs.ErrLinkDown }

// TransientError reports a dropped message (a msg-drop fault). The operation
// is safe to retry.
type TransientError struct {
	// From and To are the physical endpoint devices.
	From, To int
	// At is the absolute time of the dropped send attempt.
	At float64
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("%v: message dropped on link %d->%d at t=%.6gs", errdefs.ErrTransient, e.From, e.To, e.At)
}

// Unwrap makes errors.Is(err, errdefs.ErrTransient) true.
func (e *TransientError) Unwrap() error { return errdefs.ErrTransient }

// OOMError reports an injected out-of-memory failure.
type OOMError struct {
	// Device is the physical device id.
	Device int
	// At is the absolute launch time of the failing operation.
	At float64
}

func (e *OOMError) Error() string {
	return fmt.Sprintf("%v: injected OOM on device %d at t=%.6gs", errdefs.ErrOOM, e.Device, e.At)
}

// Unwrap makes errors.Is(err, errdefs.ErrOOM) true.
func (e *OOMError) Unwrap() error { return errdefs.ErrOOM }
