package fault

import (
	"sync"

	"autopipe/internal/obs"
)

// Injector is the runtime form of a Plan: the discrete-event executor asks it
// at every operation launch and message send whether a fault applies. The
// injector is stateful — consumed message drops stay consumed, an injected
// OOM fires once — so a retry after a transient fault deterministically
// succeeds once the fault budget is spent. All methods are safe for
// concurrent use and every decision is a pure function of (plan, seed,
// query history), never of wall-clock time or goroutine interleaving.
//
// Each fault emits one "fault.<kind>" obs event (and bumps the
// "fault.injected" counter) the first time it affects execution, so an
// injected fault is always visible in traces and metrics instead of
// silently distorting timings.
type Injector struct {
	plan *Plan
	reg  *obs.Registry

	mu       sync.Mutex
	fired    []bool         // one obs event per fault
	dropLeft []int          // remaining count-mode drops, per fault
	attempts map[uint64]int // per-(fault,message) attempt counters for Prob drops
}

// New builds an injector for the plan, reporting per-fault events into reg
// (both may be nil: a nil plan injects nothing, a nil registry disables
// events).
func New(p *Plan, reg *obs.Registry) *Injector {
	inj := &Injector{plan: p, reg: reg}
	if p != nil {
		inj.fired = make([]bool, len(p.Faults))
		inj.dropLeft = make([]int, len(p.Faults))
		for i := range p.Faults {
			f := &p.Faults[i]
			if f.Kind == MsgDrop && f.Prob == 0 {
				inj.dropLeft[i] = f.Count
				if f.Count == 0 {
					inj.dropLeft[i] = 1
				}
			}
		}
		inj.attempts = map[uint64]int{}
	}
	return inj
}

// Plan returns the plan the injector runs (nil for an empty injector).
func (in *Injector) Plan() *Plan {
	if in == nil {
		return nil
	}
	return in.plan
}

// emit reports fault i's first activation.
func (in *Injector) emit(i int, fields obs.Fields) {
	if in.fired[i] {
		return
	}
	in.fired[i] = true
	if in.reg == nil {
		return
	}
	f := &in.plan.Faults[i]
	if fields == nil {
		fields = obs.Fields{}
	}
	fields["at"] = f.At
	in.reg.Counter("fault.injected").Inc()
	in.reg.Emit("fault."+string(f.Kind), fields)
}

// ComputeScale returns the compute-time multiplier for an operation launched
// on physical device dev at absolute time at: the product of every active
// straggler factor (1 when none). The factor is sampled at launch time and
// held for the operation (piecewise-constant approximation).
func (in *Injector) ComputeScale(dev int, at float64) float64 {
	if in == nil || in.plan == nil {
		return 1
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	scale := 1.0
	for i := range in.plan.Faults {
		f := &in.plan.Faults[i]
		if f.Kind == Straggler && f.Device == dev && f.active(at) {
			scale *= f.Factor
			in.emit(i, obs.Fields{"device": dev, "factor": f.Factor})
		}
	}
	return scale
}

// LinkFactor returns the bandwidth multiplier for a message entering the
// {from, to} link at absolute time at (1 when no degradation is active).
func (in *Injector) LinkFactor(from, to int, at float64) float64 {
	if in == nil || in.plan == nil {
		return 1
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	scale := 1.0
	for i := range in.plan.Faults {
		f := &in.plan.Faults[i]
		if f.Kind == LinkDegrade && f.onLink(from, to) && f.active(at) {
			scale *= f.Factor
			in.emit(i, obs.Fields{"from": f.From, "to": f.To, "factor": f.Factor})
		}
	}
	return scale
}

// LinkBlocked reports whether the {from, to} link is flapped at absolute
// time at. A finite flap returns the time the link comes back (until);
// a permanent flap (Duration 0) returns permanent = true, which the executor
// surfaces as errdefs.ErrLinkDown.
func (in *Injector) LinkBlocked(from, to int, at float64) (until float64, blocked, permanent bool) {
	if in == nil || in.plan == nil {
		return 0, false, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for i := range in.plan.Faults {
		f := &in.plan.Faults[i]
		if f.Kind != LinkFlap || !f.onLink(from, to) || !f.active(at) {
			continue
		}
		in.emit(i, obs.Fields{"from": f.From, "to": f.To, "duration": f.Duration})
		if f.Duration <= 0 {
			return 0, true, true
		}
		if end := f.At + f.Duration; end > until {
			until, blocked = end, true
		}
	}
	return until, blocked, false
}

// DropAttempt decides whether a message-send attempt on the {from, to} link
// at absolute time at is dropped. key identifies the message (kind, stage,
// micro-batch, half) so probabilistic drops resolve identically on replay:
// the n-th attempt of a given message hashes (seed, fault, key, n). A
// count-mode fault consumes one unit per drop, so retries eventually pass.
func (in *Injector) DropAttempt(from, to int, at float64, key uint64) bool {
	if in == nil || in.plan == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for i := range in.plan.Faults {
		f := &in.plan.Faults[i]
		if f.Kind != MsgDrop || !f.onLink(from, to) || !f.active(at) {
			continue
		}
		if f.Prob > 0 {
			ak := mix(uint64(i), key)
			n := in.attempts[ak]
			in.attempts[ak] = n + 1
			if unit(in.plan.Seed, uint64(i), key, uint64(n)) < f.Prob {
				in.emit(i, obs.Fields{"from": f.From, "to": f.To, "prob": f.Prob})
				return true
			}
			continue
		}
		if in.dropLeft[i] > 0 {
			in.dropLeft[i]--
			in.emit(i, obs.Fields{"from": f.From, "to": f.To, "count": f.Count})
			return true
		}
	}
	return false
}

// Crashed reports whether physical device dev is dead at absolute time at,
// and since when. Once a crash fault's time has passed, the device never
// comes back.
func (in *Injector) Crashed(dev int, at float64) (since float64, dead bool) {
	if in == nil || in.plan == nil {
		return 0, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for i := range in.plan.Faults {
		f := &in.plan.Faults[i]
		if f.Kind == DeviceCrash && f.Device == dev && at >= f.At {
			if !dead || f.At < since {
				since, dead = f.At, true
			}
			in.emit(i, obs.Fields{"device": dev})
		}
	}
	return since, dead
}

// OOMAt reports whether an injected OOM fires for an operation launched on
// physical device dev at absolute time at. Each oom fault fires exactly once
// (the retry after recovery re-launches into a clean allocator).
func (in *Injector) OOMAt(dev int, at float64) bool {
	if in == nil || in.plan == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for i := range in.plan.Faults {
		f := &in.plan.Faults[i]
		if f.Kind == DeviceOOM && f.Device == dev && f.active(at) && !in.fired[i] {
			in.emit(i, obs.Fields{"device": dev})
			return true
		}
	}
	return false
}

// mix combines two words into one map key.
func mix(a, b uint64) uint64 {
	x := a*0x9E3779B97F4A7C15 + b
	x ^= x >> 29
	return x
}

// unit hashes (seed, fault, message, attempt) into [0,1) with a
// splitmix64-style finalizer — the deterministic substitute for a shared
// random stream, immune to query-order effects.
func unit(seed, fault, key, attempt uint64) float64 {
	x := seed
	x = mix(x, fault+1)
	x = mix(x, key+1)
	x = mix(x, attempt+1)
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
