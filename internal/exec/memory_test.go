package exec

import (
	"testing"

	"autopipe/internal/schedule"
)

func ledger(p int, stash int64) *MemoryLedger {
	l := &MemoryLedger{StashBytes: make([]int64, p), StaticBytes: make([]int64, p)}
	for i := range l.StashBytes {
		l.StashBytes[i] = stash
	}
	return l
}

// TestLedgerMatches1F1BInFlightBound: the executed peak of a 1F1B schedule
// equals the closed-form in-flight bound min(m, p-k) stashes per stage —
// the cross-check between the dynamic ledger and the static estimator in
// package memory.
func TestLedgerMatches1F1BInFlightBound(t *testing.T) {
	for _, tc := range []struct{ p, m int }{{2, 4}, {4, 8}, {4, 2}, {8, 16}} {
		s, err := schedule.OneFOneB(tc.p, tc.m)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Run(s, uniformCfg(tc.p, 1, 2))
		if err != nil {
			t.Fatal(err)
		}
		const stash = 1000
		peak, err := ledger(tc.p, stash).PeakUsage(s, r)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < tc.p; k++ {
			want := int64(tc.p-k) * stash
			if m := int64(tc.m) * stash; want > m {
				want = m
			}
			if peak[k] != want {
				t.Errorf("p=%d m=%d stage %d: peak %d, want %d", tc.p, tc.m, k, peak[k], want)
			}
		}
	}
}

// TestLedgerGPipeHoldsEverything: GPipe's peak is all m micro-batches.
func TestLedgerGPipeHoldsEverything(t *testing.T) {
	p, m := 4, 8
	s, _ := schedule.GPipe(p, m)
	r, err := Run(s, uniformCfg(p, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	peak, err := ledger(p, 10).PeakUsage(s, r)
	if err != nil {
		t.Fatal(err)
	}
	for k, got := range peak {
		if got != int64(m)*10 {
			t.Errorf("stage %d: peak %d, want %d", k, got, m*10)
		}
	}
}

// TestLedgerSlicedDoesNotIncreasePeak: the paper's claim that micro-batch
// slicing adds no memory — the halves replace the whole, never exceed it.
func TestLedgerSlicedDoesNotIncreasePeak(t *testing.T) {
	p, m := 4, 8
	base, _ := schedule.OneFOneB(p, m)
	cfg := uniformCfg(p, 1, 3)
	rb, err := Run(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	peakBase, err := ledger(p, 1000).PeakUsage(base, rb)
	if err != nil {
		t.Fatal(err)
	}
	for sliced := 1; sliced <= 3; sliced++ {
		sl, err := schedule.Sliced(p, m, sliced)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := Run(sl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		peak, err := ledger(p, 1000).PeakUsage(sl, rs)
		if err != nil {
			t.Fatal(err)
		}
		for k := range peak {
			if peak[k] > peakBase[k] {
				t.Errorf("sliced=%d stage %d: peak %d exceeds 1F1B peak %d", sliced, k, peak[k], peakBase[k])
			}
		}
	}
}

// TestLedgerInterleavedStashesMore: the interleaved schedule's deeper warmup
// holds more activations than plain 1F1B on the first device — the memory
// pressure behind the paper's Fig. 14(a) OOM.
func TestLedgerInterleavedStashesMore(t *testing.T) {
	p, m, v := 4, 8, 2
	plain, _ := schedule.OneFOneB(p, m)
	rp, err := Run(plain, uniformCfg(p, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	peakPlain, err := ledger(p, 1000).PeakUsage(plain, rp)
	if err != nil {
		t.Fatal(err)
	}

	inter, err := schedule.Interleaved(p, m, v)
	if err != nil {
		t.Fatal(err)
	}
	ri, err := Run(inter, uniformCfg(p*v, 0.5, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Each virtual stage holds half a device's stash.
	il := &MemoryLedger{StashBytes: make([]int64, p*v), StaticBytes: make([]int64, p)}
	for i := range il.StashBytes {
		il.StashBytes[i] = 500
	}
	peakInter, err := il.PeakUsage(inter, ri)
	if err != nil {
		t.Fatal(err)
	}
	if peakInter[0] <= peakPlain[0] {
		t.Errorf("interleaved device-0 peak %d not above 1F1B %d", peakInter[0], peakPlain[0])
	}
}

// TestLedgerStaticBaseline: static bytes are counted into the peak.
func TestLedgerStaticBaseline(t *testing.T) {
	p, m := 2, 2
	s, _ := schedule.OneFOneB(p, m)
	r, err := Run(s, uniformCfg(p, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	l := ledger(p, 100)
	l.StaticBytes = []int64{10000, 20000}
	peak, err := l.PeakUsage(s, r)
	if err != nil {
		t.Fatal(err)
	}
	if peak[0] <= 10000 || peak[1] <= 20000 {
		t.Errorf("static baseline not included: %v", peak)
	}
}

// TestLedgerExactFitBoundary: a device whose stash peak lands exactly on a
// capacity budget is in bounds; one byte more is over. This is the OOM
// boundary the static estimator reasons about — the ledger must not
// over-count by even a byte.
func TestLedgerExactFitBoundary(t *testing.T) {
	p, m := 4, 8
	s, _ := schedule.OneFOneB(p, m)
	r, err := Run(s, uniformCfg(p, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	const stash = 1000
	peak, err := ledger(p, stash).PeakUsage(s, r)
	if err != nil {
		t.Fatal(err)
	}
	// Device 0 holds all p in-flight stashes in 1F1B: capacity p*stash fits
	// exactly, capacity p*stash-1 would OOM.
	budget := int64(p) * stash
	if peak[0] != budget {
		t.Fatalf("device-0 peak %d, want exact fit %d", peak[0], budget)
	}
	if peak[0] > budget {
		t.Error("exact-fit schedule reported over budget")
	}
	if !(peak[0] > budget-1) {
		t.Error("one-byte-smaller budget should OOM")
	}
}

// TestLedgerFreesBeforeAllocsAtEqualTime: when a backward's release and the
// next forward's allocation land on the same timestamp, the free applies
// first, so the back-to-back pair never double-counts — the peak stays at one
// stash, not two.
func TestLedgerFreesBeforeAllocsAtEqualTime(t *testing.T) {
	s := &schedule.Schedule{Name: "handmade", Devices: 1, VirtStages: 1, NumMicro: 2, DeviceOf: []int{0}}
	r := &Result{Traces: [][]OpTrace{{
		{Op: schedule.Op{Kind: schedule.Fwd, Virt: 0, Micro: 0, Half: -1}, Start: 0, End: 1},
		{Op: schedule.Op{Kind: schedule.Bwd, Virt: 0, Micro: 0, Half: -1}, Start: 1, End: 2},
		{Op: schedule.Op{Kind: schedule.Fwd, Virt: 0, Micro: 1, Half: -1}, Start: 2, End: 3},
		{Op: schedule.Op{Kind: schedule.Bwd, Virt: 0, Micro: 1, Half: -1}, Start: 3, End: 4},
	}}}
	l := &MemoryLedger{StashBytes: []int64{1000}, StaticBytes: []int64{0}}
	peak, err := l.PeakUsage(s, r)
	if err != nil {
		t.Fatal(err)
	}
	if peak[0] != 1000 {
		t.Errorf("peak %d, want 1000 — free at t=2 must apply before the alloc at t=2", peak[0])
	}
	tl, err := l.Timeline(s, r)
	if err != nil {
		t.Fatal(err)
	}
	last := tl[0][len(tl[0])-1]
	if last.Bytes != 0 {
		t.Errorf("timeline does not return to static footprint: %+v", last)
	}
	for i := 1; i < len(tl[0]); i++ {
		if tl[0][i].At < tl[0][i-1].At {
			t.Errorf("timeline not time-sorted at %d: %+v", i, tl[0])
		}
	}
}

// TestLedgerDetectsLeak: a trace whose backward never ran leaves activations
// resident — the ledger reports it instead of silently under-counting.
func TestLedgerDetectsLeak(t *testing.T) {
	s := &schedule.Schedule{Name: "leaky", Devices: 1, VirtStages: 1, NumMicro: 1, DeviceOf: []int{0}}
	r := &Result{Traces: [][]OpTrace{{
		{Op: schedule.Op{Kind: schedule.Fwd, Virt: 0, Micro: 0, Half: -1}, Start: 0, End: 1},
	}}}
	l := &MemoryLedger{StashBytes: []int64{1000}, StaticBytes: []int64{0}}
	if _, err := l.PeakUsage(s, r); err == nil {
		t.Error("PeakUsage accepted a leaked stash")
	}
	if _, err := l.Timeline(s, r); err == nil {
		t.Error("Timeline accepted a leaked stash")
	}
}

func TestLedgerRejectsMismatch(t *testing.T) {
	s, _ := schedule.OneFOneB(4, 4)
	r, err := Run(s, uniformCfg(4, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ledger(3, 10).PeakUsage(s, r); err == nil {
		t.Error("want error for mismatched stash table")
	}
}
