package exec

import (
	"errors"
	"math"
	"testing"

	"autopipe/internal/config"
	"autopipe/internal/errdefs"
	"autopipe/internal/fault"
	"autopipe/internal/schedule"
)

func mustRun(t *testing.T, p, m int, cfg Config) *Result {
	t.Helper()
	s, err := schedule.OneFOneB(p, m)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestFaultStragglerSlowsIteration: an active straggler multiplies the
// device's compute and therefore the makespan; outside its window timings are
// untouched.
func TestFaultStragglerSlowsIteration(t *testing.T) {
	cfg := uniformCfg(2, 1, 2)
	clean := mustRun(t, 2, 4, cfg)

	cfg.Faults = fault.New(&fault.Plan{Faults: []fault.Fault{
		{Kind: fault.Straggler, At: 0, Device: 1, Factor: 2},
	}}, nil)
	slow := mustRun(t, 2, 4, cfg)
	if slow.IterTime <= clean.IterTime*1.5 {
		t.Errorf("straggler barely slowed: %.3f vs clean %.3f", slow.IterTime, clean.IterTime)
	}

	// Window entirely in the past relative to Start: no effect.
	cfg.Faults = fault.New(&fault.Plan{Faults: []fault.Fault{
		{Kind: fault.Straggler, At: 0, Duration: 5, Device: 1, Factor: 2},
	}}, nil)
	cfg.Start = 100
	late := mustRun(t, 2, 4, cfg)
	if late.IterTime != clean.IterTime {
		t.Errorf("expired straggler still active: %.6f vs %.6f", late.IterTime, clean.IterTime)
	}
}

// TestFaultLinkDegradeStretchesTransfers: halving link bandwidth doubles
// serialization time for cross-stage messages.
func TestFaultLinkDegradeStretchesTransfers(t *testing.T) {
	cfg := uniformCfg(2, 0.001, 0.002)
	cfg.CommBytes = 1e9
	cfg.Network = config.Network{Bandwidth: 1e9, Latency: 0} // 1 s per transfer
	clean := mustRun(t, 2, 2, cfg)

	cfg.Faults = fault.New(&fault.Plan{Faults: []fault.Fault{
		{Kind: fault.LinkDegrade, At: 0, From: 0, To: 1, Factor: 0.5},
	}}, nil)
	slow := mustRun(t, 2, 2, cfg)
	if slow.IterTime < clean.IterTime+0.9 {
		t.Errorf("degraded link: %.3f vs clean %.3f", slow.IterTime, clean.IterTime)
	}
}

// TestFaultLinkFlapDefersMessages: a finite flap delays the message until the
// link returns; a permanent flap is a typed link-down failure.
func TestFaultLinkFlapDefersMessages(t *testing.T) {
	cfg := uniformCfg(2, 0.1, 0.2)
	cfg.CommBytes = 1000
	cfg.Network = config.Network{Bandwidth: 1e9, Latency: 0}
	clean := mustRun(t, 2, 2, cfg)

	cfg.Faults = fault.New(&fault.Plan{Faults: []fault.Fault{
		{Kind: fault.LinkFlap, At: 0, Duration: 2, From: 0, To: 1},
	}}, nil)
	r := mustRun(t, 2, 2, cfg)
	if r.IterTime < 2 {
		t.Errorf("flapped link did not defer first transfer: iter %.3f", r.IterTime)
	}
	if r.IterTime < clean.IterTime {
		t.Errorf("flap shortened iteration: %.3f vs %.3f", r.IterTime, clean.IterTime)
	}

	cfg.Faults = fault.New(&fault.Plan{Faults: []fault.Fault{
		{Kind: fault.LinkFlap, At: 0, From: 0, To: 1}, // permanent
	}}, nil)
	s, _ := schedule.OneFOneB(2, 2)
	_, err := Run(s, cfg)
	if !errors.Is(err, errdefs.ErrLinkDown) {
		t.Fatalf("permanent flap: err = %v, want ErrLinkDown", err)
	}
	var down *fault.LinkDownError
	if !errors.As(err, &down) || down.From != 0 || down.To != 1 {
		t.Errorf("link-down detail: %+v", down)
	}
}

// TestFaultMsgDropIsTransientAndConsumed: a count-mode drop fails the run
// with a typed transient error; re-running with the same (stateful) injector
// succeeds once the budget is spent.
func TestFaultMsgDropIsTransientAndConsumed(t *testing.T) {
	cfg := uniformCfg(2, 1, 2)
	cfg.CommBytes = 1000
	inj := fault.New(&fault.Plan{Faults: []fault.Fault{
		{Kind: fault.MsgDrop, At: 0, From: 0, To: 1, Count: 1},
	}}, nil)
	cfg.Faults = inj

	s, _ := schedule.OneFOneB(2, 2)
	_, err := Run(s, cfg)
	if !errors.Is(err, errdefs.ErrTransient) {
		t.Fatalf("dropped message: err = %v, want ErrTransient", err)
	}
	if _, err := Run(s, cfg); err != nil {
		t.Fatalf("retry after consumed drop failed: %v", err)
	}
}

// TestFaultDeviceCrashIsTyped: an op launched on a crashed device fails with
// ErrDeviceLost carrying the physical id through DeviceMap.
func TestFaultDeviceCrashIsTyped(t *testing.T) {
	cfg := uniformCfg(2, 1, 2)
	cfg.DeviceMap = []int{4, 7} // stage 1 lives on physical device 7
	cfg.Faults = fault.New(&fault.Plan{Faults: []fault.Fault{
		{Kind: fault.DeviceCrash, At: 0.5, Device: 7},
	}}, nil)
	s, _ := schedule.OneFOneB(2, 4)
	_, err := Run(s, cfg)
	if !errors.Is(err, errdefs.ErrDeviceLost) {
		t.Fatalf("crash: err = %v, want ErrDeviceLost", err)
	}
	var lost *fault.DeviceLostError
	if !errors.As(err, &lost) || lost.Device != 7 {
		t.Errorf("crash detail: %+v, want physical device 7", lost)
	}
}

// TestFaultOOMFiresOnce: an injected OOM is typed and consumed, so the retry
// completes.
func TestFaultOOMFiresOnce(t *testing.T) {
	cfg := uniformCfg(2, 1, 2)
	cfg.Faults = fault.New(&fault.Plan{Faults: []fault.Fault{
		{Kind: fault.DeviceOOM, At: 0, Device: 0},
	}}, nil)
	s, _ := schedule.OneFOneB(2, 2)
	_, err := Run(s, cfg)
	if !errors.Is(err, errdefs.ErrOOM) {
		t.Fatalf("injected OOM: err = %v, want ErrOOM", err)
	}
	if _, err := Run(s, cfg); err != nil {
		t.Fatalf("retry after injected OOM failed: %v", err)
	}
}

// TestFaultedRunIsDeterministic: same plan, same seed, fresh injectors —
// byte-identical traces.
func TestFaultedRunIsDeterministic(t *testing.T) {
	plan := &fault.Plan{Seed: 5, Faults: []fault.Fault{
		{Kind: fault.Straggler, At: 0.5, Duration: 3, Device: 0, Factor: 1.7},
		{Kind: fault.LinkDegrade, At: 1, Duration: 2, From: 0, To: 1, Factor: 0.4},
	}}
	run := func() *Result {
		cfg := uniformCfg(2, 0.3, 0.6)
		cfg.CommBytes = 1e8
		cfg.Network = config.Network{Bandwidth: 1e9, Latency: 1e-4}
		cfg.Jitter = 0.02
		cfg.Seed = 9
		cfg.Faults = fault.New(plan, nil)
		return mustRun(t, 2, 6, cfg)
	}
	a, b := run(), run()
	if a.IterTime != b.IterTime || a.Startup != b.Startup {
		t.Fatalf("makespans diverged: %v vs %v", a.IterTime, b.IterTime)
	}
	for d := range a.Traces {
		for i := range a.Traces[d] {
			if a.Traces[d][i] != b.Traces[d][i] {
				t.Fatalf("trace diverged at dev %d op %d", d, i)
			}
		}
	}
}

// TestConfigValidate: structural problems are ErrBadConfig before execution.
func TestConfigValidate(t *testing.T) {
	base := uniformCfg(2, 1, 2)
	cases := map[string]func(*Config){
		"mismatched vectors": func(c *Config) { c.VirtBwd = c.VirtBwd[:1] },
		"negative stage":     func(c *Config) { c.VirtFwd[0] = -1 },
		"NaN stage":          func(c *Config) { c.VirtBwd[1] = math.NaN() },
		"negative payload":   func(c *Config) { c.CommBytes = -1 },
		"zero bandwidth":     func(c *Config) { c.Network.Bandwidth = 0 },
		"negative bandwidth": func(c *Config) { c.Network.Bandwidth = -5 },
		"negative latency":   func(c *Config) { c.Network.Latency = -1 },
		"negative overhead":  func(c *Config) { c.KernelOverhead = -1e-6 },
		"negative jitter":    func(c *Config) { c.Jitter = -0.1 },
		"negative start":     func(c *Config) { c.Start = -2 },
	}
	s, _ := schedule.OneFOneB(2, 2)
	for name, mutate := range cases {
		cfg := base
		cfg.VirtFwd = append([]float64(nil), base.VirtFwd...)
		cfg.VirtBwd = append([]float64(nil), base.VirtBwd...)
		mutate(&cfg)
		if err := cfg.Validate(); !errors.Is(err, errdefs.ErrBadConfig) {
			t.Errorf("%s: Validate = %v, want ErrBadConfig", name, err)
		}
		if _, err := Run(s, cfg); !errors.Is(err, errdefs.ErrBadConfig) {
			t.Errorf("%s: Run = %v, want ErrBadConfig", name, err)
		}
	}
	// A wrong-length device map is rejected too.
	cfg := uniformCfg(2, 1, 2)
	cfg.DeviceMap = []int{0}
	if _, err := Run(s, cfg); !errors.Is(err, errdefs.ErrBadConfig) {
		t.Errorf("short device map: %v, want ErrBadConfig", err)
	}
}
