package exec

import (
	"fmt"
	"math"
	"strings"

	"autopipe/internal/config"
	"autopipe/internal/errdefs"
	"autopipe/internal/schedule"
	"autopipe/internal/sim"
)

// Sanitizer is the dynamic half of the schedule-correctness tier: a
// happens-before checker threaded through the discrete-event loop. The static
// half (schedule.CheckDeadlock, run by the scheddata analyzer over every
// checked-in golden) topologically sorts the schedule dependency model; the
// Sanitizer replays the *executed* trace against the very same
// schedule.DepGraph edges, op by op, as Run records them:
//
//   - no op starts before every schedule dependency has completed;
//   - each device's ops run in issue order on a monotone simulated clock;
//   - link transfers respect per-direction (full-duplex) serialization and
//     the latency lower bound, plus the bandwidth capacity floor when no
//     fault plan is rescaling links;
//   - the activation-stash ledger never goes negative and sums to zero at
//     iteration end.
//
// Any violation is an executor invariant bug, not a user error, so it
// surfaces as an error wrapping errdefs.ErrInternal naming the offending op
// and its dependency chain. Enable it with Config.Sanitize (the CLIs'
// -sanitize flag); the package's tests force it on for every execution.
type Sanitizer struct {
	s    *schedule.Schedule
	deps *schedule.DepGraph

	net      config.Network
	overhead float64
	fwd, bwd []float64
	// faulty relaxes the compute and bandwidth floors: an active fault plan
	// rescales both, so only fault-invariant bounds (ordering, latency,
	// ledger balance) stay enforceable.
	faulty bool

	seen     []bool
	doneAt   []sim.Time
	nextIdx  []int
	lastEnd  []sim.Time
	linkFree map[[2]int]sim.Time
	// credit is the per-virtual-stage activation-stash balance in micro-batch
	// units: a forward deposits its stash (half ops deposit half), a backward
	// consumes one full micro-batch stash.
	credit   []float64
	executed int
}

// testSanitize force-enables the sanitizer for every Run in this process; the
// exec and train test binaries set it so all executor tests run fully checked.
var testSanitize bool

// newSanitizer builds the checker for one execution. Building the dependency
// graph can fail with errdefs.ErrBadConfig on a structurally broken schedule
// (the same defects CheckDeadlock rejects).
func newSanitizer(s *schedule.Schedule, cfg Config) (*Sanitizer, error) {
	g, err := s.Dependencies()
	if err != nil {
		return nil, err
	}
	return &Sanitizer{
		s:        s,
		deps:     g,
		net:      cfg.Network,
		overhead: cfg.KernelOverhead,
		fwd:      cfg.VirtFwd,
		bwd:      cfg.VirtBwd,
		faulty:   cfg.Faults != nil,
		seen:     make([]bool, g.NumOps()),
		doneAt:   make([]sim.Time, g.NumOps()),
		nextIdx:  make([]int, s.Devices),
		lastEnd:  make([]sim.Time, s.Devices),
		linkFree: map[[2]int]sim.Time{},
		credit:   make([]float64, s.VirtStages),
	}, nil
}

// reset returns the checker to its pre-run state for another execution of
// the same schedule: the dependency graph and state arrays are reused, only
// cleared. cfg carries the (possibly different) timing model of the new run.
func (z *Sanitizer) reset(cfg Config) {
	z.net = cfg.Network
	z.overhead = cfg.KernelOverhead
	z.fwd, z.bwd = cfg.VirtFwd, cfg.VirtBwd
	z.faulty = cfg.Faults != nil
	clear(z.seen)
	clear(z.doneAt)
	clear(z.nextIdx)
	clear(z.lastEnd)
	clear(z.linkFree)
	clear(z.credit)
	z.executed = 0
}

// timeLess reports a < b beyond floating-point tolerance (absolute plus
// relative, so second-scale and nanosecond-scale clocks both compare sanely).
func timeLess(a, b sim.Time) bool {
	const eps = 1e-9
	return a.Seconds() < b.Seconds()-eps*(1+math.Abs(b.Seconds()))
}

func (z *Sanitizer) violation(format string, args ...any) error {
	return fmt.Errorf("%w: sanitizer: "+format, append([]any{errdefs.ErrInternal}, args...)...)
}

// opName renders one op with its device for violation messages.
func (z *Sanitizer) opName(id int) string {
	r := z.deps.Ref(id)
	return fmt.Sprintf("%v(dev %d)", z.deps.Op(id), r.Device)
}

// chain renders the op's executed dependency chain — each hop the
// latest-finishing predecessor — the context a happens-before violation is
// debugged with.
func (z *Sanitizer) chain(id int) string {
	parts := []string{z.opName(id)}
	for hop := 0; hop < 4; hop++ {
		best := -1
		for _, p := range z.deps.Preds(id) {
			if z.seen[p] && (best < 0 || z.doneAt[p] > z.doneAt[best]) {
				best = p
			}
		}
		if best < 0 {
			break
		}
		parts = append(parts, z.opName(best))
		id = best
	}
	return strings.Join(parts, " <- ")
}

// checkOp validates one recorded op against the dependency model and advances
// the checker state. Run calls it immediately after appending the trace.
func (z *Sanitizer) checkOp(tr OpTrace) error {
	d := tr.Device
	if d < 0 || d >= len(z.nextIdx) {
		return z.violation("trace names device %d, schedule has %d", d, len(z.nextIdx))
	}
	i := z.nextIdx[d]
	if i >= len(z.s.Ops[d]) {
		return z.violation("device %d executed %v beyond its %d-op issue order", d, tr.Op, len(z.s.Ops[d]))
	}
	if z.s.Ops[d][i] != tr.Op {
		return z.violation("device %d op %d: executed %v, schedule issues %v", d, i, tr.Op, z.s.Ops[d][i])
	}
	id := z.deps.ID(schedule.OpRef{Device: d, Index: i})
	start, end := sim.Time(tr.Start), sim.Time(tr.End)

	if math.IsNaN(tr.Start) || math.IsNaN(tr.End) || timeLess(start, 0) {
		return z.violation("%s carries a NaN or negative time [%g, %g]", z.opName(id), tr.Start, tr.End)
	}
	if timeLess(end, start) {
		return z.violation("clock ran backwards: %s ends at %g before its start %g", z.opName(id), tr.End, tr.Start)
	}
	if timeLess(start, z.lastEnd[d]+sim.Time(z.overhead)) {
		return z.violation("device %d clock not monotone: %s starts at %g before the previous op's end %g (+%g overhead)",
			d, z.opName(id), tr.Start, z.lastEnd[d].Seconds(), z.overhead)
	}
	for _, p := range z.deps.Preds(id) {
		if !z.seen[p] {
			return z.violation("%s started before dependency %s executed at all; chain %s",
				z.opName(id), z.opName(p), z.chain(id))
		}
		if timeLess(start, z.doneAt[p]) {
			return z.violation("%s starts at %g before dependency %s completes at %g; chain %s",
				z.opName(id), tr.Start, z.opName(p), z.doneAt[p].Seconds(), z.chain(id))
		}
	}
	if tr.InputArrive >= 0 {
		if timeLess(sim.Time(tr.InputArrive), sim.Time(tr.InputReady)) {
			return z.violation("%s input arrived at %g before it was ready at %g", z.opName(id), tr.InputArrive, tr.InputReady)
		}
		if timeLess(start, sim.Time(tr.InputArrive)+sim.Time(z.overhead)) {
			return z.violation("%s starts at %g before its input arrives at %g", z.opName(id), tr.Start, tr.InputArrive)
		}
	}
	if !z.faulty {
		base := z.fwd[tr.Op.Virt]
		if tr.Op.Kind == schedule.Bwd {
			base = z.bwd[tr.Op.Virt]
		}
		if tr.Op.Half >= 0 {
			base /= 2
		}
		if timeLess(end-start, sim.Time(base)) {
			return z.violation("%s ran for %g s, below its %g s compute floor", z.opName(id), tr.End-tr.Start, base)
		}
	}
	v := tr.Op.Virt
	if tr.Op.Kind == schedule.Fwd {
		if tr.Op.Half >= 0 {
			z.credit[v] += 0.5
		} else {
			z.credit[v]++
		}
	} else {
		z.credit[v]--
		if z.credit[v] < -1e-6 {
			return z.violation("memory ledger went negative: %s releases a stash virtual stage %d never deposited (balance %+g)",
				z.opName(id), v, z.credit[v])
		}
	}

	z.seen[id] = true
	z.doneAt[id] = end
	z.lastEnd[d] = end
	z.nextIdx[d] = i + 1
	z.executed++
	return nil
}

// msgName renders a transfer's identity for violation messages. It is called
// only on violation paths, so the clean-trace fast path (every message of
// every sanitized execution) formats nothing.
func msgName(m MsgTrace) string {
	return fmt.Sprintf("%v message virt %d micro %d half %d (%d->%d)", m.Kind, m.Virt, m.Micro, m.Half, m.From, m.To)
}

// checkMsg validates one recorded transfer: payload readiness, per-direction
// (full-duplex) link serialization, the latency floor, and — outside fault
// plans — the bandwidth capacity floor.
func (z *Sanitizer) checkMsg(m MsgTrace) error {
	ready, start, free, arrive := sim.Time(m.Ready), sim.Time(m.Start), sim.Time(m.Free), sim.Time(m.Arrive)
	if timeLess(arrive, ready) {
		return z.violation("%s arrives at %g before its payload is ready at %g", msgName(m), m.Arrive, m.Ready)
	}
	if m.From == m.To {
		return nil // same-device hop occupies no link
	}
	if timeLess(start, ready) {
		return z.violation("%s entered the link at %g before its payload was ready at %g", msgName(m), m.Start, m.Ready)
	}
	key := [2]int{m.From, m.To}
	if timeLess(start, z.linkFree[key]) {
		return z.violation("link %d->%d overlap: %s starts at %g while the link serializes until %g",
			m.From, m.To, msgName(m), m.Start, z.linkFree[key].Seconds())
	}
	if timeLess(arrive-free, sim.Time(z.net.Latency)) {
		return z.violation("%s beat the %g s latency floor (free %g, arrive %g)", msgName(m), z.net.Latency, m.Free, m.Arrive)
	}
	if !z.faulty && z.net.Bandwidth > 0 {
		floor := sim.Time(float64(sim.Bytes(m.Bytes).Int64()) / z.net.Bandwidth)
		if timeLess(free-start, floor) {
			return z.violation("%s serialized %d bytes in %g s, below the %g s capacity floor",
				msgName(m), m.Bytes, m.Free-m.Start, floor.Seconds())
		}
	}
	if z.linkFree[key] < free {
		z.linkFree[key] = free
	}
	return nil
}

// finish validates end-of-iteration invariants: every scheduled op executed
// and every virtual stage's activation-stash ledger balances to zero.
func (z *Sanitizer) finish() error {
	if z.executed != z.deps.NumOps() {
		for id := 0; id < z.deps.NumOps(); id++ {
			if !z.seen[id] {
				return z.violation("%d of %d ops never executed, first missing %s",
					z.deps.NumOps()-z.executed, z.deps.NumOps(), z.opName(id))
			}
		}
	}
	for v, c := range z.credit {
		if math.Abs(c) > 1e-6 {
			return z.violation("memory ledger for virtual stage %d ends at %+g micro-batch stashes, want 0", v, c)
		}
	}
	return nil
}

// SanitizeResult replays a finished execution through the same happens-before
// checks Run applies live, so a Result can be audited (or deliberately
// tampered with, in tests) after the fact. Ops are replayed in dependency
// order — the order the event loop must have executed them in — then every
// transfer in recorded order, then the end-of-iteration invariants. A clean
// trace returns nil; any violation wraps errdefs.ErrInternal.
func SanitizeResult(s *schedule.Schedule, cfg Config, r *Result) error {
	z, err := newSanitizer(s, cfg)
	if err != nil {
		return err
	}
	if len(r.Traces) != s.Devices {
		return z.violation("result has %d device traces, schedule has %d devices", len(r.Traces), s.Devices)
	}
	remaining := 0
	for _, traces := range r.Traces {
		remaining += len(traces)
	}
	for remaining > 0 {
		progressed := false
		for d := range r.Traces {
			for z.nextIdx[d] < len(r.Traces[d]) && z.ready(d, z.nextIdx[d]) {
				if err := z.checkOp(r.Traces[d][z.nextIdx[d]]); err != nil {
					return err
				}
				remaining--
				progressed = true
			}
		}
		if !progressed {
			for d := range r.Traces {
				if i := z.nextIdx[d]; i < len(r.Traces[d]) {
					return z.violation("replay stuck: %v (device %d) waits on a dependency the trace never completes",
						r.Traces[d][i].Op, d)
				}
			}
			break
		}
	}
	for _, m := range r.Msgs {
		if err := z.checkMsg(m); err != nil {
			return err
		}
	}
	return z.finish()
}

// ready reports whether every dependency of device d's op i has been replayed.
func (z *Sanitizer) ready(d, i int) bool {
	if i >= len(z.s.Ops[d]) {
		return true // out-of-range traces fall through to checkOp's report
	}
	for _, p := range z.deps.Preds(z.deps.ID(schedule.OpRef{Device: d, Index: i})) {
		if !z.seen[p] {
			return false
		}
	}
	return true
}
