package exec

import (
	"math"
	"testing"

	"autopipe/internal/config"
	"autopipe/internal/schedule"
)

func uniformCfg(p int, f, b float64) Config {
	fs := make([]float64, p)
	bs := make([]float64, p)
	for i := range fs {
		fs[i], bs[i] = f, b
	}
	return Config{
		VirtFwd: fs, VirtBwd: bs,
		CommBytes: 0,
		Network:   config.Network{Bandwidth: 1e12, Latency: 0},
	}
}

func almostEq(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b)) }

func TestRunOneFOneBMatchesClassicMakespan(t *testing.T) {
	for _, tc := range []struct{ p, m int }{{1, 4}, {2, 4}, {4, 8}, {8, 16}} {
		s, err := schedule.OneFOneB(tc.p, tc.m)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Run(s, uniformCfg(tc.p, 1, 2))
		if err != nil {
			t.Fatal(err)
		}
		want := float64(tc.m+tc.p-1) * 3
		if !almostEq(r.IterTime, want) {
			t.Errorf("p=%d m=%d: IterTime = %v, want %v", tc.p, tc.m, r.IterTime, want)
		}
	}
}

func TestRunGPipeSlowerThanOneFOneBAtEqualLoad(t *testing.T) {
	// With uniform stages and zero comm GPipe and 1F1B have the same
	// fill/drain makespan, but GPipe must hold all activations; its makespan
	// must never be smaller.
	p, m := 4, 16
	g, _ := schedule.GPipe(p, m)
	o, _ := schedule.OneFOneB(p, m)
	rg, err := Run(g, uniformCfg(p, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	ro, err := Run(o, uniformCfg(p, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if rg.IterTime < ro.IterTime-1e-9 {
		t.Errorf("GPipe %v faster than 1F1B %v", rg.IterTime, ro.IterTime)
	}
}

func TestRunStartupIsFirstMicroBatchArrival(t *testing.T) {
	p, m := 4, 8
	s, _ := schedule.OneFOneB(p, m)
	cfg := uniformCfg(p, 1, 2)
	cfg.CommBytes = 1e6
	cfg.Network = config.Network{Bandwidth: 1e8, Latency: 0.001}
	r, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hop := cfg.Network.Latency + 1e6/1e8
	want := 3*1 + 3*hop
	if !almostEq(r.Startup, want) {
		t.Errorf("Startup = %v, want %v", r.Startup, want)
	}
}

func TestRunSlicedHalvesStartup(t *testing.T) {
	// The headline Slicer claim: splitting the leading micro-batches halves
	// the startup overhead (compute part) of the pipeline.
	p, m := 4, 8
	plain, _ := schedule.OneFOneB(p, m)
	sliced, err := schedule.Sliced(p, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := uniformCfg(p, 1, 2)
	rp, err := Run(plain, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(sliced, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(rp.Startup, 3) {
		t.Fatalf("plain startup = %v, want 3", rp.Startup)
	}
	if !almostEq(rs.Startup, 1.5) {
		t.Errorf("sliced startup = %v, want 1.5 (half of plain)", rs.Startup)
	}
	if rs.IterTime > rp.IterTime+1e-9 {
		t.Errorf("sliced iteration %v slower than plain %v", rs.IterTime, rp.IterTime)
	}
}

func TestRunSlicedPreservesWorkAndFinishes(t *testing.T) {
	p, m := 4, 8
	for sliced := 0; sliced <= m; sliced++ {
		s, err := schedule.Sliced(p, m, sliced)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("sliced=%d: %v", sliced, err)
		}
		r, err := Run(s, uniformCfg(p, 1, 2))
		if err != nil {
			t.Fatalf("sliced=%d: %v", sliced, err)
		}
		// Total busy time is invariant: halves add up to the same compute.
		var busy float64
		for _, b := range r.Busy {
			busy += b
		}
		if want := float64(p*m) * 3; !almostEq(busy, want) {
			t.Errorf("sliced=%d: total busy %v, want %v", sliced, busy, want)
		}
	}
}

func TestRunInterleavedHalvesStartup(t *testing.T) {
	// Megatron's interleaved schedule with v=2 chunks halves the startup
	// overhead: each warmup hop computes half a stage.
	p, m := 4, 8
	plain, _ := schedule.OneFOneB(p, m)
	inter, err := schedule.Interleaved(p, m, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfgPlain := uniformCfg(p, 1, 2)
	rp, err := Run(plain, cfgPlain)
	if err != nil {
		t.Fatal(err)
	}
	// Each of the 8 virtual stages carries half a stage of compute.
	cfgInter := uniformCfg(2*p, 0.5, 1)
	ri, err := Run(inter, cfgInter)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(ri.Startup, rp.Startup/2) {
		t.Errorf("interleaved startup = %v, want %v (half of plain %v)", ri.Startup, rp.Startup/2, rp.Startup)
	}
}

func TestRunInterleavedRequiresDivisibility(t *testing.T) {
	if _, err := schedule.Interleaved(4, 6, 2); err == nil {
		t.Error("want error for micro-batches not divisible by depth")
	}
	if _, err := schedule.Interleaved(4, 8, 1); err == nil {
		t.Error("want error for single chunk")
	}
}

func TestRunKernelOverheadAddsStableBias(t *testing.T) {
	// The executor charges launch overhead the analytic simulator omits —
	// the mechanism behind the Fig. 11 gap. The bias must be positive and
	// grow with the op count.
	p, m := 4, 8
	s, _ := schedule.OneFOneB(p, m)
	base, err := Run(s, uniformCfg(p, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := uniformCfg(p, 1, 2)
	cfg.KernelOverhead = 0.01
	biased, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if biased.IterTime <= base.IterTime {
		t.Errorf("overheads did not increase iteration time: %v vs %v", biased.IterTime, base.IterTime)
	}
}

func TestRunJitterIsDeterministic(t *testing.T) {
	p, m := 4, 8
	s, _ := schedule.OneFOneB(p, m)
	cfg := uniformCfg(p, 1, 2)
	cfg.Jitter = 0.05
	cfg.Seed = 42
	r1, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.IterTime != r2.IterTime {
		t.Errorf("same seed gave different results: %v vs %v", r1.IterTime, r2.IterTime)
	}
	cfg.Seed = 43
	r3, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r3.IterTime == r1.IterTime {
		t.Errorf("different seeds gave identical jitter")
	}
}

func TestRunDependencyOrderHolds(t *testing.T) {
	// No forward may start before the matching forward upstream ended, and
	// no backward before the matching backward downstream ended.
	p, m := 4, 8
	s, _ := schedule.OneFOneB(p, m)
	cfg := uniformCfg(p, 1, 2)
	cfg.CommBytes = 1 << 20
	cfg.Network = config.Network{Bandwidth: 1e9, Latency: 1e-4}
	r, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		virt, micro int
		kind        schedule.OpKind
	}
	end := map[key]float64{}
	for _, traces := range r.Traces {
		for _, tr := range traces {
			end[key{tr.Op.Virt, tr.Op.Micro, tr.Op.Kind}] = tr.End
		}
	}
	for _, traces := range r.Traces {
		for _, tr := range traces {
			if tr.Op.Kind == schedule.Fwd && tr.Op.Virt > 0 {
				if up := end[key{tr.Op.Virt - 1, tr.Op.Micro, schedule.Fwd}]; tr.Start < up {
					t.Errorf("%v starts at %v before upstream fwd ended at %v", tr.Op, tr.Start, up)
				}
			}
			if tr.Op.Kind == schedule.Bwd && tr.Op.Virt < s.VirtStages-1 {
				if down := end[key{tr.Op.Virt + 1, tr.Op.Micro, schedule.Bwd}]; tr.Start < down {
					t.Errorf("%v starts at %v before downstream bwd ended at %v", tr.Op, tr.Start, down)
				}
			}
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	s, _ := schedule.OneFOneB(4, 8)
	_, err := Run(s, Config{VirtFwd: []float64{1}, VirtBwd: []float64{1}})
	if err == nil {
		t.Error("want error for mismatched stage times")
	}
}

func TestUtilizationBounded(t *testing.T) {
	s, _ := schedule.OneFOneB(4, 8)
	r, err := Run(s, uniformCfg(4, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	for d, u := range r.Utilization() {
		if u <= 0 || u > 1+1e-9 {
			t.Errorf("device %d utilization %v out of (0,1]", d, u)
		}
	}
}
