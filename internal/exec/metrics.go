package exec

import (
	"fmt"
	"sort"

	"autopipe/internal/errdefs"
	"autopipe/internal/obs"
	"autopipe/internal/schedule"
)

// DeviceMetrics decomposes one device's iteration timeline. The fields
// tile the makespan exactly:
//
//	Busy + WarmupBubble + SteadyBubble + CooldownBubble = IterTime
//
// Bubbles are attributed by wall-clock windows: the warmup window runs from
// t=0 to the start of the device's first steady-phase op, the steady window
// to the end of its last steady-phase op, and the cooldown window to the end
// of the iteration (see schedule.PhasesOf for the op classification).
// CommWait and DepWait further split the device's cross-stage input stalls:
// CommWait is idle time while the needed payload was queued on or crossing a
// link, DepWait is idle time while the producer was still computing it.
type DeviceMetrics struct {
	Device         int     `json:"device"`
	Busy           float64 `json:"busySeconds"`
	WarmupBubble   float64 `json:"warmupBubbleSeconds"`
	SteadyBubble   float64 `json:"steadyBubbleSeconds"`
	CooldownBubble float64 `json:"cooldownBubbleSeconds"`
	CommWait       float64 `json:"commWaitSeconds"`
	DepWait        float64 `json:"depWaitSeconds"`
	Utilization    float64 `json:"utilization"`
}

// Bubble returns the device's total idle time.
func (d DeviceMetrics) Bubble() float64 {
	return d.WarmupBubble + d.SteadyBubble + d.CooldownBubble
}

// LinkMetrics aggregates traffic over one directed device-to-device link.
type LinkMetrics struct {
	From      int     `json:"from"`
	To        int     `json:"to"`
	Messages  int     `json:"messages"`
	Bytes     int64   `json:"bytes"`
	BusyTime  float64 `json:"busySeconds"`
	Occupancy float64 `json:"occupancy"`
}

// Metrics is the full observability decomposition of an executed schedule.
type Metrics struct {
	IterTime float64         `json:"iterTimeSeconds"`
	Startup  float64         `json:"startupSeconds"`
	Devices  []DeviceMetrics `json:"devices"`
	Links    []LinkMetrics   `json:"links"`
}

// BubbleFraction returns total idle time over total device-time — the
// pipeline's aggregate bubble ratio.
func (m *Metrics) BubbleFraction() float64 {
	if m.IterTime <= 0 || len(m.Devices) == 0 {
		return 0
	}
	var idle float64
	for _, d := range m.Devices {
		idle += d.Bubble()
	}
	return idle / (m.IterTime * float64(len(m.Devices)))
}

// Metrics computes the bubble decomposition with phase windows derived from
// the executed trace itself (each device's own warmup/steady/cooldown op
// spans).
func (r *Result) Metrics() (*Metrics, error) {
	return r.MetricsWithWindows(r.PhaseWindows())
}

// PhaseWindows derives per-device [warmup-end, steady-end] boundaries from
// the executed trace: the start of the device's first steady op and the end
// of its last. Devices with no steady ops (GPipe) collapse the steady window
// at the start of their first cooldown op; devices with no ops at all have
// both boundaries at the makespan.
func (r *Result) PhaseWindows() [][2]float64 {
	out := make([][2]float64, len(r.Traces))
	for d, traces := range r.Traces {
		ops := make([]schedule.Op, len(traces))
		for i, tr := range traces {
			ops[i] = tr.Op
		}
		phases := schedule.PhasesOf(ops)
		t1, t2 := r.IterTime, r.IterTime
		firstSteady, lastSteady, firstCool := -1, -1, -1
		for i, ph := range phases {
			switch ph {
			case schedule.Steady:
				if firstSteady < 0 {
					firstSteady = i
				}
				lastSteady = i
			case schedule.Cooldown:
				if firstCool < 0 {
					firstCool = i
				}
			}
		}
		switch {
		case firstSteady >= 0:
			t1, t2 = traces[firstSteady].Start, traces[lastSteady].End
		case firstCool >= 0:
			t1, t2 = traces[firstCool].Start, traces[firstCool].Start
		}
		out[d] = [2]float64{t1, t2}
	}
	return out
}

// MetricsWithWindows computes the decomposition with explicit per-device
// phase boundaries — e.g. the analytic simulator's phase windows
// (sim.Result.PhaseWindows), which lets the executor's measured bubbles be
// attributed on the same boundaries the planner reasoned about.
func (r *Result) MetricsWithWindows(windows [][2]float64) (*Metrics, error) {
	if len(windows) != len(r.Traces) {
		return nil, fmt.Errorf("%w: exec: %d phase windows for %d devices", errdefs.ErrBadConfig, len(windows), len(r.Traces))
	}
	m := &Metrics{IterTime: r.IterTime, Startup: r.Startup}
	for d, traces := range r.Traces {
		t1, t2 := windows[d][0], windows[d][1]
		if t1 < 0 || t2 < t1 || t2 > r.IterTime+1e-12 {
			return nil, fmt.Errorf("%w: exec: device %d has bad phase window [%g, %g] in makespan %g", errdefs.ErrBadConfig, d, t1, t2, r.IterTime)
		}
		dm := DeviceMetrics{Device: d, Busy: r.Busy[d]}
		// Busy time inside each window; the bubble is the remainder.
		var busyW, busyS, busyC float64
		prevEnd := 0.0
		for _, tr := range traces {
			busyW += overlap(tr.Start, tr.End, 0, t1)
			busyS += overlap(tr.Start, tr.End, t1, t2)
			busyC += overlap(tr.Start, tr.End, t2, r.IterTime)
			// Input-stall split for the idle gap before this op: the device
			// idled [prevEnd, start); the part after the payload was ready
			// but not yet delivered is comm wait, the part waiting on the
			// producer's compute is dependency wait.
			if tr.InputArrive >= 0 {
				stallEnd := minf(tr.Start, tr.InputArrive)
				if stallEnd > prevEnd {
					comm := stallEnd - maxf(prevEnd, tr.InputReady)
					if comm < 0 {
						comm = 0
					}
					dm.CommWait += comm
					dm.DepWait += stallEnd - prevEnd - comm
				}
			}
			prevEnd = tr.End
		}
		dm.WarmupBubble = t1 - busyW
		dm.SteadyBubble = (t2 - t1) - busyS
		dm.CooldownBubble = (r.IterTime - t2) - busyC
		if r.IterTime > 0 {
			dm.Utilization = dm.Busy / r.IterTime
		}
		m.Devices = append(m.Devices, dm)
	}

	type linkKey struct{ from, to int }
	links := map[linkKey]*LinkMetrics{}
	for _, msg := range r.Msgs {
		if msg.From == msg.To {
			continue
		}
		k := linkKey{msg.From, msg.To}
		lm, ok := links[k]
		if !ok {
			lm = &LinkMetrics{From: msg.From, To: msg.To}
			links[k] = lm
		}
		lm.Messages++
		lm.Bytes += msg.Bytes
		lm.BusyTime += msg.Free - msg.Start
	}
	for _, lm := range links {
		if r.IterTime > 0 {
			lm.Occupancy = lm.BusyTime / r.IterTime
		}
		m.Links = append(m.Links, *lm)
	}
	sort.Slice(m.Links, func(i, j int) bool {
		if m.Links[i].From != m.Links[j].From {
			return m.Links[i].From < m.Links[j].From
		}
		return m.Links[i].To < m.Links[j].To
	})
	return m, nil
}

// Publish exports the metrics into an obs registry under the "exec." prefix:
// per-device gauges for busy/bubble/utilization and per-link counters for
// traffic.
func (m *Metrics) Publish(reg *obs.Registry) {
	reg.Gauge("exec.iter_time_s").Set(m.IterTime)
	reg.Gauge("exec.startup_s").Set(m.Startup)
	reg.Gauge("exec.bubble_fraction").Set(m.BubbleFraction())
	for _, d := range m.Devices {
		p := fmt.Sprintf("exec.dev%d.", d.Device)
		reg.Gauge(p + "busy_s").Set(d.Busy)
		reg.Gauge(p + "warmup_bubble_s").Set(d.WarmupBubble)
		reg.Gauge(p + "steady_bubble_s").Set(d.SteadyBubble)
		reg.Gauge(p + "cooldown_bubble_s").Set(d.CooldownBubble)
		reg.Gauge(p + "comm_wait_s").Set(d.CommWait)
		reg.Gauge(p + "dep_wait_s").Set(d.DepWait)
		reg.Gauge(p + "utilization").Set(d.Utilization)
	}
	for _, l := range m.Links {
		p := fmt.Sprintf("exec.link%d_%d.", l.From, l.To)
		reg.Counter(p + "messages").Add(float64(l.Messages))
		reg.Counter(p + "bytes").Add(float64(l.Bytes))
		reg.Gauge(p + "occupancy").Set(l.Occupancy)
	}
}

// overlap returns the length of [a,b) ∩ [lo,hi).
func overlap(a, b, lo, hi float64) float64 {
	if a < lo {
		a = lo
	}
	if b > hi {
		b = hi
	}
	if b <= a {
		return 0
	}
	return b - a
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
