package exec

import (
	"fmt"
	"testing"

	"autopipe/internal/config"
	"autopipe/internal/obs"
	"autopipe/internal/schedule"
)

// Event-loop micro-benchmarks: the executor is the inner loop of every
// experiment regeneration and of the self-healing driver, so its ops/sec (the
// sanitizer stays on — TestMain forces it for the whole package, exactly as
// production -sanitize runs pay for it) is a pinned baseline metric in
// BENCH_*.json via cmd/autopipebench.

// benchCfg is a realistic non-degenerate configuration: distinct stage
// times, a cross-stage payload, finite bandwidth, and a kernel overhead.
func benchCfg(p int) Config {
	fs := make([]float64, p)
	bs := make([]float64, p)
	for i := range fs {
		fs[i] = 0.010 + 0.001*float64(i%3)
		bs[i] = 2 * fs[i]
	}
	return Config{
		VirtFwd: fs, VirtBwd: bs,
		CommBytes:      64 << 20,
		Network:        config.Network{Bandwidth: 25e9, Latency: 5e-6},
		KernelOverhead: 1e-5,
	}
}

func benchRun(b *testing.B, s *schedule.Schedule, cfg Config) {
	b.Helper()
	ops := 0
	for _, dev := range s.Ops {
		ops += len(dev)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(s, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ops), "ops/iter")
}

func BenchmarkRunOneFOneB(b *testing.B) {
	for _, tc := range []struct{ p, m int }{{4, 16}, {8, 32}} {
		b.Run(fmt.Sprintf("p%d_m%d", tc.p, tc.m), func(b *testing.B) {
			s, err := schedule.OneFOneB(tc.p, tc.m)
			if err != nil {
				b.Fatal(err)
			}
			benchRun(b, s, benchCfg(tc.p))
		})
	}
}

func BenchmarkRunSliced(b *testing.B) {
	p, m := 8, 32
	s, err := schedule.Sliced(p, m, p-1)
	if err != nil {
		b.Fatal(err)
	}
	benchRun(b, s, benchCfg(p))
}

func BenchmarkRunInterleaved(b *testing.B) {
	p, m, v := 4, 16, 2
	s, err := schedule.Interleaved(p, m, v)
	if err != nil {
		b.Fatal(err)
	}
	benchRun(b, s, benchCfg(p*v))
}

// BenchmarkRunReuse measures the steady-state Runner: working state retained
// across iterations, sanitizer on (TestMain forces it), registry attached but
// sinkless. One warmup run before the timer so even a single measured
// iteration (-benchtime 1x, the CI compare configuration) sees the
// steady state — which must be allocation-free; the suite pins it at 0
// allocs/op in BENCH_baseline.json.
func BenchmarkRunReuse(b *testing.B) {
	p, m := 8, 32
	s, err := schedule.OneFOneB(p, m)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchCfg(p)
	cfg.Obs = obs.NewRegistry()
	r := NewRunner()
	if _, err := r.Run(s, cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(s, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunObserved measures the executor with a metrics registry
// attached (counters, gauges, and the run span) but no event sink — the
// configuration autopipebench and the daemon run with, where emission must
// cost nothing.
func BenchmarkRunObserved(b *testing.B) {
	p, m := 8, 32
	s, err := schedule.OneFOneB(p, m)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchCfg(p)
	cfg.Obs = obs.NewRegistry()
	benchRun(b, s, cfg)
}
