// Package exec is the discrete-event cluster executor — the reproduction's
// stand-in for the paper's 16-GPU Megatron-LM testbed.
//
// It runs a concrete schedule (package schedule) over simulated devices
// connected by full-duplex point-to-point links. Unlike the planner's
// analytic simulator (package sim), the executor models per-operation launch
// overhead, per-message latency and bandwidth, link serialization, and
// optional deterministic jitter. Those second-order effects are exactly what
// makes the paper's Fig. 11 "actual" curve sit at a stable offset above the
// simulator curve.
package exec

import (
	"fmt"
	"math"
	"strings"

	"autopipe/internal/config"
	"autopipe/internal/errdefs"
	"autopipe/internal/fault"
	"autopipe/internal/obs"
	"autopipe/internal/schedule"
)

// Config parameterizes one execution.
type Config struct {
	// VirtFwd and VirtBwd are the per-virtual-stage forward and backward
	// compute times in seconds (half ops take half the forward time).
	VirtFwd, VirtBwd []float64
	// CommBytes is the cross-stage activation (and gradient) payload.
	CommBytes int64
	// Network provides link latency and bandwidth.
	Network config.Network
	// KernelOverhead is a fixed per-operation launch cost.
	KernelOverhead float64
	// Jitter, if positive, scales deterministic pseudo-random noise applied
	// multiplicatively to compute times (e.g. 0.02 for ±2%).
	Jitter float64
	// Seed selects the jitter stream.
	Seed uint64
	// Obs, if non-nil, receives execution counters (ops, messages, bytes)
	// and a run span.
	Obs *obs.Registry
	// Faults, if non-nil, injects the fault plan's timed events into this
	// execution: stragglers scale compute, degraded links lose bandwidth,
	// flapped links defer messages, drops / crashes / injected OOM abort the
	// run with typed errors (fault.TransientError, fault.DeviceLostError,
	// fault.LinkDownError, fault.OOMError).
	Faults *fault.Injector
	// Start is the absolute simulated time at which this execution begins;
	// fault windows are expressed on that absolute clock, so a driver running
	// many iterations advances Start by each iteration's makespan.
	Start float64
	// DeviceMap maps schedule device indices to the physical device ids
	// fault plans reference; nil means the identity mapping.
	DeviceMap []int
	// Sanitize threads the runtime happens-before checker (Sanitizer) through
	// the event loop: every recorded op and transfer is validated against the
	// schedule dependency model as it happens, and a violation aborts the run
	// with an error wrapping errdefs.ErrInternal. Exposed as -sanitize on the
	// CLIs; always on under the package's tests.
	Sanitize bool
}

// Validate reports the first structural problem with the config: mismatched
// or negative stage-time vectors, a non-positive link bandwidth, negative
// latency, jitter, overhead, payload, or start time. Errors wrap
// errdefs.ErrBadConfig, so a bad config fails up front instead of producing
// NaN timings or panics deep inside the event loop.
func (cfg Config) Validate() error {
	if len(cfg.VirtFwd) != len(cfg.VirtBwd) {
		return fmt.Errorf("%w: exec: %d forward times but %d backward times",
			errdefs.ErrBadConfig, len(cfg.VirtFwd), len(cfg.VirtBwd))
	}
	for i := range cfg.VirtFwd {
		if cfg.VirtFwd[i] < 0 || math.IsNaN(cfg.VirtFwd[i]) || cfg.VirtBwd[i] < 0 || math.IsNaN(cfg.VirtBwd[i]) {
			return fmt.Errorf("%w: exec: negative or NaN stage time at virtual stage %d", errdefs.ErrBadConfig, i)
		}
	}
	if cfg.CommBytes < 0 {
		return fmt.Errorf("%w: exec: negative payload %d bytes", errdefs.ErrBadConfig, cfg.CommBytes)
	}
	if cfg.Network.Bandwidth <= 0 || math.IsNaN(cfg.Network.Bandwidth) {
		return fmt.Errorf("%w: exec: link bandwidth must be positive, got %g", errdefs.ErrBadConfig, cfg.Network.Bandwidth)
	}
	if cfg.Network.Latency < 0 || math.IsNaN(cfg.Network.Latency) {
		return fmt.Errorf("%w: exec: negative link latency %g", errdefs.ErrBadConfig, cfg.Network.Latency)
	}
	if cfg.KernelOverhead < 0 || math.IsNaN(cfg.KernelOverhead) {
		return fmt.Errorf("%w: exec: negative kernel overhead %g", errdefs.ErrBadConfig, cfg.KernelOverhead)
	}
	if cfg.Jitter < 0 || math.IsNaN(cfg.Jitter) {
		return fmt.Errorf("%w: exec: negative jitter %g", errdefs.ErrBadConfig, cfg.Jitter)
	}
	if cfg.Start < 0 || math.IsNaN(cfg.Start) {
		return fmt.Errorf("%w: exec: negative start time %g", errdefs.ErrBadConfig, cfg.Start)
	}
	return nil
}

// OpTrace records one executed operation.
type OpTrace struct {
	Op         schedule.Op
	Device     int
	Start, End float64
	// InputReady and InputArrive are the op's cross-stage input payload-ready
	// time (producer compute done, transfer could begin) and arrival time at
	// this device; both are -1 when the op has no cross-stage input. The gap
	// between them is time the payload spent queued on or crossing the link,
	// the basis of the comm-wait/dependency-wait bubble split.
	InputReady, InputArrive float64
}

// MsgTrace records one cross-stage payload transfer.
type MsgTrace struct {
	// Kind, Virt, Micro, Half identify the producing op.
	Kind  schedule.OpKind
	Virt  int
	Micro int
	Half  int
	// From and To are the endpoint devices (equal for a same-device hop
	// between interleaved virtual stages, which occupies no link).
	From, To int
	// Bytes is the payload size (both halves for an aggregated send).
	Bytes int64
	// Ready is when the payload was complete on the producer; Start is when
	// it entered the link (after queueing behind earlier messages); Free is
	// when the link finished serializing it; Arrive is when the consumer can
	// use it (Free + latency).
	Ready, Start, Free, Arrive float64
}

// Result is the outcome of executing a schedule.
type Result struct {
	// IterTime is the makespan: the end of the last operation.
	IterTime float64
	// Startup is the start time of the first compute op on the last device:
	// the moment the last pipeline stage has received the activations of the
	// first micro-batch (the paper's startup-overhead metric).
	Startup float64
	// Traces holds per-device executed ops in issue order.
	Traces [][]OpTrace
	// Busy is per-device total compute time.
	Busy []float64
	// Msgs holds every cross-stage transfer in issue order.
	Msgs []MsgTrace
}

type msgKey struct {
	kind  schedule.OpKind
	virt  int // producer's virtual stage
	micro int
	half  int
}

// arrivalInfo records a delivered cross-stage payload: when the producer had
// it ready to transfer and when the consumer received it.
type arrivalInfo struct {
	ready, arrival float64
}

// Run executes s under cfg with a fresh Runner — the one-shot entry point.
// The returned Result is independently owned. Drivers that execute the same
// schedule repeatedly should hold a Runner, whose reused state makes the
// steady-state event loop allocation-free.
func Run(s *schedule.Schedule, cfg Config) (*Result, error) {
	return NewRunner().Run(s, cfg)
}

// inputsReady reports whether op's cross-stage input (if any) has arrived,
// and with what timing. hasInput is false for ops with no cross-stage
// dependency.
func inputsReady(op schedule.Op, s *schedule.Schedule, arrived map[msgKey]arrivalInfo) (ready bool, info arrivalInfo, hasInput bool) {
	var need msgKey
	switch {
	case op.Kind == schedule.Fwd && op.Virt > 0:
		need = msgKey{schedule.Fwd, op.Virt - 1, op.Micro, op.Half}
	case op.Kind == schedule.Bwd && op.Virt < s.VirtStages-1:
		need = msgKey{schedule.Bwd, op.Virt + 1, op.Micro, op.Half}
	default:
		return true, arrivalInfo{}, false
	}
	info, ok := arrived[need]
	return ok, info, true
}

// opDuration returns op's compute time, with optional jitter.
func opDuration(op schedule.Op, cfg Config, rng *jitterStream) float64 {
	var dur float64
	if op.Kind == schedule.Fwd {
		dur = cfg.VirtFwd[op.Virt]
	} else {
		dur = cfg.VirtBwd[op.Virt]
	}
	if op.Half >= 0 {
		dur /= 2
	}
	if cfg.Jitter > 0 {
		dur *= 1 + cfg.Jitter*rng.next()
	}
	return dur
}

// msgID folds a message's identity (kind, virtual stage, micro-batch, half)
// into the stable key probabilistic drop decisions hash on.
func msgID(m MsgTrace) uint64 {
	k := uint64(1)
	if m.Kind == schedule.Bwd {
		k = 2
	}
	return k<<48 | uint64(m.Virt&0xFFFF)<<32 | uint64(m.Micro&0xFFFF)<<16 | uint64(m.Half+1)&0xFFFF
}

// jitterStream is a splitmix64-style deterministic noise source in [0,1).
type jitterStream struct{ state uint64 }

func (j *jitterStream) next() float64 {
	j.state += 0x9E3779B97F4A7C15
	z := j.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// Gantt renders a text timeline, one device per row, for debugging and the
// pipesim tool. A result with no devices renders a single header line; a
// device with no ops renders its row header with no entries.
func (r *Result) Gantt() string {
	if len(r.Traces) == 0 {
		return "(empty trace)\n"
	}
	var sb strings.Builder
	for d, traces := range r.Traces {
		fmt.Fprintf(&sb, "dev %d:", d)
		for _, tr := range traces {
			fmt.Fprintf(&sb, " %s[%.2f,%.2f]", tr.Op, tr.Start*1e3, tr.End*1e3)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Utilization returns per-device busy fraction of the makespan. When the
// makespan is zero (an empty or degenerate execution) every fraction is 0
// rather than NaN/Inf from a zero division.
func (r *Result) Utilization() []float64 {
	out := make([]float64, len(r.Busy))
	if r.IterTime <= 0 {
		return out
	}
	for i, b := range r.Busy {
		out[i] = b / r.IterTime
	}
	return out
}
