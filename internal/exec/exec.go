// Package exec is the discrete-event cluster executor — the reproduction's
// stand-in for the paper's 16-GPU Megatron-LM testbed.
//
// It runs a concrete schedule (package schedule) over simulated devices
// connected by full-duplex point-to-point links. Unlike the planner's
// analytic simulator (package sim), the executor models per-operation launch
// overhead, per-message latency and bandwidth, link serialization, and
// optional deterministic jitter. Those second-order effects are exactly what
// makes the paper's Fig. 11 "actual" curve sit at a stable offset above the
// simulator curve.
package exec

import (
	"fmt"
	"math"
	"strings"

	"autopipe/internal/config"
	"autopipe/internal/errdefs"
	"autopipe/internal/fault"
	"autopipe/internal/obs"
	"autopipe/internal/schedule"
)

// Config parameterizes one execution.
type Config struct {
	// VirtFwd and VirtBwd are the per-virtual-stage forward and backward
	// compute times in seconds (half ops take half the forward time).
	VirtFwd, VirtBwd []float64
	// CommBytes is the cross-stage activation (and gradient) payload.
	CommBytes int64
	// Network provides link latency and bandwidth.
	Network config.Network
	// KernelOverhead is a fixed per-operation launch cost.
	KernelOverhead float64
	// Jitter, if positive, scales deterministic pseudo-random noise applied
	// multiplicatively to compute times (e.g. 0.02 for ±2%).
	Jitter float64
	// Seed selects the jitter stream.
	Seed uint64
	// Obs, if non-nil, receives execution counters (ops, messages, bytes)
	// and a run span.
	Obs *obs.Registry
	// Faults, if non-nil, injects the fault plan's timed events into this
	// execution: stragglers scale compute, degraded links lose bandwidth,
	// flapped links defer messages, drops / crashes / injected OOM abort the
	// run with typed errors (fault.TransientError, fault.DeviceLostError,
	// fault.LinkDownError, fault.OOMError).
	Faults *fault.Injector
	// Start is the absolute simulated time at which this execution begins;
	// fault windows are expressed on that absolute clock, so a driver running
	// many iterations advances Start by each iteration's makespan.
	Start float64
	// DeviceMap maps schedule device indices to the physical device ids
	// fault plans reference; nil means the identity mapping.
	DeviceMap []int
	// Sanitize threads the runtime happens-before checker (Sanitizer) through
	// the event loop: every recorded op and transfer is validated against the
	// schedule dependency model as it happens, and a violation aborts the run
	// with an error wrapping errdefs.ErrInternal. Exposed as -sanitize on the
	// CLIs; always on under the package's tests.
	Sanitize bool
}

// Validate reports the first structural problem with the config: mismatched
// or negative stage-time vectors, a non-positive link bandwidth, negative
// latency, jitter, overhead, payload, or start time. Errors wrap
// errdefs.ErrBadConfig, so a bad config fails up front instead of producing
// NaN timings or panics deep inside the event loop.
func (cfg Config) Validate() error {
	if len(cfg.VirtFwd) != len(cfg.VirtBwd) {
		return fmt.Errorf("%w: exec: %d forward times but %d backward times",
			errdefs.ErrBadConfig, len(cfg.VirtFwd), len(cfg.VirtBwd))
	}
	for i := range cfg.VirtFwd {
		if cfg.VirtFwd[i] < 0 || math.IsNaN(cfg.VirtFwd[i]) || cfg.VirtBwd[i] < 0 || math.IsNaN(cfg.VirtBwd[i]) {
			return fmt.Errorf("%w: exec: negative or NaN stage time at virtual stage %d", errdefs.ErrBadConfig, i)
		}
	}
	if cfg.CommBytes < 0 {
		return fmt.Errorf("%w: exec: negative payload %d bytes", errdefs.ErrBadConfig, cfg.CommBytes)
	}
	if cfg.Network.Bandwidth <= 0 || math.IsNaN(cfg.Network.Bandwidth) {
		return fmt.Errorf("%w: exec: link bandwidth must be positive, got %g", errdefs.ErrBadConfig, cfg.Network.Bandwidth)
	}
	if cfg.Network.Latency < 0 || math.IsNaN(cfg.Network.Latency) {
		return fmt.Errorf("%w: exec: negative link latency %g", errdefs.ErrBadConfig, cfg.Network.Latency)
	}
	if cfg.KernelOverhead < 0 || math.IsNaN(cfg.KernelOverhead) {
		return fmt.Errorf("%w: exec: negative kernel overhead %g", errdefs.ErrBadConfig, cfg.KernelOverhead)
	}
	if cfg.Jitter < 0 || math.IsNaN(cfg.Jitter) {
		return fmt.Errorf("%w: exec: negative jitter %g", errdefs.ErrBadConfig, cfg.Jitter)
	}
	if cfg.Start < 0 || math.IsNaN(cfg.Start) {
		return fmt.Errorf("%w: exec: negative start time %g", errdefs.ErrBadConfig, cfg.Start)
	}
	return nil
}

// OpTrace records one executed operation.
type OpTrace struct {
	Op         schedule.Op
	Device     int
	Start, End float64
	// InputReady and InputArrive are the op's cross-stage input payload-ready
	// time (producer compute done, transfer could begin) and arrival time at
	// this device; both are -1 when the op has no cross-stage input. The gap
	// between them is time the payload spent queued on or crossing the link,
	// the basis of the comm-wait/dependency-wait bubble split.
	InputReady, InputArrive float64
}

// MsgTrace records one cross-stage payload transfer.
type MsgTrace struct {
	// Kind, Virt, Micro, Half identify the producing op.
	Kind  schedule.OpKind
	Virt  int
	Micro int
	Half  int
	// From and To are the endpoint devices (equal for a same-device hop
	// between interleaved virtual stages, which occupies no link).
	From, To int
	// Bytes is the payload size (both halves for an aggregated send).
	Bytes int64
	// Ready is when the payload was complete on the producer; Start is when
	// it entered the link (after queueing behind earlier messages); Free is
	// when the link finished serializing it; Arrive is when the consumer can
	// use it (Free + latency).
	Ready, Start, Free, Arrive float64
}

// Result is the outcome of executing a schedule.
type Result struct {
	// IterTime is the makespan: the end of the last operation.
	IterTime float64
	// Startup is the start time of the first compute op on the last device:
	// the moment the last pipeline stage has received the activations of the
	// first micro-batch (the paper's startup-overhead metric).
	Startup float64
	// Traces holds per-device executed ops in issue order.
	Traces [][]OpTrace
	// Busy is per-device total compute time.
	Busy []float64
	// Msgs holds every cross-stage transfer in issue order.
	Msgs []MsgTrace
}

type msgKey struct {
	kind  schedule.OpKind
	virt  int // producer's virtual stage
	micro int
	half  int
}

// arrivalInfo records a delivered cross-stage payload: when the producer had
// it ready to transfer and when the consumer received it.
type arrivalInfo struct {
	ready, arrival float64
}

// Run executes s under cfg.
func Run(s *schedule.Schedule, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.VirtFwd) != s.VirtStages || len(cfg.VirtBwd) != s.VirtStages {
		return nil, fmt.Errorf("%w: exec: schedule has %d virtual stages, config has %d fwd / %d bwd times",
			errdefs.ErrBadConfig, s.VirtStages, len(cfg.VirtFwd), len(cfg.VirtBwd))
	}
	if cfg.DeviceMap != nil && len(cfg.DeviceMap) != s.Devices {
		return nil, fmt.Errorf("%w: exec: device map has %d entries, schedule has %d devices",
			errdefs.ErrBadConfig, len(cfg.DeviceMap), s.Devices)
	}
	phys := func(d int) int {
		if cfg.DeviceMap != nil {
			return cfg.DeviceMap[d]
		}
		return d
	}
	var san *Sanitizer
	if cfg.Sanitize || testSanitize {
		var err error
		if san, err = newSanitizer(s, cfg); err != nil {
			return nil, err
		}
	}
	var span *obs.Span
	if cfg.Obs != nil {
		span = cfg.Obs.StartSpan("exec.run")
	}

	rng := jitterStream{state: cfg.Seed*2862933555777941757 + 3037000493}
	arrived := map[msgKey]arrivalInfo{}
	// pendingHalf holds the compute end of a NoSend half, released by the
	// sibling's aggregated send.
	pendingHalf := map[msgKey]float64{}
	linkFree := map[[2]int]float64{}
	devFree := make([]float64, s.Devices)
	next := make([]int, s.Devices)
	res := &Result{Traces: make([][]OpTrace, s.Devices), Busy: make([]float64, s.Devices)}
	res.Startup = math.NaN()

	remaining := 0
	for _, ops := range s.Ops {
		remaining += len(ops)
	}

	transfer := func(m MsgTrace) (float64, error) {
		if m.From == m.To {
			m.Start, m.Free, m.Arrive = m.Ready, m.Ready, m.Ready
			res.Msgs = append(res.Msgs, m)
			if san != nil {
				if err := san.checkMsg(m); err != nil {
					return 0, err
				}
			}
			return m.Ready, nil
		}
		key := [2]int{m.From, m.To}
		m.Start = m.Ready
		if linkFree[key] > m.Start {
			m.Start = linkFree[key]
		}
		bw := cfg.Network.Bandwidth
		if cfg.Faults != nil {
			pf, pt := phys(m.From), phys(m.To)
			abs := cfg.Start + m.Start
			// A flapped link defers the message to the end of the flap; a
			// permanent flap (no recovery window) is a dead link.
			if until, blocked, permanent := cfg.Faults.LinkBlocked(pf, pt, abs); blocked {
				if permanent {
					return 0, &fault.LinkDownError{From: pf, To: pt, At: abs}
				}
				m.Start = until - cfg.Start
				abs = until
			}
			// A dropped send surfaces as a retryable transient failure; the
			// injector consumes the fault, so a re-executed iteration passes
			// once the drop budget is spent.
			if cfg.Faults.DropAttempt(pf, pt, abs, msgID(m)) {
				return 0, &fault.TransientError{From: pf, To: pt, At: abs}
			}
			bw *= cfg.Faults.LinkFactor(pf, pt, abs)
		}
		m.Arrive = m.Start + cfg.Network.Latency + float64(m.Bytes)/bw
		m.Free = m.Arrive - cfg.Network.Latency
		linkFree[key] = m.Free
		res.Msgs = append(res.Msgs, m)
		if san != nil {
			if err := san.checkMsg(m); err != nil {
				return 0, err
			}
		}
		return m.Arrive, nil
	}

	for remaining > 0 {
		progressed := false
		for d := 0; d < s.Devices; d++ {
			for next[d] < len(s.Ops[d]) {
				op := s.Ops[d][next[d]]
				ready, input, hasInput := inputsReady(op, s, arrived)
				if !ready {
					break
				}
				start := devFree[d]
				if hasInput && input.arrival > start {
					start = input.arrival
				}
				start += cfg.KernelOverhead
				dur := opDuration(op, cfg, &rng)
				if cfg.Faults != nil {
					pd, abs := phys(d), cfg.Start+start
					if since, dead := cfg.Faults.Crashed(pd, abs); dead {
						endSpan(span)
						return nil, &fault.DeviceLostError{Device: pd, At: since}
					}
					if cfg.Faults.OOMAt(pd, abs) {
						endSpan(span)
						return nil, &fault.OOMError{Device: pd, At: abs}
					}
					dur *= cfg.Faults.ComputeScale(pd, abs)
				}
				end := start + dur
				devFree[d] = end
				res.Busy[d] += dur
				tr := OpTrace{Op: op, Device: d, Start: start, End: end, InputReady: -1, InputArrive: -1}
				if hasInput {
					tr.InputReady, tr.InputArrive = input.ready, input.arrival
				}
				res.Traces[d] = append(res.Traces[d], tr)
				if san != nil {
					if err := san.checkOp(tr); err != nil {
						endSpan(span)
						return nil, err
					}
				}
				if d == s.Devices-1 && math.IsNaN(res.Startup) {
					res.Startup = start - cfg.KernelOverhead
				}
				if err := deliver(op, s, cfg, end, arrived, pendingHalf, transfer); err != nil {
					endSpan(span)
					return nil, err
				}
				next[d]++
				remaining--
				progressed = true
			}
		}
		if !progressed {
			return nil, fmt.Errorf("%w: exec: schedule %s deadlocked with %d ops remaining",
				errdefs.ErrDeadlock, s.Name, remaining)
		}
	}

	if san != nil {
		if err := san.finish(); err != nil {
			endSpan(span)
			return nil, err
		}
	}
	for _, traces := range res.Traces {
		for _, tr := range traces {
			if tr.End > res.IterTime {
				res.IterTime = tr.End
			}
		}
	}
	if math.IsNaN(res.Startup) {
		res.Startup = 0
	}
	if cfg.Obs != nil {
		ops := 0
		for _, traces := range res.Traces {
			ops += len(traces)
		}
		var bytes int64
		links := 0
		for _, m := range res.Msgs {
			if m.From != m.To {
				bytes += m.Bytes
				links++
			}
		}
		cfg.Obs.Counter("exec.ops").Add(float64(ops))
		cfg.Obs.Counter("exec.messages").Add(float64(links))
		cfg.Obs.Counter("exec.bytes").Add(float64(bytes))
		cfg.Obs.Gauge("exec.iter_time_s").Set(res.IterTime)
		cfg.Obs.Gauge("exec.startup_s").Set(res.Startup)
		span.End()
	}
	return res, nil
}

// inputsReady reports whether op's cross-stage input (if any) has arrived,
// and with what timing. hasInput is false for ops with no cross-stage
// dependency.
func inputsReady(op schedule.Op, s *schedule.Schedule, arrived map[msgKey]arrivalInfo) (ready bool, info arrivalInfo, hasInput bool) {
	var need msgKey
	switch {
	case op.Kind == schedule.Fwd && op.Virt > 0:
		need = msgKey{schedule.Fwd, op.Virt - 1, op.Micro, op.Half}
	case op.Kind == schedule.Bwd && op.Virt < s.VirtStages-1:
		need = msgKey{schedule.Bwd, op.Virt + 1, op.Micro, op.Half}
	default:
		return true, arrivalInfo{}, false
	}
	info, ok := arrived[need]
	return ok, info, true
}

// opDuration returns op's compute time, with optional jitter.
func opDuration(op schedule.Op, cfg Config, rng *jitterStream) float64 {
	var dur float64
	if op.Kind == schedule.Fwd {
		dur = cfg.VirtFwd[op.Virt]
	} else {
		dur = cfg.VirtBwd[op.Virt]
	}
	if op.Half >= 0 {
		dur /= 2
	}
	if cfg.Jitter > 0 {
		dur *= 1 + cfg.Jitter*rng.next()
	}
	return dur
}

// deliver schedules op's output transfer (if any) and deposits the arrival
// times consumers wait on. A fault on the transfer (dropped message, dead
// link) propagates as a typed error.
func deliver(op schedule.Op, s *schedule.Schedule, cfg Config, end float64,
	arrived map[msgKey]arrivalInfo, pendingHalf map[msgKey]float64, transfer func(MsgTrace) (float64, error)) error {

	var destVirt int
	switch {
	case op.Kind == schedule.Fwd && op.Virt < s.VirtStages-1:
		destVirt = op.Virt + 1
	case op.Kind == schedule.Bwd && op.Virt > 0:
		destVirt = op.Virt - 1
	default:
		return nil
	}
	from := s.DeviceOf[op.Virt]
	to := s.DeviceOf[destVirt]
	self := msgKey{op.Kind, op.Virt, op.Micro, op.Half}
	msg := MsgTrace{Kind: op.Kind, Virt: op.Virt, Micro: op.Micro, Half: op.Half, From: from, To: to}

	switch {
	case op.NoSend:
		// Payload parked until the sibling half's aggregated send.
		pendingHalf[self] = end
	case op.AggSend:
		sibling := msgKey{op.Kind, op.Virt, op.Micro, (op.Half + 1) % 2}
		ready := end
		if t, ok := pendingHalf[sibling]; ok && t > ready {
			ready = t
		}
		delete(pendingHalf, sibling)
		msg.Bytes, msg.Ready = cfg.CommBytes, ready // both halves in one message
		arrival, err := transfer(msg)
		if err != nil {
			return err
		}
		arrived[self] = arrivalInfo{ready, arrival}
		arrived[sibling] = arrivalInfo{ready, arrival}
	default:
		bytes := cfg.CommBytes
		if op.Half >= 0 {
			bytes /= 2
		}
		msg.Bytes, msg.Ready = bytes, end
		arrival, err := transfer(msg)
		if err != nil {
			return err
		}
		arrived[self] = arrivalInfo{end, arrival}
	}
	return nil
}

// msgID folds a message's identity (kind, virtual stage, micro-batch, half)
// into the stable key probabilistic drop decisions hash on.
func msgID(m MsgTrace) uint64 {
	k := uint64(1)
	if m.Kind == schedule.Bwd {
		k = 2
	}
	return k<<48 | uint64(m.Virt&0xFFFF)<<32 | uint64(m.Micro&0xFFFF)<<16 | uint64(m.Half+1)&0xFFFF
}

// endSpan closes a possibly-nil obs span on an error return path.
func endSpan(s *obs.Span) {
	if s != nil {
		s.End()
	}
}

// jitterStream is a splitmix64-style deterministic noise source in [0,1).
type jitterStream struct{ state uint64 }

func (j *jitterStream) next() float64 {
	j.state += 0x9E3779B97F4A7C15
	z := j.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// Gantt renders a text timeline, one device per row, for debugging and the
// pipesim tool. A result with no devices renders a single header line; a
// device with no ops renders its row header with no entries.
func (r *Result) Gantt() string {
	if len(r.Traces) == 0 {
		return "(empty trace)\n"
	}
	var sb strings.Builder
	for d, traces := range r.Traces {
		fmt.Fprintf(&sb, "dev %d:", d)
		for _, tr := range traces {
			fmt.Fprintf(&sb, " %s[%.2f,%.2f]", tr.Op, tr.Start*1e3, tr.End*1e3)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Utilization returns per-device busy fraction of the makespan. When the
// makespan is zero (an empty or degenerate execution) every fraction is 0
// rather than NaN/Inf from a zero division.
func (r *Result) Utilization() []float64 {
	out := make([]float64, len(r.Busy))
	if r.IterTime <= 0 {
		return out
	}
	for i, b := range r.Busy {
		out[i] = b / r.IterTime
	}
	return out
}
