package exec

import (
	"errors"
	"strings"
	"testing"

	"autopipe/internal/config"
	"autopipe/internal/errdefs"
	"autopipe/internal/schedule"
)

// TestRunDetectsDeadlock: a corrupted schedule whose stages wait on each
// other must be reported as a typed deadlock, not hang.
func TestRunDetectsDeadlock(t *testing.T) {
	s, _ := schedule.OneFOneB(2, 2)
	// Create a circular wait: stage 0 demands micro-batch 0's backward
	// before it has even sent the forward stage 1 needs to produce it.
	s.Ops[0][0], s.Ops[0][2] = s.Ops[0][2], s.Ops[0][0]
	_, err := Run(s, uniformCfg(2, 1, 2))
	if !errors.Is(err, errdefs.ErrDeadlock) {
		t.Fatalf("corrupted schedule: err = %v, want errdefs.ErrDeadlock", err)
	}
}

// TestRunValidatesScheduleFirst: structural corruption is caught by
// validation before execution.
func TestRunValidatesScheduleFirst(t *testing.T) {
	s, _ := schedule.OneFOneB(2, 2)
	s.Ops[0] = s.Ops[0][:len(s.Ops[0])-1] // drop a backward
	if _, err := Run(s, uniformCfg(2, 1, 2)); err == nil {
		t.Fatal("want validation error for missing op")
	}
}

// TestLinkSerialization: two transfers on the same directed link cannot
// overlap — the second waits for the first's bandwidth slot.
func TestLinkSerialization(t *testing.T) {
	// GPipe stage 0 emits forwards back-to-back; with compute much faster
	// than the link, arrivals at stage 1 are spaced by the transfer time.
	s, _ := schedule.GPipe(2, 3)
	cfg := uniformCfg(2, 0.001, 0.002)
	cfg.CommBytes = 1e9
	cfg.Network = config.Network{Bandwidth: 1e9, Latency: 0} // 1 s per transfer
	r, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var starts []float64
	for _, tr := range r.Traces[1] {
		if tr.Op.Kind == schedule.Fwd {
			starts = append(starts, tr.Start)
		}
	}
	if len(starts) != 3 {
		t.Fatalf("%d forwards on stage 1", len(starts))
	}
	for i := 1; i < len(starts); i++ {
		if gap := starts[i] - starts[i-1]; gap < 1.0-1e-9 {
			t.Errorf("forwards %d and %d only %.3f s apart; the 1 s link must serialize them", i-1, i, gap)
		}
	}
}

// TestFullDuplexLinks: forward and backward traffic between the same pair of
// devices ride independent directions and do not serialize against each
// other.
func TestFullDuplexLinks(t *testing.T) {
	s, _ := schedule.OneFOneB(2, 8)
	slow := uniformCfg(2, 1, 1)
	slow.CommBytes = 1e8
	slow.Network = config.Network{Bandwidth: 1e9, Latency: 0} // 0.1 s per hop
	r, err := Run(s, slow)
	if err != nil {
		t.Fatal(err)
	}
	// In steady 1F1B the same-pair fwd and bwd messages alternate every
	// cycle; if directions shared one link the makespan would grow by an
	// extra 0.1 s per micro-batch. Compare against a doubled-bandwidth run:
	// full duplex means halving the per-direction load changes little.
	fast := slow
	fast.Network = config.Network{Bandwidth: 2e9, Latency: 0}
	r2, err := Run(s, fast)
	if err != nil {
		t.Fatal(err)
	}
	if r.IterTime > r2.IterTime*1.15 {
		t.Errorf("directions appear to share a link: %.3f s vs %.3f s at double bandwidth", r.IterTime, r2.IterTime)
	}
}

// TestStartupZeroForSingleDevice: a 1-stage pipeline has no startup overhead.
func TestStartupZeroForSingleDevice(t *testing.T) {
	s, _ := schedule.OneFOneB(1, 4)
	r, err := Run(s, uniformCfg(1, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if r.Startup != 0 {
		t.Errorf("single-device startup = %v", r.Startup)
	}
}

// TestDeadlockErrorMessage pins the remaining-op accounting in the deadlock
// report: the message names the schedule and says how many ops never ran.
func TestDeadlockErrorMessage(t *testing.T) {
	s, _ := schedule.OneFOneB(2, 2)
	s.Ops[0][0], s.Ops[0][2] = s.Ops[0][2], s.Ops[0][0]
	_, err := Run(s, uniformCfg(2, 1, 2))
	if err == nil {
		t.Fatal("corrupted schedule executed")
	}
	msg := err.Error()
	if !strings.Contains(msg, "deadlocked with") || !strings.Contains(msg, "ops remaining") {
		t.Errorf("error %q lacks the remaining-op count", msg)
	}
	if !strings.Contains(msg, s.Name) {
		t.Errorf("error %q does not name schedule %q", msg, s.Name)
	}
	// The circular wait strikes before anything can run: all 8 ops remain.
	if !strings.Contains(msg, "8 ops remaining") {
		t.Errorf("error %q, want 8 ops remaining", msg)
	}
}

// TestEmptyResultEdges: a zero-value Result must render a placeholder Gantt
// line and zero utilization instead of dividing by a zero makespan.
func TestEmptyResultEdges(t *testing.T) {
	r := &Result{}
	if got := r.Gantt(); got != "(empty trace)\n" {
		t.Errorf("empty Gantt = %q", got)
	}
	if u := r.Utilization(); len(u) != 0 {
		t.Errorf("empty Utilization = %v", u)
	}
	r.Busy = []float64{1, 2}
	for _, u := range r.Utilization() {
		if u != 0 {
			t.Errorf("zero-makespan utilization = %v", r.Utilization())
		}
	}
}
