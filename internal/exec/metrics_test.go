package exec

import (
	"encoding/json"
	"math"
	"testing"

	"autopipe/internal/config"
	"autopipe/internal/obs"
	"autopipe/internal/schedule"
	"autopipe/internal/sim"
)

// TestBubbleDecompositionTilesMakespan asserts the acceptance criterion: for
// every executed schedule, per-device busy + warmup + steady + cooldown
// bubble equals the iteration time within float tolerance — under launch
// overheads, real communication, and jitter.
func TestBubbleDecompositionTilesMakespan(t *testing.T) {
	p, m := 4, 8
	schedules := map[string]func() (*schedule.Schedule, error){
		"1f1b":        func() (*schedule.Schedule, error) { return schedule.OneFOneB(p, m) },
		"gpipe":       func() (*schedule.Schedule, error) { return schedule.GPipe(p, m) },
		"sliced":      func() (*schedule.Schedule, error) { return schedule.Sliced(p, m, 3) },
		"interleaved": func() (*schedule.Schedule, error) { return schedule.Interleaved(p, m, 2) },
	}
	for name, build := range schedules {
		s, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		f := make([]float64, s.VirtStages)
		b := make([]float64, s.VirtStages)
		for i := range f {
			f[i] = 1 + 0.1*float64(i)
			b[i] = 2 * f[i]
		}
		r, err := Run(s, Config{
			VirtFwd: f, VirtBwd: b,
			CommBytes:      1 << 20,
			Network:        config.Network{Bandwidth: 1e9, Latency: 5e-4},
			KernelOverhead: 1e-4,
			Jitter:         0.02,
			Seed:           7,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		mt, err := r.Metrics()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(mt.Devices) != p {
			t.Fatalf("%s: %d device metrics, want %d", name, len(mt.Devices), p)
		}
		for _, dm := range mt.Devices {
			total := dm.Busy + dm.WarmupBubble + dm.SteadyBubble + dm.CooldownBubble
			if math.Abs(total-mt.IterTime) > 1e-9*(1+mt.IterTime) {
				t.Errorf("%s dev %d: busy %g + bubbles %g = %g, want makespan %g",
					name, dm.Device, dm.Busy, dm.Bubble(), total, mt.IterTime)
			}
			if dm.WarmupBubble < -1e-12 || dm.SteadyBubble < -1e-12 || dm.CooldownBubble < -1e-12 {
				t.Errorf("%s dev %d: negative bubble %+v", name, dm.Device, dm)
			}
			if dm.CommWait < 0 || dm.DepWait < 0 || dm.CommWait+dm.DepWait > dm.Bubble()+1e-9 {
				t.Errorf("%s dev %d: wait split %g+%g exceeds bubble %g",
					name, dm.Device, dm.CommWait, dm.DepWait, dm.Bubble())
			}
		}
		if bf := mt.BubbleFraction(); bf <= 0 || bf >= 1 {
			t.Errorf("%s: bubble fraction %g out of (0,1)", name, bf)
		}
	}
}

// TestDeviceZeroWarmupBubbleIsZero: device 0 issues its warmup forwards
// back-to-back from t=0, so its warmup bubble is zero (and the last device's
// warmup bubble equals the startup overhead).
func TestWarmupBubbleMatchesStartup(t *testing.T) {
	s, _ := schedule.OneFOneB(4, 8)
	f := []float64{1, 1, 1, 1}
	b := []float64{2, 2, 2, 2}
	r, err := Run(s, Config{VirtFwd: f, VirtBwd: b, Network: config.Network{Bandwidth: 1e18}})
	if err != nil {
		t.Fatal(err)
	}
	mt, err := r.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if w := mt.Devices[0].WarmupBubble; w > 1e-12 {
		t.Errorf("device 0 warmup bubble = %g, want 0", w)
	}
	last := mt.Devices[len(mt.Devices)-1]
	if math.Abs(last.WarmupBubble-r.Startup) > 1e-12 {
		t.Errorf("last device warmup bubble = %g, want startup %g", last.WarmupBubble, r.Startup)
	}
}

// TestMetricsWithSimWindows: with no overheads the executor and the analytic
// simulator produce identical 1F1B timelines, so attributing the executor's
// bubbles on the simulator's analytic phase windows reproduces the
// trace-derived decomposition exactly.
func TestMetricsWithSimWindows(t *testing.T) {
	p, m := 4, 8
	f := []float64{1, 1.5, 1.2, 0.8}
	b := []float64{2, 3, 2.4, 1.6}
	sr, err := sim.Simulate(f, b, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := schedule.OneFOneB(p, m)
	r, err := Run(s, Config{VirtFwd: f, VirtBwd: b, Network: config.Network{Bandwidth: 1e18}})
	if err != nil {
		t.Fatal(err)
	}
	own, err := r.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	analytic, err := r.MetricsWithWindows(sr.PhaseWindows())
	if err != nil {
		t.Fatal(err)
	}
	for d := range own.Devices {
		o, a := own.Devices[d], analytic.Devices[d]
		for _, pair := range [][2]float64{
			{o.WarmupBubble, a.WarmupBubble},
			{o.SteadyBubble, a.SteadyBubble},
			{o.CooldownBubble, a.CooldownBubble},
		} {
			if math.Abs(pair[0]-pair[1]) > 1e-9 {
				t.Errorf("dev %d: trace-derived %+v != analytic %+v", d, o, a)
				break
			}
		}
	}
}

// TestLinkMetrics checks bytes, message counts, and occupancy of the
// point-to-point links, including the halved payloads and aggregated sends
// of a sliced schedule.
func TestLinkMetrics(t *testing.T) {
	p, m, sliced := 3, 4, 2
	s, err := schedule.Sliced(p, m, sliced)
	if err != nil {
		t.Fatal(err)
	}
	f := []float64{1, 1, 1}
	b := []float64{2, 2, 2}
	const commBytes = 1 << 20
	r, err := Run(s, Config{
		VirtFwd: f, VirtBwd: b,
		CommBytes: commBytes,
		Network:   config.Network{Bandwidth: 1e9, Latency: 1e-4},
	})
	if err != nil {
		t.Fatal(err)
	}
	mt, err := r.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	// Forward links dev->dev+1 and backward links dev->dev-1 all carried m
	// micro-batches' full payload regardless of slicing (halves sum up).
	if len(mt.Links) != 2*(p-1) {
		t.Fatalf("%d links, want %d", len(mt.Links), 2*(p-1))
	}
	for _, l := range mt.Links {
		if l.Bytes != int64(m)*commBytes {
			t.Errorf("link %d->%d carried %d bytes, want %d", l.From, l.To, l.Bytes, int64(m)*commBytes)
		}
		if l.Occupancy <= 0 || l.Occupancy >= 1 {
			t.Errorf("link %d->%d occupancy %g out of (0,1)", l.From, l.To, l.Occupancy)
		}
		wantBusy := float64(l.Bytes) / 1e9
		if math.Abs(l.BusyTime-wantBusy) > 1e-9 {
			t.Errorf("link %d->%d busy %g, want %g", l.From, l.To, l.BusyTime, wantBusy)
		}
	}
	// A forward link of a sliced schedule sees per-micro: 2 half messages for
	// plain sliced micros, 1 aggregated for the blocking one, 1 full for the
	// unsliced ones. Total messages must exceed the unsliced count m-? — just
	// check the count matches the recorded Msgs.
	count := map[[2]int]int{}
	for _, msg := range r.Msgs {
		if msg.From != msg.To {
			count[[2]int{msg.From, msg.To}]++
		}
	}
	for _, l := range mt.Links {
		if l.Messages != count[[2]int{l.From, l.To}] {
			t.Errorf("link %d->%d message count %d != trace %d", l.From, l.To, l.Messages, count[[2]int{l.From, l.To}])
		}
	}
}

// TestCommVsDepWait: with a huge latency the downstream stall is almost
// entirely comm wait; with zero-cost communication the stall is dependency
// wait.
func TestCommVsDepWait(t *testing.T) {
	s, _ := schedule.OneFOneB(2, 2)
	f := []float64{1, 1}
	b := []float64{2, 2}
	slow, err := Run(s, Config{VirtFwd: f, VirtBwd: b, CommBytes: 1,
		Network: config.Network{Bandwidth: 1e18, Latency: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := slow.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if ms.Devices[1].CommWait <= 0 {
		t.Errorf("high-latency run has no comm wait on device 1: %+v", ms.Devices[1])
	}

	fast, err := Run(s, Config{VirtFwd: f, VirtBwd: b,
		Network: config.Network{Bandwidth: 1e18, Latency: 0}})
	if err != nil {
		t.Fatal(err)
	}
	mf, err := fast.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if mf.Devices[1].CommWait > 1e-12 {
		t.Errorf("zero-latency run has comm wait %g on device 1", mf.Devices[1].CommWait)
	}
	if mf.Devices[1].DepWait <= 0 {
		t.Errorf("device 1 should report dependency wait while stage 0 computes: %+v", mf.Devices[1])
	}
	// Device 0 waits for backward gradients from device 1: dep wait too.
	if mf.Devices[0].DepWait <= 0 {
		t.Errorf("device 0 should report dependency wait for the backward: %+v", mf.Devices[0])
	}
}

// TestRunPublishesObs: threading a registry through exec.Config yields run
// counters and a run span.
func TestRunPublishesObs(t *testing.T) {
	reg := obs.NewRegistry()
	s, _ := schedule.OneFOneB(2, 3)
	r, err := Run(s, Config{
		VirtFwd: []float64{1, 1}, VirtBwd: []float64{2, 2},
		CommBytes: 64,
		Network:   config.Network{Bandwidth: 1e9, Latency: 1e-4},
		Obs:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["exec.ops"] != float64(2*3*2) {
		t.Errorf("exec.ops = %v, want 12", snap.Counters["exec.ops"])
	}
	if snap.Counters["exec.messages"] <= 0 || snap.Counters["exec.bytes"] <= 0 {
		t.Errorf("message counters not recorded: %+v", snap.Counters)
	}
	if snap.Gauges["exec.iter_time_s"] != r.IterTime {
		t.Errorf("iter gauge = %v, want %v", snap.Gauges["exec.iter_time_s"], r.IterTime)
	}
	if snap.Histograms["exec.run.seconds"].Count != 1 {
		t.Errorf("run span not recorded: %+v", snap.Histograms)
	}

	mt, err := r.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	mt.Publish(reg)
	snap = reg.Snapshot()
	if _, ok := snap.Gauges["exec.dev0.warmup_bubble_s"]; !ok {
		t.Errorf("Publish did not export device gauges: %v", snap.Gauges)
	}
	if _, ok := snap.Counters["exec.link0_1.bytes"]; !ok {
		t.Errorf("Publish did not export link counters: %v", snap.Counters)
	}
}

// TestMemoryTimeline: the live-memory step function starts and ends at the
// static footprint and its maximum equals PeakUsage.
func TestMemoryTimeline(t *testing.T) {
	s, _ := schedule.OneFOneB(2, 3)
	r, err := Run(s, uniformCfg(2, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	l := &MemoryLedger{StashBytes: []int64{10, 10}, StaticBytes: []int64{3, 5}}
	tl, err := l.Timeline(s, r)
	if err != nil {
		t.Fatal(err)
	}
	peaks, err := l.PeakUsage(s, r)
	if err != nil {
		t.Fatal(err)
	}
	for d, samples := range tl {
		if len(samples) == 0 {
			t.Fatalf("device %d has no samples", d)
		}
		if samples[0].Bytes != l.StaticBytes[d] || samples[len(samples)-1].Bytes != l.StaticBytes[d] {
			t.Errorf("device %d timeline does not start/end at static: %+v", d, samples)
		}
		var maxB int64
		for i, smp := range samples {
			if smp.Bytes > maxB {
				maxB = smp.Bytes
			}
			if i > 0 && smp.At < samples[i-1].At {
				t.Errorf("device %d timeline not time-ordered at %d", d, i)
			}
		}
		if maxB != peaks[d] {
			t.Errorf("device %d timeline max %d != peak %d", d, maxB, peaks[d])
		}
	}
}

// TestMetricsJSONSchema pins the JSON field names of the metrics report that
// pipesim -metrics emits.
func TestMetricsJSONSchema(t *testing.T) {
	s, _ := schedule.OneFOneB(2, 4)
	r, err := Run(s, uniformCfg(2, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"iterTimeSeconds", "startupSeconds", "devices", "links"} {
		if _, ok := doc[k]; !ok {
			t.Errorf("metrics JSON missing %q: %s", k, data)
		}
	}
	devs, ok := doc["devices"].([]any)
	if !ok || len(devs) != 2 {
		t.Fatalf("devices = %v", doc["devices"])
	}
	dev, ok := devs[0].(map[string]any)
	if !ok {
		t.Fatalf("device entry = %v", devs[0])
	}
	for _, k := range []string{"busySeconds", "warmupBubbleSeconds", "steadyBubbleSeconds",
		"cooldownBubbleSeconds", "commWaitSeconds", "depWaitSeconds", "utilization"} {
		if _, ok := dev[k]; !ok {
			t.Errorf("device JSON missing %q: %s", k, data)
		}
	}
}
