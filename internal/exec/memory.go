package exec

import (
	"fmt"

	"autopipe/internal/errdefs"
	"autopipe/internal/schedule"
)

// MemoryLedger tracks per-device activation memory across an executed
// schedule: a forward stashes its micro-batch's activations until the
// matching backward releases them. It complements the static estimator in
// package memory by measuring the actual in-flight peak of a concrete
// schedule instead of the closed-form 1F1B bound — the two are
// cross-checked in tests.
type MemoryLedger struct {
	// StashBytes is the per-virtual-stage activation stash of one
	// micro-batch (halved for half ops).
	StashBytes []int64
	// StaticBytes is the per-device resident footprint (parameters,
	// optimizer state, framework overhead) independent of scheduling.
	StaticBytes []int64
}

// MemSample is one point of a device's live-memory timeline.
type MemSample struct {
	At    float64 `json:"at"`
	Bytes int64   `json:"bytes"`
}

// Timeline replays the executed trace and returns each device's live-memory
// step function: one sample per change, starting from the static footprint
// at t=0. The last sample of every device returns to the static footprint (a
// leak is an error, as in PeakUsage).
func (l *MemoryLedger) Timeline(s *schedule.Schedule, r *Result) ([][]MemSample, error) {
	events, err := l.events(s, r)
	if err != nil {
		return nil, err
	}
	out := make([][]MemSample, s.Devices)
	usage := make([]int64, s.Devices)
	copy(usage, l.StaticBytes)
	for d := range out {
		out[d] = []MemSample{{At: 0, Bytes: usage[d]}}
	}
	for _, e := range events {
		usage[e.device] += e.delta
		out[e.device] = append(out[e.device], MemSample{At: e.at, Bytes: usage[e.device]})
	}
	for d, u := range usage {
		if u != l.static(d) {
			return nil, fmt.Errorf("%w: exec: device %d leaked %d bytes of activations", errdefs.ErrInternal, d, u-l.static(d))
		}
	}
	return out, nil
}

// PeakUsage replays the executed trace in event order and returns the peak
// memory per device.
func (l *MemoryLedger) PeakUsage(s *schedule.Schedule, r *Result) ([]int64, error) {
	events, err := l.events(s, r)
	if err != nil {
		return nil, err
	}
	usage := make([]int64, s.Devices)
	peak := make([]int64, s.Devices)
	copy(usage, l.StaticBytes)
	copy(peak, l.StaticBytes)
	for _, e := range events {
		usage[e.device] += e.delta
		if usage[e.device] > peak[e.device] {
			peak[e.device] = usage[e.device]
		}
	}
	for d, u := range usage {
		if u != l.static(d) {
			return nil, fmt.Errorf("%w: exec: device %d leaked %d bytes of activations", errdefs.ErrInternal, d, u-l.static(d))
		}
	}
	return peak, nil
}

// events builds the time-sorted alloc/free event stream of the trace.
func (l *MemoryLedger) events(s *schedule.Schedule, r *Result) ([]event, error) {
	if len(l.StashBytes) != s.VirtStages {
		return nil, fmt.Errorf("%w: exec: ledger has %d stage stashes, schedule has %d virtual stages",
			errdefs.ErrBadConfig, len(l.StashBytes), s.VirtStages)
	}
	var events []event
	for d, traces := range r.Traces {
		for _, tr := range traces {
			bytes := l.StashBytes[tr.Op.Virt]
			if tr.Op.Half >= 0 {
				bytes /= 2
			}
			switch tr.Op.Kind {
			case schedule.Fwd:
				// The stash materializes during the forward.
				events = append(events, event{tr.Start, d, bytes})
			case schedule.Bwd:
				// The backward releases the whole micro-batch (both halves
				// if the forwards were sliced) when it finishes.
				events = append(events, event{tr.End, d, -stashOfMicro(l, s, tr.Op)})
			}
		}
	}
	// Stable in-time order; frees at equal timestamps apply first so a
	// back-to-back release/alloc pair is not double-counted.
	sortEvents(events)
	return events, nil
}

func (l *MemoryLedger) static(d int) int64 {
	if d < len(l.StaticBytes) {
		return l.StaticBytes[d]
	}
	return 0
}

// stashOfMicro returns the bytes a backward op releases: one full
// micro-batch stash for its virtual stage.
func stashOfMicro(l *MemoryLedger, s *schedule.Schedule, op schedule.Op) int64 {
	return l.StashBytes[op.Virt]
}

func sortEvents(events []event) {
	// Insertion sort keeps the implementation dependency-free; traces are
	// already mostly ordered so this is near-linear in practice.
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && less(events[j], events[j-1]); j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}
}

type event struct {
	at     float64
	device int
	delta  int64
}

func less(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.delta < b.delta // frees first
}
