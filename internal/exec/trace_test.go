package exec

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"

	"autopipe/internal/config"
	"autopipe/internal/schedule"
	"autopipe/internal/sim"
)

func TestWriteChromeTrace(t *testing.T) {
	s, _ := schedule.OneFOneB(2, 3)
	r, err := Run(s, uniformCfg(2, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := r.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
			Dur  int64  `json:"dur"`
			TID  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if want := 2 * 3 * 2; len(doc.TraceEvents) != want {
		t.Fatalf("%d events, want %d", len(doc.TraceEvents), want)
	}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" || e.Dur <= 0 || (e.Cat != "fwd" && e.Cat != "bwd") {
			t.Errorf("bad event %+v", e)
		}
	}
}

func TestCriticalPathSpansIteration(t *testing.T) {
	s, _ := schedule.OneFOneB(4, 8)
	cfg := uniformCfg(4, 1, 2)
	cfg.CommBytes = 1 << 20
	cfg.Network = config.Network{Bandwidth: 1e9, Latency: 1e-4}
	r, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path, err := r.CriticalPath(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) < 2 {
		t.Fatalf("path of length %d", len(path))
	}
	first, last := path[0], path[len(path)-1]
	if first.Op.Kind != schedule.Fwd || first.Op.Micro != 0 || first.Op.Virt != 0 {
		t.Errorf("path starts at %v, want F0@s0", first.Op)
	}
	if last.End != r.IterTime {
		t.Errorf("path ends at %v, want makespan %v", last.End, r.IterTime)
	}
	for i := 1; i < len(path); i++ {
		if path[i].Start < path[i-1].End-1e-12 {
			// Comm delay is fine; causality inversion is not.
			if path[i].Start < path[i-1].Start {
				t.Errorf("path not causal at %d: %v then %v", i, path[i-1].Op, path[i].Op)
			}
		}
	}
}

// TestExecMatchesSimWithoutOverheads cross-validates the two timing models:
// with zero launch overhead, zero latency, and effectively infinite
// bandwidth, the discrete-event executor and the analytic simulator agree on
// the 1F1B iteration time exactly.
func TestExecMatchesSimWithoutOverheads(t *testing.T) {
	prop := func(seed uint8, pRaw, mRaw uint8) bool {
		p := 2 + int(pRaw)%5
		m := p + int(mRaw)%10
		rng := uint64(seed)*2654435761 + 1
		next := func() float64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return 1 + float64(rng%100)/25
		}
		f := make([]float64, p)
		b := make([]float64, p)
		for i := range f {
			f[i] = next()
			b[i] = 2 * f[i]
		}
		sr, err := sim.Simulate(f, b, 0, m)
		if err != nil {
			return false
		}
		s, err := schedule.OneFOneB(p, m)
		if err != nil {
			return false
		}
		er, err := Run(s, Config{
			VirtFwd: f, VirtBwd: b,
			Network: config.Network{Bandwidth: 1e18, Latency: 0},
		})
		if err != nil {
			return false
		}
		diff := sr.IterTime - er.IterTime
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1e-9*(1+sr.IterTime)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSimUpperBoundsExecWithComm: the paper's simulator charges Comm on
// every cross-stage op regardless of which dependency binds, so with real
// communication it can only be at or above the executor's dependency-exact
// timing.
func TestSimUpperBoundsExecWithComm(t *testing.T) {
	prop := func(seed uint8) bool {
		p, m := 4, 8
		rng := uint64(seed) + 7
		next := func() float64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return 1 + float64(rng%50)/25
		}
		f := make([]float64, p)
		b := make([]float64, p)
		for i := range f {
			f[i] = next()
			b[i] = 3 * f[i]
		}
		const comm = 0.05
		sr, err := sim.Simulate(f, b, comm, m)
		if err != nil {
			return false
		}
		s, _ := schedule.OneFOneB(p, m)
		er, err := Run(s, Config{
			VirtFwd: f, VirtBwd: b,
			CommBytes: 1,
			Network:   config.Network{Bandwidth: 1e18, Latency: comm},
		})
		if err != nil {
			return false
		}
		return sr.IterTime >= er.IterTime-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
