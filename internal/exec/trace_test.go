package exec

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"autopipe/internal/config"
	"autopipe/internal/schedule"
	"autopipe/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// traceDoc mirrors the Chrome trace-event JSON document for assertions.
type traceDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		TS   int64          `json:"ts"`
		Dur  int64          `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		ID   int            `json:"id"`
		BP   string         `json:"bp"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestWriteChromeTrace(t *testing.T) {
	s, _ := schedule.OneFOneB(2, 3)
	r, err := Run(s, uniformCfg(2, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := r.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	var slices int
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		slices++
		if e.Dur <= 0 {
			t.Errorf("bad slice %+v", e)
		}
		parts := strings.Split(e.Cat, ",")
		if len(parts) != 2 || (parts[0] != "fwd" && parts[0] != "bwd") ||
			(parts[1] != "warmup" && parts[1] != "steady" && parts[1] != "cooldown") {
			t.Errorf("slice %q has cat %q, want fwd|bwd,phase", e.Name, e.Cat)
		}
	}
	if want := 2 * 3 * 2; slices != want {
		t.Fatalf("%d slice events, want %d", slices, want)
	}
}

// TestChromeTraceEnriched checks the observability extras: metadata name
// events, flow arrows from senders to consumers (including the aggregated
// sliced sends feeding both halves), link-occupancy counter tracks, live
// memory counters, and deterministic (pid, tid, ts) ordering.
func TestChromeTraceEnriched(t *testing.T) {
	s, err := schedule.Sliced(2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		VirtFwd: []float64{1, 1}, VirtBwd: []float64{2, 2},
		CommBytes: 1000,
		Network:   config.Network{Bandwidth: 1e6, Latency: 1e-3},
	}
	r, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ledger := &MemoryLedger{StashBytes: []int64{4, 4}, StaticBytes: []int64{1, 2}}
	var sb strings.Builder
	if err := r.WriteChromeTraceWith(&sb, TraceOptions{Ledger: ledger, Schedule: s}); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatal(err)
	}

	var threadNames, flowsS, flowsF, linkCounters, memCounters int
	flowIDs := map[int][2]int{} // id -> [starts, finishes]
	for _, e := range doc.TraceEvents {
		switch {
		case e.Ph == "M" && e.Name == "thread_name":
			threadNames++
		case e.Ph == "s":
			flowsS++
			c := flowIDs[e.ID]
			c[0]++
			flowIDs[e.ID] = c
		case e.Ph == "f":
			flowsF++
			if e.BP != "e" {
				t.Errorf("flow finish without bp=e: %+v", e)
			}
			c := flowIDs[e.ID]
			c[1]++
			flowIDs[e.ID] = c
		case e.Ph == "C" && strings.HasPrefix(e.Name, "link "):
			linkCounters++
		case e.Ph == "C" && strings.HasPrefix(e.Name, "mem "):
			memCounters++
		}
	}
	if threadNames != 2 {
		t.Errorf("%d thread_name events, want 2", threadNames)
	}
	// Cross-stage payloads: F0 agg (2 flows: both halves), F1 full, B0, B1
	// backwards = 5 consumer arrows, each paired with a start.
	if flowsS != 5 || flowsF != 5 {
		t.Errorf("flows = %d starts / %d finishes, want 5/5", flowsS, flowsF)
	}
	for id, c := range flowIDs {
		if c[0] != 1 || c[1] != 1 {
			t.Errorf("flow %d has %d starts, %d finishes", id, c[0], c[1])
		}
	}
	if linkCounters == 0 {
		t.Error("no link occupancy counter events")
	}
	if memCounters == 0 {
		t.Error("no live-memory counter events")
	}

	// Ordering: by (pid, tid, ts) with per-thread metadata leading.
	type pos struct {
		pid, tid int
		ts       int64
		meta     bool
	}
	var prev *pos
	for i, e := range doc.TraceEvents {
		cur := pos{e.PID, e.TID, e.TS, e.Ph == "M"}
		if prev != nil {
			ok := prev.pid < cur.pid ||
				(prev.pid == cur.pid && prev.tid < cur.tid) ||
				(prev.pid == cur.pid && prev.tid == cur.tid && (prev.meta || (!cur.meta && prev.ts <= cur.ts)))
			if !ok {
				t.Fatalf("events not sorted at %d: %+v then %+v", i, *prev, cur)
			}
		}
		prev = &cur
	}
}

// TestChromeTraceGolden pins the exact serialized trace of a small sliced
// run. Run `go test ./internal/exec -run Golden -update` after an
// intentional format change.
func TestChromeTraceGolden(t *testing.T) {
	s, err := schedule.Sliced(2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(s, Config{
		VirtFwd: []float64{1, 1}, VirtBwd: []float64{2, 2},
		CommBytes: 1000,
		Network:   config.Network{Bandwidth: 1e6, Latency: 1e-3},
	})
	if err != nil {
		t.Fatal(err)
	}
	ledger := &MemoryLedger{StashBytes: []int64{4, 4}, StaticBytes: []int64{1, 2}}
	var buf bytes.Buffer
	if err := r.WriteChromeTraceWith(&buf, TraceOptions{Ledger: ledger, Schedule: s}); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace output drifted from golden file; rerun with -update if intentional\ngot:  %s\nwant: %s",
			buf.Bytes(), want)
	}
	// The golden document must be structurally valid trace-event JSON:
	// required keys present on every event, a known phase, and counter/flow
	// events carrying their mandatory extras.
	var doc traceDoc
	if err := json.Unmarshal(want, &doc); err != nil {
		t.Fatalf("golden file is not valid JSON: %v", err)
	}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			if e.Name == "" || e.Dur <= 0 {
				t.Errorf("invalid slice event %+v", e)
			}
		case "M", "C":
			if len(e.Args) == 0 {
				t.Errorf("%s event without args: %+v", e.Ph, e)
			}
		case "s", "f":
			if e.ID == 0 {
				t.Errorf("flow event without id: %+v", e)
			}
		default:
			t.Errorf("unknown phase %q: %+v", e.Ph, e)
		}
	}
}

// TestCriticalPathSliced covers the sibling-half fallback: on a sliced
// schedule a backward's gradient producer and an aggregated forward's
// consumer reference the half that carried the payload.
func TestCriticalPathSliced(t *testing.T) {
	s, err := schedule.Sliced(4, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	f := []float64{1, 1, 1, 1}
	b := []float64{2, 2, 2, 2}
	r, err := Run(s, Config{
		VirtFwd: f, VirtBwd: b,
		CommBytes: 1 << 20,
		Network:   config.Network{Bandwidth: 1e8, Latency: 1e-3},
	})
	if err != nil {
		t.Fatal(err)
	}
	path, err := r.CriticalPath(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) < 2 {
		t.Fatalf("path of length %d", len(path))
	}
	if last := path[len(path)-1]; last.End != r.IterTime {
		t.Errorf("path ends at %g, want makespan %g", last.End, r.IterTime)
	}
	if first := path[0]; first.Start > r.Startup {
		t.Errorf("path starts at %g, after the startup moment %g", first.Start, r.Startup)
	}
	// The path must be causally ordered and, on this comm-bound config,
	// traverse at least one sliced half (the warmup is entirely sliced).
	sawHalf := false
	for i, tr := range path {
		if tr.Op.Half >= 0 {
			sawHalf = true
		}
		if i > 0 && tr.Start < path[i-1].Start {
			t.Errorf("path not causal at %d: %v then %v", i, path[i-1].Op, path[i].Op)
		}
	}
	if !sawHalf {
		t.Error("critical path of a fully-sliced warmup has no half ops")
	}
	sort.SliceStable(path, func(i, j int) bool { return path[i].Start < path[j].Start })
}

func TestCriticalPathSpansIteration(t *testing.T) {
	s, _ := schedule.OneFOneB(4, 8)
	cfg := uniformCfg(4, 1, 2)
	cfg.CommBytes = 1 << 20
	cfg.Network = config.Network{Bandwidth: 1e9, Latency: 1e-4}
	r, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path, err := r.CriticalPath(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) < 2 {
		t.Fatalf("path of length %d", len(path))
	}
	first, last := path[0], path[len(path)-1]
	if first.Op.Kind != schedule.Fwd || first.Op.Micro != 0 || first.Op.Virt != 0 {
		t.Errorf("path starts at %v, want F0@s0", first.Op)
	}
	if last.End != r.IterTime {
		t.Errorf("path ends at %v, want makespan %v", last.End, r.IterTime)
	}
	for i := 1; i < len(path); i++ {
		if path[i].Start < path[i-1].End-1e-12 {
			// Comm delay is fine; causality inversion is not.
			if path[i].Start < path[i-1].Start {
				t.Errorf("path not causal at %d: %v then %v", i, path[i-1].Op, path[i].Op)
			}
		}
	}
}

// TestExecMatchesSimWithoutOverheads cross-validates the two timing models:
// with zero launch overhead, zero latency, and effectively infinite
// bandwidth, the discrete-event executor and the analytic simulator agree on
// the 1F1B iteration time exactly.
func TestExecMatchesSimWithoutOverheads(t *testing.T) {
	prop := func(seed uint8, pRaw, mRaw uint8) bool {
		p := 2 + int(pRaw)%5
		m := p + int(mRaw)%10
		rng := uint64(seed)*2654435761 + 1
		next := func() float64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return 1 + float64(rng%100)/25
		}
		f := make([]float64, p)
		b := make([]float64, p)
		for i := range f {
			f[i] = next()
			b[i] = 2 * f[i]
		}
		sr, err := sim.Simulate(f, b, 0, m)
		if err != nil {
			return false
		}
		s, err := schedule.OneFOneB(p, m)
		if err != nil {
			return false
		}
		er, err := Run(s, Config{
			VirtFwd: f, VirtBwd: b,
			Network: config.Network{Bandwidth: 1e18, Latency: 0},
		})
		if err != nil {
			return false
		}
		diff := sr.IterTime - er.IterTime
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1e-9*(1+sr.IterTime)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSimUpperBoundsExecWithComm: the paper's simulator charges Comm on
// every cross-stage op regardless of which dependency binds, so with real
// communication it can only be at or above the executor's dependency-exact
// timing.
func TestSimUpperBoundsExecWithComm(t *testing.T) {
	prop := func(seed uint8) bool {
		p, m := 4, 8
		rng := uint64(seed) + 7
		next := func() float64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return 1 + float64(rng%50)/25
		}
		f := make([]float64, p)
		b := make([]float64, p)
		for i := range f {
			f[i] = next()
			b[i] = 3 * f[i]
		}
		const comm = 0.05
		sr, err := sim.Simulate(f, b, comm, m)
		if err != nil {
			return false
		}
		s, _ := schedule.OneFOneB(p, m)
		er, err := Run(s, Config{
			VirtFwd: f, VirtBwd: b,
			CommBytes: 1,
			Network:   config.Network{Bandwidth: 1e18, Latency: comm},
		})
		if err != nil {
			return false
		}
		return sr.IterTime >= er.IterTime-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
