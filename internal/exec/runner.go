package exec

import (
	"fmt"
	"math"

	"autopipe/internal/errdefs"
	"autopipe/internal/fault"
	"autopipe/internal/obs"
	"autopipe/internal/schedule"
)

// Runner executes schedules with its working state — dependency graph,
// sanitizer, arrival maps, trace backing — retained across calls, so a
// driver that re-executes the same schedule many times (autopipebench, the
// self-healing training loop, the fault-injection soak) pays the setup
// allocations once and runs the steady-state event loop allocation-free,
// sanitizer included. The package-level Run is NewRunner().Run and keeps
// the one-shot contract.
//
// The contract the reuse rests on:
//
//   - the returned Result (and everything reachable from it) is valid only
//     until the next Run call on the same Runner, which overwrites it;
//   - the schedule must not be mutated between runs — the per-schedule
//     caches (validation, dependency graph) key on its identity;
//   - a Runner is not safe for concurrent use. Use one Runner per goroutine.
type Runner struct {
	// Per-schedule caches, keyed on pointer identity.
	validFor *schedule.Schedule
	san      *Sanitizer
	sanFor   *schedule.Schedule

	// Scratch state reused across runs.
	arrived     map[msgKey]arrivalInfo
	pendingHalf map[msgKey]float64
	linkFree    map[[2]int]float64
	devFree     []float64
	next        []int
	res         Result

	// Per-run context threaded to the helper methods (set by Run).
	s       *schedule.Schedule
	cfg     Config
	liveSan *Sanitizer // nil when this run is not sanitized
}

// NewRunner returns a Runner with empty caches. The zero value is also ready
// to use.
func NewRunner() *Runner { return &Runner{} }

// phys maps a schedule device index to the physical device id fault plans
// reference.
func (r *Runner) phys(d int) int {
	if r.cfg.DeviceMap != nil {
		return r.cfg.DeviceMap[d]
	}
	return d
}

// reset prepares the scratch state for one execution of s, reusing every
// map and slice backing from previous runs.
func (r *Runner) reset(s *schedule.Schedule) {
	if r.arrived == nil {
		r.arrived = map[msgKey]arrivalInfo{}
		r.pendingHalf = map[msgKey]float64{}
		r.linkFree = map[[2]int]float64{}
	} else {
		clear(r.arrived)
		clear(r.pendingHalf)
		clear(r.linkFree)
	}
	if len(r.devFree) == s.Devices {
		clear(r.devFree)
		clear(r.next)
	} else {
		r.devFree = make([]float64, s.Devices)
		r.next = make([]int, s.Devices)
	}
	res := &r.res
	res.IterTime = 0
	res.Startup = math.NaN()
	if len(res.Traces) == s.Devices {
		for d := range res.Traces {
			res.Traces[d] = res.Traces[d][:0]
		}
		clear(res.Busy)
	} else {
		res.Traces = make([][]OpTrace, s.Devices)
		res.Busy = make([]float64, s.Devices)
	}
	res.Msgs = res.Msgs[:0]
}

// Run executes s under cfg. See the Runner doc comment for the lifetime of
// the returned Result.
//
//hot:the event loop behind every experiment regeneration and soak iteration
func (r *Runner) Run(s *schedule.Schedule, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if r.validFor != s {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		r.validFor = s
	}
	if len(cfg.VirtFwd) != s.VirtStages || len(cfg.VirtBwd) != s.VirtStages {
		return nil, fmt.Errorf("%w: exec: schedule has %d virtual stages, config has %d fwd / %d bwd times",
			errdefs.ErrBadConfig, s.VirtStages, len(cfg.VirtFwd), len(cfg.VirtBwd))
	}
	if cfg.DeviceMap != nil && len(cfg.DeviceMap) != s.Devices {
		return nil, fmt.Errorf("%w: exec: device map has %d entries, schedule has %d devices",
			errdefs.ErrBadConfig, len(cfg.DeviceMap), s.Devices)
	}
	r.s, r.cfg = s, cfg
	r.liveSan = nil
	if cfg.Sanitize || testSanitize {
		if r.san != nil && r.sanFor == s {
			r.san.reset(cfg)
		} else {
			san, err := newSanitizer(s, cfg)
			if err != nil {
				return nil, err
			}
			r.san, r.sanFor = san, s
		}
		r.liveSan = r.san
	}
	var sw obs.Stopwatch
	if cfg.Obs != nil {
		sw = obs.NewStopwatch()
	}
	r.reset(s)
	res := &r.res

	rng := jitterStream{state: cfg.Seed*2862933555777941757 + 3037000493}
	remaining := 0
	for _, ops := range s.Ops {
		remaining += len(ops)
	}

	for remaining > 0 {
		progressed := false
		for d := 0; d < s.Devices; d++ {
			for r.next[d] < len(s.Ops[d]) {
				op := s.Ops[d][r.next[d]]
				ready, input, hasInput := inputsReady(op, s, r.arrived)
				if !ready {
					break
				}
				start := r.devFree[d]
				if hasInput && input.arrival > start {
					start = input.arrival
				}
				start += cfg.KernelOverhead
				dur := opDuration(op, cfg, &rng)
				if cfg.Faults != nil {
					pd, abs := r.phys(d), cfg.Start+start
					if since, dead := cfg.Faults.Crashed(pd, abs); dead {
						observeRun(cfg.Obs, sw)
						return nil, &fault.DeviceLostError{Device: pd, At: since}
					}
					if cfg.Faults.OOMAt(pd, abs) {
						observeRun(cfg.Obs, sw)
						return nil, &fault.OOMError{Device: pd, At: abs}
					}
					dur *= cfg.Faults.ComputeScale(pd, abs)
				}
				end := start + dur
				r.devFree[d] = end
				res.Busy[d] += dur
				tr := OpTrace{Op: op, Device: d, Start: start, End: end, InputReady: -1, InputArrive: -1}
				if hasInput {
					tr.InputReady, tr.InputArrive = input.ready, input.arrival
				}
				res.Traces[d] = append(res.Traces[d], tr)
				if r.liveSan != nil {
					if err := r.liveSan.checkOp(tr); err != nil {
						observeRun(cfg.Obs, sw)
						return nil, err
					}
				}
				if d == s.Devices-1 && math.IsNaN(res.Startup) {
					res.Startup = start - cfg.KernelOverhead
				}
				if err := r.deliver(op, end); err != nil {
					observeRun(cfg.Obs, sw)
					return nil, err
				}
				r.next[d]++
				remaining--
				progressed = true
			}
		}
		if !progressed {
			observeRun(cfg.Obs, sw)
			return nil, fmt.Errorf("%w: exec: schedule %s deadlocked with %d ops remaining",
				errdefs.ErrDeadlock, s.Name, remaining)
		}
	}

	if r.liveSan != nil {
		if err := r.liveSan.finish(); err != nil {
			observeRun(cfg.Obs, sw)
			return nil, err
		}
	}
	for _, traces := range res.Traces {
		for _, tr := range traces {
			if tr.End > res.IterTime {
				res.IterTime = tr.End
			}
		}
	}
	if math.IsNaN(res.Startup) {
		res.Startup = 0
	}
	if cfg.Obs != nil {
		ops := 0
		for _, traces := range res.Traces {
			ops += len(traces)
		}
		var bytes int64
		links := 0
		for _, m := range res.Msgs {
			if m.From != m.To {
				bytes += m.Bytes
				links++
			}
		}
		cfg.Obs.Counter("exec.ops").Add(float64(ops))
		cfg.Obs.Counter("exec.messages").Add(float64(links))
		cfg.Obs.Counter("exec.bytes").Add(float64(bytes))
		cfg.Obs.Gauge("exec.iter_time_s").Set(res.IterTime)
		cfg.Obs.Gauge("exec.startup_s").Set(res.Startup)
		observeRun(cfg.Obs, sw)
	}
	return res, nil
}

// transfer moves one cross-stage payload across its link, modeling queueing,
// serialization, latency, and the active fault plan, and records the trace.
func (r *Runner) transfer(m MsgTrace) (float64, error) {
	cfg := &r.cfg
	if m.From == m.To {
		m.Start, m.Free, m.Arrive = m.Ready, m.Ready, m.Ready
		r.res.Msgs = append(r.res.Msgs, m)
		if r.liveSan != nil {
			if err := r.liveSan.checkMsg(m); err != nil {
				return 0, err
			}
		}
		return m.Ready, nil
	}
	key := [2]int{m.From, m.To}
	m.Start = m.Ready
	if r.linkFree[key] > m.Start {
		m.Start = r.linkFree[key]
	}
	bw := cfg.Network.Bandwidth
	if cfg.Faults != nil {
		pf, pt := r.phys(m.From), r.phys(m.To)
		abs := cfg.Start + m.Start
		// A flapped link defers the message to the end of the flap; a
		// permanent flap (no recovery window) is a dead link.
		if until, blocked, permanent := cfg.Faults.LinkBlocked(pf, pt, abs); blocked {
			if permanent {
				return 0, &fault.LinkDownError{From: pf, To: pt, At: abs}
			}
			m.Start = until - cfg.Start
			abs = until
		}
		// A dropped send surfaces as a retryable transient failure; the
		// injector consumes the fault, so a re-executed iteration passes
		// once the drop budget is spent.
		if cfg.Faults.DropAttempt(pf, pt, abs, msgID(m)) {
			return 0, &fault.TransientError{From: pf, To: pt, At: abs}
		}
		bw *= cfg.Faults.LinkFactor(pf, pt, abs)
	}
	m.Arrive = m.Start + cfg.Network.Latency + float64(m.Bytes)/bw
	m.Free = m.Arrive - cfg.Network.Latency
	r.linkFree[key] = m.Free
	r.res.Msgs = append(r.res.Msgs, m)
	if r.liveSan != nil {
		if err := r.liveSan.checkMsg(m); err != nil {
			return 0, err
		}
	}
	return m.Arrive, nil
}

// deliver schedules op's output transfer (if any) and deposits the arrival
// times consumers wait on. A fault on the transfer (dropped message, dead
// link) propagates as a typed error.
func (r *Runner) deliver(op schedule.Op, end float64) error {
	s, cfg := r.s, &r.cfg
	var destVirt int
	switch {
	case op.Kind == schedule.Fwd && op.Virt < s.VirtStages-1:
		destVirt = op.Virt + 1
	case op.Kind == schedule.Bwd && op.Virt > 0:
		destVirt = op.Virt - 1
	default:
		return nil
	}
	from := s.DeviceOf[op.Virt]
	to := s.DeviceOf[destVirt]
	self := msgKey{op.Kind, op.Virt, op.Micro, op.Half}
	msg := MsgTrace{Kind: op.Kind, Virt: op.Virt, Micro: op.Micro, Half: op.Half, From: from, To: to}

	switch {
	case op.NoSend:
		// Payload parked until the sibling half's aggregated send.
		r.pendingHalf[self] = end
	case op.AggSend:
		sibling := msgKey{op.Kind, op.Virt, op.Micro, (op.Half + 1) % 2}
		ready := end
		if t, ok := r.pendingHalf[sibling]; ok && t > ready {
			ready = t
		}
		delete(r.pendingHalf, sibling)
		msg.Bytes, msg.Ready = cfg.CommBytes, ready // both halves in one message
		arrival, err := r.transfer(msg)
		if err != nil {
			return err
		}
		r.arrived[self] = arrivalInfo{ready, arrival}
		r.arrived[sibling] = arrivalInfo{ready, arrival}
	default:
		bytes := cfg.CommBytes
		if op.Half >= 0 {
			bytes /= 2
		}
		msg.Bytes, msg.Ready = bytes, end
		arrival, err := r.transfer(msg)
		if err != nil {
			return err
		}
		r.arrived[self] = arrivalInfo{end, arrival}
	}
	return nil
}

// observeRun records the run duration into the "exec.run.seconds" histogram
// and emits an "exec.run" event when a sink is installed — the same telemetry
// a span would produce, without the per-run span allocation.
func observeRun(reg *obs.Registry, sw obs.Stopwatch) {
	if reg == nil {
		return
	}
	secs := sw.Elapsed().Seconds()
	reg.Histogram("exec.run.seconds").Observe(secs)
	if reg.HasSink() {
		reg.Emit("exec.run", obs.Fields{"seconds": secs})
	}
}
