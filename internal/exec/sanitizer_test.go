package exec

import (
	"errors"
	"os"
	"strings"
	"testing"

	"autopipe/internal/config"
	"autopipe/internal/errdefs"
	"autopipe/internal/fault"
	"autopipe/internal/schedule"
)

// TestMain force-enables the runtime sanitizer for every execution in this
// package: each Run in every test is validated op-by-op against the schedule
// dependency model, so an executor regression that still produces a
// plausible-looking makespan fails loudly here.
func TestMain(m *testing.M) {
	testSanitize = true
	os.Exit(m.Run())
}

// sanCfg is a non-degenerate config (real payloads, latency, overhead,
// jitter) so every sanitizer bound is exercised with non-zero slack.
func sanCfg(p int) Config {
	cfg := uniformCfg(p, 1e-3, 2e-3)
	cfg.CommBytes = 1 << 20
	cfg.Network = config.Network{Bandwidth: 1e10, Latency: 5e-6}
	cfg.KernelOverhead = 1e-6
	cfg.Jitter = 0.02
	cfg.Seed = 7
	return cfg
}

// TestSanitizerAcceptsCleanRuns: the live checker and the replay API both
// pass every schedule family the executor supports.
func TestSanitizerAcceptsCleanRuns(t *testing.T) {
	build := []struct {
		name string
		mk   func() (*schedule.Schedule, error)
	}{
		{"1f1b", func() (*schedule.Schedule, error) { return schedule.OneFOneB(4, 8) }},
		{"gpipe", func() (*schedule.Schedule, error) { return schedule.GPipe(3, 6) }},
		{"sliced", func() (*schedule.Schedule, error) { return schedule.Sliced(4, 8, 2) }},
		{"interleaved", func() (*schedule.Schedule, error) { return schedule.Interleaved(2, 4, 2) }},
	}
	for _, b := range build {
		t.Run(b.name, func(t *testing.T) {
			s, err := b.mk()
			if err != nil {
				t.Fatal(err)
			}
			cfg := sanCfg(s.VirtStages)
			cfg.Sanitize = true
			r, err := Run(s, cfg)
			if err != nil {
				t.Fatalf("sanitized run: %v", err)
			}
			if err := SanitizeResult(s, cfg, r); err != nil {
				t.Fatalf("clean trace replay: %v", err)
			}
		})
	}
}

// TestSanitizeResultForgedDependency plants the canonical happens-before
// violation: a downstream forward's start is pulled before its upstream
// producer's compute completes. The replay must reject the trace with
// errdefs.ErrInternal and name the offending op chain.
func TestSanitizeResultForgedDependency(t *testing.T) {
	s, err := schedule.OneFOneB(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sanCfg(4)
	r, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Device 1's first forward consumes device 0's first forward output.
	// Forge it to start before that producer finished computing.
	forged := r.Traces[1][0]
	forged.Start = r.Traces[0][0].End / 2
	forged.End = forged.Start + (r.Traces[1][0].End - r.Traces[1][0].Start)
	r.Traces[1][0] = forged

	err = SanitizeResult(s, cfg, r)
	if !errors.Is(err, errdefs.ErrInternal) {
		t.Fatalf("forged dependency: err = %v, want errdefs.ErrInternal", err)
	}
	if msg := err.Error(); !strings.Contains(msg, "<-") && !strings.Contains(msg, "before") {
		t.Errorf("violation %q does not describe the offending op chain", msg)
	}
}

// TestSanitizeResultForgedLinkOverlap: two messages occupying one link
// direction at once must be rejected.
func TestSanitizeResultForgedLinkOverlap(t *testing.T) {
	s, err := schedule.GPipe(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sanCfg(2)
	cfg.CommBytes = 1 << 24 // long serialization so overlap forgery is unambiguous
	r, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Find the second cross-device transfer on the 0->1 link and slide its
	// Start into the first transfer's serialization window.
	n := 0
	for i := range r.Msgs {
		m := &r.Msgs[i]
		if m.From == 0 && m.To == 1 {
			if n++; n == 2 {
				shift := m.Start - r.Msgs[i-1].Start - (r.Msgs[i-1].Free-r.Msgs[i-1].Start)/2
				m.Start -= shift
				m.Ready = m.Start
				m.Free -= shift
				m.Arrive -= shift
				break
			}
		}
	}
	if n != 2 {
		t.Fatal("expected at least two 0->1 transfers")
	}
	err = SanitizeResult(s, cfg, r)
	if !errors.Is(err, errdefs.ErrInternal) {
		t.Fatalf("overlapping link transfers: err = %v, want errdefs.ErrInternal", err)
	}
	if !strings.Contains(err.Error(), "link") {
		t.Errorf("violation %q does not mention the link", err)
	}
}

// TestSanitizeResultForgedLatency: an arrival that beats the configured link
// latency floor is physically impossible and must be rejected.
func TestSanitizeResultForgedLatency(t *testing.T) {
	s, err := schedule.OneFOneB(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sanCfg(2)
	cfg.Network.Latency = 1e-3
	r, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Msgs {
		if r.Msgs[i].From != r.Msgs[i].To {
			r.Msgs[i].Arrive = r.Msgs[i].Free // zero-latency arrival
			break
		}
	}
	if err := SanitizeResult(s, cfg, r); !errors.Is(err, errdefs.ErrInternal) {
		t.Fatalf("sub-latency arrival: err = %v, want errdefs.ErrInternal", err)
	}
}

// TestSanitizeResultForgedIssueOrder: a trace whose device executes ops in a
// different order than the schedule issues them is rejected.
func TestSanitizeResultForgedIssueOrder(t *testing.T) {
	s, err := schedule.OneFOneB(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sanCfg(2)
	r, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Traces[0][0], r.Traces[0][1] = r.Traces[0][1], r.Traces[0][0]
	if err := SanitizeResult(s, cfg, r); !errors.Is(err, errdefs.ErrInternal) {
		t.Fatalf("swapped issue order: err = %v, want errdefs.ErrInternal", err)
	}
}

// TestSanitizeResultTruncatedTrace: a trace missing ops fails the
// end-of-iteration completeness check.
func TestSanitizeResultTruncatedTrace(t *testing.T) {
	s, err := schedule.OneFOneB(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sanCfg(2)
	r, err := Run(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Traces[1] = r.Traces[1][:len(r.Traces[1])-1]
	err = SanitizeResult(s, cfg, r)
	if !errors.Is(err, errdefs.ErrInternal) {
		t.Fatalf("truncated trace: err = %v, want errdefs.ErrInternal", err)
	}
	if msg := err.Error(); !strings.Contains(msg, "never executed") && !strings.Contains(msg, "never completes") {
		t.Errorf("violation %q does not report the missing op", msg)
	}
}

// TestSanitizerActiveUnderFaults: fault plans rescale compute and bandwidth,
// so runs under an injector stay sanitizer-clean (ordering and latency bounds
// still enforced, capacity floors relaxed).
func TestSanitizerActiveUnderFaults(t *testing.T) {
	s, err := schedule.Sliced(4, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sanCfg(4)
	cfg.Sanitize = true
	cfg.Faults = fault.New(&fault.Plan{Faults: []fault.Fault{
		{Kind: fault.Straggler, At: 0, Device: 2, Factor: 3},
		{Kind: fault.LinkDegrade, At: 0, From: 0, To: 1, Factor: 0.25},
	}}, nil)
	if _, err := Run(s, cfg); err != nil {
		t.Fatalf("sanitized faulty run: %v", err)
	}
}
