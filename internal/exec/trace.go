package exec

import (
	"encoding/json"
	"fmt"
	"io"

	"autopipe/internal/schedule"
)

// chromeEvent is one entry of the Chrome trace-event format ("traceEvents"),
// loadable in chrome://tracing or Perfetto.
type chromeEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat"`
	Ph   string `json:"ph"`
	TS   int64  `json:"ts"`  // microseconds
	Dur  int64  `json:"dur"` // microseconds
	PID  int    `json:"pid"`
	TID  int    `json:"tid"`
}

// WriteChromeTrace emits the executed timeline in the Chrome trace-event
// JSON format: one track per device, forwards and backwards as complete
// events. Open the file in chrome://tracing or ui.perfetto.dev.
func (r *Result) WriteChromeTrace(w io.Writer) error {
	var events []chromeEvent
	for d, traces := range r.Traces {
		for _, tr := range traces {
			cat := "fwd"
			if tr.Op.Kind == schedule.Bwd {
				cat = "bwd"
			}
			events = append(events, chromeEvent{
				Name: tr.Op.String(),
				Cat:  cat,
				Ph:   "X",
				TS:   int64(tr.Start * 1e6),
				Dur:  int64((tr.End - tr.Start) * 1e6),
				PID:  0,
				TID:  d,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}

// CriticalPath reconstructs the critical path of an executed schedule from
// the trace: starting at the op that ends last, it repeatedly steps to the
// predecessor whose completion the current op was waiting on — the previous
// op on the same device if the device was busy until this op's start,
// otherwise the producer of the op's cross-stage input. It is the executed
// counterpart of the analytic simulator's critical path (paper §III-B) and
// the tests check the two agree on plain 1F1B pipelines.
func (r *Result) CriticalPath(s *schedule.Schedule) ([]OpTrace, error) {
	type key struct {
		kind  schedule.OpKind
		virt  int
		micro int
		half  int
	}
	byOp := map[key]OpTrace{}
	prevOn := map[int][]OpTrace{} // device -> issue order
	for d, traces := range r.Traces {
		for _, tr := range traces {
			byOp[key{tr.Op.Kind, tr.Op.Virt, tr.Op.Micro, tr.Op.Half}] = tr
			prevOn[d] = append(prevOn[d], tr)
		}
	}
	var last OpTrace
	found := false
	for _, traces := range r.Traces {
		for _, tr := range traces {
			if !found || tr.End > last.End {
				last, found = tr, true
			}
		}
	}
	if !found {
		return nil, fmt.Errorf("exec: empty trace")
	}

	var rev []OpTrace
	cur := last
	for {
		rev = append(rev, cur)
		// Candidate predecessors: the previous op on the same device and the
		// cross-stage producer. The one that finished later is the binding
		// dependency; ties resolve toward the higher stage, matching the
		// analytic simulator's uniqueness rule.
		var candidates []OpTrace
		list := prevOn[cur.Device]
		for i := range list {
			if list[i] == cur && i > 0 {
				candidates = append(candidates, list[i-1])
			}
		}
		var producer key
		hasProducer := true
		switch {
		case cur.Op.Kind == schedule.Fwd && cur.Op.Virt > 0:
			producer = key{schedule.Fwd, cur.Op.Virt - 1, cur.Op.Micro, cur.Op.Half}
		case cur.Op.Kind == schedule.Bwd && cur.Op.Virt < s.VirtStages-1:
			producer = key{schedule.Bwd, cur.Op.Virt + 1, cur.Op.Micro, cur.Op.Half}
		default:
			hasProducer = false
		}
		if hasProducer {
			p, ok := byOp[producer]
			if !ok {
				// A half consumed via an aggregated send: the sibling half's
				// op carried the payload.
				producer.half = (producer.half + 1) % 2
				p, ok = byOp[producer]
			}
			if ok {
				candidates = append(candidates, p)
			}
		}
		if len(candidates) == 0 {
			reverse(rev)
			return rev, nil
		}
		best := candidates[0]
		for _, c := range candidates[1:] {
			if c.End > best.End || (c.End == best.End && cur.Op.Kind == schedule.Bwd && c.Op.Virt > best.Op.Virt) {
				best = c
			}
		}
		cur = best
	}
}

func reverse(ops []OpTrace) {
	for i, j := 0, len(ops)-1; i < j; i, j = i+1, j-1 {
		ops[i], ops[j] = ops[j], ops[i]
	}
}
