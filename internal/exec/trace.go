package exec

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"autopipe/internal/errdefs"
	"autopipe/internal/schedule"
)

// chromeEvent is one entry of the Chrome trace-event format ("traceEvents"),
// loadable in chrome://tracing or Perfetto.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`            // microseconds
	Dur  int64          `json:"dur,omitempty"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   int            `json:"id,omitempty"` // flow binding
	BP   string         `json:"bp,omitempty"` // flow binding point
	Args map[string]any `json:"args,omitempty"`
}

// TraceOptions enriches WriteChromeTraceWith beyond the default timeline.
type TraceOptions struct {
	// Ledger, with Schedule, adds per-device live-memory counter tracks.
	Ledger *MemoryLedger
	// Schedule is required when Ledger is set.
	Schedule *schedule.Schedule
}

// WriteChromeTrace emits the executed timeline in the Chrome trace-event
// JSON format: one named thread per device, phase-categorized complete
// events for every op, flow arrows connecting each cross-stage send to its
// consumer(s), and counter tracks for per-link in-flight messages. Events
// are sorted by (pid, tid, ts) with metadata first, and the document carries
// displayTimeUnit "ms". Open the file in chrome://tracing or ui.perfetto.dev.
func (r *Result) WriteChromeTrace(w io.Writer) error {
	return r.WriteChromeTraceWith(w, TraceOptions{})
}

// WriteChromeTraceWith is WriteChromeTrace plus the optional extras in opts.
func (r *Result) WriteChromeTraceWith(w io.Writer, opts TraceOptions) error {
	events := []chromeEvent{
		{Name: "process_name", Ph: "M", Args: map[string]any{"name": "pipeline cluster"}},
	}
	for d := range r.Traces {
		events = append(events,
			chromeEvent{Name: "thread_name", Ph: "M", TID: d, Args: map[string]any{"name": fmt.Sprintf("device %d", d)}},
			chromeEvent{Name: "thread_sort_index", Ph: "M", TID: d, Args: map[string]any{"sort_index": d}},
		)
	}

	type key struct {
		kind  schedule.OpKind
		virt  int
		micro int
		half  int
	}
	byOp := map[key]OpTrace{}
	for d, traces := range r.Traces {
		ops := make([]schedule.Op, len(traces))
		for i, tr := range traces {
			ops[i] = tr.Op
			byOp[key{tr.Op.Kind, tr.Op.Virt, tr.Op.Micro, tr.Op.Half}] = tr
		}
		for i, ph := range schedule.PhasesOf(ops) {
			tr := traces[i]
			cat := "fwd"
			if tr.Op.Kind == schedule.Bwd {
				cat = "bwd"
			}
			events = append(events, chromeEvent{
				Name: tr.Op.String(),
				Cat:  cat + "," + ph.String(),
				Ph:   "X",
				TS:   int64(tr.Start * 1e6),
				Dur:  int64((tr.End - tr.Start) * 1e6),
				TID:  d,
				Args: map[string]any{"micro": tr.Op.Micro, "virt": tr.Op.Virt, "phase": ph.String()},
			})
		}
	}

	// Flow arrows: one per (message, consumer). A consumer is the matching
	// half downstream; an aggregated send (its sibling half produced no
	// message of its own) additionally feeds the sibling half's consumer.
	sent := map[key]bool{}
	for _, m := range r.Msgs {
		sent[key{m.Kind, m.Virt, m.Micro, m.Half}] = true
	}
	flowID := 0
	for _, m := range r.Msgs {
		destVirt := m.Virt + 1
		if m.Kind == schedule.Bwd {
			destVirt = m.Virt - 1
		}
		prod, ok := byOp[key{m.Kind, m.Virt, m.Micro, m.Half}]
		if !ok {
			continue
		}
		halves := []int{m.Half}
		if m.Half >= 0 && !sent[key{m.Kind, m.Virt, m.Micro, (m.Half + 1) % 2}] {
			halves = append(halves, (m.Half+1)%2)
		}
		for _, h := range halves {
			cons, ok := byOp[key{m.Kind, destVirt, m.Micro, h}]
			if !ok {
				continue
			}
			flowID++
			events = append(events,
				chromeEvent{Name: "xfer", Cat: "comm", Ph: "s", TS: int64(prod.End * 1e6), TID: m.From, ID: flowID,
					Args: map[string]any{"bytes": m.Bytes}},
				chromeEvent{Name: "xfer", Cat: "comm", Ph: "f", BP: "e", TS: int64(cons.Start * 1e6), TID: m.To, ID: flowID},
			)
		}
	}

	events = append(events, linkCounterEvents(r.Msgs)...)

	if opts.Ledger != nil && opts.Schedule != nil {
		timeline, err := opts.Ledger.Timeline(opts.Schedule, r)
		if err != nil {
			return err
		}
		for d, samples := range timeline {
			name := fmt.Sprintf("mem dev %d", d)
			for _, smp := range samples {
				events = append(events, chromeEvent{
					Name: name, Ph: "C", TS: int64(smp.At * 1e6), TID: d,
					Args: map[string]any{"bytes": smp.Bytes},
				})
			}
		}
	}

	sortEventsForTrace(events)
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"displayTimeUnit": "ms",
		"traceEvents":     events,
	})
}

// linkCounterEvents renders each directed link's in-flight message count as
// a counter track.
func linkCounterEvents(msgs []MsgTrace) []chromeEvent {
	type edge struct {
		at    float64
		delta int
	}
	links := map[[2]int][]edge{}
	for _, m := range msgs {
		if m.From == m.To {
			continue
		}
		k := [2]int{m.From, m.To}
		links[k] = append(links[k], edge{m.Start, +1}, edge{m.Free, -1})
	}
	var keys [][2]int
	for k := range links {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	var events []chromeEvent
	for _, k := range keys {
		edges := links[k]
		sort.SliceStable(edges, func(i, j int) bool {
			if edges[i].at != edges[j].at {
				return edges[i].at < edges[j].at
			}
			return edges[i].delta < edges[j].delta // frees first
		})
		name := fmt.Sprintf("link %d->%d", k[0], k[1])
		inflight := 0
		for _, e := range edges {
			inflight += e.delta
			events = append(events, chromeEvent{
				Name: name, Ph: "C", TS: int64(e.at * 1e6), TID: k[0],
				Args: map[string]any{"inflight": inflight},
			})
		}
	}
	return events
}

// sortEventsForTrace orders events by (pid, tid, ts) with metadata first and
// a fixed phase rank for determinism at equal timestamps.
func sortEventsForTrace(events []chromeEvent) {
	rank := func(ph string) int {
		switch ph {
		case "M":
			return 0
		case "C":
			return 1
		case "X":
			return 2
		case "s":
			return 3
		default:
			return 4
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		if ra, rb := rank(a.Ph), rank(b.Ph); (ra == 0) != (rb == 0) {
			return ra == 0 // metadata leads its thread regardless of ts
		}
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		return rank(a.Ph) < rank(b.Ph)
	})
}

// CriticalPath reconstructs the critical path of an executed schedule from
// the trace: starting at the op that ends last, it repeatedly steps to the
// predecessor whose completion the current op was waiting on — the previous
// op on the same device if the device was busy until this op's start,
// otherwise the producer of the op's cross-stage input. It is the executed
// counterpart of the analytic simulator's critical path (paper §III-B) and
// the tests check the two agree on plain 1F1B pipelines.
func (r *Result) CriticalPath(s *schedule.Schedule) ([]OpTrace, error) {
	type key struct {
		kind  schedule.OpKind
		virt  int
		micro int
		half  int
	}
	byOp := map[key]OpTrace{}
	prevOn := map[int][]OpTrace{} // device -> issue order
	for d, traces := range r.Traces {
		for _, tr := range traces {
			byOp[key{tr.Op.Kind, tr.Op.Virt, tr.Op.Micro, tr.Op.Half}] = tr
			prevOn[d] = append(prevOn[d], tr)
		}
	}
	var last OpTrace
	found := false
	for _, traces := range r.Traces {
		for _, tr := range traces {
			if !found || tr.End > last.End {
				last, found = tr, true
			}
		}
	}
	if !found {
		return nil, fmt.Errorf("%w: exec: empty trace", errdefs.ErrBadConfig)
	}

	var rev []OpTrace
	cur := last
	for {
		rev = append(rev, cur)
		// Candidate predecessors: the previous op on the same device and the
		// cross-stage producer. The one that finished later is the binding
		// dependency; ties resolve toward the higher stage, matching the
		// analytic simulator's uniqueness rule.
		var candidates []OpTrace
		list := prevOn[cur.Device]
		for i := range list {
			if list[i] == cur && i > 0 {
				candidates = append(candidates, list[i-1])
			}
		}
		var producer key
		hasProducer := true
		switch {
		case cur.Op.Kind == schedule.Fwd && cur.Op.Virt > 0:
			producer = key{schedule.Fwd, cur.Op.Virt - 1, cur.Op.Micro, cur.Op.Half}
		case cur.Op.Kind == schedule.Bwd && cur.Op.Virt < s.VirtStages-1:
			producer = key{schedule.Bwd, cur.Op.Virt + 1, cur.Op.Micro, cur.Op.Half}
		default:
			hasProducer = false
		}
		if hasProducer {
			p, ok := byOp[producer]
			if !ok {
				// A half consumed via an aggregated send: the sibling half's
				// op carried the payload.
				producer.half = (producer.half + 1) % 2
				p, ok = byOp[producer]
			}
			if ok {
				candidates = append(candidates, p)
			}
		}
		if len(candidates) == 0 {
			reverse(rev)
			return rev, nil
		}
		best := candidates[0]
		for _, c := range candidates[1:] {
			if c.End > best.End || (c.End == best.End && cur.Op.Kind == schedule.Bwd && c.Op.Virt > best.Op.Virt) {
				best = c
			}
		}
		cur = best
	}
}

func reverse(ops []OpTrace) {
	for i, j := 0, len(ops)-1; i < j; i, j = i+1, j-1 {
		ops[i], ops[j] = ops[j], ops[i]
	}
}
