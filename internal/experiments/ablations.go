package experiments

import (
	"fmt"

	"autopipe/internal/config"
	"autopipe/internal/cost"
	"autopipe/internal/exec"
	"autopipe/internal/model"
	"autopipe/internal/schedule"
	"autopipe/internal/slicer"
	"autopipe/internal/tableio"
)

// The ablations below go beyond the paper's figures: they isolate the design
// choices DESIGN.md calls out (sub-layer granularity, the heuristic search,
// the slicing count, and the 1F1B schedule itself) on the same simulated
// testbed.

// GranularityPoint compares planning at sub-layer versus layer granularity.
type GranularityPoint struct {
	Model          string
	Depth          int
	SubLayerIter   float64
	LayerIter      float64
	SubLayerStdDev float64
	LayerStdDev    float64
}

// AblationGranularity quantifies the paper's central design choice (§III-B):
// how much of AutoPipe's win comes from planning at sub-layer granularity
// rather than whole layers, with the identical heuristic search.
func (e Env) AblationGranularity() ([]GranularityPoint, *tableio.Table, error) {
	t := &tableio.Table{
		ID:      "abl-granularity",
		Title:   "Sub-layer vs layer granularity (same heuristic planner)",
		Columns: []string{"Model", "Stages", "Sub-layer iter (ms)", "Layer iter (ms)", "Gain", "Sub-layer stddev (ms)", "Layer stddev (ms)"},
	}
	var points []GranularityPoint
	for _, mc := range []config.Model{config.GPT2_345M(), config.BERTLarge()} {
		for _, depth := range []int{4, 8, 12} {
			p := GranularityPoint{Model: mc.Name, Depth: depth}
			for _, gran := range []model.Granularity{model.SubLayer, model.Layer} {
				bl, err := model.Build(mc, cost.Geometry{MicroBatch: 4, Checkpoint: true},
					e.Cluster.Device, e.Cluster.Network, gran)
				if err != nil {
					return nil, nil, err
				}
				res, err := e.planDepth(bl, depth, 2*depth)
				if err != nil {
					return nil, nil, err
				}
				r, err := e.runPartition(bl, res.Best.Partition, 2*depth, 0, 0)
				if err != nil {
					return nil, nil, err
				}
				if gran == model.SubLayer {
					p.SubLayerIter = r.IterTime
					p.SubLayerStdDev = res.Best.Partition.Imbalance(bl)
				} else {
					p.LayerIter = r.IterTime
					p.LayerStdDev = res.Best.Partition.Imbalance(bl)
				}
			}
			points = append(points, p)
			t.AddRow(mc.Name, fmt.Sprint(depth),
				tableio.Ms(p.SubLayerIter), tableio.Ms(p.LayerIter),
				tableio.Speedup(p.LayerIter/p.SubLayerIter),
				tableio.Ms(p.SubLayerStdDev), tableio.Ms(p.LayerStdDev))
		}
	}
	return points, t, nil
}

// HeuristicPoint compares the Algorithm 1 seed with the heuristic's result.
type HeuristicPoint struct {
	Model     string
	Depth     int
	SeedIter  float64
	FinalIter float64
	Evaluated int
}

// AblationHeuristic isolates the master-stage heuristic (§III-B step 2/3):
// the improvement over planning with Algorithm 1 alone.
func (e Env) AblationHeuristic() ([]HeuristicPoint, *tableio.Table, error) {
	t := &tableio.Table{
		ID:      "abl-heuristic",
		Title:   "Heuristic master-stage search vs Algorithm 1 seed alone",
		Columns: []string{"Model", "Stages", "Seed iter (ms)", "Heuristic iter (ms)", "Gain", "Schemes assessed"},
	}
	var points []HeuristicPoint
	for _, mc := range config.Zoo() {
		for _, depth := range []int{4, 8} {
			bl, err := e.buildSub(mc, 4)
			if err != nil {
				return nil, nil, err
			}
			res, err := e.planDepth(bl, depth, 2*depth)
			if err != nil {
				return nil, nil, err
			}
			p := HeuristicPoint{
				Model: mc.Name, Depth: depth,
				SeedIter:  res.Seed.Sim.IterTime,
				FinalIter: res.Best.Sim.IterTime,
				Evaluated: res.Evaluated,
			}
			points = append(points, p)
			t.AddRow(mc.Name, fmt.Sprint(depth),
				tableio.Ms(p.SeedIter), tableio.Ms(p.FinalIter),
				tableio.Speedup(p.SeedIter/p.FinalIter), fmt.Sprint(p.Evaluated))
		}
	}
	return points, t, nil
}

// SlicingPoint sweeps the number of sliced micro-batches.
type SlicingPoint struct {
	NumSliced int
	Solved    bool // Algorithm 2's own answer
	IterTime  float64
	Startup   float64
}

// AblationSlicingCount sweeps the slicing count around Algorithm 2's answer
// on a deep GPT-2 345M pipeline, showing that the solved count captures the
// full startup reduction and that slicing every warmup micro-batch buys
// nothing further (paper §III-C: "applying micro-batch slicing to all
// micro-batches in the Warmup phase is unnecessary").
func (e Env) AblationSlicingCount() ([]SlicingPoint, *tableio.Table, error) {
	const depth, mbs = 8, 4
	m := 2 * depth
	bl, err := e.buildSub(config.GPT2_345M(), mbs)
	if err != nil {
		return nil, nil, err
	}
	res, err := e.planDepth(bl, depth, m)
	if err != nil {
		return nil, nil, err
	}
	part := res.Best.Partition
	f, b := part.StageTimes(bl)
	sp, err := slicer.Solve(f, b, bl.Comm, m)
	if err != nil {
		return nil, nil, err
	}

	t := &tableio.Table{
		ID:      "abl-slicing",
		Title:   fmt.Sprintf("Slicing-count sweep; GPT-2 345M, %d stages (Algorithm 2 answer: %d)", depth, sp.NumSliced),
		Columns: []string{"Sliced", "Iter (ms)", "Startup (ms)", "Algorithm 2"},
	}
	var points []SlicingPoint
	for n := 0; n <= depth; n++ {
		r, err := e.runPartition(bl, part, m, n, 0)
		if err != nil {
			return nil, nil, err
		}
		p := SlicingPoint{NumSliced: n, Solved: n == sp.NumSliced, IterTime: r.IterTime, Startup: r.Startup}
		points = append(points, p)
		mark := ""
		if p.Solved {
			mark = "<-"
		}
		t.AddRow(fmt.Sprint(n), tableio.Ms(p.IterTime), tableio.Ms(p.Startup), mark)
	}
	return points, t, nil
}

// SchedulePoint compares schedules on the same partition.
type SchedulePoint struct {
	Schedule string
	Depth    int
	IterTime float64
	// PeakStash is the worst per-device activation stash in micro-batch
	// units, from the execution-trace memory ledger.
	PeakStash float64
}

// AblationSchedules runs GPipe, 1F1B, and sliced 1F1B on the same balanced
// partition, reporting time and the executed activation peak: GPipe matches
// 1F1B's makespan on a balanced pipeline but holds every micro-batch's
// activations — why 1F1B is the backbone schedule (paper §II-B).
func (e Env) AblationSchedules() ([]SchedulePoint, *tableio.Table, error) {
	const depth, mbs = 4, 4
	m := 2 * depth
	bl, err := e.buildSub(config.GPT2_345M(), mbs)
	if err != nil {
		return nil, nil, err
	}
	res, err := e.planDepth(bl, depth, m)
	if err != nil {
		return nil, nil, err
	}
	part := res.Best.Partition
	f, b := part.StageTimes(bl)
	sp, err := slicer.Solve(f, b, bl.Comm, m)
	if err != nil {
		return nil, nil, err
	}

	builders := []struct {
		name  string
		build func() (*schedule.Schedule, error)
	}{
		{"GPipe", func() (*schedule.Schedule, error) { return schedule.GPipe(depth, m) }},
		{"1F1B", func() (*schedule.Schedule, error) { return schedule.OneFOneB(depth, m) }},
		{"Sliced-1F1B", func() (*schedule.Schedule, error) { return schedule.Sliced(depth, m, sp.NumSliced) }},
	}
	t := &tableio.Table{
		ID:      "abl-schedule",
		Title:   "Schedule ablation on the planner's partition; GPT-2 345M, 4 stages",
		Columns: []string{"Schedule", "Iter (ms)", "Startup (ms)", "Peak stash (micro-batches)"},
	}
	var points []SchedulePoint
	for _, bd := range builders {
		s, err := bd.build()
		if err != nil {
			return nil, nil, err
		}
		r, err := exec.Run(s, exec.Config{
			VirtFwd: f, VirtBwd: b,
			CommBytes:      bl.List[0].OutBytes,
			Network:        e.Cluster.Network,
			KernelOverhead: e.Cluster.Device.KernelOverhead,
		})
		if err != nil {
			return nil, nil, err
		}
		// Count activation residency in whole-micro-batch units.
		ledger := &exec.MemoryLedger{StashBytes: make([]int64, depth), StaticBytes: make([]int64, depth)}
		for i := range ledger.StashBytes {
			ledger.StashBytes[i] = 2 // 2 so a half op stays integral
		}
		peaks, err := ledger.PeakUsage(s, r)
		if err != nil {
			return nil, nil, err
		}
		var worst int64
		for _, p := range peaks {
			if p > worst {
				worst = p
			}
		}
		pt := SchedulePoint{Schedule: bd.name, Depth: depth, IterTime: r.IterTime, PeakStash: float64(worst) / 2}
		points = append(points, pt)
		t.AddRow(bd.name, tableio.Ms(r.IterTime), tableio.Ms(r.Startup), fmt.Sprintf("%.1f", pt.PeakStash))
	}
	return points, t, nil
}
