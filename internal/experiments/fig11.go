package experiments

import (
	"fmt"

	"autopipe/internal/config"
	"autopipe/internal/sim"
	"autopipe/internal/tableio"
)

// Fig11Point compares the planner's analytic simulator against an "actual"
// executor run for one Table II scheme.
type Fig11Point struct {
	SchemeID int
	// Simulated and Actual are per-micro-batch execution times in seconds.
	Simulated float64
	Actual    float64
}

// Fig11 reproduces paper Fig. 11: the pipeline simulator's per-micro-batch
// execution time versus the actual run, across the seven GPT-2 345M
// partition schemes of Table II. The executor charges kernel-launch
// overheads, link latency/serialization, and deterministic jitter that the
// analytic simulator deliberately omits, so the actual curve sits at a
// stable offset above the simulated one while both follow the same trend —
// the property that makes planning on simulator output sound.
func (e Env) Fig11() ([]Fig11Point, *tableio.Table, error) {
	const m, mbs = 8, 4
	bl, err := e.buildSub(config.GPT2_345M(), mbs)
	if err != nil {
		return nil, nil, err
	}
	var points []Fig11Point
	t := &tableio.Table{
		ID:      "fig11",
		Title:   "Simulator vs actual per-micro-batch time (ms), Table II schemes",
		Columns: []string{"Partition ID", "Simulator", "Actual", "Gap"},
	}
	for _, s := range Table2Schemes() {
		part, err := SchemePartition(s, bl.Len())
		if err != nil {
			return nil, nil, err
		}
		f, b := part.StageTimes(bl)
		sr, err := sim.Simulate(f, b, bl.Comm, m)
		if err != nil {
			return nil, nil, err
		}
		// The "actual" run: the executor with launch overhead and ±2%
		// deterministic jitter standing in for the hardware testbed.
		ar, err := e.runPartition(bl, part, m, 0, 0.02)
		if err != nil {
			return nil, nil, err
		}
		p := Fig11Point{
			SchemeID:  s.ID,
			Simulated: sr.IterTime / float64(m),
			Actual:    ar.IterTime / float64(m),
		}
		points = append(points, p)
		t.AddRow(fmt.Sprint(s.ID), tableio.Ms(p.Simulated), tableio.Ms(p.Actual),
			tableio.Ms(p.Actual-p.Simulated))
	}
	return points, t, nil
}
