package experiments

import (
	"fmt"

	"autopipe/internal/config"
	"autopipe/internal/tableio"
)

// Fig9Point is one measured configuration of Fig. 9.
type Fig9Point struct {
	Model   string
	Mbs     int
	Results map[string]MethodResult
}

// Fig9 reproduces paper Fig. 9: iteration time under different micro-batch
// sizes with a fixed 4-stage pipeline and 8 micro-batches per iteration, for
// Megatron-LM, the Slicer alone, the Planner alone, and full AutoPipe.
// GPT-2 762M runs out of memory at micro-batch 32, so — like the paper — its
// sweep tops out at 24.
func (e Env) Fig9() ([]Fig9Point, *tableio.Table, error) {
	const depth, m = 4, 8
	models := []config.Model{config.GPT2_345M(), config.GPT2_762M(), config.BERTLarge()}
	sizes := []int{4, 8, 16, 24, 32}

	var points []Fig9Point
	t := &tableio.Table{
		ID:      "fig9",
		Title:   "Iteration time (ms) vs micro-batch size; 4 stages, 8 micro-batches",
		Columns: []string{"Model", "Mbs", SeriesMegatron, SeriesSlicer, SeriesPlanner, SeriesAutoPipe, "AutoPipe speedup"},
	}
	for _, mc := range models {
		for _, mbs := range sizes {
			res, err := e.ComparePoint(mc, depth, mbs, m)
			if err != nil {
				return nil, nil, err
			}
			points = append(points, Fig9Point{Model: mc.Name, Mbs: mbs, Results: res})
			t.AddRow(mc.Name, fmt.Sprint(mbs),
				cell(res[SeriesMegatron]), cell(res[SeriesSlicer]),
				cell(res[SeriesPlanner]), cell(res[SeriesAutoPipe]),
				speedupCell(res[SeriesMegatron], res[SeriesAutoPipe]))
		}
	}
	t.Note("OOM marks configurations exceeding 24 GB device memory (GPT-2 762M at micro-batch 32, as in the paper)")
	return points, t, nil
}

// Fig10Point is one measured configuration of Fig. 10.
type Fig10Point struct {
	Model   string
	Depth   int
	Results map[string]MethodResult
}

// Fig10 reproduces paper Fig. 10: iteration time at different pipeline
// depths with the micro-batch count fixed to twice the depth. Micro-batch
// size is 4 for the GPT-2 models and 16 for BERT-large; GPT-2 762M uses a
// 9-stage pipeline instead of 8 because Megatron-LM needs the depth to
// divide the layer count.
func (e Env) Fig10() ([]Fig10Point, *tableio.Table, error) {
	type modelCase struct {
		mc     config.Model
		mbs    int
		depths []int
	}
	cases := []modelCase{
		{config.GPT2_345M(), 4, []int{2, 4, 8, 12}},
		{config.GPT2_762M(), 4, []int{2, 4, 9, 12}},
		{config.BERTLarge(), 16, []int{2, 4, 8, 12}},
	}
	var points []Fig10Point
	t := &tableio.Table{
		ID:      "fig10",
		Title:   "Iteration time (ms) vs pipeline depth; micro-batches = 2 x depth",
		Columns: []string{"Model", "Stages", SeriesMegatron, SeriesSlicer, SeriesPlanner, SeriesAutoPipe, "AutoPipe speedup"},
	}
	for _, c := range cases {
		for _, depth := range c.depths {
			res, err := e.ComparePoint(c.mc, depth, c.mbs, 2*depth)
			if err != nil {
				return nil, nil, err
			}
			points = append(points, Fig10Point{Model: c.mc.Name, Depth: depth, Results: res})
			t.AddRow(c.mc.Name, fmt.Sprint(depth),
				cell(res[SeriesMegatron]), cell(res[SeriesSlicer]),
				cell(res[SeriesPlanner]), cell(res[SeriesAutoPipe]),
				speedupCell(res[SeriesMegatron], res[SeriesAutoPipe]))
		}
	}
	return points, t, nil
}

func cell(r MethodResult) string {
	switch {
	case r.Infeasible:
		return "X"
	case r.OOM:
		return "OOM"
	default:
		return tableio.Ms(r.IterTime)
	}
}

func speedupCell(base, autopipe MethodResult) string {
	if base.OOM || autopipe.OOM || base.Infeasible || autopipe.Infeasible || autopipe.IterTime == 0 {
		return "-"
	}
	return tableio.Speedup(base.IterTime / autopipe.IterTime)
}
