package experiments

import (
	"fmt"
	"strings"
	"testing"

	"autopipe/internal/config"
)

// These tests pin the paper's shape claims: who wins, by roughly what
// factor, and where the crossovers and failures fall. Absolute numbers
// come from the simulated testbed and are recorded in EXPERIMENTS.md; the
// assertions here use generous bands around the paper's reported ranges.

func TestTable1ParamsMatchPaper(t *testing.T) {
	e := DefaultEnv()
	tab, err := e.Table1()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][2]float64{ // acceptable millions-of-params band
		"GPT-2 345M": {330, 380},
		"GPT-2 762M": {730, 800},
		"GPT-2 1.3B": {1250, 1380},
		"BERT-large": {320, 360},
	}
	for _, row := range tab.Rows {
		band, ok := want[row[0]]
		if !ok {
			t.Errorf("unexpected model %q", row[0])
			continue
		}
		var params float64
		if _, err := sscan(row[3], &params); err != nil {
			t.Fatalf("bad params cell %q", row[3])
		}
		if params < band[0] || params > band[1] {
			t.Errorf("%s: %v M params outside paper band %v", row[0], params, band)
		}
	}
}

func TestTable2BalancedSchemesBeatTheWorst(t *testing.T) {
	e := DefaultEnv()
	tab, err := e.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("Table II has %d schemes, want 7", len(tab.Rows))
	}
	// Scheme 1 (even-ish: 5/7/6/6 with the head on a 6-layer stage) must be
	// the slowest; scheme 4 (the planner's own choice, 6.5/6.5/6.5/4.5)
	// must be the fastest.
	var iters []float64
	for _, row := range tab.Rows {
		var v float64
		if _, err := sscan(row[5], &v); err != nil {
			t.Fatal(err)
		}
		iters = append(iters, v)
	}
	for i, v := range iters {
		if v > iters[0]+1e-9 {
			t.Errorf("scheme %d (%.1f ms) slower than scheme 1 (%.1f ms)", i+1, v, iters[0])
		}
		if v < iters[3]-1e-9 {
			t.Errorf("scheme %d (%.1f ms) faster than scheme 4 (%.1f ms)", i+1, v, iters[3])
		}
	}
}

func TestFig9Shapes(t *testing.T) {
	e := DefaultEnv()
	points, _, err := e.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		mega := p.Results[SeriesMegatron]
		auto := p.Results[SeriesAutoPipe]
		planner := p.Results[SeriesPlanner]
		slicer := p.Results[SeriesSlicer]

		// GPT-2 762M OOMs at micro-batch 32 under the even partition — the
		// paper's reason to cap its sweep at 24.
		if p.Model == "GPT-2 762M" && p.Mbs == 32 {
			if !mega.OOM || !slicer.OOM {
				t.Errorf("762M mbs=32: Megatron/Slicer should OOM, got %+v / %+v", mega, slicer)
			}
			continue
		}
		if mega.OOM || auto.OOM {
			t.Errorf("%s mbs=%d: unexpected OOM", p.Model, p.Mbs)
			continue
		}
		speedup := mega.IterTime / auto.IterTime
		if speedup < 1.02 || speedup > 1.25 {
			t.Errorf("%s mbs=%d: AutoPipe speedup %.3fx outside the paper band [1.02,1.25]", p.Model, p.Mbs, speedup)
		}
		// Each component helps on its own at depth 4.
		if planner.IterTime >= mega.IterTime {
			t.Errorf("%s mbs=%d: Planner (%.1f ms) no better than Megatron (%.1f ms)",
				p.Model, p.Mbs, planner.IterTime*1e3, mega.IterTime*1e3)
		}
		if slicer.IterTime >= mega.IterTime {
			t.Errorf("%s mbs=%d: Slicer (%.1f ms) no better than Megatron (%.1f ms)",
				p.Model, p.Mbs, slicer.IterTime*1e3, mega.IterTime*1e3)
		}
		// Combining both wins over either alone.
		if auto.IterTime >= planner.IterTime || auto.IterTime >= slicer.IterTime {
			t.Errorf("%s mbs=%d: AutoPipe not the best of its parts", p.Model, p.Mbs)
		}
	}
}

func TestFig10SpeedupGrowsWithDepth(t *testing.T) {
	e := DefaultEnv()
	points, _, err := e.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	last := map[string]float64{}
	for _, p := range points {
		mega := p.Results[SeriesMegatron]
		auto := p.Results[SeriesAutoPipe]
		speedup := mega.IterTime / auto.IterTime
		if speedup < 1.0 || speedup > 1.45 {
			t.Errorf("%s depth=%d: speedup %.3fx outside [1.0,1.45]", p.Model, p.Depth, speedup)
		}
		// The paper's trend: improvement grows with pipeline depth.
		if prev, ok := last[p.Model]; ok && speedup < prev-0.01 {
			t.Errorf("%s depth=%d: speedup %.3fx fell below shallower depth's %.3fx", p.Model, p.Depth, speedup, prev)
		}
		last[p.Model] = speedup
	}
	// At the deepest pipelines the advantage reaches the ~1.3x headline.
	if last["GPT-2 345M"] < 1.25 {
		t.Errorf("GPT-2 345M deep-pipeline speedup %.3fx, want >= 1.25 (paper: 1.30x)", last["GPT-2 345M"])
	}
}

func TestFig11SimulatorTracksActual(t *testing.T) {
	e := DefaultEnv()
	points, _, err := e.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 7 {
		t.Fatalf("Fig 11 has %d schemes, want 7", len(points))
	}
	var gaps []float64
	for _, p := range points {
		gap := p.Actual - p.Simulated
		if gap <= 0 {
			t.Errorf("scheme %d: actual (%.2f ms) not above simulated (%.2f ms)", p.SchemeID, p.Actual*1e3, p.Simulated*1e3)
		}
		gaps = append(gaps, gap)
	}
	// The gap must be stable across schemes (paper: "relatively stable"):
	// max deviation within 50% of the mean gap.
	var mean float64
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	for i, g := range gaps {
		if g < mean*0.5 || g > mean*1.5 {
			t.Errorf("scheme %d: gap %.2f ms not stable around mean %.2f ms", i+1, g*1e3, mean*1e3)
		}
	}
	// And the trend must agree: the scheme ordering by simulated time
	// matches the ordering by actual time for the extremes.
	worstSim, bestSim, worstAct, bestAct := 0, 0, 0, 0
	for i, p := range points {
		if p.Simulated > points[worstSim].Simulated {
			worstSim = i
		}
		if p.Simulated < points[bestSim].Simulated {
			bestSim = i
		}
		if p.Actual > points[worstAct].Actual {
			worstAct = i
		}
		if p.Actual < points[bestAct].Actual {
			bestAct = i
		}
	}
	if worstSim != worstAct || bestSim != bestAct {
		t.Errorf("simulator and actual disagree on extremes: sim (%d,%d) vs actual (%d,%d)",
			bestSim, worstSim, bestAct, worstAct)
	}
}

func TestTable3LowMemoryShapes(t *testing.T) {
	e := DefaultEnv()
	rows, _, err := e.Table3()
	if err != nil {
		t.Fatal(err)
	}
	byKey := indexRows(rows)
	// 4 GPUs: Piper and AutoPipe similar (within 5%), DAPPLE much worse
	// (paper: 11091 vs ~6500, a 1.7x gap; we accept >= 1.3x).
	for i, gbs := range []int{128, 256, 512} {
		d := byKey["GPT-2 345M/4/D"].Cells[i]
		p := byKey["GPT-2 345M/4/P"].Cells[i]
		a := byKey["GPT-2 345M/4/A"].Cells[i]
		if d.Err != "" || p.Err != "" || a.Err != "" {
			t.Fatalf("4 GPUs gbs=%d: unexpected errors %v %v %v", gbs, d.Err, p.Err, a.Err)
		}
		if ratio := d.IterTime / a.IterTime; ratio < 1.3 {
			t.Errorf("4 GPUs gbs=%d: DAPPLE only %.2fx slower than AutoPipe, want >= 1.3x", gbs, ratio)
		}
		if rel := p.IterTime/a.IterTime - 1; rel < -0.02 || rel > 0.05 {
			t.Errorf("4 GPUs gbs=%d: Piper vs AutoPipe off by %.1f%%, want similar", gbs, rel*100)
		}
	}
	// 16 GPUs: DAPPLE hits a runtime error (replicas exceed the micro-batch
	// size), the paper's '-' cells.
	for i := range []int{128, 256, 512} {
		if c := byKey["GPT-2 345M/16/D"].Cells[i]; !strings.Contains(c.Err, "runtime error") {
			t.Errorf("16 GPUs: DAPPLE cell %d should be a runtime error, got %+v", i, c)
		}
	}
}

func TestTable4HighMemoryShapes(t *testing.T) {
	e := DefaultEnv()
	rows, _, err := e.Table4()
	if err != nil {
		t.Fatal(err)
	}
	byKey := indexRows(rows)
	for _, g := range []int{4, 8} {
		for i := range []int{512, 1024, 2048} {
			// GPT-2 345M: AutoPipe beats both baselines (paper: up to 1.19x
			// over DAPPLE and 1.18x over Piper).
			d := byKey["GPT-2 345M/"+itoa(g)+"/D"].Cells[i]
			p := byKey["GPT-2 345M/"+itoa(g)+"/P"].Cells[i]
			a := byKey["GPT-2 345M/"+itoa(g)+"/A"].Cells[i]
			if d.Err != "" || p.Err != "" || a.Err != "" {
				t.Fatalf("345M %d GPUs: unexpected errors %q %q %q", g, d.Err, p.Err, a.Err)
			}
			if a.IterTime >= d.IterTime || a.IterTime >= p.IterTime {
				t.Errorf("345M %d GPUs cell %d: AutoPipe (%.0f ms) not fastest (D %.0f, P %.0f)",
					g, i, a.IterTime*1e3, d.IterTime*1e3, p.IterTime*1e3)
			}
			// GPT-2 1.3B: DAPPLE OOMs; AutoPipe beats Piper by 1.05-1.15x
			// (paper: 1.07-1.14x).
			d13 := byKey["GPT-2 1.3B/"+itoa(g)+"/D"].Cells[i]
			p13 := byKey["GPT-2 1.3B/"+itoa(g)+"/P"].Cells[i]
			a13 := byKey["GPT-2 1.3B/"+itoa(g)+"/A"].Cells[i]
			if !strings.HasPrefix(d13.Err, "OOM") {
				t.Errorf("1.3B %d GPUs: DAPPLE should OOM, got %+v", g, d13)
			}
			if p13.Err != "" || a13.Err != "" {
				t.Fatalf("1.3B %d GPUs: unexpected errors %q %q", g, p13.Err, a13.Err)
			}
			if ratio := p13.IterTime / a13.IterTime; ratio < 1.04 || ratio > 1.25 {
				t.Errorf("1.3B %d GPUs cell %d: Piper/AutoPipe ratio %.3fx outside [1.04,1.25]", g, i, ratio)
			}
		}
	}
}

func TestFig12SearchTimeOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("DAPPLE's exhaustive sweep is slow; skipped with -short")
	}
	e := DefaultEnv()
	points, _, err := e.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	times := map[string]map[string]float64{}
	for _, p := range points {
		if times[p.Model] == nil {
			times[p.Model] = map[string]float64{}
		}
		times[p.Model][p.Planner] = p.Search.Seconds()
	}
	for model, m := range times {
		if !(m["DAPPLE"] > m["Piper"] && m["Piper"] > m["AutoPipe"]) {
			t.Errorf("%s: search times not ordered D > P > A: %v", model, m)
		}
		if m["DAPPLE"] < 10*m["AutoPipe"] {
			t.Errorf("%s: DAPPLE only %.1fx slower than AutoPipe, want an order of magnitude",
				model, m["DAPPLE"]/m["AutoPipe"])
		}
	}
}

func TestFig13BalanceImprovement(t *testing.T) {
	e := DefaultEnv()
	points, _, err := e.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	auto := map[int]float64{}
	for _, p := range points {
		if p.Planner == "AutoPipe" {
			auto[p.GPUs] = p.StdDev
		}
	}
	for _, p := range points {
		if p.Planner == "AutoPipe" {
			continue
		}
		ratio := p.StdDev / auto[p.GPUs]
		// Paper: 2.73x-12.7x improvement. Accept anything >= 2x.
		if ratio < 2 {
			t.Errorf("%s on %d GPUs: balance only %.2fx worse than AutoPipe, want >= 2x", p.Planner, p.GPUs, ratio)
		}
	}
}

func TestFig14StartupShapes(t *testing.T) {
	e := DefaultEnv()
	a, _, err := e.Fig14a()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range a {
		mega := p.Results[SeriesMegatron]
		inter := p.Results[SeriesInterleaved]
		slc := p.Results[SeriesSlicer]
		auto := p.Results[SeriesAutoPipe]
		// The interleaved schedule OOMs at micro-batch 32 and only there.
		if (p.Mbs == 32) != inter.OOM {
			t.Errorf("mbs=%d: interleaved OOM=%v, want OOM only at 32", p.Mbs, inter.OOM)
		}
		// Slicer halves the startup (within 10%).
		if r := mega.Startup / slc.Startup; r < 1.8 || r > 2.2 {
			t.Errorf("mbs=%d: Slicer startup reduction %.2fx, want ~2x", p.Mbs, r)
		}
		if !inter.OOM {
			if r := mega.Startup / inter.Startup; r < 1.7 || r > 2.3 {
				t.Errorf("mbs=%d: interleaved startup reduction %.2fx, want ~2x", p.Mbs, r)
			}
		}
		// AutoPipe's startup is slightly above the Slicer's (balancing moves
		// load forward) but still roughly half of Megatron's.
		if auto.Startup < slc.Startup {
			t.Errorf("mbs=%d: AutoPipe startup %.1f ms below Slicer %.1f ms", p.Mbs, auto.Startup*1e3, slc.Startup*1e3)
		}
		if auto.Startup > 0.65*mega.Startup {
			t.Errorf("mbs=%d: AutoPipe startup %.1f ms not close to half of Megatron %.1f ms", p.Mbs, auto.Startup*1e3, mega.Startup*1e3)
		}
	}

	b, _, err := e.Fig14b()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range b {
		inter := p.Results[SeriesInterleaved]
		// 24 layers over 8 stages = 3 layers per stage: not splittable into
		// two chunks, the paper's 'X'.
		if (p.Depth == 8) != inter.Infeasible {
			t.Errorf("depth=%d: interleaved infeasible=%v, want only at 8", p.Depth, inter.Infeasible)
		}
	}
}

func TestComparePointRejectsBadDepth(t *testing.T) {
	e := DefaultEnv()
	if _, err := e.ComparePoint(config.GPT2_345M(), 5, 4, 8); err == nil {
		t.Error("want error: 5 stages do not divide 24 layers for Megatron's even partition")
	}
}

// indexRows keys planner rows by model/gpus/alg.
func indexRows(rows []PlannerRow) map[string]PlannerRow {
	out := make(map[string]PlannerRow, len(rows))
	for _, r := range rows {
		out[r.Model+"/"+itoa(r.GPUs)+"/"+r.Planner] = r
	}
	return out
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func sscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}
