package experiments

import (
	"fmt"

	"autopipe/internal/baselines/dapple"
	"autopipe/internal/baselines/piper"
	"autopipe/internal/config"
	"autopipe/internal/model"
	"autopipe/internal/plan"
	"autopipe/internal/tableio"
)

// PlannerCell is one (planner, global batch) measurement of Tables III/IV.
type PlannerCell struct {
	// IterTime is in seconds; Err carries "OOM"/"runtime error" markers.
	IterTime float64
	Err      string
}

// PlannerRow is one (model, mbs, #GPUs, planner) row of Tables III/IV.
type PlannerRow struct {
	Model   string
	Mbs     int
	GPUs    int
	Planner string // "D", "P", or "A"
	Spec    *plan.Spec
	Blocks  *model.Blocks
	Cells   []PlannerCell // one per global batch size
}

// plannerComparison runs DAPPLE, Piper, and AutoPipe for each (model, mbs,
// #GPUs) case and evaluates their plans at each global batch size — the
// paper's "applying corresponding algorithms' results to Megatron-LM".
func (e Env) plannerComparison(mc config.Model, mbs int, gpus []int, gbs []int) ([]PlannerRow, error) {
	var rows []PlannerRow
	for _, g := range gpus {
		cl := e.Cluster
		cl.NumGPUs = g
		for _, alg := range []string{"D", "P", "A"} {
			row := PlannerRow{Model: mc.Name, Mbs: mbs, GPUs: g, Planner: alg}
			for _, b := range gbs {
				run := config.Run{MicroBatch: mbs, GlobalBatch: b, Checkpoint: true}
				var (
					spec *plan.Spec
					bl   *model.Blocks
					err  error
				)
				switch alg {
				case "D":
					spec, bl, err = dapple.Plan(mc, run, cl, dapple.Options{})
				case "P":
					// Piper is constrained to the shared Megatron backend:
					// activation checkpointing mandated, no tensor
					// parallelism (see package piper).
					spec, bl, err = piper.Plan(mc, run, cl, piper.Options{})
				default:
					spec, bl, err = e.planCluster(mc, run, cl)
				}
				if err != nil {
					// AutoPipe refuses memory-infeasible configurations at
					// planning time; report the cell as OOM.
					row.Cells = append(row.Cells, PlannerCell{Err: "OOM"})
					continue
				}
				res, err := plan.Evaluate(spec, bl, run, cl)
				if err != nil {
					return nil, err
				}
				row.Spec, row.Blocks = spec, bl
				if res.Err != "" {
					row.Cells = append(row.Cells, PlannerCell{Err: res.Err})
					continue
				}
				row.Cells = append(row.Cells, PlannerCell{IterTime: res.IterTime})
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func plannerTable(id, title string, gbs []int, rows []PlannerRow) *tableio.Table {
	cols := []string{"Model", "Mbs", "# of GPUs", "Alg."}
	for _, b := range gbs {
		cols = append(cols, fmt.Sprintf("Gbs=%d", b))
	}
	t := &tableio.Table{ID: id, Title: title, Columns: cols}
	for _, r := range rows {
		cells := []string{r.Model, fmt.Sprint(r.Mbs), fmt.Sprint(r.GPUs), r.Planner}
		for _, c := range r.Cells {
			switch {
			case c.Err == "":
				cells = append(cells, tableio.Ms(c.IterTime))
			case len(c.Err) >= 3 && c.Err[:3] == "OOM":
				cells = append(cells, "OOM")
			default:
				cells = append(cells, "-")
			}
		}
		t.AddRow(cells...)
	}
	t.Note("D = DAPPLE Planner, P = Piper, A = AutoPipe Planner; times are ms per iteration; '-' marks a runtime error")
	return t
}

// Table3 reproduces paper Table III: planner comparison with low memory
// demand (GPT-2 345M, micro-batch 4, 4 and 16 GPUs).
func (e Env) Table3() ([]PlannerRow, *tableio.Table, error) {
	gbs := []int{128, 256, 512}
	rows, err := e.plannerComparison(config.GPT2_345M(), 4, []int{4, 16}, gbs)
	if err != nil {
		return nil, nil, err
	}
	return rows, plannerTable("table3", "Planner comparison with low memory demand", gbs, rows), nil
}

// Table4 reproduces paper Table IV: planner comparison with high memory
// demand (GPT-2 345M at micro-batch 32 and GPT-2 1.3B at micro-batch 16,
// each on 4 and 8 GPUs).
func (e Env) Table4() ([]PlannerRow, *tableio.Table, error) {
	gbs := []int{512, 1024, 2048}
	rows345, err := e.plannerComparison(config.GPT2_345M(), 32, []int{4, 8}, gbs)
	if err != nil {
		return nil, nil, err
	}
	rows13, err := e.plannerComparison(config.GPT2_1_3B(), 16, []int{4, 8}, gbs)
	if err != nil {
		return nil, nil, err
	}
	rows := append(rows345, rows13...)
	return rows, plannerTable("table4", "Planner comparison with high memory demand", gbs, rows), nil
}
