package experiments

import (
	"fmt"

	"autopipe/internal/config"
	"autopipe/internal/fault"
	"autopipe/internal/nn"
	"autopipe/internal/obs"
	"autopipe/internal/tableio"
	"autopipe/internal/train"
)

// ResilienceRow is one scenario of the self-healing sweep: the same tiny
// training run under a different injected fault class, with what the driver
// did about it and what it cost.
type ResilienceRow struct {
	Scenario string
	// Iters is the number of completed training iterations (always the
	// configured step count — every scenario below is survivable).
	Iters int
	// Retries/Replans/Recoveries count the driver's healing actions.
	Retries    int
	Replans    int
	Recoveries int
	// FinalDepth is the pipeline depth training ended on (reduced after a
	// device loss).
	FinalDepth int
	// Downtime is the summed modeled recovery latency in simulated seconds;
	// Clock the total simulated time including it.
	Downtime float64
	Clock    float64
	// Throughput is iterations per simulated second, net of downtime.
	Throughput float64
	// FinalLoss is the last training loss — the cross-scenario sanity check
	// that recovery resumed from a faithful checkpoint instead of
	// restarting.
	FinalLoss float64
}

// resilienceSteps is the per-scenario iteration count. The injected fault
// times below are tuned to this horizon on the derated cluster (one
// iteration ≈ 0.07 simulated seconds).
const resilienceSteps = 8

// resilienceConfig mirrors the driver test fixture: a 2-layer GPT across 3
// devices on a derated cluster, so the micro-model's compute dominates
// launch overhead and link latency and compute faults are visible. The
// testbed constants in e.Cluster would drown a model this small in
// overhead.
func (e Env) resilienceConfig() train.DriverConfig {
	cl := e.Cluster
	cl.Device.FlopsPerSec = 1e9
	cl.Device.MemBandwidth = 1e9
	cl.Device.KernelOverhead = 1e-5
	cl.Network = config.Network{Bandwidth: 1e9, Latency: 1e-6}
	return train.DriverConfig{
		Model: config.Model{Name: "gpt-micro", Layers: 2, Hidden: 16, Heads: 2,
			FFNMult: 4, SeqLen: 8, Vocab: 17},
		NN:       nn.GPTConfig{Vocab: 17, MaxSeq: 8, Hidden: 16, Heads: 2, Layers: 2, FFNMult: 4, Seed: 7},
		Cluster:  cl,
		Depth:    3,
		Micro:    4,
		Batch:    4,
		Steps:    resilienceSteps,
		LR:       2e-3,
		DataSeed: 3,
		Search:   e.Search,
	}
}

// Resilience runs the self-healing training driver under one fault class per
// scenario (beyond the paper; DESIGN.md §10): a clean baseline, a transient
// message drop (retry), a sustained straggler (live re-plan), and a
// permanent device crash (checkpoint → re-partition over survivors →
// resume). When e.Faults is set, the custom plan is appended as a fifth
// scenario. Every run completes its full step count — the rows measure the
// cost of surviving, not whether survival happened.
func (e Env) Resilience() ([]ResilienceRow, *tableio.Table, error) {
	scenarios := []struct {
		name string
		plan *fault.Plan
	}{
		{"clean", nil},
		{"transient-drop", &fault.Plan{Name: "transient-drop", Seed: 13, Faults: []fault.Fault{
			{Kind: fault.MsgDrop, At: 0, From: 0, To: 1, Count: 1},
		}}},
		{"straggler", &fault.Plan{Name: "straggler", Seed: 13, Faults: []fault.Fault{
			{Kind: fault.Straggler, At: 0.08, Duration: 0.3, Device: 2, Factor: 2.5},
		}}},
		{"device-crash", &fault.Plan{Name: "device-crash", Seed: 13, Faults: []fault.Fault{
			{Kind: fault.DeviceCrash, At: 0.45, Device: 1},
		}}},
	}
	if e.Faults != nil {
		name := e.Faults.Name
		if name == "" {
			name = "custom"
		}
		scenarios = append(scenarios, struct {
			name string
			plan *fault.Plan
		}{name, e.Faults})
	}

	var rows []ResilienceRow
	for _, sc := range scenarios {
		cfg := e.resilienceConfig()
		cfg.Faults = sc.plan
		cfg.Obs = obs.NewRegistry()
		rep, err := train.RunDriver(e.ctx(), cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: resilience %s: %w", sc.name, err)
		}
		row := ResilienceRow{
			Scenario:   sc.name,
			Iters:      len(rep.Iters),
			Retries:    rep.Retries,
			Replans:    rep.Replans,
			Recoveries: len(rep.Recoveries),
			FinalDepth: rep.FinalDepth,
			Clock:      rep.Clock,
		}
		for _, r := range rep.Recoveries {
			row.Downtime += r.Downtime
		}
		if rep.Clock > 0 {
			row.Throughput = float64(len(rep.Iters)) / rep.Clock
		}
		if n := len(rep.Losses); n > 0 {
			row.FinalLoss = rep.Losses[n-1]
		}
		rows = append(rows, row)
	}

	t := &tableio.Table{
		ID:    "resilience",
		Title: "Self-healing driver under injected faults (beyond the paper; DESIGN.md §10)",
		Columns: []string{"Scenario", "Iters", "Retries", "Replans", "Recoveries",
			"Final depth", "Downtime (ms)", "Clock (s)", "Iter/s", "Final loss"},
	}
	for _, r := range rows {
		t.AddRowf(r.Scenario, r.Iters, r.Retries, r.Replans, r.Recoveries, r.FinalDepth,
			fmt.Sprintf("%.2f", r.Downtime*1e3), fmt.Sprintf("%.3f", r.Clock),
			fmt.Sprintf("%.2f", r.Throughput), fmt.Sprintf("%.4f", r.FinalLoss))
	}
	t.Note("All scenarios complete the full %d iterations; fault times are absolute on the simulated clock.", resilienceSteps)
	t.Note("device-crash re-partitions over the two survivors, so its final depth is 2 and its throughput includes checkpoint + replan downtime.")
	return rows, t, nil
}
