package experiments

import (
	"testing"

	"autopipe/internal/config"
	"autopipe/internal/core"
	"autopipe/internal/obs"
)

// TestPlannerTelemetry checks the planner-telemetry record carries the three
// required facts — candidates evaluated, moves accepted, final predicted
// iteration time — with sane relationships, for every evaluation model.
func TestPlannerTelemetry(t *testing.T) {
	e := DefaultEnv()
	records, table, err := e.PlannerTelemetry()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("%d records, want 3", len(records))
	}
	if len(table.Rows) != len(records) {
		t.Errorf("table has %d rows for %d records", len(table.Rows), len(records))
	}
	for _, r := range records {
		if r.Candidates < 1 {
			t.Errorf("%s: %d candidates, want >= 1", r.Model, r.Candidates)
		}
		if r.Accepted < 1 || r.Accepted > r.Candidates {
			t.Errorf("%s: accepted %d of %d candidates", r.Model, r.Accepted, r.Candidates)
		}
		if r.FinalIter <= 0 || r.FinalIter > r.FirstIter {
			t.Errorf("%s: final predicted iter %g, seed %g — search must not regress",
				r.Model, r.FinalIter, r.FirstIter)
		}
		if r.NumSliced < 1 || r.NumSliced >= r.Depth {
			t.Errorf("%s: NumSliced = %d for depth %d", r.Model, r.NumSliced, r.Depth)
		}
		if r.SliceRounds < 1 {
			t.Errorf("%s: slicer took %d rounds, want >= 1", r.Model, r.SliceRounds)
		}
	}
}

// TestTelemetryPublish routes a planner run's telemetry into an obs registry
// and checks the exported names.
func TestTelemetryPublish(t *testing.T) {
	e := DefaultEnv()
	bl, err := e.buildSub(config.GPT2_345M(), 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.PlanDepth(bl, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	res.Telemetry.Publish(reg, "planner.p4")
	snap := reg.Snapshot()
	if got := snap.Counters["planner.p4.candidates"]; got != float64(res.Telemetry.Candidates) {
		t.Errorf("candidates counter = %g, want %d", got, res.Telemetry.Candidates)
	}
	if got := snap.Counters["planner.p4.accepted"]; got != float64(res.Telemetry.Accepted) {
		t.Errorf("accepted counter = %g, want %d", got, res.Telemetry.Accepted)
	}
	if got := snap.Gauges["planner.p4.final_iter_s"]; got != res.Telemetry.Final {
		t.Errorf("final gauge = %g, want %g", got, res.Telemetry.Final)
	}
	if st := snap.Histograms["planner.p4.convergence_s"]; st.Count != int64(len(res.Telemetry.Convergence)) {
		t.Errorf("convergence histogram has %d samples, want %d", st.Count, len(res.Telemetry.Convergence))
	}
}
