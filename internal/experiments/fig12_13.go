package experiments

import (
	"fmt"
	"time"

	"autopipe/internal/baselines/dapple"
	"autopipe/internal/baselines/piper"
	"autopipe/internal/config"
	"autopipe/internal/partition"
	"autopipe/internal/plan"
	"autopipe/internal/tableio"
)

// Fig12Point records one planner's measured search time on one model.
type Fig12Point struct {
	Model   string
	Planner string
	Search  time.Duration
	// Evaluated counts the candidate configurations the planner scored.
	Evaluated int
}

// Fig12 reproduces paper Fig. 12: wall-clock planning time of the three
// planners across the four benchmark models on the full 16-GPU cluster.
// DAPPLE runs its exhaustive device-composition sweep and Piper its full
// configuration space (tensor parallelism and per-stage recomputation
// included), matching how the released planners spend their time; AutoPipe
// prunes with the master-stage heuristic and a uniform data-parallel size.
// Note the paper's absolute gap also includes DAPPLE being implemented in
// Python; this reproduction compares equal Go implementations, so the
// search-space ratio is what remains.
func (e Env) Fig12() ([]Fig12Point, *tableio.Table, error) {
	run := config.Run{MicroBatch: 4, GlobalBatch: 512, Checkpoint: true}
	var points []Fig12Point
	t := &tableio.Table{
		ID:      "fig12",
		Title:   "Planner search time on the 16-GPU cluster",
		Columns: []string{"Model", "Planner", "Search time", "Candidates"},
	}
	for _, mc := range config.Zoo() {
		ds, _, err := dapple.Plan(mc, run, e.Cluster, dapple.Options{Exhaustive: true})
		if err != nil {
			return nil, nil, err
		}
		ps, _, err := piper.Plan(mc, run, e.Cluster, piper.FullSpace())
		if err != nil {
			return nil, nil, err
		}
		as, _, err := e.planCluster(mc, run, e.Cluster)
		if err != nil {
			return nil, nil, err
		}
		for _, p := range []struct {
			name string
			spec *plan.Spec
		}{{"DAPPLE", ds}, {"Piper", ps}, {"AutoPipe", as}} {
			pt := Fig12Point{Model: mc.Name, Planner: p.name, Search: p.spec.SearchTime, Evaluated: p.spec.Evaluated}
			points = append(points, pt)
			t.AddRow(mc.Name, p.name, pt.Search.String(), fmt.Sprint(pt.Evaluated))
		}
	}
	t.Note("the paper's DAPPLE is Python; equal-language implementations leave the search-space gap, which keeps the D >> P > A ordering")
	return points, t, nil
}

// Fig13Point is one balance measurement: the standard deviation of per-stage
// run times of a planner's partition.
type Fig13Point struct {
	GPUs    int
	Planner string
	// StdDev is over per-stage wall times (f+b, replication applied), in
	// seconds.
	StdDev float64
	Stages int
}

// Fig13 reproduces paper Fig. 13: pipeline balance of the three planners on
// GPT-2 345M with micro-batch size 32 (the Table IV cases), measured as the
// standard deviation among per-stage running times — lower is better.
func (e Env) Fig13() ([]Fig13Point, *tableio.Table, error) {
	mc := config.GPT2_345M()
	var points []Fig13Point
	t := &tableio.Table{
		ID:      "fig13",
		Title:   "Balance (stddev of stage run time, ms) on GPT-2 345M, micro-batch 32",
		Columns: []string{"# of GPUs", "Planner", "Stages", "StdDev (ms)", "vs AutoPipe"},
	}
	for _, g := range []int{4, 8} {
		cl := e.Cluster
		cl.NumGPUs = g
		run := config.Run{MicroBatch: 32, GlobalBatch: 512, Checkpoint: true}

		type entry struct {
			name string
			spec *plan.Spec
			bl   interface {
				Weights() []float64
			}
			std    float64
			stages int
		}
		var entries []entry

		ds, dbl, err := dapple.Plan(mc, run, cl, dapple.Options{})
		if err != nil {
			return nil, nil, err
		}
		df, db := plan.StageWallTimes(ds, dbl)
		entries = append(entries, entry{"DAPPLE", ds, dbl, stageStd(df, db), ds.Depth()})

		psp, pbl, err := piper.Plan(mc, run, cl, piper.Options{})
		if err != nil {
			return nil, nil, err
		}
		pf, pb := plan.StageWallTimes(psp, pbl)
		entries = append(entries, entry{"Piper", psp, pbl, stageStd(pf, pb), psp.Depth()})

		asp, abl, err := e.planCluster(mc, run, cl)
		if err != nil {
			return nil, nil, err
		}
		af, ab := plan.StageWallTimes(asp, abl)
		entries = append(entries, entry{"AutoPipe", asp, abl, stageStd(af, ab), asp.Depth()})

		auto := entries[2].std
		for _, en := range entries {
			ratio := "-"
			if en.name != "AutoPipe" && auto > 0 {
				ratio = tableio.Speedup(en.std / auto)
			}
			points = append(points, Fig13Point{GPUs: g, Planner: en.name, StdDev: en.std, Stages: en.stages})
			t.AddRow(fmt.Sprint(g), en.name, fmt.Sprint(en.stages), tableio.Ms(en.std), ratio)
		}
	}
	return points, t, nil
}

func stageStd(f, b []float64) float64 {
	w := make([]float64, len(f))
	for i := range f {
		w[i] = f[i] + b[i]
	}
	return partition.StdDev(w)
}
