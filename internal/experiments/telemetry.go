package experiments

import (
	"fmt"

	"autopipe/internal/config"
	"autopipe/internal/slicer"
	"autopipe/internal/tableio"
)

// TelemetryRecord is one model's planner search-effort measurement: how hard
// the Planner (Algorithm 1 + heuristic refinement) and the Slicer
// (Algorithm 2) worked to produce the plan, and what they predicted for it.
// It backs the paper's search-cost argument (§IV-D, Fig. 12): AutoPipe's
// planning effort is a handful of simulator evaluations, not an exhaustive
// sweep.
type TelemetryRecord struct {
	Model string
	Depth int
	Micro int
	// Candidates/Accepted/Convergence summarize the partition search.
	Candidates int
	Accepted   int
	// FirstIter and FinalIter bracket the convergence curve: the Algorithm 1
	// seed's predicted iteration time and the best found, in seconds.
	FirstIter float64
	FinalIter float64
	// SeedSeconds/AdjustSeconds/MoveSeconds are the per-phase wall-clock of
	// the search.
	SeedSeconds   float64
	AdjustSeconds float64
	MoveSeconds   float64
	// NumSliced/SliceRounds/SliceConverged summarize the Algorithm 2 run on
	// the winning partition.
	NumSliced      int
	SliceRounds    int
	SliceConverged bool
}

// PlannerTelemetry runs the fixed-depth planner for the paper's evaluation
// models and reports its search telemetry per model.
func (e Env) PlannerTelemetry() ([]TelemetryRecord, *tableio.Table, error) {
	cases := []struct {
		mc    config.Model
		depth int
		mbs   int
		m     int
	}{
		{config.GPT2_345M(), 4, 4, 16},
		{config.GPT2_762M(), 4, 4, 16},
		{config.BERTLarge(), 4, 4, 16},
	}
	var records []TelemetryRecord
	for _, c := range cases {
		bl, err := e.buildSub(c.mc, c.mbs)
		if err != nil {
			return nil, nil, err
		}
		res, err := e.planDepth(bl, c.depth, c.m)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: planning %s: %w", c.mc.Name, err)
		}
		tel := res.Telemetry
		rec := TelemetryRecord{
			Model:         c.mc.Name,
			Depth:         c.depth,
			Micro:         c.m,
			Candidates:    tel.Candidates,
			Accepted:      tel.Accepted,
			FinalIter:     tel.Final,
			SeedSeconds:   tel.SeedTime.Seconds(),
			AdjustSeconds: tel.AdjustTime.Seconds(),
			MoveSeconds:   tel.MoveTime.Seconds(),
		}
		if len(tel.Convergence) > 0 {
			rec.FirstIter = tel.Convergence[0]
		}
		f, b := res.Best.Partition.StageTimes(bl)
		sp, err := slicer.Solve(f, b, bl.Comm, c.m)
		if err != nil {
			return nil, nil, err
		}
		rec.NumSliced = sp.NumSliced
		rec.SliceRounds = sp.Rounds
		rec.SliceConverged = sp.Converged
		records = append(records, rec)
	}

	t := &tableio.Table{
		ID:    "telemetry",
		Title: "Planner and Slicer search telemetry (beyond the paper; effort behind Fig. 12)",
		Columns: []string{"Model", "Depth", "Micro", "Candidates", "Accepted",
			"Seed iter (ms)", "Final iter (ms)", "NumSliced", "Slice rounds", "Slice converged"},
	}
	for _, r := range records {
		t.AddRowf(r.Model, r.Depth, r.Micro, r.Candidates, r.Accepted,
			fmt.Sprintf("%.1f", r.FirstIter*1e3), fmt.Sprintf("%.1f", r.FinalIter*1e3),
			r.NumSliced, r.SliceRounds, r.SliceConverged)
	}
	t.Note("Candidates = partition schemes the analytic simulator evaluated; Accepted = evaluations that improved the incumbent.")
	t.Note("Final iter is predicted (simulated) time for one pipeline, before the data-parallel all-reduce.")
	return records, t, nil
}
