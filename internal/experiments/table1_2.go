package experiments

import (
	"fmt"

	"autopipe/internal/config"
	"autopipe/internal/partition"
	"autopipe/internal/sim"
	"autopipe/internal/tableio"
)

// Table1 reproduces paper Table I: the benchmark models with their layer
// counts, hidden sizes, and parameter counts as derived by the cost model.
func (e Env) Table1() (*tableio.Table, error) {
	t := &tableio.Table{
		ID:      "table1",
		Title:   "Benchmark models",
		Columns: []string{"Model", "# layers", "Hidden size", "# params (millions)"},
	}
	for _, mc := range config.Zoo() {
		bl, err := e.buildSub(mc, 4)
		if err != nil {
			return nil, err
		}
		t.AddRow(mc.Name,
			fmt.Sprint(mc.Layers),
			fmt.Sprint(mc.Hidden),
			fmt.Sprintf("%.0f", float64(bl.TotalParams())/1e6))
	}
	t.Note("parameter counts are derived analytically (embedding+layers); the paper's column counts the released checkpoints")
	return t, nil
}

// Table2Scheme is one of the seven GPT-2 345M partition schemes of paper
// Table II, expressed in transformer-layer units per stage (halves denote a
// ResidualAttentionBlock or ResidualFFNBlock boundary).
type Table2Scheme struct {
	ID     int
	Layers [4]float64
}

// Table2Schemes returns the seven schemes exactly as printed in the paper.
func Table2Schemes() []Table2Scheme {
	return []Table2Scheme{
		{1, [4]float64{5, 7, 6, 6}},
		{2, [4]float64{6, 6.5, 6.5, 5}},
		{3, [4]float64{6, 7, 6, 5}},
		{4, [4]float64{6.5, 6.5, 6.5, 4.5}},
		{5, [4]float64{6.5, 6.5, 6, 5}},
		{6, [4]float64{7, 5.5, 6, 5.5}},
		{7, [4]float64{7, 6.5, 5.5, 5}},
	}
}

// SchemePartition converts a Table II scheme into a block partition over a
// sub-layer block array (embedding with stage 0, head with stage 3).
func SchemePartition(s Table2Scheme, nBlocks int) (partition.Partition, error) {
	bounds := make([]int, 5)
	cum := 0.0
	for i := 0; i < 3; i++ {
		cum += s.Layers[i]
		bounds[i+1] = 1 + int(2*cum)
	}
	bounds[4] = nBlocks
	return partition.New(bounds, nBlocks)
}

// Table2 reproduces paper Table II: the seven pipeline partition schemes of
// GPT-2 345M over four stages, annotated with their simulated iteration time
// and master stage.
func (e Env) Table2() (*tableio.Table, error) {
	bl, err := e.buildSub(config.GPT2_345M(), 4)
	if err != nil {
		return nil, err
	}
	t := &tableio.Table{
		ID:      "table2",
		Title:   "Pipeline planning of the GPT-2 345M model (4 stages)",
		Columns: []string{"Partition ID", "stage 0", "stage 1", "stage 2", "stage 3", "sim iter (ms)", "master stage"},
	}
	for _, s := range Table2Schemes() {
		part, err := SchemePartition(s, bl.Len())
		if err != nil {
			return nil, err
		}
		f, b := part.StageTimes(bl)
		r, err := sim.Simulate(f, b, bl.Comm, 8)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(s.ID),
			fmt.Sprint(s.Layers[0]), fmt.Sprint(s.Layers[1]),
			fmt.Sprint(s.Layers[2]), fmt.Sprint(s.Layers[3]),
			tableio.Ms(r.IterTime), fmt.Sprint(r.Master))
	}
	t.Note("layer counts are the paper's; iteration time and master stage come from the AutoPipe simulator (8 micro-batches, micro-batch size 4)")
	return t, nil
}
