package experiments

import (
	"fmt"

	"autopipe/internal/baselines/megatron"
	"autopipe/internal/config"
	"autopipe/internal/exec"
	"autopipe/internal/schedule"
	"autopipe/internal/slicer"
	"autopipe/internal/tableio"
)

// InterleavedPoint compares full-iteration throughput of the interleaved
// schedule against plain Megatron-LM and AutoPipe.
type InterleavedPoint struct {
	Mbs         int
	Megatron    MethodResult
	Interleaved MethodResult
	AutoPipe    MethodResult
}

// AblationInterleaved tests the paper's §I claim that Megatron's interleaved
// schedule "damages the pipeline balance and thus harms the system
// throughput": although interleaving halves the startup overhead (Fig. 14),
// its fixed even chunk assignment pins the embedding to device 0 and the
// vocabulary head to the last device's final chunk, so the steady state
// bottlenecks on the head-heavy device and each micro-batch pays twice the
// cross-device hops. AutoPipe instead rebalances the partition and keeps the
// one-chunk schedule.
func (e Env) AblationInterleaved() ([]InterleavedPoint, *tableio.Table, error) {
	const depth, m = 4, 8
	t := &tableio.Table{
		ID:      "abl-interleaved",
		Title:   "Iteration time (ms): plain 1F1B vs interleaved vs AutoPipe; GPT-2 345M, 4 stages",
		Columns: []string{"Mbs", "Megatron 1F1B", "Interleaved", "AutoPipe", "AutoPipe vs interleaved"},
	}
	var points []InterleavedPoint
	for _, mbs := range []int{4, 8, 16} {
		bl, err := e.buildSub(config.GPT2_345M(), mbs)
		if err != nil {
			return nil, nil, err
		}
		even, err := megatron.EvenPartition(bl, depth)
		if err != nil {
			return nil, nil, err
		}
		p := InterleavedPoint{Mbs: mbs}

		r, err := e.runPartition(bl, even, m, 0, 0)
		if err != nil {
			return nil, nil, err
		}
		p.Megatron = MethodResult{IterTime: r.IterTime, Startup: r.Startup}

		vf, vb, _, err := megatron.InterleavedTimes(bl, depth, interleaveChunks)
		if err != nil {
			return nil, nil, err
		}
		is, err := schedule.Interleaved(depth, m, interleaveChunks)
		if err != nil {
			return nil, nil, err
		}
		ir, err := exec.Run(is, exec.Config{
			VirtFwd: vf, VirtBwd: vb,
			CommBytes:      bl.List[0].OutBytes,
			Network:        e.Cluster.Network,
			KernelOverhead: e.Cluster.Device.KernelOverhead,
		})
		if err != nil {
			return nil, nil, err
		}
		p.Interleaved = MethodResult{IterTime: ir.IterTime, Startup: ir.Startup}

		pr, err := e.planDepth(bl, depth, m)
		if err != nil {
			return nil, nil, err
		}
		bf, bb := pr.Best.Partition.StageTimes(bl)
		sp, err := slicer.Solve(bf, bb, bl.Comm, m)
		if err != nil {
			return nil, nil, err
		}
		ar, err := e.runPartition(bl, pr.Best.Partition, m, sp.NumSliced, 0)
		if err != nil {
			return nil, nil, err
		}
		p.AutoPipe = MethodResult{IterTime: ar.IterTime, Startup: ar.Startup, NumSliced: sp.NumSliced}

		points = append(points, p)
		t.AddRow(fmt.Sprint(mbs),
			tableio.Ms(p.Megatron.IterTime), tableio.Ms(p.Interleaved.IterTime), tableio.Ms(p.AutoPipe.IterTime),
			tableio.Speedup(p.Interleaved.IterTime/p.AutoPipe.IterTime))
	}
	t.Note("interleaving halves startup (Fig. 14) but its fixed even chunks cannot rebalance the head-heavy tail and its micro-batches hop twice as often")
	return points, t, nil
}
