// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV). Each Table*/Fig* function reproduces one of them and
// returns both typed results and a rendered tableio.Table, so the harness
// (cmd/experiments) can print the same rows/series the paper reports and the
// test suite can assert the paper's shape claims (who wins, by roughly what
// factor, and where the crossovers fall).
package experiments

import (
	"context"
	"fmt"

	"autopipe/internal/baselines/megatron"
	"autopipe/internal/config"
	"autopipe/internal/core"
	"autopipe/internal/cost"
	"autopipe/internal/exec"
	"autopipe/internal/fault"
	"autopipe/internal/memory"
	"autopipe/internal/model"
	"autopipe/internal/partition"
	"autopipe/internal/plan"
	"autopipe/internal/schedule"
	"autopipe/internal/slicer"
)

// Env carries the hardware environment experiments run against.
type Env struct {
	Cluster config.Cluster
	// Seed feeds the executor's deterministic jitter where an experiment
	// models "actual" hardware runs (Fig. 11).
	Seed uint64
	// Ctx bounds every planning call; nil means context.Background().
	Ctx context.Context
	// Search configures the planner engine (parallelism, budget, telemetry)
	// for every planning call. Engine results are independent of
	// parallelism, so the tables come out identical at any setting.
	Search core.Options
	// Faults, when non-nil, is appended to the Resilience sweep as an extra
	// custom scenario (cmd/experiments -faults).
	Faults *fault.Plan
}

// DefaultEnv returns the paper's testbed: 16 RTX 3090s over 100 Gb/s IB.
func DefaultEnv() Env {
	return Env{Cluster: config.DefaultCluster(), Seed: 2022}
}

func (e Env) ctx() context.Context {
	if e.Ctx != nil {
		return e.Ctx
	}
	return context.Background()
}

// planDepth runs the fixed-depth partition search with the env's engine
// options.
func (e Env) planDepth(bl *model.Blocks, p, m int) (*core.PlanResult, error) {
	return core.PlanDepthOpts(e.ctx(), bl, p, m, e.Search)
}

// planCluster runs the full planner on an explicit cluster (experiments
// sweep modified copies of e.Cluster) with the env's engine options.
func (e Env) planCluster(mc config.Model, run config.Run, cl config.Cluster) (*plan.Spec, *model.Blocks, error) {
	return core.PlanClusterOpts(e.ctx(), mc, run, cl, e.Search)
}

// buildSub lowers a model at sub-layer granularity for the env.
func (e Env) buildSub(mc config.Model, mbs int) (*model.Blocks, error) {
	return model.Build(mc, cost.Geometry{MicroBatch: mbs, Checkpoint: true},
		e.Cluster.Device, e.Cluster.Network, model.SubLayer)
}

// runPartition executes a partition on the discrete-event executor under
// plain 1F1B (numSliced == 0) or AutoPipe's sliced schedule.
func (e Env) runPartition(bl *model.Blocks, part partition.Partition, m, numSliced int, jitter float64) (*exec.Result, error) {
	f, b := part.StageTimes(bl)
	var (
		s   *schedule.Schedule
		err error
	)
	if numSliced > 0 {
		s, err = schedule.Sliced(part.Stages(), m, numSliced)
	} else {
		s, err = schedule.OneFOneB(part.Stages(), m)
	}
	if err != nil {
		return nil, err
	}
	return exec.Run(s, exec.Config{
		VirtFwd:        f,
		VirtBwd:        b,
		CommBytes:      bl.List[0].OutBytes,
		Network:        e.Cluster.Network,
		KernelOverhead: e.Cluster.Device.KernelOverhead,
		Jitter:         jitter,
		Seed:           e.Seed,
	})
}

// Series labels the four methods compared in Figs. 9, 10, and 14.
const (
	SeriesMegatron = "Megatron-LM"
	SeriesSlicer   = "Slicer"
	SeriesPlanner  = "Planner"
	SeriesAutoPipe = "AutoPipe"
)

// MethodResult is one method's measurement in a comparison point.
type MethodResult struct {
	// IterTime and Startup are in seconds; OOM marks a configuration that
	// exceeds device memory (the value fields are then zero).
	IterTime float64
	Startup  float64
	OOM      bool
	// Infeasible marks configurations a method cannot run at all (e.g. the
	// interleaved schedule with an odd per-stage layer count, Fig. 14b).
	Infeasible bool
	NumSliced  int
}

// ComparePoint measures the paper's four methods at one (model, depth,
// micro-batch, #micro-batches) configuration: Megatron-LM's even partition,
// the Slicer alone (even partition + sliced warmup), the Planner alone
// (balanced partition + plain 1F1B), and full AutoPipe (balanced partition +
// sliced warmup).
func (e Env) ComparePoint(mc config.Model, depth, mbs, m int) (map[string]MethodResult, error) {
	bl, err := e.buildSub(mc, mbs)
	if err != nil {
		return nil, err
	}
	out := make(map[string]MethodResult, 4)

	even, err := megatron.EvenPartition(bl, depth)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s depth %d: %w", mc.Name, depth, err)
	}
	evenOOM := !fits(bl, even, m, e.Cluster.Device)

	plannerRes, err := e.planDepth(bl, depth, m)
	if err != nil {
		return nil, err
	}
	balanced := plannerRes.Best.Partition
	balancedOOM := !fits(bl, balanced, m, e.Cluster.Device)

	measure := func(part partition.Partition, oom bool, slice bool) (MethodResult, error) {
		if oom {
			return MethodResult{OOM: true}, nil
		}
		numSliced := 0
		if slice && depth > 1 {
			f, b := part.StageTimes(bl)
			sp, err := slicer.Solve(f, b, bl.Comm, m)
			if err != nil {
				return MethodResult{}, err
			}
			numSliced = sp.NumSliced
		}
		r, err := e.runPartition(bl, part, m, numSliced, 0)
		if err != nil {
			return MethodResult{}, err
		}
		return MethodResult{IterTime: r.IterTime, Startup: r.Startup, NumSliced: numSliced}, nil
	}

	if out[SeriesMegatron], err = measure(even, evenOOM, false); err != nil {
		return nil, err
	}
	if out[SeriesSlicer], err = measure(even, evenOOM, true); err != nil {
		return nil, err
	}
	if out[SeriesPlanner], err = measure(balanced, balancedOOM, false); err != nil {
		return nil, err
	}
	if out[SeriesAutoPipe], err = measure(balanced, balancedOOM, true); err != nil {
		return nil, err
	}
	return out, nil
}

func fits(bl *model.Blocks, part partition.Partition, m int, dev config.Device) bool {
	ok, _ := memory.Fits(bl, part, m, memory.OneFOneB, 1, dev)
	return ok
}
