package experiments

import "testing"

func TestAblationGranularitySubLayerWins(t *testing.T) {
	e := DefaultEnv()
	points, _, err := e.AblationGranularity()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		// Sub-layer planning is never worse, and its partitions are at
		// least as balanced; at depth >= 8 it must show a real gain.
		if p.SubLayerIter > p.LayerIter*1.001 {
			t.Errorf("%s depth %d: sub-layer (%.1f ms) worse than layer (%.1f ms)",
				p.Model, p.Depth, p.SubLayerIter*1e3, p.LayerIter*1e3)
		}
		if p.SubLayerStdDev > p.LayerStdDev*1.001 {
			t.Errorf("%s depth %d: sub-layer less balanced (%.2f vs %.2f ms stddev)",
				p.Model, p.Depth, p.SubLayerStdDev*1e3, p.LayerStdDev*1e3)
		}
		if p.Depth >= 8 && p.LayerIter/p.SubLayerIter < 1.005 {
			t.Errorf("%s depth %d: sub-layer gain only %.3fx, want a visible win at depth >= 8",
				p.Model, p.Depth, p.LayerIter/p.SubLayerIter)
		}
	}
}

func TestAblationHeuristicNeverHurts(t *testing.T) {
	e := DefaultEnv()
	points, _, err := e.AblationHeuristic()
	if err != nil {
		t.Fatal(err)
	}
	improvedSomewhere := false
	for _, p := range points {
		if p.FinalIter > p.SeedIter+1e-12 {
			t.Errorf("%s depth %d: heuristic worse than seed", p.Model, p.Depth)
		}
		if p.FinalIter < p.SeedIter*0.9999 {
			improvedSomewhere = true
		}
		if p.Evaluated < 2 {
			t.Errorf("%s depth %d: heuristic assessed only %d schemes", p.Model, p.Depth, p.Evaluated)
		}
	}
	if !improvedSomewhere {
		t.Error("the heuristic never improved on Algorithm 1 across the zoo")
	}
}

func TestAblationSlicingCountKnee(t *testing.T) {
	e := DefaultEnv()
	points, _, err := e.AblationSlicingCount()
	if err != nil {
		t.Fatal(err)
	}
	var solved, unsliced, max SlicingPoint
	for _, p := range points {
		if p.Solved {
			solved = p
		}
		if p.NumSliced == 0 {
			unsliced = p
		}
		if p.NumSliced == len(points)-1 {
			max = p
		}
	}
	// Algorithm 2's answer halves the startup...
	if r := unsliced.Startup / solved.Startup; r < 1.8 || r > 2.2 {
		t.Errorf("solved count reduces startup %.2fx, want ~2x", r)
	}
	// ...and slicing everything buys (almost) nothing more.
	if solved.Startup > max.Startup*1.05 {
		t.Errorf("solved startup %.1f ms leaves >5%% on the table vs all-sliced %.1f ms",
			solved.Startup*1e3, max.Startup*1e3)
	}
	// The solved count never slows the iteration down vs unsliced.
	if solved.IterTime > unsliced.IterTime*1.001 {
		t.Errorf("solved slicing slowed the iteration: %.1f vs %.1f ms",
			solved.IterTime*1e3, unsliced.IterTime*1e3)
	}
}

func TestAblationSchedulesMemoryTimeTradeoff(t *testing.T) {
	e := DefaultEnv()
	points, _, err := e.AblationSchedules()
	if err != nil {
		t.Fatal(err)
	}
	by := map[string]SchedulePoint{}
	for _, p := range points {
		by[p.Schedule] = p
	}
	// GPipe holds all m micro-batches; 1F1B at most p.
	if by["GPipe"].PeakStash <= by["1F1B"].PeakStash {
		t.Errorf("GPipe peak stash %.1f not above 1F1B %.1f", by["GPipe"].PeakStash, by["1F1B"].PeakStash)
	}
	if by["1F1B"].PeakStash > 4 {
		t.Errorf("1F1B peak stash %.1f exceeds the pipeline depth", by["1F1B"].PeakStash)
	}
	// Sliced 1F1B is the fastest and no hungrier than 1F1B.
	if by["Sliced-1F1B"].IterTime > by["1F1B"].IterTime*1.001 {
		t.Errorf("sliced (%.1f ms) slower than 1F1B (%.1f ms)",
			by["Sliced-1F1B"].IterTime*1e3, by["1F1B"].IterTime*1e3)
	}
	if by["Sliced-1F1B"].PeakStash > by["1F1B"].PeakStash {
		t.Errorf("slicing increased the activation peak: %.1f vs %.1f",
			by["Sliced-1F1B"].PeakStash, by["1F1B"].PeakStash)
	}
}

func TestAblationInterleavedHarmsThroughputDespiteStartup(t *testing.T) {
	// Paper §I: "the interleaved schedule damages the pipeline balance and
	// thus harms the system throughput" — it must lose to AutoPipe on every
	// iteration time while still beating plain Megatron on startup.
	e := DefaultEnv()
	points, _, err := e.AblationInterleaved()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.AutoPipe.IterTime >= p.Interleaved.IterTime {
			t.Errorf("mbs=%d: AutoPipe (%.1f ms) not faster than interleaved (%.1f ms)",
				p.Mbs, p.AutoPipe.IterTime*1e3, p.Interleaved.IterTime*1e3)
		}
		if p.Interleaved.Startup >= p.Megatron.Startup {
			t.Errorf("mbs=%d: interleaved startup %.1f ms not below Megatron %.1f ms",
				p.Mbs, p.Interleaved.Startup*1e3, p.Megatron.Startup*1e3)
		}
	}
}
