package experiments

import (
	"fmt"

	"autopipe/internal/baselines/megatron"
	"autopipe/internal/config"
	"autopipe/internal/exec"
	"autopipe/internal/memory"
	"autopipe/internal/schedule"
	"autopipe/internal/slicer"
	"autopipe/internal/tableio"
)

// interleaveChunks is Megatron's interleaving factor in the paper's
// startup-overhead comparison (v = 2 halves the startup).
const interleaveChunks = 2

// StartupPoint measures the startup overhead of the four methods at one
// configuration.
type StartupPoint struct {
	Mbs     int
	Depth   int
	Results map[string]MethodResult
}

// SeriesInterleaved labels Megatron-LM's interleaved schedule in Fig. 14.
const SeriesInterleaved = "Interleaved"

// startupPoint measures startup overheads for GPT-2 345M at one (depth,
// micro-batch size, micro-batch count).
func (e Env) startupPoint(depth, mbs, m int) (StartupPoint, error) {
	bl, err := e.buildSub(config.GPT2_345M(), mbs)
	if err != nil {
		return StartupPoint{}, err
	}
	out := StartupPoint{Mbs: mbs, Depth: depth, Results: map[string]MethodResult{}}

	even, err := megatron.EvenPartition(bl, depth)
	if err != nil {
		return StartupPoint{}, err
	}

	// Megatron-LM baseline: plain 1F1B on the even partition.
	r, err := e.runPartition(bl, even, m, 0, 0)
	if err != nil {
		return StartupPoint{}, err
	}
	out.Results[SeriesMegatron] = MethodResult{IterTime: r.IterTime, Startup: r.Startup}

	// Interleaved schedule: v model chunks per device. It needs an even
	// number of chunks per stage and more memory for stashed activations.
	out.Results[SeriesInterleaved] = func() MethodResult {
		vf, vb, _, err := megatron.InterleavedTimes(bl, depth, interleaveChunks)
		if err != nil {
			return MethodResult{Infeasible: true}
		}
		if ok, _ := memory.Fits(bl, even, m, memory.Interleaved, interleaveChunks, e.Cluster.Device); !ok {
			return MethodResult{OOM: true}
		}
		s, err := schedule.Interleaved(depth, m, interleaveChunks)
		if err != nil {
			return MethodResult{Infeasible: true}
		}
		ir, err := exec.Run(s, exec.Config{
			VirtFwd: vf, VirtBwd: vb,
			CommBytes:      bl.List[0].OutBytes,
			Network:        e.Cluster.Network,
			KernelOverhead: e.Cluster.Device.KernelOverhead,
		})
		if err != nil {
			return MethodResult{Infeasible: true}
		}
		return MethodResult{IterTime: ir.IterTime, Startup: ir.Startup}
	}()

	// Slicer alone: even partition with the sliced warmup.
	ef, eb := even.StageTimes(bl)
	sp, err := slicer.Solve(ef, eb, bl.Comm, m)
	if err != nil {
		return StartupPoint{}, err
	}
	r, err = e.runPartition(bl, even, m, sp.NumSliced, 0)
	if err != nil {
		return StartupPoint{}, err
	}
	out.Results[SeriesSlicer] = MethodResult{IterTime: r.IterTime, Startup: r.Startup, NumSliced: sp.NumSliced}

	// Full AutoPipe: balanced partition with the sliced warmup. Balancing
	// moves load toward earlier stages, so its startup sits slightly above
	// the Slicer's (the effect the paper notes in §IV-E-2).
	pr, err := e.planDepth(bl, depth, m)
	if err != nil {
		return StartupPoint{}, err
	}
	bf, bb := pr.Best.Partition.StageTimes(bl)
	asp, err := slicer.Solve(bf, bb, bl.Comm, m)
	if err != nil {
		return StartupPoint{}, err
	}
	r, err = e.runPartition(bl, pr.Best.Partition, m, asp.NumSliced, 0)
	if err != nil {
		return StartupPoint{}, err
	}
	out.Results[SeriesAutoPipe] = MethodResult{IterTime: r.IterTime, Startup: r.Startup, NumSliced: asp.NumSliced}
	return out, nil
}

// Fig14a reproduces paper Fig. 14(a): startup overhead versus micro-batch
// size on a 4-stage GPT-2 345M pipeline. The interleaved schedule runs out
// of memory at micro-batch 32.
func (e Env) Fig14a() ([]StartupPoint, *tableio.Table, error) {
	const depth, m = 4, 8
	var points []StartupPoint
	t := &tableio.Table{
		ID:      "fig14a",
		Title:   "Startup overhead (ms) vs micro-batch size; GPT-2 345M, 4 stages",
		Columns: []string{"Mbs", SeriesMegatron, SeriesInterleaved, SeriesSlicer, SeriesAutoPipe},
	}
	for _, mbs := range []int{4, 8, 16, 32} {
		p, err := e.startupPoint(depth, mbs, m)
		if err != nil {
			return nil, nil, err
		}
		points = append(points, p)
		t.AddRow(fmt.Sprint(mbs),
			startupCell(p.Results[SeriesMegatron]), startupCell(p.Results[SeriesInterleaved]),
			startupCell(p.Results[SeriesSlicer]), startupCell(p.Results[SeriesAutoPipe]))
	}
	return points, t, nil
}

// Fig14b reproduces paper Fig. 14(b): startup overhead versus pipeline depth
// at micro-batch size 4. The interleaved schedule cannot run depths whose
// per-stage layer count does not split into two chunks (X), e.g. 8 stages of
// 3 layers for the 24-layer GPT-2 345M.
func (e Env) Fig14b() ([]StartupPoint, *tableio.Table, error) {
	const mbs = 4
	var points []StartupPoint
	t := &tableio.Table{
		ID:      "fig14b",
		Title:   "Startup overhead (ms) vs pipeline depth; GPT-2 345M, micro-batch 4",
		Columns: []string{"Stages", SeriesMegatron, SeriesInterleaved, SeriesSlicer, SeriesAutoPipe},
	}
	for _, depth := range []int{2, 4, 8, 12} {
		p, err := e.startupPoint(depth, mbs, 2*depth)
		if err != nil {
			return nil, nil, err
		}
		points = append(points, p)
		t.AddRow(fmt.Sprint(depth),
			startupCell(p.Results[SeriesMegatron]), startupCell(p.Results[SeriesInterleaved]),
			startupCell(p.Results[SeriesSlicer]), startupCell(p.Results[SeriesAutoPipe]))
	}
	return points, t, nil
}

func startupCell(r MethodResult) string {
	switch {
	case r.Infeasible:
		return "X"
	case r.OOM:
		return "OOM"
	default:
		return tableio.Ms(r.Startup)
	}
}
