package experiments

import (
	"math"
	"testing"

	"autopipe/internal/fault"
)

// TestResilienceSweep pins the sweep's shape claims: every scenario
// completes all iterations, each fault class triggers its healing mechanism
// (retry, live re-plan, depth-reducing recovery), downtime only ever costs
// throughput, and — the faithfulness pin — every scenario ends on the same
// training loss, because retries, re-plans, and checkpoint round trips must
// not change what the model learns.
func TestResilienceSweep(t *testing.T) {
	e := DefaultEnv()
	rows, table, err := e.Resilience()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || len(table.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 built-in scenarios", len(rows))
	}
	byName := map[string]ResilienceRow{}
	for _, r := range rows {
		byName[r.Scenario] = r
		if r.Iters != resilienceSteps {
			t.Errorf("%s: completed %d iters, want %d", r.Scenario, r.Iters, resilienceSteps)
		}
	}

	clean := byName["clean"]
	if clean.Retries != 0 || clean.Recoveries != 0 || clean.FinalDepth != 3 {
		t.Errorf("clean scenario healed something: %+v", clean)
	}
	if tr := byName["transient-drop"]; tr.Retries == 0 {
		t.Errorf("transient-drop: no retry recorded: %+v", tr)
	}
	if st := byName["straggler"]; st.Replans == 0 || st.FinalDepth != 3 {
		t.Errorf("straggler: want live re-plan at full depth: %+v", st)
	}
	cr := byName["device-crash"]
	if cr.Recoveries == 0 || cr.FinalDepth != 2 {
		t.Errorf("device-crash: want depth-reducing recovery: %+v", cr)
	}
	if cr.Downtime <= 0 {
		t.Errorf("device-crash: downtime = %g, want > 0", cr.Downtime)
	}

	for _, r := range rows {
		if r.Scenario == "clean" {
			continue
		}
		if r.Throughput >= clean.Throughput {
			t.Errorf("%s: throughput %.2f not below clean %.2f — faults were free", r.Scenario, r.Throughput, clean.Throughput)
		}
		// A post-crash re-partition reorders float additions, so allow
		// rounding noise but nothing that could hide a semantic change.
		if math.Abs(r.FinalLoss-clean.FinalLoss) > 1e-9 {
			t.Errorf("%s: final loss %v differs from clean %v — recovery changed training", r.Scenario, r.FinalLoss, clean.FinalLoss)
		}
	}
}

// TestResilienceCustomScenario: Env.Faults appends a fifth row carrying the
// plan's name.
func TestResilienceCustomScenario(t *testing.T) {
	e := DefaultEnv()
	e.Faults = &fault.Plan{Name: "extra", Faults: []fault.Fault{
		{Kind: fault.Straggler, At: 0.1, Duration: 0.1, Device: 0, Factor: 1.2},
	}}
	rows, _, err := e.Resilience()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 || rows[4].Scenario != "extra" {
		t.Fatalf("custom scenario missing: %+v", rows)
	}
	if rows[4].Iters != resilienceSteps {
		t.Errorf("custom scenario completed %d iters", rows[4].Iters)
	}
}
