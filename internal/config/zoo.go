package config

import "fmt"

// The benchmark model zoo from paper Table I.
//
//	Model          #layers  hidden  #params (M)
//	GPT-2 345M     24       1024    345
//	GPT-2 762M     36       1280    762
//	GPT-2 1.3B     24       2048    1314
//	BERT-large     24       1024    340
func GPT2_345M() Model {
	return Model{
		Name: "GPT-2 345M", Layers: 24, Hidden: 1024, Heads: 16,
		FFNMult: 4, SeqLen: 1024, Vocab: 50257, TiedHead: true,
	}
}

func GPT2_762M() Model {
	return Model{
		Name: "GPT-2 762M", Layers: 36, Hidden: 1280, Heads: 20,
		FFNMult: 4, SeqLen: 1024, Vocab: 50257, TiedHead: true,
	}
}

func GPT2_1_3B() Model {
	return Model{
		Name: "GPT-2 1.3B", Layers: 24, Hidden: 2048, Heads: 16,
		FFNMult: 4, SeqLen: 1024, Vocab: 50257, TiedHead: true,
	}
}

func BERTLarge() Model {
	return Model{
		Name: "BERT-large", Layers: 24, Hidden: 1024, Heads: 16,
		FFNMult: 4, SeqLen: 512, Vocab: 30522, TiedHead: true, Pooler: true,
	}
}

// Zoo returns the four benchmark models in the order of paper Table I.
func Zoo() []Model {
	return []Model{GPT2_345M(), GPT2_762M(), GPT2_1_3B(), BERTLarge()}
}

// ModelByName resolves a model by its canonical or short name.
// Accepted short names: gpt2-345m, gpt2-762m, gpt2-1.3b, bert-large.
func ModelByName(name string) (Model, error) {
	switch name {
	case "gpt2-345m", "GPT-2 345M":
		return GPT2_345M(), nil
	case "gpt2-762m", "GPT-2 762M":
		return GPT2_762M(), nil
	case "gpt2-1.3b", "GPT-2 1.3B":
		return GPT2_1_3B(), nil
	case "bert-large", "BERT-large":
		return BERTLarge(), nil
	}
	return Model{}, fmt.Errorf("config: unknown model %q (want gpt2-345m, gpt2-762m, gpt2-1.3b, or bert-large)", name)
}
