// Package config defines the model, hardware, and run configurations that
// parameterize every other package in the repository.
//
// A config plays the role of the paper's "model configs": the statistics that
// AutoPipe collects offline (model architecture, micro-batch geometry, and
// device/network characteristics) before planning begins.
package config

import (
	"encoding/json"
	"fmt"
	"os"

	"autopipe/internal/errdefs"
)

// Model describes a transformer-based benchmark model (paper Table I).
type Model struct {
	// Name is a human-readable identifier, e.g. "GPT-2 345M".
	Name string `json:"name"`
	// Layers is the number of transformer layers.
	Layers int `json:"layers"`
	// Hidden is the hidden (residual stream) dimension.
	Hidden int `json:"hidden"`
	// Heads is the number of attention heads.
	Heads int `json:"heads"`
	// FFNMult is the FFN expansion factor (intermediate = FFNMult * Hidden).
	FFNMult int `json:"ffn_mult"`
	// SeqLen is the training sequence length.
	SeqLen int `json:"seq_len"`
	// Vocab is the vocabulary size.
	Vocab int `json:"vocab"`
	// TiedHead reports whether the output projection shares the input
	// embedding weights (GPT-2 style). A tied head adds compute to the last
	// stage but no extra parameters.
	TiedHead bool `json:"tied_head"`
	// Pooler reports whether the model carries a BERT-style pooler/MLM head.
	Pooler bool `json:"pooler"`
}

// Validate reports the first structural problem with the model config.
// Errors wrap errdefs.ErrBadConfig.
func (m *Model) Validate() error {
	switch {
	case m.Layers <= 0:
		return fmt.Errorf("%w: model %q: layers must be positive, got %d", errdefs.ErrBadConfig, m.Name, m.Layers)
	case m.Hidden <= 0:
		return fmt.Errorf("%w: model %q: hidden must be positive, got %d", errdefs.ErrBadConfig, m.Name, m.Hidden)
	case m.Heads <= 0 || m.Hidden%m.Heads != 0:
		return fmt.Errorf("%w: model %q: heads must divide hidden (%d heads, %d hidden)", errdefs.ErrBadConfig, m.Name, m.Heads, m.Hidden)
	case m.FFNMult <= 0:
		return fmt.Errorf("%w: model %q: ffn_mult must be positive, got %d", errdefs.ErrBadConfig, m.Name, m.FFNMult)
	case m.SeqLen <= 0:
		return fmt.Errorf("%w: model %q: seq_len must be positive, got %d", errdefs.ErrBadConfig, m.Name, m.SeqLen)
	case m.Vocab <= 0:
		return fmt.Errorf("%w: model %q: vocab must be positive, got %d", errdefs.ErrBadConfig, m.Name, m.Vocab)
	}
	return nil
}

// Device describes a single accelerator (paper testbed: NVIDIA RTX 3090).
type Device struct {
	Name string `json:"name"`
	// FlopsPerSec is the sustained mixed-precision matmul throughput in FLOP/s.
	FlopsPerSec float64 `json:"flops_per_sec"`
	// MemBandwidth is the sustained device-memory bandwidth in bytes/s; it
	// bounds memory-bound blocks such as embedding lookups.
	MemBandwidth float64 `json:"mem_bandwidth"`
	// MemoryBytes is the device memory capacity in bytes.
	MemoryBytes int64 `json:"memory_bytes"`
	// KernelOverhead is the fixed per-operation launch cost in seconds. The
	// planner's analytic simulator ignores it; the discrete-event executor
	// charges it, which produces the stable simulator-vs-actual bias the
	// paper reports in Fig. 11.
	KernelOverhead float64 `json:"kernel_overhead"`
}

// Network describes the point-to-point interconnect (paper: 100 Gb/s IB).
type Network struct {
	// Bandwidth is the effective unidirectional bandwidth in bytes/s. Links
	// are full duplex: the paper observes bidirectional communication costs
	// the same as unidirectional because stage-to-stage volumes are small.
	Bandwidth float64 `json:"bandwidth"`
	// Latency is the per-message latency in seconds.
	Latency float64 `json:"latency"`
}

// Cluster bundles the hardware configuration.
type Cluster struct {
	Device  Device  `json:"device"`
	Network Network `json:"network"`
	// NumGPUs is the total accelerator count available to a planner.
	NumGPUs int `json:"num_gpus"`
}

// Run describes one training configuration to plan or execute.
type Run struct {
	// MicroBatch is the micro-batch size (paper: Mbs).
	MicroBatch int `json:"micro_batch"`
	// GlobalBatch is the global batch size (paper: Gbs); zero means the
	// micro-batch count is given directly via NumMicro.
	GlobalBatch int `json:"global_batch"`
	// NumMicro is the number of micro-batches per iteration when GlobalBatch
	// is zero.
	NumMicro int `json:"num_micro"`
	// Checkpoint enables activation checkpointing (paper uses it everywhere
	// to avoid OOM; backward then re-executes the forward pass first).
	Checkpoint bool `json:"checkpoint"`
}

// MicroBatches returns the number of micro-batches per iteration for a given
// data-parallel degree. With a global batch size the count is
// GlobalBatch/(MicroBatch*dp), as in Megatron-LM's gradient accumulation.
func (r Run) MicroBatches(dataParallel int) int {
	if r.GlobalBatch == 0 {
		return r.NumMicro
	}
	if dataParallel <= 0 {
		dataParallel = 1
	}
	m := r.GlobalBatch / (r.MicroBatch * dataParallel)
	if m < 1 {
		m = 1
	}
	return m
}

// Validate reports the first structural problem with the run config: a
// non-positive micro-batch, a negative global batch, a missing batch spec, or
// a global batch the micro-batch does not divide. Errors wrap
// errdefs.ErrBadConfig, so planners reject invalid runs up front instead of
// failing deep inside the partitioner.
func (r Run) Validate() error {
	if r.MicroBatch <= 0 {
		return fmt.Errorf("%w: run: micro_batch must be positive, got %d", errdefs.ErrBadConfig, r.MicroBatch)
	}
	if r.GlobalBatch < 0 {
		return fmt.Errorf("%w: run: global_batch must be non-negative, got %d", errdefs.ErrBadConfig, r.GlobalBatch)
	}
	if r.GlobalBatch == 0 && r.NumMicro <= 0 {
		return fmt.Errorf("%w: run: need global_batch or num_micro", errdefs.ErrBadConfig)
	}
	if r.GlobalBatch != 0 && r.GlobalBatch%r.MicroBatch != 0 {
		return fmt.Errorf("%w: run: global_batch %d not divisible by micro_batch %d",
			errdefs.ErrBadConfig, r.GlobalBatch, r.MicroBatch)
	}
	return nil
}

// RTX3090 returns the device profile used throughout the reproduction:
// ~35 TFLOP/s peak mixed-precision tensor throughput (per-block efficiency
// factors in package cost derate it), ~700 GB/s sustained HBM bandwidth,
// 24 GB memory.
func RTX3090() Device {
	return Device{
		Name:         "RTX3090",
		FlopsPerSec:  35e12,
		MemBandwidth: 700e9,
		MemoryBytes:  24 << 30,
		// A pipeline-stage forward or backward launches hundreds of CUDA
		// kernels plus framework dispatch; ~1 ms of it does not overlap
		// with compute. The planner's analytic simulator ignores this,
		// which is the stable simulator-vs-actual bias of Fig. 11.
		KernelOverhead: 1e-3,
	}
}

// InfiniBand100 returns the 100 Gb/s InfiniBand network profile of the paper
// testbed, derated to ~80% achievable bandwidth.
func InfiniBand100() Network {
	return Network{
		Bandwidth: 10e9,
		Latency:   15e-6,
	}
}

// DefaultCluster returns the paper's 16-GPU testbed profile.
func DefaultCluster() Cluster {
	return Cluster{Device: RTX3090(), Network: InfiniBand100(), NumGPUs: 16}
}

// Load reads a JSON-encoded value of type T from path.
func Load[T any](path string) (T, error) {
	var v T
	data, err := os.ReadFile(path)
	if err != nil {
		return v, fmt.Errorf("config: %w", err)
	}
	if err := json.Unmarshal(data, &v); err != nil {
		return v, fmt.Errorf("config: parse %s: %w", path, err)
	}
	return v, nil
}

// Save writes v as indented JSON to path.
func Save(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("config: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
