package config

import (
	"path/filepath"
	"testing"
)

func TestZooValidatesAndMatchesTable1(t *testing.T) {
	zoo := Zoo()
	if len(zoo) != 4 {
		t.Fatalf("zoo has %d models, want 4", len(zoo))
	}
	want := map[string]struct{ layers, hidden int }{
		"GPT-2 345M": {24, 1024},
		"GPT-2 762M": {36, 1280},
		"GPT-2 1.3B": {24, 2048},
		"BERT-large": {24, 1024},
	}
	for _, m := range zoo {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
		w, ok := want[m.Name]
		if !ok {
			t.Errorf("unexpected model %s", m.Name)
			continue
		}
		if m.Layers != w.layers || m.Hidden != w.hidden {
			t.Errorf("%s: %d layers / %d hidden, want %d / %d", m.Name, m.Layers, m.Hidden, w.layers, w.hidden)
		}
	}
}

func TestModelByName(t *testing.T) {
	for _, name := range []string{"gpt2-345m", "gpt2-762m", "gpt2-1.3b", "bert-large", "GPT-2 345M"} {
		if _, err := ModelByName(name); err != nil {
			t.Errorf("ModelByName(%q): %v", name, err)
		}
	}
	if _, err := ModelByName("llama"); err == nil {
		t.Error("want error for unknown model")
	}
}

func TestModelValidate(t *testing.T) {
	base := GPT2_345M()
	bad := []func(*Model){
		func(m *Model) { m.Layers = 0 },
		func(m *Model) { m.Hidden = -1 },
		func(m *Model) { m.Heads = 7 }, // does not divide 1024
		func(m *Model) { m.FFNMult = 0 },
		func(m *Model) { m.SeqLen = 0 },
		func(m *Model) { m.Vocab = 0 },
	}
	for i, mutate := range bad {
		m := base
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestRunMicroBatches(t *testing.T) {
	r := Run{MicroBatch: 4, GlobalBatch: 128}
	if got := r.MicroBatches(1); got != 32 {
		t.Errorf("dp=1: %d micro-batches, want 32", got)
	}
	if got := r.MicroBatches(4); got != 8 {
		t.Errorf("dp=4: %d micro-batches, want 8", got)
	}
	if got := r.MicroBatches(0); got != 32 {
		t.Errorf("dp=0 treated as 1: got %d", got)
	}
	direct := Run{MicroBatch: 4, NumMicro: 6}
	if got := direct.MicroBatches(8); got != 6 {
		t.Errorf("NumMicro run: %d, want 6", got)
	}
	tiny := Run{MicroBatch: 64, GlobalBatch: 128}
	if got := tiny.MicroBatches(16); got != 1 {
		t.Errorf("clamped micro-batches: %d, want 1", got)
	}
}

func TestRunValidate(t *testing.T) {
	if err := (Run{MicroBatch: 4, GlobalBatch: 128}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (Run{MicroBatch: 0, GlobalBatch: 128}).Validate(); err == nil {
		t.Error("want error for zero micro-batch")
	}
	if err := (Run{MicroBatch: 4}).Validate(); err == nil {
		t.Error("want error for missing batch spec")
	}
	if err := (Run{MicroBatch: 3, GlobalBatch: 128}).Validate(); err == nil {
		t.Error("want error for indivisible global batch")
	}
}

func TestDefaultClusterProfile(t *testing.T) {
	cl := DefaultCluster()
	if cl.NumGPUs != 16 {
		t.Errorf("default cluster has %d GPUs, want 16", cl.NumGPUs)
	}
	if cl.Device.MemoryBytes != 24<<30 {
		t.Errorf("device memory %d, want 24 GiB", cl.Device.MemoryBytes)
	}
	if cl.Network.Bandwidth <= 0 || cl.Network.Latency <= 0 {
		t.Error("network profile not positive")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cluster.json")
	want := DefaultCluster()
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load[Cluster](path)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("round trip mismatch: %+v vs %+v", got, want)
	}
	if _, err := Load[Cluster](filepath.Join(dir, "missing.json")); err == nil {
		t.Error("want error for missing file")
	}
}
