package nn

import "autopipe/internal/tensor"

// Checkpointed wraps a module with activation checkpointing (paper §II-C):
// the forward pass stashes only the module input, and the backward pass
// re-executes the forward before back-propagating. This trades one extra
// forward per backward for dropping the module's intermediate activations —
// the same trade the paper makes in every experiment, and the reason the
// cost model's checkpointed backward time is b + f.
type Checkpointed struct {
	Inner Module
}

// Checkpoint wraps m.
func Checkpoint(m Module) *Checkpointed { return &Checkpointed{Inner: m} }

// CheckpointAll wraps every module of a model.
func CheckpointAll(mods []Module) []Module {
	out := make([]Module, len(mods))
	for i, m := range mods {
		out[i] = Checkpoint(m)
	}
	return out
}

type ckptCtx struct{ x *tensor.Tensor }

// Forward implements Module: it runs the inner forward but keeps only the
// input for backward.
func (c *Checkpointed) Forward(x *tensor.Tensor) (*tensor.Tensor, Ctx) {
	y, _ := c.Inner.Forward(x) // inner context (the activations) is dropped
	return y, ckptCtx{x: x}
}

// Backward implements Module: recompute-then-backprop.
func (c *Checkpointed) Backward(ctx Ctx, dy *tensor.Tensor) *tensor.Tensor {
	cc := ctx.(ckptCtx)
	_, inner := c.Inner.Forward(cc.x)
	return c.Inner.Backward(inner, dy)
}

// Params implements Module.
func (c *Checkpointed) Params() []*Param { return c.Inner.Params() }
