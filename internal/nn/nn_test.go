package nn

import (
	"math"
	"testing"

	"autopipe/internal/tensor"
)

// numGrad estimates d(loss)/d(w) by central differences for one weight.
func numGrad(f func() float64, w *float64) float64 {
	const h = 1e-6
	old := *w
	*w = old + h
	lp := f()
	*w = old - h
	lm := f()
	*w = old
	return (lp - lm) / (2 * h)
}

// checkModuleGrads verifies a module's analytic gradients (parameters and
// input) against finite differences on a scalar loss Σ y² / 2.
func checkModuleGrads(t *testing.T, m Module, x *tensor.Tensor, tol float64) {
	t.Helper()
	lossOf := func() float64 {
		y, _ := m.Forward(x)
		var l float64
		for _, v := range y.Data {
			l += v * v / 2
		}
		return l
	}
	// Analytic pass.
	y, ctx := m.Forward(x)
	dy := y.Clone() // d(Σy²/2)/dy = y
	for _, p := range m.Params() {
		p.Grad.Zero()
	}
	dx := m.Backward(ctx, dy)

	for _, p := range m.Params() {
		for i := 0; i < len(p.W.Data); i += 1 + len(p.W.Data)/17 { // sample weights
			want := numGrad(lossOf, &p.W.Data[i])
			got := p.Grad.Data[i]
			if math.Abs(want-got) > tol*(1+math.Abs(want)) {
				t.Errorf("%s grad[%d] = %g, finite diff %g", p.Name, i, got, want)
			}
		}
	}
	if dx != nil {
		for i := 0; i < len(x.Data); i += 1 + len(x.Data)/17 {
			want := numGrad(lossOf, &x.Data[i])
			got := dx.Data[i]
			if math.Abs(want-got) > tol*(1+math.Abs(want)) {
				t.Errorf("input grad[%d] = %g, finite diff %g", i, got, want)
			}
		}
	}
}

func TestLinearGradients(t *testing.T) {
	rng := tensor.NewRNG(1)
	l := NewLinear("lin", 5, 3, 0.5, rng)
	checkModuleGrads(t, l, tensor.Randn(rng, 1, 4, 5), 1e-6)
}

func TestLinearNoBias(t *testing.T) {
	rng := tensor.NewRNG(2)
	l := NewLinear("lin", 4, 4, 0.5, rng)
	l.NoBias = true
	if len(l.Params()) != 1 {
		t.Fatalf("NoBias linear has %d params, want 1", len(l.Params()))
	}
	checkModuleGrads(t, l, tensor.Randn(rng, 1, 3, 4), 1e-6)
}

func TestLayerNormGradients(t *testing.T) {
	rng := tensor.NewRNG(3)
	ln := NewLayerNorm("ln", 6)
	// Non-trivial gain/bias so their gradients are exercised.
	for i := range ln.G.W.Data {
		ln.G.W.Data[i] = 1 + 0.1*float64(i)
		ln.B.W.Data[i] = 0.05 * float64(i)
	}
	checkModuleGrads(t, ln, tensor.Randn(rng, 1, 7, 6), 1e-5)
}

func TestGELUGradients(t *testing.T) {
	rng := tensor.NewRNG(4)
	checkModuleGrads(t, GELU{}, tensor.Randn(rng, 1, 11, 3), 1e-6)
}

func TestAttentionGradients(t *testing.T) {
	rng := tensor.NewRNG(5)
	a := NewCausalSelfAttention("attn", 8, 2, rng)
	// Larger init so gradients are well away from zero.
	for _, p := range a.Params() {
		p.W.ScaleInPlace(10)
	}
	checkModuleGrads(t, a, tensor.Randn(rng, 1, 2, 4, 8), 1e-4)
}

func TestAttentionIsCausal(t *testing.T) {
	rng := tensor.NewRNG(6)
	a := NewCausalSelfAttention("attn", 8, 2, rng)
	x := tensor.Randn(rng, 1, 1, 5, 8)
	y1, _ := a.Forward(x)
	// Perturb the last position; earlier outputs must not change.
	x2 := x.Clone()
	for d := 0; d < 8; d++ {
		x2.Data[4*8+d] += 3
	}
	y2, _ := a.Forward(x2)
	for i := 0; i < 4*8; i++ {
		if y1.Data[i] != y2.Data[i] {
			t.Fatalf("future token leaked into position %d", i/8)
		}
	}
	// And the last position must change.
	changed := false
	for d := 0; d < 8; d++ {
		if y1.Data[4*8+d] != y2.Data[4*8+d] {
			changed = true
		}
	}
	if !changed {
		t.Error("perturbing the last token had no effect on its own output")
	}
}

func TestResidualBlockGradients(t *testing.T) {
	rng := tensor.NewRNG(7)
	ra := NewResidualAttentionBlock("ra", 8, 2, rng)
	checkModuleGrads(t, ra, tensor.Randn(rng, 1, 2, 3, 8), 1e-5)
	rf := NewResidualFFNBlock("rf", 8, 4, rng)
	checkModuleGrads(t, rf, tensor.Randn(rng, 1, 2, 3, 8), 1e-5)
}

func TestEmbeddingGradients(t *testing.T) {
	rng := tensor.NewRNG(8)
	e := NewEmbedding("emb", 11, 6, 8, rng)
	ids := tensor.FromSlice([]float64{1, 3, 3, 7, 0, 10, 2, 2, 5, 4, 9, 6}, 2, 6)
	lossOf := func() float64 {
		y, _ := e.Forward(ids)
		var l float64
		for _, v := range y.Data {
			l += v * v / 2
		}
		return l
	}
	y, ctx := e.Forward(ids)
	for _, p := range e.Params() {
		p.Grad.Zero()
	}
	if dx := e.Backward(ctx, y.Clone()); dx != nil {
		t.Error("embedding backward returned a gradient for integer ids")
	}
	// Token 3 appears twice; its gradient must be the accumulated sum.
	for i := 0; i < 8; i += 3 {
		idx := 3*8 + i
		want := numGrad(lossOf, &e.Tok.W.Data[idx])
		got := e.Tok.Grad.Data[idx]
		if math.Abs(want-got) > 1e-5*(1+math.Abs(want)) {
			t.Errorf("token grad[%d] = %g, finite diff %g", idx, got, want)
		}
	}
	for i := 0; i < 8; i += 3 {
		idx := 2*8 + i // position 2
		want := numGrad(lossOf, &e.Pos.W.Data[idx])
		got := e.Pos.Grad.Data[idx]
		if math.Abs(want-got) > 1e-5*(1+math.Abs(want)) {
			t.Errorf("pos grad[%d] = %g, finite diff %g", idx, got, want)
		}
	}
}

func TestCrossEntropyGradients(t *testing.T) {
	rng := tensor.NewRNG(9)
	logits := tensor.Randn(rng, 1, 2, 3, 5)
	targets := tensor.FromSlice([]float64{0, 4, 2, 1, 3, 0}, 2, 3)
	lossOf := func() float64 {
		l, _ := CrossEntropy(logits, targets)
		return l
	}
	_, d := CrossEntropy(logits, targets)
	for i := range logits.Data {
		want := numGrad(lossOf, &logits.Data[i])
		if math.Abs(want-d.Data[i]) > 1e-6*(1+math.Abs(want)) {
			t.Errorf("dlogits[%d] = %g, finite diff %g", i, d.Data[i], want)
		}
	}
	// Gradient rows sum to zero (softmax minus one-hot).
	rows, v := d.Rows()
	for r := 0; r < rows; r++ {
		var s float64
		for j := 0; j < v; j++ {
			s += d.Data[r*v+j]
		}
		if math.Abs(s) > 1e-12 {
			t.Errorf("row %d gradient sums to %g", r, s)
		}
	}
}

func TestGPTEndToEndGradient(t *testing.T) {
	cfg := TinyGPT()
	mods := BuildGPT(cfg)
	rng := tensor.NewRNG(11)
	B, S := 2, 5
	in := tensor.New(B, S)
	tg := tensor.New(B, S)
	for i := range in.Data {
		in.Data[i] = float64(rng.Intn(cfg.Vocab))
		tg.Data[i] = float64(rng.Intn(cfg.Vocab))
	}
	lossOf := func() float64 {
		y, _ := ForwardAll(mods, in)
		l, _ := CrossEntropy(y, tg)
		return l
	}
	y, ctxs := ForwardAll(mods, in)
	_, dLogits := CrossEntropy(y, tg)
	ZeroGrads(CollectParams(mods))
	BackwardAll(mods, ctxs, dLogits)

	// Spot-check a few parameters per module.
	for _, p := range CollectParams(mods) {
		step := 1 + len(p.W.Data)/3
		for i := 0; i < len(p.W.Data); i += step {
			want := numGrad(lossOf, &p.W.Data[i])
			got := p.Grad.Data[i]
			if math.Abs(want-got) > 1e-4*(1+math.Abs(want)) {
				t.Errorf("%s grad[%d] = %g, finite diff %g", p.Name, i, got, want)
			}
		}
	}
}

func TestBuildGPTStructure(t *testing.T) {
	cfg := TinyGPT()
	mods := BuildGPT(cfg)
	if want := 2 + 2*cfg.Layers; len(mods) != want {
		t.Fatalf("BuildGPT produced %d modules, want %d", len(mods), want)
	}
	if _, ok := mods[0].(*Embedding); !ok {
		t.Error("first module is not the embedding")
	}
	if _, ok := mods[len(mods)-1].(*LMHead); !ok {
		t.Error("last module is not the head")
	}
	for i := 1; i < len(mods)-1; i += 2 {
		if _, ok := mods[i].(*ResidualAttentionBlock); !ok {
			t.Errorf("module %d is not an attention sub-block", i)
		}
		if _, ok := mods[i+1].(*ResidualFFNBlock); !ok {
			t.Errorf("module %d is not an FFN sub-block", i+1)
		}
	}
}

func TestBidirectionalAttention(t *testing.T) {
	rng := tensor.NewRNG(31)
	a := NewBidirectionalSelfAttention("attn", 8, 2, rng)
	for _, p := range a.Params() {
		p.W.ScaleInPlace(10)
	}
	checkModuleGrads(t, a, tensor.Randn(rng, 1, 2, 4, 8), 1e-4)

	// Unlike the causal variant, perturbing the last token changes earlier
	// positions' outputs.
	x := tensor.Randn(rng, 1, 1, 5, 8)
	y1, _ := a.Forward(x)
	x2 := x.Clone()
	for d := 0; d < 8; d++ {
		x2.Data[4*8+d] += 3
	}
	y2, _ := a.Forward(x2)
	changed := false
	for i := 0; i < 4*8; i++ {
		if y1.Data[i] != y2.Data[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("bidirectional attention did not propagate the future token backward")
	}
}
