package nn

import (
	"math"
	"testing"

	"autopipe/internal/tensor"
)

// TestCheckpointedGradientsIdentical: recompute-then-backprop must produce
// bitwise-identical gradients to the plain backward (the computation is
// deterministic, so re-running the forward reproduces the activations
// exactly) — the paper's justification for using checkpointing everywhere
// without touching convergence.
func TestCheckpointedGradientsIdentical(t *testing.T) {
	cfg := TinyGPT()
	plain := BuildGPT(cfg)
	wrapped := CheckpointAll(BuildGPT(cfg)) // same seed -> same weights

	rng := tensor.NewRNG(21)
	B, S := 2, 5
	in := tensor.New(B, S)
	tg := tensor.New(B, S)
	for i := range in.Data {
		in.Data[i] = float64(rng.Intn(cfg.Vocab))
		tg.Data[i] = float64(rng.Intn(cfg.Vocab))
	}

	runStep := func(mods []Module) ([]float64, float64) {
		y, ctxs := ForwardAll(mods, in)
		loss, dLogits := CrossEntropy(y, tg)
		ZeroGrads(CollectParams(mods))
		BackwardAll(mods, ctxs, dLogits)
		var grads []float64
		for _, p := range CollectParams(mods) {
			grads = append(grads, p.Grad.Data...)
		}
		return grads, loss
	}

	gPlain, lPlain := runStep(plain)
	gCkpt, lCkpt := runStep(wrapped)
	if lPlain != lCkpt {
		t.Fatalf("losses differ: %v vs %v", lPlain, lCkpt)
	}
	for i := range gPlain {
		if gPlain[i] != gCkpt[i] {
			t.Fatalf("gradient %d differs: %v vs %v", i, gPlain[i], gCkpt[i])
		}
	}
}

// TestCheckpointedSupportsMultipleInFlight: a checkpointed module keeps one
// tiny context per in-flight micro-batch, so interleaving forwards before
// backwards (the 1F1B pattern) must still work.
func TestCheckpointedSupportsMultipleInFlight(t *testing.T) {
	rng := tensor.NewRNG(5)
	m := Checkpoint(NewResidualFFNBlock("ffn", 8, 4, rng))
	x1 := tensor.Randn(rng, 1, 2, 3, 8)
	x2 := tensor.Randn(rng, 1, 2, 3, 8)
	y1, c1 := m.Forward(x1)
	y2, c2 := m.Forward(x2)
	// Backward in reverse order, like a pipeline cooldown.
	dx2 := m.Backward(c2, y2)
	dx1 := m.Backward(c1, y1)
	if dx1.SameShape(dx2) == false {
		t.Fatal("shape mismatch")
	}
	// Cross-check against a fresh un-checkpointed module with equal weights.
	rng2 := tensor.NewRNG(5)
	ref := NewResidualFFNBlock("ffn", 8, 4, rng2)
	refY1, refC1 := ref.Forward(x1)
	refDx1 := ref.Backward(refC1, refY1)
	if d := tensor.MaxAbsDiff(dx1, refDx1); d != 0 {
		t.Errorf("interleaved checkpointed backward differs from reference by %g", d)
	}
	if d := tensor.MaxAbsDiff(y1, refY1); d != 0 {
		t.Errorf("forward differs from reference by %g", d)
	}
}

// TestCheckpointedParamsPassThrough: wrapping must not change the parameter
// set.
func TestCheckpointedParamsPassThrough(t *testing.T) {
	rng := tensor.NewRNG(9)
	inner := NewLinear("lin", 4, 4, 0.1, rng)
	if got, want := len(Checkpoint(inner).Params()), len(inner.Params()); got != want {
		t.Errorf("wrapped params %d, want %d", got, want)
	}
}

// TestCheckpointedDoubleBackwardAccumulates: two backward passes through the
// same weights (different micro-batches) accumulate, exactly like the plain
// module.
func TestCheckpointedDoubleBackwardAccumulates(t *testing.T) {
	rng := tensor.NewRNG(13)
	m := Checkpoint(NewLinear("lin", 3, 3, 0.5, rng))
	x := tensor.Randn(rng, 1, 4, 3)
	y, c := m.Forward(x)
	m.Backward(c, y)
	once := append([]float64(nil), m.Params()[0].Grad.Data...)
	y2, c2 := m.Forward(x)
	m.Backward(c2, y2)
	for i, g := range m.Params()[0].Grad.Data {
		if math.Abs(g-2*once[i]) > 1e-12*(1+math.Abs(g)) {
			t.Fatalf("gradient %d did not accumulate: %v vs 2*%v", i, g, once[i])
		}
	}
}
